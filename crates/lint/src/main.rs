//! `prima-lint` — run the kernel static analysis over the repo.
//!
//! Usage: `cargo run -p prima-lint [--root <repo-root>]`. Prints one
//! finding per line (`path:line: [rule] message`) and exits non-zero if
//! any are found.

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    let mut root: Option<PathBuf> = None;
    while let Some(a) = args.next() {
        match a.as_str() {
            "--root" => root = args.next().map(PathBuf::from),
            "--help" | "-h" => {
                eprintln!("usage: prima-lint [--root <repo-root>]");
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("prima-lint: unknown argument `{other}`");
                return ExitCode::from(2);
            }
        }
    }
    // Default root: the workspace root two levels up from this crate, so
    // `cargo run -p prima-lint` works from anywhere in the tree.
    let root = root.unwrap_or_else(|| {
        PathBuf::from(concat!(env!("CARGO_MANIFEST_DIR"), "/../.."))
    });

    let findings = match prima_lint::run(&root) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("prima-lint: failed to read sources under {}: {e}", root.display());
            return ExitCode::from(2);
        }
    };

    for f in &findings {
        println!("{f}");
    }
    if findings.is_empty() {
        eprintln!("prima-lint: clean ({} rules over {:?})", 5, prima_lint::KERNEL_DIRS);
        ExitCode::SUCCESS
    } else {
        eprintln!("prima-lint: {} finding(s)", findings.len());
        ExitCode::FAILURE
    }
}
