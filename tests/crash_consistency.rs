//! Crash-consistency fuzzing: randomized fault schedules against the
//! WAL / recovery path.
//!
//! Each schedule is one seed: it derives a `FaultSchedule` (crash point,
//! cache-survival odds, torn-write and log-bit-rot options — see
//! `prima_storage::fault_disk`) *and* the randomized Session workload
//! that runs against the faulty device. After the crash the database is
//! reopened from the persisted image and checked against the
//! committed-prefix oracle (`prima_workloads::crash`): every
//! acknowledged commit durable (or, exactly at the crash point, the one
//! in-flight commit), every loser gone, surrogate ids never reused.
//!
//! Knobs (also used by the CI `fuzz` job):
//!
//! * `PRIMA_FUZZ_SEEDS` — schedules per backend leg (default: 24 on
//!   SimDisk, a quarter of that on FileDisk);
//! * `PRIMA_FUZZ_OPS` — workload statements per schedule (default 60);
//! * `PRIMA_FUZZ_SEED_BASE` — first seed (default 0x9_1987);
//! * `PRIMA_FUZZ_WAITS` — schedules for the bounded-wait multi-session
//!   leg (blocking lock waits, timeouts and deadlock-victim episodes
//!   under the same crash schedules; default 6, `0` skips the leg);
//! * `PRIMA_FUZZ_MVCC` — schedules for the snapshot-reader leg (readers
//!   outside any transaction take the lock-free MVCC read path and must
//!   see exactly the last acknowledged commit without ever conflicting;
//!   default 6, `0` skips the leg);
//! * `PRIMA_FUZZ_GROUP` — schedules for the cross-session group-commit
//!   leg (2–4 sessions committing concurrently so one leader force
//!   covers several commits, and the schedule tears that shared batch;
//!   the committed-prefix oracle must hold per session; default 6, `0`
//!   skips the leg).
//!
//! Every failure panics with a `PRIMA_FUZZ_REPRO:` line naming the seed
//! that deterministically reproduces it in one command; the fuzz loops
//! below additionally collect and print all failing seeds before
//! failing the test.

use prima::{Prima, QueryOptions, Value};
use prima_storage::{BlockDevice, FileDisk, SimDisk, Wal};
use prima_workloads::crash::{
    run_crash_schedule, run_group_commit_schedule, run_multi_session_schedule,
    run_multi_session_schedule_mvcc, run_multi_session_schedule_waits, CrashReport, CRASH_DDL,
};
use std::collections::BTreeMap;
use std::sync::Arc;

fn env_u64(name: &str, default: u64) -> u64 {
    std::env::var(name).ok().and_then(|v| v.parse().ok()).unwrap_or(default)
}

struct TmpDir(std::path::PathBuf);

impl TmpDir {
    fn new(tag: &str) -> TmpDir {
        let d = std::env::temp_dir()
            .join(format!("prima-crashfuzz-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        TmpDir(d)
    }
}

impl Drop for TmpDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

/// Runs `count` schedules starting at `base`, each over a device from
/// `make_inner` through `runner` (the single- or multi-session workload),
/// collecting failures instead of stopping at the first.
fn fuzz_leg(
    leg: &str,
    base: u64,
    count: u64,
    ops: usize,
    runner: fn(Arc<dyn BlockDevice>, u64, usize) -> CrashReport,
    make_inner: impl Fn(u64) -> Arc<dyn BlockDevice>,
) {
    let mut failures: Vec<u64> = Vec::new();
    let mut bootstrap = 0usize;
    let mut in_flight = 0usize;
    let mut commits = 0usize;
    for i in 0..count {
        let seed = base.wrapping_add(i);
        let inner = make_inner(seed);
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            runner(inner, seed, ops)
        }));
        match outcome {
            Ok(CrashReport { bootstrap_crash, in_flight_won, acked_commits, .. }) => {
                bootstrap += bootstrap_crash as usize;
                in_flight += in_flight_won as usize;
                commits += acked_commits;
            }
            Err(_) => {
                // The panic payload (with the PRIMA_FUZZ_REPRO line) has
                // already been printed by the default hook.
                eprintln!("FAILING SEED ({leg}): {seed}");
                failures.push(seed);
            }
        }
    }
    println!(
        "crash-fuzz [{leg}]: {count} schedules, {commits} acked commits, \
         {bootstrap} bootstrap crashes, {in_flight} in-flight commits survived"
    );
    assert!(
        failures.is_empty(),
        "[{leg}] {} of {count} schedules violated the committed-prefix oracle; \
         failing seeds: {failures:?} \
         (replay one with PRIMA_FUZZ_SEED_BASE=<seed> PRIMA_FUZZ_SEEDS=1 \
         PRIMA_FUZZ_OPS={ops} cargo test --test crash_consistency)",
        failures.len()
    );
}

#[test]
fn fuzz_sim_disk_schedules_recover_to_committed_prefix() {
    let seeds = env_u64("PRIMA_FUZZ_SEEDS", 24);
    let ops = env_u64("PRIMA_FUZZ_OPS", 60) as usize;
    let base = env_u64("PRIMA_FUZZ_SEED_BASE", 0x9_1987);
    fuzz_leg("sim", base, seeds, ops, run_crash_schedule, |_| {
        Arc::new(SimDisk::new()) as Arc<dyn BlockDevice>
    });
}

#[test]
fn fuzz_file_disk_schedules_recover_to_committed_prefix() {
    let seeds = env_u64("PRIMA_FUZZ_SEEDS", 24).div_ceil(4);
    let ops = env_u64("PRIMA_FUZZ_OPS", 60) as usize;
    // Offset from the sim leg's base: the schedule and workload both
    // derive purely from the seed, so sharing seeds would replay the
    // sim leg's exact schedules instead of adding distinct ones.
    let base = env_u64("PRIMA_FUZZ_SEED_BASE", 0x9_1987).wrapping_add(1_000_000);
    let tmp = TmpDir::new("fileleg");
    let root = tmp.0.clone();
    fuzz_leg("file", base, seeds, ops, run_crash_schedule, move |seed| {
        let dir = root.join(format!("s{seed}"));
        let _ = std::fs::remove_dir_all(&dir);
        Arc::new(FileDisk::create(&dir).expect("tmpdir FileDisk")) as Arc<dyn BlockDevice>
    });
}

// ---------------------------------------------------------------------
// Multi-session legs: isolation under fault injection (ISSUE 5)
// ---------------------------------------------------------------------
//
// One writer session interleaved with 1–2 reader sessions under the same
// randomized crash schedules. The readers assert they never observe
// uncommitted or rolled-back state (they must see exactly the last
// acknowledged commit, or fail fast with a lock conflict while the
// writer is dirty); recovery is then checked against the same
// committed-prefix oracle as the single-session legs. Seed count knob:
// `PRIMA_FUZZ_MULTI_SEEDS` (defaults to half the single-session count).

#[test]
fn fuzz_multi_session_sim_disk_isolates_readers_and_recovers() {
    let seeds = env_u64("PRIMA_FUZZ_MULTI_SEEDS", env_u64("PRIMA_FUZZ_SEEDS", 24).div_ceil(2));
    let ops = env_u64("PRIMA_FUZZ_OPS", 60) as usize;
    let base = env_u64("PRIMA_FUZZ_SEED_BASE", 0x9_1987).wrapping_add(5_000_000);
    fuzz_leg("multi-sim", base, seeds, ops, run_multi_session_schedule, |_| {
        Arc::new(SimDisk::new()) as Arc<dyn BlockDevice>
    });
}

#[test]
fn fuzz_multi_session_file_disk_isolates_readers_and_recovers() {
    let seeds = env_u64(
        "PRIMA_FUZZ_MULTI_SEEDS",
        env_u64("PRIMA_FUZZ_SEEDS", 24).div_ceil(2),
    )
    .div_ceil(4);
    let ops = env_u64("PRIMA_FUZZ_OPS", 60) as usize;
    let base = env_u64("PRIMA_FUZZ_SEED_BASE", 0x9_1987).wrapping_add(6_000_000);
    let tmp = TmpDir::new("multifileleg");
    let root = tmp.0.clone();
    fuzz_leg("multi-file", base, seeds, ops, run_multi_session_schedule, move |seed| {
        let dir = root.join(format!("s{seed}"));
        let _ = std::fs::remove_dir_all(&dir);
        Arc::new(FileDisk::create(&dir).expect("tmpdir FileDisk")) as Arc<dyn BlockDevice>
    });
}

// ---------------------------------------------------------------------
// Bounded-wait leg: blocking waits and deadlock victims under crashes
// ---------------------------------------------------------------------
//
// Same schedules and oracles as the multi-session legs, but the lock
// table runs in bounded-wait mode, so every conflict parks and times out
// instead of failing fast, and a slice of each schedule races two
// contender threads through the S→IX upgrade-deadlock shape: the table
// must victimize at most one of them, every contender error must be
// retryable, and the recovered state must still match the committed
// prefix. `PRIMA_FUZZ_WAITS` sets the seed count (0 skips the leg).

#[test]
fn fuzz_multi_session_waits_resolves_deadlocks_and_recovers() {
    let seeds = env_u64("PRIMA_FUZZ_WAITS", 6);
    let ops = env_u64("PRIMA_FUZZ_OPS", 60) as usize;
    let base = env_u64("PRIMA_FUZZ_SEED_BASE", 0x9_1987).wrapping_add(7_000_000);
    fuzz_leg("multi-sim-waits", base, seeds, ops, run_multi_session_schedule_waits, |_| {
        Arc::new(SimDisk::new()) as Arc<dyn BlockDevice>
    });
}

// ---------------------------------------------------------------------
// Snapshot-reader leg: the MVCC read path under fault injection
// ---------------------------------------------------------------------
//
// Same writer workload and crash schedules, but the readers stay outside
// any transaction so every query runs lock-free against a version-store
// snapshot. The isolation oracle inverts: reader queries must *succeed*
// even while the writer is dirty, must equal the last acknowledged
// commit exactly, and must generate zero lock-table traffic (checked via
// the `acquisitions` counter). The committed-prefix oracle after
// recovery is unchanged — the version store is volatile and must leave
// no trace in durable state. `PRIMA_FUZZ_MVCC` sets the seed count (0
// skips the leg).

#[test]
fn fuzz_multi_session_mvcc_snapshot_readers_never_conflict_and_recover() {
    let seeds = env_u64("PRIMA_FUZZ_MVCC", 6);
    let ops = env_u64("PRIMA_FUZZ_OPS", 60) as usize;
    let base = env_u64("PRIMA_FUZZ_SEED_BASE", 0x9_1987).wrapping_add(8_000_000);
    fuzz_leg("multi-sim-mvcc", base, seeds, ops, run_multi_session_schedule_mvcc, |_| {
        Arc::new(SimDisk::new()) as Arc<dyn BlockDevice>
    });
}

// ---------------------------------------------------------------------
// Group-commit leg: concurrent committers sharing forces under crashes
// ---------------------------------------------------------------------
//
// The write-side group-commit coordinator lets one leader's force carry
// several sessions' commit records, so a torn force now tears a *shared*
// batch. This leg runs 2–4 committer threads over disjoint key ranges,
// each committing every 1–2 statements (maximal commit overlap), under
// the same randomized crash schedules. Oracle, per committer: the
// recovered rows in its range equal its last acknowledged commit or its
// single in-flight one — an ack must imply the covering force completed
// for every session it covered. `PRIMA_FUZZ_GROUP` sets the seed count
// (0 skips the leg).

#[test]
fn fuzz_group_commit_concurrent_committers_recover_to_committed_prefix() {
    let seeds = env_u64("PRIMA_FUZZ_GROUP", 6);
    let ops = env_u64("PRIMA_FUZZ_OPS", 60) as usize;
    let base = env_u64("PRIMA_FUZZ_SEED_BASE", 0x9_1987).wrapping_add(9_000_000);
    fuzz_leg("group-sim", base, seeds, ops, run_group_commit_schedule, |_| {
        Arc::new(SimDisk::new()) as Arc<dyn BlockDevice>
    });
}

// ---------------------------------------------------------------------
// Targeted WAL-tail corruption: the CRC path
// ---------------------------------------------------------------------

fn names_by_no(db: &Prima) -> BTreeMap<i64, String> {
    let set = db
        .session()
        .query("SELECT ALL FROM part", &QueryOptions::default())
        .unwrap()
        .set;
    set.molecules
        .iter()
        .map(|m| {
            let v = &m.root.atom.values;
            let no = match &v[1] {
                Value::Int(n) => *n,
                other => panic!("part_no should be Int, got {other:?}"),
            };
            let name = match &v[2] {
                Value::Str(s) => s.clone(),
                other => panic!("name should be Str, got {other:?}"),
            };
            (no, name)
        })
        .collect()
}

/// Model snapshots at each commit plus the log-byte watermark after
/// each commit (index 0 = bootstrap).
type CommitHistory = (Vec<BTreeMap<i64, String>>, Vec<usize>);

/// Builds the deterministic multi-commit history on a fresh `SimDisk`
/// and returns the device, the per-commit model snapshots and the log
/// byte watermark after each commit. Nothing is flushed after the
/// bootstrap checkpoint, so the recovered state is decided purely by how
/// much of the log replay survives.
fn corruption_fixture() -> (Arc<dyn BlockDevice>, CommitHistory) {
    let device: Arc<dyn BlockDevice> = Arc::new(SimDisk::new());
    let db = Prima::builder()
        .buffer_bytes(1 << 20)
        .device(Arc::clone(&device))
        .durable()
        .build_with_ddl(CRASH_DDL)
        .unwrap();
    let mut snapshots: Vec<BTreeMap<i64, String>> = vec![BTreeMap::new()];
    let mut watermarks: Vec<usize> = vec![device.wal_contents().unwrap().len()];
    let s = db.session();
    let mut model = BTreeMap::new();
    for c in 0..6i64 {
        // Each commit inserts two parts, modifies one survivor and
        // deletes an old one — a few records of every kind per batch.
        for k in 0..2 {
            let no = c * 10 + k;
            s.execute(&format!("INSERT part (part_no: {no}, name: 'c{c}k{k}')")).unwrap();
            model.insert(no, format!("c{c}k{k}"));
        }
        if c > 0 {
            let no = (c - 1) * 10;
            s.execute(&format!("MODIFY part SET name = 'touched{c}' WHERE part_no = {no}"))
                .unwrap();
            model.insert(no, format!("touched{c}"));
            let gone = (c - 1) * 10 + 1;
            s.execute(&format!("DELETE FROM part WHERE part_no = {gone}")).unwrap();
            model.remove(&gone);
        }
        s.commit().unwrap();
        snapshots.push(model.clone());
        watermarks.push(device.wal_contents().unwrap().len());
    }
    // Crash: no destructor flushes anything (the kernel has no Drop
    // hooks), so dropping is a kill as far as the device is concerned.
    drop(s);
    drop(db);
    (device, (snapshots, watermarks))
}

#[test]
fn bit_flips_in_the_log_stop_replay_at_the_corruption_with_prefix_intact() {
    // Probe offsets all over the log: inside the first batch, in the
    // middle of a batch, just before a commit record, just after one.
    let (_, (_, wm)) = corruption_fixture();
    let probes: Vec<usize> = vec![
        wm[0] + 9,            // first record of batch 1
        wm[1] - 3,            // inside commit record of batch 1
        (wm[2] + wm[3]) / 2,  // middle of batch 3
        wm[4] + 1,            // header of batch 5's first record
        wm[5] - 40,           // late in batch 5, before its commit
    ];
    for offset in probes {
        let (device, (snapshots, watermarks)) = corruption_fixture();
        let mut log = device.wal_contents().unwrap();
        assert!(offset < log.len(), "probe {offset} outside log of {} bytes", log.len());
        log[offset] ^= 0x10;
        device.wal_reset().unwrap();
        device.wal_append(&log).unwrap();

        // Replay must stop exactly at the first record touching the
        // corrupted byte — never error out, never skip past it.
        let records = Wal::replay(&device).unwrap();
        // watermarks[0] is the bootstrap checkpoint marker, not a commit.
        let expect_commits = watermarks.iter().skip(1).filter(|&&w| w <= offset).count();
        let seen_commits = records
            .iter()
            .filter(|r| matches!(r, prima_storage::WalRecord::TxnCommit { .. }))
            .count();
        assert_eq!(
            seen_commits, expect_commits,
            "offset {offset}: replay should surface exactly the commits \
             whose batches end at or before the corruption"
        );

        // Recovery lands on the committed prefix defined by the
        // corruption point, and the database stays fully usable.
        let db = Prima::open_device(device).unwrap();
        assert_eq!(
            names_by_no(&db),
            snapshots[expect_commits],
            "offset {offset}: recovered state must be the committed prefix"
        );
        let s = db.session();
        s.execute("INSERT part (part_no: 7777, name: 'alive')").unwrap();
        s.commit().unwrap();
        assert_eq!(names_by_no(&db).get(&7777).map(String::as_str), Some("alive"));
    }
}

#[test]
fn truncated_log_tail_recovers_the_untruncated_prefix() {
    // Chop the log mid-record at several points: replay treats the tail
    // as torn (the classic crash shape) and recovery still lands on a
    // commit boundary.
    for cut_back in [1usize, 7, 19] {
        let (device, (snapshots, watermarks)) = corruption_fixture();
        let mut log = device.wal_contents().unwrap();
        let cut = log.len() - cut_back;
        log.truncate(cut);
        device.wal_reset().unwrap();
        device.wal_append(&log).unwrap();
        let db = Prima::open_device(device).unwrap();
        let expect_commits = watermarks.iter().skip(1).filter(|&&w| w <= cut).count();
        assert_eq!(
            names_by_no(&db),
            snapshots[expect_commits],
            "cutting {cut_back} bytes off the tail must lose only the last batch"
        );
    }
}
