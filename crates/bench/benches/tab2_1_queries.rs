//! E-T2.1 — Table 2.1: the four MQL queries, timed across database sizes
//! (a: vertical network access; b: recursive molecule; c: horizontal
//! access with projection; d: tree molecule with quantifier and qualified
//! projection).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use prima_workloads::exec;
use prima_bench::{brep_db, brep_db_assembly, report};

fn bench_queries(c: &mut Criterion) {
    // (a) vertical access, key-qualified — latency vs database size
    // (should stay flat: key lookup + molecule-size work).
    let mut g = c.benchmark_group("tab2_1a_vertical");
    g.sample_size(20);
    for n in [10usize, 100, 1000] {
        let db = brep_db(n);
        let q = format!("SELECT ALL FROM brep-face-edge-point WHERE brep_no = {}", n / 2);
        let set = exec::query(&db, &q).unwrap();
        report("T2.1a", &format!("solids={n}"), "molecule_atoms", set.molecules[0].atom_count());
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| exec::query(&db, &q).unwrap())
        });
    }
    g.finish();

    // (b) recursive molecule — latency vs hierarchy depth.
    let mut g = c.benchmark_group("tab2_1b_recursive");
    g.sample_size(20);
    for depth in [2usize, 4, 6] {
        let (db, root) = brep_db_assembly(1 << depth, depth, 2);
        let q = format!("SELECT ALL FROM piece_list WHERE piece_list (0).solid_no = {root}");
        let set = exec::query(&db, &q).unwrap();
        report(
            "T2.1b",
            &format!("depth={depth}"),
            "molecule_atoms",
            set.molecules[0].atom_count(),
        );
        g.bench_with_input(BenchmarkId::from_parameter(depth), &depth, |b, _| {
            b.iter(|| exec::query(&db, &q).unwrap())
        });
    }
    g.finish();

    // (c) horizontal access with projection — with and without a
    // covering partition.
    let mut g = c.benchmark_group("tab2_1c_horizontal");
    g.sample_size(10);
    for n in [200usize, 1000] {
        let q = "SELECT solid_no, description FROM solid WHERE sub = EMPTY";
        let db = brep_db(n);
        g.bench_with_input(BenchmarkId::new("base_scan", n), &n, |b, _| {
            b.iter(|| exec::query(&db, q).unwrap())
        });
        db.ldl("CREATE PARTITION p_head ON solid (solid_no, description, sub)").unwrap();
        let (set, trace) = exec::query_traced(&db, q).unwrap();
        report("T2.1c", &format!("solids={n} partition"), "root_access", format!("{:?}", trace.root_access));
        report("T2.1c", &format!("solids={n}"), "primitive_solids", set.len());
        g.bench_with_input(BenchmarkId::new("partition_scan", n), &n, |b, _| {
            b.iter(|| exec::query(&db, q).unwrap())
        });
    }
    g.finish();

    // (d) the miscellaneous query.
    let mut g = c.benchmark_group("tab2_1d_misc");
    g.sample_size(20);
    for n in [10usize, 100] {
        let db = brep_db(n);
        let q = "SELECT edge, (point, face := SELECT face_id, square_dim FROM face WHERE square_dim > 10.0)
                 FROM brep-edge (face, point)
                 WHERE brep_no = 1 AND EXISTS_AT_LEAST (2) edge: edge.length > 1.0";
        let set = exec::query(&db, q).unwrap();
        report("T2.1d", &format!("solids={n}"), "molecules", set.len());
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| exec::query(&db, q).unwrap())
        });
    }
    g.finish();
}

criterion_group!(benches, bench_queries);
criterion_main!(benches);
