//! E-T2.1: the four queries of Table 2.1, executed with full semantics
//! against a generated BREP database (Fig. 2.3 schema, verbatim).

use prima::datasys::RootAccess;
use prima_workloads::exec;
use prima::Value;
use prima_workloads::brep::{self, BrepConfig};

fn db_with(n: usize) -> (prima::Prima, prima_workloads::BrepStats) {
    let db = brep::open_db(16 << 20).expect("open");
    let stats = brep::populate(&db, &BrepConfig::with_assembly(n, 2, 2)).expect("populate");
    (db, stats)
}

#[test]
fn t2_1a_vertical_access_network_molecule() {
    let (db, _) = db_with(4);
    let set = exec::query(&db, "SELECT ALL FROM brep-face-edge-point WHERE brep_no = 2 (* qualification *)")
        .unwrap();
    assert_eq!(set.len(), 1, "key qualification yields one molecule");
    let m = &set.molecules[0];
    // brep -> 6 faces; each face -> 4 border edges; each edge -> 2 points.
    assert_eq!(set.atoms_of("face").len(), 6);
    assert_eq!(set.atoms_of("edge").len(), 24, "edges shared by two faces appear per lane");
    assert_eq!(set.atoms_of("point").len(), 48);
    assert_eq!(m.atom_count(), 1 + 6 + 24 + 48);
    // Distinct edges/points are the geometric counts (molecule overlap).
    let mut edge_ids: Vec<_> = set.atoms_of("edge").iter().map(|a| a.id).collect();
    edge_ids.sort();
    edge_ids.dedup();
    assert_eq!(edge_ids.len(), 12, "12 distinct edges of a box");
}

#[test]
fn t2_1a_uses_key_lookup() {
    let (db, _) = db_with(2);
    let (_, trace) =
        exec::query_traced(&db, "SELECT ALL FROM brep-face-edge-point WHERE brep_no = 1").unwrap();
    assert!(
        matches!(trace.root_access, RootAccess::KeyLookup { .. }),
        "brep_no is KEYS_ARE; got {:?}",
        trace.root_access
    );
}

#[test]
fn t2_1b_recursive_molecule_with_seed() {
    let (db, stats) = db_with(4);
    let root = stats.root_solid_nos[0];
    let set = exec::query(&db, &format!(
            "SELECT ALL FROM piece_list WHERE piece_list (0).solid_no = {root} (* seed *)"
        ))
        .unwrap();
    assert_eq!(set.len(), 1);
    let m = &set.molecules[0];
    // 1 root + 2 subassemblies + 4 base solids.
    assert_eq!(m.atom_count(), 7);
    assert_eq!(m.depth(), 2);
    // Level-wise structure: 1 atom at level 0, 2 at level 1, 4 at level 2.
    let node = m.root.node;
    assert_eq!(m.atoms_of_node_at(node, 0).len(), 1);
    let child_node = m.root.children[0].node;
    assert_eq!(m.atoms_of_node_at(child_node, 1).len(), 2);
    assert_eq!(m.atoms_of_node_at(child_node, 2).len(), 4);
}

#[test]
fn t2_1b_missing_seed_is_rejected() {
    let (db, _) = db_with(2);
    let err = exec::query(&db, "SELECT ALL FROM piece_list").unwrap_err();
    assert!(err.to_string().contains("seed"), "got: {err}");
}

#[test]
fn t2_1c_horizontal_access_with_projection() {
    let (db, stats) = db_with(4);
    let set = exec::query(&db, "SELECT solid_no, description FROM solid WHERE sub = EMPTY")
        .unwrap();
    // Only base solids have no sub-parts.
    assert_eq!(set.len(), stats.base_solid_nos.len());
    for m in &set.molecules {
        // Projected attributes present, others nulled.
        assert!(matches!(m.root.atom.values[1], Value::Int(_)), "solid_no kept");
        assert!(matches!(m.root.atom.values[2], Value::Str(_)), "description kept");
        assert!(m.root.atom.values[3].is_empty_like(), "sub not selected (and empty)");
        assert!(matches!(m.root.atom.values[5], Value::Null | Value::Ref(None)), "brep nulled");
    }
}

#[test]
fn t2_1d_quantifier_and_qualified_projection() {
    let (db, _) = db_with(3);
    // All edges of box 1 are longer than 1.0 (extents start at 1.0), so
    // the quantified restriction holds; faces are filtered by area.
    let set = exec::query(&db, 
            "SELECT edge, (point, face := SELECT face_id, square_dim FROM face WHERE square_dim > 10.0)
             FROM brep-edge (face, point)
             WHERE brep_no = 1 AND EXISTS_AT_LEAST (2) edge: edge.length > 1.0",
        )
        .unwrap();
    assert_eq!(set.len(), 1);
    let face_node = set.node_id("face").unwrap();
    let m = &set.molecules[0];
    // Qualified projection kept only large faces, and projected them.
    for f in m.atoms_of_node(face_node) {
        let sq = f.values[1].as_real().unwrap();
        assert!(sq > 10.0, "face with area {sq} must have been filtered");
        assert!(matches!(f.values[2], Value::Null), "border projected away");
    }
    // The brep root is excluded from the SELECT list: skeleton only.
    assert!(!set.nodes[0].selected);
    assert!(matches!(m.root.atom.values[1], Value::Null), "brep_no not delivered");
}

#[test]
fn t2_1d_quantifier_can_reject() {
    let (db, _) = db_with(2);
    // No edge is longer than 1000: the quantified restriction fails.
    let set = exec::query(&db, 
            "SELECT ALL FROM brep-edge (face, point)
             WHERE brep_no = 1 AND EXISTS_AT_LEAST (2) edge: edge.length > 1000.0",
        )
        .unwrap();
    assert!(set.is_empty());
}

#[test]
fn symmetric_traversal_inverse_direction() {
    // "looking from points to all corresponding edges and faces is not
    // possible in the hierarchical example" — it is in MAD.
    let (db, _) = db_with(1);
    let set = exec::query(&db, "SELECT ALL FROM point-edge-face WHERE point_id <> EMPTY").unwrap();
    assert_eq!(set.len(), 8, "eight corners");
    for m in &set.molecules {
        assert_eq!(m.root.children.len(), 3, "each corner joins 3 edges");
    }
}

#[test]
fn scaling_molecule_sizes() {
    for n in [1usize, 4, 16] {
        let (db, _) = db_with(n);
        let set = exec::query(&db, "SELECT ALL FROM brep-face-edge-point WHERE brep_no > 0").unwrap();
        assert_eq!(set.len(), n);
        assert!(set.molecules.iter().all(|m| m.atom_count() == 79));
    }
}
