//! Log-bucketed latency histograms.
//!
//! One [`LatencyHistogram`] per statement kind lives in the kernel's
//! observability hub and is fed on *every* statement — profiling on or
//! off — because recording is one clock read plus a handful of relaxed
//! atomic adds: no allocation, no lock. Buckets are powers of two in
//! nanoseconds (bucket `i` covers `[2^i, 2^{i+1})`, bucket 0 also
//! absorbs 0–1 ns), which makes bucket boundaries deterministic and the
//! index computation a single `leading_zeros`.

use std::sync::atomic::{AtomicU64, Ordering};

/// Number of power-of-two buckets. Bucket 39 starts at `2^39` ns
/// (~9.2 minutes) and is the overflow bucket: anything slower lands
/// there and quantiles falling into it report the exact recorded
/// maximum instead of interpolating into an unbounded range.
pub const BUCKETS: usize = 40;

/// Bucket index of a latency: `floor(log2(nanos))` clamped to the
/// bucket range, with 0 and 1 ns in bucket 0.
pub fn bucket_index(nanos: u64) -> usize {
    if nanos < 2 {
        0
    } else {
        ((63 - nanos.leading_zeros()) as usize).min(BUCKETS - 1)
    }
}

/// `[low, high)` bounds of bucket `i` in nanoseconds. The last bucket's
/// high bound is `u64::MAX` (overflow).
pub fn bucket_bounds(i: usize) -> (u64, u64) {
    let low = if i == 0 { 0 } else { 1u64 << i };
    let high = if i >= BUCKETS - 1 { u64::MAX } else { 1u64 << (i + 1) };
    (low, high)
}

/// Thread-safe log₂-bucketed histogram of statement latencies.
#[derive(Debug)]
pub struct LatencyHistogram {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum_ns: AtomicU64,
    max_ns: AtomicU64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        LatencyHistogram {
            buckets: [const { AtomicU64::new(0) }; BUCKETS],
            count: AtomicU64::new(0),
            sum_ns: AtomicU64::new(0),
            max_ns: AtomicU64::new(0),
        }
    }
}

impl LatencyHistogram {
    /// Records one latency. Allocation-free.
    pub fn record(&self, nanos: u64) {
        self.buckets[bucket_index(nanos)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum_ns.fetch_add(nanos, Ordering::Relaxed);
        self.max_ns.fetch_max(nanos, Ordering::Relaxed);
    }

    /// An owned point-in-time copy.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let mut buckets = [0u64; BUCKETS];
        for (b, a) in buckets.iter_mut().zip(&self.buckets) {
            *b = a.load(Ordering::Relaxed);
        }
        HistogramSnapshot {
            buckets,
            count: self.count.load(Ordering::Relaxed),
            sum_ns: self.sum_ns.load(Ordering::Relaxed),
            max_ns: self.max_ns.load(Ordering::Relaxed),
        }
    }
}

/// Point-in-time copy of a [`LatencyHistogram`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HistogramSnapshot {
    pub buckets: [u64; BUCKETS],
    pub count: u64,
    pub sum_ns: u64,
    pub max_ns: u64,
}

impl Default for HistogramSnapshot {
    fn default() -> Self {
        HistogramSnapshot { buckets: [0; BUCKETS], count: 0, sum_ns: 0, max_ns: 0 }
    }
}

impl HistogramSnapshot {
    /// The `q`-quantile (`0.0 ..= 1.0`) in nanoseconds, linearly
    /// interpolated within the containing bucket; a quantile landing in
    /// the overflow bucket reports the exact recorded maximum, and every
    /// result is capped at that maximum. Returns 0 on an empty histogram.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut cum = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            if n == 0 {
                continue;
            }
            cum += n;
            if cum >= rank {
                if i == BUCKETS - 1 {
                    return self.max_ns;
                }
                let (low, high) = bucket_bounds(i);
                let into = rank - (cum - n); // 1-based position within the bucket
                let frac = into as f64 / n as f64;
                let v = low as f64 + frac * (high - low) as f64;
                return (v as u64).min(self.max_ns);
            }
        }
        self.max_ns
    }

    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }

    pub fn p95(&self) -> u64 {
        self.quantile(0.95)
    }

    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }

    /// Mean latency in nanoseconds (0 on an empty histogram).
    pub fn mean_ns(&self) -> u64 {
        self.sum_ns.checked_div(self.count).unwrap_or(0)
    }

    /// Counter delta `self - earlier` (the recorded maximum keeps its
    /// current value, like every other running maximum in the kernel).
    pub fn delta(&self, earlier: &HistogramSnapshot) -> HistogramSnapshot {
        let mut buckets = [0u64; BUCKETS];
        for (b, (now, then)) in buckets.iter_mut().zip(self.buckets.iter().zip(&earlier.buckets)) {
            *b = now.saturating_sub(*then);
        }
        HistogramSnapshot {
            buckets,
            count: self.count.saturating_sub(earlier.count),
            sum_ns: self.sum_ns.saturating_sub(earlier.sum_ns),
            max_ns: self.max_ns.max(earlier.max_ns),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries_are_deterministic() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 0);
        assert_eq!(bucket_index(2), 1);
        assert_eq!(bucket_index(3), 1);
        assert_eq!(bucket_index(4), 2);
        assert_eq!(bucket_index(1023), 9);
        assert_eq!(bucket_index(1024), 10);
        assert_eq!(bucket_index(u64::MAX), BUCKETS - 1);
        assert_eq!(bucket_bounds(0), (0, 2));
        assert_eq!(bucket_bounds(10), (1024, 2048));
        assert_eq!(bucket_bounds(BUCKETS - 1).1, u64::MAX);
    }

    #[test]
    fn quantiles_interpolate_and_cap_at_max() {
        let h = LatencyHistogram::default();
        for _ in 0..100 {
            h.record(1000); // bucket 9: [512, 1024)
        }
        let s = h.snapshot();
        assert_eq!(s.count, 100);
        let p50 = s.p50();
        assert!((512..=1000).contains(&p50), "p50 = {p50}");
        // Nothing interpolates past the recorded maximum.
        assert!(s.p99() <= s.max_ns);
        assert_eq!(s.max_ns, 1000);
    }

    #[test]
    fn overflow_bucket_reports_exact_max() {
        let h = LatencyHistogram::default();
        h.record(u64::MAX / 2); // far past 2^39 → overflow bucket
        h.record(10);
        let s = h.snapshot();
        assert_eq!(s.buckets[BUCKETS - 1], 1);
        assert_eq!(s.quantile(1.0), u64::MAX / 2);
    }

    #[test]
    fn empty_histogram_is_all_zero() {
        let s = LatencyHistogram::default().snapshot();
        assert_eq!(s.quantile(0.5), 0);
        assert_eq!(s.mean_ns(), 0);
    }

    #[test]
    fn delta_subtracts_counts() {
        let h = LatencyHistogram::default();
        h.record(100);
        let a = h.snapshot();
        h.record(100);
        h.record(200);
        let d = h.snapshot().delta(&a);
        assert_eq!(d.count, 2);
        assert_eq!(d.sum_ns, 300);
    }
}
