//! Minimal stand-in for the `criterion` crate. The build environment has
//! no crates.io access, so this shim provides the macro/API shape the
//! bench harnesses use (`criterion_group!`, `criterion_main!`, benchmark
//! groups, `Bencher::iter`) with a simple wall-clock measurement loop:
//! warm-up iteration, then up to `sample_size` timed iterations bounded by
//! a per-benchmark time budget. Results are printed as
//! `bench: <group>/<id> ... mean ± stddev [min .. max]` lines, and each
//! benchmark additionally emits a machine-readable
//! `BENCHJSON {"bench":"criterion", …}` record (collected by
//! `scripts/perf_trajectory.sh` into `BENCH_*.json`). Stddev/min/max
//! make small (<10%) deltas judgeable: a delta inside one stddev of
//! either side is noise, not a regression.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Per-benchmark wall-clock budget after warm-up.
const TIME_BUDGET: Duration = Duration::from_secs(3);

/// Identifier of one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId { name: format!("{}/{}", function_name.into(), parameter) }
    }

    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId { name: parameter.to_string() }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { name: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { name: s }
    }
}

/// Summary statistics of one benchmark's samples.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct SampleStats {
    pub samples: u64,
    pub mean_ns: f64,
    /// Sample standard deviation (Bessel-corrected; 0 for a single
    /// sample).
    pub stddev_ns: f64,
    pub min_ns: f64,
    pub max_ns: f64,
}

impl SampleStats {
    fn from_samples(ns: &[f64]) -> SampleStats {
        if ns.is_empty() {
            return SampleStats::default();
        }
        let n = ns.len() as f64;
        let mean = ns.iter().sum::<f64>() / n;
        let var = if ns.len() > 1 {
            ns.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (n - 1.0)
        } else {
            0.0
        };
        SampleStats {
            samples: ns.len() as u64,
            mean_ns: mean,
            stddev_ns: var.sqrt(),
            min_ns: ns.iter().copied().fold(f64::INFINITY, f64::min),
            max_ns: ns.iter().copied().fold(f64::NEG_INFINITY, f64::max),
        }
    }
}

/// Measurement driver handed to the bench closure.
pub struct Bencher {
    samples: usize,
    /// Statistics of the most recent `iter` call.
    last_stats: SampleStats,
}

impl Bencher {
    /// Runs `f` once to warm up, then samples it under the time budget
    /// and records per-sample timings (mean, stddev, min, max).
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        black_box(f());
        let started = Instant::now();
        let mut ns: Vec<f64> = Vec::with_capacity(self.samples);
        while ns.len() < self.samples && started.elapsed() < TIME_BUDGET {
            let t0 = Instant::now();
            black_box(f());
            ns.push(t0.elapsed().as_nanos() as f64);
        }
        self.last_stats = SampleStats::from_samples(&ns);
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut b = Bencher { samples: self.sample_size, last_stats: SampleStats::default() };
        f(&mut b);
        self.criterion.record(&self.name, &id.name, &b.last_stats);
        self
    }

    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher { samples: self.sample_size, last_stats: SampleStats::default() };
        f(&mut b, input);
        self.criterion.record(&self.name, &id.name, &b.last_stats);
        self
    }

    pub fn finish(self) {}
}

/// The harness entry object.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { criterion: self, name: name.into(), sample_size: 20 }
    }

    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher { samples: 20, last_stats: SampleStats::default() };
        f(&mut b);
        self.record("bench", name, &b.last_stats);
        self
    }

    fn record(&self, group: &str, id: &str, stats: &SampleStats) {
        let pretty = |ns: f64| {
            if ns >= 1e9 {
                format!("{:.3} s", ns / 1e9)
            } else if ns >= 1e6 {
                format!("{:.3} ms", ns / 1e6)
            } else if ns >= 1e3 {
                format!("{:.3} µs", ns / 1e3)
            } else {
                format!("{ns:.0} ns")
            }
        };
        println!(
            "bench: {group}/{id:<50} {}/iter ± {} [{} .. {}] ({} samples)",
            pretty(stats.mean_ns),
            pretty(stats.stddev_ns),
            pretty(stats.min_ns),
            pretty(stats.max_ns),
            stats.samples,
        );
        // Machine-readable record, collected by scripts/perf_trajectory.sh.
        println!(
            "BENCHJSON {{\"bench\":\"criterion\",\"group\":\"{}\",\"id\":\"{}\",\
\"samples\":{},\"mean_ns\":{:.0},\"stddev_ns\":{:.0},\"min_ns\":{:.0},\"max_ns\":{:.0}}}",
            json_escape(group),
            json_escape(id),
            stats.samples, stats.mean_ns, stats.stddev_ns, stats.min_ns, stats.max_ns,
        );
    }
}

/// Escapes a string for embedding in a JSON string literal.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Identity function opaque to the optimizer.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_and_records() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("shim");
        g.sample_size(3);
        let mut runs = 0;
        g.bench_function("counting", |b| {
            b.iter(|| {
                runs += 1;
            })
        });
        g.finish();
        assert!(runs >= 2, "warm-up + at least one sample, got {runs}");
    }

    #[test]
    fn benchmark_ids_format() {
        assert_eq!(BenchmarkId::new("fwd", 10).name, "fwd/10");
        assert_eq!(BenchmarkId::from_parameter("x").name, "x");
    }

    #[test]
    fn sample_stats_mean_stddev_min_max() {
        let s = SampleStats::from_samples(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
        assert_eq!(s.samples, 8);
        assert!((s.mean_ns - 5.0).abs() < 1e-9);
        // Bessel-corrected stddev of this classic set is ~2.138.
        assert!((s.stddev_ns - 2.1380899352993947).abs() < 1e-9, "got {}", s.stddev_ns);
        assert_eq!(s.min_ns, 2.0);
        assert_eq!(s.max_ns, 9.0);
        // Degenerate cases.
        assert_eq!(SampleStats::from_samples(&[3.0]).stddev_ns, 0.0);
        assert_eq!(SampleStats::from_samples(&[]).samples, 0);
    }
}
