//! Atom-cluster scans: vertical access to heterogeneous atom sets.
//!
//! "The atom-cluster-type scan reads all characteristic atoms of an
//! atom-cluster type in a system-defined order, possibly restricted by a
//! simple search argument which now has to be decidable in one pass
//! through a single atom cluster (single scan property \[DPS86\]).
//! Subsequently, direct access to all atoms belonging to an atom cluster
//! is possible […] The atom-cluster scan, however, offers another
//! possibility […] It reads all atoms of a certain atom type within one
//! single atom cluster in a system-defined order, again with the possible
//! restriction by a simple search argument." (Section 3.2.)

use super::Scan;
use crate::access_system::AccessSystem;
use crate::atom::Atom;
use crate::cluster::AtomClusterType;
use crate::error::AccessResult;
use crate::ssa::Ssa;
use prima_mad::value::{AtomId, AtomTypeId};
use std::sync::Arc;

/// Cursor over the characteristic atoms of one atom-cluster type.
///
/// The SSA is evaluated against the *characteristic atom*; thanks to the
/// cluster directory this is decidable in one pass through the cluster.
pub struct AtomClusterTypeScan<'a> {
    sys: &'a AccessSystem,
    cluster_type: Arc<AtomClusterType>,
    ssa: Ssa,
    chars: Vec<AtomId>,
    pos: isize,
}

impl<'a> AtomClusterTypeScan<'a> {
    pub fn open(
        sys: &'a AccessSystem,
        cluster_type: Arc<AtomClusterType>,
        ssa: Ssa,
    ) -> AccessResult<Self> {
        let chars = cluster_type.characteristic_atoms();
        Ok(AtomClusterTypeScan { sys, cluster_type, ssa, chars, pos: -1 })
    }

    /// The cluster type being scanned.
    pub fn cluster_type(&self) -> &Arc<AtomClusterType> {
        &self.cluster_type
    }

    /// Direct access to all member atoms of the current characteristic
    /// atom's cluster (one chained read).
    pub fn current_cluster_atoms(&self) -> AccessResult<Vec<Atom>> {
        let idx = self.pos;
        if idx < 0 || idx as usize >= self.chars.len() {
            return Ok(Vec::new());
        }
        self.cluster_type.read_all(self.chars[idx as usize])
    }
}

impl Scan for AtomClusterTypeScan<'_> {
    fn next(&mut self) -> AccessResult<Option<Atom>> {
        loop {
            let next = (self.pos + 1) as usize;
            if next >= self.chars.len() {
                return Ok(None);
            }
            self.pos += 1;
            let ch = self.sys.read_atom(self.chars[next], None)?;
            if self.ssa.eval(&ch) {
                return Ok(Some(ch));
            }
        }
    }

    fn prior(&mut self) -> AccessResult<Option<Atom>> {
        loop {
            if self.pos <= 0 {
                self.pos = -1;
                return Ok(None);
            }
            let cur = if self.pos as usize >= self.chars.len() {
                self.chars.len() - 1
            } else {
                (self.pos - 1) as usize
            };
            self.pos = cur as isize;
            let ch = self.sys.read_atom(self.chars[cur], None)?;
            if self.ssa.eval(&ch) {
                return Ok(Some(ch));
            }
        }
    }
}

/// Cursor over all atoms of one atom type within one single atom cluster.
pub struct AtomClusterScan {
    atoms: Vec<Atom>,
    ssa: Ssa,
    pos: isize,
}

impl AtomClusterScan {
    /// Opens the scan by reading the typed members out of the cluster
    /// (relative addressing: only covering pages are touched).
    pub fn open(
        cluster_type: &AtomClusterType,
        characteristic: AtomId,
        member_type: AtomTypeId,
        ssa: Ssa,
    ) -> AccessResult<Self> {
        let atoms = cluster_type.read_type(characteristic, member_type)?;
        Ok(AtomClusterScan { atoms, ssa, pos: -1 })
    }
}

impl Scan for AtomClusterScan {
    fn next(&mut self) -> AccessResult<Option<Atom>> {
        loop {
            let next = (self.pos + 1) as usize;
            if next >= self.atoms.len() {
                return Ok(None);
            }
            self.pos += 1;
            if self.ssa.eval(&self.atoms[next]) {
                return Ok(Some(self.atoms[next].clone()));
            }
        }
    }

    fn prior(&mut self) -> AccessResult<Option<Atom>> {
        loop {
            if self.pos <= 0 {
                self.pos = -1;
                return Ok(None);
            }
            let cur = if self.pos as usize >= self.atoms.len() {
                self.atoms.len() - 1
            } else {
                (self.pos - 1) as usize
            };
            self.pos = cur as isize;
            if self.ssa.eval(&self.atoms[cur]) {
                return Ok(Some(self.atoms[cur].clone()));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ssa::CmpOp;
    use prima_mad::schema::{AtomType, Attribute, AttrType, Cardinality, Schema};
    use prima_mad::value::Value;
    use prima_storage::{PageSize, StorageSystem};
    use std::sync::Arc as StdArc;

    /// brep (characteristic) -> faces, points.
    fn system() -> AccessSystem {
        let mut schema = Schema::new();
        schema
            .add_atom_type(AtomType::build(
                "brep",
                vec![
                    Attribute::new("id", AttrType::Identifier),
                    Attribute::new("brep_no", AttrType::Integer),
                    Attribute::new(
                        "faces",
                        AttrType::ref_set("face", "brep", Cardinality::any()),
                    ),
                    Attribute::new(
                        "points",
                        AttrType::ref_set("point", "brep", Cardinality::any()),
                    ),
                ],
                vec![],
            ))
            .unwrap();
        schema
            .add_atom_type(AtomType::build(
                "face",
                vec![
                    Attribute::new("id", AttrType::Identifier),
                    Attribute::new("square_dim", AttrType::Real),
                    Attribute::new("brep", AttrType::reference("brep", "faces")),
                ],
                vec![],
            ))
            .unwrap();
        schema
            .add_atom_type(AtomType::build(
                "point",
                vec![
                    Attribute::new("id", AttrType::Identifier),
                    Attribute::new("x", AttrType::Real),
                    Attribute::new("brep", AttrType::reference("brep", "points")),
                ],
                vec![],
            ))
            .unwrap();
        let storage = StdArc::new(StorageSystem::in_memory(16 << 20));
        AccessSystem::new(storage, schema).unwrap()
    }

    fn build_brep(sys: &AccessSystem, brep_no: i64, n_faces: usize, n_points: usize) -> AtomId {
        let brep = sys
            .insert_atom(0, vec![Value::Null, Value::Int(brep_no)])
            .unwrap();
        for i in 0..n_faces {
            sys.insert_atom(
                1,
                vec![Value::Null, Value::Real(i as f64), Value::Ref(Some(brep))],
            )
            .unwrap();
        }
        for i in 0..n_points {
            sys.insert_atom(
                2,
                vec![Value::Null, Value::Real(i as f64 / 2.0), Value::Ref(Some(brep))],
            )
            .unwrap();
        }
        brep
    }

    #[test]
    fn cluster_type_scan_delivers_characteristic_atoms() {
        let sys = system();
        for no in 0..5 {
            build_brep(&sys, no, 3, 4);
        }
        sys.create_cluster_type("brep_cl", 0, vec![2, 3], PageSize::K1).unwrap();
        let ct = sys.cluster_type("brep_cl").unwrap();
        let mut scan = AtomClusterTypeScan::open(&sys, ct, Ssa::True).unwrap();
        let mut count = 0;
        while let Some(ch) = scan.next().unwrap() {
            assert_eq!(ch.id.atom_type, 0);
            let members = scan.current_cluster_atoms().unwrap();
            assert_eq!(members.len(), 7, "3 faces + 4 points");
            count += 1;
        }
        assert_eq!(count, 5);
    }

    #[test]
    fn cluster_type_scan_ssa_on_characteristic() {
        let sys = system();
        for no in 0..10 {
            build_brep(&sys, no, 1, 1);
        }
        sys.create_cluster_type("brep_cl", 0, vec![2, 3], PageSize::K1).unwrap();
        let ct = sys.cluster_type("brep_cl").unwrap();
        let ssa = Ssa::Cmp { attr: 1, op: CmpOp::Lt, value: Value::Int(3) };
        let mut scan = AtomClusterTypeScan::open(&sys, ct, ssa).unwrap();
        let hits = scan.collect_remaining().unwrap();
        assert_eq!(hits.len(), 3);
    }

    #[test]
    fn atom_cluster_scan_filters_by_type_and_ssa() {
        let sys = system();
        let brep = build_brep(&sys, 1, 5, 5);
        sys.create_cluster_type("brep_cl", 0, vec![2, 3], PageSize::K1).unwrap();
        let ct = sys.cluster_type("brep_cl").unwrap();
        // faces with square_dim >= 2
        let ssa = Ssa::Cmp { attr: 1, op: CmpOp::Ge, value: Value::Real(2.0) };
        let mut scan = AtomClusterScan::open(&ct, brep, 1, ssa).unwrap();
        let faces = scan.collect_remaining().unwrap();
        assert_eq!(faces.len(), 3, "faces 2,3,4");
        assert!(faces.iter().all(|a| a.id.atom_type == 1));
    }

    #[test]
    fn cluster_scan_next_prior() {
        let sys = system();
        let brep = build_brep(&sys, 1, 4, 0);
        sys.create_cluster_type("brep_cl", 0, vec![2, 3], PageSize::K1).unwrap();
        let ct = sys.cluster_type("brep_cl").unwrap();
        let mut scan = AtomClusterScan::open(&ct, brep, 1, Ssa::True).unwrap();
        let a = scan.next().unwrap().unwrap();
        let b = scan.next().unwrap().unwrap();
        assert_ne!(a.id, b.id);
        assert_eq!(scan.prior().unwrap().unwrap().id, a.id);
    }
}
