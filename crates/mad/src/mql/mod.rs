//! MQL — the Molecule Query Language (Section 2.2, Table 2.1).
//!
//! "The syntax of MQL follows the examples of SQL \[X3H286\] and its
//! derivates \[PA86, RKB85]." The language offers molecule retrieval
//! (`SELECT`/`FROM`/`WHERE` with dynamic molecule construction in the
//! FROM clause, qualified projection, quantifiers and recursion) and
//! molecule/component manipulation (`INSERT`, `DELETE`, `MODIFY` with
//! connect/disconnect semantics).

pub mod ast;
pub mod lexer;
pub mod parser;

pub use ast::{
    CompRef, CompareOp, Delete, FromClause, Insert, Modify, Operand, Predicate, Query,
    SelectItem, SelectList, SetExpr, Statement, ValueExpr,
};
pub use lexer::{lex, ParseError, Token, TokenKind};
pub use parser::{
    parse_query, parse_statement, parse_statement_params, parse_structure, ParamSlots,
};
