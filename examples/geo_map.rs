//! Map-handling example: horizontal access, partitions and sort orders
//! on a geographic database.
//!
//! ```sh
//! cargo run --example geo_map
//! ```

use prima::{PrimaResult, QueryOptions, UpdatePolicy, Value};
use prima_workloads::exec;
use prima_workloads::map::{self, MapConfig};

fn main() -> PrimaResult<()> {
    let db = map::open_db(16 << 20)?;
    let stats = map::populate(&db, &MapConfig { sheets: 3, grid: 8, seed: 5 })?;
    println!(
        "map: {} sheets, {} regions, {} borders, {} nodes",
        stats.sheet_ids.len(),
        stats.region_ids.len(),
        stats.border_ids.len(),
        stats.node_ids.len()
    );

    // Horizontal access: all water regions (atom-type scan + SSA). The
    // query is prepared once; the land-use classification is a named
    // parameter re-bound per run.
    let session = db.session();
    let traced = QueryOptions::new().traced();
    let mut by_use =
        session.prepare("SELECT region_no, area FROM region WHERE land_use = :use")?;
    by_use.bind_named(&[("use", Value::Str("water".into()))])?;
    let r = by_use.query(&traced)?;
    let set = r.set;
    println!(
        "water regions: {} (root access {:?})",
        set.len(),
        r.trace.expect("traced").root_access
    );

    // LDL tuning: partition the frequently projected attributes; sort
    // order by area for range reporting.
    db.ldl(
        "CREATE PARTITION p_region_head ON region (region_no, land_use, area);
         CREATE SORT ORDER so_area ON region (area);
         CREATE ACCESS PATH ap_region ON region (region_no)",
    )?;
    println!("tuning structures installed (transparent to MQL)");

    // Same prepared statement, same answer — but now the (denser)
    // partition is scanned instead of the base file. (Root access is
    // chosen per execution, so tuning applies without re-preparing.)
    let r = by_use.query(&traced)?;
    assert_eq!(set.len(), r.set.len());
    println!("re-run root access: {:?}", r.trace.expect("traced").root_access);

    // Vertical access: one sheet's full map molecule.
    let set = exec::query(&db, "SELECT ALL FROM sheet_map WHERE sheet_no = 2")?;
    println!(
        "sheet 2 molecule: {} regions, {} border occurrences",
        set.atoms_of("region").len(),
        set.atoms_of("border").len()
    );

    // Update with deferred maintenance: re-classify a region. The MODIFY
    // runs under the session's transaction and is committed explicitly.
    db.set_update_policy(UpdatePolicy::Deferred);
    session.execute("MODIFY region SET land_use = 'wetland' WHERE region_no = 1")?;
    session.commit()?;
    println!(
        "after MODIFY: {} deferred structure updates pending",
        db.access().deferred_queue().len()
    );
    db.reconcile()?;
    println!("reconciled; queue now {}", db.access().deferred_queue().len());

    // Shared borders: deleting a region must not delete shared borders'
    // neighbours — DELETE ONLY the region component.
    let n_regions_before = set.atoms_of("region").len();
    exec::execute(&db, "DELETE ONLY (region) FROM region WHERE region_no = 2")?;
    let set = exec::query(&db, "SELECT ALL FROM sheet_map WHERE sheet_no = 1")?;
    println!(
        "deleted region 2; sheet 1 now shows {} regions (was {})",
        set.atoms_of("region").len(),
        n_regions_before
    );

    // MQL CONNECT: move region 3 to sheet 3.
    exec::execute(&db, 
        "MODIFY region SET sheet = CONNECT (SELECT ALL FROM sheet WHERE sheet_no = 3)
         WHERE region_no = 3",
    )?;
    let a = exec::query(&db, "SELECT ALL FROM region-sheet WHERE region_no = 3")?;
    let sheet_no = a.atoms_of("sheet")[0].values[1].clone();
    println!("region 3 reconnected to sheet {sheet_no}");
    assert_eq!(sheet_no, Value::Int(3));
    Ok(())
}
