//! E-F3.2 — Fig. 3.2: atom clusters. Molecule materialisation with the
//! cluster (one physical record in a page sequence, chained I/O) versus
//! scattered per-atom assembly, across molecule sizes; plus relative
//! addressing for single-atom access.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use prima_workloads::exec;
use prima::{Prima, Value};
use prima_bench::report;

/// A star schema whose molecules have a configurable atom count: one hub
/// with `k` satellite atoms.
const DDL: &str = "
CREATE ATOM_TYPE hub
  ( id : IDENTIFIER, hub_no : INTEGER,
    sats : SET_OF (REF_TO (sat.hub)) )
KEYS_ARE (hub_no);
CREATE ATOM_TYPE sat
  ( id : IDENTIFIER, sat_no : INTEGER, payload : CHAR_VAR,
    hub : REF_TO (hub.sats) );
";

fn build(hubs: usize, k: usize, clustered: bool) -> Prima {
    // Small buffer so cold reads hit the device.
    let db = Prima::builder().buffer_bytes(256 * 1024).build_with_ddl(DDL).unwrap();
    let hub_ids: Vec<_> = (0..hubs)
        .map(|h| db.insert("hub", &[("hub_no", Value::Int(h as i64 + 1))]).unwrap())
        .collect();
    // Satellites are inserted round-robin across hubs — engineering
    // objects grow incrementally, so one molecule's atoms end up
    // scattered over the base file. That is exactly the situation atom
    // clusters exist for ("allocate in physical contiguity all atoms of
    // the main lanes").
    let mut sat_no = 1i64;
    for _ in 0..k {
        for &hub in &hub_ids {
            db.insert(
                "sat",
                &[
                    ("sat_no", Value::Int(sat_no)),
                    ("payload", Value::Str("x".repeat(64))),
                    ("hub", Value::Ref(Some(hub))),
                ],
            )
            .unwrap();
            sat_no += 1;
        }
    }
    if clustered {
        db.ldl("CREATE ATOM_CLUSTER cl ON hub (sats) PAGESIZE 1K").unwrap();
    }
    db
}

fn shape_report() {
    for k in [10usize, 100, 300] {
        for clustered in [false, true] {
            let db = build(8, k, clustered);
            db.storage().drop_cache().unwrap();
            db.storage().io_stats().reset();
            let q = "SELECT ALL FROM hub-sat WHERE hub_no = 4";
            let set = exec::query(&db, q).unwrap();
            assert_eq!(set.molecules[0].atom_count(), k + 1);
            let io = db.storage().io_stats().snapshot();
            let series = format!(
                "k={k} {}",
                if clustered { "atom cluster (Fig 3.2c)" } else { "scattered assembly" }
            );
            report("F3.2", &series, "block_reads", io.block_reads);
            report("F3.2", &series, "seeks", io.seeks);
            report("F3.2", &series, "chained_runs", io.chained_runs);
            report("F3.2", &series, "sim_ms", io.sim_time_ns / 1_000_000);
        }
    }
}

fn bench_cluster(c: &mut Criterion) {
    shape_report();
    let mut g = c.benchmark_group("fig3_2_cluster");
    g.sample_size(10);
    for k in [10usize, 100, 300] {
        for clustered in [false, true] {
            let db = build(8, k, clustered);
            let label = if clustered { "clustered" } else { "scattered" };
            let q = "SELECT ALL FROM hub-sat WHERE hub_no = 4";
            g.bench_with_input(BenchmarkId::new(label, k), &k, |b, _| {
                b.iter(|| {
                    db.storage().drop_cache().unwrap();
                    exec::query(&db, q).unwrap()
                })
            });
        }
    }
    // Relative addressing: single member atom out of a big cluster.
    // (k is bounded by the hub atom's reference set fitting one 4K base
    // record — ~380 references; larger objects would use long fields.)
    let db = build(4, 300, true);
    let ct = db.access().cluster_type("cl").unwrap();
    let ch = ct.characteristic_atoms()[0];
    let members = ct.members(ch).unwrap();
    g.bench_function("relative_addressing_single_atom", |b| {
        b.iter(|| {
            db.storage().drop_cache().unwrap();
            ct.read_one(ch, members[150]).unwrap()
        })
    });
    g.bench_function("whole_sequence_read", |b| {
        b.iter(|| {
            db.storage().drop_cache().unwrap();
            ct.read_all(ch).unwrap()
        })
    });
    g.finish();
}

criterion_group!(benches, bench_cluster);
criterion_main!(benches);
