//! Thread-local observability hook for storage-layer events.
//!
//! The storage system sits at the bottom of the crate stack, so it cannot
//! name the profiler that lives in the data-system crate. Instead it
//! exposes a per-thread *hook*: a plain function pointer installed by the
//! layer above for exactly the duration of a profiled statement. Emit
//! sites (buffer fixes, page loads, WAL appends/forces, the access
//! system's batched reads) check [`enabled`] **before** reading the clock,
//! so with no hook installed the entire mechanism costs one thread-local
//! read and a branch — no allocation, no `Instant::now`.
//!
//! The hook is thread-local on purpose: events are attributed to the
//! statement running on the *current* thread. Worker threads of a
//! parallel query never install a hook, so their storage traffic shows up
//! only in the global counter structs, not in per-statement profiles.

use std::cell::Cell;
use std::time::Instant;

/// One storage-layer event observed while a hook is installed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProbeEvent {
    /// A buffer guard acquisition (`fix` / `fix_mut` / `fix_new`),
    /// including the page load on a miss.
    BufferFix,
    /// A device read triggered by a buffer miss.
    PageLoad,
    /// One record appended to the WAL group buffer (`bytes` = encoded
    /// record length).
    WalAppend,
    /// One WAL force: the buffered batch appended to the device's log
    /// area (`bytes` = batch length). Under cross-session group commit
    /// one force may cover many sessions' commit records; the
    /// checkpoint reset's re-append of pending records emits this event
    /// too — every device log write is visible here.
    WalForce,
    /// One page-grouped batched read in the access system.
    BatchRead,
}

/// Sink for probe events: `(event, elapsed nanoseconds, bytes)`.
/// `bytes` is 0 for events without a natural byte count.
pub type ProbeHook = fn(event: ProbeEvent, nanos: u64, bytes: u64);

thread_local! {
    static HOOK: Cell<Option<ProbeHook>> = const { Cell::new(None) };
}

/// Installs (or clears) this thread's hook, returning the previous one.
pub fn set_thread_hook(hook: Option<ProbeHook>) -> Option<ProbeHook> {
    HOOK.with(|h| h.replace(hook))
}

/// Whether a hook is installed on this thread. Emit sites gate their
/// clock reads on this, keeping the disabled path allocation-free.
#[inline]
pub fn enabled() -> bool {
    HOOK.with(|h| h.get().is_some())
}

/// Starts timing an event — `None` (no clock read) when no hook is
/// installed. Pair with [`emit_elapsed`].
#[inline]
pub fn timer() -> Option<Instant> {
    if enabled() {
        Some(Instant::now())
    } else {
        None
    }
}

/// Emits `event` with the time elapsed since [`timer`], if one was taken.
#[inline]
pub fn emit_elapsed(started: Option<Instant>, event: ProbeEvent, bytes: u64) {
    if let Some(t) = started {
        if let Some(hook) = HOOK.with(std::cell::Cell::get) {
            hook(event, t.elapsed().as_nanos() as u64, bytes);
        }
    }
}

/// Runs `f`, timing it as `event` when a hook is installed; otherwise
/// runs `f` directly with zero overhead beyond the enabled check.
#[inline]
pub fn observed<R>(event: ProbeEvent, f: impl FnOnce() -> R) -> R {
    let Some(hook) = HOOK.with(std::cell::Cell::get) else {
        return f();
    };
    let started = Instant::now();
    let out = f();
    hook(event, started.elapsed().as_nanos() as u64, 0);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    static SEEN: AtomicU64 = AtomicU64::new(0);

    fn test_hook(event: ProbeEvent, _nanos: u64, bytes: u64) {
        if event == ProbeEvent::WalAppend {
            SEEN.fetch_add(bytes.max(1), Ordering::Relaxed);
        } else {
            SEEN.fetch_add(1, Ordering::Relaxed);
        }
    }

    #[test]
    fn hook_routes_events_and_uninstalls() {
        assert!(!enabled());
        // Disabled: observed runs the closure untouched.
        assert_eq!(observed(ProbeEvent::BufferFix, || 7), 7);
        assert_eq!(SEEN.load(Ordering::Relaxed), 0);

        assert!(set_thread_hook(Some(test_hook)).is_none());
        assert!(enabled());
        observed(ProbeEvent::BufferFix, || ());
        let t = timer();
        assert!(t.is_some());
        emit_elapsed(t, ProbeEvent::WalAppend, 40);
        assert_eq!(SEEN.load(Ordering::Relaxed), 41);

        assert!(set_thread_hook(None).is_some());
        assert!(!enabled());
        observed(ProbeEvent::PageLoad, || ());
        assert_eq!(SEEN.load(Ordering::Relaxed), 41);
    }
}
