//! Lexer shared by MQL, MAD-DDL and LDL.
//!
//! Tokens follow the surface syntax of the paper's examples (Fig. 2.3,
//! Table 2.1): identifiers are case-insensitive keywords when they match
//! one (`SELECT`, `FROM`, …); literals are integers, reals in scientific
//! notation (`1.9E4`), and single-quoted strings; punctuation includes the
//! molecule connector `-`, brace expressions, `:=` for qualified
//! projection, and the comparison operators of MQL.

use std::fmt;

/// A lexical token with its source position (byte offset) for error
/// reporting.
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    pub kind: TokenKind,
    pub offset: usize,
}

#[derive(Debug, Clone, PartialEq)]
pub enum TokenKind {
    /// Identifier or keyword (stored as written; keyword matching is
    /// case-insensitive via [`TokenKind::is_kw`]).
    Ident(String),
    Int(i64),
    Real(f64),
    Str(String),
    LParen,
    RParen,
    Comma,
    Colon,
    Semicolon,
    Dot,
    Minus,
    Plus,
    Star,
    Assign, // :=
    Eq,     // =
    Ne,     // <>
    Lt,
    Le,
    Gt,
    Ge,
    /// `?` — positional parameter placeholder (prepared statements).
    Question,
    Eof,
}

impl TokenKind {
    /// Case-insensitive keyword test for identifier tokens.
    pub fn is_kw(&self, kw: &str) -> bool {
        matches!(self, TokenKind::Ident(s) if s.eq_ignore_ascii_case(kw))
    }

    pub fn ident(&self) -> Option<&str> {
        match self {
            TokenKind::Ident(s) => Some(s),
            _ => None,
        }
    }
}

impl fmt::Display for TokenKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TokenKind::Ident(s) => write!(f, "{s}"),
            TokenKind::Int(i) => write!(f, "{i}"),
            TokenKind::Real(r) => write!(f, "{r}"),
            TokenKind::Str(s) => write!(f, "'{s}'"),
            TokenKind::LParen => write!(f, "("),
            TokenKind::RParen => write!(f, ")"),
            TokenKind::Comma => write!(f, ","),
            TokenKind::Colon => write!(f, ":"),
            TokenKind::Semicolon => write!(f, ";"),
            TokenKind::Dot => write!(f, "."),
            TokenKind::Minus => write!(f, "-"),
            TokenKind::Plus => write!(f, "+"),
            TokenKind::Star => write!(f, "*"),
            TokenKind::Assign => write!(f, ":="),
            TokenKind::Eq => write!(f, "="),
            TokenKind::Ne => write!(f, "<>"),
            TokenKind::Lt => write!(f, "<"),
            TokenKind::Le => write!(f, "<="),
            TokenKind::Gt => write!(f, ">"),
            TokenKind::Ge => write!(f, ">="),
            TokenKind::Question => write!(f, "?"),
            TokenKind::Eof => write!(f, "<eof>"),
        }
    }
}

/// Lexing / parsing error with byte offset and, once located against the
/// source text, a 1-based line:column position.
#[derive(Debug, Clone, PartialEq)]
pub struct ParseError {
    pub message: String,
    pub offset: usize,
    /// 1-based line, or 0 when the error has not been located yet.
    pub line: u32,
    /// 1-based column (byte-counted within the line), or 0 when unknown.
    pub column: u32,
}

impl ParseError {
    pub fn new(message: impl Into<String>, offset: usize) -> Self {
        ParseError { message: message.into(), offset, line: 0, column: 0 }
    }

    /// Fills `line`/`column` from the source the error's offset refers to.
    /// Entry points that hold the source call this so multi-line MQL/DDL
    /// scripts report actionable positions instead of raw byte offsets.
    pub fn locate(mut self, src: &str) -> Self {
        let upto = self.offset.min(src.len());
        let mut line = 1u32;
        let mut line_start = 0usize;
        for (i, b) in src.as_bytes()[..upto].iter().enumerate() {
            if *b == b'\n' {
                line += 1;
                line_start = i + 1;
            }
        }
        self.line = line;
        self.column = (upto - line_start) as u32 + 1;
        self
    }
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.line > 0 {
            write!(f, "{} (at line {}, column {})", self.message, self.line, self.column)
        } else {
            write!(f, "{} (at offset {})", self.message, self.offset)
        }
    }
}

impl std::error::Error for ParseError {}

/// Tokenises `input`. Comments run from `(*` to `*)` (the paper's style)
/// or from `--` to end of line.
pub fn lex(input: &str) -> Result<Vec<Token>, ParseError> {
    let bytes = input.as_bytes();
    let mut tokens = Vec::new();
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i] as char;
        // Whitespace.
        if c.is_whitespace() {
            i += 1;
            continue;
        }
        // (* comment *)
        if c == '(' && bytes.get(i + 1) == Some(&b'*') {
            let start = i;
            i += 2;
            loop {
                if i + 1 >= bytes.len() {
                    return Err(ParseError::new("unterminated comment", start));
                }
                if bytes[i] == b'*' && bytes[i + 1] == b')' {
                    i += 2;
                    break;
                }
                i += 1;
            }
            continue;
        }
        // -- line comment
        if c == '-' && bytes.get(i + 1) == Some(&b'-') {
            while i < bytes.len() && bytes[i] != b'\n' {
                i += 1;
            }
            continue;
        }
        let start = i;
        // Identifiers / keywords.
        if c.is_ascii_alphabetic() || c == '_' {
            let mut j = i + 1;
            while j < bytes.len()
                && ((bytes[j] as char).is_ascii_alphanumeric() || bytes[j] == b'_')
            {
                j += 1;
            }
            tokens.push(Token {
                kind: TokenKind::Ident(input[i..j].to_string()),
                offset: start,
            });
            i = j;
            continue;
        }
        // Numbers: 123, 1.5, 1.9E4, 1E-2 (leading sign handled by parser).
        if c.is_ascii_digit() {
            let mut j = i;
            let mut is_real = false;
            while j < bytes.len() && (bytes[j] as char).is_ascii_digit() {
                j += 1;
            }
            if j < bytes.len()
                && bytes[j] == b'.'
                && j + 1 < bytes.len()
                && (bytes[j + 1] as char).is_ascii_digit()
            {
                is_real = true;
                j += 1;
                while j < bytes.len() && (bytes[j] as char).is_ascii_digit() {
                    j += 1;
                }
            }
            if j < bytes.len() && (bytes[j] == b'e' || bytes[j] == b'E') {
                let mut k = j + 1;
                if k < bytes.len() && (bytes[k] == b'+' || bytes[k] == b'-') {
                    k += 1;
                }
                if k < bytes.len() && (bytes[k] as char).is_ascii_digit() {
                    is_real = true;
                    j = k;
                    while j < bytes.len() && (bytes[j] as char).is_ascii_digit() {
                        j += 1;
                    }
                }
            }
            let text = &input[i..j];
            let kind = if is_real {
                TokenKind::Real(text.parse().map_err(|_| {
                    ParseError::new(format!("bad real literal '{text}'"), start)
                })?)
            } else {
                TokenKind::Int(text.parse().map_err(|_| {
                    ParseError::new(format!("bad integer literal '{text}'"), start)
                })?)
            };
            tokens.push(Token { kind, offset: start });
            i = j;
            continue;
        }
        // Strings.
        if c == '\'' {
            let mut j = i + 1;
            let mut s = String::new();
            loop {
                if j >= bytes.len() {
                    return Err(ParseError::new("unterminated string", start));
                }
                if bytes[j] == b'\'' {
                    // '' escapes a quote
                    if bytes.get(j + 1) == Some(&b'\'') {
                        s.push('\'');
                        j += 2;
                        continue;
                    }
                    j += 1;
                    break;
                }
                s.push(bytes[j] as char);
                j += 1;
            }
            tokens.push(Token { kind: TokenKind::Str(s), offset: start });
            i = j;
            continue;
        }
        // Operators & punctuation.
        let (kind, len) = match c {
            '(' => (TokenKind::LParen, 1),
            ')' => (TokenKind::RParen, 1),
            ',' => (TokenKind::Comma, 1),
            ';' => (TokenKind::Semicolon, 1),
            '.' => (TokenKind::Dot, 1),
            '-' => (TokenKind::Minus, 1),
            '+' => (TokenKind::Plus, 1),
            '*' => (TokenKind::Star, 1),
            ':' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    (TokenKind::Assign, 2)
                } else {
                    (TokenKind::Colon, 1)
                }
            }
            '=' => (TokenKind::Eq, 1),
            '?' => (TokenKind::Question, 1),
            '<' => match bytes.get(i + 1) {
                Some(&b'>') => (TokenKind::Ne, 2),
                Some(&b'=') => (TokenKind::Le, 2),
                _ => (TokenKind::Lt, 1),
            },
            '>' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    (TokenKind::Ge, 2)
                } else {
                    (TokenKind::Gt, 1)
                }
            }
            other => {
                return Err(ParseError::new(format!("unexpected character '{other}'"), start))
            }
        };
        tokens.push(Token { kind, offset: start });
        i += len;
    }
    tokens.push(Token { kind: TokenKind::Eof, offset: input.len() });
    Ok(tokens)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokenKind> {
        lex(src).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn basic_tokens() {
        let k = kinds("SELECT ALL FROM brep-face WHERE brep_no = 1713");
        assert_eq!(k[0], TokenKind::Ident("SELECT".into()));
        assert!(k[0].is_kw("select"));
        assert!(k.contains(&TokenKind::Minus));
        assert!(k.contains(&TokenKind::Eq));
        assert!(k.contains(&TokenKind::Int(1713)));
        assert_eq!(*k.last().unwrap(), TokenKind::Eof);
    }

    #[test]
    fn scientific_reals() {
        assert_eq!(kinds("1.9E4")[0], TokenKind::Real(1.9e4));
        assert_eq!(kinds("1.0E2")[0], TokenKind::Real(100.0));
        assert_eq!(kinds("2E3")[0], TokenKind::Real(2000.0));
        assert_eq!(kinds("3.25")[0], TokenKind::Real(3.25));
        assert_eq!(kinds("42")[0], TokenKind::Int(42));
    }

    #[test]
    fn strings_and_escapes() {
        assert_eq!(kinds("'cube'")[0], TokenKind::Str("cube".into()));
        assert_eq!(kinds("'it''s'")[0], TokenKind::Str("it's".into()));
        assert!(lex("'open").is_err());
    }

    #[test]
    fn comments_paper_style() {
        let k = kinds("SELECT (* qualification *) ALL");
        assert_eq!(k.len(), 3); // SELECT, ALL, EOF
        let k = kinds("a -- rest of line\nb");
        assert_eq!(k.len(), 3);
    }

    #[test]
    fn assign_and_comparisons() {
        let k = kinds("face := x <> y <= z >= w < v > u");
        assert!(k.contains(&TokenKind::Assign));
        assert!(k.contains(&TokenKind::Ne));
        assert!(k.contains(&TokenKind::Le));
        assert!(k.contains(&TokenKind::Ge));
    }

    #[test]
    fn unexpected_character_reported_with_offset() {
        let err = lex("abc $").unwrap_err();
        assert_eq!(err.offset, 4);
    }

    #[test]
    fn question_mark_parameter_token() {
        let k = kinds("WHERE brep_no = ?");
        assert!(k.contains(&TokenKind::Question));
    }

    #[test]
    fn locate_renders_line_and_column() {
        let src = "SELECT ALL\nFROM s\nWHERE x $ 1";
        let err = lex(src).unwrap_err().locate(src);
        assert_eq!((err.line, err.column), (3, 9));
        let shown = err.to_string();
        assert!(shown.contains("line 3"), "got: {shown}");
        assert!(shown.contains("column 9"), "got: {shown}");
        // Unlocated errors still fall back to the byte offset.
        let raw = ParseError::new("boom", 7);
        assert!(raw.to_string().contains("offset 7"));
    }

    #[test]
    fn dots_and_parens() {
        let k = kinds("piece_list (0).solid_no");
        assert_eq!(
            k,
            vec![
                TokenKind::Ident("piece_list".into()),
                TokenKind::LParen,
                TokenKind::Int(0),
                TokenKind::RParen,
                TokenKind::Dot,
                TokenKind::Ident("solid_no".into()),
                TokenKind::Eof,
            ]
        );
    }
}
