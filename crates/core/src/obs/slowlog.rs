//! The slow-statement log: a bounded ring of full statement profiles.

use super::profile::StatementProfile;
use parking_lot::{rank, Mutex};
use std::collections::VecDeque;

/// Default ring capacity (overridable via
/// `PrimaBuilder::slow_log_capacity`).
pub const DEFAULT_SLOW_LOG_CAPACITY: usize = 64;

/// Bounded ring buffer of the most recent statements that exceeded the
/// configured threshold: pushing past capacity evicts the oldest entry.
#[derive(Debug)]
pub struct SlowLog {
    // lockrank: obs.0 — bounded profile ring; pushed after the statement
    // has released every kernel lock.
    ring: Mutex<VecDeque<StatementProfile>>,
    capacity: usize,
}

impl SlowLog {
    pub fn new(capacity: usize) -> SlowLog {
        SlowLog { ring: Mutex::new_ranked(VecDeque::new(), rank::OBS), capacity: capacity.max(1) }
    }

    pub fn push(&self, profile: StatementProfile) {
        let mut ring = self.ring.lock();
        if ring.len() == self.capacity {
            ring.pop_front();
        }
        ring.push_back(profile);
    }

    /// The retained profiles, oldest first.
    pub fn entries(&self) -> Vec<StatementProfile> {
        self.ring.lock().iter().cloned().collect()
    }

    pub fn len(&self) -> usize {
        self.ring.lock().len()
    }

    pub fn is_empty(&self) -> bool {
        self.ring.lock().is_empty()
    }

    pub fn capacity(&self) -> usize {
        self.capacity
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::obs::{LayerCounters, Span, SpanKind, StatementKind};
    use std::time::Duration;

    fn profile(n: u64) -> StatementProfile {
        StatementProfile {
            kind: StatementKind::Select,
            statement: format!("q{n}"),
            total: Duration::from_nanos(n),
            root: Span { kind: SpanKind::Statement, nanos: n, count: 1, bytes: 0, children: vec![] },
            counters: LayerCounters::default(),
        }
    }

    #[test]
    fn ring_evicts_oldest() {
        let log = SlowLog::new(3);
        for n in 0..5 {
            log.push(profile(n));
        }
        let kept: Vec<String> = log.entries().into_iter().map(|p| p.statement).collect();
        assert_eq!(kept, ["q2", "q3", "q4"]);
        assert_eq!(log.len(), 3);
    }
}
