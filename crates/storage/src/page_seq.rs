//! Page sequences: arbitrary-length containers (Section 3.3, Fig. 3.2c).
//!
//! "The five page sizes, however, do not meet the most important
//! requirement of the access system concerning containers of arbitrary
//! length. […] Therefore, the storage system offers at its interface page
//! sequences as additional containers. A page sequence treats an arbitrary
//! number of pages as a whole. One of these pages is the so-called header
//! page, all others are component pages. The header page contains the
//! usual page header […] and a page sequence header, i.e. a list of all
//! pages belonging to the appropriate page sequence. A page sequence is
//! supported by a cluster mechanism of the underlying file manager enabling
//! an optimal transfer of the whole page sequence, e.g. by chained I/O."
//!
//! Two access styles are offered, mirroring the paper:
//! * [`PageSequence::read_all`] — the whole sequence in one chained run
//!   (molecule materialisation);
//! * [`PageSequence::read_relative`] — *relative addressing* within the
//!   sequence: fetch only the component pages covering a byte range,
//!   "achieving faster access to single atoms of the atom cluster".

use crate::bytes::le_u32;
use crate::error::{StorageError, StorageResult};
use crate::page::{PageId, PageType};
use crate::segment::{SegmentId, StorageSystem};

/// Handle to a page sequence: the identity of its header page.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PageSeqHandle {
    pub header: PageId,
}

/// Page-sequence operations over a [`StorageSystem`].
///
/// Layout of the header page payload:
/// ```text
/// 0..4   total data length (bytes across all component pages)
/// 4..8   component count n
/// 8..    n little-endian u32 component page numbers (same segment)
/// ```
/// Component pages carry raw data in their payload and link back to the
/// header via the page-header sequence fields.
pub struct PageSequence;

impl PageSequence {
    /// Maximum number of component pages a sequence in this segment can
    /// index (limited by the header page's payload).
    pub fn max_components(storage: &StorageSystem, segment: SegmentId) -> StorageResult<usize> {
        let size = storage.page_size(segment)?;
        Ok((size.payload() - 8) / 4)
    }

    /// Creates a page sequence holding `data`, allocated as one contiguous
    /// run (header first, then components) so chained I/O applies.
    pub fn create(
        storage: &StorageSystem,
        segment: SegmentId,
        data: &[u8],
    ) -> StorageResult<PageSeqHandle> {
        let size = storage.page_size(segment)?;
        let per_page = size.payload();
        let n_components = data.len().div_ceil(per_page).max(1) as u32;
        let max = Self::max_components(storage, segment)?;
        if n_components as usize > max {
            // We cannot know the header id before allocating; report with a
            // placeholder page number.
            return Err(StorageError::SequenceFull {
                header: PageId::new(segment, u32::MAX).desc(),
                capacity: max,
            });
        }
        let first = storage.allocate_run(segment, n_components + 1)?;
        let header_id = first;
        // Write components.
        for i in 0..n_components {
            let comp_id = PageId::new(segment, first.page + 1 + i);
            let mut g = storage.fix_new(comp_id, PageType::SeqComponent)?;
            let start = i as usize * per_page;
            let end = (start + per_page).min(data.len());
            g.write_payload(&data[start..end.max(start)])?;
            g.set_seq_link(Some(header_id.page), i + 1);
        }
        // Write header.
        {
            let mut g = storage.fix_new(header_id, PageType::SeqHeader)?;
            let mut payload = Vec::with_capacity(8 + n_components as usize * 4);
            payload.extend_from_slice(&(data.len() as u32).to_le_bytes());
            payload.extend_from_slice(&n_components.to_le_bytes());
            for i in 0..n_components {
                payload.extend_from_slice(&(first.page + 1 + i).to_le_bytes());
            }
            g.write_payload(&payload)?;
            g.set_seq_link(Some(header_id.page), 0);
        }
        Ok(PageSeqHandle { header: header_id })
    }

    /// Parses the header page: `(total_len, component page numbers)`.
    fn read_header(
        storage: &StorageSystem,
        handle: PageSeqHandle,
    ) -> StorageResult<(usize, Vec<u32>)> {
        let g = storage.fix(handle.header)?;
        if g.page_type() != PageType::SeqHeader {
            return Err(StorageError::WrongPageType {
                expected: "seq-header",
                found: g.page_type() as u8,
            });
        }
        let p = g.payload();
        let total = le_u32(&p[0..4]) as usize;
        let n = le_u32(&p[4..8]) as usize;
        let mut comps = Vec::with_capacity(n);
        for i in 0..n {
            comps.push(le_u32(&p[8 + i * 4..12 + i * 4]));
        }
        Ok((total, comps))
    }

    /// Total data length stored in the sequence.
    pub fn len(storage: &StorageSystem, handle: PageSeqHandle) -> StorageResult<usize> {
        Ok(Self::read_header(storage, handle)?.0)
    }

    /// Number of component pages.
    pub fn component_count(storage: &StorageSystem, handle: PageSeqHandle) -> StorageResult<usize> {
        Ok(Self::read_header(storage, handle)?.1.len())
    }

    /// Whether the components (plus header) are physically contiguous, and
    /// thus eligible for chained I/O.
    pub fn is_contiguous(storage: &StorageSystem, handle: PageSeqHandle) -> StorageResult<bool> {
        let (_, comps) = Self::read_header(storage, handle)?;
        Ok(comps
            .iter()
            .enumerate()
            .all(|(i, &p)| p == handle.header.page + 1 + i as u32))
    }

    /// Reads the entire sequence. If the pages are contiguous this is one
    /// chained run (header + components); otherwise it degrades to per-page
    /// buffered reads.
    pub fn read_all(storage: &StorageSystem, handle: PageSeqHandle) -> StorageResult<Vec<u8>> {
        let (total, comps) = Self::read_header(storage, handle)?;
        let mut out = Vec::with_capacity(total);
        if Self::is_contiguous(storage, handle)? {
            let pages = storage.read_run_chained(handle.header, comps.len() as u32 + 1)?;
            for page in pages.iter().skip(1) {
                out.extend_from_slice(page.payload());
            }
        } else {
            for &c in &comps {
                let g = storage.fix(PageId::new(handle.header.segment, c))?;
                out.extend_from_slice(g.payload());
            }
        }
        out.truncate(total);
        Ok(out)
    }

    /// Relative addressing: reads `len` bytes starting at byte `offset` of
    /// the sequence, touching only the covering component pages through the
    /// buffer.
    pub fn read_relative(
        storage: &StorageSystem,
        handle: PageSeqHandle,
        offset: usize,
        len: usize,
    ) -> StorageResult<Vec<u8>> {
        let (total, comps) = Self::read_header(storage, handle)?;
        let end = (offset + len).min(total);
        if offset >= end {
            return Ok(Vec::new());
        }
        let per_page = storage.page_size(handle.header.segment)?.payload();
        let mut out = Vec::with_capacity(end - offset);
        let first_page = offset / per_page;
        let last_page = (end - 1) / per_page;
        for pidx in first_page..=last_page {
            let comp = *comps.get(pidx).ok_or(StorageError::NotInSequence {
                header: handle.header.desc(),
                page: pidx as u32,
            })?;
            let g = storage.fix(PageId::new(handle.header.segment, comp))?;
            let page_start = pidx * per_page;
            let s = offset.max(page_start) - page_start;
            let e = end.min(page_start + per_page) - page_start;
            out.extend_from_slice(&g.payload()[s..e]);
        }
        Ok(out)
    }

    /// Replaces the sequence's contents. Reuses existing component pages;
    /// allocates additional ones (possibly non-contiguous — the price of
    /// growth) or frees surplus ones.
    #[allow(clippy::unwrap_used, clippy::expect_used)]
    pub fn overwrite(
        storage: &StorageSystem,
        handle: PageSeqHandle,
        data: &[u8],
    ) -> StorageResult<()> {
        let (_, mut comps) = Self::read_header(storage, handle)?;
        let seg = handle.header.segment;
        let per_page = storage.page_size(seg)?.payload();
        let needed = data.len().div_ceil(per_page).max(1);
        let max = Self::max_components(storage, seg)?;
        if needed > max {
            return Err(StorageError::SequenceFull { header: handle.header.desc(), capacity: max });
        }
        // Shrink: free surplus pages.
        while comps.len() > needed {
            // lint: allow(error-hygiene, the chain walk pushed at least the head component)
            let p = comps.pop().unwrap();
            storage.free_page(PageId::new(seg, p))?;
        }
        // Grow: allocate more (wherever the segment has room).
        while comps.len() < needed {
            let id = storage.allocate_page(seg)?;
            comps.push(id.page);
        }
        for (i, &c) in comps.iter().enumerate() {
            let comp_id = PageId::new(seg, c);
            // fix_new is correct even for re-used pages: content is replaced.
            let mut g = storage.fix_new(comp_id, PageType::SeqComponent)?;
            let start = i * per_page;
            let end = (start + per_page).min(data.len());
            g.write_payload(&data[start.min(data.len())..end])?;
            g.set_seq_link(Some(handle.header.page), i as u32 + 1);
        }
        // Rewrite header.
        let mut g = storage.fix_mut(handle.header)?;
        let mut payload = Vec::with_capacity(8 + comps.len() * 4);
        payload.extend_from_slice(&(data.len() as u32).to_le_bytes());
        payload.extend_from_slice(&(comps.len() as u32).to_le_bytes());
        for &c in &comps {
            payload.extend_from_slice(&c.to_le_bytes());
        }
        g.write_payload(&payload)?;
        Ok(())
    }

    /// Deletes the sequence, freeing header and component pages.
    pub fn delete(storage: &StorageSystem, handle: PageSeqHandle) -> StorageResult<()> {
        let (_, comps) = Self::read_header(storage, handle)?;
        for c in comps {
            storage.free_page(PageId::new(handle.header.segment, c))?;
        }
        storage.free_page(handle.header)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::page::PageSize;

    fn sys() -> StorageSystem {
        StorageSystem::in_memory(256 * 1024)
    }

    fn data(n: usize) -> Vec<u8> {
        (0..n).map(|i| (i % 251) as u8).collect()
    }

    #[test]
    fn round_trip_small() {
        let s = sys();
        let seg = s.create_segment(PageSize::Half).unwrap();
        let d = data(100);
        let h = PageSequence::create(&s, seg, &d).unwrap();
        assert_eq!(PageSequence::read_all(&s, h).unwrap(), d);
        assert_eq!(PageSequence::len(&s, h).unwrap(), 100);
        assert_eq!(PageSequence::component_count(&s, h).unwrap(), 1);
    }

    #[test]
    fn round_trip_multi_page() {
        let s = sys();
        let seg = s.create_segment(PageSize::Half).unwrap();
        let d = data(5000); // ~11 half-K pages
        let h = PageSequence::create(&s, seg, &d).unwrap();
        assert_eq!(PageSequence::read_all(&s, h).unwrap(), d);
        assert!(PageSequence::component_count(&s, h).unwrap() > 5);
        assert!(PageSequence::is_contiguous(&s, h).unwrap());
    }

    #[test]
    fn whole_sequence_read_is_one_chained_run() {
        let s = sys();
        let seg = s.create_segment(PageSize::K1).unwrap();
        let d = data(10_000);
        let h = PageSequence::create(&s, seg, &d).unwrap();
        s.flush().unwrap();
        s.io_stats().reset();
        let _ = PageSequence::read_all(&s, h).unwrap();
        let io = s.io_stats().snapshot();
        assert_eq!(io.chained_runs, 1, "whole-sequence read must be chained");
        assert!(io.seeks <= 2);
    }

    #[test]
    fn relative_addressing_touches_few_pages() {
        let s = sys();
        let seg = s.create_segment(PageSize::Half).unwrap();
        let d = data(20_000);
        let h = PageSequence::create(&s, seg, &d).unwrap();
        s.flush().unwrap();
        s.io_stats().reset();
        let slice = PageSequence::read_relative(&s, h, 10_000, 100).unwrap();
        assert_eq!(slice, &d[10_000..10_100]);
        let io = s.io_stats().snapshot();
        // header + at most 2 component pages
        assert!(io.block_reads <= 3, "read {} blocks", io.block_reads);
    }

    #[test]
    fn relative_read_across_page_boundary() {
        let s = sys();
        let seg = s.create_segment(PageSize::Half).unwrap();
        let per = PageSize::Half.payload();
        let d = data(3 * per);
        let h = PageSequence::create(&s, seg, &d).unwrap();
        let slice = PageSequence::read_relative(&s, h, per - 10, 20).unwrap();
        assert_eq!(slice, &d[per - 10..per + 10]);
    }

    #[test]
    fn relative_read_clamps_at_end() {
        let s = sys();
        let seg = s.create_segment(PageSize::Half).unwrap();
        let d = data(100);
        let h = PageSequence::create(&s, seg, &d).unwrap();
        let slice = PageSequence::read_relative(&s, h, 90, 50).unwrap();
        assert_eq!(slice, &d[90..100]);
        assert!(PageSequence::read_relative(&s, h, 200, 10).unwrap().is_empty());
    }

    #[test]
    fn overwrite_grow_and_shrink() {
        let s = sys();
        let seg = s.create_segment(PageSize::Half).unwrap();
        let h = PageSequence::create(&s, seg, &data(100)).unwrap();
        let big = data(4000);
        PageSequence::overwrite(&s, h, &big).unwrap();
        assert_eq!(PageSequence::read_all(&s, h).unwrap(), big);
        let small = data(10);
        PageSequence::overwrite(&s, h, &small).unwrap();
        assert_eq!(PageSequence::read_all(&s, h).unwrap(), small);
        assert_eq!(PageSequence::component_count(&s, h).unwrap(), 1);
    }

    #[test]
    fn delete_frees_pages() {
        let s = sys();
        let seg = s.create_segment(PageSize::Half).unwrap();
        let h = PageSequence::create(&s, seg, &data(2000)).unwrap();
        let before = s.with_segment(seg, super::super::segment::Segment::allocated_pages).unwrap();
        PageSequence::delete(&s, h).unwrap();
        let after = s.with_segment(seg, super::super::segment::Segment::allocated_pages).unwrap();
        assert!(after < before);
        // Freed pages get reused by the next sequence.
        let h2 = PageSequence::create(&s, seg, &data(500)).unwrap();
        assert_eq!(PageSequence::read_all(&s, h2).unwrap(), data(500));
    }

    #[test]
    fn empty_sequence_is_valid() {
        let s = sys();
        let seg = s.create_segment(PageSize::Half).unwrap();
        let h = PageSequence::create(&s, seg, &[]).unwrap();
        assert_eq!(PageSequence::read_all(&s, h).unwrap(), Vec::<u8>::new());
        assert_eq!(PageSequence::component_count(&s, h).unwrap(), 1);
    }

    #[test]
    fn oversized_sequence_rejected() {
        let s = sys();
        let seg = s.create_segment(PageSize::Half).unwrap();
        let max = PageSequence::max_components(&s, seg).unwrap();
        let too_big = vec![0u8; (max + 1) * PageSize::Half.payload()];
        assert!(matches!(
            PageSequence::create(&s, seg, &too_big),
            Err(StorageError::SequenceFull { .. })
        ));
    }

    #[test]
    fn wrong_page_type_detected() {
        let s = sys();
        let seg = s.create_segment(PageSize::Half).unwrap();
        let id = s.allocate_page(seg).unwrap();
        let _ = s.fix_new(id, PageType::Data).unwrap();
        let err = PageSequence::read_all(&s, PageSeqHandle { header: id }).unwrap_err();
        assert!(matches!(err, StorageError::WrongPageType { .. }));
    }
}
