//! Abstract syntax of MQL.
//!
//! MQL "follows the examples of SQL \[X3H286\] and its derivates" (Section
//! 2.2). The constructs covered are exactly those exercised by Table 2.1
//! plus the manipulation statements the paper describes prose-wise
//! (molecule insertion, deletion, modification; component connection and
//! disconnection — their concrete syntax is a documented reconstruction,
//! see DESIGN.md).

use crate::schema::MoleculeGraph;
use crate::value::Value;
use std::fmt;

/// Any MQL statement.
#[derive(Debug, Clone, PartialEq)]
pub enum Statement {
    Select(Query),
    Insert(Insert),
    Delete(Delete),
    Modify(Modify),
}

/// A `SELECT … FROM … [WHERE …]` query.
#[derive(Debug, Clone, PartialEq)]
pub struct Query {
    pub select: SelectList,
    /// The FROM clause: either a named molecule type or an inline
    /// structure expression.
    pub from: FromClause,
    pub predicate: Option<Predicate>,
}

/// The FROM clause before resolution.
#[derive(Debug, Clone, PartialEq)]
pub enum FromClause {
    /// A structure expression (`brep-face-edge-point`,
    /// `brep-edge (face, point)`, `solid.sub-solid (RECURSIVE)`), kept as
    /// a molecule graph whose component names may still refer to named
    /// molecule types.
    Structure(MoleculeGraph),
}

impl FromClause {
    pub fn graph(&self) -> &MoleculeGraph {
        match self {
            FromClause::Structure(g) => g,
        }
    }
}

/// The SELECT clause.
#[derive(Debug, Clone, PartialEq)]
pub enum SelectList {
    /// `SELECT ALL` — the whole molecule.
    All,
    /// Explicit projection items.
    Items(Vec<SelectItem>),
}

/// One projection item.
#[derive(Debug, Clone, PartialEq)]
pub enum SelectItem {
    /// A whole component by name (`edge`, `point`) — unqualified
    /// projection of that component's atoms.
    Component(String),
    /// A single attribute (`solid_no`, or qualified `edge.length`).
    Attr(CompRef),
    /// Qualified projection (`face := SELECT … FROM face WHERE …`,
    /// Table 2.1d): only component atoms satisfying the nested query
    /// qualify, projected by its select list.
    Qualified { component: String, query: Box<Query> },
    /// Parenthesised group of items (Table 2.1d writes
    /// `edge, (point, face := …)`); grouping is structural sugar and is
    /// flattened during validation.
    Group(Vec<SelectItem>),
}

/// A reference to a component('s attribute) inside predicates and
/// projections: `brep_no`, `edge.length`, `piece_list (0).solid_no`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CompRef {
    /// Component (atom type or molecule type) name; `None` means
    /// "resolve against the root / unique owner".
    pub component: Option<String>,
    /// Recursion level for seed qualification (`piece_list (0)`).
    pub level: Option<u32>,
    /// Attribute name.
    pub attr: String,
}

impl fmt::Display for CompRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if let Some(c) = &self.component {
            write!(f, "{c}")?;
            if let Some(l) = self.level {
                write!(f, " ({l})")?;
            }
            write!(f, ".")?;
        }
        write!(f, "{}", self.attr)
    }
}

/// Comparison operators of MQL.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CompareOp {
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
}

/// A WHERE-clause predicate.
#[derive(Debug, Clone, PartialEq)]
pub enum Predicate {
    /// `ref op literal` or `ref op ref` (same-atom comparisons).
    Compare { left: Operand, op: CompareOp, right: Operand },
    /// `ref = EMPTY` (Table 2.1c).
    IsEmpty(CompRef),
    /// `ref <> EMPTY`.
    NotEmpty(CompRef),
    And(Vec<Predicate>),
    Or(Vec<Predicate>),
    Not(Box<Predicate>),
    /// `EXISTS_AT_LEAST (n) component: predicate` (Table 2.1d).
    ExistsAtLeast { n: u32, component: String, inner: Box<Predicate> },
    /// `FOR_ALL component: predicate` — "the ALL-quantifier could also be
    /// used".
    ForAll { component: String, inner: Box<Predicate> },
}

/// A comparison operand.
#[derive(Debug, Clone, PartialEq)]
pub enum Operand {
    Ref(CompRef),
    Literal(Value),
    /// A parameter placeholder (`?` or `:name`) by slot index; the slot
    /// table lives with the prepared statement
    /// ([`crate::mql::parse_statement_params`]).
    Param(u16),
}

/// A literal-or-parameter in value positions of DML statements
/// (`INSERT t (attr: ?)`, `MODIFY … SET attr = :v`).
#[derive(Debug, Clone, PartialEq)]
pub enum ValueExpr {
    Lit(Value),
    Param(u16),
}

impl ValueExpr {
    /// The concrete value, substituting bound parameters. `None` when the
    /// slot is out of range.
    pub fn resolve(&self, params: &[Value]) -> Option<Value> {
        match self {
            ValueExpr::Lit(v) => Some(v.clone()),
            ValueExpr::Param(slot) => params.get(*slot as usize).cloned(),
        }
    }

    /// The literal value, erroring on unbound parameters (direct one-shot
    /// execution path).
    pub fn literal(&self) -> Option<&Value> {
        match self {
            ValueExpr::Lit(v) => Some(v),
            ValueExpr::Param(_) => None,
        }
    }
}

impl From<Value> for ValueExpr {
    fn from(v: Value) -> Self {
        ValueExpr::Lit(v)
    }
}

/// `INSERT <atom type> (attr: value, …) [INTO <component ref of parent>]`
/// — molecule/component insertion; connections are established through
/// the reference-valued attribute assignments (back-references follow
/// automatically).
#[derive(Debug, Clone, PartialEq)]
pub struct Insert {
    pub atom_type: String,
    pub assignments: Vec<(String, ValueExpr)>,
}

/// `DELETE FROM <structure> WHERE …` — removes the qualifying molecules
/// (all component atoms reachable in the molecule structure), thereby
/// automatically disconnecting them.
#[derive(Debug, Clone, PartialEq)]
pub struct Delete {
    pub from: FromClause,
    pub predicate: Option<Predicate>,
    /// `DELETE ONLY (a, b) FROM …`: restrict removal to the named
    /// components, disconnecting them from the surrounding molecule
    /// (component deletion).
    pub only_components: Option<Vec<String>>,
}

/// `MODIFY <structure> SET comp.attr = value, … WHERE …` — attribute
/// modification on qualifying molecules' components; assignments to
/// reference attributes connect/disconnect components.
#[derive(Debug, Clone, PartialEq)]
pub struct Modify {
    pub from: FromClause,
    pub predicate: Option<Predicate>,
    pub assignments: Vec<(CompRef, SetExpr)>,
}

/// Right-hand side of a MODIFY assignment.
#[derive(Debug, Clone, PartialEq)]
pub enum SetExpr {
    Value(ValueExpr),
    /// `CONNECT TO (<query>)`: add references to the atoms selected by a
    /// sub-query (component connection).
    Connect(Box<Query>),
    /// `DISCONNECT (<query>)`: remove references.
    Disconnect(Box<Query>),
}

impl Predicate {
    /// Conjunction constructor flattening nested ANDs.
    #[allow(clippy::unwrap_used, clippy::expect_used)]
    pub fn and(terms: Vec<Predicate>) -> Predicate {
        let mut flat = Vec::new();
        for t in terms {
            match t {
                Predicate::And(inner) => flat.extend(inner),
                other => flat.push(other),
            }
        }
        if flat.len() == 1 {
            // lint: allow(error-hygiene, guarded by the len == 1 check on the preceding line)
            flat.pop().unwrap()
        } else {
            Predicate::And(flat)
        }
    }

    /// All component references mentioned (for validation).
    pub fn comp_refs(&self) -> Vec<&CompRef> {
        let mut out = Vec::new();
        self.collect_refs(&mut out);
        out
    }

    fn collect_refs<'a>(&'a self, out: &mut Vec<&'a CompRef>) {
        match self {
            Predicate::Compare { left, right, .. } => {
                if let Operand::Ref(r) = left {
                    out.push(r);
                }
                if let Operand::Ref(r) = right {
                    out.push(r);
                }
            }
            Predicate::IsEmpty(r) | Predicate::NotEmpty(r) => out.push(r),
            Predicate::And(ts) | Predicate::Or(ts) => {
                ts.iter().for_each(|t| t.collect_refs(out));
            }
            Predicate::Not(t) => t.collect_refs(out),
            Predicate::ExistsAtLeast { inner, .. } | Predicate::ForAll { inner, .. } => {
                inner.collect_refs(out);
            }
        }
    }

    /// A copy with every parameter placeholder replaced by its bound
    /// value. Slots out of range are left in place (binding arity is
    /// checked by the prepared-statement layer before substitution).
    pub fn bind_params(&self, params: &[Value]) -> Predicate {
        let bind_op = |o: &Operand| match o {
            Operand::Param(slot) => match params.get(*slot as usize) {
                Some(v) => Operand::Literal(v.clone()),
                None => Operand::Param(*slot),
            },
            other => other.clone(),
        };
        match self {
            Predicate::Compare { left, op, right } => Predicate::Compare {
                left: bind_op(left),
                op: *op,
                right: bind_op(right),
            },
            Predicate::And(ts) => {
                Predicate::And(ts.iter().map(|t| t.bind_params(params)).collect())
            }
            Predicate::Or(ts) => {
                Predicate::Or(ts.iter().map(|t| t.bind_params(params)).collect())
            }
            Predicate::Not(t) => Predicate::Not(Box::new(t.bind_params(params))),
            Predicate::ExistsAtLeast { n, component, inner } => Predicate::ExistsAtLeast {
                n: *n,
                component: component.clone(),
                inner: Box::new(inner.bind_params(params)),
            },
            Predicate::ForAll { component, inner } => Predicate::ForAll {
                component: component.clone(),
                inner: Box::new(inner.bind_params(params)),
            },
            leaf @ (Predicate::IsEmpty(_) | Predicate::NotEmpty(_)) => leaf.clone(),
        }
    }

    /// Parameter slots referenced by this predicate.
    pub fn param_slots(&self) -> Vec<u16> {
        let mut out = Vec::new();
        self.collect_params(&mut out);
        out
    }

    fn collect_params(&self, out: &mut Vec<u16>) {
        match self {
            Predicate::Compare { left, right, .. } => {
                for o in [left, right] {
                    if let Operand::Param(slot) = o {
                        out.push(*slot);
                    }
                }
            }
            Predicate::IsEmpty(_) | Predicate::NotEmpty(_) => {}
            Predicate::And(ts) | Predicate::Or(ts) => {
                ts.iter().for_each(|t| t.collect_params(out));
            }
            Predicate::Not(t) => t.collect_params(out),
            Predicate::ExistsAtLeast { inner, .. } | Predicate::ForAll { inner, .. } => {
                inner.collect_params(out);
            }
        }
    }
}

impl Query {
    /// A copy with every parameter placeholder replaced by its bound
    /// value, recursing into qualified-projection sub-queries.
    pub fn bind_params(&self, params: &[Value]) -> Query {
        fn bind_item(item: &SelectItem, params: &[Value]) -> SelectItem {
            match item {
                SelectItem::Qualified { component, query } => SelectItem::Qualified {
                    component: component.clone(),
                    query: Box::new(query.bind_params(params)),
                },
                SelectItem::Group(items) => {
                    SelectItem::Group(items.iter().map(|i| bind_item(i, params)).collect())
                }
                leaf => leaf.clone(),
            }
        }
        let select = match &self.select {
            SelectList::All => SelectList::All,
            SelectList::Items(items) => {
                SelectList::Items(items.iter().map(|i| bind_item(i, params)).collect())
            }
        };
        Query {
            select,
            from: self.from.clone(),
            predicate: self.predicate.as_ref().map(|p| p.bind_params(params)),
        }
    }
}

impl Statement {
    /// A copy with every parameter placeholder replaced by its bound
    /// value (prepared-statement execution substitutes before running the
    /// ordinary DML path). Substitution recurses into nested queries —
    /// qualified projections and `CONNECT`/`DISCONNECT` sub-queries.
    pub fn bind_params(&self, params: &[Value]) -> Statement {
        let bind_ve = |ve: &ValueExpr| match ve {
            ValueExpr::Param(slot) => match params.get(*slot as usize) {
                Some(v) => ValueExpr::Lit(v.clone()),
                None => ValueExpr::Param(*slot),
            },
            lit => lit.clone(),
        };
        match self {
            Statement::Select(q) => Statement::Select(q.bind_params(params)),
            Statement::Insert(i) => Statement::Insert(Insert {
                atom_type: i.atom_type.clone(),
                assignments: i
                    .assignments
                    .iter()
                    .map(|(n, v)| (n.clone(), bind_ve(v)))
                    .collect(),
            }),
            Statement::Delete(d) => Statement::Delete(Delete {
                from: d.from.clone(),
                predicate: d.predicate.as_ref().map(|p| p.bind_params(params)),
                only_components: d.only_components.clone(),
            }),
            Statement::Modify(m) => Statement::Modify(Modify {
                from: m.from.clone(),
                predicate: m.predicate.as_ref().map(|p| p.bind_params(params)),
                assignments: m
                    .assignments
                    .iter()
                    .map(|(t, e)| {
                        let e = match e {
                            SetExpr::Value(ve) => SetExpr::Value(bind_ve(ve)),
                            SetExpr::Connect(q) => {
                                SetExpr::Connect(Box::new(q.bind_params(params)))
                            }
                            SetExpr::Disconnect(q) => {
                                SetExpr::Disconnect(Box::new(q.bind_params(params)))
                            }
                        };
                        (t.clone(), e)
                    })
                    .collect(),
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn comp_ref_display() {
        let r = CompRef { component: Some("piece_list".into()), level: Some(0), attr: "solid_no".into() };
        assert_eq!(r.to_string(), "piece_list (0).solid_no");
        let r = CompRef { component: None, level: None, attr: "brep_no".into() };
        assert_eq!(r.to_string(), "brep_no");
    }

    #[test]
    fn and_flattens() {
        let a = Predicate::IsEmpty(CompRef { component: None, level: None, attr: "sub".into() });
        let b = Predicate::NotEmpty(CompRef { component: None, level: None, attr: "sup".into() });
        let p = Predicate::and(vec![a.clone(), Predicate::and(vec![b.clone()])]);
        assert_eq!(p, Predicate::And(vec![a.clone(), b]));
        assert_eq!(Predicate::and(vec![a.clone()]), a);
    }

    #[test]
    fn comp_refs_collected() {
        let p = Predicate::And(vec![
            Predicate::Compare {
                left: Operand::Ref(CompRef { component: None, level: None, attr: "x".into() }),
                op: CompareOp::Gt,
                right: Operand::Literal(Value::Int(1)),
            },
            Predicate::ExistsAtLeast {
                n: 2,
                component: "edge".into(),
                inner: Box::new(Predicate::IsEmpty(CompRef {
                    component: Some("edge".into()),
                    level: None,
                    attr: "face".into(),
                })),
            },
        ]);
        let refs = p.comp_refs();
        assert_eq!(refs.len(), 2);
    }
}
