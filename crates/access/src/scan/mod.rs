//! Scans: navigational set access with a current position.
//!
//! "Effective processing of data system operations critically depends on
//! the availability of powerful navigational capabilities. This includes
//! the notion of a 'position' in a set of atoms […] scans are introduced
//! as a concept to control a dynamically defined set of atoms, to hold a
//! current position in such a set, and to successively accept single
//! atoms (NEXT/PRIOR) for further processing." (Section 3.2.)
//!
//! The five scans of the paper:
//!
//! | scan | source | order | module |
//! |------|--------|-------|--------|
//! | atom-type scan | base record file | system-defined (physical) | [`atom_type`] |
//! | sort scan | sort order / access path / explicit sort | key order | [`sort`] |
//! | access-path scan | B*-tree or grid file | key order, per-key directions | [`access_path`] |
//! | atom-cluster-type scan | characteristic atoms | system-defined | [`cluster`] |
//! | atom-cluster scan | one cluster's members | system-defined | [`cluster`] |

pub mod access_path;
pub mod atom_type;
pub mod cluster;
pub mod sort;

pub use access_path::{AccessPathScan, MultidimScan};
pub use atom_type::AtomTypeScan;
pub use cluster::{AtomClusterScan, AtomClusterTypeScan};
pub use sort::{SortScan, SortSource};

use crate::atom::Atom;
use crate::error::AccessResult;

/// Scan direction for a single step.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    Next,
    Prior,
}

/// Common cursor interface of all five scans.
pub trait Scan {
    /// Moves to the next qualifying atom (in scan order) and returns it.
    fn next(&mut self) -> AccessResult<Option<Atom>>;

    /// Moves to the previous qualifying atom.
    fn prior(&mut self) -> AccessResult<Option<Atom>>;

    /// One step in either direction.
    fn step(&mut self, dir: Direction) -> AccessResult<Option<Atom>> {
        match dir {
            Direction::Next => self.next(),
            Direction::Prior => self.prior(),
        }
    }

    /// Drains the remainder of the scan forward.
    fn collect_remaining(&mut self) -> AccessResult<Vec<Atom>> {
        let mut out = Vec::new();
        while let Some(a) = self.next()? {
            out.push(a);
        }
        Ok(out)
    }
}
