//! E-F2.1: the three modeling approaches of Fig. 2.1 on the same data —
//! redundancy, update cost and (a)symmetry behave as the paper describes.

use prima_workloads::modeling::{build, ModelingApproach};
use prima_workloads::exec;

#[test]
fn hierarchical_modeling_is_redundant() {
    let (_db, stats) = build(ModelingApproach::HierarchicalRedundant, 3).unwrap();
    // Every point is stored once per (face, edge) incidence: factor 6 for
    // a box (3 faces × 2 edges share each corner).
    assert!(stats.point_copies >= 5.9, "factor {}", stats.point_copies);
    assert!(stats.move_update_cost >= 6, "moving a corner touches every copy");
}

#[test]
fn network_modeling_avoids_redundancy_but_pays_connectors() {
    let (db, stats) = build(ModelingApproach::NetworkConnectors, 3).unwrap();
    assert_eq!(stats.point_copies, 1.0);
    assert_eq!(stats.move_update_cost, 1);
    // Connector records: 24 edge_point + 24 face_edge per solid.
    let s = db.schema();
    let fe = db.access().atom_count(s.type_id("face_edge").unwrap()).unwrap();
    let ep = db.access().atom_count(s.type_id("edge_point").unwrap()).unwrap();
    assert_eq!(fe, 3 * 24);
    assert_eq!(ep, 3 * 24);
}

#[test]
fn mad_modeling_is_non_redundant_and_connector_free() {
    let (_db, stats) = build(ModelingApproach::MadDirect, 3).unwrap();
    assert_eq!(stats.point_copies, 1.0);
    assert_eq!(stats.move_update_cost, 1);
    // 3 solids: 3 + 3 breps + 18 faces + 36 edges + 24 points.
    assert_eq!(stats.atoms, 3 + 3 + 18 + 36 + 24);
}

#[test]
fn atom_count_ordering_matches_fig_2_1() {
    let (_h_db, h) = build(ModelingApproach::HierarchicalRedundant, 2).unwrap();
    let (_n_db, n) = build(ModelingApproach::NetworkConnectors, 2).unwrap();
    let (_m_db, m) = build(ModelingApproach::MadDirect, 2).unwrap();
    assert!(h.atoms > n.atoms, "redundant copies outweigh connectors: {} vs {}", h.atoms, n.atoms);
    assert!(n.atoms > m.atoms, "connectors outweigh direct n:m: {} vs {}", n.atoms, m.atoms);
}

#[test]
fn only_mad_answers_the_symmetric_query() {
    // "looking from points to all corresponding edges and faces is not
    // possible in the hierarchical example".
    let (mdb, _) = build(ModelingApproach::MadDirect, 1).unwrap();
    let set = exec::query(&mdb, "SELECT ALL FROM point-edge WHERE point_id <> EMPTY").unwrap();
    assert_eq!(set.len(), 8);
    assert!(set.molecules.iter().all(|m| m.root.children.len() == 3));

    let (hdb, _) = build(ModelingApproach::HierarchicalRedundant, 1).unwrap();
    let set = exec::query(&hdb, "SELECT ALL FROM hpoint-hedge WHERE point_no = 1").unwrap();
    // The copy sees only its owning edge.
    assert_eq!(set.molecules[0].root.children.len(), 1);
}

#[test]
fn same_geometry_same_query_answers() {
    // The network and MAD models must agree on topology queries (the
    // hierarchical one cannot even express them symmetrically).
    let (ndb, _) = build(ModelingApproach::NetworkConnectors, 2).unwrap();
    let (mdb, _) = build(ModelingApproach::MadDirect, 2).unwrap();
    // Edges per solid's brep: network via nedge count, MAD via edge count.
    let n_edges = ndb.access().atom_count(ndb.schema().type_id("nedge").unwrap()).unwrap();
    let m_edges = mdb.access().atom_count(mdb.schema().type_id("edge").unwrap()).unwrap();
    assert_eq!(n_edges, m_edges);
}
