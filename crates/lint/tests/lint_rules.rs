//! End-to-end rule coverage: every fixture under `tests/fixtures/` seeds
//! exactly one violation of one rule, and the real kernel tree must be
//! clean.

// Integration-test harness: panicking on a broken fixture is the point
// (clippy's allow-*-in-tests only covers `#[cfg(test)]` items).
#![allow(clippy::expect_used)]

use prima_lint::{analyze_file, collect_result_fns, Rule};
use std::path::{Path, PathBuf};

fn analyze_fixture(name: &str) -> Vec<prima_lint::Finding> {
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures").join(name);
    let src = std::fs::read_to_string(&path).expect("fixture readable");
    let sources = vec![(path.clone(), src.clone())];
    let result_fns = collect_result_fns(&sources);
    analyze_file(&path, &src, &result_fns)
}

fn check(name: &str, rule: Rule) {
    let findings = analyze_fixture(name);
    assert_eq!(findings.len(), 1, "{name} must fire exactly once, got: {findings:#?}");
    assert_eq!(findings[0].rule, rule, "{name} fired the wrong rule: {findings:#?}");
}

#[test]
fn rank_inversion_fires_once() {
    check("rank_inversion.rs", Rule::LockRank);
}

#[test]
fn lock_across_io_fires_once() {
    check("lock_across_io.rs", Rule::LockAcrossIo);
}

#[test]
fn bare_unwrap_fires_once_outside_tests() {
    check("bare_unwrap.rs", Rule::ErrorHygiene);
}

#[test]
fn ignored_result_fires_once() {
    check("ignored_result.rs", Rule::IgnoredResult);
}

#[test]
fn allow_without_reason_fires_once_and_suppresses() {
    check("allow_no_reason.rs", Rule::AllowWithoutReason);
}

/// The self-check the CI `lint` job re-runs via the binary: the real
/// kernel tree has zero unexplained findings.
#[test]
fn real_tree_is_clean() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let findings = prima_lint::run(&root).expect("kernel sources readable");
    assert!(
        findings.is_empty(),
        "prima-lint found {} problem(s) in the real tree:\n{}",
        findings.len(),
        findings.iter().map(ToString::to_string).collect::<Vec<_>>().join("\n")
    );
}
