//! Processing plans (the internal query representation of Section 3.1).
//!
//! "Query preparation creates a finer grained processing plan adding
//! functional descriptors for sorting, duplicate elimination, evaluation
//! of qualified projection, molecule join as well as recursion."
//!
//! [`ResolvedQuery`] is that internal form: the resolved hierarchical
//! structure with per-edge associations, the pushed-down root SSA, the
//! residual molecule predicate, and per-node projection descriptors.
//! [`RootAccess`] records the molecule-type-specific access decision
//! ("a molecule-type-specific optimization has to be aware of access
//! methods, sort orders, partitions of atom types, and physical
//! clusters").

use prima_access::ssa::Ssa;
use prima_mad::mql::Predicate;
use prima_mad::schema::Association;
use prima_mad::value::{AtomTypeId, Value};

/// One resolved structure node.
#[derive(Debug, Clone)]
pub struct ResolvedNode {
    /// The component label (the atom type name as written in FROM).
    pub label: String,
    pub atom_type: AtomTypeId,
    /// Association used to reach this node from its parent (`None` for
    /// the root). `via.from` is the parent-side reference attribute.
    pub via: Option<Association>,
    /// Recursive edge: the node re-expands level by level.
    pub recursive: bool,
    pub parent: Option<usize>,
    pub children: Vec<usize>,
}

/// Per-node projection descriptor ("evaluation of qualified projection").
#[derive(Debug, Clone, PartialEq)]
pub enum NodeProjection {
    /// Keep the whole atom.
    All,
    /// Keep only these attribute indices.
    Attrs(Vec<usize>),
    /// Qualified projection: keep only atoms satisfying `ssa`, projected
    /// onto `attrs` (`None` = all attributes).
    Qualified { attrs: Option<Vec<usize>>, ssa: Ssa },
    /// Component not selected: the atom stays in the structure as an
    /// identifier-only skeleton.
    Exclude,
}

/// Resolved SELECT clause.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ResolvedSelect {
    pub per_node: Vec<NodeProjection>,
}

/// The validated, resolved internal query form.
#[derive(Debug, Clone)]
pub struct ResolvedQuery {
    /// Pre-order node list; node 0 is the root.
    pub nodes: Vec<ResolvedNode>,
    /// Molecule-type aliases from inlining: `(name, node index)`.
    pub aliases: Vec<(String, usize)>,
    pub select: ResolvedSelect,
    /// Conjuncts decidable on the root atom, pushed down to the root
    /// access.
    pub root_ssa: Ssa,
    /// Remaining predicate, evaluated per assembled molecule.
    pub residual: Option<Predicate>,
    /// Attribute names of the root atom type (for cheap lookup without a
    /// schema reference).
    pub root_attrs: Vec<String>,
}

impl ResolvedQuery {
    /// First node with the given label.
    pub fn node_by_label(&self, label: &str) -> Option<usize> {
        self.nodes.iter().position(|n| n.label == label)
    }

    /// Attribute index on the root type, via the schema-resolved label.
    /// (The schema is not stored here; validation pre-resolves attribute
    /// existence, and execution carries the schema. This helper is backed
    /// by the root SSA conversion, which resolves through the query's
    /// side schema view set during validation.)
    pub fn root_attr_index(&self, attr: &str) -> Option<usize> {
        self.root_attrs.iter().position(|a| a == attr)
    }

    /// Whether any node is recursive.
    pub fn is_recursive(&self) -> bool {
        self.nodes.iter().any(|n| n.recursive)
    }

    /// A copy of the plan with every parameter placeholder replaced by
    /// its bound value — the cheap per-execution step of a prepared
    /// statement (structure resolution, pushdown split and projection
    /// descriptors are reused verbatim; only predicate values change).
    pub fn bind_params(&self, params: &[prima_mad::value::Value]) -> ResolvedQuery {
        let mut bound = self.clone();
        bound.root_ssa = self.root_ssa.bind(params);
        bound.residual = self.residual.as_ref().map(|p| p.bind_params(params));
        bound
    }

    /// Whether the plan still contains unbound parameter placeholders.
    pub fn has_params(&self) -> bool {
        self.root_ssa.has_params()
            || self
                .residual
                .as_ref()
                .is_some_and(|p| !p.param_slots().is_empty())
    }
}

/// How qualifying root atoms are obtained.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RootAccess {
    /// Direct key lookup (`KEYS_ARE` equality).
    KeyLookup { attr: usize },
    /// B*-tree access-path scan.
    AccessPath { index_name: String },
    /// Scan of a covering partition (denser records than the base file).
    PartitionScan { name: String },
    /// Full atom-type scan with pushed-down SSA.
    TypeScan,
}

/// Descriptor of the chosen physical strategy for one query execution
/// (reported by benches and EXPLAIN-style output).
#[derive(Debug, Clone, PartialEq)]
pub struct ExecutionTrace {
    pub root_access: RootAccess,
    /// Cluster structure used to prefetch molecule atoms, if any.
    pub cluster_used: Option<String>,
    /// Number of root candidates inspected.
    pub roots_inspected: usize,
    /// Molecules delivered.
    pub molecules: usize,
    /// Atoms fetched during assembly (including prefetch).
    pub atoms_fetched: usize,
}

impl Default for ExecutionTrace {
    fn default() -> Self {
        ExecutionTrace {
            root_access: RootAccess::TypeScan,
            cluster_used: None,
            roots_inspected: 0,
            molecules: 0,
            atoms_fetched: 0,
        }
    }
}

/// A literal bound extracted from the root SSA (used to route to access
/// paths): `attr op value`.
#[derive(Debug, Clone, PartialEq)]
pub struct RootBound {
    pub attr: usize,
    pub op: prima_access::CmpOp,
    pub value: Value,
}

/// Extracts simple comparison conjuncts from an SSA (helper for root
/// access planning).
pub fn root_bounds(ssa: &Ssa) -> Vec<RootBound> {
    let mut out = Vec::new();
    collect_bounds(ssa, &mut out);
    out
}

fn collect_bounds(ssa: &Ssa, out: &mut Vec<RootBound>) {
    match ssa {
        Ssa::Cmp { attr, op, value } => {
            out.push(RootBound { attr: *attr, op: *op, value: value.clone() });
        }
        Ssa::And(ts) => ts.iter().for_each(|t| collect_bounds(t, out)),
        _ => {}
    }
}
