//! E-F2.3: the verbatim DDL of Fig. 2.3 loads, validates, enforces its
//! constraints, and round-trips through the pretty-printer.

use prima::{Prima, Value};
use prima_mad::ddl::{load_script, parse_script, DdlStatement, FIG_2_3_DDL};
use prima_mad::{AttrType, Cardinality, Schema};

#[test]
fn fig_2_3_parses_completely() {
    let stmts = parse_script(FIG_2_3_DDL).unwrap();
    let types = stmts.iter().filter(|s| matches!(s, DdlStatement::CreateAtomType(_))).count();
    let mols =
        stmts.iter().filter(|s| matches!(s, DdlStatement::DefineMoleculeType(_))).count();
    assert_eq!(types, 5, "solid, brep, face, edge, point");
    assert_eq!(mols, 4, "edge_obj, face_obj, brep_obj, piece_list");
}

#[test]
fn all_associations_are_symmetric() {
    let mut schema = Schema::new();
    load_script(&mut schema, FIG_2_3_DDL).unwrap();
    schema.validate().unwrap();
    // Count associations: each one appears in both directions.
    let assocs = schema.associations();
    // solid: sub, super, brep = 3; brep: solid, faces, edges, points = 4;
    // face: border, crosspoint, brep = 3; edge: boundary, face, brep = 3;
    // point: line, face, brep = 3 -> 16 direction entries.
    assert_eq!(assocs.len(), 16);
}

#[test]
fn cardinalities_of_fig_2_3() {
    let mut schema = Schema::new();
    load_script(&mut schema, FIG_2_3_DDL).unwrap();
    let brep = schema.type_by_name("brep").unwrap();
    for (attr, min) in [("faces", 4), ("edges", 6), ("points", 4)] {
        match &brep.attribute(attr).unwrap().ty {
            AttrType::RefSet(_, c) => assert_eq!(*c, Cardinality::var(min), "{attr}"),
            other => panic!("{attr}: {other:?}"),
        }
    }
    let edge = schema.type_by_name("edge").unwrap();
    match &edge.attribute("boundary").unwrap().ty {
        AttrType::RefSet(_, c) => assert_eq!(*c, Cardinality::var(2)),
        other => panic!("{other:?}"),
    }
}

#[test]
fn keys_are_enforced_at_runtime() {
    let db = Prima::builder().build_with_ddl(FIG_2_3_DDL).unwrap();
    db.insert("solid", &[("solid_no", Value::Int(4711))]).unwrap();
    let err = db.insert("solid", &[("solid_no", Value::Int(4711))]).unwrap_err();
    assert!(err.to_string().contains("duplicate key"), "{err}");
}

#[test]
fn record_attribute_round_trips() {
    let db = Prima::builder().build_with_ddl(FIG_2_3_DDL).unwrap();
    let placement = Value::Record(vec![
        ("x_coord".into(), Value::Real(1.0)),
        ("y_coord".into(), Value::Real(2.0)),
        ("z_coord".into(), Value::Real(3.0)),
    ]);
    let p = db.insert("point", &[("placement", placement.clone())]).unwrap();
    let back = db.read(p).unwrap();
    let schema = db.schema();
    let idx = schema.type_by_name("point").unwrap().attribute_index("placement").unwrap();
    assert_eq!(back.values[idx], placement);
}

#[test]
fn wrong_record_shape_rejected() {
    let db = Prima::builder().build_with_ddl(FIG_2_3_DDL).unwrap();
    let bad = Value::Record(vec![("x".into(), Value::Real(1.0))]);
    assert!(db.insert("point", &[("placement", bad)]).is_err());
}

#[test]
fn pretty_printed_types_reparse() {
    let mut schema = Schema::new();
    load_script(&mut schema, FIG_2_3_DDL).unwrap();
    for at in schema.atom_types() {
        let printed = at.to_string();
        let reparsed = parse_script(&printed).unwrap();
        let DdlStatement::CreateAtomType(back) = &reparsed[0] else {
            panic!("expected atom type");
        };
        assert_eq!(back.name, at.name);
        assert_eq!(back.attributes.len(), at.attributes.len(), "{printed}");
        for (a, b) in back.attributes.iter().zip(&at.attributes) {
            assert_eq!(a.name, b.name);
            assert_eq!(a.ty, b.ty, "attribute {} of {}", a.name, at.name);
        }
    }
}

#[test]
fn max_cardinality_enforced() {
    let ddl = "
        CREATE ATOM_TYPE pair (id: IDENTIFIER, n: INTEGER,
            items: SET_OF (REF_TO (item.owner)) (0,2));
        CREATE ATOM_TYPE item (id: IDENTIFIER,
            owner: SET_OF (REF_TO (pair.items)));
    ";
    let db = Prima::builder().build_with_ddl(ddl).unwrap();
    let i1 = db.insert("item", &[]).unwrap();
    let i2 = db.insert("item", &[]).unwrap();
    let i3 = db.insert("item", &[]).unwrap();
    db.insert("pair", &[("items", Value::ref_set(vec![i1, i2]))]).unwrap();
    let err = db
        .insert("pair", &[("items", Value::ref_set(vec![i1, i2, i3]))])
        .unwrap_err();
    assert!(err.to_string().contains("cardinality"), "{err}");
}
