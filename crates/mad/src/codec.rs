//! Value encoding: the on-record byte format and order-preserving keys.
//!
//! Two encodings live here:
//!
//! * [`encode_value`]/[`decode_value`] — a self-describing tagged format
//!   used for physical records (atoms, partitions, cluster members). The
//!   access system treats physical records as "byte strings of variable
//!   length" (Section 3.2); this codec is how atoms become such strings.
//! * [`encode_key`] — a *memcomparable* encoding: byte-wise lexicographic
//!   comparison of encoded keys equals [`Value::total_cmp`] on the values.
//!   B*-tree access paths and sort orders store these.

use crate::value::{AtomId, Value};

/// Errors when decoding a physical record back into values.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodecError {
    /// Input ended in the middle of a value.
    Truncated,
    /// Unknown tag byte at the given offset.
    BadTag(u8, usize),
    /// String payload was not valid UTF-8.
    BadUtf8,
}

impl std::fmt::Display for CodecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CodecError::Truncated => write!(f, "record truncated"),
            CodecError::BadTag(t, off) => write!(f, "unknown value tag {t} at offset {off}"),
            CodecError::BadUtf8 => write!(f, "invalid utf-8 in string value"),
        }
    }
}

impl std::error::Error for CodecError {}

mod tag {
    pub const NULL: u8 = 0;
    pub const ID: u8 = 1;
    pub const INT: u8 = 2;
    pub const REAL: u8 = 3;
    pub const BOOL_FALSE: u8 = 4;
    pub const BOOL_TRUE: u8 = 5;
    pub const STR: u8 = 6;
    pub const REF_NONE: u8 = 7;
    pub const REF_SOME: u8 = 8;
    pub const REF_SET: u8 = 9;
    pub const RECORD: u8 = 10;
    pub const ARRAY: u8 = 11;
    pub const SET: u8 = 12;
    pub const LIST: u8 = 13;
}

/// Appends the tagged encoding of `v` to `out`.
pub fn encode_value(v: &Value, out: &mut Vec<u8>) {
    match v {
        Value::Null => out.push(tag::NULL),
        Value::Id(id) => {
            out.push(tag::ID);
            put_atom_id(id, out);
        }
        Value::Int(i) => {
            out.push(tag::INT);
            out.extend_from_slice(&i.to_le_bytes());
        }
        Value::Real(r) => {
            out.push(tag::REAL);
            out.extend_from_slice(&r.to_le_bytes());
        }
        Value::Bool(false) => out.push(tag::BOOL_FALSE),
        Value::Bool(true) => out.push(tag::BOOL_TRUE),
        Value::Str(s) => {
            out.push(tag::STR);
            put_len(s.len(), out);
            out.extend_from_slice(s.as_bytes());
        }
        Value::Ref(None) => out.push(tag::REF_NONE),
        Value::Ref(Some(id)) => {
            out.push(tag::REF_SOME);
            put_atom_id(id, out);
        }
        Value::RefSet(ids) => {
            out.push(tag::REF_SET);
            put_len(ids.len(), out);
            for id in ids {
                put_atom_id(id, out);
            }
        }
        Value::Record(fields) => {
            out.push(tag::RECORD);
            put_len(fields.len(), out);
            for (name, val) in fields {
                put_len(name.len(), out);
                out.extend_from_slice(name.as_bytes());
                encode_value(val, out);
            }
        }
        Value::Array(vs) | Value::Set(vs) | Value::List(vs) => {
            out.push(match v {
                Value::Array(_) => tag::ARRAY,
                Value::Set(_) => tag::SET,
                _ => tag::LIST,
            });
            put_len(vs.len(), out);
            for x in vs {
                encode_value(x, out);
            }
        }
    }
}

/// Encodes a slice of values (an atom's attribute vector) into one record
/// image.
pub fn encode_values(vs: &[Value]) -> Vec<u8> {
    let mut out = Vec::with_capacity(16 * vs.len());
    put_len(vs.len(), &mut out);
    for v in vs {
        encode_value(v, &mut out);
    }
    out
}

/// Decodes one value from `buf` at `*pos`, advancing `*pos`.
pub fn decode_value(buf: &[u8], pos: &mut usize) -> Result<Value, CodecError> {
    let t = *buf.get(*pos).ok_or(CodecError::Truncated)?;
    *pos += 1;
    Ok(match t {
        tag::NULL => Value::Null,
        tag::ID => Value::Id(get_atom_id(buf, pos)?),
        tag::INT => Value::Int(i64::from_le_bytes(take::<8>(buf, pos)?)),
        tag::REAL => Value::Real(f64::from_le_bytes(take::<8>(buf, pos)?)),
        tag::BOOL_FALSE => Value::Bool(false),
        tag::BOOL_TRUE => Value::Bool(true),
        tag::STR => {
            let n = get_len(buf, pos)?;
            let bytes = take_slice(buf, pos, n)?;
            Value::Str(String::from_utf8(bytes.to_vec()).map_err(|_| CodecError::BadUtf8)?)
        }
        tag::REF_NONE => Value::Ref(None),
        tag::REF_SOME => Value::Ref(Some(get_atom_id(buf, pos)?)),
        tag::REF_SET => {
            let n = get_len(buf, pos)?;
            let mut ids = Vec::with_capacity(n);
            for _ in 0..n {
                ids.push(get_atom_id(buf, pos)?);
            }
            Value::RefSet(ids)
        }
        tag::RECORD => {
            let n = get_len(buf, pos)?;
            let mut fields = Vec::with_capacity(n);
            for _ in 0..n {
                let ln = get_len(buf, pos)?;
                let name = String::from_utf8(take_slice(buf, pos, ln)?.to_vec())
                    .map_err(|_| CodecError::BadUtf8)?;
                let val = decode_value(buf, pos)?;
                fields.push((name, val));
            }
            Value::Record(fields)
        }
        tag::ARRAY | tag::SET | tag::LIST => {
            let n = get_len(buf, pos)?;
            let mut vs = Vec::with_capacity(n);
            for _ in 0..n {
                vs.push(decode_value(buf, pos)?);
            }
            match t {
                tag::ARRAY => Value::Array(vs),
                tag::SET => Value::Set(vs),
                _ => Value::List(vs),
            }
        }
        other => return Err(CodecError::BadTag(other, *pos - 1)),
    })
}

/// Decodes a record image produced by [`encode_values`].
pub fn decode_values(buf: &[u8]) -> Result<Vec<Value>, CodecError> {
    let mut pos = 0;
    let n = get_len(buf, &mut pos)?;
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        out.push(decode_value(buf, &mut pos)?);
    }
    Ok(out)
}

fn put_len(n: usize, out: &mut Vec<u8>) {
    out.extend_from_slice(&(n as u32).to_le_bytes());
}

fn get_len(buf: &[u8], pos: &mut usize) -> Result<usize, CodecError> {
    Ok(u32::from_le_bytes(take::<4>(buf, pos)?) as usize)
}

fn put_atom_id(id: &AtomId, out: &mut Vec<u8>) {
    out.extend_from_slice(&id.atom_type.to_le_bytes());
    out.extend_from_slice(&id.seq.to_le_bytes());
}

fn get_atom_id(buf: &[u8], pos: &mut usize) -> Result<AtomId, CodecError> {
    let atom_type = u16::from_le_bytes(take::<2>(buf, pos)?);
    let seq = u64::from_le_bytes(take::<8>(buf, pos)?);
    Ok(AtomId { atom_type, seq })
}

fn take<const N: usize>(buf: &[u8], pos: &mut usize) -> Result<[u8; N], CodecError> {
    let s = buf.get(*pos..*pos + N).ok_or(CodecError::Truncated)?;
    *pos += N;
    let mut a = [0u8; N];
    a.copy_from_slice(s);
    Ok(a)
}

fn take_slice<'a>(buf: &'a [u8], pos: &mut usize, n: usize) -> Result<&'a [u8], CodecError> {
    let s = buf.get(*pos..*pos + n).ok_or(CodecError::Truncated)?;
    *pos += n;
    Ok(s)
}

// ---------------------------------------------------------------------------
// Order-preserving key encoding
// ---------------------------------------------------------------------------

/// Kind-rank bytes mirror [`Value::total_cmp`]'s cross-kind ordering.
fn key_rank(v: &Value) -> u8 {
    match v {
        Value::Null => 0,
        Value::Bool(_) => 1,
        Value::Int(_) | Value::Real(_) => 2,
        Value::Str(_) => 3,
        Value::Id(_) => 4,
        Value::Ref(_) => 5,
        Value::RefSet(_) => 6,
        Value::Record(_) => 7,
        Value::Array(_) => 8,
        Value::Set(_) => 9,
        Value::List(_) => 10,
    }
}

/// Appends a memcomparable encoding of `v` to `out`: for any two values
/// `a`, `b`, `encode_key(a) <= encode_key(b)` (bytewise) iff
/// `a.total_cmp(b) != Greater`.
pub fn encode_key(v: &Value, out: &mut Vec<u8>) {
    out.push(key_rank(v));
    match v {
        Value::Null => {}
        Value::Bool(b) => out.push(*b as u8),
        // Numbers: both Int and Real map into the f64 order-preserving
        // image so cross-kind numeric comparison works. i64 values beyond
        // 2^53 lose precision in f64; to keep the order exact we encode
        // ints as (f64 image, raw offset image) — the second component
        // breaks ties exactly.
        Value::Int(i) => {
            put_f64_key(*i as f64, out);
            out.extend_from_slice(&((*i as u64) ^ (1 << 63)).to_be_bytes());
        }
        Value::Real(r) => {
            put_f64_key(*r, out);
            // Reals tie-break "below" any equal int image: pad with the
            // midpoint marker so Int(3) == Real(3.0) compares equal-ish;
            // exact equality of keys is only required for identical
            // values, and total_cmp says Int(3)==Real(3.0), so use the
            // same tie-break image derived from the float.
            let i = *r as i64;
            let exact = i as f64 == *r;
            if exact {
                out.extend_from_slice(&((i as u64) ^ (1 << 63)).to_be_bytes());
            } else {
                // Non-integral reals: tie-break bytes derived from the
                // float image keep uniqueness without disturbing order.
                out.extend_from_slice(&f64_key_image(*r).to_be_bytes());
            }
        }
        Value::Str(s) => put_escaped(s.as_bytes(), out),
        Value::Id(id) => put_atom_id_key(id, out),
        Value::Ref(opt) => {
            match opt {
                None => out.push(0),
                Some(id) => {
                    out.push(1);
                    put_atom_id_key(id, out);
                }
            }
        }
        Value::RefSet(ids) => {
            for id in ids {
                out.push(1);
                put_atom_id_key(id, out);
            }
            out.push(0);
        }
        Value::Record(fields) => {
            for (name, val) in fields {
                out.push(1);
                put_escaped(name.as_bytes(), out);
                encode_key(val, out);
            }
            out.push(0);
        }
        Value::Array(vs) | Value::Set(vs) | Value::List(vs) => {
            for x in vs {
                out.push(1);
                encode_key(x, out);
            }
            out.push(0);
        }
    }
}

/// Encodes a composite key (multi-attribute sort criteria / index keys).
pub fn encode_composite_key(vs: &[Value]) -> Vec<u8> {
    let mut out = Vec::with_capacity(vs.len() * 12);
    for v in vs {
        encode_key(v, &mut out);
    }
    out
}

/// IEEE-754 trick: flip sign bit for non-negative, flip all bits for
/// negative — the resulting u64 orders like the float (with -NaN first,
/// +NaN last, matching `f64::total_cmp`).
fn f64_key_image(x: f64) -> u64 {
    let bits = x.to_bits();
    if bits & (1 << 63) == 0 {
        bits | (1 << 63)
    } else {
        !bits
    }
}

fn put_f64_key(x: f64, out: &mut Vec<u8>) {
    out.extend_from_slice(&f64_key_image(x).to_be_bytes());
}

/// 0x00-terminated with escaping (0x00 -> 0x00 0xFF) so that prefixes
/// order correctly and embedded NULs are safe.
fn put_escaped(bytes: &[u8], out: &mut Vec<u8>) {
    for &b in bytes {
        out.push(b);
        if b == 0 {
            out.push(0xFF);
        }
    }
    out.push(0);
    out.push(0);
}

fn put_atom_id_key(id: &AtomId, out: &mut Vec<u8>) {
    out.extend_from_slice(&id.atom_type.to_be_bytes());
    out.extend_from_slice(&id.seq.to_be_bytes());
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(v: &Value) {
        let mut buf = Vec::new();
        encode_value(v, &mut buf);
        let mut pos = 0;
        let back = decode_value(&buf, &mut pos).unwrap();
        assert_eq!(&back, v);
        assert_eq!(pos, buf.len(), "no trailing bytes");
    }

    #[test]
    fn round_trip_all_kinds() {
        round_trip(&Value::Null);
        round_trip(&Value::Id(AtomId::new(3, 99)));
        round_trip(&Value::Int(-42));
        round_trip(&Value::Real(3.25));
        round_trip(&Value::Bool(true));
        round_trip(&Value::Bool(false));
        round_trip(&Value::Str("Kaiserslautern".into()));
        round_trip(&Value::Str(String::new()));
        round_trip(&Value::Ref(None));
        round_trip(&Value::Ref(Some(AtomId::new(1, 2))));
        round_trip(&Value::ref_set(vec![AtomId::new(1, 2), AtomId::new(1, 3)]));
        round_trip(&Value::Record(vec![
            ("x".into(), Value::Real(1.0)),
            ("nested".into(), Value::List(vec![Value::Int(1), Value::Null])),
        ]));
        round_trip(&Value::Array(vec![Value::Real(0.0); 3]));
        round_trip(&Value::Set(vec![Value::Str("a".into())]));
    }

    #[test]
    fn values_vector_round_trip() {
        let vs = vec![Value::Int(1), Value::Str("two".into()), Value::Null];
        let buf = encode_values(&vs);
        assert_eq!(decode_values(&buf).unwrap(), vs);
    }

    #[test]
    fn truncated_input_detected() {
        let mut buf = Vec::new();
        encode_value(&Value::Int(7), &mut buf);
        buf.truncate(buf.len() - 1);
        let mut pos = 0;
        assert_eq!(decode_value(&buf, &mut pos), Err(CodecError::Truncated));
    }

    #[test]
    fn bad_tag_detected() {
        let buf = vec![200u8];
        let mut pos = 0;
        assert!(matches!(decode_value(&buf, &mut pos), Err(CodecError::BadTag(200, 0))));
    }

    fn key(v: &Value) -> Vec<u8> {
        let mut out = Vec::new();
        encode_key(v, &mut out);
        out
    }

    fn check_order(a: &Value, b: &Value) {
        let expect = a.total_cmp(b);
        let got = key(a).cmp(&key(b));
        // Key equality is only required to imply total_cmp equality for
        // identical logical values; distinct-but-equal (Int 3 / Real 3.0)
        // may produce equal keys too — both directions hold here.
        assert_eq!(got, expect, "key order mismatch for {a:?} vs {b:?}");
    }

    #[test]
    fn key_order_matches_value_order() {
        let samples = vec![
            Value::Null,
            Value::Bool(false),
            Value::Bool(true),
            Value::Int(i64::MIN),
            Value::Int(-1),
            Value::Int(0),
            Value::Int(1),
            Value::Int(1_000_000),
            Value::Real(f64::NEG_INFINITY),
            Value::Real(-2.5),
            Value::Real(0.0),
            Value::Real(2.5),
            Value::Real(f64::INFINITY),
            Value::Str(String::new()),
            Value::Str("a".into()),
            Value::Str("ab".into()),
            Value::Str("b".into()),
            Value::Id(AtomId::new(0, 1)),
            Value::Id(AtomId::new(1, 0)),
        ];
        for a in &samples {
            for b in &samples {
                check_order(a, b);
            }
        }
    }

    #[test]
    fn int_real_cross_kind_keys() {
        check_order(&Value::Int(3), &Value::Real(3.5));
        check_order(&Value::Real(2.5), &Value::Int(3));
        check_order(&Value::Int(3), &Value::Real(3.0));
        check_order(&Value::Real(3.0), &Value::Int(3));
    }

    #[test]
    fn string_prefix_orders_before_extension() {
        assert!(key(&Value::Str("ab".into())) < key(&Value::Str("ab0".into())));
        // Embedded NUL is handled by escaping.
        let with_nul = Value::Str("a\0b".into());
        let plain = Value::Str("a".into());
        assert!(key(&plain) < key(&with_nul));
        check_order(&plain, &with_nul);
    }

    #[test]
    fn composite_keys_order_lexicographically() {
        let k1 = encode_composite_key(&[Value::Int(1), Value::Str("z".into())]);
        let k2 = encode_composite_key(&[Value::Int(2), Value::Str("a".into())]);
        assert!(k1 < k2);
    }
}
