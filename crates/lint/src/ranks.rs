//! The canonical lock hierarchy — the single source of truth the
//! `// lockrank: <domain>.<n>` annotations refer to.
//!
//! A thread may acquire a lock only while every lock it already holds has
//! a rank **≤** the new lock's rank (equal ranks are peer groups whose
//! mutual safety is argued at the declaration site). The domain order is
//! the PRIMA Fig. 3.1 layer order, top of the kernel first:
//!
//! | domain      | base | Fig. 3.1 layer        | locks |
//! |-------------|------|-----------------------|-------|
//! | `api`       |  10  | MAD interface         | session txn slot (.0), last-profile slot (.1) |
//! | `txn`       |  20  | data system           | checkpoint gate (.0), active-txn table (.1) |
//! | `locktable` |  30  | data system           | lock table entries + wait queues (.0) |
//! | `mvcc`      |  40  | data system           | version store (.0) |
//! | `access`    |  50  | access system         | structure directory (.0), registries (.1), tree roots (.2), grid files (.3) |
//! | `buffer`    |  60  | storage system        | shard latches / frame locks / record-file maps (.0), address + key maps (.1) |
//! | `walgroup`  |  70  | storage system (WAL)  | group-commit coordinator (.0) |
//! | `walio`     |  80  | storage system (WAL)  | device-append serialisation (.0), append buffer (.1) |
//! | `storage`   |  90  | storage system        | segment-id allocator (.0), segment catalog (.1) |
//! | `obs`       | 100  | (cross-cutting)       | slow log (.0), parallel queue/results/ctx pool (.1–.3) |
//! | `device`    | 110  | devices               | block-device internals (exempt from the lock-across-I/O rule) |
//!
//! The runtime half of the checker lives in the vendored `parking_lot`
//! shim (`parking_lot::rank` + `Mutex::new_ranked`); a unit test below
//! parses that module and asserts the two tables agree.

/// `(domain annotation name, base rank)` in legal acquisition order.
pub const DOMAINS: &[(&str, u32)] = &[
    ("api", 10),
    ("txn", 20),
    ("locktable", 30),
    ("mvcc", 40),
    ("access", 50),
    ("buffer", 60),
    ("walgroup", 70),
    ("walio", 80),
    ("storage", 90),
    ("obs", 100),
    ("device", 110),
];

/// Base rank of the device domain — locks at or above it are the block
/// device's own internals and exempt from the lock-across-I/O rule.
pub const DEVICE_BASE: u32 = 110;

/// Gap between consecutive domain bases: a domain may define sub-ranks
/// `.0` through `.9`.
pub const DOMAIN_WIDTH: u32 = 10;

/// Resolves an annotation like `buffer.1` to its numeric rank.
pub fn resolve(spec: &str) -> Option<u32> {
    let (domain, sub) = spec.split_once('.')?;
    let sub: u32 = sub.parse().ok()?;
    if sub >= DOMAIN_WIDTH {
        return None;
    }
    let (_, base) = DOMAINS.iter().find(|(name, _)| *name == domain)?;
    Some(base + sub)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn resolve_maps_domain_dot_sub() {
        assert_eq!(resolve("api.0"), Some(10));
        assert_eq!(resolve("buffer.1"), Some(61));
        assert_eq!(resolve("device.4"), Some(114));
        assert_eq!(resolve("nosuch.0"), None);
        assert_eq!(resolve("buffer.12"), None);
        assert_eq!(resolve("buffer"), None);
    }

    #[test]
    fn domains_are_strictly_increasing_and_gapped() {
        for w in DOMAINS.windows(2) {
            assert!(
                w[0].1 + DOMAIN_WIDTH <= w[1].1,
                "domain {} (base {}) overlaps {} (base {})",
                w[0].0,
                w[0].1,
                w[1].0,
                w[1].1
            );
        }
        assert_eq!(DOMAINS.last().map(|d| d.1), Some(DEVICE_BASE));
    }

    /// The vendored parking_lot shim carries the runtime copy of this
    /// table (`pub mod rank`); parse its constants and assert agreement
    /// so the two halves of the checker cannot drift apart.
    #[test]
    fn shim_rank_module_matches() {
        let src = std::fs::read_to_string(concat!(
            env!("CARGO_MANIFEST_DIR"),
            "/../vendor/parking_lot/src/lib.rs"
        ))
        .expect("vendored parking_lot source");
        let mut found = Vec::new();
        for line in src.lines() {
            let line = line.trim();
            // e.g. `pub const WAL_GROUP: u32 = 70;`
            let Some(rest) = line.strip_prefix("pub const ") else { continue };
            let Some((name, value)) = rest.split_once(": u32 = ") else { continue };
            let Some(value) = value.strip_suffix(';') else { continue };
            let value: u32 = value.trim().parse().expect("rank constant value");
            // Shim constant names are SCREAMING_SNAKE; annotations are
            // lower-case with the underscore dropped (WAL_GROUP → walgroup).
            found.push((name.to_lowercase().replace('_', ""), value));
        }
        let expected: Vec<(String, u32)> =
            DOMAINS.iter().map(|(n, v)| (n.to_string(), *v)).collect();
        assert_eq!(found, expected, "parking_lot::rank disagrees with prima-lint ranks");
    }
}
