//! Shared helpers for the PRIMA benchmark harness.
//!
//! Every bench regenerates one figure or table of the paper (see the
//! per-experiment index in DESIGN.md). Absolute numbers differ from 1987
//! hardware, but each harness prints the *shape* the paper argues for —
//! who wins, by what factor, where behaviour crosses over — alongside the
//! Criterion timings. EXPERIMENTS.md records the measured shapes.

use prima::Prima;
use prima_workloads::brep::{self, BrepConfig};

/// A BREP database with `n` solids (and optional assembly hierarchy),
/// ready for querying.
pub fn brep_db(n: usize) -> Prima {
    let db = brep::open_db(64 << 20).expect("open");
    brep::populate(&db, &BrepConfig::with_solids(n)).expect("populate");
    db
}

/// Same with an assembly hierarchy.
pub fn brep_db_assembly(n: usize, depth: usize, fanout: usize) -> (Prima, i64) {
    let db = brep::open_db(64 << 20).expect("open");
    let stats =
        brep::populate(&db, &BrepConfig::with_assembly(n, depth, fanout)).expect("populate");
    let root = stats.root_solid_nos.first().copied().unwrap_or(1);
    (db, root)
}

/// Prints one experiment-report line (machine-grepable prefix).
pub fn report(experiment: &str, series: &str, metric: &str, value: impl std::fmt::Display) {
    eprintln!("[{experiment}] {series:<42} {metric:<18} = {value}");
}

/// Escapes `s` for embedding inside a JSON string literal.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 16);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out
}

/// Emits the kernel's full metrics exposition
/// ([`prima::MetricsSnapshot::render_text`]) as one BENCHJSON record, so
/// every perf-trajectory JSON carries the complete counter and latency
/// state its timings were measured under.
pub fn report_metrics(bench: &str, db: &Prima) {
    println!(
        "BENCHJSON {{\"bench\":\"metrics\",\"source\":\"{}\",\"render\":\"{}\"}}",
        json_escape(bench),
        json_escape(&db.metrics().render_text())
    );
}
