//! Atoms as handled at the access-system interface.
//!
//! An atom is "composed of attributes of various types, has an identifier,
//! and belongs to its corresponding atom type" (Section 2.2). At this
//! layer an atom is its logical address plus a positionally aligned vector
//! of attribute values; `Null` marks attributes that were not assigned or
//! not selected (projection, Section 3.2).

use prima_mad::codec;
use prima_storage::bytes::le_u64;
use prima_mad::value::{AtomId, Value};
use prima_mad::AtomType;

use crate::error::{AccessError, AccessResult};

/// An atom: logical address + attribute values (aligned with the atom
/// type's declared attributes).
#[derive(Debug, Clone, PartialEq)]
pub struct Atom {
    pub id: AtomId,
    pub values: Vec<Value>,
}

impl Atom {
    pub fn new(id: AtomId, values: Vec<Value>) -> Self {
        Atom { id, values }
    }

    /// Value of attribute `idx`.
    pub fn get(&self, idx: usize) -> Option<&Value> {
        self.values.get(idx)
    }

    /// Value of the named attribute, resolved through the atom type.
    pub fn get_named<'a>(&'a self, at: &AtomType, name: &str) -> Option<&'a Value> {
        at.attribute_index(name).and_then(|i| self.values.get(i))
    }

    /// Encodes into a physical-record image: the atom id followed by the
    /// value vector (the id is stored so redundant copies are
    /// self-identifying).
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(16 + 16 * self.values.len());
        out.extend_from_slice(&self.id.atom_type.to_le_bytes());
        out.extend_from_slice(&self.id.seq.to_le_bytes());
        out.extend_from_slice(&codec::encode_values(&self.values));
        out
    }

    /// Decodes a physical-record image.
    pub fn decode(buf: &[u8]) -> AccessResult<Atom> {
        if buf.len() < 10 {
            return Err(AccessError::Codec(prima_mad::codec::CodecError::Truncated));
        }
        let atom_type = u16::from_le_bytes([buf[0], buf[1]]);
        let seq = le_u64(&buf[2..10]);
        let values = codec::decode_values(&buf[10..])?;
        Ok(Atom { id: AtomId::new(atom_type, seq), values })
    }

    /// Projects onto the given attribute indices: unselected attributes
    /// become `Null`, preserving positional alignment ("it is allowed …
    /// to select attributes when reading an atom", Section 3.2).
    pub fn project(&self, attrs: &[usize]) -> Atom {
        let mut values = vec![Value::Null; self.values.len()];
        for &i in attrs {
            if let Some(v) = self.values.get(i) {
                values[i] = v.clone();
            }
        }
        Atom { id: self.id, values }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encode_decode_round_trip() {
        let a = Atom::new(
            AtomId::new(3, 17),
            vec![
                Value::Id(AtomId::new(3, 17)),
                Value::Int(4711),
                Value::Str("cube".into()),
                Value::ref_set(vec![AtomId::new(3, 18)]),
            ],
        );
        let buf = a.encode();
        assert_eq!(Atom::decode(&buf).unwrap(), a);
    }

    #[test]
    fn truncated_image_rejected() {
        assert!(Atom::decode(&[1, 2, 3]).is_err());
    }

    #[test]
    fn projection_nulls_unselected() {
        let a = Atom::new(
            AtomId::new(0, 1),
            vec![Value::Id(AtomId::new(0, 1)), Value::Int(1), Value::Str("x".into())],
        );
        let p = a.project(&[0, 2]);
        assert_eq!(p.values[0], Value::Id(AtomId::new(0, 1)));
        assert_eq!(p.values[1], Value::Null);
        assert_eq!(p.values[2], Value::Str("x".into()));
        assert_eq!(p.id, a.id);
    }
}
