//! The data system: the top kernel layer of Fig. 3.1.
//!
//! "The main task of the data system is to perform the complex mapping of
//! the molecule-oriented interface onto the atom-oriented interface of
//! the access system. This is done by translating the user-submitted MQL
//! statements into an executable form (in terms of access system calls),
//! while preserving their original meaning." (Section 3.1.)
//!
//! The modular decomposition mirrors the paper's description of the
//! "modular data system" \[Fr86\]:
//!
//! * [`validate`](validate()) — query validation & modification (molecule-type
//!   resolution, structure resolution, predicate pushdown);
//! * [`plan`] — the internal representation (processing plan with
//!   functional descriptors);
//! * [`exec`] — molecule management: root access selection, vertical
//!   assembly, cluster management, recursion, residual qualification,
//!   (qualified) projection;
//! * [`dml`] — molecule/component insertion, deletion, modification with
//!   connect/disconnect semantics;
//! * [`molecule`] — the molecule-set result representation.

pub mod dml;
pub mod exec;
pub mod molecule;
pub mod plan;
pub mod validate;

pub use dml::DmlResult;
pub use exec::{execute, execute_with_mode, AssemblyMode};
pub use molecule::{MolAtom, Molecule, MoleculeSet, NodeInfo};
pub use plan::{ExecutionTrace, NodeProjection, ResolvedQuery, RootAccess};
pub use validate::validate;
