//! Deferred update of redundant storage structures.
//!
//! "Storage redundancy may introduce substantial overhead when an atom is
//! modified (and necessarily all its allocated physical records). To limit
//! the amount of immediate overhead, deferred update is used, i.e., during
//! an update operation only one physical record is modified whereas all
//! others are modified later." (Section 3.2.)
//!
//! The queue records which redundant copies are pending; the address
//! table's staleness bit (see [`crate::addressing`]) makes readers bypass
//! them until [`crate::AccessSystem::reconcile`] applies the queue.

use parking_lot::{rank, Mutex};
use prima_mad::value::AtomId;
use std::collections::VecDeque;

use crate::addressing::StructureId;

/// One queued maintenance action.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PendingOp {
    /// Re-materialise the atom's copy in a sort order or partition.
    RefreshCopy { structure: StructureId, atom: AtomId },
    /// Remove the atom's copy from a structure (atom deleted).
    DropCopy { structure: StructureId, atom: AtomId },
    /// Rebuild an atom cluster after its characteristic atom (or a member)
    /// changed.
    RefreshCluster { structure: StructureId, characteristic: AtomId },
}

/// FIFO queue of deferred maintenance work, with simple statistics.
#[derive(Debug)]
pub struct DeferredQueue {
    // lockrank: access.7 — pending maintenance FIFO; pushed/popped
    // transiently, never held while an op is applied.
    inner: Mutex<VecDeque<PendingOp>>,
    // lockrank: access.8
    enqueued_total: Mutex<u64>,
}

impl Default for DeferredQueue {
    fn default() -> Self {
        DeferredQueue {
            inner: Mutex::new_ranked(VecDeque::new(), rank::ACCESS + 7),
            enqueued_total: Mutex::new_ranked(0, rank::ACCESS + 8),
        }
    }
}

impl DeferredQueue {
    pub fn new() -> Self {
        Self::default()
    }

    /// Enqueues a maintenance action. Duplicate back-to-back entries for
    /// the same copy are collapsed (only the latest state matters).
    pub fn push(&self, op: PendingOp) {
        let mut q = self.inner.lock();
        if q.back() != Some(&op) {
            q.push_back(op);
            *self.enqueued_total.lock() += 1;
        }
    }

    /// Removes and returns the oldest pending action.
    pub fn pop(&self) -> Option<PendingOp> {
        self.inner.lock().pop_front()
    }

    /// Drains the whole queue.
    pub fn drain(&self) -> Vec<PendingOp> {
        self.inner.lock().drain(..).collect()
    }

    /// Actions currently pending.
    pub fn len(&self) -> usize {
        self.inner.lock().len()
    }

    pub fn is_empty(&self) -> bool {
        self.inner.lock().is_empty()
    }

    /// Total actions ever enqueued (the "saved immediate work" metric of
    /// experiment E-DEF).
    pub fn enqueued_total(&self) -> u64 {
        *self.enqueued_total.lock()
    }

    /// Discards all pending actions that refer to `structure` (structure
    /// dropped before reconciliation).
    pub fn purge_structure(&self, structure: StructureId) {
        self.inner.lock().retain(|op| match op {
            PendingOp::RefreshCopy { structure: s, .. }
            | PendingOp::DropCopy { structure: s, .. }
            | PendingOp::RefreshCluster { structure: s, .. } => *s != structure,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn op(s: StructureId, a: u64) -> PendingOp {
        PendingOp::RefreshCopy { structure: s, atom: AtomId::new(0, a) }
    }

    #[test]
    fn fifo_order() {
        let q = DeferredQueue::new();
        q.push(op(1, 1));
        q.push(op(1, 2));
        q.push(op(2, 1));
        assert_eq!(q.len(), 3);
        assert_eq!(q.pop(), Some(op(1, 1)));
        assert_eq!(q.drain(), vec![op(1, 2), op(2, 1)]);
        assert!(q.is_empty());
    }

    #[test]
    fn back_to_back_duplicates_collapse() {
        let q = DeferredQueue::new();
        q.push(op(1, 1));
        q.push(op(1, 1));
        q.push(op(1, 2));
        q.push(op(1, 1));
        assert_eq!(q.len(), 3, "only adjacent duplicates collapse");
        assert_eq!(q.enqueued_total(), 3);
    }

    #[test]
    fn purge_structure_removes_only_its_ops() {
        let q = DeferredQueue::new();
        q.push(op(1, 1));
        q.push(op(2, 1));
        q.push(PendingOp::RefreshCluster { structure: 1, characteristic: AtomId::new(0, 9) });
        q.purge_structure(1);
        assert_eq!(q.drain(), vec![op(2, 1)]);
    }
}
