//! prima-lint: repo-specific static analysis for the PRIMA kernel.
//!
//! Four rules, none expressible in clippy:
//!
//! * **`lockrank`** — every `Mutex`/`RwLock` declaration in the kernel
//!   carries a `// lockrank: <domain>.<n>` annotation naming its place in
//!   the canonical hierarchy ([`ranks`]); within a function, nested
//!   `.lock()`/`.read()`/`.write()` acquisitions must be rank-ascending
//!   (equal ranks are peer groups).
//! * **`lock-across-io`** — no ranked guard below the `device` domain may
//!   be live across a call into `BlockDevice` I/O or a WAL force (the
//!   PR 9 bug class). Device-domain locks are exempt: they *are* the
//!   device.
//! * **`error-hygiene`** — no `unwrap`/`expect`/`panic!` in non-test
//!   kernel code.
//! * **`ignored-result`** — a bare statement discarding a
//!   `StorageResult`/`TxnResult` returned by a kernel function.
//!
//! Escape hatch: `// lint: allow(<rule>, <reason>)` on the offending line
//! or the line directly above. The reason is mandatory; an empty one is
//! its own finding (`allow-without-reason`).
//!
//! The analysis is token-based (see [`lexer`]) — a deliberate lint, not a
//! compiler: it resolves lock receivers by *name* against the per-file
//! annotation map, so precision comes from the annotation discipline the
//! rule itself enforces (every lock declaration must be annotated).

pub mod lexer;
pub mod ranks;

use lexer::{lex, Tok, Token};
use std::collections::{HashMap, HashSet};
use std::fmt;
use std::path::{Path, PathBuf};

/// Kernel source roots scanned by the binary, relative to the repo root.
pub const KERNEL_DIRS: &[&str] =
    &["crates/storage/src", "crates/core/src", "crates/access/src", "crates/mad/src"];

/// Lock-acquisition method names on the vendored parking_lot types.
const ACQUIRE_FNS: &[&str] = &["lock", "try_lock", "read", "write", "read_arc", "write_arc"];

/// Calls that reach the device: the `BlockDevice` trait surface plus the
/// WAL force paths.
const IO_FNS: &[&str] = &[
    "read_block",
    "write_block",
    "write_blocks",
    "sync",
    "sync_data",
    "fsync",
    "wal_append",
    "wal_read",
    "wal_reset",
    "create_file",
    "free_file",
    "force",
];

#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Rule {
    LockRank,
    LockAcrossIo,
    ErrorHygiene,
    IgnoredResult,
    AllowWithoutReason,
}

impl Rule {
    pub fn name(self) -> &'static str {
        match self {
            Rule::LockRank => "lockrank",
            Rule::LockAcrossIo => "lock-across-io",
            Rule::ErrorHygiene => "error-hygiene",
            Rule::IgnoredResult => "ignored-result",
            Rule::AllowWithoutReason => "allow-without-reason",
        }
    }

    fn from_name(s: &str) -> Option<Rule> {
        Some(match s {
            "lockrank" => Rule::LockRank,
            "lock-across-io" => Rule::LockAcrossIo,
            "error-hygiene" => Rule::ErrorHygiene,
            "ignored-result" => Rule::IgnoredResult,
            _ => return None,
        })
    }
}

#[derive(Debug, Clone)]
pub struct Finding {
    pub file: PathBuf,
    pub line: u32,
    pub rule: Rule,
    pub message: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file.display(),
            self.line,
            self.rule.name(),
            self.message
        )
    }
}

// ---------------------------------------------------------------------------
// Annotations
// ---------------------------------------------------------------------------

struct Allow {
    /// Code line this allow covers.
    target_line: u32,
    rule: Option<Rule>,
    reason_ok: bool,
    /// Line of the comment itself (for reporting bad allows).
    comment_line: u32,
    raw_rule: String,
}

struct Annotations {
    /// Lock name → rank (from `lockrank:` declarations and
    /// `lockrank-name:` registrations).
    rank_of: HashMap<String, u32>,
    /// Code lines carrying a `lockrank:` annotation (declaration lines).
    annotated_lines: HashSet<u32>,
    allows: Vec<Allow>,
    findings: Vec<Finding>,
}

/// First code line at or after `line` (a trailing same-line comment
/// attaches to its own line).
fn attach_line(tokens: &[Token], line: u32) -> u32 {
    if tokens.iter().any(|t| t.line == line) {
        return line;
    }
    tokens.iter().map(|t| t.line).find(|&l| l > line).unwrap_or(line)
}

/// Name of the declaration starting at code line `line`: first identifier
/// that is not a visibility/binding keyword.
fn declared_name(tokens: &[Token], line: u32) -> Option<String> {
    const SKIP: &[&str] = &["pub", "crate", "super", "in", "let", "mut", "static", "const", "type"];
    tokens
        .iter()
        .skip_while(|t| t.line < line)
        .take_while(|t| t.line < line + 3)
        .filter_map(|t| t.tok.ident())
        .find(|i| !SKIP.contains(i))
        .map(str::to_string)
}

fn parse_annotations(file: &Path, lexed: &lexer::Lexed) -> Annotations {
    let mut a = Annotations {
        rank_of: HashMap::new(),
        annotated_lines: HashSet::new(),
        allows: Vec::new(),
        findings: Vec::new(),
    };
    for c in &lexed.comments {
        let text = c.text.trim();
        if let Some(rest) = text.strip_prefix("lockrank-name:") {
            // `lockrank-name: <name> = <domain>.<n>` — registers an extra
            // receiver name (a method or binding) for an annotated lock.
            if let Some((name, spec)) = rest.split_once('=') {
                let spec = spec.split_whitespace().next().unwrap_or("");
                match ranks::resolve(spec) {
                    Some(r) => {
                        a.rank_of.insert(name.trim().to_string(), r);
                    }
                    None => a.findings.push(Finding {
                        file: file.to_path_buf(),
                        line: c.line,
                        rule: Rule::LockRank,
                        message: format!("unknown rank spec `{spec}` in lockrank-name"),
                    }),
                }
            }
        } else if let Some(rest) = text.strip_prefix("lockrank:") {
            let spec = rest.split_whitespace().next().unwrap_or("");
            let target = attach_line(&lexed.tokens, c.line);
            match ranks::resolve(spec) {
                Some(r) => {
                    a.annotated_lines.insert(target);
                    if let Some(name) = declared_name(&lexed.tokens, target) {
                        a.rank_of.insert(name, r);
                    }
                }
                None => a.findings.push(Finding {
                    file: file.to_path_buf(),
                    line: c.line,
                    rule: Rule::LockRank,
                    message: format!(
                        "unknown rank spec `{spec}` (see crates/lint/src/ranks.rs)"
                    ),
                }),
            }
        } else if let Some(rest) = text.strip_prefix("lint:") {
            let rest = rest.trim();
            if let Some(body) =
                rest.strip_prefix("allow(").and_then(|r| r.strip_suffix(')'))
            {
                let (rule_name, reason) = match body.split_once(',') {
                    Some((r, why)) => (r.trim(), why.trim()),
                    None => (body.trim(), ""),
                };
                a.allows.push(Allow {
                    target_line: attach_line(&lexed.tokens, c.line),
                    rule: Rule::from_name(rule_name),
                    reason_ok: !reason.is_empty(),
                    comment_line: c.line,
                    raw_rule: rule_name.to_string(),
                });
            }
        }
    }
    a
}

// ---------------------------------------------------------------------------
// Structure: test regions and function bodies
// ---------------------------------------------------------------------------

/// Token-index spans (`[start, end)`) of items under `#[test]`-like or
/// `#[cfg(test)]` attributes.
fn test_spans(tokens: &[Token]) -> Vec<(usize, usize)> {
    let mut spans = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        if tokens[i].tok.is_punct('#') && tokens.get(i + 1).is_some_and(|t| t.tok.is_punct('[')) {
            let (attr_end, is_test) = scan_attr(tokens, i + 1);
            if is_test {
                if let Some((start, end)) = item_body_after(tokens, attr_end) {
                    spans.push((start, end));
                    i = end;
                    continue;
                }
            }
            i = attr_end;
            continue;
        }
        i += 1;
    }
    spans
}

/// Scans one `[...]` attribute group starting at the `[`; returns the
/// index past the closing `]` and whether the attribute marks test code.
fn scan_attr(tokens: &[Token], open: usize) -> (usize, bool) {
    let mut depth = 0usize;
    let mut idents: Vec<&str> = Vec::new();
    let mut i = open;
    while i < tokens.len() {
        match &tokens[i].tok {
            Tok::Punct('[') => depth += 1,
            Tok::Punct(']') => {
                depth -= 1;
                if depth == 0 {
                    i += 1;
                    break;
                }
            }
            Tok::Ident(id) => idents.push(id.as_str()),
            _ => {}
        }
        i += 1;
    }
    let is_test = idents.contains(&"test") && !idents.contains(&"not");
    (i, is_test)
}

/// Body span of the item following token `i` (skipping further
/// attributes): from its opening `{` to past the matching `}`.
fn item_body_after(tokens: &[Token], mut i: usize) -> Option<(usize, usize)> {
    while i < tokens.len() {
        if tokens[i].tok.is_punct('#') && tokens.get(i + 1).is_some_and(|t| t.tok.is_punct('[')) {
            let (end, _) = scan_attr(tokens, i + 1);
            i = end;
            continue;
        }
        if tokens[i].tok.is_punct(';') {
            return None; // bodyless item
        }
        if tokens[i].tok.is_punct('{') {
            let end = match_brace(tokens, i)?;
            return Some((i, end));
        }
        i += 1;
    }
    None
}

/// Index just past the `}` matching the `{` at `open`.
fn match_brace(tokens: &[Token], open: usize) -> Option<usize> {
    let mut depth = 0usize;
    for (k, t) in tokens.iter().enumerate().skip(open) {
        match t.tok {
            Tok::Punct('{') => depth += 1,
            Tok::Punct('}') => {
                depth -= 1;
                if depth == 0 {
                    return Some(k + 1);
                }
            }
            _ => {}
        }
    }
    None
}

/// Body spans of every `fn` in the file (test fns included; the caller
/// filters by test span where a rule exempts tests).
fn fn_bodies(tokens: &[Token]) -> Vec<(usize, usize)> {
    let mut out = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        if tokens[i].tok.is_ident("fn")
            && tokens.get(i + 1).is_some_and(|t| matches!(t.tok, Tok::Ident(_)))
        {
            let mut j = i + 2;
            let mut body = None;
            while j < tokens.len() {
                match tokens[j].tok {
                    Tok::Punct('{') => {
                        body = match_brace(tokens, j).map(|end| (j, end));
                        break;
                    }
                    Tok::Punct(';') => break, // trait method declaration
                    _ => j += 1,
                }
            }
            if let Some((start, end)) = body {
                out.push((start, end));
                // Note: nested fns are re-scanned as their own bodies —
                // the outer walk continues *inside* this body.
                i = start + 1;
                continue;
            }
            i = j + 1;
            continue;
        }
        i += 1;
    }
    out
}

// ---------------------------------------------------------------------------
// Receiver resolution
// ---------------------------------------------------------------------------

/// Resolves the receiver name of the method call whose method ident is at
/// `i`: the identifier before the final `.`, walking back over one
/// balanced `(...)`/`[...]` group (so `self.shard(id).lock()` resolves to
/// `shard`).
fn receiver_name(tokens: &[Token], i: usize) -> Option<String> {
    if i == 0 || !tokens[i - 1].tok.is_punct('.') {
        return None;
    }
    let mut j = i.checked_sub(2)?;
    match &tokens[j].tok {
        Tok::Ident(name) => Some(name.clone()),
        Tok::Punct(')') | Tok::Punct(']') => {
            let (open, close) = match tokens[j].tok {
                Tok::Punct(')') => ('(', ')'),
                _ => ('[', ']'),
            };
            let mut depth = 0isize;
            loop {
                match &tokens[j].tok {
                    Tok::Punct(c) if *c == close => depth += 1,
                    Tok::Punct(c) if *c == open => {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    _ => {}
                }
                j = j.checked_sub(1)?;
            }
            // `shard(id)` → the ident before the opener; `[idx]` → the
            // ident before the bracket.
            match &tokens[j.checked_sub(1)?].tok {
                Tok::Ident(name) => Some(name.clone()),
                _ => None,
            }
        }
        _ => None,
    }
}

// ---------------------------------------------------------------------------
// Per-file analysis
// ---------------------------------------------------------------------------

pub struct Analyzer<'a> {
    file: &'a Path,
    tokens: &'a [Token],
    rank_of: &'a HashMap<String, u32>,
    result_fns: &'a HashSet<String>,
    tests: &'a [(usize, usize)],
    findings: Vec<Finding>,
}

fn in_spans(spans: &[(usize, usize)], i: usize) -> bool {
    spans.iter().any(|&(s, e)| i >= s && i < e)
}

impl<'a> Analyzer<'a> {
    fn push(&mut self, line: u32, rule: Rule, message: String) {
        self.findings.push(Finding { file: self.file.to_path_buf(), line, rule, message });
    }

    /// Rules 1 + 2 over one function body: simulate guard liveness.
    fn check_lock_discipline(&mut self, start: usize, end: usize) {
        // Scope stack: each block's guards as (name, rank).
        let mut scopes: Vec<Vec<(String, u32)>> = vec![Vec::new()];
        // Start token of the current statement (for let-binding detection).
        let mut stmt_start = start + 1;
        let mut i = start + 1;
        while i < end {
            match &self.tokens[i].tok {
                Tok::Punct('{') => {
                    scopes.push(Vec::new());
                    stmt_start = i + 1;
                }
                Tok::Punct('}') => {
                    scopes.pop();
                    if scopes.is_empty() {
                        scopes.push(Vec::new());
                    }
                    stmt_start = i + 1;
                }
                Tok::Punct(';') => stmt_start = i + 1,
                // `drop(name)` releases a guard early.
                Tok::Ident(id)
                    if id == "drop"
                        && self.tokens.get(i + 1).is_some_and(|t| t.tok.is_punct('('))
                        && self.tokens.get(i + 3).is_some_and(|t| t.tok.is_punct(')')) =>
                {
                    if let Some(name) = self.tokens.get(i + 2).and_then(|t| t.tok.ident()) {
                        for scope in scopes.iter_mut().rev() {
                            if let Some(p) = scope.iter().rposition(|(n, _)| n == name) {
                                scope.remove(p);
                                break;
                            }
                        }
                    }
                }
                Tok::Ident(id)
                    if ACQUIRE_FNS.contains(&id.as_str())
                        && self.tokens.get(i + 1).is_some_and(|t| t.tok.is_punct('(')) =>
                {
                    if let Some(recv) = receiver_name(self.tokens, i) {
                        if let Some(&rank) = self.rank_of.get(&recv) {
                            let line = self.tokens[i].line;
                            let held_max = scopes
                                .iter()
                                .flatten()
                                .map(|&(_, r)| r)
                                .max();
                            if let Some(max) = held_max {
                                if rank < max {
                                    let held: Vec<String> = scopes
                                        .iter()
                                        .flatten()
                                        .map(|(n, r)| format!("{n}({r})"))
                                        .collect();
                                    self.push(
                                        line,
                                        Rule::LockRank,
                                        format!(
                                            "acquiring `{recv}` (rank {rank}) while holding \
                                             [{}] violates the lock hierarchy",
                                            held.join(", ")
                                        ),
                                    );
                                }
                            }
                            // Bound guard? `let g = recv.lock();` — the
                            // acquisition's call is the end of a
                            // let-statement. A chained call
                            // (`recv.lock().pop()`) is a transient hold.
                            let after = skip_call(self.tokens, i + 1);
                            let bound_name = if self
                                .tokens
                                .get(after)
                                .is_some_and(|t| t.tok.is_punct(';'))
                            {
                                let s = &self.tokens[stmt_start];
                                if s.tok.is_ident("let") {
                                    let mut k = stmt_start + 1;
                                    if self.tokens.get(k).is_some_and(|t| t.tok.is_ident("mut")) {
                                        k += 1;
                                    }
                                    self.tokens.get(k).and_then(|t| t.tok.ident()).map(str::to_string)
                                } else {
                                    None
                                }
                            } else {
                                None
                            };
                            if let Some(name) = bound_name {
                                if let Some(scope) = scopes.last_mut() {
                                    scope.push((name, rank));
                                }
                            }
                        }
                    }
                }
                Tok::Ident(id)
                    if IO_FNS.contains(&id.as_str())
                        && self.tokens.get(i + 1).is_some_and(|t| t.tok.is_punct('('))
                        && i > start
                        && !self.tokens[i - 1].tok.is_ident("fn") =>
                {
                    let held: Vec<String> = scopes
                        .iter()
                        .flatten()
                        .filter(|&&(_, r)| r < ranks::DEVICE_BASE)
                        .map(|(n, r)| format!("{n}({r})"))
                        .collect();
                    if !held.is_empty() {
                        self.push(
                            self.tokens[i].line,
                            Rule::LockAcrossIo,
                            format!(
                                "device I/O `{id}()` while holding [{}] — no kernel lock may \
                                 span device I/O",
                                held.join(", ")
                            ),
                        );
                    }
                }
                _ => {}
            }
            i += 1;
        }
    }

    /// Rule 3 over the whole file.
    fn check_error_hygiene(&mut self) {
        for i in 0..self.tokens.len() {
            if in_spans(self.tests, i) {
                continue;
            }
            let line = self.tokens[i].line;
            match &self.tokens[i].tok {
                Tok::Ident(id)
                    if (id == "unwrap" || id == "expect")
                        && i > 0
                        && self.tokens[i - 1].tok.is_punct('.')
                        && self.tokens.get(i + 1).is_some_and(|t| t.tok.is_punct('(')) =>
                {
                    // `Option::expect`/`Result::expect` take a &str
                    // message; an `.expect(NonString)` call is some other
                    // method of that name (e.g. the MQL parser's token
                    // combinator) — skip it.
                    if id == "expect"
                        && !self.tokens.get(i + 2).is_some_and(|t| t.tok == Tok::Str)
                    {
                        continue;
                    }
                    self.push(
                        line,
                        Rule::ErrorHygiene,
                        format!(".{id}() in kernel code — propagate the error or justify \
                                 with `// lint: allow(error-hygiene, <why>)`"),
                    );
                }
                Tok::Ident(id)
                    if id == "panic"
                        && self.tokens.get(i + 1).is_some_and(|t| t.tok.is_punct('!')) =>
                {
                    self.push(
                        line,
                        Rule::ErrorHygiene,
                        "panic!() in kernel code — return an error instead".to_string(),
                    );
                }
                _ => {}
            }
        }
    }

    /// Rule 4 over one function body: bare `recv.f(...);` statements
    /// discarding a kernel Result.
    fn check_ignored_results(&mut self, start: usize, end: usize) {
        let mut stmt_start = start + 1;
        let mut i = start + 1;
        while i < end {
            match self.tokens[i].tok {
                Tok::Punct(';') | Tok::Punct('{') | Tok::Punct('}') => {
                    self.try_bare_call(stmt_start, i);
                    stmt_start = i + 1;
                }
                _ => {}
            }
            i += 1;
        }
    }

    /// If `[start, semi)` is exactly `ident (.ident)* ( … )` with the final
    /// called name returning a kernel Result, report it.
    fn try_bare_call(&mut self, start: usize, semi: usize) {
        if !self.tokens.get(semi).is_some_and(|t| t.tok.is_punct(';')) {
            return;
        }
        if in_spans(self.tests, start) {
            return; // tests may discard results deliberately
        }
        // Leading receiver chain: idents separated by dots, ending at the
        // called name's argument list.
        let mut i = start;
        let (name, open) = loop {
            let Some(Tok::Ident(id)) = self.tokens.get(i).map(|t| &t.tok) else { return };
            match self.tokens.get(i + 1).map(|t| &t.tok) {
                Some(Tok::Punct('.')) => i += 2,
                Some(Tok::Punct('(')) => break (id.clone(), i + 1),
                _ => return,
            }
        };
        // Balanced argument list, then the statement must end.
        let after = skip_call(self.tokens, open);
        if after != semi {
            return;
        }
        if self.result_fns.contains(&name) {
            self.push(
                self.tokens[open].line,
                Rule::IgnoredResult,
                format!(
                    "result of `{name}(…)` (a kernel Result) is ignored — handle it, `?` it, \
                     or bind `let _ =` with a lint allow"
                ),
            );
        }
    }
}

/// Index just past the balanced `(...)` group opening at `open`.
fn skip_call(tokens: &[Token], open: usize) -> usize {
    let mut depth = 0isize;
    let mut i = open;
    while i < tokens.len() {
        match tokens[i].tok {
            Tok::Punct('(') => depth += 1,
            Tok::Punct(')') => {
                depth -= 1;
                if depth == 0 {
                    return i + 1;
                }
            }
            _ => {}
        }
        i += 1;
    }
    i
}

// ---------------------------------------------------------------------------
// Unannotated-declaration check
// ---------------------------------------------------------------------------

/// Every `name: …Mutex<…>`/`RwLock<…>` declaration (struct field or typed
/// `let`) outside tests must carry a `lockrank:` annotation — the
/// annotation discipline rule 1's receiver resolution relies on.
fn check_declarations(
    file: &Path,
    tokens: &[Token],
    tests: &[(usize, usize)],
    annotated: &HashSet<u32>,
    findings: &mut Vec<Finding>,
) {
    for i in 0..tokens.len() {
        let Tok::Ident(id) = &tokens[i].tok else { continue };
        if id != "Mutex" && id != "RwLock" {
            continue;
        }
        if !tokens.get(i + 1).is_some_and(|t| t.tok.is_punct('<')) {
            continue; // path use (`Mutex::new_ranked`), not a type
        }
        if in_spans(tests, i) {
            continue;
        }
        // Reference types are borrows (parameters), not declarations.
        if i > 0 && tokens[i - 1].tok.is_punct('&') {
            continue;
        }
        // Walk back to the statement head; a declaration looks like
        // `[pub] name :` possibly with wrapper types in between
        // (`Vec<Arc<Mutex<…>>>`). Bail on function signatures and
        // return-type positions.
        let mut j = i;
        let mut name: Option<String> = None;
        let mut name_line = tokens[i].line;
        let mut colon = false;
        let mut bail = false;
        while j > 0 {
            j -= 1;
            match &tokens[j].tok {
                Tok::Punct(';') | Tok::Punct('{') | Tok::Punct('}') | Tok::Punct(',')
                | Tok::Punct('(') => break,
                Tok::Ident(k) if k == "fn" || k == "impl" || k == "where" => {
                    bail = true;
                    break;
                }
                Tok::Punct('>')
                    if tokens.get(j.wrapping_sub(1)).is_some_and(|t| t.tok.is_punct('-')) =>
                {
                    // `-> … Mutex<…>` return type
                    bail = true;
                    break;
                }
                Tok::Punct(':') => colon = true,
                Tok::Ident(k) if colon => {
                    name = Some(k.clone());
                    // The annotation attaches to the declaration's first
                    // line — the name's line, not the `Mutex<` token's.
                    name_line = tokens[j].line;
                    break;
                }
                _ => {}
            }
        }
        if bail {
            continue;
        }
        let Some(name) = name else { continue };
        let line = tokens[i].line;
        if !annotated.contains(&name_line) && !annotated.contains(&line) {
            findings.push(Finding {
                file: file.to_path_buf(),
                line,
                rule: Rule::LockRank,
                message: format!(
                    "lock declaration `{name}` has no `// lockrank: <domain>.<n>` annotation"
                ),
            });
        }
    }
}

// ---------------------------------------------------------------------------
// Passes
// ---------------------------------------------------------------------------

/// Kernel-Result function names that collide with ubiquitous std methods
/// returning `()` (atomics, collections) — name-based matching would
/// flood false positives, so these stay out of rule 4's net.
const RESULT_FN_SHADOWED: &[&str] = &[
    "store", "load", "swap", "insert", "remove", "push", "write", "read", "clear", "set",
    // stats counters expose a unit-returning `reset()` next to `Wal::reset`
    "reset",
];

/// Pass A: names of functions returning a kernel Result type, across all
/// scanned files.
pub fn collect_result_fns(sources: &[(PathBuf, String)]) -> HashSet<String> {
    let mut out = HashSet::new();
    for (_, src) in sources {
        let lexed = lex(src);
        let t = &lexed.tokens;
        for i in 0..t.len() {
            if !t[i].tok.is_ident("fn") {
                continue;
            }
            let Some(name) = t.get(i + 1).and_then(|x| x.tok.ident()) else { continue };
            // Find the params' closing paren, then `-> StorageResult|TxnResult`.
            let Some(open) = (i + 2..t.len().min(i + 64)).find(|&k| t[k].tok.is_punct('(')) else {
                continue;
            };
            let after = skip_call(t, open);
            if t.get(after).is_some_and(|x| x.tok.is_punct('-'))
                && t.get(after + 1).is_some_and(|x| x.tok.is_punct('>'))
            {
                let mut k = after + 2;
                // Skip leading path segments (`wal::`).
                while let (Some(Tok::Ident(_)), Some(true)) = (
                    t.get(k).map(|x| &x.tok),
                    t.get(k + 1).map(|x| x.tok.is_punct(':')),
                ) {
                    k += 3; // ident :: (two colon puncts)
                }
                if let Some(ret) = t.get(k).and_then(|x| x.tok.ident()) {
                    if (ret == "StorageResult" || ret == "TxnResult")
                        && !RESULT_FN_SHADOWED.contains(&name)
                    {
                        out.insert(name.to_string());
                    }
                }
            }
        }
    }
    out
}

/// Pass B: all findings for one file.
pub fn analyze_file(file: &Path, src: &str, result_fns: &HashSet<String>) -> Vec<Finding> {
    let lexed = lex(src);
    let ann = parse_annotations(file, &lexed);
    let tests = test_spans(&lexed.tokens);

    let mut analyzer = Analyzer {
        file,
        tokens: &lexed.tokens,
        rank_of: &ann.rank_of,
        result_fns,
        tests: &tests,
        findings: ann.findings,
    };

    for &(start, end) in &fn_bodies(&lexed.tokens) {
        analyzer.check_lock_discipline(start, end);
        analyzer.check_ignored_results(start, end);
    }
    analyzer.check_error_hygiene();
    let mut findings = analyzer.findings;
    check_declarations(file, &lexed.tokens, &tests, &ann.annotated_lines, &mut findings);

    // Apply allows: a valid allow suppresses matching findings on its
    // target line; an allow without a reason (or with an unknown rule
    // name) still suppresses but is reported itself.
    let mut out = Vec::new();
    for f in findings {
        let allowed = ann
            .allows
            .iter()
            .any(|a| a.target_line == f.line && a.rule == Some(f.rule));
        if !allowed {
            out.push(f);
        }
    }
    for a in &ann.allows {
        if a.rule.is_none() {
            out.push(Finding {
                file: file.to_path_buf(),
                line: a.comment_line,
                rule: Rule::AllowWithoutReason,
                message: format!("allow names unknown rule `{}`", a.raw_rule),
            });
        } else if !a.reason_ok {
            out.push(Finding {
                file: file.to_path_buf(),
                line: a.comment_line,
                rule: Rule::AllowWithoutReason,
                message: "lint allow must carry a reason: `// lint: allow(<rule>, <why>)`"
                    .to_string(),
            });
        }
    }
    out.sort_by_key(|f| f.line);
    out
}

/// Collects the kernel sources under `repo_root`.
pub fn kernel_sources(repo_root: &Path) -> std::io::Result<Vec<(PathBuf, String)>> {
    let mut files = Vec::new();
    for dir in KERNEL_DIRS {
        walk(&repo_root.join(dir), &mut files)?;
    }
    files.sort();
    files
        .into_iter()
        .map(|p| std::fs::read_to_string(&p).map(|s| (p, s)))
        .collect()
}

fn walk(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    for entry in std::fs::read_dir(dir)? {
        let path = entry?.path();
        if path.is_dir() {
            walk(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Full run over a repo checkout: every finding in every kernel file.
pub fn run(repo_root: &Path) -> std::io::Result<Vec<Finding>> {
    let sources = kernel_sources(repo_root)?;
    let result_fns = collect_result_fns(&sources);
    let mut findings = Vec::new();
    for (path, src) in &sources {
        let rel = path.strip_prefix(repo_root).unwrap_or(path);
        findings.extend(analyze_file(rel, src, &result_fns));
    }
    Ok(findings)
}
