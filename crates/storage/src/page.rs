//! Pages: the unit of transfer between buffer and disk.
//!
//! Section 3.3: "the storage system of PRIMA supports pages of different
//! length. The page size of each segment can be chosen to be 1/2, 1, 2, 4
//! or 8 Kbyte" — exactly the five block sizes of the underlying file
//! manager, so page↔block mapping is the identity.
//!
//! Every page carries a fixed header "used for identification, description,
//! and fault tolerance": a type tag, its own id (so a misdirected read is
//! detectable), a payload length, page-sequence linkage fields, and a
//! checksum over the payload.

use crate::bytes::le_u32;
use crate::error::{PageRefDesc, StorageError, StorageResult};

/// The five page sizes supported by the storage system (in bytes).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum PageSize {
    /// 512 bytes ("1/2 K").
    Half,
    /// 1 KByte.
    K1,
    /// 2 KByte.
    K2,
    /// 4 KByte.
    K4,
    /// 8 KByte.
    K8,
}

impl PageSize {
    /// All five sizes, smallest first.
    pub const ALL: [PageSize; 5] =
        [PageSize::Half, PageSize::K1, PageSize::K2, PageSize::K4, PageSize::K8];

    /// Size in bytes.
    pub const fn bytes(self) -> usize {
        match self {
            PageSize::Half => 512,
            PageSize::K1 => 1024,
            PageSize::K2 => 2048,
            PageSize::K4 => 4096,
            PageSize::K8 => 8192,
        }
    }

    /// Payload capacity (size minus the fixed header).
    pub const fn payload(self) -> usize {
        self.bytes() - PAGE_HEADER_LEN
    }

    /// The smallest supported size that can hold `payload_len` payload
    /// bytes in one page, if any.
    pub fn fitting(payload_len: usize) -> Option<PageSize> {
        PageSize::ALL.into_iter().find(|s| s.payload() >= payload_len)
    }
}

impl std::fmt::Display for PageSize {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PageSize::Half => write!(f, "1/2K"),
            PageSize::K1 => write!(f, "1K"),
            PageSize::K2 => write!(f, "2K"),
            PageSize::K4 => write!(f, "4K"),
            PageSize::K8 => write!(f, "8K"),
        }
    }
}

/// Identity of a page: segment number plus page number within the segment.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PageId {
    pub segment: u32,
    pub page: u32,
}

impl PageId {
    pub fn new(segment: u32, page: u32) -> Self {
        PageId { segment, page }
    }

    pub(crate) fn desc(self) -> PageRefDesc {
        PageRefDesc { segment: self.segment, page: self.page }
    }
}

impl std::fmt::Display for PageId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}:{}", self.segment, self.page)
    }
}

/// What a page is used for; stored in the header so that readers can verify
/// they got the kind of page they expected ("description" role of the
/// header).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum PageType {
    /// Freshly allocated, content not yet meaningful.
    Free = 0,
    /// Ordinary data page (physical records of the access system).
    Data = 1,
    /// Header page of a page sequence (Section 3.3 / Fig. 3.2c).
    SeqHeader = 2,
    /// Component page of a page sequence.
    SeqComponent = 3,
    /// Access-path page (B*-tree node, grid directory, ...).
    AccessPath = 4,
    /// Segment metadata (allocation directory).
    Meta = 5,
}

impl PageType {
    pub fn from_tag(tag: u8) -> Option<PageType> {
        Some(match tag {
            0 => PageType::Free,
            1 => PageType::Data,
            2 => PageType::SeqHeader,
            3 => PageType::SeqComponent,
            4 => PageType::AccessPath,
            5 => PageType::Meta,
            _ => return None,
        })
    }

    pub const fn name(self) -> &'static str {
        match self {
            PageType::Free => "free",
            PageType::Data => "data",
            PageType::SeqHeader => "seq-header",
            PageType::SeqComponent => "seq-component",
            PageType::AccessPath => "access-path",
            PageType::Meta => "meta",
        }
    }
}

/// Byte length of the fixed page header.
///
/// Layout (little-endian):
/// ```text
/// 0..2   magic 0x504D ("PM")
/// 2      page type tag
/// 3      flags (bit 0: dirty-on-disk marker used by fault-tolerance tests)
/// 4..8   segment id
/// 8..12  page number
/// 12..16 payload length actually used
/// 16..20 page-sequence link: header page number (or u32::MAX)
/// 20..24 page-sequence position (index of this component; 0 for header)
/// 24..28 checksum over used payload
/// 28..32 reserved
/// ```
pub const PAGE_HEADER_LEN: usize = 32;

const MAGIC: u16 = 0x504D;
const NO_LINK: u32 = u32::MAX;

/// An in-memory page image: header plus payload, always exactly
/// `size.bytes()` long.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Page {
    size: PageSize,
    buf: Box<[u8]>,
}

impl Page {
    /// A fresh page of the given size, typed and self-identified.
    pub fn new(id: PageId, size: PageSize, ptype: PageType) -> Page {
        let mut p = Page { size, buf: vec![0u8; size.bytes()].into_boxed_slice() };
        p.buf[0..2].copy_from_slice(&MAGIC.to_le_bytes());
        p.buf[2] = ptype as u8;
        p.buf[4..8].copy_from_slice(&id.segment.to_le_bytes());
        p.buf[8..12].copy_from_slice(&id.page.to_le_bytes());
        p.set_seq_link(None, 0);
        p.update_checksum();
        p
    }

    /// Reconstructs a page from raw block bytes, verifying magic, size,
    /// identity and checksum (the "fault tolerance" role of the header).
    /// A completely zeroed block is accepted as a `Free` page, because the
    /// simulated file manager returns zeroes for never-written blocks.
    pub fn from_bytes(id: PageId, size: PageSize, bytes: &[u8]) -> StorageResult<Page> {
        debug_assert_eq!(bytes.len(), size.bytes());
        if bytes.iter().all(|&b| b == 0) {
            return Ok(Page::new(id, size, PageType::Free));
        }
        let magic = u16::from_le_bytes([bytes[0], bytes[1]]);
        if magic != MAGIC {
            return Err(StorageError::ChecksumMismatch(id.desc()));
        }
        let page = Page { size, buf: bytes.to_vec().into_boxed_slice() };
        let stored_seg = le_u32(&bytes[4..8]);
        let stored_no = le_u32(&bytes[8..12]);
        if (stored_seg, stored_no) != (id.segment, id.page) {
            return Err(StorageError::ChecksumMismatch(id.desc()));
        }
        if page.stored_checksum() != page.compute_checksum() {
            return Err(StorageError::ChecksumMismatch(id.desc()));
        }
        Ok(page)
    }

    /// The page's identity as recorded in its header.
    pub fn id(&self) -> PageId {
        PageId {
            segment: le_u32(&self.buf[4..8]),
            page: le_u32(&self.buf[8..12]),
        }
    }

    pub fn size(&self) -> PageSize {
        self.size
    }

    pub fn page_type(&self) -> PageType {
        PageType::from_tag(self.buf[2]).unwrap_or(PageType::Free)
    }

    pub fn set_page_type(&mut self, t: PageType) {
        self.buf[2] = t as u8;
    }

    /// Number of payload bytes in use.
    pub fn payload_len(&self) -> usize {
        le_u32(&self.buf[12..16]) as usize
    }

    /// Read-only view of the used payload.
    pub fn payload(&self) -> &[u8] {
        &self.buf[PAGE_HEADER_LEN..PAGE_HEADER_LEN + self.payload_len()]
    }

    /// Read-only view of the whole payload area (used and unused).
    pub fn payload_area(&self) -> &[u8] {
        &self.buf[PAGE_HEADER_LEN..]
    }

    /// Mutable view of the whole payload area. Callers must call
    /// [`Page::set_payload_len`] (and the buffer layer re-checksums on
    /// write-back).
    pub fn payload_area_mut(&mut self) -> &mut [u8] {
        &mut self.buf[PAGE_HEADER_LEN..]
    }

    /// Declares how many payload bytes are meaningful.
    pub fn set_payload_len(&mut self, len: usize) -> StorageResult<()> {
        if len > self.size.payload() {
            return Err(StorageError::PayloadTooLarge { len, max: self.size.payload() });
        }
        self.buf[12..16].copy_from_slice(&(len as u32).to_le_bytes());
        Ok(())
    }

    /// Replaces the used payload wholesale.
    pub fn write_payload(&mut self, data: &[u8]) -> StorageResult<()> {
        self.set_payload_len(data.len())?;
        self.buf[PAGE_HEADER_LEN..PAGE_HEADER_LEN + data.len()].copy_from_slice(data);
        Ok(())
    }

    /// Page-sequence linkage: header page number this page belongs to
    /// (None if not in a sequence) and position within the sequence.
    pub fn seq_link(&self) -> (Option<u32>, u32) {
        let hdr = le_u32(&self.buf[16..20]);
        let pos = le_u32(&self.buf[20..24]);
        (if hdr == NO_LINK { None } else { Some(hdr) }, pos)
    }

    pub fn set_seq_link(&mut self, header: Option<u32>, pos: u32) {
        self.buf[16..20].copy_from_slice(&header.unwrap_or(NO_LINK).to_le_bytes());
        self.buf[20..24].copy_from_slice(&pos.to_le_bytes());
    }

    fn stored_checksum(&self) -> u32 {
        le_u32(&self.buf[24..28])
    }

    fn compute_checksum(&self) -> u32 {
        // FNV-1a over header-identity fields and used payload: cheap and
        // adequate for catching torn/misdirected writes in the simulator.
        let mut h: u32 = 0x811c9dc5;
        let mut feed = |bytes: &[u8]| {
            for &b in bytes {
                h ^= b as u32;
                h = h.wrapping_mul(0x0100_0193);
            }
        };
        feed(&self.buf[0..16]);
        feed(&self.buf[16..24]);
        feed(self.payload());
        h
    }

    /// Recomputes and stores the checksum; called by the buffer manager
    /// before write-back.
    pub fn update_checksum(&mut self) {
        let c = self.compute_checksum();
        self.buf[24..28].copy_from_slice(&c.to_le_bytes());
    }

    /// Raw bytes for transfer to the device.
    pub fn as_bytes(&self) -> &[u8] {
        &self.buf
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sizes_match_paper() {
        let bytes: Vec<usize> = PageSize::ALL.iter().map(|s| s.bytes()).collect();
        assert_eq!(bytes, vec![512, 1024, 2048, 4096, 8192]);
    }

    #[test]
    fn fitting_picks_smallest() {
        assert_eq!(PageSize::fitting(10), Some(PageSize::Half));
        assert_eq!(PageSize::fitting(512 - PAGE_HEADER_LEN), Some(PageSize::Half));
        assert_eq!(PageSize::fitting(512), Some(PageSize::K1));
        assert_eq!(PageSize::fitting(8192 - PAGE_HEADER_LEN), Some(PageSize::K8));
        assert_eq!(PageSize::fitting(9000), None);
    }

    #[test]
    fn round_trip_through_bytes() {
        let id = PageId::new(2, 17);
        let mut p = Page::new(id, PageSize::K1, PageType::Data);
        p.write_payload(b"engineering objects").unwrap();
        p.set_seq_link(Some(5), 3);
        p.update_checksum();
        let q = Page::from_bytes(id, PageSize::K1, p.as_bytes()).unwrap();
        assert_eq!(q.id(), id);
        assert_eq!(q.page_type(), PageType::Data);
        assert_eq!(q.payload(), b"engineering objects");
        assert_eq!(q.seq_link(), (Some(5), 3));
    }

    #[test]
    fn zero_block_reads_as_free_page() {
        let id = PageId::new(0, 0);
        let zeroes = vec![0u8; 512];
        let p = Page::from_bytes(id, PageSize::Half, &zeroes).unwrap();
        assert_eq!(p.page_type(), PageType::Free);
        assert_eq!(p.payload_len(), 0);
    }

    #[test]
    fn corrupted_payload_detected() {
        let id = PageId::new(1, 1);
        let mut p = Page::new(id, PageSize::Half, PageType::Data);
        p.write_payload(b"abc").unwrap();
        p.update_checksum();
        let mut bytes = p.as_bytes().to_vec();
        bytes[PAGE_HEADER_LEN] ^= 0xff;
        assert!(matches!(
            Page::from_bytes(id, PageSize::Half, &bytes),
            Err(StorageError::ChecksumMismatch(_))
        ));
    }

    #[test]
    fn misdirected_read_detected() {
        let id = PageId::new(1, 1);
        let mut p = Page::new(id, PageSize::Half, PageType::Data);
        p.update_checksum();
        // read the bytes back under a different identity
        assert!(Page::from_bytes(PageId::new(1, 2), PageSize::Half, p.as_bytes()).is_err());
    }

    #[test]
    fn oversized_payload_rejected() {
        let mut p = Page::new(PageId::new(0, 0), PageSize::Half, PageType::Data);
        let too_big = vec![0u8; 513];
        assert!(matches!(
            p.write_payload(&too_big),
            Err(StorageError::PayloadTooLarge { .. })
        ));
    }
}
