//! One-shot MQL helpers over the session API.
//!
//! The kernel's pre-session one-shot facade (`Prima::query`,
//! `query_traced`, `query_with_assembly`, `query_parallel`, `execute`)
//! has been removed in favour of [`prima::Session`] + [`QueryOptions`].
//! Tests, benches and examples that genuinely want auto-commit one-shots
//! use these free functions instead: the convenience stays, but it lives
//! in the application layer and routes through the blessed surface, so
//! the kernel keeps a single query path.

use prima::datasys::{DmlResult, ExecutionTrace};
use prima::{AssemblyMode, MoleculeSet, Prima, PrimaResult, QueryOptions};

/// One-shot `SELECT` with default options, materialised.
pub fn query(db: &Prima, mql: &str) -> PrimaResult<MoleculeSet> {
    Ok(db.session().query(mql, &QueryOptions::default())?.set)
}

/// One-shot `SELECT` returning the execution trace as well.
pub fn query_traced(db: &Prima, mql: &str) -> PrimaResult<(MoleculeSet, ExecutionTrace)> {
    let r = db.session().query(mql, &QueryOptions::new().traced())?;
    Ok((r.set, r.trace.expect("trace requested")))
}

/// One-shot `SELECT` under an explicit vertical-assembly strategy.
pub fn query_with_assembly(
    db: &Prima,
    mql: &str,
    mode: AssemblyMode,
) -> PrimaResult<(MoleculeSet, ExecutionTrace)> {
    let r = db.session().query(mql, &QueryOptions::new().assembly(mode).traced())?;
    Ok((r.set, r.trace.expect("trace requested")))
}

/// One-shot `SELECT` with molecule construction on `threads` workers.
pub fn query_parallel(db: &Prima, mql: &str, threads: usize) -> PrimaResult<MoleculeSet> {
    Ok(db.session().query(mql, &QueryOptions::new().threads(threads))?.set)
}

/// One manipulation statement in its own committed transaction.
pub fn execute(db: &Prima, mql: &str) -> PrimaResult<DmlResult> {
    let s = db.session();
    let r = s.execute(mql)?;
    s.commit()?;
    Ok(r)
}
