//! Granular lock table with Moss's nested-transaction rules.
//!
//! Two granules exist (Gray-style hierarchical locking, cut down to what
//! the kernel needs):
//!
//! * **atoms** — the unit DML and molecule assembly operate on;
//! * **type extensions** — "all atoms of one atom type", the granule a
//!   root scan reads. A query's root access takes `Shared` on the root
//!   type's extension; every manipulation takes `IntentExclusive` on the
//!   extension of each atom it writes. `Shared`/`IntentExclusive` are
//!   incompatible, so an uncommitted INSERT / DELETE / MODIFY is never
//!   silently missed (or seen) by a concurrent scan, while writers of
//!   *different* atoms coexist (`IntentExclusive` is compatible with
//!   itself).
//!
//! A transaction may hold several modes on the same target (scan then
//! insert ⇒ `Shared` + `IntentExclusive`, the classic SIX combination);
//! holders therefore carry a mode *set*, and a request conflicts when it
//! is incompatible with any mode a non-ancestor holds.
//!
//! Bookkeeping is indexed per transaction: `transfer` (subtransaction
//! commit) and `release_all` (top-level commit/abort) walk only the
//! transaction's own lock list — O(own locks), not O(table) — and entries
//! whose holder list drains are removed from the table, so the map does
//! not grow with every atom ever locked. [`LockTable::maintenance_visits`]
//! counts the entries those walks touch; a regression test pins the
//! O(own locks) behavior with it.

use super::{TxnError, TxnId};
use parking_lot::Mutex;
use prima_mad::value::{AtomId, AtomTypeId};
use std::collections::HashMap;
use std::fmt;

/// Lock modes. `IntentExclusive` exists only on type extensions (writers
/// announce "I change some atoms of this type"); atoms are locked
/// `Shared`/`Exclusive`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LockMode {
    Shared,
    IntentExclusive,
    Exclusive,
}

/// What a lock protects.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LockTarget {
    /// One atom.
    Atom(AtomId),
    /// The extension (current + future membership) of one atom type.
    Extension(AtomTypeId),
}

impl fmt::Display for LockTarget {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LockTarget::Atom(id) => write!(f, "{id}"),
            LockTarget::Extension(t) => write!(f, "extension(type{t})"),
        }
    }
}

/// Bit set of held modes (one transaction can hold Shared *and*
/// IntentExclusive on the same extension — SIX).
type ModeSet = u8;

const S: ModeSet = 1;
const IX: ModeSet = 2;
const X: ModeSet = 4;

fn bit(m: LockMode) -> ModeSet {
    match m {
        LockMode::Shared => S,
        LockMode::IntentExclusive => IX,
        LockMode::Exclusive => X,
    }
}

/// Standard compatibility: S+S and IX+IX coexist, everything else
/// conflicts (S vs IX included — that is the whole point of the intent
/// mode here: a scan must not overlap an uncommitted writer of the same
/// type).
fn compatible(held: ModeSet, req: LockMode) -> bool {
    match req {
        LockMode::Shared => held & (IX | X) == 0,
        LockMode::IntentExclusive => held & (S | X) == 0,
        LockMode::Exclusive => false,
    }
}

#[derive(Debug, Default)]
struct Entry {
    /// `(holder, modes)` — one slot per holding transaction.
    holders: Vec<(TxnId, ModeSet)>,
}

#[derive(Debug, Default)]
struct Inner {
    entries: HashMap<LockTarget, Entry>,
    /// Per-transaction list of targets the transaction holds locks on —
    /// the index `transfer`/`release_all` walk instead of the whole
    /// table. A target appears at most once per transaction (guarded by
    /// the holder-slot check in `acquire`).
    by_txn: HashMap<TxnId, Vec<LockTarget>>,
    /// Entries visited by `transfer` + `release_all` since construction
    /// (diagnostics; pins the O(own locks) maintenance cost).
    maintenance_visits: u64,
}

/// The lock table.
#[derive(Debug, Default)]
pub struct LockTable {
    inner: Mutex<Inner>,
}

impl LockTable {
    pub fn new() -> Self {
        Self::default()
    }

    /// Acquires `mode` on `target` for `t`. `ancestors` must contain `t`
    /// itself plus all its ancestors; a conflicting holder is tolerated
    /// iff it is in that set (Moss's rule: "all holders are ancestors").
    /// Conflicts fail fast with [`TxnError::LockConflict`] — there is no
    /// wait queue.
    pub fn acquire(
        &self,
        t: TxnId,
        ancestors: &[TxnId],
        target: LockTarget,
        mode: LockMode,
    ) -> Result<(), TxnError> {
        let mut inner = self.inner.lock();
        if let Some(e) = inner.entries.get(&target) {
            for (holder, held) in &e.holders {
                if !compatible(*held, mode) && !ancestors.contains(holder) {
                    return Err(TxnError::LockConflict { target, holder: *holder });
                }
            }
        }
        let e = inner.entries.entry(target).or_default();
        match e.holders.iter_mut().find(|(h, _)| *h == t) {
            Some(slot) => slot.1 |= bit(mode),
            None => {
                e.holders.push((t, bit(mode)));
                inner.by_txn.entry(t).or_default().push(target);
            }
        }
        Ok(())
    }

    /// Transfers all of `from`'s locks to `to` (subtransaction commit —
    /// "anti-inheritance"). Walks only `from`'s own lock list.
    pub fn transfer(&self, from: TxnId, to: TxnId) {
        let mut inner = self.inner.lock();
        let Some(targets) = inner.by_txn.remove(&from) else { return };
        for target in targets {
            inner.maintenance_visits += 1;
            let Some(e) = inner.entries.get_mut(&target) else { continue };
            let Some(pos) = e.holders.iter().position(|(h, _)| *h == from) else { continue };
            let (_, modes) = e.holders.swap_remove(pos);
            match e.holders.iter_mut().find(|(h, _)| *h == to) {
                Some(slot) => slot.1 |= modes,
                None => {
                    e.holders.push((to, modes));
                    inner.by_txn.entry(to).or_default().push(target);
                }
            }
        }
    }

    /// Releases all locks of `t` (top-level commit or abort), reaping
    /// entries whose holder list drains. Walks only `t`'s own lock list.
    pub fn release_all(&self, t: TxnId) {
        let mut inner = self.inner.lock();
        let Some(targets) = inner.by_txn.remove(&t) else { return };
        for target in targets {
            inner.maintenance_visits += 1;
            let Some(e) = inner.entries.get_mut(&target) else { continue };
            e.holders.retain(|(h, _)| *h != t);
            if e.holders.is_empty() {
                inner.entries.remove(&target);
            }
        }
    }

    /// Number of targets with at least one lock (diagnostics). Returns to
    /// zero once every transaction has committed or aborted — empty
    /// entries are reaped, the table does not grow monotonically.
    pub fn locked_targets(&self) -> usize {
        self.inner.lock().entries.len()
    }

    /// Number of locks `t` currently holds (diagnostics).
    pub fn held_by(&self, t: TxnId) -> usize {
        self.inner.lock().by_txn.get(&t).map_or(0, |v| v.len())
    }

    /// Entries visited by `transfer`/`release_all` so far — the
    /// maintenance cost, which must scale with the finishing
    /// transaction's own lock count, never with the table size.
    pub fn maintenance_visits(&self) -> u64 {
        self.inner.lock().maintenance_visits
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn atom(n: u64) -> LockTarget {
        LockTarget::Atom(AtomId::new(0, n))
    }

    fn ext(t: AtomTypeId) -> LockTarget {
        LockTarget::Extension(t)
    }

    #[test]
    fn shared_locks_coexist() {
        let lt = LockTable::new();
        lt.acquire(TxnId(1), &[TxnId(1)], atom(1), LockMode::Shared).unwrap();
        lt.acquire(TxnId(2), &[TxnId(2)], atom(1), LockMode::Shared).unwrap();
        assert_eq!(lt.locked_targets(), 1);
    }

    #[test]
    fn exclusive_conflicts_with_stranger() {
        let lt = LockTable::new();
        lt.acquire(TxnId(1), &[TxnId(1)], atom(1), LockMode::Exclusive).unwrap();
        let err = lt.acquire(TxnId(2), &[TxnId(2)], atom(1), LockMode::Shared).unwrap_err();
        assert!(matches!(err, TxnError::LockConflict { holder: TxnId(1), .. }));
        let err = lt.acquire(TxnId(2), &[TxnId(2)], atom(1), LockMode::Exclusive).unwrap_err();
        assert!(matches!(err, TxnError::LockConflict { .. }));
    }

    #[test]
    fn intent_exclusive_coexists_with_itself_but_not_shared() {
        let lt = LockTable::new();
        // Two writers of different atoms announce intent on the same type.
        lt.acquire(TxnId(1), &[TxnId(1)], ext(7), LockMode::IntentExclusive).unwrap();
        lt.acquire(TxnId(2), &[TxnId(2)], ext(7), LockMode::IntentExclusive).unwrap();
        // A scanning reader conflicts with both.
        let err = lt.acquire(TxnId(3), &[TxnId(3)], ext(7), LockMode::Shared);
        assert!(err.is_err());
        // And a reader-held extension blocks a new writer.
        lt.acquire(TxnId(3), &[TxnId(3)], ext(8), LockMode::Shared).unwrap();
        let err = lt.acquire(TxnId(1), &[TxnId(1)], ext(8), LockMode::IntentExclusive);
        assert!(err.is_err());
    }

    #[test]
    fn scan_then_write_combines_modes_six_style() {
        let lt = LockTable::new();
        // One transaction scans (S) then inserts (IX) into the same type.
        lt.acquire(TxnId(1), &[TxnId(1)], ext(7), LockMode::Shared).unwrap();
        lt.acquire(TxnId(1), &[TxnId(1)], ext(7), LockMode::IntentExclusive).unwrap();
        // The combined hold blocks both readers and writers.
        assert!(lt.acquire(TxnId(2), &[TxnId(2)], ext(7), LockMode::Shared).is_err());
        assert!(lt
            .acquire(TxnId(2), &[TxnId(2)], ext(7), LockMode::IntentExclusive)
            .is_err());
        // Exactly one index entry despite two modes.
        assert_eq!(lt.held_by(TxnId(1)), 1);
    }

    #[test]
    fn ancestor_holding_lock_is_not_a_conflict() {
        let lt = LockTable::new();
        // parent 1 holds X; child 2 (ancestors [2,1]) may acquire.
        lt.acquire(TxnId(1), &[TxnId(1)], atom(1), LockMode::Exclusive).unwrap();
        lt.acquire(TxnId(2), &[TxnId(2), TxnId(1)], atom(1), LockMode::Exclusive).unwrap();
        // sibling 3 (ancestors [3,1]) conflicts with 2's X.
        let err = lt.acquire(TxnId(3), &[TxnId(3), TxnId(1)], atom(1), LockMode::Shared);
        assert!(err.is_err());
    }

    #[test]
    fn transfer_on_subcommit() {
        let lt = LockTable::new();
        lt.acquire(TxnId(2), &[TxnId(2), TxnId(1)], atom(1), LockMode::Exclusive).unwrap();
        lt.transfer(TxnId(2), TxnId(1));
        // A stranger still conflicts — now with txn 1.
        let err = lt.acquire(TxnId(9), &[TxnId(9)], atom(1), LockMode::Shared).unwrap_err();
        assert!(matches!(err, TxnError::LockConflict { holder: TxnId(1), .. }));
        // Another child of 1 may acquire (holder is its ancestor).
        lt.acquire(TxnId(3), &[TxnId(3), TxnId(1)], atom(1), LockMode::Shared).unwrap();
        // The transferred lock is indexed under the parent now.
        assert_eq!(lt.held_by(TxnId(2)), 0);
        assert_eq!(lt.held_by(TxnId(1)), 1);
    }

    #[test]
    fn release_all_clears_and_reaps_entries() {
        let lt = LockTable::new();
        lt.acquire(TxnId(1), &[TxnId(1)], atom(1), LockMode::Exclusive).unwrap();
        lt.acquire(TxnId(1), &[TxnId(1)], atom(2), LockMode::Shared).unwrap();
        lt.acquire(TxnId(1), &[TxnId(1)], ext(0), LockMode::IntentExclusive).unwrap();
        lt.release_all(TxnId(1));
        assert_eq!(lt.locked_targets(), 0, "empty entries must be reaped");
        lt.acquire(TxnId(2), &[TxnId(2)], atom(1), LockMode::Exclusive).unwrap();
    }

    #[test]
    fn table_does_not_grow_with_every_atom_ever_locked() {
        let lt = LockTable::new();
        for round in 0..50u64 {
            let t = TxnId(round + 1);
            for n in 0..100 {
                lt.acquire(t, &[t], atom(round * 100 + n), LockMode::Exclusive).unwrap();
            }
            lt.release_all(t);
            assert_eq!(lt.locked_targets(), 0, "round {round} left entries behind");
        }
    }

    #[test]
    fn maintenance_walks_own_locks_not_the_table() {
        let lt = LockTable::new();
        // A long-lived transaction holds 1000 locks.
        for n in 0..1000 {
            lt.acquire(TxnId(1), &[TxnId(1)], atom(n), LockMode::Shared).unwrap();
        }
        // A small transaction holds 2.
        lt.acquire(TxnId(2), &[TxnId(2)], atom(5000), LockMode::Exclusive).unwrap();
        lt.acquire(TxnId(2), &[TxnId(2)], atom(5001), LockMode::Exclusive).unwrap();
        let before = lt.maintenance_visits();
        lt.release_all(TxnId(2));
        assert_eq!(
            lt.maintenance_visits() - before,
            2,
            "releasing a 2-lock txn must visit 2 entries, not the 1000-entry table"
        );
        // Same for subtransaction transfer.
        lt.acquire(TxnId(3), &[TxnId(3), TxnId(1)], atom(6000), LockMode::Exclusive).unwrap();
        let before = lt.maintenance_visits();
        lt.transfer(TxnId(3), TxnId(1));
        assert_eq!(lt.maintenance_visits() - before, 1);
    }

    #[test]
    fn shared_then_upgrade_by_same_txn() {
        let lt = LockTable::new();
        lt.acquire(TxnId(1), &[TxnId(1)], atom(1), LockMode::Shared).unwrap();
        lt.acquire(TxnId(1), &[TxnId(1)], atom(1), LockMode::Exclusive).unwrap();
        let err = lt.acquire(TxnId(2), &[TxnId(2)], atom(1), LockMode::Shared);
        assert!(err.is_err());
    }
}
