//! Fixture: exactly one `error-hygiene` finding — a bare unwrap in
//! non-test code. The test-module unwrap below must NOT fire.

pub fn bad(v: Option<u32>) -> u32 {
    v.unwrap()
}

#[cfg(test)]
mod tests {
    #[test]
    fn unwrap_in_tests_is_fine() {
        let v: Option<u32> = Some(1);
        assert_eq!(v.unwrap(), 1);
    }
}
