//! The atom-type scan.
//!
//! "The simplest of these scans is the atom-type scan. It successively
//! reads all atoms of one atom type in a system-defined order — either as
//! a whole or only selected attributes. In addition, the result set of
//! the scan can be restricted by a simple search argument decidable on
//! each atom. Hence, the atom-type scan corresponds to the relation scan
//! of the RSS." (Section 3.2.)
//!
//! System-defined order here is physical order: pages of the base record
//! file in allocation order, slots in slot order. The cursor loads one
//! page worth of records at a time, so NEXT costs buffer-level page I/O
//! exactly once per page in either direction.

use super::Scan;
use crate::access_system::AccessSystem;
use crate::atom::Atom;
use crate::error::AccessResult;
use crate::ssa::Ssa;
use prima_mad::value::AtomTypeId;

/// Cursor over all atoms of one type in physical order.
pub struct AtomTypeScan<'a> {
    sys: &'a AccessSystem,
    atom_type: AtomTypeId,
    ssa: Ssa,
    projection: Option<Vec<usize>>,
    /// Page numbers snapshot at open.
    pages: Vec<u32>,
    /// Index into `pages` of the page loaded in `records`; `pages.len()`
    /// means past-the-end.
    page_idx: usize,
    records: Vec<Atom>,
    /// Position within `records`: the *last returned* record; -1 = before
    /// first.
    rec_idx: isize,
    opened: bool,
}

impl<'a> AtomTypeScan<'a> {
    /// Opens the scan positioned before the first atom.
    pub fn open(
        sys: &'a AccessSystem,
        atom_type: AtomTypeId,
        ssa: Ssa,
        projection: Option<Vec<usize>>,
    ) -> AccessResult<Self> {
        let pages = sys.base_file(atom_type)?.page_numbers();
        Ok(AtomTypeScan {
            sys,
            atom_type,
            ssa,
            projection,
            pages,
            page_idx: 0,
            records: Vec::new(),
            rec_idx: -1,
            opened: false,
        })
    }

    fn load_page(&mut self, idx: usize) -> AccessResult<()> {
        self.records.clear();
        if let Some(&page_no) = self.pages.get(idx) {
            let raw = self.sys.base_file(self.atom_type)?.read_page_records(page_no)?;
            for (_, bytes) in raw {
                self.records.push(Atom::decode(&bytes)?);
            }
        }
        self.page_idx = idx;
        Ok(())
    }

    fn emit(&self, atom: &Atom) -> Atom {
        match &self.projection {
            Some(p) => atom.project(p),
            None => atom.clone(),
        }
    }
}

impl Scan for AtomTypeScan<'_> {
    fn next(&mut self) -> AccessResult<Option<Atom>> {
        if !self.opened {
            self.load_page(0)?;
            self.opened = true;
            self.rec_idx = -1;
        }
        loop {
            let next_idx = (self.rec_idx + 1) as usize;
            if next_idx < self.records.len() {
                self.rec_idx += 1;
                let atom = &self.records[next_idx];
                if self.ssa.eval(atom) {
                    return Ok(Some(self.emit(atom)));
                }
                continue;
            }
            // Advance to the next page.
            if self.page_idx + 1 >= self.pages.len().max(1) && self.pages.len() <= self.page_idx + 1
            {
                return Ok(None);
            }
            let idx = self.page_idx + 1;
            if idx >= self.pages.len() {
                return Ok(None);
            }
            self.load_page(idx)?;
            self.rec_idx = -1;
        }
    }

    fn prior(&mut self) -> AccessResult<Option<Atom>> {
        if !self.opened {
            // PRIOR from the initial position starts at the end.
            if self.pages.is_empty() {
                return Ok(None);
            }
            let last = self.pages.len() - 1;
            self.load_page(last)?;
            self.opened = true;
            self.rec_idx = self.records.len() as isize;
        }
        loop {
            if self.rec_idx > 0 {
                self.rec_idx -= 1;
                let atom = &self.records[self.rec_idx as usize];
                if self.ssa.eval(atom) {
                    return Ok(Some(self.emit(atom)));
                }
                continue;
            }
            if self.page_idx == 0 {
                self.rec_idx = -1;
                return Ok(None);
            }
            let idx = self.page_idx - 1;
            self.load_page(idx)?;
            self.rec_idx = self.records.len() as isize;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ssa::CmpOp;
    use prima_mad::schema::{AtomType, Attribute, AttrType, Schema};
    use prima_mad::value::Value;
    use prima_storage::StorageSystem;
    use std::sync::Arc;

    fn simple_system(n: i64) -> AccessSystem {
        let mut schema = Schema::new();
        schema
            .add_atom_type(AtomType::build(
                "item",
                vec![
                    Attribute::new("id", AttrType::Identifier),
                    Attribute::new("n", AttrType::Integer),
                    Attribute::new("name", AttrType::CharVar),
                ],
                vec![],
            ))
            .unwrap();
        let storage = Arc::new(StorageSystem::in_memory(8 << 20));
        let sys = AccessSystem::new(storage, schema).unwrap();
        for i in 0..n {
            sys.insert_atom(0, vec![Value::Null, Value::Int(i), Value::Str(format!("i{i}"))])
                .unwrap();
        }
        sys
    }

    #[test]
    fn full_scan_visits_all() {
        let sys = simple_system(300);
        let mut scan = AtomTypeScan::open(&sys, 0, Ssa::True, None).unwrap();
        let all = scan.collect_remaining().unwrap();
        assert_eq!(all.len(), 300);
    }

    #[test]
    fn ssa_restricts() {
        let sys = simple_system(100);
        let ssa = Ssa::Cmp { attr: 1, op: CmpOp::Lt, value: Value::Int(10) };
        let mut scan = AtomTypeScan::open(&sys, 0, ssa, None).unwrap();
        let hits = scan.collect_remaining().unwrap();
        assert_eq!(hits.len(), 10);
        assert!(hits.iter().all(|a| a.values[1].as_int().unwrap() < 10));
    }

    #[test]
    fn projection_selects_attributes() {
        let sys = simple_system(5);
        let mut scan = AtomTypeScan::open(&sys, 0, Ssa::True, Some(vec![0, 1])).unwrap();
        let a = scan.next().unwrap().unwrap();
        assert_ne!(a.values[1], Value::Null);
        assert_eq!(a.values[2], Value::Null, "name projected away");
    }

    #[test]
    fn next_prior_ping_pong() {
        let sys = simple_system(50);
        let mut scan = AtomTypeScan::open(&sys, 0, Ssa::True, None).unwrap();
        let a1 = scan.next().unwrap().unwrap();
        let a2 = scan.next().unwrap().unwrap();
        assert_ne!(a1.id, a2.id);
        let back = scan.prior().unwrap().unwrap();
        assert_eq!(back.id, a1.id, "PRIOR returns to the previous atom");
        let fwd = scan.next().unwrap().unwrap();
        assert_eq!(fwd.id, a2.id);
    }

    #[test]
    fn prior_from_start_walks_backward_from_end() {
        let sys = simple_system(25);
        let mut fwd = AtomTypeScan::open(&sys, 0, Ssa::True, None).unwrap();
        let all = fwd.collect_remaining().unwrap();
        let mut bwd = AtomTypeScan::open(&sys, 0, Ssa::True, None).unwrap();
        let mut rev = Vec::new();
        while let Some(a) = bwd.prior().unwrap() {
            rev.push(a);
        }
        rev.reverse();
        assert_eq!(
            all.iter().map(|a| a.id).collect::<Vec<_>>(),
            rev.iter().map(|a| a.id).collect::<Vec<_>>()
        );
    }

    #[test]
    fn empty_type_scans_empty() {
        let sys = simple_system(0);
        let mut scan = AtomTypeScan::open(&sys, 0, Ssa::True, None).unwrap();
        assert!(scan.next().unwrap().is_none());
        assert!(scan.prior().unwrap().is_none());
    }

    #[test]
    fn exhausted_scan_stays_exhausted_forward() {
        let sys = simple_system(3);
        let mut scan = AtomTypeScan::open(&sys, 0, Ssa::True, None).unwrap();
        while scan.next().unwrap().is_some() {}
        assert!(scan.next().unwrap().is_none());
        // But PRIOR can step back from the end.
        assert!(scan.prior().unwrap().is_some());
    }
}
