//! Molecule management and query execution (Section 3.1).
//!
//! "A one-molecule-at-a-time interface is provided by the molecule
//! management. […] molecule processing has to cope with cursor management
//! and cluster management, hiding the underlying access system interface.
//! It deals with searching the qualified parts of the desired molecule
//! and combining these parts, while performing 'simple' projections and
//! qualifications 'pushed down' for efficiency reasons."
//!
//! Execution pipeline:
//!
//! 1. **Root access** — pick the cheapest way to the qualifying root
//!    atoms: `KEYS_ARE` lookup, B*-tree access-path scan, or atom-type
//!    scan with the pushed-down SSA ([`RootAccess`]).
//! 2. **Vertical assembly** — starting from each root, follow the
//!    resolved associations to fetch the dependent component atoms.
//!    When an atom cluster materialises the molecule, it is prefetched
//!    in one chained read ("cluster management").
//! 3. **Recursion** — recursive edges expand level by level; an ancestor
//!    set guards against reference cycles.
//! 4. **Residual qualification** — quantifiers and non-root predicates,
//!    evaluated per molecule.
//! 5. **Projection** — per-node descriptors, including qualified
//!    projections.
//!
//! ## Batched vertical assembly
//!
//! Step 2 is the kernel's hottest loop: the paper's molecule management
//! "deals with searching the qualified parts of the desired molecule and
//! combining these parts", and every component fetch used to cost one
//! buffer fix (shard lock + LRU touch) through `read_atom`. Assembly now
//! proceeds **level by level**: each round collects every dependent
//! `AtomId` the current frontier references and issues a single
//! [`AccessSystem::read_atoms_batch_opt`] call, which groups the requests
//! by owning page and fixes each page once. Fan-out-`k` levels thus cost
//! ~pages-per-level fix calls instead of `k`. Duplicate ids within a level
//! are *not* deduplicated — each request is decoded individually, so
//! per-layer accounting (`AccessStats::primary_reads`,
//! `ExecutionTrace::atoms_fetched`) matches the per-atom path exactly.
//!
//! Cycle safety for recursive edges uses per-path ancestor chains
//! (immutable linked lists shared across siblings), which reproduce the
//! depth-first ancestor-set semantics under breadth-first expansion.
//!
//! The original one-atom-at-a-time walk is kept as
//! [`AssemblyMode::PerAtom`] — the baseline the `batched_assembly` bench
//! measures against; [`execute`] and the parallel DU path both use
//! [`AssemblyMode::Batched`].

use super::molecule::{MolAtom, Molecule, MoleculeSet, NodeInfo};
use super::plan::{
    root_bounds, ExecutionTrace, NodeProjection, ResolvedQuery, RootAccess,
};
use super::validate::{convert_op, predicate_to_atom_ssa, resolve_ref};
use crate::error::{PrimaError, PrimaResult};
use crate::txn::ReadGuard;
use prima_access::cluster::AtomClusterType;
use prima_access::scan::{AccessPathScan, AtomTypeScan, Scan};
use prima_access::ssa::Ssa;
use prima_access::{AccessSystem, Atom, CmpOp};
use prima_mad::mql::{Operand, Predicate};
use prima_mad::value::{AtomId, Value};
use std::collections::{HashMap, HashSet};
use std::ops::Bound;
use std::sync::Arc;

/// How vertical assembly fetches dependent component atoms.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum AssemblyMode {
    /// One `read_atom` per component — the historical baseline (one
    /// buffer fix per atom). Kept for the `batched_assembly` bench and
    /// equivalence tests.
    PerAtom,
    /// Level-by-level frontier expansion with one page-grouped
    /// `read_atoms_batch_opt` call per level.
    #[default]
    Batched,
}

/// Executes a resolved query, returning the molecule set and a trace of
/// the physical decisions taken. `locks` is the transaction's read-lock
/// hook (`None` only for contexts outside the transaction layer, e.g.
/// recovery-time scans): with a guard, root access takes a `Shared` lock
/// on the root type's extension and every atom that flows into a result
/// is `Shared`-locked before delivery, so an uncommitted concurrent write
/// conflicts instead of being (in)visible.
pub fn execute(
    sys: &AccessSystem,
    q: &ResolvedQuery,
    locks: Option<ReadGuard<'_>>,
) -> PrimaResult<(MoleculeSet, ExecutionTrace)> {
    execute_with_mode(sys, q, AssemblyMode::Batched, locks)
}

/// [`execute`] with an explicit assembly strategy.
pub fn execute_with_mode(
    sys: &AccessSystem,
    q: &ResolvedQuery,
    mode: AssemblyMode,
    locks: Option<ReadGuard<'_>>,
) -> PrimaResult<(MoleculeSet, ExecutionTrace)> {
    let mut trace = ExecutionTrace::default();
    let roots = find_roots(sys, q, &mut trace, locks)?;
    trace.roots_inspected = roots.len();
    let clusters = sys.cluster_types_of(q.nodes[0].atom_type);
    // The per-atom baseline never touches the ctx; skip the edge-table
    // build for it.
    let mut ctx = match mode {
        AssemblyMode::Batched => AssemblyCtx::new(q),
        AssemblyMode::PerAtom => AssemblyCtx::unused(),
    };
    let mut molecules = Vec::new();
    for root in roots {
        let mut fetched = 0usize;
        let molecule = assemble_molecule(
            sys, q, root, &clusters, mode, &mut ctx, &mut trace, &mut fetched, locks,
        )?;
        trace.atoms_fetched += fetched;
        if let Some(res) = &q.residual {
            if !eval_residual(sys, q, &molecule, res)? {
                continue;
            }
        }
        if let Some(projected) = apply_projection(sys, q, molecule) {
            molecules.push(projected);
        }
    }
    trace.molecules = molecules.len();
    Ok((MoleculeSet { nodes: node_infos(q), molecules }, trace))
}

/// Node descriptions for result sets.
pub(crate) fn node_infos(q: &ResolvedQuery) -> Vec<NodeInfo> {
    q.nodes
        .iter()
        .enumerate()
        .map(|(i, n)| NodeInfo {
            label: n.label.clone(),
            atom_type: n.atom_type,
            recursive: n.recursive,
            selected: !matches!(q.select.per_node.get(i), Some(NodeProjection::Exclude)),
        })
        .collect()
}

/// Assembles, qualifies and projects a single root's molecule — the unit
/// of work of semantic parallelism (one DU per molecule; see
/// [`crate::parallel`]). Returns `None` when the molecule does not
/// qualify.
pub(crate) fn process_root(
    sys: &AccessSystem,
    q: &ResolvedQuery,
    root: Atom,
    clusters: &[Arc<AtomClusterType>],
    ctx: &mut AssemblyCtx,
    locks: Option<ReadGuard<'_>>,
) -> PrimaResult<Option<Molecule>> {
    let mut trace = ExecutionTrace::default();
    let mut fetched = 0usize;
    process_root_traced(
        sys,
        q,
        root,
        clusters,
        AssemblyMode::Batched,
        ctx,
        &mut trace,
        &mut fetched,
        locks,
    )
}

/// [`process_root`] variant with an explicit assembly mode that
/// accumulates into a caller-held trace — the unit of work of the
/// streaming [`crate::db::MoleculeCursor`], which assembles lazily and
/// needs per-chunk accounting.
#[allow(clippy::too_many_arguments)]
pub(crate) fn process_root_traced(
    sys: &AccessSystem,
    q: &ResolvedQuery,
    root: Atom,
    clusters: &[Arc<AtomClusterType>],
    mode: AssemblyMode,
    ctx: &mut AssemblyCtx,
    trace: &mut ExecutionTrace,
    fetched: &mut usize,
    locks: Option<ReadGuard<'_>>,
) -> PrimaResult<Option<Molecule>> {
    let molecule = assemble_molecule(sys, q, root, clusters, mode, ctx, trace, fetched, locks)?;
    if let Some(res) = &q.residual {
        if !eval_residual(sys, q, &molecule, res)? {
            return Ok(None);
        }
    }
    Ok(apply_projection(sys, q, molecule))
}

/// `Shared`-locks every atom about to flow out of root access.
fn lock_roots(locks: Option<ReadGuard<'_>>, roots: &[Atom]) -> PrimaResult<()> {
    if let Some(g) = locks {
        for a in roots {
            g.lock_atom(a.id)?;
        }
    }
    Ok(())
}

/// Hands root candidates produced by a base access path to the caller.
/// Locking (or guard-less) mode `Shared`-locks each one and returns them
/// as-is. Snapshot mode instead resolves every candidate through the
/// version store, re-qualifies the visible image against the root SSA
/// (the base value the scan filtered on may be a dirty one), and appends
/// the *extras*: chained atoms of the root type the base scan could not
/// deliver — deleted from base, or pushed-down-filtered on an
/// uncommitted value — whose visible version qualifies.
fn deliver_roots(
    q: &ResolvedQuery,
    locks: Option<ReadGuard<'_>>,
    roots: Vec<Atom>,
) -> PrimaResult<Vec<Atom>> {
    let Some(snap) = locks.and_then(|g| g.as_snapshot()) else {
        lock_roots(locks, &roots)?;
        return Ok(roots);
    };
    let root_type = q.nodes[0].atom_type;
    let mut seen = HashSet::with_capacity(roots.len());
    let mut out = Vec::with_capacity(roots.len());
    for atom in roots {
        let id = atom.id;
        seen.insert(id);
        if let Some(vis) = snap.visible(id, Some(atom)) {
            if q.root_ssa.eval(&vis) {
                out.push(vis);
            }
        }
    }
    for extra in snap.extras(root_type, &seen) {
        if q.root_ssa.eval(&extra) {
            out.push(extra);
        }
    }
    Ok(out)
}

/// Root access selection ("molecule-type-specific optimization").
///
/// With a locking [`ReadGuard`], the root type's extension is
/// `Shared`-locked *before* any atom is inspected: a scan's outcome
/// depends on the whole extension (membership and attribute values), so
/// a concurrent transaction with uncommitted DML on the type — which
/// holds the extension `IntentExclusive` — conflicts here instead of
/// leaking dirty state into (or out of) the result. Each returned root
/// additionally gets a `Shared` atom lock.
///
/// With a snapshot guard no lock is taken anywhere: the base access
/// paths run unguarded to produce *candidates*, and [`deliver_roots`]
/// corrects them to the snapshot's visible versions.
#[allow(clippy::unwrap_used, clippy::expect_used)]
pub(crate) fn find_roots(
    sys: &AccessSystem,
    q: &ResolvedQuery,
    trace: &mut ExecutionTrace,
    locks: Option<ReadGuard<'_>>,
) -> PrimaResult<Vec<Atom>> {
    let _span = crate::obs::span_guard(crate::obs::SpanKind::RootAccess);
    let root_type = q.nodes[0].atom_type;
    let snapshot = locks.and_then(|g| g.as_snapshot()).is_some();
    if let Some(g) = locks {
        g.lock_extension(root_type)?;
    }
    // lint: allow(error-hygiene, plan node type ids were resolved against this same frozen schema during validation)
    let at = sys.schema().atom_type(root_type).expect("resolved").clone();
    let bounds = root_bounds(&q.root_ssa);
    // 1. KEYS_ARE equality -> direct lookup.
    for b in &bounds {
        if b.op == CmpOp::Eq && at.is_key(&at.attributes[b.attr].name) {
            trace.root_access = RootAccess::KeyLookup { attr: b.attr };
            let Some(id) = sys.lookup_by_key(root_type, b.attr, &b.value)? else {
                return deliver_roots(q, locks, Vec::new());
            };
            if snapshot {
                // No lock covers the gap between lookup and read: the
                // atom may concurrently vanish from base (its visible
                // version, if any, comes back through the extras).
                let cand = match sys.read_atom(id, None) {
                    Ok(atom) => vec![atom],
                    Err(prima_access::AccessError::NoSuchAtom(_)) => Vec::new(),
                    Err(e) => return Err(e.into()),
                };
                return deliver_roots(q, locks, cand);
            }
            if let Some(g) = locks {
                g.lock_atom(id)?;
            }
            let atom = sys.read_atom(id, None)?;
            return Ok(if q.root_ssa.eval(&atom) { vec![atom] } else { Vec::new() });
        }
    }
    // 2. A B*-tree over a bounded attribute.
    for b in &bounds {
        if let Some(ix) = sys
            .btrees_of(root_type)
            .into_iter()
            .find(|ix| ix.key_attrs.first() == Some(&b.attr) && ix.key_attrs.len() == 1)
        {
            trace.root_access = RootAccess::AccessPath { index_name: ix.name.clone() };
            let (start, stop) = match b.op {
                CmpOp::Eq => (
                    Bound::Included(vec![b.value.clone()]),
                    Bound::Included(vec![b.value.clone()]),
                ),
                CmpOp::Gt => (Bound::Excluded(vec![b.value.clone()]), Bound::Unbounded),
                CmpOp::Ge => (Bound::Included(vec![b.value.clone()]), Bound::Unbounded),
                CmpOp::Lt => (Bound::Unbounded, Bound::Excluded(vec![b.value.clone()])),
                CmpOp::Le => (Bound::Unbounded, Bound::Included(vec![b.value.clone()])),
                CmpOp::Ne => (Bound::Unbounded, Bound::Unbounded),
            };
            let mut scan =
                AccessPathScan::open(sys, &ix, q.root_ssa.clone(), start, stop, false)?;
            let roots = scan.collect_remaining()?;
            return deliver_roots(q, locks, roots);
        }
    }
    // 3. Single-component queries whose SSA and projection are covered by
    // a partition scan the (denser) partition file instead — "partitions
    // collect the results of projections".
    if q.nodes.len() == 1 {
        let mut needed = q.root_ssa.attrs();
        match q.select.per_node.first() {
            Some(NodeProjection::Attrs(attrs)) => needed.extend(attrs.iter().copied()),
            Some(NodeProjection::All) | None => needed.push(usize::MAX), // not coverable
            Some(NodeProjection::Qualified { attrs, ssa }) => {
                needed.extend(ssa.attrs());
                match attrs {
                    Some(a) => needed.extend(a.iter().copied()),
                    None => needed.push(usize::MAX),
                }
            }
            Some(NodeProjection::Exclude) => {}
        }
        needed.sort_unstable();
        needed.dedup();
        if let Some(part) = sys.partitions_of(root_type).into_iter().find(|p| p.covers(&needed)) {
            trace.root_access = RootAccess::PartitionScan { name: part.name.clone() };
            let mut out = Vec::new();
            part.for_each(|_, atom| {
                // Skip stale copies (deferred update pending): fall back to
                // the primary record for those atoms.
                if sys.deferred_stale(atom.id, part.id) {
                    match sys.read_atom(atom.id, None) {
                        Ok(fresh) => {
                            if q.root_ssa.eval(&fresh) {
                                out.push(fresh);
                            }
                        }
                        // Unlocked snapshot scan: the atom may vanish
                        // between the partition row and the primary read.
                        Err(prima_access::AccessError::NoSuchAtom(_)) if snapshot => {}
                        Err(e) => return Err(e),
                    }
                } else if q.root_ssa.eval(&atom) {
                    out.push(atom);
                }
                Ok(())
            })?;
            return deliver_roots(q, locks, out);
        }
    }
    // 4. Atom-type scan with SSA pushdown.
    trace.root_access = RootAccess::TypeScan;
    let mut scan = AtomTypeScan::open(sys, root_type, q.root_ssa.clone(), None)?;
    let roots = scan.collect_remaining()?;
    deliver_roots(q, locks, roots)
}

/// Per-query assembly state: the expansion-edge table plus scratch
/// buffers reused across all molecules of one query (fan-out-1 molecules
/// are dominated by allocation churn otherwise).
pub(crate) struct AssemblyCtx {
    /// Expansion edges per structure node.
    edge_table: Vec<Vec<(usize, prima_mad::schema::Association, bool)>>,
    /// Whether any node recurses (ancestor chains are skipped otherwise).
    recursive_query: bool,
    arena: Vec<PendingAtom>,
    frontier: Vec<usize>,
    next_frontier: Vec<usize>,
    requests: Vec<FetchRequest>,
    need: Vec<AtomId>,
    need_idx: Vec<Option<usize>>,
    resolved: Vec<Option<Atom>>,
}

impl AssemblyCtx {
    pub(crate) fn new(q: &ResolvedQuery) -> Self {
        AssemblyCtx {
            edge_table: (0..q.nodes.len()).map(|n| edges_of(q, n)).collect(),
            recursive_query: q.nodes.iter().any(|n| n.recursive),
            arena: Vec::new(),
            frontier: Vec::new(),
            next_frontier: Vec::new(),
            requests: Vec::new(),
            need: Vec::new(),
            need_idx: Vec::new(),
            resolved: Vec::new(),
        }
    }

    /// Placeholder for code paths that dispatch to the per-atom baseline
    /// and never read the ctx (no edge tables are built).
    fn unused() -> Self {
        AssemblyCtx {
            edge_table: Vec::new(),
            recursive_query: false,
            arena: Vec::new(),
            frontier: Vec::new(),
            next_frontier: Vec::new(),
            requests: Vec::new(),
            need: Vec::new(),
            need_idx: Vec::new(),
            resolved: Vec::new(),
        }
    }
}

/// Assembles one molecule occurrence from its root atom. Every component
/// atom materialised into the molecule is `Shared`-locked through `locks`
/// first (prefetched cluster members at request time, exactly like
/// individually fetched ones).
#[allow(clippy::too_many_arguments)]
fn assemble_molecule(
    sys: &AccessSystem,
    q: &ResolvedQuery,
    root: Atom,
    clusters: &[Arc<AtomClusterType>],
    mode: AssemblyMode,
    ctx: &mut AssemblyCtx,
    trace: &mut ExecutionTrace,
    fetched: &mut usize,
    locks: Option<ReadGuard<'_>>,
) -> PrimaResult<Molecule> {
    // Cluster management: prefetch the whole cluster in one chained read
    // if one materialises this root's molecule.
    let mut prefetch: HashMap<AtomId, Atom> = HashMap::new();
    if let Some(ct) = clusters.iter().find(|ct| ct.contains(root.id)) {
        if let Some(snap) = locks.and_then(|g| g.as_snapshot()) {
            // Lock-free prefetch: resolve every member to its visible
            // version on the way into the map (members invisible at the
            // snapshot drop out). The chained read races concurrent
            // writers without protection, so treat failure as a missed
            // optimisation — assembly falls back to per-component
            // fetches, which resolve each atom individually.
            let members = ct.read_all(root.id).unwrap_or_default();
            for a in members {
                let id = a.id;
                if let Some(vis) = snap.visible(id, Some(a)) {
                    prefetch.insert(id, vis);
                }
            }
        } else {
            let mut members = ct.read_all(root.id)?;
            if let Some(g) = locks {
                // The first read discovered the membership but may have
                // seen a concurrent writer's in-flight values. Lock every
                // member, then re-read: an *active* writer conflicts
                // here, and one that finished between the two reads has
                // settled the values the second (buffer-hot) read now
                // picks up — the prefetch map never serves a state our
                // locks don't cover.
                for a in &members {
                    g.lock_atom(a.id)?;
                }
                members = ct.read_all(root.id)?;
            }
            for a in members {
                prefetch.insert(a.id, a);
            }
        }
        *fetched += prefetch.len();
        trace.cluster_used = Some(ct.name.clone());
    }
    match mode {
        AssemblyMode::Batched => assemble_frontier(sys, root, &prefetch, ctx, fetched, locks),
        AssemblyMode::PerAtom => {
            let mut ancestors = HashSet::new();
            ancestors.insert(root.id);
            let root_mol =
                expand(sys, q, 0, root, 0, &prefetch, &mut ancestors, fetched, locks)?;
            Ok(Molecule::new(root_mol))
        }
    }
}

/// Expansion edges of one structure node: the node's children, plus — for
/// a recursive node — its own incoming edge re-applied.
#[allow(clippy::unwrap_used, clippy::expect_used)]
fn edges_of(
    q: &ResolvedQuery,
    node_idx: usize,
) -> Vec<(usize, prima_mad::schema::Association, bool)> {
    let mut edges: Vec<(usize, prima_mad::schema::Association, bool)> = Vec::new();
    for &c in &q.nodes[node_idx].children {
        // lint: allow(error-hygiene, validation rejects non-root nodes without an association)
        let assoc = q.nodes[c].via.expect("non-root nodes have via");
        edges.push((c, assoc, q.nodes[c].recursive));
    }
    if q.nodes[node_idx].recursive {
        // lint: allow(error-hygiene, validation rejects recursive nodes at the root)
        let assoc = q.nodes[node_idx].via.expect("recursive nodes are non-root");
        edges.push((node_idx, assoc, true));
    }
    edges
}

/// Immutable per-path ancestor chain: reproduces the depth-first ancestor
/// *set* under breadth-first expansion. Each node reached through a
/// recursive edge extends its parent's chain; siblings share tails.
struct AncestorChain {
    id: AtomId,
    parent: Option<Arc<AncestorChain>>,
}

fn chain_contains(chain: &Option<Arc<AncestorChain>>, id: AtomId) -> bool {
    let mut cur = chain.as_deref();
    while let Some(link) = cur {
        if link.id == id {
            return true;
        }
        cur = link.parent.as_deref();
    }
    false
}

/// A node of the in-progress molecule arena. Children of one parent are
/// materialised consecutively (requests are gathered parent by parent),
/// so they form the contiguous arena range
/// `child_start..child_start + child_count` — in depth-first child order.
struct PendingAtom {
    node_idx: usize,
    level: u32,
    atom: Option<Atom>,
    child_start: usize,
    child_count: usize,
    ancestors: Option<Arc<AncestorChain>>,
}

/// One component fetch requested by the current frontier.
struct FetchRequest {
    parent: usize,
    child_node: usize,
    recursive: bool,
    level: u32,
    id: AtomId,
}

/// Level-by-level vertical assembly: each round gathers every dependent
/// `AtomId` referenced by the current frontier and resolves them with one
/// page-grouped batch read, then materialises the children and advances.
#[allow(clippy::unwrap_used, clippy::expect_used)]
fn assemble_frontier(
    sys: &AccessSystem,
    root: Atom,
    prefetch: &HashMap<AtomId, Atom>,
    ctx: &mut AssemblyCtx,
    fetched: &mut usize,
    locks: Option<ReadGuard<'_>>,
) -> PrimaResult<Molecule> {
    // Ancestor chains are only needed when the structure recurses.
    let root_chain = ctx
        .recursive_query
        .then(|| Arc::new(AncestorChain { id: root.id, parent: None }));
    ctx.arena.clear();
    ctx.arena.push(PendingAtom {
        node_idx: 0,
        level: 0,
        atom: Some(root),
        child_start: 0,
        child_count: 0,
        ancestors: root_chain,
    });
    ctx.frontier.clear();
    ctx.frontier.push(0);
    let mut level_no = 0u32;
    while !ctx.frontier.is_empty() {
        // RAII so the `break` below and every `?` close the level span.
        let _level_span = crate::obs::span_guard(crate::obs::SpanKind::AssemblyLevel(level_no));
        level_no += 1;
        // Gather this level's expansion requests in depth-first child
        // order (edge order x reference order per parent).
        ctx.requests.clear();
        for &pi in &ctx.frontier {
            let node_idx = ctx.arena[pi].node_idx;
            let level = ctx.arena[pi].level;
            for &(child_idx, assoc, recursive) in &ctx.edge_table[node_idx] {
                // lint: allow(error-hygiene, arena entries are created with their atom present and taken only at emit)
                let atom = ctx.arena[pi].atom.as_ref().expect("arena atom set");
                let ids = atom
                    .values
                    .get(assoc.from.attr)
                    .map(prima_mad::Value::referenced_ids)
                    .unwrap_or_default();
                for id in ids {
                    if recursive && chain_contains(&ctx.arena[pi].ancestors, id) {
                        // Cycle guard for recursive structures ("solids are
                        // constructed using previously defined solids" — a
                        // cycle would be a modelling error, but the kernel
                        // must not loop).
                        continue;
                    }
                    ctx.requests.push(FetchRequest {
                        parent: pi,
                        child_node: child_idx,
                        recursive,
                        level: if recursive { level + 1 } else { level },
                        id,
                    });
                }
            }
        }
        if ctx.requests.is_empty() {
            break;
        }
        // Shared-lock the whole level before reading it: a component with
        // an uncommitted writer conflicts here, before any dirty value
        // can enter the molecule. (No-op under a snapshot guard — the
        // per-request resolution below corrects dirty reads instead.)
        if let Some(g) = locks {
            for r in &ctx.requests {
                g.lock_atom(r.id)?;
            }
        }
        // One batched read per level. Duplicate ids are *not* merged: each
        // request decodes its own record (keeping per-layer accounting
        // identical to the per-atom path) — the page group still costs a
        // single fix. With no cluster prefetch the request list *is* the
        // batch, so the position map is skipped.
        ctx.need.clear();
        ctx.need_idx.clear();
        let mapped = !prefetch.is_empty();
        if mapped {
            for r in &ctx.requests {
                if prefetch.contains_key(&r.id) {
                    ctx.need_idx.push(None);
                } else {
                    ctx.need_idx.push(Some(ctx.need.len()));
                    ctx.need.push(r.id);
                }
            }
        } else {
            ctx.need.extend(ctx.requests.iter().map(|r| r.id));
        }
        let mut resolved = std::mem::take(&mut ctx.resolved);
        sys.read_atoms_batch_into(&ctx.need, None, &mut resolved)?;
        let snap = locks.and_then(|g| g.as_snapshot());
        ctx.next_frontier.clear();
        for (k, r) in ctx.requests.drain(..).enumerate() {
            let slot = if mapped { ctx.need_idx[k] } else { Some(k) };
            let atom = match slot {
                // Prefetched cluster members are already snapshot-
                // resolved at map build time.
                // lint: allow(error-hygiene, the prefetch map was populated from exactly these record ids in the batch read above)
                None => prefetch.get(&r.id).expect("prefetch hit").clone(),
                Some(j) => {
                    *fetched += 1;
                    // Requests map 1:1 onto batch entries, so the atom can
                    // be moved out instead of cloned. Under a snapshot
                    // guard the base outcome (including a base miss: the
                    // component may be concurrently deleted) is resolved
                    // to the visible version.
                    let base = resolved[j].take();
                    let vis = match snap {
                        None => base,
                        Some(s) => s.visible(r.id, base),
                    };
                    match vis {
                        Some(a) => a,
                        // Dangling ids cannot occur through the access
                        // system's integrity maintenance (and invisible
                        // components are simply not part of the snapshot's
                        // molecule); skip.
                        None => continue,
                    }
                }
            };
            let ancestors = if r.recursive {
                Some(Arc::new(AncestorChain {
                    id: r.id,
                    parent: ctx.arena[r.parent].ancestors.clone(),
                }))
            } else {
                ctx.arena[r.parent].ancestors.clone()
            };
            let child = ctx.arena.len();
            ctx.arena.push(PendingAtom {
                node_idx: r.child_node,
                level: r.level,
                atom: Some(atom),
                child_start: 0,
                child_count: 0,
                ancestors,
            });
            let parent = &mut ctx.arena[r.parent];
            if parent.child_count == 0 {
                parent.child_start = child;
            }
            debug_assert_eq!(parent.child_start + parent.child_count, child);
            parent.child_count += 1;
            ctx.next_frontier.push(child);
        }
        ctx.resolved = resolved;
        std::mem::swap(&mut ctx.frontier, &mut ctx.next_frontier);
    }
    Ok(Molecule::new(fold_arena(&mut ctx.arena, 0)))
}

/// Folds the assembly arena into the molecule tree (each parent's children
/// occupy a contiguous arena range in depth-first child order).
#[allow(clippy::unwrap_used, clippy::expect_used)]
fn fold_arena(arena: &mut [PendingAtom], i: usize) -> MolAtom {
    let (start, count) = (arena[i].child_start, arena[i].child_count);
    let mut out = MolAtom::new(
        arena[i].node_idx,
        arena[i].level,
        // lint: allow(error-hygiene, arena entries are created with their atom present and taken only at emit)
        arena[i].atom.take().expect("arena atom set"),
    );
    out.children = (start..start + count).map(|c| fold_arena(arena, c)).collect();
    out
}

/// The per-atom baseline: depth-first expansion, one `read_atom` per
/// component ([`AssemblyMode::PerAtom`]).
#[allow(clippy::too_many_arguments)]
fn expand(
    sys: &AccessSystem,
    q: &ResolvedQuery,
    node_idx: usize,
    atom: Atom,
    level: u32,
    prefetch: &HashMap<AtomId, Atom>,
    ancestors: &mut HashSet<AtomId>,
    fetched: &mut usize,
    locks: Option<ReadGuard<'_>>,
) -> PrimaResult<MolAtom> {
    let mut out = MolAtom::new(node_idx, level, atom);
    for (child_idx, assoc, recursive) in edges_of(q, node_idx) {
        let ids = out
            .atom
            .values
            .get(assoc.from.attr)
            .map(prima_mad::Value::referenced_ids)
            .unwrap_or_default();
        for id in ids {
            if recursive && ancestors.contains(&id) {
                continue;
            }
            if let Some(g) = locks {
                g.lock_atom(id)?;
            }
            let child_atom = match prefetch.get(&id) {
                Some(a) => a.clone(),
                None => {
                    *fetched += 1;
                    let base = match sys.read_atom(id, None) {
                        Ok(a) => Some(a),
                        Err(prima_access::AccessError::NoSuchAtom(_)) => None,
                        Err(e) => return Err(e.into()),
                    };
                    let vis = match locks.and_then(|g| g.as_snapshot()) {
                        None => base,
                        Some(s) => s.visible(id, base),
                    };
                    match vis {
                        Some(a) => a,
                        None => continue,
                    }
                }
            };
            if recursive {
                ancestors.insert(id);
            }
            let child_level = if recursive { level + 1 } else { level };
            let child = expand(
                sys, q, child_idx, child_atom, child_level, prefetch, ancestors, fetched, locks,
            )?;
            if recursive {
                ancestors.remove(&id);
            }
            out.children.push(child);
        }
    }
    Ok(out)
}

/// Residual predicate evaluation on one molecule. Non-root component
/// comparisons use existential semantics (a molecule qualifies when *some*
/// component atom satisfies the term); explicit quantifiers override.
fn eval_residual(
    sys: &AccessSystem,
    q: &ResolvedQuery,
    m: &Molecule,
    pred: &Predicate,
) -> PrimaResult<bool> {
    Ok(match pred {
        Predicate::And(ts) => {
            for t in ts {
                if !eval_residual(sys, q, m, t)? {
                    return Ok(false);
                }
            }
            true
        }
        Predicate::Or(ts) => {
            for t in ts {
                if eval_residual(sys, q, m, t)? {
                    return Ok(true);
                }
            }
            false
        }
        Predicate::Not(t) => !eval_residual(sys, q, m, t)?,
        Predicate::Compare { left, op, right } => {
            let op = convert_op(*op);
            match (left, right) {
                (Operand::Param(slot), _) | (_, Operand::Param(slot)) => {
                    // Prepared execution substitutes bound values before
                    // evaluation; reaching a placeholder means the
                    // statement was run without binding.
                    return Err(PrimaError::UnboundParameter {
                        slot: *slot,
                        detail: "prepare the statement and bind values before executing"
                            .into(),
                    });
                }
                (Operand::Ref(r), Operand::Literal(v)) => {
                    exists_atom(sys, q, m, r, |val| op.eval(val.total_cmp(v)))?
                }
                (Operand::Literal(v), Operand::Ref(r)) => {
                    exists_atom(sys, q, m, r, |val| op.flip().eval(val.total_cmp(v)))?
                }
                (Operand::Ref(l), Operand::Ref(rr)) => {
                    // exists a pair satisfying the comparison
                    let lv = ref_values(sys, q, m, l)?;
                    let rv = ref_values(sys, q, m, rr)?;
                    lv.iter().any(|a| rv.iter().any(|b| op.eval(a.total_cmp(b))))
                }
                (Operand::Literal(a), Operand::Literal(b)) => op.eval(a.total_cmp(b)),
            }
        }
        Predicate::IsEmpty(r) => exists_atom(sys, q, m, r, prima_mad::Value::is_empty_like)?,
        Predicate::NotEmpty(r) => exists_atom(sys, q, m, r, |v| !v.is_empty_like())?,
        Predicate::ExistsAtLeast { n, component, inner } => {
            count_matching(sys, q, m, component, inner)? >= *n as usize
        }
        Predicate::ForAll { component, inner } => {
            let node = q.node_by_label(component).ok_or_else(|| {
                PrimaError::UnresolvedReference {
                    reference: component.clone(),
                    detail: "quantifier over unknown component".into(),
                }
            })?;
            let atoms = m.atoms_of_node(node);
            let ssa = quantifier_ssa(sys, q, node, inner)?;
            atoms.iter().all(|a| ssa.eval(a))
        }
    })
}

fn count_matching(
    sys: &AccessSystem,
    q: &ResolvedQuery,
    m: &Molecule,
    component: &str,
    inner: &Predicate,
) -> PrimaResult<usize> {
    let node = q.node_by_label(component).ok_or_else(|| PrimaError::UnresolvedReference {
        reference: component.to_string(),
        detail: "quantifier over unknown component".into(),
    })?;
    let ssa = quantifier_ssa(sys, q, node, inner)?;
    Ok(m.atoms_of_node(node).iter().filter(|a| ssa.eval(a)).count())
}

#[allow(clippy::unwrap_used, clippy::expect_used)]
fn quantifier_ssa(
    sys: &AccessSystem,
    q: &ResolvedQuery,
    node: usize,
    inner: &Predicate,
) -> PrimaResult<Ssa> {
    // lint: allow(error-hygiene, plan node type ids were resolved against this same frozen schema during validation)
    let at = sys.schema().atom_type(q.nodes[node].atom_type).expect("resolved");
    predicate_to_atom_ssa(inner, |attr| at.attribute_index(attr)).ok_or_else(|| {
        PrimaError::BadStatement(
            "quantifier body must be decidable on the quantified component".into(),
        )
    })
}

/// Values of `r` across the molecule (all atoms of the referenced node,
/// restricted to a recursion level when given).
fn ref_values(
    sys: &AccessSystem,
    q: &ResolvedQuery,
    m: &Molecule,
    r: &prima_mad::mql::CompRef,
) -> PrimaResult<Vec<Value>> {
    let (node, attr) = resolve_ref(q, r, sys.schema())?;
    let atoms = match r.level {
        // A level reference selects by recursion depth; in a recursive
        // structure the same atom type backs several structure nodes, so
        // match on type + level rather than the node index alone.
        Some(l) => {
            let t = q.nodes[node].atom_type;
            let mut out = Vec::new();
            m.for_each(|ma| {
                if ma.level == l && q.nodes[ma.node].atom_type == t {
                    out.push(ma.atom.values.get(attr).cloned());
                }
            });
            return Ok(out.into_iter().flatten().collect());
        }
        None => m.atoms_of_node(node),
    };
    Ok(atoms.iter().filter_map(|a| a.values.get(attr).cloned()).collect())
}

fn exists_atom(
    sys: &AccessSystem,
    q: &ResolvedQuery,
    m: &Molecule,
    r: &prima_mad::mql::CompRef,
    f: impl Fn(&Value) -> bool,
) -> PrimaResult<bool> {
    Ok(ref_values(sys, q, m, r)?.iter().any(f))
}

/// Applies per-node projections to one molecule. Returns `None` when a
/// qualified projection on the *root* rejects the whole molecule.
fn apply_projection(sys: &AccessSystem, q: &ResolvedQuery, m: Molecule) -> Option<Molecule> {
    #[allow(clippy::unwrap_used, clippy::expect_used)]
    fn project_node(
        sys: &AccessSystem,
        q: &ResolvedQuery,
        mut ma: MolAtom,
    ) -> Option<MolAtom> {
        let proj = q
            .select
            .per_node
            .get(ma.node)
            .cloned()
            .unwrap_or(NodeProjection::All);
        match proj {
            NodeProjection::All => {}
            NodeProjection::Attrs(attrs) => {
                // lint: allow(error-hygiene, plan node type ids were resolved against this same frozen schema during validation)
                let at = sys.schema().atom_type(q.nodes[ma.node].atom_type).expect("resolved");
                let mut keep = attrs.clone();
                keep.push(at.identifier_index());
                ma.atom = ma.atom.project(&keep);
            }
            NodeProjection::Qualified { attrs, ssa } => {
                if !ssa.eval(&ma.atom) {
                    return None;
                }
                if let Some(attrs) = attrs {
                    let at =
                        // lint: allow(error-hygiene, plan node type ids were resolved against this same frozen schema during validation)
                        sys.schema().atom_type(q.nodes[ma.node].atom_type).expect("resolved");
                    let mut keep = attrs.clone();
                    keep.push(at.identifier_index());
                    ma.atom = ma.atom.project(&keep);
                }
            }
            NodeProjection::Exclude => {
                // lint: allow(error-hygiene, plan node type ids were resolved against this same frozen schema during validation)
                let at = sys.schema().atom_type(q.nodes[ma.node].atom_type).expect("resolved");
                ma.atom = ma.atom.project(&[at.identifier_index()]);
            }
        }
        ma.children = ma
            .children
            .into_iter()
            .filter_map(|c| project_node(sys, q, c))
            .collect();
        Some(ma)
    }
    project_node(sys, q, m.root).map(Molecule::new)
}
