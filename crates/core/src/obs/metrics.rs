//! The kernel-wide metrics registry: one coherent snapshot of every
//! layer's counters plus per-statement-kind latency histograms.

use super::histogram::HistogramSnapshot;
use super::profile::StatementKind;
use crate::session::ApiStatsSnapshot;
use crate::txn::{LockStatsSnapshot, VersionStatsSnapshot};
use prima_access::AccessStatsSnapshot;
use prima_storage::buffer::BufferStatsSnapshot;
use prima_storage::stats::{IoSnapshot, StatsSnapshot};
use std::fmt::Write as _;

/// One coherent point-in-time view across every layer of the Fig. 3.1
/// stack — the five pre-existing stats structs unified behind
/// [`StatsSnapshot`], the API counters, and the per-kind statement
/// latency histograms. Obtained from `Prima::metrics()`.
#[derive(Debug, Clone, Default)]
pub struct MetricsSnapshot {
    /// Storage layer: buffer manager.
    pub buffer: BufferStatsSnapshot,
    /// Storage layer: device transfers + WAL.
    pub io: IoSnapshot,
    /// Access layer: record reads/writes, batched reads.
    pub access: AccessStatsSnapshot,
    /// Transaction layer: lock-table contention.
    pub lock: LockStatsSnapshot,
    /// Transaction layer: MVCC version store.
    pub version: VersionStatsSnapshot,
    /// Data-system facade: parse/plan/execute counters.
    pub api: ApiStatsSnapshot,
    /// Latency histogram per statement kind, indexed by
    /// [`StatementKind::index`].
    pub statements: [HistogramSnapshot; 5],
}

impl MetricsSnapshot {
    /// The histogram of one statement kind.
    pub fn statement_latency(&self, kind: StatementKind) -> &HistogramSnapshot {
        &self.statements[kind.index()]
    }

    /// Component-wise delta `self - earlier` across every family
    /// (gauges and running maxima keep their current value).
    pub fn delta(&self, earlier: &MetricsSnapshot) -> MetricsSnapshot {
        let mut statements = [HistogramSnapshot::default(); 5];
        for k in StatementKind::ALL {
            statements[k.index()] =
                self.statements[k.index()].delta(&earlier.statements[k.index()]);
        }
        MetricsSnapshot {
            buffer: self.buffer.delta(&earlier.buffer),
            io: self.io.delta(&earlier.io),
            access: self.access.delta(&earlier.access),
            lock: self.lock.delta(&earlier.lock),
            version: self.version.delta(&earlier.version),
            api: self.api.delta(&earlier.api),
            statements,
        }
    }

    /// Prometheus-style text rendering: every counter of every family
    /// as `prima_<family>_<field> <value>` lines, followed by the
    /// per-kind latency histograms (count, sum, quantiles, max).
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        self.buffer.render_into(&mut out);
        self.io.render_into(&mut out);
        self.access.render_into(&mut out);
        self.lock.render_into(&mut out);
        self.version.render_into(&mut out);
        self.api.render_into(&mut out);
        for kind in StatementKind::ALL {
            let h = self.statement_latency(kind);
            let k = kind.label();
            let _ = writeln!(out, "prima_statement_latency_count{{kind=\"{k}\"}} {}", h.count);
            let _ = writeln!(out, "prima_statement_latency_sum_ns{{kind=\"{k}\"}} {}", h.sum_ns);
            for (q, v) in
                [("0.5", h.p50()), ("0.95", h.p95()), ("0.99", h.p99()), ("max", h.max_ns)]
            {
                let _ = writeln!(
                    out,
                    "prima_statement_latency_ns{{kind=\"{k}\",quantile=\"{q}\"}} {v}"
                );
            }
        }
        out
    }

    /// Cross-layer coherence invariants over a **quiesced** kernel (no
    /// statement in flight, no transaction open). Returns every violated
    /// invariant; the crash-fuzz harness runs this after each schedule so
    /// counter-accounting bugs surface with a reproducible seed.
    pub fn check_coherence(&self) -> Result<(), Vec<String>> {
        let mut violations = Vec::new();
        let mut check = |ok: bool, msg: String| {
            if !ok {
                violations.push(msg);
            }
        };
        // Buffer: fix_new bumps fix_calls without a hit/miss outcome, so
        // hit + miss can only undershoot the call count.
        check(
            self.buffer.hits + self.buffer.misses <= self.buffer.fix_calls,
            format!(
                "buffer: hits {} + misses {} > fix_calls {}",
                self.buffer.hits, self.buffer.misses, self.buffer.fix_calls
            ),
        );
        check(
            self.buffer.pages_loaded <= self.buffer.misses,
            format!(
                "buffer: pages_loaded {} > misses {}",
                self.buffer.pages_loaded, self.buffer.misses
            ),
        );
        // I/O: chained blocks are double-counted into block_reads; a WAL
        // force always carries at least one appended byte.
        check(
            self.io.chained_blocks <= self.io.block_reads,
            format!(
                "io: chained_blocks {} > block_reads {}",
                self.io.chained_blocks, self.io.block_reads
            ),
        );
        check(
            self.io.wal_forces <= self.io.wal_bytes,
            format!("io: wal_forces {} > wal_bytes {}", self.io.wal_forces, self.io.wal_bytes),
        );
        // Group commit: every commit-carrying batch is a device force
        // (the WAL's shared accounting funnel — force *and* the
        // checkpoint reset's re-append — counts both or neither), and a
        // batch carries at least one commit record.
        check(
            self.io.group_commit_batches <= self.io.wal_forces,
            format!(
                "io: group_commit_batches {} > wal_forces {}",
                self.io.group_commit_batches, self.io.wal_forces
            ),
        );
        check(
            self.io.group_commit_batches <= self.io.group_commit_commits,
            format!(
                "io: group_commit_batches {} > group_commit_commits {}",
                self.io.group_commit_batches, self.io.group_commit_commits
            ),
        );
        // Access: a non-degenerate batch reads ≥ 2 atoms over ≥ 1 page.
        check(
            self.access.batch_reads <= self.access.batch_atoms,
            format!(
                "access: batch_reads {} > batch_atoms {}",
                self.access.batch_reads, self.access.batch_atoms
            ),
        );
        check(
            self.access.batch_pages <= self.access.batch_atoms,
            format!(
                "access: batch_pages {} > batch_atoms {}",
                self.access.batch_pages, self.access.batch_atoms
            ),
        );
        // Locking: every wait (and so every timeout) is an acquisition.
        check(
            self.lock.waits <= self.lock.acquisitions,
            format!(
                "lock: waits {} > acquisitions {}",
                self.lock.waits, self.lock.acquisitions
            ),
        );
        check(
            self.lock.timeouts <= self.lock.waits,
            format!("lock: timeouts {} > waits {}", self.lock.timeouts, self.lock.waits),
        );
        // MVCC: on a quiesced kernel the live-version gauge is exactly
        // installs minus reclaims.
        check(
            self.version.versions_reclaimed <= self.version.versions_installed
                && self.version.live_versions
                    == self.version.versions_installed - self.version.versions_reclaimed,
            format!(
                "version: live {} != installed {} - reclaimed {}",
                self.version.live_versions,
                self.version.versions_installed,
                self.version.versions_reclaimed
            ),
        );
        // API: every facade plan build follows a parse; the non-commit
        // histograms account for exactly the executed statements.
        check(
            self.api.plans_built <= self.api.statements_parsed,
            format!(
                "api: plans_built {} > statements_parsed {}",
                self.api.plans_built, self.api.statements_parsed
            ),
        );
        let histogram_statements: u64 = [
            StatementKind::Select,
            StatementKind::Insert,
            StatementKind::Modify,
            StatementKind::Delete,
        ]
        .iter()
        .map(|k| self.statement_latency(*k).count)
        .sum();
        check(
            histogram_statements == self.api.statements_executed,
            format!(
                "api: non-commit histogram counts {} != statements_executed {}",
                histogram_statements, self.api.statements_executed
            ),
        );
        if violations.is_empty() {
            Ok(())
        } else {
            Err(violations)
        }
    }
}
