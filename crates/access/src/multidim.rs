//! Multi-dimensional access paths (grid file).
//!
//! "Since we offer multi-dimensional access path structures, the effect of
//! key-sequential accesses needs some explanation. […] With n keys,
//! navigation has much more degrees of freedom. Therefore, start/stop
//! conditions and directions may be specified individually for every key
//! involved in the scan; hence, the user — the data system — determines
//! the selection path for elements in an n-dimensional space."
//! (Section 3.2.)
//!
//! [`GridFile`] implements the 1980s-canonical multi-dimensional
//! structure: per-dimension *scales* (split points) define a grid of
//! cells; a directory maps cells to *buckets* whose entries live as
//! physical records in a [`RecordFile`] (so bucket access is page I/O,
//! visible to the experiments). One simplification versus Nievergelt's
//! original is documented in DESIGN.md: instead of incremental directory
//! splitting, the structure reorganises wholesale (equi-depth scales
//! recomputed from the data) when a bucket overflows — the query-side
//! behaviour (only overlapping buckets are read; per-key ranges and
//! directions) is identical.

use crate::error::AccessResult;
use crate::record_file::{RecordFile, RecordPtr};
use prima_mad::value::AtomId;
use prima_storage::{PageSize, StorageSystem};
use std::collections::HashMap;
use std::ops::Bound;
use std::sync::Arc;

/// Per-dimension scan condition: start/stop bounds over the encoded key
/// space plus a direction — "specified individually for every key".
#[derive(Debug, Clone)]
pub struct DimRange {
    pub start: Bound<Vec<u8>>,
    pub stop: Bound<Vec<u8>>,
    pub descending: bool,
}

impl DimRange {
    /// Unrestricted ascending dimension.
    pub fn all() -> Self {
        DimRange { start: Bound::Unbounded, stop: Bound::Unbounded, descending: false }
    }

    /// Exact-match dimension.
    pub fn exact(key: Vec<u8>) -> Self {
        DimRange {
            start: Bound::Included(key.clone()),
            stop: Bound::Included(key),
            descending: false,
        }
    }

    pub fn descending(mut self) -> Self {
        self.descending = true;
        self
    }

    fn contains(&self, k: &[u8]) -> bool {
        let lower = match &self.start {
            Bound::Unbounded => true,
            Bound::Included(s) => k >= s.as_slice(),
            Bound::Excluded(s) => k > s.as_slice(),
        };
        let upper = match &self.stop {
            Bound::Unbounded => true,
            Bound::Included(e) => k <= e.as_slice(),
            Bound::Excluded(e) => k < e.as_slice(),
        };
        lower && upper
    }
}

/// One indexed entry: the encoded key per dimension plus the atom id.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GridEntry {
    pub keys: Vec<Vec<u8>>,
    pub id: AtomId,
}

impl GridEntry {
    fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.push(self.keys.len() as u8);
        for k in &self.keys {
            out.extend_from_slice(&(k.len() as u16).to_le_bytes());
            out.extend_from_slice(k);
        }
        out.extend_from_slice(&self.id.atom_type.to_le_bytes());
        out.extend_from_slice(&self.id.seq.to_le_bytes());
        out
    }

    fn decode(buf: &[u8]) -> Option<GridEntry> {
        let dims = *buf.first()? as usize;
        let mut pos = 1;
        let mut keys = Vec::with_capacity(dims);
        for _ in 0..dims {
            let len = u16::from_le_bytes(buf.get(pos..pos + 2)?.try_into().ok()?) as usize;
            pos += 2;
            keys.push(buf.get(pos..pos + len)?.to_vec());
            pos += len;
        }
        let t = u16::from_le_bytes(buf.get(pos..pos + 2)?.try_into().ok()?);
        let s = u64::from_le_bytes(buf.get(pos + 2..pos + 10)?.try_into().ok()?);
        Some(GridEntry { keys, id: AtomId::new(t, s) })
    }
}

/// Soft bucket capacity; overflow beyond [`REBUILD_FACTOR`]× triggers
/// reorganisation.
const BUCKET_CAP: usize = 64;
const REBUILD_FACTOR: usize = 2;

type Cell = Vec<u16>;

/// A grid file over `dims` key dimensions.
pub struct GridFile {
    dims: usize,
    /// Split points per dimension, sorted ascending.
    scales: Vec<Vec<Vec<u8>>>,
    /// Cell coordinates -> bucket id.
    directory: HashMap<Cell, u32>,
    /// Bucket id -> record pointers of its entries.
    buckets: HashMap<u32, Vec<RecordPtr>>,
    file: RecordFile,
    next_bucket: u32,
    count: usize,
}

impl GridFile {
    /// Creates an empty grid file with `dims` dimensions over a fresh
    /// segment.
    pub fn create(storage: Arc<StorageSystem>, dims: usize) -> AccessResult<GridFile> {
        assert!(dims >= 1, "grid file needs at least one dimension");
        let file = RecordFile::create_with(storage, PageSize::K2, false)?;
        let mut g = GridFile {
            dims,
            scales: vec![Vec::new(); dims],
            directory: HashMap::new(),
            buckets: HashMap::new(),
            file,
            next_bucket: 1,
            count: 0,
        };
        g.directory.insert(vec![0; dims], 0);
        g.buckets.insert(0, Vec::new());
        Ok(g)
    }

    pub fn dims(&self) -> usize {
        self.dims
    }

    pub fn len(&self) -> usize {
        self.count
    }

    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Number of buckets (diagnostic: grows with the data).
    pub fn bucket_count(&self) -> usize {
        self.buckets.len()
    }

    fn cell_of(&self, keys: &[Vec<u8>]) -> Cell {
        keys.iter()
            .zip(&self.scales)
            .map(|(k, scale)| scale.partition_point(|s| s.as_slice() <= k.as_slice()) as u16)
            .collect()
    }

    /// Inserts an entry.
    #[allow(clippy::unwrap_used, clippy::expect_used)]
    pub fn insert(&mut self, keys: Vec<Vec<u8>>, id: AtomId) -> AccessResult<()> {
        assert_eq!(keys.len(), self.dims, "key arity must match dimensions");
        let entry = GridEntry { keys, id };
        let cell = self.cell_of(&entry.keys);
        // lint: allow(error-hygiene, extendible-hash invariant: the directory covers every cell mask, maintained by split/grow)
        let bucket = *self.directory.get(&cell).expect("directory covers all cells");
        let ptr = self.file.insert(&entry.encode())?;
        // lint: allow(error-hygiene, directory entries only ever point at live buckets)
        let b = self.buckets.get_mut(&bucket).expect("bucket exists");
        b.push(ptr);
        self.count += 1;
        if b.len() > BUCKET_CAP * REBUILD_FACTOR {
            self.rebuild()?;
        }
        Ok(())
    }

    /// Removes an entry (exact keys + id). Returns whether it existed.
    #[allow(clippy::unwrap_used, clippy::expect_used)]
    pub fn remove(&mut self, keys: &[Vec<u8>], id: AtomId) -> AccessResult<bool> {
        let cell = self.cell_of(keys);
        let Some(&bucket) = self.directory.get(&cell) else { return Ok(false) };
        // lint: allow(error-hygiene, directory entries only ever point at live buckets)
        let ptrs = self.buckets.get_mut(&bucket).expect("bucket exists");
        for (i, &ptr) in ptrs.iter().enumerate() {
            let bytes = self.file.read(ptr)?;
            if let Some(e) = GridEntry::decode(&bytes) {
                if e.id == id && e.keys == keys {
                    self.file.delete(ptr)?;
                    ptrs.remove(i);
                    self.count -= 1;
                    return Ok(true);
                }
            }
        }
        Ok(false)
    }

    /// n-dimensional range search with per-key bounds and directions.
    /// Results are ordered by dimension priority (`ranges[0]` outermost),
    /// each dimension in its requested direction. Only buckets whose cell
    /// region overlaps every range are read.
    #[allow(clippy::unwrap_used, clippy::expect_used)]
    pub fn search(&self, ranges: &[DimRange]) -> AccessResult<Vec<GridEntry>> {
        assert_eq!(ranges.len(), self.dims, "one range per dimension");
        let mut seen_buckets = std::collections::HashSet::new();
        let mut out = Vec::new();
        for (cell, &bucket) in &self.directory {
            let overlaps = cell
                .iter()
                .zip(ranges)
                .zip(&self.scales)
                .all(|((&ci, r), scale)| interval_overlaps(scale, ci, r));
            if !overlaps || !seen_buckets.insert(bucket) {
                continue;
            }
            // lint: allow(error-hygiene, directory entries only ever point at live buckets)
            let ptrs = self.buckets.get(&bucket).expect("bucket exists");
            for &ptr in ptrs {
                let bytes = self.file.read(ptr)?;
                if let Some(e) = GridEntry::decode(&bytes) {
                    if e.keys.iter().zip(ranges).all(|(k, r)| r.contains(k)) {
                        out.push(e);
                    }
                }
            }
        }
        out.sort_by(|a, b| {
            for (d, r) in ranges.iter().enumerate() {
                let c = a.keys[d].cmp(&b.keys[d]);
                let c = if r.descending { c.reverse() } else { c };
                if c != std::cmp::Ordering::Equal {
                    return c;
                }
            }
            a.id.cmp(&b.id)
        });
        Ok(out)
    }

    /// Reorganisation: recompute equi-depth scales from the data and
    /// redistribute entries 1:1 cell→bucket.
    fn rebuild(&mut self) -> AccessResult<()> {
        // Gather all entries.
        let mut entries = Vec::with_capacity(self.count);
        for ptrs in self.buckets.values() {
            for &ptr in ptrs {
                let bytes = self.file.read(ptr)?;
                if let Some(e) = GridEntry::decode(&bytes) {
                    entries.push(e);
                }
            }
        }
        // Choose splits per dimension: total buckets ≈ count / CAP spread
        // evenly over dimensions.
        let target_buckets = (entries.len() / BUCKET_CAP).max(1);
        let splits_per_dim =
            ((target_buckets as f64).powf(1.0 / self.dims as f64).ceil() as usize).max(1);
        for d in 0..self.dims {
            let mut keys: Vec<&[u8]> = entries.iter().map(|e| e.keys[d].as_slice()).collect();
            keys.sort_unstable();
            keys.dedup();
            let mut scale = Vec::new();
            if keys.len() > 1 {
                for i in 1..=splits_per_dim.min(keys.len() - 1) {
                    let idx = (i * keys.len() / (splits_per_dim + 1)).clamp(1, keys.len() - 1);
                    let split = keys[idx].to_vec();
                    if scale.last() != Some(&split) {
                        scale.push(split);
                    }
                }
            }
            self.scales[d] = scale;
        }
        // Rebuild directory/buckets and rewrite the file.
        self.file.clear()?;
        self.directory.clear();
        self.buckets.clear();
        self.next_bucket = 0;
        for e in entries {
            let cell = self.cell_of(&e.keys);
            let bucket = *self.directory.entry(cell).or_insert_with(|| {
                let b = self.next_bucket;
                self.next_bucket += 1;
                b
            });
            let ptr = self.file.insert(&e.encode())?;
            self.buckets.entry(bucket).or_default().push(ptr);
        }
        self.ensure_full_directory();
        Ok(())
    }

    /// Makes sure every cell of the grid has a bucket (cells without data
    /// map to fresh empty buckets), so inserts always find their cell.
    fn ensure_full_directory(&mut self) {
        let dims: Vec<usize> = self.scales.iter().map(|s| s.len() + 1).collect();
        let mut cell = vec![0u16; self.dims];
        loop {
            if !self.directory.contains_key(&cell) {
                let b = self.next_bucket;
                self.next_bucket += 1;
                self.directory.insert(cell.clone(), b);
                self.buckets.insert(b, Vec::new());
            }
            // Odometer increment over all cells.
            let mut d = 0;
            loop {
                if d == self.dims {
                    return;
                }
                cell[d] += 1;
                if (cell[d] as usize) < dims[d] {
                    break;
                }
                cell[d] = 0;
                d += 1;
            }
        }
    }
}

/// Does scale interval `ci` of `scale` overlap the range `r`?
/// Interval `ci` covers keys in `[scale[ci-1], scale[ci])` (unbounded at
/// the edges).
fn interval_overlaps(scale: &[Vec<u8>], ci: u16, r: &DimRange) -> bool {
    let ci = ci as usize;
    let lo: Option<&[u8]> = if ci == 0 { None } else { Some(&scale[ci - 1]) };
    let hi: Option<&[u8]> = scale.get(ci).map(std::vec::Vec::as_slice);
    // Range entirely below the interval?
    match (&r.stop, lo) {
        (Bound::Included(e), Some(lo)) if e.as_slice() < lo => return false,
        (Bound::Excluded(e), Some(lo)) if e.as_slice() <= lo => return false,
        _ => {}
    }
    // Range entirely above the interval? (hi is exclusive)
    match (&r.start, hi) {
        (Bound::Included(s), Some(hi)) if s.as_slice() >= hi => return false,
        (Bound::Excluded(s), Some(hi)) if s.as_slice() >= hi => return false,
        _ => {}
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use prima_mad::codec::encode_composite_key;
    use prima_mad::value::Value;

    fn key(i: i64) -> Vec<u8> {
        encode_composite_key(&[Value::Int(i)])
    }

    fn grid(dims: usize) -> GridFile {
        let storage = Arc::new(StorageSystem::in_memory(8 << 20));
        GridFile::create(storage, dims).unwrap()
    }

    #[test]
    fn insert_and_exact_search_2d() {
        let mut g = grid(2);
        for x in 0..10i64 {
            for y in 0..10i64 {
                g.insert(vec![key(x), key(y)], AtomId::new(0, (x * 10 + y) as u64)).unwrap();
            }
        }
        assert_eq!(g.len(), 100);
        let hits = g.search(&[DimRange::exact(key(3)), DimRange::exact(key(7))]).unwrap();
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].id, AtomId::new(0, 37));
    }

    #[test]
    fn range_search_respects_both_dimensions() {
        let mut g = grid(2);
        for x in 0..20i64 {
            for y in 0..20i64 {
                g.insert(vec![key(x), key(y)], AtomId::new(0, (x * 100 + y) as u64)).unwrap();
            }
        }
        let r = |a: i64, b: i64| DimRange {
            start: Bound::Included(key(a)),
            stop: Bound::Excluded(key(b)),
            descending: false,
        };
        let hits = g.search(&[r(5, 10), r(0, 3)]).unwrap();
        assert_eq!(hits.len(), 5 * 3);
        for h in &hits {
            let x = h.id.seq / 100;
            let y = h.id.seq % 100;
            assert!((5..10).contains(&x) && y < 3, "unexpected hit {x},{y}");
        }
    }

    #[test]
    fn ordering_with_mixed_directions() {
        let mut g = grid(2);
        for x in 0..4i64 {
            for y in 0..4i64 {
                g.insert(vec![key(x), key(y)], AtomId::new(0, (x * 10 + y) as u64)).unwrap();
            }
        }
        let hits = g.search(&[DimRange::all(), DimRange::all().descending()]).unwrap();
        // dim0 ascending, dim1 descending.
        let seqs: Vec<u64> = hits.iter().map(|e| e.id.seq).collect();
        assert_eq!(&seqs[0..4], &[3, 2, 1, 0]);
        assert_eq!(&seqs[4..8], &[13, 12, 11, 10]);
    }

    #[test]
    fn overflow_triggers_rebuild_with_more_buckets() {
        let mut g = grid(1);
        for i in 0..1000i64 {
            g.insert(vec![key(i)], AtomId::new(0, i as u64)).unwrap();
        }
        assert!(g.bucket_count() > 4, "got {} buckets", g.bucket_count());
        assert_eq!(g.len(), 1000);
        let hits = g
            .search(&[DimRange {
                start: Bound::Included(key(990)),
                stop: Bound::Unbounded,
                descending: false,
            }])
            .unwrap();
        assert_eq!(hits.len(), 10);
    }

    #[test]
    fn remove_entries() {
        let mut g = grid(2);
        g.insert(vec![key(1), key(2)], AtomId::new(0, 12)).unwrap();
        g.insert(vec![key(1), key(3)], AtomId::new(0, 13)).unwrap();
        assert!(g.remove(&[key(1), key(2)], AtomId::new(0, 12)).unwrap());
        assert!(!g.remove(&[key(1), key(2)], AtomId::new(0, 12)).unwrap());
        assert_eq!(g.len(), 1);
        let hits = g.search(&[DimRange::all(), DimRange::all()]).unwrap();
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].id, AtomId::new(0, 13));
    }

    #[test]
    fn search_after_rebuild_is_complete() {
        let mut g = grid(2);
        let n = 600i64;
        for i in 0..n {
            g.insert(vec![key(i % 30), key(i / 30)], AtomId::new(0, i as u64)).unwrap();
        }
        let all = g.search(&[DimRange::all(), DimRange::all()]).unwrap();
        assert_eq!(all.len(), n as usize);
    }

    #[test]
    fn search_prunes_buckets() {
        let mut g = grid(1);
        for i in 0..2000i64 {
            g.insert(vec![key(i)], AtomId::new(0, i as u64)).unwrap();
        }
        // A narrow range must not touch most buckets: measure via I/O.
        // (Bucket pruning is observable through the storage stats in the
        // integration benches; here we check correctness only.)
        let hits = g
            .search(&[DimRange {
                start: Bound::Included(key(100)),
                stop: Bound::Included(key(105)),
                descending: false,
            }])
            .unwrap();
        assert_eq!(hits.len(), 6);
        assert_eq!(hits[0].id.seq, 100);
        assert_eq!(hits[5].id.seq, 105);
    }

    #[test]
    fn three_dimensions() {
        let mut g = grid(3);
        for i in 0..5i64 {
            g.insert(vec![key(i), key(i * 2), key(i * 3)], AtomId::new(0, i as u64)).unwrap();
        }
        let hits = g
            .search(&[DimRange::exact(key(2)), DimRange::all(), DimRange::all()])
            .unwrap();
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].id.seq, 2);
    }
}
