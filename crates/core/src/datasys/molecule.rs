//! Molecule result representation.
//!
//! "The objects the user has to deal with are called molecule
//! occurrences, shortly molecules. Each molecule consists of more
//! primitive molecules and belongs to its molecule type" (Section 2.2).
//! A molecule occurrence here is a tree of atoms mirroring the (resolved,
//! hierarchical) molecule structure of the query's FROM clause; recursive
//! structures carry the recursion *level* on every atom (level 0 = root,
//! as used by the seed qualification `piece_list (0).…`).

use prima_access::Atom;
use prima_mad::value::AtomId;
use std::fmt;

/// One atom inside a molecule occurrence, with its structural position.
#[derive(Debug, Clone, PartialEq)]
pub struct MolAtom {
    /// Index into the resolved structure's node list.
    pub node: usize,
    /// Recursion level (0 for non-recursive structures).
    pub level: u32,
    pub atom: Atom,
    pub children: Vec<MolAtom>,
}

impl MolAtom {
    pub fn new(node: usize, level: u32, atom: Atom) -> Self {
        MolAtom { node, level, atom, children: Vec::new() }
    }

    /// Number of atoms in this subtree.
    pub fn atom_count(&self) -> usize {
        1 + self.children.iter().map(MolAtom::atom_count).sum::<usize>()
    }

    fn visit<'a>(&'a self, f: &mut impl FnMut(&'a MolAtom)) {
        f(self);
        for c in &self.children {
            c.visit(f);
        }
    }
}

/// One molecule occurrence.
#[derive(Debug, Clone, PartialEq)]
pub struct Molecule {
    pub root: MolAtom,
}

impl Molecule {
    pub fn new(root: MolAtom) -> Self {
        Molecule { root }
    }

    /// Total number of atoms.
    pub fn atom_count(&self) -> usize {
        self.root.atom_count()
    }

    /// All atoms of a given structure node, in pre-order.
    pub fn atoms_of_node(&self, node: usize) -> Vec<&Atom> {
        let mut out = Vec::new();
        self.root.visit(&mut |m| {
            if m.node == node {
                out.push(&m.atom);
            }
        });
        out
    }

    /// All atoms of a node at a given recursion level.
    pub fn atoms_of_node_at(&self, node: usize, level: u32) -> Vec<&Atom> {
        let mut out = Vec::new();
        self.root.visit(&mut |m| {
            if m.node == node && m.level == level {
                out.push(&m.atom);
            }
        });
        out
    }

    /// All member atom ids (duplicates possible when molecules overlap —
    /// non-disjoint molecules share atoms).
    pub fn atom_ids(&self) -> Vec<AtomId> {
        let mut out = Vec::new();
        self.root.visit(&mut |m| out.push(m.atom.id));
        out
    }

    /// Greatest recursion level present.
    pub fn depth(&self) -> u32 {
        let mut max = 0;
        self.root.visit(&mut |m| max = max.max(m.level));
        max
    }

    /// Visits every [`MolAtom`] in pre-order.
    pub fn for_each(&self, mut f: impl FnMut(&MolAtom)) {
        self.root.visit(&mut f);
    }
}

/// Description of one structure node, carried along with results so
/// applications can address components by name.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NodeInfo {
    pub label: String,
    pub atom_type: prima_mad::AtomTypeId,
    pub recursive: bool,
    /// Whether the SELECT list keeps this component's attribute values
    /// (excluded components remain as identifier-only skeleton).
    pub selected: bool,
}

/// A set of molecules: the result of an MQL query.
#[derive(Debug, Clone, PartialEq)]
pub struct MoleculeSet {
    /// Structure description (index = node id used in [`MolAtom::node`]).
    pub nodes: Vec<NodeInfo>,
    pub molecules: Vec<Molecule>,
}

impl MoleculeSet {
    /// Node id of a component label.
    pub fn node_id(&self, label: &str) -> Option<usize> {
        self.nodes.iter().position(|n| n.label == label)
    }

    /// All atoms of the named component across all molecules.
    pub fn atoms_of(&self, label: &str) -> Vec<&Atom> {
        match self.node_id(label) {
            Some(id) => self.molecules.iter().flat_map(|m| m.atoms_of_node(id)).collect(),
            None => Vec::new(),
        }
    }

    /// Total atom count across molecules.
    pub fn atom_count(&self) -> usize {
        self.molecules.iter().map(Molecule::atom_count).sum()
    }

    pub fn len(&self) -> usize {
        self.molecules.len()
    }

    pub fn is_empty(&self) -> bool {
        self.molecules.is_empty()
    }
}

impl fmt::Display for MoleculeSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{} molecule(s)", self.molecules.len())?;
        for (i, m) in self.molecules.iter().enumerate() {
            writeln!(f, "molecule #{i}:")?;
            fmt_mol_atom(f, &m.root, &self.nodes, 1)?;
        }
        Ok(())
    }
}

fn fmt_mol_atom(
    f: &mut fmt::Formatter<'_>,
    m: &MolAtom,
    nodes: &[NodeInfo],
    indent: usize,
) -> fmt::Result {
    let label = nodes.get(m.node).map_or("?", |n| n.label.as_str());
    write!(f, "{}{} {}", "  ".repeat(indent), label, m.atom.id)?;
    if m.level > 0 {
        write!(f, " (level {})", m.level)?;
    }
    let shown: Vec<String> = m
        .atom
        .values
        .iter()
        .filter(|v| !matches!(v, prima_mad::Value::Null))
        .take(4)
        .map(std::string::ToString::to_string)
        .collect();
    writeln!(f, " [{}]", shown.join(", "))?;
    for c in &m.children {
        fmt_mol_atom(f, c, nodes, indent + 1)?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use prima_mad::Value;

    fn atom(t: u16, seq: u64) -> Atom {
        Atom::new(AtomId::new(t, seq), vec![Value::Id(AtomId::new(t, seq))])
    }

    fn sample() -> MoleculeSet {
        // root (node 0) with two children of node 1, one grandchild node 1
        // at level 2 (recursive-ish).
        let mut root = MolAtom::new(0, 0, atom(0, 1));
        let mut c1 = MolAtom::new(1, 1, atom(1, 10));
        c1.children.push(MolAtom::new(1, 2, atom(1, 20)));
        root.children.push(c1);
        root.children.push(MolAtom::new(1, 1, atom(1, 11)));
        MoleculeSet {
            nodes: vec![
                NodeInfo { label: "solid".into(), atom_type: 0, recursive: false, selected: true },
                NodeInfo { label: "part".into(), atom_type: 1, recursive: true, selected: true },
            ],
            molecules: vec![Molecule::new(root)],
        }
    }

    #[test]
    fn counting_and_lookup() {
        let s = sample();
        assert_eq!(s.len(), 1);
        assert_eq!(s.atom_count(), 4);
        assert_eq!(s.molecules[0].depth(), 2);
        assert_eq!(s.atoms_of("part").len(), 3);
        assert_eq!(s.atoms_of("solid").len(), 1);
        assert_eq!(s.atoms_of("nothing").len(), 0);
        assert_eq!(s.molecules[0].atoms_of_node_at(1, 2).len(), 1);
    }

    #[test]
    fn display_renders_structure() {
        let s = sample();
        let text = s.to_string();
        assert!(text.contains("molecule #0"));
        assert!(text.contains("solid @0:1"));
        assert!(text.contains("(level 2)"));
    }
}
