//! E-F2.1 — Fig. 2.1: modeling approaches to boundary representation.
//!
//! Regenerates the figure's argument as numbers: for the same solid set,
//! the hierarchical approach stores redundant copies (≈6× per point) and
//! pays the redundancy on every geometric update, the network approach
//! stores connector atoms, MAD stores neither. Criterion times the
//! "move one corner point" update under each discipline.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use prima::Value;
use prima_bench::report;
use prima_workloads::modeling::{build, ModelingApproach};

fn shape_report() {
    for n in [5usize, 20] {
        for approach in ModelingApproach::ALL {
            let (_db, stats) = build(approach, n).expect("build");
            let series = format!("{} n={n}", approach.name());
            report("F2.1", &series, "atoms", stats.atoms);
            report("F2.1", &series, "point_copies", format!("{:.1}", stats.point_copies));
            report("F2.1", &series, "move_update_cost", stats.move_update_cost);
        }
    }
}

fn bench_point_move(c: &mut Criterion) {
    shape_report();
    let mut g = c.benchmark_group("fig2_1_point_move");
    g.sample_size(10);
    for approach in ModelingApproach::ALL {
        g.bench_with_input(
            BenchmarkId::from_parameter(approach.name()),
            &approach,
            |b, &approach| {
                let (db, _) = build(approach, 10).expect("build");
                // Pre-resolve the victim copies per discipline.
                let (ty, xattr): (&str, &str) = match approach {
                    ModelingApproach::HierarchicalRedundant => ("hpoint", "x"),
                    ModelingApproach::NetworkConnectors => ("npoint", "x"),
                    ModelingApproach::MadDirect => ("point", "placement"),
                };
                let t = db.schema().type_id(ty).unwrap();
                let ids = db.access().all_ids(t).unwrap();
                let mut i = 0usize;
                b.iter(|| {
                    // Hierarchical must touch all copies of a geometric
                    // point; we emulate by updating 6 copies (the box
                    // incidence factor), others update 1.
                    let k = match approach {
                        ModelingApproach::HierarchicalRedundant => 6,
                        _ => 1,
                    };
                    for _ in 0..k {
                        let id = ids[i % ids.len()];
                        i += 1;
                        let v = if xattr == "placement" {
                            Value::Record(vec![
                                ("x_coord".into(), Value::Real(i as f64)),
                                ("y_coord".into(), Value::Real(0.0)),
                                ("z_coord".into(), Value::Real(0.0)),
                            ])
                        } else {
                            Value::Real(i as f64)
                        };
                        db.modify(id, &[(xattr, v)]).unwrap();
                    }
                });
            },
        );
    }
    g.finish();
}

criterion_group!(benches, bench_point_move);
criterion_main!(benches);
