//! # prima-access — the Access System of the PRIMA kernel
//!
//! The middle layer of Fig. 3.1: an **atom-oriented interface** which —
//! like System R's RSS \[As76\] — "allows for retrieval and update of single
//! atoms" plus scan-based set access (Section 3.2 of the paper).
//!
//! Responsibilities implemented here:
//!
//! * **Logical addresses** (surrogates): generated on insert, released on
//!   delete; they implement `IDENTIFIER` and `REFERENCE` attributes
//!   ([`prima_mad::AtomId`], [`addressing`]).
//! * **System-enforced referential integrity**: updating a reference
//!   attribute implies implicit updates of the back-references in the
//!   referenced atoms ([`integrity`]).
//! * **Physical records**: variable-length byte strings in page
//!   containers; the atom↔record mapping is **n:m** because tuning
//!   structures replicate atoms ([`record_file`], [`addressing`]).
//! * **Tuning structures**, installed/dropped at any time via LDL and
//!   transparent at the MAD interface:
//!   [`partition`]s (vertical splits), [`sort_order`]s (redundant sorted
//!   record lists), [`btree`] and [`multidim`] access paths, and
//!   [`cluster`]s (atom clusters materialising molecules in page
//!   sequences, Fig. 3.2).
//! * **Deferred update**: "during an update operation only one physical
//!   record is modified whereas all others are modified later"
//!   ([`deferred`]).
//! * **Scans** with a current position and NEXT/PRIOR navigation:
//!   atom-type scan, sort scan, access-path scan, atom-cluster-type scan
//!   and atom-cluster scan ([`scan`]).
//!
//! The facade tying these together is [`AccessSystem`].

pub mod access_system;
pub mod addressing;
pub mod atom;
pub mod btree;
pub mod cluster;
pub mod deferred;
pub mod error;
pub mod integrity;
pub mod multidim;
pub mod partition;
pub mod record_file;
pub mod scan;
pub mod sort_order;
pub mod ssa;

pub use access_system::{AccessStats, AccessStatsSnapshot, AccessSystem, StructureId, UpdatePolicy};
pub use atom::Atom;
pub use error::{AccessError, AccessResult};
pub use ssa::{CmpOp, Ssa};
