//! E-PAR: semantic parallelism — parallel DU execution (selected per
//! query via `QueryOptions::threads`) returns exactly the serial result,
//! for every query shape and thread count.

use prima::QueryOptions;
use prima_workloads::brep::{self, BrepConfig};
use prima_workloads::vlsi::{self, VlsiConfig};

#[test]
fn parallel_equals_serial_on_vertical_access() {
    let db = brep::open_db(32 << 20).unwrap();
    brep::populate(&db, &BrepConfig::with_solids(24)).unwrap();
    let q = "SELECT ALL FROM brep-face-edge-point WHERE brep_no > 0";
    let session = db.session();
    let serial = session.query(q, &QueryOptions::default()).unwrap().set;
    for threads in [1, 2, 4, 8] {
        let parallel =
            session.query(q, &QueryOptions::new().threads(threads)).unwrap().set;
        assert_eq!(serial.molecules, parallel.molecules, "threads = {threads}");
    }
}

#[test]
fn parallel_equals_serial_on_recursion() {
    let db = brep::open_db(32 << 20).unwrap();
    let stats = brep::populate(&db, &BrepConfig::with_assembly(8, 3, 2)).unwrap();
    let root = stats.root_solid_nos[0];
    let q = format!("SELECT ALL FROM piece_list WHERE piece_list (0).solid_no = {root}");
    let session = db.session();
    let serial = session.query(&q, &QueryOptions::default()).unwrap().set;
    let parallel = session.query(&q, &QueryOptions::new().threads(4)).unwrap().set;
    assert_eq!(serial.molecules, parallel.molecules);
}

#[test]
fn parallel_equals_serial_with_quantifiers_and_projection() {
    let db = vlsi::open_db(32 << 20).unwrap();
    vlsi::populate(&db, &VlsiConfig { cells: 60, nets: 40, ..Default::default() }).unwrap();
    let q = "SELECT net_no FROM net-pin WHERE EXISTS_AT_LEAST (2) pin: pin.x > 100.0";
    let session = db.session();
    let serial = session.query(q, &QueryOptions::default()).unwrap().set;
    let parallel = session.query(q, &QueryOptions::new().threads(4)).unwrap().set;
    assert_eq!(serial.molecules, parallel.molecules);
}

#[test]
fn parallel_respects_cluster_prefetch() {
    let db = brep::open_db(32 << 20).unwrap();
    brep::populate(&db, &BrepConfig::with_solids(10)).unwrap();
    db.ldl("CREATE ATOM_CLUSTER cl ON brep (faces, edges, points) PAGESIZE 1K").unwrap();
    let q = "SELECT ALL FROM brep-face-edge-point WHERE brep_no > 0";
    let session = db.session();
    let serial = session.query(q, &QueryOptions::default()).unwrap().set;
    let parallel = session.query(q, &QueryOptions::new().threads(4)).unwrap().set;
    assert_eq!(serial.molecules, parallel.molecules);
}

#[test]
fn concurrent_du_reads_do_not_interfere() {
    // Stress: many threads repeatedly constructing molecules while the
    // buffer evicts (small pool) — results must stay stable.
    let db = brep::open_db(256 * 1024).unwrap();
    brep::populate(&db, &BrepConfig::with_solids(16)).unwrap();
    let q = "SELECT ALL FROM brep-face-edge-point WHERE brep_no > 0";
    let session = db.session();
    let expected = session.query(q, &QueryOptions::default()).unwrap().set;
    for _ in 0..5 {
        let got = session.query(q, &QueryOptions::new().threads(8)).unwrap().set;
        assert_eq!(expected.molecules.len(), got.molecules.len());
        assert_eq!(expected.molecules, got.molecules);
    }
}
