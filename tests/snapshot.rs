//! Snapshot-read semantics: the MVCC version store's lock-free read
//! path (`crates/core/src/txn/mvcc.rs`).
//!
//! A read statement issued outside any transaction pins a snapshot of
//! the committed state and resolves every atom against the version
//! store instead of the lock table. These tests pin the contract from
//! both sides:
//!
//! * a reader concurrent with an **uncommitted** writer of the same
//!   atom type completes — no wait, no conflict, no retry — and sees
//!   exactly the committed state, across every query shape (one-shot,
//!   prepared, cursor, parallel assembly) and with **zero lock-table
//!   interaction**, proven by a `LockStats::acquisitions` delta of 0;
//! * a reader opened after the commit sees all of it;
//! * a session's own uncommitted writes stay visible to its in-
//!   transaction reads (those take the locking path by design);
//! * a long-running cursor keeps one stable snapshot across concurrent
//!   commits;
//! * version GC never reclaims a version still visible to an open
//!   snapshot, and reclaims promptly once the snapshot closes.
//!
//! The locking counterparts (readers *inside* transactions conflicting
//! with writers) live in `tests/isolation.rs` / `tests/contention.rs`.

use prima::{LockConfig, Prima, QueryOptions, Value};

const DDL: &str = "
CREATE ATOM_TYPE part
  ( id : IDENTIFIER, part_no : INTEGER, name : CHAR_VAR,
    sub : SET_OF (REF_TO (part.super)),
    super : SET_OF (REF_TO (part.sub)),
    pts : SET_OF (REF_TO (pt.owner)) )
KEYS_ARE (part_no);
CREATE ATOM_TYPE pt
  ( id : IDENTIFIER, n : INTEGER, label : CHAR_VAR,
    owner : SET_OF (REF_TO (part.pts)) );
";

/// `no_wait` lock table: if a snapshot read ever strayed onto the
/// locking path against a dirty writer it would error instead of
/// blocking the single-threaded test.
fn db() -> Prima {
    Prima::builder()
        .buffer_bytes(1 << 20)
        .lock_config(LockConfig::no_wait())
        .build_with_ddl(DDL)
        .unwrap()
}

fn names_of(set: &prima::MoleculeSet) -> Vec<String> {
    let mut out: Vec<String> = set
        .molecules
        .iter()
        .map(|m| match &m.root.atom.values[2] {
            Value::Str(s) => s.clone(),
            other => panic!("name should be Str, got {other:?}"),
        })
        .collect();
    out.sort();
    out
}

// ---------------------------------------------------------------------
// The acceptance property: dirty writer, lock-free reader
// ---------------------------------------------------------------------

#[test]
fn snapshot_reader_ignores_dirty_writer_with_zero_lock_traffic() {
    let db = db();
    for i in 0..4 {
        db.insert("part", &[("part_no", Value::Int(i)), ("name", Value::Str("clean".into()))])
            .unwrap();
    }

    // The writer dirties the extension every way at once: an uncommitted
    // INSERT, MODIFY and DELETE, all holding X/IX locks.
    let writer = db.session();
    writer.execute("INSERT part (part_no: 99, name: 'dirty-insert')").unwrap();
    writer.execute("MODIFY part SET name = 'dirty-modify' WHERE part_no = 1").unwrap();
    writer.execute("DELETE FROM part WHERE part_no = 2").unwrap();

    let committed = vec!["clean".to_string(); 4];
    let locks_before = db.lock_stats();
    let versions_before = db.version_stats();

    // One-shot.
    let reader = db.session();
    let got = reader.query("SELECT ALL FROM part", &QueryOptions::default()).unwrap();
    assert_eq!(names_of(&got.set), committed, "one-shot");

    // Prepared (plan reuse), including a key lookup on the dirty key.
    let mut stmt = reader.prepare("SELECT ALL FROM part WHERE part_no = ?").unwrap();
    stmt.bind(&[Value::Int(1)]).unwrap();
    let got = stmt.execute().unwrap().molecules().unwrap();
    assert_eq!(names_of(&got.set), vec!["clean".to_string()], "prepared key lookup");
    stmt.bind(&[Value::Int(99)]).unwrap();
    let got = stmt.execute().unwrap().molecules().unwrap();
    assert_eq!(got.set.len(), 0, "uncommitted insert invisible to key lookup");

    // Streaming cursor.
    let mut cursor = reader.query_cursor("SELECT ALL FROM part", &QueryOptions::default()).unwrap();
    assert_eq!(names_of(&cursor.fetch_all().unwrap()), committed, "cursor");
    drop(cursor);

    // Parallel assembly (one DU per molecule, guard shared by workers).
    let got = reader.query("SELECT ALL FROM part", &QueryOptions::new().threads(4)).unwrap();
    assert_eq!(names_of(&got.set), committed, "parallel");

    // Zero lock-table interaction for all of the above: not one
    // acquisition, wait, timeout or conflict — the read path never
    // touched the lock manager at all.
    let d = db.lock_stats().since(&locks_before);
    assert_eq!(d.acquisitions, 0, "snapshot reads must not acquire locks:\n{}", d.detail());
    assert_eq!(d.waits, 0, "{}", d.detail());
    assert_eq!(d.timeouts, 0, "{}", d.detail());

    // ... and the version store did the work instead.
    let v = db.version_stats().since(&versions_before);
    assert!(v.snapshots_opened >= 4, "each statement pins a snapshot: {}", v.detail());
    assert!(v.snapshot_reads > 0, "reads resolved through the store: {}", v.detail());
    assert!(v.live_versions > 0, "the dirty writer's before-images are chained: {}", v.detail());

    // The writer was never disturbed: its transaction commits, and only
    // then does a fresh read see the new state.
    writer.commit().unwrap();
    let after = db.session().query("SELECT ALL FROM part", &QueryOptions::default()).unwrap();
    assert_eq!(
        names_of(&after.set),
        vec!["clean", "clean", "dirty-insert", "dirty-modify"],
        "reader after commit sees all of it"
    );
}

#[test]
fn snapshot_reader_ignores_dirty_component_writer_during_assembly() {
    let db = db();
    let c1 = db.insert("pt", &[("n", Value::Int(10)), ("label", Value::Str("c-old".into()))]).unwrap();
    db.insert("part", &[("part_no", Value::Int(1)), ("pts", Value::ref_set(vec![c1]))]).unwrap();

    // Writer holds a *component* atom exclusively — the conflict a
    // locking reader would hit mid-assembly, not at root access.
    let writer = db.session();
    writer.modify_atom_named(c1, &[("label", Value::Str("c-dirty".into()))]).unwrap();

    let before = db.lock_stats();
    let got = db
        .session()
        .query("SELECT ALL FROM part-pt WHERE part_no = 1", &QueryOptions::default())
        .unwrap();
    assert_eq!(got.set.len(), 1);
    assert_eq!(
        got.set.molecules[0].root.children[0].atom.values[2],
        Value::Str("c-old".into()),
        "assembly resolves the component's committed version"
    );
    assert_eq!(db.lock_stats().since(&before).acquisitions, 0);
    writer.rollback().unwrap();
}

// ---------------------------------------------------------------------
// Read-your-own-writes: the in-transaction path is untouched
// ---------------------------------------------------------------------

#[test]
fn writer_still_reads_its_own_uncommitted_writes() {
    let db = db();
    db.insert("part", &[("part_no", Value::Int(1)), ("name", Value::Str("old".into()))]).unwrap();

    let writer = db.session();
    writer.execute("MODIFY part SET name = 'mine' WHERE part_no = 1").unwrap();
    // The writer's transaction is open, so its reads take the locking
    // path and see the dirty value — not the snapshot's committed one.
    let got = writer.query("SELECT ALL FROM part", &QueryOptions::default()).unwrap();
    assert_eq!(names_of(&got.set), vec!["mine".to_string()]);

    // A concurrent snapshot reader still sees the committed value.
    let got = db.session().query("SELECT ALL FROM part", &QueryOptions::default()).unwrap();
    assert_eq!(names_of(&got.set), vec!["old".to_string()]);
    writer.rollback().unwrap();
}

// ---------------------------------------------------------------------
// Cursor stability across concurrent commits
// ---------------------------------------------------------------------

#[test]
fn long_running_cursor_keeps_one_stable_snapshot() {
    let db = db();
    for i in 0..6 {
        db.insert("part", &[("part_no", Value::Int(i)), ("name", Value::Str(format!("v{i}")))])
            .unwrap();
    }

    let reader = db.session();
    let mut cursor = reader.query_cursor("SELECT ALL FROM part", &QueryOptions::default()).unwrap();
    let first: Vec<_> = cursor.fetch(2).unwrap();
    assert_eq!(first.len(), 2);

    // Between fetches, a writer commits — twice — reshaping the
    // extension: modified names, a deleted root, a brand-new one.
    let writer = db.session();
    writer.execute("MODIFY part SET name = 'rewritten' WHERE part_no = 3").unwrap();
    writer.execute("DELETE FROM part WHERE part_no = 4").unwrap();
    writer.commit().unwrap();
    writer.execute("INSERT part (part_no: 50, name: 'newcomer')").unwrap();
    writer.commit().unwrap();

    // The stream continues exactly where the snapshot says: original
    // names, the deleted root still delivered, the newcomer absent.
    let rest = cursor.fetch_all().unwrap();
    let mut all = names_of(&prima::MoleculeSet {
        nodes: rest.nodes.clone(),
        molecules: first.into_iter().chain(rest.molecules).collect(),
    });
    all.sort();
    assert_eq!(all, vec!["v0", "v1", "v2", "v3", "v4", "v5"], "stable snapshot");
    drop(cursor);

    // A fresh statement sees the post-commit world.
    let now = db.session().query("SELECT ALL FROM part", &QueryOptions::default()).unwrap();
    assert_eq!(names_of(&now.set), vec!["newcomer", "rewritten", "v0", "v1", "v2", "v5"]);
}

// ---------------------------------------------------------------------
// GC: the oldest open snapshot is the watermark
// ---------------------------------------------------------------------

#[test]
fn gc_spares_versions_visible_to_an_open_snapshot() {
    let db = db();
    db.insert("part", &[("part_no", Value::Int(1)), ("name", Value::Str("gen0".into()))]).unwrap();

    // Pin a snapshot by holding an unfinished cursor open.
    let reader = db.session();
    let mut cursor =
        reader.query_cursor("SELECT ALL FROM part WHERE part_no = 1", &QueryOptions::default())
            .unwrap();

    // Generations of committed overwrites pile up behind the snapshot.
    let writer = db.session();
    for g in 1..=5 {
        writer.execute(&format!("MODIFY part SET name = 'gen{g}' WHERE part_no = 1")).unwrap();
        writer.commit().unwrap();
    }
    let v = db.version_stats();
    assert!(
        v.live_versions >= 1,
        "versions the snapshot can still see must survive GC: {}",
        v.detail()
    );
    assert!(v.oldest_snapshot_lag >= 5, "the pinned snapshot is {} commits behind", v.oldest_snapshot_lag);

    // The pinned snapshot still resolves the original value.
    let seen = cursor.fetch_all().unwrap();
    assert_eq!(names_of(&seen), vec!["gen0".to_string()], "GC must not steal a visible version");

    // Closing the snapshot releases the watermark: the very next commit
    // reclaims the whole chain.
    drop(cursor);
    writer.execute("MODIFY part SET name = 'gen6' WHERE part_no = 1").unwrap();
    writer.commit().unwrap();
    let v = db.version_stats();
    assert_eq!(
        v.live_versions, 0,
        "no snapshot open — versions die at commit: {}",
        v.detail()
    );
    assert_eq!(v.oldest_snapshot_lag, 0);
}

// ---------------------------------------------------------------------
// Retry policy is bypassed on the snapshot path
// ---------------------------------------------------------------------

#[test]
fn snapshot_reads_succeed_with_retry_disabled_against_a_dirty_writer() {
    // With RetryPolicy::off() and a no_wait table, any excursion onto
    // the locking path against the dirty writer would surface a raw
    // LockConflict. Success here means the statement never needed the
    // retry machinery at all.
    let db = db();
    db.insert("part", &[("part_no", Value::Int(1)), ("name", Value::Str("v".into()))]).unwrap();
    let writer = db.session();
    writer.execute("MODIFY part SET name = 'dirty' WHERE part_no = 1").unwrap();

    let mut reader = db.session();
    reader.set_retry_policy(prima::RetryPolicy::off());
    for _ in 0..3 {
        let got = reader.query("SELECT ALL FROM part", &QueryOptions::default()).unwrap();
        assert_eq!(names_of(&got.set), vec!["v".to_string()]);
    }
    writer.rollback().unwrap();
}
