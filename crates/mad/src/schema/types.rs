//! Attribute types: the paper's "richer selection than in conventional
//! data models" (Section 2.2).
//!
//! The two special attribute types implementing the association concept:
//! * `IDENTIFIER` — a surrogate \[ML83\] identifying each atom;
//! * `REF_TO (type.attr)` — a typed reference whose *target attribute*
//!   holds the back-reference (that is what makes associations symmetric).
//!
//! `SET_OF (REF_TO (...)) (min, max|VAR)` expresses the n-side of 1:n and
//! n:m relationship types, with cardinality restrictions "allowing for
//! refined structural integrity enforced by the system" (Fig. 2.3).

use crate::value::{Value, ValueKind};
use std::fmt;

/// Cardinality restriction of a repeating group: `(min, max)` where
/// `max = None` renders as `VAR` (unbounded).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Cardinality {
    pub min: u32,
    pub max: Option<u32>,
}

impl Cardinality {
    /// `(min, VAR)`.
    pub const fn var(min: u32) -> Self {
        Cardinality { min, max: None }
    }

    /// `(n, n)`.
    pub const fn exact(n: u32) -> Self {
        Cardinality { min: n, max: Some(n) }
    }

    /// `(min, max)`.
    pub const fn range(min: u32, max: u32) -> Self {
        Cardinality { min, max: Some(max) }
    }

    /// Unrestricted `(0, VAR)`.
    pub const fn any() -> Self {
        Cardinality { min: 0, max: None }
    }

    pub fn contains(&self, len: usize) -> bool {
        len >= self.min as usize && self.max.is_none_or(|m| len <= m as usize)
    }
}

impl fmt::Display for Cardinality {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.max {
            Some(m) => write!(f, "({},{})", self.min, m),
            None => write!(f, "({},VAR)", self.min),
        }
    }
}

/// The target of a reference attribute: `REF_TO (type.attr)` — note the
/// target names the *back-reference attribute*, not just the type.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RefTarget {
    pub type_name: String,
    pub attr_name: String,
}

impl RefTarget {
    pub fn new(type_name: impl Into<String>, attr_name: impl Into<String>) -> Self {
        RefTarget { type_name: type_name.into(), attr_name: attr_name.into() }
    }
}

impl fmt::Display for RefTarget {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}.{}", self.type_name, self.attr_name)
    }
}

/// A MAD attribute type.
#[derive(Debug, Clone, PartialEq)]
pub enum AttrType {
    /// Surrogate identity; exactly one per atom type.
    Identifier,
    Integer,
    Real,
    Boolean,
    /// Variable-length character string (`CHAR_VAR`).
    CharVar,
    /// Fixed-length character string (`CHAR(n)`).
    Char(usize),
    /// Single typed reference — the "1"-side of an association.
    Ref(RefTarget),
    /// `SET_OF (REF_TO (target)) (card)` — the "n"-side.
    RefSet(RefTarget, Cardinality),
    /// Named components (e.g. `placement: RECORD x,y,z: REAL END`).
    Record(Vec<(String, AttrType)>),
    /// Fixed-length positional collection (`ARRAY`, also used for domain
    /// shorthands like `HULL_DIM(3)` in Fig. 2.3).
    Array(Box<AttrType>, usize),
    /// `SET_OF` over non-reference elements.
    SetOf(Box<AttrType>, Cardinality),
    /// `LIST_OF`: ordered repeating group.
    ListOf(Box<AttrType>, Cardinality),
}

impl AttrType {
    /// Convenience: single reference.
    pub fn reference(type_name: &str, attr_name: &str) -> AttrType {
        AttrType::Ref(RefTarget::new(type_name, attr_name))
    }

    /// Convenience: reference set with cardinality.
    pub fn ref_set(type_name: &str, attr_name: &str, card: Cardinality) -> AttrType {
        AttrType::RefSet(RefTarget::new(type_name, attr_name), card)
    }

    /// The association target if this attribute participates in one.
    pub fn ref_target(&self) -> Option<&RefTarget> {
        match self {
            AttrType::Ref(t) | AttrType::RefSet(t, _) => Some(t),
            _ => None,
        }
    }

    /// True for `Ref` and `RefSet`.
    pub fn is_reference(&self) -> bool {
        self.ref_target().is_some()
    }

    /// True if the n-side (set-valued) of an association.
    pub fn is_ref_set(&self) -> bool {
        matches!(self, AttrType::RefSet(..))
    }

    /// Whether values of this type can be compared/ordered as scalar sort
    /// or index keys.
    pub fn is_scalar_key(&self) -> bool {
        matches!(
            self,
            AttrType::Integer
                | AttrType::Real
                | AttrType::Boolean
                | AttrType::CharVar
                | AttrType::Char(_)
                | AttrType::Identifier
        )
    }

    /// `(declared cardinality, actual length)` if this attribute is a
    /// repeating group and the value is present.
    pub fn cardinality_of(&self, v: &Value) -> Option<(Cardinality, usize)> {
        match (self, v) {
            (AttrType::RefSet(_, c), Value::RefSet(xs)) => Some((*c, xs.len())),
            (AttrType::SetOf(_, c), Value::Set(xs)) => Some((*c, xs.len())),
            (AttrType::ListOf(_, c), Value::List(xs)) => Some((*c, xs.len())),
            _ => None,
        }
    }

    /// Structural type check of a value against this declared type.
    /// `Null` passes everywhere except `Identifier`: attributes may be
    /// assigned selectively (Section 3.2).
    pub fn check_value(&self, v: &Value) -> Result<(), String> {
        match (self, v) {
            (AttrType::Identifier, Value::Id(_)) => Ok(()),
            (AttrType::Identifier, other) => {
                Err(format!("IDENTIFIER requires a surrogate, got {:?}", other.kind()))
            }
            (_, Value::Null) => Ok(()),
            (AttrType::Integer, Value::Int(_)) => Ok(()),
            (AttrType::Real, Value::Real(_)) | (AttrType::Real, Value::Int(_)) => Ok(()),
            (AttrType::Boolean, Value::Bool(_)) => Ok(()),
            (AttrType::CharVar, Value::Str(_)) => Ok(()),
            (AttrType::Char(n), Value::Str(s)) => {
                if s.chars().count() <= *n {
                    Ok(())
                } else {
                    Err(format!("CHAR({n}) got string of length {}", s.chars().count()))
                }
            }
            (AttrType::Ref(_), Value::Ref(_)) => Ok(()),
            (AttrType::RefSet(..), Value::RefSet(_)) => Ok(()),
            (AttrType::Record(fields), Value::Record(vals)) => {
                if fields.len() != vals.len() {
                    return Err(format!(
                        "RECORD arity mismatch: declared {}, got {}",
                        fields.len(),
                        vals.len()
                    ));
                }
                for ((fname, fty), (vname, vval)) in fields.iter().zip(vals) {
                    if fname != vname {
                        return Err(format!("RECORD field '{vname}' where '{fname}' declared"));
                    }
                    fty.check_value(vval)?;
                }
                Ok(())
            }
            (AttrType::Array(elem, n), Value::Array(vals)) => {
                if vals.len() != *n {
                    return Err(format!("ARRAY({n}) got {} elements", vals.len()));
                }
                vals.iter().try_for_each(|x| elem.check_value(x))
            }
            (AttrType::SetOf(elem, _), Value::Set(vals))
            | (AttrType::ListOf(elem, _), Value::List(vals)) => {
                vals.iter().try_for_each(|x| elem.check_value(x))
            }
            (decl, got) => Err(format!("declared {decl}, got {:?}", got.kind())),
        }
    }

    /// A canonical "unset" value of this type.
    pub fn null_value(&self) -> Value {
        match self {
            AttrType::Ref(_) => Value::Ref(None),
            AttrType::RefSet(..) => Value::RefSet(Vec::new()),
            AttrType::SetOf(..) => Value::Set(Vec::new()),
            AttrType::ListOf(..) => Value::List(Vec::new()),
            _ => Value::Null,
        }
    }

    /// Kind a (non-null) value of this type will have.
    pub fn value_kind(&self) -> ValueKind {
        match self {
            AttrType::Identifier => ValueKind::Id,
            AttrType::Integer => ValueKind::Int,
            AttrType::Real => ValueKind::Real,
            AttrType::Boolean => ValueKind::Bool,
            AttrType::CharVar | AttrType::Char(_) => ValueKind::Str,
            AttrType::Ref(_) => ValueKind::Ref,
            AttrType::RefSet(..) => ValueKind::RefSet,
            AttrType::Record(_) => ValueKind::Record,
            AttrType::Array(..) => ValueKind::Array,
            AttrType::SetOf(..) => ValueKind::Set,
            AttrType::ListOf(..) => ValueKind::List,
        }
    }
}

impl fmt::Display for AttrType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AttrType::Identifier => write!(f, "IDENTIFIER"),
            AttrType::Integer => write!(f, "INTEGER"),
            AttrType::Real => write!(f, "REAL"),
            AttrType::Boolean => write!(f, "BOOLEAN"),
            AttrType::CharVar => write!(f, "CHAR_VAR"),
            AttrType::Char(n) => write!(f, "CHAR({n})"),
            AttrType::Ref(t) => write!(f, "REF_TO ({t})"),
            AttrType::RefSet(t, c) => write!(f, "SET_OF (REF_TO ({t})) {c}"),
            AttrType::Record(fields) => {
                write!(f, "RECORD ")?;
                for (i, (n, t)) in fields.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{n}: {t}")?;
                }
                write!(f, " END")
            }
            AttrType::Array(t, n) => write!(f, "ARRAY({n}) OF {t}"),
            AttrType::SetOf(t, c) => write!(f, "SET_OF ({t}) {c}"),
            AttrType::ListOf(t, c) => write!(f, "LIST_OF ({t}) {c}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::AtomId;

    #[test]
    fn cardinality_contains() {
        assert!(Cardinality::var(2).contains(2));
        assert!(Cardinality::var(2).contains(1000));
        assert!(!Cardinality::var(2).contains(1));
        assert!(Cardinality::exact(3).contains(3));
        assert!(!Cardinality::exact(3).contains(4));
        assert!(Cardinality::range(1, 4).contains(4));
    }

    #[test]
    fn display_matches_paper_notation() {
        assert_eq!(Cardinality::var(4).to_string(), "(4,VAR)");
        let t = AttrType::ref_set("face", "brep", Cardinality::var(4));
        assert_eq!(t.to_string(), "SET_OF (REF_TO (face.brep)) (4,VAR)");
        assert_eq!(AttrType::reference("solid", "brep").to_string(), "REF_TO (solid.brep)");
    }

    #[test]
    fn check_scalars() {
        assert!(AttrType::Integer.check_value(&Value::Int(3)).is_ok());
        assert!(AttrType::Integer.check_value(&Value::Real(3.0)).is_err());
        assert!(AttrType::Real.check_value(&Value::Int(3)).is_ok(), "int widens to real");
        assert!(AttrType::CharVar.check_value(&Value::Str("x".into())).is_ok());
        assert!(AttrType::Char(2).check_value(&Value::Str("abc".into())).is_err());
        assert!(AttrType::Boolean.check_value(&Value::Null).is_ok(), "null allowed");
        assert!(AttrType::Identifier.check_value(&Value::Null).is_err());
    }

    #[test]
    fn check_record_structure() {
        let placement = AttrType::Record(vec![
            ("x_coord".into(), AttrType::Real),
            ("y_coord".into(), AttrType::Real),
            ("z_coord".into(), AttrType::Real),
        ]);
        let good = Value::Record(vec![
            ("x_coord".into(), Value::Real(0.0)),
            ("y_coord".into(), Value::Real(1.0)),
            ("z_coord".into(), Value::Real(2.0)),
        ]);
        placement.check_value(&good).unwrap();
        let wrong_name = Value::Record(vec![
            ("x".into(), Value::Real(0.0)),
            ("y_coord".into(), Value::Real(1.0)),
            ("z_coord".into(), Value::Real(2.0)),
        ]);
        assert!(placement.check_value(&wrong_name).is_err());
        let wrong_arity = Value::Record(vec![("x_coord".into(), Value::Real(0.0))]);
        assert!(placement.check_value(&wrong_arity).is_err());
    }

    #[test]
    fn check_array_and_groups() {
        let hull = AttrType::Array(Box::new(AttrType::Real), 3);
        assert!(hull
            .check_value(&Value::Array(vec![Value::Real(1.0), Value::Real(2.0), Value::Real(3.0)]))
            .is_ok());
        assert!(hull.check_value(&Value::Array(vec![Value::Real(1.0)])).is_err());
        let tags = AttrType::SetOf(Box::new(AttrType::CharVar), Cardinality::any());
        assert!(tags.check_value(&Value::Set(vec![Value::Str("a".into())])).is_ok());
        assert!(tags.check_value(&Value::Set(vec![Value::Int(1)])).is_err());
    }

    #[test]
    fn null_values_by_type() {
        assert_eq!(AttrType::reference("a", "b").null_value(), Value::Ref(None));
        assert_eq!(
            AttrType::ref_set("a", "b", Cardinality::any()).null_value(),
            Value::RefSet(vec![])
        );
        assert_eq!(AttrType::Integer.null_value(), Value::Null);
    }

    #[test]
    fn ref_value_checks() {
        let r = AttrType::reference("a", "b");
        assert!(r.check_value(&Value::Ref(Some(AtomId::new(1, 1)))).is_ok());
        assert!(r.check_value(&Value::RefSet(vec![])).is_err());
    }
}
