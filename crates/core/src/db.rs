//! The PRIMA facade: "the conceptually simplest system structure […]
//! using PRIMA without additional components as a 'complete' DBMS. The
//! services at the MAD interface are directly made available to its
//! users." (Section 4.)
//!
//! # The session-centric surface
//!
//! Applications talk to the kernel through three objects (module
//! [`crate::session`]):
//!
//! ```text
//!   Prima ──session()──▶ Session ──prepare()──▶ Prepared
//!     │                    │  │                   │ bind(&[Value])
//!     │                    │  └─ execute(DML)     │ execute()/query()
//!     │                    │     commit/rollback  │ cursor()
//!     │                    └─ query(mql, &QueryOptions)
//!     │                       query_cursor(…) ──▶ MoleculeCursor (streaming)
//!     └─ direct atom interface (insert/read/modify/delete — each call
//!        an internal auto-commit Session, so it is undo-logged and
//!        commit-forced like statement DML)
//! ```
//!
//! * [`Session`] owns the transaction context: manipulation statements
//!   run under one [`Transaction`] with explicit [`Session::commit`] /
//!   [`Session::rollback`] (dropping the session rolls back).
//! * [`crate::session::Prepared`] parses and plans once; `?` / `:name` placeholders are
//!   bound per execution with type-checked values — the classic
//!   parse-once / execute-many server shape.
//! * [`MoleculeCursor`] streams result molecules piecewise instead of
//!   materialising the whole set, assembling each chunk lazily through
//!   the level-batched read path.
//! * [`QueryOptions`] selects assembly strategy, semantic parallelism
//!   (`threads ≥ 1`; `0` is rejected, not clamped) and tracing for any
//!   of these entry points.
//!
//! The pre-session one-shot facade (`Prima::query`, `query_traced`,
//! `query_with_assembly`, `query_parallel`, `execute`) went through a
//! deprecation cycle and has been **removed**: [`Prima::session`] is the
//! single query/manipulation path. Auto-commit one-shot convenience for
//! tests and examples lives in `prima_workloads::exec`.

use crate::error::{PrimaError, PrimaResult};
use crate::ldl_exec;
use crate::obs::{MetricsSnapshot, Obs, StatementProfile, DEFAULT_SLOW_LOG_CAPACITY};
use crate::recovery::{self, KernelMeta};
use crate::session::{ApiStats, MoleculeCursor, QueryOptions, Session};
use crate::txn::{
    LockConfig, LockStatsSnapshot, Transaction, TxnManager, VersionStatsSnapshot,
};
use prima_access::{AccessSystem, Atom, UpdatePolicy};
use prima_mad::ddl;
use prima_mad::value::{AtomId, Value};
use prima_mad::Schema;
use prima_storage::{
    BlockDevice, CostModel, FileDisk, GroupCommitConfig, SimDisk, StorageSystem, Wal, WalRecord,
};
use std::path::Path;
use std::sync::Arc;
use std::time::Duration;

/// Configuration for a PRIMA instance.
pub struct PrimaBuilder {
    buffer_bytes: usize,
    cost_model: CostModel,
    device: Option<Arc<dyn BlockDevice>>,
    durable: bool,
    lock_config: LockConfig,
    group_commit: GroupCommitConfig,
    slow_statement_threshold: Option<Duration>,
    slow_log_capacity: usize,
}

impl Default for PrimaBuilder {
    fn default() -> Self {
        PrimaBuilder {
            buffer_bytes: 8 << 20,
            cost_model: CostModel::default(),
            device: None,
            durable: false,
            lock_config: LockConfig::default(),
            group_commit: GroupCommitConfig::default(),
            slow_statement_threshold: None,
            slow_log_capacity: DEFAULT_SLOW_LOG_CAPACITY,
        }
    }
}

impl PrimaBuilder {
    /// Database buffer size in bytes (default 8 MiB).
    pub fn buffer_bytes(mut self, bytes: usize) -> Self {
        self.buffer_bytes = bytes;
        self
    }

    /// Cost model of the simulated device.
    pub fn cost_model(mut self, m: CostModel) -> Self {
        self.cost_model = m;
        self
    }

    /// Lock-wait policy (default: bounded wait with deadlock detection;
    /// [`LockConfig::no_wait`] restores pure fail-fast conflicts, which
    /// single-threaded interleaving tests rely on).
    pub fn lock_config(mut self, config: LockConfig) -> Self {
        self.lock_config = config;
        self
    }

    /// Cross-session group-commit tuning for the durable commit path
    /// (default: grouping on — up to 64 commits per log force, 500 µs
    /// leader linger). [`GroupCommitConfig::force_each`] restores
    /// force-per-commit. Ignored on volatile kernels, and by
    /// [`Prima::open`] / [`Prima::open_device`], which reopen with the
    /// default config.
    pub fn group_commit(mut self, config: GroupCommitConfig) -> Self {
        self.group_commit = config;
        self
    }

    /// Statements (and commits) taking at least this long are profiled
    /// and retained in the slow-statement ring
    /// ([`Prima::slow_statements`]). Setting a threshold force-enables
    /// span profiling on every session — a profile cannot be
    /// reconstructed after the fact — so `Duration::ZERO` captures
    /// every statement. Default: off.
    pub fn slow_statement_threshold(mut self, threshold: Duration) -> Self {
        self.slow_statement_threshold = Some(threshold);
        self
    }

    /// Capacity of the slow-statement ring (default
    /// [`DEFAULT_SLOW_LOG_CAPACITY`]; oldest entries are evicted).
    pub fn slow_log_capacity(mut self, capacity: usize) -> Self {
        self.slow_log_capacity = capacity;
        self
    }

    /// Backs the kernel with a **fresh** file-based database at `dir`
    /// (any previous database there is cleared) and turns durability on.
    /// Re-open a surviving database with [`Prima::open`] instead.
    pub fn path(self, dir: impl AsRef<Path>) -> PrimaResult<Self> {
        let disk = FileDisk::create(dir)?;
        Ok(self.device(Arc::new(disk)).durable())
    }

    /// Supplies a custom block device (e.g. a shared [`SimDisk`] in crash
    /// tests). Volatile unless [`PrimaBuilder::durable`] is also set.
    pub fn device(mut self, device: Arc<dyn BlockDevice>) -> Self {
        self.device = Some(device);
        self
    }

    /// Enables the durability subsystem: a write-ahead log on the
    /// device's log area, WAL-before-data in the buffer, force-on-commit
    /// and an initial checkpoint at build time. Requires a DDL-built
    /// schema (the checkpoint snapshot stores the DDL source).
    pub fn durable(mut self) -> Self {
        self.durable = true;
        self
    }

    /// Builds a kernel over an already-constructed schema. Durable
    /// kernels must be built from DDL ([`PrimaBuilder::build_with_ddl`]):
    /// the checkpoint snapshot persists the schema as its DDL source.
    pub fn build_with_schema(self, schema: Schema) -> PrimaResult<Prima> {
        if self.durable {
            return Err(PrimaError::Recovery(
                "a durable kernel needs the schema's DDL source; use build_with_ddl".into(),
            ));
        }
        self.assemble(schema, None)
    }

    /// Builds a kernel from a MAD-DDL script.
    pub fn build_with_ddl(self, ddl_src: &str) -> PrimaResult<Prima> {
        let mut schema = Schema::new();
        ddl::load_script(&mut schema, ddl_src).map_err(|e| match e {
            ddl::DdlError::Parse(p) => PrimaError::Parse(p),
            ddl::DdlError::Schema(s) => PrimaError::Schema(s),
        })?;
        let durable = self.durable;
        let db = self.assemble(schema, Some(ddl_src.to_string()))?;
        if durable {
            // Initial checkpoint: the catalog snapshot (with the freshly
            // created type segments) becomes the recovery base, so a
            // crash at *any* later point finds a valid snapshot.
            db.checkpoint()?;
        }
        Ok(db)
    }

    fn assemble(self, schema: Schema, ddl_src: Option<String>) -> PrimaResult<Prima> {
        let device: Arc<dyn BlockDevice> = match self.device {
            Some(d) => d,
            None => Arc::new(SimDisk::with_cost(self.cost_model)),
        };
        let storage = if self.durable {
            let wal = Wal::with_config(Arc::clone(&device), 1, self.group_commit);
            Arc::new(StorageSystem::with_wal(device, self.buffer_bytes, wal))
        } else {
            Arc::new(StorageSystem::new(device, self.buffer_bytes))
        };
        let access = Arc::new(AccessSystem::new(Arc::clone(&storage), schema)?);
        let txn = TxnManager::with_config(Arc::clone(&access), self.lock_config);
        let stats = Arc::new(ApiStats::default());
        let obs = Obs::new(
            Arc::clone(&storage),
            Arc::clone(&access),
            Arc::clone(&txn),
            Arc::clone(&stats),
            self.slow_statement_threshold,
            self.slow_log_capacity,
        );
        Ok(Prima {
            storage,
            access,
            txn,
            stats,
            obs,
            ddl: ddl_src,
            buffer_bytes: self.buffer_bytes,
        })
    }
}

/// An open PRIMA kernel instance.
pub struct Prima {
    storage: Arc<StorageSystem>,
    access: Arc<AccessSystem>,
    txn: Arc<TxnManager>,
    stats: Arc<ApiStats>,
    obs: Arc<Obs>,
    /// DDL source of the schema, kept for the checkpoint snapshot
    /// (`None` on schema-built, necessarily volatile kernels).
    ddl: Option<String>,
    buffer_bytes: usize,
}

impl Prima {
    /// Starts configuring a new instance.
    pub fn builder() -> PrimaBuilder {
        PrimaBuilder::default()
    }

    // -----------------------------------------------------------------
    // Durability: open (restart recovery) and checkpoint
    // -----------------------------------------------------------------

    /// Opens an existing file-backed database: runs restart recovery over
    /// the write-ahead-log tail (redo committed work, roll back losers)
    /// and returns a kernel in exactly the last committed state. See
    /// [`crate::recovery`] for the pass structure.
    pub fn open(dir: impl AsRef<Path>) -> PrimaResult<Prima> {
        Self::open_device(Arc::new(FileDisk::open(dir)?))
    }

    /// [`Prima::open`] over an already-constructed device — crash tests
    /// reopen from a shared [`SimDisk`] `Arc`, where only flushed pages
    /// and the forced log prefix survived the "crash" (instance drop).
    pub fn open_device(device: Arc<dyn BlockDevice>) -> PrimaResult<Prima> {
        let meta_bytes = device.read_meta()?.ok_or_else(|| {
            PrimaError::Recovery("device carries no checkpoint metadata".into())
        })?;
        let meta = KernelMeta::decode(&meta_bytes)?;

        // Pass 1: analysis + redo. The resumed log allocates LSNs past
        // everything replayed, so recovery's own page images stay ordered.
        let records = Wal::replay(&device)?;
        let analysis = recovery::analyze(&records);
        let wal = Wal::starting_at(Arc::clone(&device), analysis.max_lsn + 1);
        let storage = Arc::new(StorageSystem::with_wal(
            Arc::clone(&device),
            meta.buffer_bytes as usize,
            wal,
        ));
        storage.restore_segments(meta.next_segment, &meta.segments);
        for rec in &records {
            if let WalRecord::PageImage { page, bytes, .. } = rec {
                storage.apply_page_image(*page, bytes)?;
            }
        }
        device.sync()?;

        // Pass 2: rebuild the access layer by scanning the base segments.
        let mut schema = Schema::new();
        ddl::load_script(&mut schema, &meta.ddl).map_err(|e| {
            PrimaError::Recovery(format!("checkpointed DDL no longer loads: {e:?}"))
        })?;
        let access = Arc::new(AccessSystem::reopen(
            Arc::clone(&storage),
            schema,
            &meta.type_segments,
            &meta.type_next_seq,
        )?);
        // Decode every undo record once: all of them feed the surrogate
        // counters (ids are never reused, and the WAL tail is the only
        // witness of inserted-then-deleted atoms); the losers' ops are
        // kept for rollback.
        let mut loser_ops = Vec::new();
        for rec in &records {
            if let WalRecord::Undo { txn, payload, .. } = rec {
                let op = recovery::decode_undo(payload)?;
                let id = op.atom_id();
                access.note_allocated_seq(id.atom_type, id.seq)?;
                if analysis.losers.contains(txn) {
                    loser_ops.push(op);
                }
            }
        }

        // Pass 3: roll back losers, newest operation first.
        for op in loser_ops.iter().rev() {
            op.apply_recovery(&access)?;
        }

        // Pass 4: checkpoint the recovered state (truncates the log; a
        // crash in the middle of recovery just recovers again).
        let txn = TxnManager::new(Arc::clone(&access));
        let stats = Arc::new(ApiStats::default());
        let obs = Obs::new(
            Arc::clone(&storage),
            Arc::clone(&access),
            Arc::clone(&txn),
            Arc::clone(&stats),
            None,
            DEFAULT_SLOW_LOG_CAPACITY,
        );
        let db = Prima {
            storage,
            access,
            txn,
            stats,
            obs,
            ddl: Some(meta.ddl),
            buffer_bytes: meta.buffer_bytes as usize,
        };
        db.checkpoint()?;
        Ok(db)
    }

    /// Whether this kernel runs the durability subsystem.
    pub fn is_durable(&self) -> bool {
        self.storage.wal().is_some()
    }

    /// Checkpoint: flushes every dirty page (WAL forced first), snapshots
    /// the catalog (segment directory, atom-type base segments, surrogate
    /// counters, schema DDL) into the device's metadata blob and
    /// truncates the log. Restart work is bounded by the log tail written
    /// since the last checkpoint. Runs under the transaction manager's
    /// quiesce gate — it fails if transactions are active and blocks new
    /// begins for its duration, because flushed pages must not carry
    /// changes whose undo records the truncation would discard. (Every
    /// write path, including the direct atom interface, runs under the
    /// transaction manager, so the gate covers all of them.)
    pub fn checkpoint(&self) -> PrimaResult<()> {
        if self.storage.wal().is_none() {
            return Err(PrimaError::Recovery(
                "checkpoint on a volatile kernel (build with .path()/.durable())".into(),
            ));
        }
        let Some(ddl) = &self.ddl else {
            return Err(PrimaError::Recovery(
                "durable checkpoint requires a DDL-built schema".into(),
            ));
        };
        self.txn.quiesced(|| {
            let (next_segment, segments) = self.storage.segments_snapshot();
            let meta = KernelMeta {
                buffer_bytes: self.buffer_bytes as u64,
                ddl: ddl.clone(),
                next_segment,
                segments,
                type_segments: self.access.type_segments(),
                type_next_seq: self.access.type_next_seqs(),
            };
            Ok(self.storage.checkpoint(&meta.encode())?)
        })
    }

    /// The underlying access system (atom-oriented interface).
    pub fn access(&self) -> &Arc<AccessSystem> {
        &self.access
    }

    /// The underlying storage system (for I/O statistics).
    pub fn storage(&self) -> &Arc<StorageSystem> {
        &self.storage
    }

    /// The schema.
    pub fn schema(&self) -> &Schema {
        self.access.schema()
    }

    /// Parse / plan / plan-reuse counters — the instrument proving that
    /// prepared statements skip re-parse and re-plan on re-execution.
    pub fn api_stats(&self) -> &Arc<ApiStats> {
        &self.stats
    }

    /// Contention counters of the lock manager: waits, wait time,
    /// timeouts, deadlocks detected, victims chosen, queue overflow
    /// fast-fails (see [`LockStatsSnapshot::detail`]).
    pub fn lock_stats(&self) -> LockStatsSnapshot {
        self.txn.lock_table().stats().snapshot()
    }

    /// Version-store counters of the MVCC read path: versions
    /// installed/reclaimed, live chains, snapshot reads, oldest-snapshot
    /// lag (see [`VersionStatsSnapshot::detail`]). The version store is
    /// volatile — rebuilt empty at [`Prima::open`] — so these counters
    /// always describe the current incarnation.
    pub fn version_stats(&self) -> VersionStatsSnapshot {
        self.txn.versions().stats()
    }

    // -----------------------------------------------------------------
    // Observability
    // -----------------------------------------------------------------

    /// One coherent snapshot of every kernel counter family (buffer,
    /// I/O, access, lock, version, API) plus the per-statement-kind
    /// latency histograms. See [`MetricsSnapshot::render_text`] for the
    /// exposition format and [`MetricsSnapshot::check_coherence`] for
    /// the cross-family invariants.
    pub fn metrics(&self) -> MetricsSnapshot {
        self.obs.metrics_snapshot()
    }

    /// Profiles of statements that exceeded the builder's
    /// [`PrimaBuilder::slow_statement_threshold`], oldest first (a
    /// bounded ring: the slowest-log capacity evicts oldest entries).
    pub fn slow_statements(&self) -> Vec<StatementProfile> {
        self.obs.slow_statements()
    }

    // -----------------------------------------------------------------
    // Sessions (the primary interface)
    // -----------------------------------------------------------------

    /// Opens a session: the transaction-owning conversation through
    /// which queries, prepared statements and manipulation run.
    pub fn session(&self) -> Session {
        Session::new(
            Arc::clone(&self.access),
            Arc::clone(&self.txn),
            Arc::clone(&self.stats),
            Arc::clone(&self.obs),
        )
    }

    /// Opens a streaming [`MoleculeCursor`] over a `SELECT` without an
    /// explicit session: the cursor owns a private session whose
    /// transaction (and read locks) live exactly as long as the cursor.
    pub fn query_cursor(&self, mql: &str) -> PrimaResult<MoleculeCursor<'static>> {
        self.session().into_cursor(mql, &QueryOptions::default())
    }

    // -----------------------------------------------------------------
    // LDL
    // -----------------------------------------------------------------

    /// Executes an LDL script (tuning structures; transparent to MQL).
    pub fn ldl(&self, src: &str) -> PrimaResult<usize> {
        ldl_exec::execute_ldl(&self.access, src)
    }

    /// Applies all pending deferred maintenance.
    pub fn reconcile(&self) -> PrimaResult<usize> {
        Ok(self.access.reconcile()?)
    }

    /// Sets the redundancy maintenance policy.
    pub fn set_update_policy(&self, p: UpdatePolicy) {
        self.access.set_update_policy(p);
    }

    // -----------------------------------------------------------------
    // Direct atom interface (application-layer style access)
    // -----------------------------------------------------------------
    //
    // Each call runs in a short-lived auto-commit session, so the write
    // is undo-logged, lock-protected and — on a durable kernel — forced
    // to the log at its internal commit, exactly like statement-level
    // DML. A call that dies before that commit force is rolled back by
    // restart recovery. Multi-call units of work belong in an explicit
    // `Prima::session` (these convenience wrappers commit per call).

    /// Inserts an atom by type name with named attribute values, returning
    /// its logical address. (The programmatic path applications use to
    /// load data; reference values connect components directly.)
    pub fn insert(&self, type_name: &str, attrs: &[(&str, Value)]) -> PrimaResult<AtomId> {
        let s = self.session();
        let id = s.insert_atom_named(type_name, attrs)?;
        s.commit()?;
        Ok(id)
    }

    /// Reads one atom (under a momentary `Shared` lock: an atom a
    /// concurrent transaction has uncommitted changes on conflicts).
    pub fn read(&self, id: AtomId) -> PrimaResult<Atom> {
        let s = self.session();
        let atom = s.read_atom(id)?;
        s.commit()?;
        Ok(atom)
    }

    /// Modifies named attributes of an atom.
    pub fn modify(&self, id: AtomId, attrs: &[(&str, Value)]) -> PrimaResult<()> {
        let s = self.session();
        s.modify_atom_named(id, attrs)?;
        s.commit()
    }

    /// Deletes an atom (disconnecting it everywhere).
    pub fn delete(&self, id: AtomId) -> PrimaResult<()> {
        let s = self.session();
        s.delete_atom(id)?;
        s.commit()
    }

    // -----------------------------------------------------------------
    // Transactions
    // -----------------------------------------------------------------

    /// Begins a top-level transaction (atom-level interface; MQL-level
    /// work units are better served by [`Prima::session`]).
    pub fn begin(&self) -> PrimaResult<Transaction> {
        Ok(self.txn.begin(None)?)
    }

    /// The transaction manager (for advanced nesting scenarios).
    pub fn txn_manager(&self) -> &Arc<TxnManager> {
        &self.txn
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::datasys::DmlResult;

    const DDL: &str = "
        CREATE ATOM_TYPE thing (id: IDENTIFIER, n: INTEGER, s: CHAR_VAR)
        KEYS_ARE (n);
    ";

    fn db() -> Prima {
        Prima::builder().buffer_bytes(1 << 20).build_with_ddl(DDL).unwrap()
    }

    #[test]
    fn build_rejects_bad_ddl() {
        assert!(matches!(
            Prima::builder().build_with_ddl("CREATE NONSENSE"),
            Err(PrimaError::Parse(_))
        ));
        assert!(matches!(
            Prima::builder().build_with_ddl(
                "CREATE ATOM_TYPE a (id: IDENTIFIER, r: REF_TO (missing.x));"
            ),
            Err(PrimaError::Schema(_))
        ));
    }

    #[test]
    fn query_vs_execute_routing() {
        let d = db();
        let s = d.session();
        assert!(matches!(
            s.execute("SELECT ALL FROM thing"),
            Err(PrimaError::BadStatement(_))
        ));
        assert!(matches!(
            s.query("INSERT thing (n: 9, s: 'x')", &QueryOptions::default()),
            Err(PrimaError::BadStatement(_))
        ));
        let r = s.execute("INSERT thing (n: 1, s: 'one')").unwrap();
        assert!(matches!(r, DmlResult::Inserted(_)));
        s.commit().unwrap();
        assert_eq!(
            d.session().query("SELECT ALL FROM thing", &QueryOptions::default()).unwrap().set.len(),
            1
        );
    }

    #[test]
    fn direct_atom_interface_round_trip() {
        let d = db();
        let id = d.insert("thing", &[("n", Value::Int(7)), ("s", Value::Str("x".into()))]).unwrap();
        assert_eq!(d.read(id).unwrap().values[1], Value::Int(7));
        d.modify(id, &[("s", Value::Str("y".into()))]).unwrap();
        assert_eq!(d.read(id).unwrap().values[2], Value::Str("y".into()));
        d.delete(id).unwrap();
        assert!(d.read(id).is_err());
    }

    #[test]
    fn parse_errors_carry_position() {
        let d = db();
        let err = d.session().query("SELECT FROM", &QueryOptions::default()).unwrap_err();
        assert!(matches!(err, PrimaError::Parse(_)));
    }

    #[test]
    fn zero_threads_rejected_at_the_boundary() {
        let d = db();
        let s = d.session();
        assert!(matches!(
            s.query("SELECT ALL FROM thing", &QueryOptions::new().threads(0)),
            Err(PrimaError::BadStatement(_))
        ));
        // 1 = serial is valid.
        assert!(s.query("SELECT ALL FROM thing", &QueryOptions::new().threads(1)).is_ok());
    }

    #[test]
    fn one_shot_rejects_parameter_placeholders() {
        let d = db();
        let s = d.session();
        assert!(matches!(
            s.query("SELECT ALL FROM thing WHERE n = ?", &QueryOptions::default()),
            Err(PrimaError::UnboundParameter { .. })
        ));
        assert!(matches!(
            s.execute("INSERT thing (n: :v)"),
            Err(PrimaError::UnboundParameter { .. })
        ));
    }

    #[test]
    fn ldl_round_trip_and_reconcile() {
        let d = db();
        for i in 0..20 {
            d.insert("thing", &[("n", Value::Int(i)), ("s", Value::Str("v".into()))]).unwrap();
        }
        assert_eq!(d.ldl("CREATE SORT ORDER so ON thing (n); RECONCILE").unwrap(), 2);
        d.set_update_policy(UpdatePolicy::Deferred);
        let t = d.schema().type_id("thing").unwrap();
        let id = d.access().all_ids(t).unwrap()[0];
        d.modify(id, &[("s", Value::Str("w".into()))]).unwrap();
        assert!(!d.access().deferred_queue().is_empty());
        assert_eq!(d.reconcile().unwrap(), 1);
    }
}
