//! Checkpoint metadata snapshot and restart-recovery analysis.
//!
//! A durable kernel checkpoints by flushing all dirty pages and writing
//! one [`KernelMeta`] blob to the device's metadata area (then truncating
//! the WAL): the schema's DDL source, the storage system's segment
//! directory and the access layer's atom-type → base-segment catalog —
//! everything `Prima::open` needs that is not reconstructible from page
//! contents alone. Tuning structures are deliberately absent: they are
//! redundant and are re-created by re-running LDL.
//!
//! Restart recovery ([`crate::db::Prima::open`]) then proceeds in four
//! passes over the WAL tail:
//!
//! 1. **analysis + redo**: page after-images are installed in log order
//!    (repeating history, idempotent) while transaction brackets sort
//!    top-level transactions into winners (commit record present),
//!    in-process-aborted (abort record present) and **losers**;
//! 2. **rebuild**: the access system re-attaches to the base segments
//!    and scans them, restoring the address table, key maps and
//!    surrogate counters;
//! 3. **undo**: the losers' logged [`UndoOp`]s replay in reverse log
//!    order through the (idempotent) recovery-apply path;
//! 4. **checkpoint**: the recovered state is flushed and the log
//!    truncated, so a crash during recovery simply recovers again.

use crate::error::{PrimaError, PrimaResult};
use crate::txn::UndoOp;
use prima_storage::bytes::{le_u32, le_u64};
use prima_storage::{PageSize, SegmentId, SegmentMeta, WalRecord};
use std::collections::HashSet;

const MAGIC: &[u8; 8] = b"PRMETA02";

/// The checkpoint's catalog snapshot. See module docs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KernelMeta {
    /// Buffer size the kernel was built with (reused on open).
    pub buffer_bytes: u64,
    /// MAD-DDL source of the schema, re-parsed on open.
    pub ddl: String,
    /// Next segment id to allocate.
    pub next_segment: SegmentId,
    /// Segment directory at checkpoint time.
    pub segments: Vec<SegmentMeta>,
    /// Base record-file segment of every atom type, in type order.
    pub type_segments: Vec<SegmentId>,
    /// Surrogate counter of every atom type, in type order — surrogates
    /// are never reused, and a post-crash rescan cannot see the ids of
    /// already-deleted atoms.
    pub type_next_seq: Vec<u64>,
}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

#[allow(clippy::unwrap_used, clippy::expect_used)]
fn size_code(s: PageSize) -> u8 {
    // lint: allow(error-hygiene, PageSize::ALL enumerates every variant of the closed enum)
    PageSize::ALL.iter().position(|&x| x == s).expect("known size") as u8
}

struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> PrimaResult<&'a [u8]> {
        if self.buf.len() < self.pos + n {
            return Err(PrimaError::Recovery("checkpoint metadata truncated".into()));
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u8(&mut self) -> PrimaResult<u8> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> PrimaResult<u32> {
        Ok(le_u32(self.take(4)?))
    }

    fn u64(&mut self) -> PrimaResult<u64> {
        Ok(le_u64(self.take(8)?))
    }
}

impl KernelMeta {
    /// Serialises the snapshot (little-endian, length-prefixed).
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(64 + self.ddl.len());
        out.extend_from_slice(MAGIC);
        out.extend_from_slice(&self.buffer_bytes.to_le_bytes());
        put_u32(&mut out, self.ddl.len() as u32);
        out.extend_from_slice(self.ddl.as_bytes());
        put_u32(&mut out, self.next_segment);
        put_u32(&mut out, self.segments.len() as u32);
        for s in &self.segments {
            put_u32(&mut out, s.id);
            out.push(size_code(s.page_size));
            out.push(s.logged as u8);
            put_u32(&mut out, s.next_page);
            put_u32(&mut out, s.free.len() as u32);
            for &p in &s.free {
                put_u32(&mut out, p);
            }
        }
        put_u32(&mut out, self.type_segments.len() as u32);
        for &s in &self.type_segments {
            put_u32(&mut out, s);
        }
        put_u32(&mut out, self.type_next_seq.len() as u32);
        for &s in &self.type_next_seq {
            out.extend_from_slice(&s.to_le_bytes());
        }
        out
    }

    /// Decodes a snapshot written by [`KernelMeta::encode`].
    pub fn decode(buf: &[u8]) -> PrimaResult<KernelMeta> {
        let mut r = Reader { buf, pos: 0 };
        if r.take(8)? != MAGIC {
            return Err(PrimaError::Recovery(
                "metadata blob does not start with the PRMETA02 magic".into(),
            ));
        }
        let buffer_bytes = r.u64()?;
        let ddl_len = r.u32()? as usize;
        let ddl = String::from_utf8(r.take(ddl_len)?.to_vec())
            .map_err(|_| PrimaError::Recovery("checkpoint DDL is not UTF-8".into()))?;
        let next_segment = r.u32()?;
        let n_segs = r.u32()? as usize;
        let mut segments = Vec::with_capacity(n_segs);
        for _ in 0..n_segs {
            let id = r.u32()?;
            let code = r.u8()? as usize;
            let page_size = *PageSize::ALL.get(code).ok_or_else(|| {
                PrimaError::Recovery(format!("unknown page-size code {code}"))
            })?;
            let logged = r.u8()? != 0;
            let next_page = r.u32()?;
            let n_free = r.u32()? as usize;
            let mut free = Vec::with_capacity(n_free);
            for _ in 0..n_free {
                free.push(r.u32()?);
            }
            segments.push(SegmentMeta { id, page_size, next_page, free, logged });
        }
        let n_types = r.u32()? as usize;
        let mut type_segments = Vec::with_capacity(n_types);
        for _ in 0..n_types {
            type_segments.push(r.u32()?);
        }
        let n_seqs = r.u32()? as usize;
        let mut type_next_seq = Vec::with_capacity(n_seqs);
        for _ in 0..n_seqs {
            type_next_seq.push(r.u64()?);
        }
        Ok(KernelMeta { buffer_bytes, ddl, next_segment, segments, type_segments, type_next_seq })
    }
}

/// Transaction verdicts from one WAL analysis pass.
#[derive(Debug, Default)]
pub struct WalAnalysis {
    /// Highest LSN seen (the resumed log continues after it).
    pub max_lsn: u64,
    /// Top-level transactions with neither a commit nor an abort record:
    /// their undo records must be replayed in reverse log order.
    pub losers: HashSet<u64>,
}

/// Sorts top-level transactions into winners and losers. Page images and
/// undo payloads are *not* collected here — the caller walks the records
/// once itself, applying images and decoding undo payloads as it goes.
pub fn analyze(records: &[WalRecord]) -> WalAnalysis {
    let mut finished: HashSet<u64> = HashSet::new();
    for rec in records {
        if let WalRecord::TxnCommit { txn, .. } | WalRecord::TxnAbort { txn, .. } = rec {
            finished.insert(*txn);
        }
    }
    let mut analysis = WalAnalysis::default();
    for rec in records {
        analysis.max_lsn = analysis.max_lsn.max(rec.lsn());
        if let WalRecord::TxnBegin { txn, .. } | WalRecord::Undo { txn, .. } = rec {
            if !finished.contains(txn) {
                analysis.losers.insert(*txn);
            }
        }
    }
    analysis
}

/// Decodes one loser-undo payload.
pub fn decode_undo(payload: &[u8]) -> PrimaResult<UndoOp> {
    Ok(UndoOp::decode(payload)?)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn meta_round_trip() {
        let meta = KernelMeta {
            buffer_bytes: 8 << 20,
            ddl: "CREATE ATOM_TYPE t (id: IDENTIFIER);".into(),
            next_segment: 7,
            segments: vec![
                SegmentMeta {
                    id: 0,
                    page_size: PageSize::K4,
                    next_page: 12,
                    free: vec![3, 5],
                    logged: true,
                },
                SegmentMeta {
                    id: 4,
                    page_size: PageSize::Half,
                    next_page: 0,
                    free: vec![],
                    logged: false,
                },
            ],
            type_segments: vec![0, 1, 2],
            type_next_seq: vec![17, 1, 4],
        };
        let bytes = meta.encode();
        assert_eq!(KernelMeta::decode(&bytes).unwrap(), meta);
    }

    #[test]
    fn decode_rejects_garbage() {
        assert!(KernelMeta::decode(b"nonsense").is_err());
        assert!(KernelMeta::decode(&KernelMeta::encode(&KernelMeta {
            buffer_bytes: 1,
            ddl: String::new(),
            next_segment: 0,
            segments: vec![],
            type_segments: vec![],
            type_next_seq: vec![],
        })[..12])
        .is_err());
    }

    #[test]
    fn analysis_sorts_winners_and_losers() {
        use prima_storage::PageId;
        let records = vec![
            WalRecord::TxnBegin { lsn: 1, txn: 1 },
            WalRecord::Undo { lsn: 2, txn: 1, payload: vec![9] },
            WalRecord::PageImage { lsn: 3, page: PageId::new(0, 0), bytes: vec![] },
            WalRecord::TxnCommit { lsn: 4, txn: 1 },
            WalRecord::TxnBegin { lsn: 5, txn: 2 },
            WalRecord::Undo { lsn: 6, txn: 2, payload: vec![7] },
            WalRecord::TxnBegin { lsn: 7, txn: 3 },
            WalRecord::Undo { lsn: 8, txn: 3, payload: vec![8] },
            WalRecord::TxnAbort { lsn: 9, txn: 3 },
        ];
        let a = analyze(&records);
        assert_eq!(a.max_lsn, 9);
        // txn 1 committed, txn 3 aborted in-process: only txn 2 is a loser.
        assert_eq!(a.losers, HashSet::from([2]));
    }
}
