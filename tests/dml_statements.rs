//! Molecule manipulation statements (Section 2.2): insert, delete
//! (components and whole molecules), modify with connect/disconnect —
//! all with system-enforced structural integrity.

use prima::datasys::DmlResult;
use prima_workloads::exec;
use prima::{Prima, Value};

const DDL: &str = "
CREATE ATOM_TYPE doc
  ( id : IDENTIFIER, doc_no : INTEGER, title : CHAR_VAR,
    chapters : SET_OF (REF_TO (chapter.doc)) )
KEYS_ARE (doc_no);
CREATE ATOM_TYPE chapter
  ( id : IDENTIFIER, chap_no : INTEGER, pages : INTEGER,
    doc : SET_OF (REF_TO (doc.chapters)) )
KEYS_ARE (chap_no);
";

fn setup() -> Prima {
    let db = Prima::builder().build_with_ddl(DDL).unwrap();
    for d in 1..=2i64 {
        let doc = db
            .insert("doc", &[("doc_no", Value::Int(d)), ("title", Value::Str(format!("doc {d}")))])
            .unwrap();
        for c in 0..3i64 {
            db.insert(
                "chapter",
                &[
                    ("chap_no", Value::Int(d * 10 + c)),
                    ("pages", Value::Int(10 + c)),
                    ("doc", Value::ref_set(vec![doc])),
                ],
            )
            .unwrap();
        }
    }
    db
}

#[test]
fn insert_statement_generates_surrogate() {
    let db = setup();
    let r = exec::execute(&db, "INSERT doc (doc_no: 3, title: 'fresh')").unwrap();
    let DmlResult::Inserted(id) = r else { panic!("{r:?}") };
    assert!(db.access().exists(id));
    assert_eq!(exec::query(&db, "SELECT ALL FROM doc WHERE doc_no = 3").unwrap().len(), 1);
}

#[test]
fn delete_whole_molecule_disconnects() {
    let db = setup();
    let r = exec::execute(&db, "DELETE FROM doc-chapter WHERE doc_no = 1").unwrap();
    // doc + its 3 chapters
    assert_eq!(r, DmlResult::Deleted(4));
    assert!(exec::query(&db, "SELECT ALL FROM doc WHERE doc_no = 1").unwrap().is_empty());
    // Chapters of doc 2 untouched.
    let set = exec::query(&db, "SELECT ALL FROM doc-chapter WHERE doc_no = 2").unwrap();
    assert_eq!(set.atoms_of("chapter").len(), 3);
}

#[test]
fn delete_only_component() {
    let db = setup();
    // Remove one chapter from doc 1's molecule; the doc stays.
    let r = exec::execute(&db, "DELETE ONLY (chapter) FROM doc-chapter WHERE doc_no = 1 AND chapter.chap_no = 10")
        .unwrap();
    // Implicit-EXISTS semantics qualify the doc-1 molecule; chapter
    // components of that molecule are deleted when they match? No: ONLY
    // deletes all atoms of the named component in qualifying molecules.
    // The residual predicate restricted the molecule, not the victims, so
    // all 3 chapters of doc 1 disappear.
    assert_eq!(r, DmlResult::Deleted(3));
    let set = exec::query(&db, "SELECT ALL FROM doc-chapter WHERE doc_no = 1").unwrap();
    assert_eq!(set.len(), 1, "doc survives");
    assert_eq!(set.atoms_of("chapter").len(), 0);
}

#[test]
fn modify_attribute_via_statement() {
    let db = setup();
    let r = exec::execute(&db, "MODIFY chapter SET pages = 99 WHERE chap_no = 11")
        .unwrap();
    assert_eq!(r, DmlResult::Modified(1));
    let set = exec::query(&db, "SELECT ALL FROM chapter WHERE chap_no = 11").unwrap();
    assert_eq!(set.molecules[0].root.atom.values[2], Value::Int(99));
}

#[test]
fn modify_connect_adds_association_both_ways() {
    let db = setup();
    // Chapter 20 currently belongs to doc 2; connect it to doc 1 as well
    // (chapters may be shared — n:m).
    exec::execute(&db, 
        "MODIFY chapter SET doc = CONNECT (SELECT ALL FROM doc WHERE doc_no = 1)
         WHERE chap_no = 20",
    )
    .unwrap();
    let set = exec::query(&db, "SELECT ALL FROM doc-chapter WHERE doc_no = 1").unwrap();
    let nos: Vec<i64> = set
        .atoms_of("chapter")
        .iter()
        .map(|a| a.values[1].as_int().unwrap())
        .collect();
    assert!(nos.contains(&20), "chapter 20 now reachable from doc 1: {nos:?}");
    // Back-reference on the chapter side lists both docs.
    let set = exec::query(&db, "SELECT ALL FROM chapter-doc WHERE chap_no = 20").unwrap();
    assert_eq!(set.atoms_of("doc").len(), 2);
}

#[test]
fn modify_disconnect_removes_association() {
    let db = setup();
    exec::execute(&db, 
        "MODIFY chapter SET doc = DISCONNECT (SELECT ALL FROM doc WHERE doc_no = 2)
         WHERE chap_no = 20",
    )
    .unwrap();
    let set = exec::query(&db, "SELECT ALL FROM chapter-doc WHERE chap_no = 20").unwrap();
    assert_eq!(set.atoms_of("doc").len(), 0, "chapter 20 disconnected");
    let set = exec::query(&db, "SELECT ALL FROM doc-chapter WHERE doc_no = 2").unwrap();
    assert_eq!(set.atoms_of("chapter").len(), 2);
}

#[test]
fn deleting_shared_component_disconnects_everywhere() {
    let db = setup();
    // Share chapter 20 between both docs, then delete it.
    exec::execute(&db, 
        "MODIFY chapter SET doc = CONNECT (SELECT ALL FROM doc WHERE doc_no = 1)
         WHERE chap_no = 20",
    )
    .unwrap();
    exec::execute(&db, "DELETE FROM chapter WHERE chap_no = 20").unwrap();
    for d in [1, 2] {
        let set = exec::query(&db, &format!("SELECT ALL FROM doc-chapter WHERE doc_no = {d}")).unwrap();
        let nos: Vec<i64> = set
            .atoms_of("chapter")
            .iter()
            .map(|a| a.values[1].as_int().unwrap())
            .collect();
        assert!(!nos.contains(&20), "doc {d} still references deleted chapter");
    }
}

#[test]
fn key_violation_through_mql_reported() {
    let db = setup();
    let err = exec::execute(&db, "INSERT doc (doc_no: 1, title: 'dup')").unwrap_err();
    assert!(err.to_string().contains("duplicate key"), "{err}");
}
