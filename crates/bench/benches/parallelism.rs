//! E-PAR — Sections 1/4: semantic parallelism. Molecule-set construction
//! decomposed into one DU per molecule, executed on 1..8 workers. The
//! shape under test: speed-up grows with workers on large molecule sets
//! (the "inherent parallelism" of sizable engineering operations).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use prima_workloads::exec;
use prima_bench::{brep_db, report};
use std::time::Instant;

fn speedup_report() {
    let host = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    report("PAR", "host", "available_parallelism", host);
    if host == 1 {
        report(
            "PAR",
            "host",
            "note",
            "single-CPU host: speedup cannot exceed 1.0x; see EXPERIMENTS.md",
        );
    }
    let db = brep_db(300);
    let q = "SELECT ALL FROM brep-face-edge-point WHERE brep_no > 0";
    // Warm the buffer so the measurement isolates CPU-side assembly.
    let baseline = exec::query(&db, q).unwrap();
    let t0 = Instant::now();
    let serial = exec::query(&db, q).unwrap();
    let serial_time = t0.elapsed();
    assert_eq!(baseline.len(), serial.len());
    report("PAR", "serial", "time_ms", serial_time.as_millis());
    for threads in [2usize, 4, 8] {
        let t0 = Instant::now();
        let par = exec::query_parallel(&db, q, threads).unwrap();
        let elapsed = t0.elapsed();
        assert_eq!(par.len(), serial.len());
        let speedup = serial_time.as_secs_f64() / elapsed.as_secs_f64();
        report(
            "PAR",
            &format!("{threads} workers"),
            "speedup",
            format!("{speedup:.2}x ({} ms)", elapsed.as_millis()),
        );
    }
}

fn bench_parallelism(c: &mut Criterion) {
    speedup_report();
    let db = brep_db(200);
    let q = "SELECT ALL FROM brep-face-edge-point WHERE brep_no > 0";
    let _ = exec::query(&db, q).unwrap();
    let mut g = c.benchmark_group("parallelism");
    g.sample_size(10);
    for threads in [1usize, 2, 4, 8] {
        g.bench_with_input(BenchmarkId::from_parameter(threads), &threads, |b, &t| {
            b.iter(|| exec::query_parallel(&db, q, t).unwrap())
        });
    }
    g.finish();
}

criterion_group!(benches, bench_parallelism);
criterion_main!(benches);
