//! The unified observability layer, end to end: statement profiler,
//! metrics registry (histograms + coherence), slow-statement log, and
//! the zero-cost-when-off guarantee pinned by a counting allocator.

use prima::obs;
use prima::{Prima, QueryOptions, SpanKind, StatementKind};
use prima_storage::probe::{self, ProbeEvent};
use prima_workloads::brep::{self, BrepConfig};
use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;
use std::time::Duration;

// ---------------------------------------------------------------------
// Counting allocator: pins the profiler-off zero-allocation guarantee.
// ---------------------------------------------------------------------

struct CountingAlloc;

thread_local! {
    static ALLOCS: Cell<u64> = const { Cell::new(0) };
}

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        // try_with: the TLS slot itself may be mid-teardown.
        let _ = ALLOCS.try_with(|c| c.set(c.get() + 1));
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static COUNTING: CountingAlloc = CountingAlloc;

fn allocations() -> u64 {
    ALLOCS.with(|c| c.get())
}

#[test]
fn profiler_off_entry_points_do_not_allocate() {
    // Warm the TLS slot and any lazy statics before counting.
    let _ = allocations();
    obs::event(SpanKind::BufferFix, 1, 0);
    assert!(!probe::enabled());

    let before = allocations();
    for i in 0..1000u64 {
        obs::event(SpanKind::BufferFix, i, 0);
        assert_eq!(obs::span(SpanKind::Parse, || i), i);
        assert_eq!(obs::observed(SpanKind::LockAcquire, || i + 1), i + 1);
        drop(obs::span_guard(SpanKind::RootAccess));
        assert!(probe::timer().is_none());
        probe::emit_elapsed(None, ProbeEvent::BufferFix, 0);
        assert_eq!(probe::observed(ProbeEvent::PageLoad, || i), i);
    }
    assert_eq!(allocations(), before, "disabled probes must not allocate");
}

// ---------------------------------------------------------------------
// Histograms
// ---------------------------------------------------------------------

#[test]
fn histogram_buckets_quantiles_and_overflow() {
    use obs::{bucket_bounds, bucket_index, LatencyHistogram, BUCKETS};

    // Power-of-two bucketing with 0–1 ns folded into bucket 0.
    assert_eq!(bucket_index(0), 0);
    assert_eq!(bucket_index(1), 0);
    assert_eq!(bucket_index(2), 1);
    assert_eq!(bucket_index(1024), 10);
    assert_eq!(bucket_index(u64::MAX), BUCKETS - 1);
    assert_eq!(bucket_bounds(10), (1024, 2048));
    assert_eq!(bucket_bounds(BUCKETS - 1).1, u64::MAX);

    // Quantiles interpolate within the containing bucket and never
    // exceed the recorded maximum.
    let h = LatencyHistogram::default();
    for _ in 0..90 {
        h.record(700); // bucket 9: [512, 1024)
    }
    for _ in 0..10 {
        h.record(5_000); // bucket 12: [4096, 8192)
    }
    let s = h.snapshot();
    assert_eq!(s.count, 100);
    assert_eq!(s.max_ns, 5_000);
    // Interpolation stays within the containing bucket [512, 1024).
    let p50 = s.p50();
    assert!((512..1024).contains(&p50), "p50 = {p50}");
    assert!(s.p95() > 1024, "p95 must land in the slow bucket");
    assert!(s.p99() <= s.max_ns);

    // The overflow bucket reports the exact maximum, not an
    // interpolation into an unbounded range.
    let o = LatencyHistogram::default();
    o.record(1u64 << 45);
    o.record(3);
    let os = o.snapshot();
    assert_eq!(os.buckets[BUCKETS - 1], 1);
    assert_eq!(os.quantile(1.0), 1u64 << 45);
}

// ---------------------------------------------------------------------
// The profiled Table 2.1 query (the acceptance scenario)
// ---------------------------------------------------------------------

fn brep_db() -> Prima {
    let db = brep::open_db(4 << 20).expect("open");
    brep::populate(&db, &BrepConfig::with_assembly(4, 2, 2)).expect("populate");
    db
}

#[test]
fn profiled_table21_query_covers_every_layer() {
    let db = brep_db();
    // Cold buffer: the query must pay device reads, so the I/O leaf
    // spans are guaranteed to appear.
    db.storage().drop_cache().expect("drop_cache");

    let before = db.metrics();
    let session = db.session();
    session.set_profiling(true);
    let result = session
        .query("SELECT ALL FROM brep-face-edge-point WHERE brep_no = 2", &QueryOptions::default())
        .expect("table 2.1a query");
    assert_eq!(result.set.len(), 1);
    let profile = session.last_profile().expect("profiled statement leaves a profile");
    drop(session);
    let delta = db.metrics().delta(&before);

    // Well-formed tree rooted at Statement, scoped children disjoint.
    profile.validate().unwrap_or_else(|e| panic!("{e}\n{}", profile.render()));
    assert_eq!(profile.kind, StatementKind::Select);

    // Full layer coverage: parse → plan → snapshot pin → root access →
    // per-level assembly → buffer/I/O leaves.
    for kind in [
        SpanKind::Parse,
        SpanKind::Plan,
        SpanKind::SnapshotPin,
        SpanKind::RootAccess,
        SpanKind::AssemblyLevel(0),
        SpanKind::AssemblyLevel(1),
        SpanKind::BufferFix,
        SpanKind::PageLoad,
        SpanKind::BatchRead,
    ] {
        assert!(
            profile.root.find(kind).is_some(),
            "span tree misses {}:\n{}",
            kind.label(),
            profile.render()
        );
    }

    // The profile's counter deltas equal the kernel-wide deltas — the
    // statement was the only traffic (single thread, quiet kernel).
    let c = &profile.counters;
    assert_eq!(c.buffer.fix_calls, delta.buffer.fix_calls);
    assert_eq!(c.buffer.pages_loaded, delta.buffer.pages_loaded);
    assert_eq!(c.io.block_reads, delta.io.block_reads);
    assert_eq!(c.access.batch_reads, delta.access.batch_reads);
    assert_eq!(c.access.batch_atoms, delta.access.batch_atoms);
    assert!(c.buffer.pages_loaded > 0, "cold query must load pages");

    // And the span tree's leaf totals agree with those same counters
    // (leaves merge per enclosing frame, so sum across the tree).
    let (fixes, _, _) = profile.root.totals(SpanKind::BufferFix);
    let (loads, _, _) = profile.root.totals(SpanKind::PageLoad);
    let (batches, _, batch_bytes) = profile.root.totals(SpanKind::BatchRead);
    assert_eq!(fixes, c.buffer.fix_calls);
    assert_eq!(loads, c.buffer.pages_loaded);
    assert_eq!(batches, c.access.batch_reads);
    assert_eq!(batch_bytes, c.access.batch_atoms, "BatchRead bytes = atoms requested");

    // The select histogram saw exactly this statement.
    assert_eq!(delta.statement_latency(StatementKind::Select).count, 1);
    assert_eq!(delta.api.statements_executed, 1);
}

// ---------------------------------------------------------------------
// Metrics registry
// ---------------------------------------------------------------------

const DDL: &str = "
    CREATE ATOM_TYPE thing (id: IDENTIFIER, n: INTEGER, s: CHAR_VAR)
    KEYS_ARE (n);
";

#[test]
fn render_text_exposes_all_five_statement_kinds() {
    let db = Prima::builder().build_with_ddl(DDL).expect("build");
    let s = db.session();
    s.execute("INSERT thing (n: 1, s: 'a')").expect("insert");
    s.execute("MODIFY thing SET s = 'b' WHERE n = 1").expect("modify");
    s.execute("DELETE FROM thing WHERE n = 1").expect("delete");
    s.commit().expect("commit");
    s.query("SELECT ALL FROM thing", &QueryOptions::default()).expect("select");

    let text = db.metrics().render_text();
    for kind in StatementKind::ALL {
        let label = kind.label();
        assert!(
            text.contains(&format!("prima_statement_latency_count{{kind=\"{label}\"}} 1")),
            "missing count=1 for {label} in:\n{text}"
        );
        for q in ["0.5", "0.95", "0.99", "max"] {
            assert!(
                text.contains(&format!("prima_statement_latency_ns{{kind=\"{label}\",quantile=\"{q}\"}}")),
                "missing quantile {q} for {label}"
            );
        }
    }
    // Every counter family renders under its prefix.
    for family in ["buffer", "io", "access", "lock", "version", "api"] {
        assert!(text.contains(&format!("prima_{family}_")), "family {family} missing");
    }
}

#[test]
fn coherence_invariants_hold_after_mixed_workload() {
    let db = brep_db();
    let s = db.session();
    s.execute("INSERT solid (solid_no: 777)").expect("insert");
    s.commit().expect("commit");
    s.query("SELECT ALL FROM brep-face-edge-point WHERE brep_no = 1", &QueryOptions::default())
        .expect("select");
    drop(s);
    db.metrics().check_coherence().expect("quiesced kernel must be coherent");
}

#[test]
fn api_counters_track_statements_and_cursor_fetches() {
    let db = brep_db();
    let before = db.api_stats().snapshot();

    let s = db.session();
    s.execute("INSERT solid (solid_no: 901)").expect("insert");
    s.commit().expect("commit");
    s.query("SELECT ALL FROM solid WHERE solid_no = 901", &QueryOptions::default())
        .expect("select");
    drop(s);

    let mut cursor = db.query_cursor("SELECT ALL FROM solid").expect("cursor");
    cursor.fetch(2).expect("fetch");
    cursor.fetch_all().expect("fetch_all");
    drop(cursor);

    let d = db.api_stats().snapshot().since(&before);
    // INSERT + SELECT; the commit and the fetches are not statements.
    assert_eq!(d.statements_executed, 2);
    assert_eq!(d.cursor_fetches, 2);
}

// ---------------------------------------------------------------------
// Slow-statement log
// ---------------------------------------------------------------------

#[test]
fn zero_threshold_captures_every_statement() {
    let db = Prima::builder()
        .slow_statement_threshold(Duration::ZERO)
        .slow_log_capacity(16)
        .build_with_ddl(DDL)
        .expect("build");

    let s = db.session();
    // The threshold force-enables profiling without set_profiling.
    assert!(s.profiling_enabled());
    s.execute("INSERT thing (n: 1, s: 'a')").expect("insert");
    s.execute("INSERT thing (n: 2, s: 'b')").expect("insert");
    s.commit().expect("commit");
    s.query("SELECT ALL FROM thing", &QueryOptions::default()).expect("select");

    // 2 INSERTs + 1 COMMIT + 1 SELECT, in order.
    let slow = db.slow_statements();
    assert_eq!(slow.len(), 4, "threshold 0 keeps every statement");
    assert_eq!(slow[0].kind, StatementKind::Insert);
    assert_eq!(slow[2].kind, StatementKind::Commit);
    assert_eq!(slow[3].kind, StatementKind::Select);
    for p in &slow {
        p.validate().unwrap_or_else(|e| panic!("{e}\n{}", p.render()));
    }

    // last_profile tracks the most recent statement on the session.
    let last = s.last_profile().expect("profiling on");
    assert_eq!(last.kind, StatementKind::Select);
    assert_eq!(last.statement, "SELECT ALL FROM thing");
}

#[test]
fn slow_log_ring_evicts_oldest() {
    let db = Prima::builder()
        .slow_statement_threshold(Duration::ZERO)
        .slow_log_capacity(3)
        .build_with_ddl(DDL)
        .expect("build");
    let s = db.session();
    for n in 0..5 {
        s.execute(&format!("INSERT thing (n: {n}, s: 'x')")).expect("insert");
    }
    s.commit().expect("commit");
    let slow = db.slow_statements();
    assert_eq!(slow.len(), 3);
    // Oldest evicted: the survivors are INSERT n=3, n=4, COMMIT.
    assert_eq!(slow[0].statement, "INSERT thing (n: 3, s: 'x')");
    assert_eq!(slow[2].kind, StatementKind::Commit);
}

#[test]
fn unprofiled_sessions_leave_no_profile() {
    let db = Prima::builder().build_with_ddl(DDL).expect("build");
    let s = db.session();
    assert!(!s.profiling_enabled());
    s.execute("INSERT thing (n: 1, s: 'a')").expect("insert");
    s.commit().expect("commit");
    assert!(s.last_profile().is_none());
    assert!(db.slow_statements().is_empty());
    // The histograms still recorded both statements.
    let m = db.metrics();
    assert_eq!(m.statement_latency(StatementKind::Insert).count, 1);
    assert_eq!(m.statement_latency(StatementKind::Commit).count, 1);
}
