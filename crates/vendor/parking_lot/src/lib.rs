//! Minimal API-compatible stand-in for the `parking_lot` crate, backed by
//! `std::sync`. The build environment has no crates.io access, so the
//! workspace vendors the narrow surface the kernel uses:
//!
//! * [`Mutex`] / [`RwLock`] with panic-free (`lock()`/`read()`/`write()`)
//!   guards — poisoning is swallowed, matching parking_lot semantics;
//! * owning (`'static`) guards via [`RwLock::read_arc`]/[`RwLock::write_arc`],
//!   used by the buffer manager to hand out page guards detached from the
//!   pool borrow;
//! * [`Condvar`] with parking_lot's in-place `wait`/`wait_for` signatures
//!   (the guard is re-acquired into the same `&mut` binding), used by the
//!   lock manager to park waiters;
//! * the [`lock_api`] guard type names the kernel imports.
//!
//! Performance is whatever `std::sync` provides; semantics are what the
//! callers rely on.
//!
//! # Lock-rank enforcement (debug builds / `lockrank` feature)
//!
//! The kernel's latch hierarchy (see [`rank`] and the canonical table in
//! `crates/lint/src/ranks.rs`) is enforced dynamically: a lock built with
//! [`Mutex::new_ranked`] / [`RwLock::new_ranked`] registers its rank on a
//! thread-local acquisition stack when locked, and acquiring a rank
//! *lower* than one already held panics with the full held stack — so the
//! crash-fuzz matrix and the contention suite double as lock-order model
//! checks. Equal ranks are allowed (peer latches such as buffer frames
//! are acquired in data-dependent order but only transiently).
//!
//! The tracking exists only under `debug_assertions` or the `lockrank`
//! feature: release builds compile ranked locks down to the exact same
//! layout and code as unranked ones (pinned by
//! `release_build_has_zero_rank_overhead`), and [`Mutex::new`] stays
//! usable in `const` context either way.

use std::sync::Arc;

pub mod rank {
    //! Canonical lock-rank domains, in legal acquisition order — the
    //! PRIMA Fig. 3.1 layer order, refined where one layer owns several
    //! locks. A thread may acquire a lock only while every lock it holds
    //! has a rank **≤** the new lock's rank.
    //!
    //! The authoritative copy of this table (domain names, numeric bases,
    //! and the `// lockrank: <domain>.<n>` source annotations the static
    //! checker consumes) lives in `crates/lint/src/ranks.rs`; a prima-lint
    //! unit test parses this module and asserts the two agree.

    /// Session / API surface (MAD interface layer).
    pub const API: u32 = 10;
    /// Transaction manager bookkeeping (checkpoint gate, active set).
    pub const TXN: u32 = 20;
    /// Granular lock table (data system).
    pub const LOCKTABLE: u32 = 30;
    /// MVCC version store (data system).
    pub const MVCC: u32 = 40;
    /// Access system structures (address tables, trees, record files).
    pub const ACCESS: u32 = 50;
    /// Page buffer (shard latches, then frame locks).
    pub const BUFFER: u32 = 60;
    /// WAL group-commit coordinator.
    pub const WAL_GROUP: u32 = 70;
    /// WAL device-append serialisation, then the group append buffer.
    pub const WAL_IO: u32 = 80;
    /// Storage-system directory (segment catalog).
    pub const STORAGE: u32 = 90;
    /// Observability registries (slow log, scratch pools).
    pub const OBS: u32 = 100;
    /// Block-device internals (the leaf domain; exempt from the
    /// "no lock across device I/O" lint rule — these locks *are* the
    /// device).
    pub const DEVICE: u32 = 110;
}

#[cfg(any(debug_assertions, feature = "lockrank"))]
mod rankcheck {
    use std::cell::RefCell;

    thread_local! {
        static HELD: RefCell<Vec<u32>> = const { RefCell::new(Vec::new()) };
    }

    /// Panics if acquiring `rank` would invert the hierarchy, then
    /// records it as held.
    pub(crate) fn acquired(rank: u32) {
        HELD.with(|h| {
            let mut h = h.borrow_mut();
            if let Some(&max) = h.iter().max() {
                assert!(
                    rank >= max,
                    "lock rank inversion: acquiring rank {rank} while holding {:?} \
                     (highest {max}); legal order is parking_lot::rank / \
                     crates/lint/src/ranks.rs",
                    *h
                );
            }
            h.push(rank);
        });
    }

    /// Removes one held entry of `rank` (locks may be released in any
    /// order, so this is not a strict stack pop).
    pub(crate) fn released(rank: u32) {
        HELD.with(|h| {
            let mut h = h.borrow_mut();
            if let Some(i) = h.iter().rposition(|&r| r == rank) {
                h.remove(i);
            }
        });
    }

    /// RAII holder for one acquisition's rank entry. Lives inside every
    /// guard type; dropping the guard (in any order) retires the entry.
    #[derive(Debug)]
    pub(crate) struct RankToken {
        rank: Option<u32>,
    }

    impl RankToken {
        /// Checks + records `rank` (None: unranked lock, no tracking).
        pub(crate) fn acquire(rank: Option<u32>) -> RankToken {
            if let Some(r) = rank {
                acquired(r);
            }
            RankToken { rank }
        }
    }

    impl Drop for RankToken {
        fn drop(&mut self) {
            if let Some(r) = self.rank {
                released(r);
            }
        }
    }

    /// The current thread's held ranks, oldest first (diagnostics).
    pub fn held_ranks() -> Vec<u32> {
        HELD.with(|h| h.borrow().clone())
    }
}

#[cfg(any(debug_assertions, feature = "lockrank"))]
pub use rankcheck::held_ranks;

/// Raw lock marker type (type-level compatibility only).
pub struct RawRwLock {
    _private: (),
}

/// Raw mutex marker type (type-level compatibility only).
pub struct RawMutex {
    _private: (),
}

// ---------------------------------------------------------------------------
// Mutex
// ---------------------------------------------------------------------------

pub struct Mutex<T: ?Sized> {
    #[cfg(any(debug_assertions, feature = "lockrank"))]
    rank: Option<u32>,
    inner: std::sync::Mutex<T>,
}

/// Guard wrapper: identical to `std::sync::MutexGuard` in release builds;
/// in rank-checked builds it additionally retires the lock's rank entry on
/// drop. The rank token is declared first so it drops before the lock is
/// released — the entry never outlives the hold.
pub struct MutexGuard<'a, T: ?Sized> {
    #[cfg(any(debug_assertions, feature = "lockrank"))]
    _rank: rankcheck::RankToken,
    inner: std::sync::MutexGuard<'a, T>,
}

impl<'a, T: ?Sized> std::ops::Deref for MutexGuard<'a, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<'a, T: ?Sized> std::ops::DerefMut for MutexGuard<'a, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

impl<'a, T: ?Sized + std::fmt::Debug> std::fmt::Debug for MutexGuard<'a, T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        std::fmt::Debug::fmt(&**self, f)
    }
}

impl<T> Mutex<T> {
    pub const fn new(t: T) -> Self {
        Mutex {
            #[cfg(any(debug_assertions, feature = "lockrank"))]
            rank: None,
            inner: std::sync::Mutex::new(t),
        }
    }

    /// A mutex participating in lock-rank enforcement (see module docs).
    /// In release builds without the `lockrank` feature this is exactly
    /// [`Mutex::new`].
    #[cfg(any(debug_assertions, feature = "lockrank"))]
    pub const fn new_ranked(t: T, rank: u32) -> Self {
        Mutex { rank: Some(rank), inner: std::sync::Mutex::new(t) }
    }

    /// See the rank-checked variant; tracking is compiled out here.
    #[cfg(not(any(debug_assertions, feature = "lockrank")))]
    pub const fn new_ranked(t: T, _rank: u32) -> Self {
        Mutex { inner: std::sync::Mutex::new(t) }
    }

    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(t) => t,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    #[cfg(any(debug_assertions, feature = "lockrank"))]
    fn rank_of(&self) -> Option<u32> {
        self.rank
    }

    /// Acquires the mutex, ignoring poison (parking_lot has no poisoning).
    pub fn lock(&self) -> MutexGuard<'_, T> {
        let g = match self.inner.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        };
        MutexGuard {
            #[cfg(any(debug_assertions, feature = "lockrank"))]
            _rank: rankcheck::RankToken::acquire(self.rank_of()),
            inner: g,
        }
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        let g = match self.inner.try_lock() {
            Ok(g) => g,
            Err(std::sync::TryLockError::Poisoned(p)) => p.into_inner(),
            Err(std::sync::TryLockError::WouldBlock) => return None,
        };
        Some(MutexGuard {
            // try_lock never blocks, so it cannot deadlock — but holding
            // the lock still constrains later acquisitions, so the rank
            // is recorded (and checked) all the same.
            #[cfg(any(debug_assertions, feature = "lockrank"))]
            _rank: rankcheck::RankToken::acquire(self.rank_of()),
            inner: g,
        })
    }

    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(t) => t,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: ?Sized + std::fmt::Debug> std::fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.try_lock() {
            Some(g) => f.debug_struct("Mutex").field("data", &&*g).finish(),
            None => f.debug_struct("Mutex").field("data", &"<locked>").finish(),
        }
    }
}

// ---------------------------------------------------------------------------
// Condvar
// ---------------------------------------------------------------------------

/// Result of a timed wait, mirroring `parking_lot::WaitTimeoutResult`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WaitTimeoutResult {
    timed_out: bool,
}

impl WaitTimeoutResult {
    pub fn timed_out(&self) -> bool {
        self.timed_out
    }
}

/// Condition variable with parking_lot's guard-in-place API: `wait*` take
/// `&mut MutexGuard` and re-acquire into the same binding instead of
/// consuming/returning the guard as `std` does.
///
/// As with `std::sync::Condvar`, every guard passed to one `Condvar` must
/// come from the same `Mutex`.
///
/// Rank note: a parked waiter keeps its mutex's rank entry on the
/// acquisition stack even though the lock is released while parked. The
/// parked thread acquires nothing in that window, so the conservative
/// accounting cannot produce a false inversion on this thread — and the
/// entry is accurate again the moment the wait returns.
#[derive(Debug, Default)]
pub struct Condvar {
    inner: std::sync::Condvar,
}

impl Condvar {
    pub const fn new() -> Self {
        Condvar { inner: std::sync::Condvar::new() }
    }

    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    pub fn notify_all(&self) {
        self.inner.notify_all();
    }

    /// Blocks until notified, releasing the mutex while parked.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        self.replace_guard(guard, |g| match self.inner.wait(g) {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        });
    }

    /// Blocks until notified or `timeout` elapses.
    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: std::time::Duration,
    ) -> WaitTimeoutResult {
        let mut timed_out = false;
        self.replace_guard(guard, |g| {
            let (g, res) = match self.inner.wait_timeout(g, timeout) {
                Ok(pair) => pair,
                Err(p) => p.into_inner(),
            };
            timed_out = res.timed_out();
            g
        });
        WaitTimeoutResult { timed_out }
    }

    /// Moves the *inner* std guard out of `slot`, runs `f` (which consumes
    /// it and returns the re-acquired guard), and moves the result back
    /// in. The wrapper's rank token stays in place throughout — see the
    /// type-level rank note.
    fn replace_guard<'a, T>(
        &self,
        slot: &mut MutexGuard<'a, T>,
        f: impl FnOnce(std::sync::MutexGuard<'a, T>) -> std::sync::MutexGuard<'a, T>,
    ) {
        // SAFETY: `ptr::read` duplicates the inner guard; `f` consumes
        // that duplicate (std's wait drops it while parked and hands back
        // a fresh one), and `ptr::write` installs the replacement without
        // dropping the moved-out original. `f` must not panic between the
        // read and the write — std's wait only panics when the guard
        // belongs to a different mutex, which this shim's callers never
        // do.
        unsafe {
            let g = std::ptr::read(&slot.inner);
            let g = f(g);
            std::ptr::write(&mut slot.inner, g);
        }
    }
}

// ---------------------------------------------------------------------------
// RwLock
// ---------------------------------------------------------------------------

/// RwLock whose state lives behind an `Arc` so owning (`'static`) guards can
/// be produced without unsafe self-references in callers.
pub struct RwLock<T> {
    inner: Arc<std::sync::RwLock<T>>,
    #[cfg(any(debug_assertions, feature = "lockrank"))]
    rank: Option<u32>,
}

/// Shared-guard wrapper; see [`MutexGuard`] for the rank-token layout.
pub struct RwLockReadGuard<'a, T> {
    #[cfg(any(debug_assertions, feature = "lockrank"))]
    _rank: rankcheck::RankToken,
    inner: std::sync::RwLockReadGuard<'a, T>,
}

/// Exclusive-guard wrapper; see [`MutexGuard`] for the rank-token layout.
pub struct RwLockWriteGuard<'a, T> {
    #[cfg(any(debug_assertions, feature = "lockrank"))]
    _rank: rankcheck::RankToken,
    inner: std::sync::RwLockWriteGuard<'a, T>,
}

impl<'a, T> std::ops::Deref for RwLockReadGuard<'a, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<'a, T> std::ops::Deref for RwLockWriteGuard<'a, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<'a, T> std::ops::DerefMut for RwLockWriteGuard<'a, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

impl<'a, T: std::fmt::Debug> std::fmt::Debug for RwLockReadGuard<'a, T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        std::fmt::Debug::fmt(&**self, f)
    }
}

impl<'a, T: std::fmt::Debug> std::fmt::Debug for RwLockWriteGuard<'a, T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        std::fmt::Debug::fmt(&**self, f)
    }
}

impl<T> RwLock<T> {
    pub fn new(t: T) -> Self {
        RwLock {
            inner: Arc::new(std::sync::RwLock::new(t)),
            #[cfg(any(debug_assertions, feature = "lockrank"))]
            rank: None,
        }
    }

    /// An rwlock participating in lock-rank enforcement (see module
    /// docs). In release builds without the `lockrank` feature this is
    /// exactly [`RwLock::new`].
    pub fn new_ranked(t: T, rank: u32) -> Self {
        let _ = rank;
        RwLock {
            inner: Arc::new(std::sync::RwLock::new(t)),
            #[cfg(any(debug_assertions, feature = "lockrank"))]
            rank: Some(rank),
        }
    }

    #[cfg(any(debug_assertions, feature = "lockrank"))]
    fn rank_of(&self) -> Option<u32> {
        self.rank
    }

    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        let g = match self.inner.read() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        };
        RwLockReadGuard {
            #[cfg(any(debug_assertions, feature = "lockrank"))]
            _rank: rankcheck::RankToken::acquire(self.rank_of()),
            inner: g,
        }
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        let g = match self.inner.write() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        };
        RwLockWriteGuard {
            #[cfg(any(debug_assertions, feature = "lockrank"))]
            _rank: rankcheck::RankToken::acquire(self.rank_of()),
            inner: g,
        }
    }

    /// Shared guard that owns a reference to the lock (usable beyond the
    /// borrow of `self`, as parking_lot's `arc_lock` feature provides).
    pub fn read_arc(&self) -> lock_api::ArcRwLockReadGuard<RawRwLock, T>
    where
        T: 'static,
    {
        lock_api::ArcRwLockReadGuard::new(
            Arc::clone(&self.inner),
            #[cfg(any(debug_assertions, feature = "lockrank"))]
            self.rank,
        )
    }

    /// Exclusive owning guard; see [`RwLock::read_arc`].
    pub fn write_arc(&self) -> lock_api::ArcRwLockWriteGuard<RawRwLock, T>
    where
        T: 'static,
    {
        lock_api::ArcRwLockWriteGuard::new(
            Arc::clone(&self.inner),
            #[cfg(any(debug_assertions, feature = "lockrank"))]
            self.rank,
        )
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> Self {
        RwLock::new(T::default())
    }
}

impl<T: std::fmt::Debug> std::fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.inner.try_read() {
            Ok(g) => f.debug_struct("RwLock").field("data", &&*g).finish(),
            Err(_) => f.debug_struct("RwLock").field("data", &"<locked>").finish(),
        }
    }
}

pub mod lock_api {
    //! Owning guard types compatible with `lock_api`'s `Arc*Guard` names.

    #[cfg(any(debug_assertions, feature = "lockrank"))]
    use super::rankcheck;
    use std::marker::PhantomData;
    use std::ops::{Deref, DerefMut};
    use std::sync::Arc;

    /// Shared guard owning its lock. The `'static` guard borrows data that
    /// lives on the `Arc` heap allocation it also owns; the guard field is
    /// declared before the Arc so it drops first.
    pub struct ArcRwLockReadGuard<R, T: 'static> {
        #[cfg(any(debug_assertions, feature = "lockrank"))]
        _rank: rankcheck::RankToken,
        // SAFETY invariant: `guard` borrows from the RwLock inside `_lock`;
        // declaration order guarantees the guard is released before the Arc.
        guard: Option<std::sync::RwLockReadGuard<'static, T>>,
        _lock: Arc<std::sync::RwLock<T>>,
        _raw: PhantomData<R>,
    }

    impl<R, T: 'static> ArcRwLockReadGuard<R, T> {
        pub(crate) fn new(
            lock: Arc<std::sync::RwLock<T>>,
            #[cfg(any(debug_assertions, feature = "lockrank"))] rank: Option<u32>,
        ) -> Self {
            let g = match lock.read() {
                Ok(g) => g,
                Err(p) => p.into_inner(),
            };
            // SAFETY: the referent lives on the Arc's heap allocation, which
            // this struct keeps alive for at least as long as the guard; the
            // guard never leaves the struct.
            let g: std::sync::RwLockReadGuard<'static, T> =
                unsafe { std::mem::transmute(g) };
            ArcRwLockReadGuard {
                #[cfg(any(debug_assertions, feature = "lockrank"))]
                _rank: rankcheck::RankToken::acquire(rank),
                guard: Some(g),
                _lock: lock,
                _raw: PhantomData,
            }
        }
    }

    impl<R, T: 'static> Deref for ArcRwLockReadGuard<R, T> {
        type Target = T;
        fn deref(&self) -> &T {
            self.guard.as_ref().expect("guard alive")
        }
    }

    impl<R, T: 'static> Drop for ArcRwLockReadGuard<R, T> {
        fn drop(&mut self) {
            self.guard.take();
        }
    }

    /// Exclusive guard owning its lock; see [`ArcRwLockReadGuard`].
    pub struct ArcRwLockWriteGuard<R, T: 'static> {
        #[cfg(any(debug_assertions, feature = "lockrank"))]
        _rank: rankcheck::RankToken,
        guard: Option<std::sync::RwLockWriteGuard<'static, T>>,
        _lock: Arc<std::sync::RwLock<T>>,
        _raw: PhantomData<R>,
    }

    impl<R, T: 'static> ArcRwLockWriteGuard<R, T> {
        pub(crate) fn new(
            lock: Arc<std::sync::RwLock<T>>,
            #[cfg(any(debug_assertions, feature = "lockrank"))] rank: Option<u32>,
        ) -> Self {
            let g = match lock.write() {
                Ok(g) => g,
                Err(p) => p.into_inner(),
            };
            // SAFETY: as for ArcRwLockReadGuard.
            let g: std::sync::RwLockWriteGuard<'static, T> =
                unsafe { std::mem::transmute(g) };
            ArcRwLockWriteGuard {
                #[cfg(any(debug_assertions, feature = "lockrank"))]
                _rank: rankcheck::RankToken::acquire(rank),
                guard: Some(g),
                _lock: lock,
                _raw: PhantomData,
            }
        }
    }

    impl<R, T: 'static> Deref for ArcRwLockWriteGuard<R, T> {
        type Target = T;
        fn deref(&self) -> &T {
            self.guard.as_ref().expect("guard alive")
        }
    }

    impl<R, T: 'static> DerefMut for ArcRwLockWriteGuard<R, T> {
        fn deref_mut(&mut self) -> &mut T {
            self.guard.as_mut().expect("guard alive")
        }
    }

    impl<R, T: 'static> Drop for ArcRwLockWriteGuard<R, T> {
        fn drop(&mut self) {
            self.guard.take();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_round_trip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
    }

    #[test]
    fn condvar_wait_for_times_out_and_wakes() {
        use std::time::Duration;

        let m = Mutex::new(false);
        let cv = Condvar::new();
        // Timeout path: nobody notifies.
        let mut g = m.lock();
        let res = cv.wait_for(&mut g, Duration::from_millis(5));
        assert!(res.timed_out());
        assert!(!*g);
        drop(g);

        // Wakeup path: a thread flips the flag and notifies.
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = Arc::clone(&pair);
        let h = std::thread::spawn(move || {
            let (m, cv) = &*p2;
            *m.lock() = true;
            cv.notify_all();
        });
        let (m, cv) = &*pair;
        let mut g = m.lock();
        while !*g {
            let res = cv.wait_for(&mut g, Duration::from_secs(5));
            assert!(!res.timed_out(), "missed wakeup");
        }
        h.join().unwrap();
    }

    #[test]
    fn rwlock_shared_and_exclusive() {
        let l = RwLock::new(vec![1, 2]);
        assert_eq!(l.read().len(), 2);
        l.write().push(3);
        assert_eq!(l.read().len(), 3);
    }

    #[test]
    fn arc_guards_outlive_borrow() {
        let l = Arc::new(RwLock::new(5));
        let g = {
            let borrowed = Arc::clone(&l);
            borrowed.read_arc()
        };
        assert_eq!(*g, 5);
        drop(g);
        *l.write_arc() = 6;
        assert_eq!(*l.read(), 6);
    }

    #[test]
    fn write_arc_releases_on_drop() {
        let l = RwLock::new(0u32);
        {
            let mut g = l.write_arc();
            *g = 9;
        }
        assert_eq!(*l.read(), 9);
    }

    // -- lock-rank enforcement ---------------------------------------------

    /// The acceptance-criterion test: an intentionally inverted two-mutex
    /// acquisition must panic under the debug rank enforcer.
    #[cfg(any(debug_assertions, feature = "lockrank"))]
    #[test]
    fn rank_inversion_panics() {
        let low = Arc::new(Mutex::new_ranked(1u32, rank::TXN));
        let high = Arc::new(Mutex::new_ranked(2u32, rank::WAL_IO));
        let (l2, h2) = (Arc::clone(&low), Arc::clone(&high));
        let inverted = std::thread::spawn(move || {
            let _h = h2.lock(); // WAL_IO (80) first …
            let _l = l2.lock(); // … then TXN (20): inversion, must panic.
        })
        .join();
        assert!(inverted.is_err(), "inverted acquisition did not panic");
        // The panicking thread's stack is its own; this thread is clean
        // and the legal order still works.
        let _l = low.lock();
        let _h = high.lock();
    }

    #[cfg(any(debug_assertions, feature = "lockrank"))]
    #[test]
    fn legal_orders_do_not_panic() {
        let a = Mutex::new_ranked(0u8, rank::BUFFER);
        let b = Mutex::new_ranked(0u8, rank::BUFFER); // equal ranks allowed
        let c = RwLock::new_ranked(0u8, rank::WAL_IO + 1);
        {
            let _ga = a.lock();
            let _gb = b.lock();
            let _gc = c.write();
            // Out-of-order *release* is fine.
            drop(_ga);
            drop(_gc);
        }
        assert!(held_ranks().is_empty(), "all entries retired");
        // Re-acquiring after release is not an inversion.
        let _gc = c.read();
        let unranked = Mutex::new(0u8);
        let _g = unranked.lock(); // unranked: never tracked
        assert_eq!(held_ranks(), vec![rank::WAL_IO + 1]);
    }

    #[cfg(any(debug_assertions, feature = "lockrank"))]
    #[test]
    fn arc_guards_carry_ranks() {
        let l = Arc::new(RwLock::new_ranked(5u32, rank::BUFFER + 1));
        let g = l.read_arc();
        assert_eq!(held_ranks(), vec![rank::BUFFER + 1]);
        drop(g);
        let g = l.write_arc();
        assert_eq!(held_ranks(), vec![rank::BUFFER + 1]);
        drop(g);
        assert!(held_ranks().is_empty());
    }

    #[cfg(any(debug_assertions, feature = "lockrank"))]
    #[test]
    fn condvar_wait_keeps_rank_entry() {
        use std::time::Duration;
        let m = Mutex::new_ranked(false, rank::LOCKTABLE);
        let cv = Condvar::new();
        let mut g = m.lock();
        assert_eq!(held_ranks(), vec![rank::LOCKTABLE]);
        let _ = cv.wait_for(&mut g, Duration::from_millis(2));
        assert_eq!(held_ranks(), vec![rank::LOCKTABLE], "entry survives the park");
        drop(g);
        assert!(held_ranks().is_empty());
    }

    /// Release builds without the `lockrank` feature must compile the
    /// tracking out to nothing: ranked and unranked locks share one
    /// layout, and guards are exactly as large as their std equivalents.
    #[cfg(not(any(debug_assertions, feature = "lockrank")))]
    #[test]
    fn release_build_has_zero_rank_overhead() {
        use std::mem::size_of;
        assert_eq!(size_of::<Mutex<u64>>(), size_of::<std::sync::Mutex<u64>>());
        assert_eq!(
            size_of::<MutexGuard<'static, u64>>(),
            size_of::<std::sync::MutexGuard<'static, u64>>()
        );
        assert_eq!(
            size_of::<RwLockReadGuard<'static, u64>>(),
            size_of::<std::sync::RwLockReadGuard<'static, u64>>()
        );
        assert_eq!(
            size_of::<RwLockWriteGuard<'static, u64>>(),
            size_of::<std::sync::RwLockWriteGuard<'static, u64>>()
        );
    }
}
