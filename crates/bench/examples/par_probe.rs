//! Diagnostic: raw `read_atom` thread-scaling probe (used to verify that
//! the kernel's shared structures do not serialise parallel DUs beyond
//! what the host's CPU count dictates).

use prima_workloads::brep::{self, BrepConfig};
use std::time::Instant;

fn main() {
    let db = brep::open_db(64 << 20).unwrap();
    brep::populate(&db, &BrepConfig::with_solids(300)).unwrap();
    let t = db.schema().type_id("point").unwrap();
    let ids = db.access().all_ids(t).unwrap();
    // warm
    for id in &ids { let _ = db.read(*id).unwrap(); }
    let reps = 40usize;
    let t0 = Instant::now();
    for _ in 0..reps { for id in &ids { let _ = db.read(*id).unwrap(); } }
    let serial = t0.elapsed();
    println!("serial: {:?} for {} reads", serial, reps*ids.len());
    for threads in [2usize,4,8] {
        let t0 = Instant::now();
        std::thread::scope(|s| {
            for k in 0..threads {
                let ids = &ids; let db = &db;
                s.spawn(move || {
                    for _ in 0..reps/threads { for id in ids { let _ = db.read(*id).unwrap(); } }
                    let _ = k;
                });
            }
        });
        let e = t0.elapsed();
        println!("{} threads: {:?} speedup {:.2}", threads, e, serial.as_secs_f64()/e.as_secs_f64());
    }
}
