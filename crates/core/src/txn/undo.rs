//! Undo log entries for selective in-transaction recovery.
//!
//! "…a flexible transaction concept … which should also focus on fine
//! grained intra-transaction parallelism and selective in-transaction
//! recovery in various failure events" (Section 4). Undo is *logical*:
//! each entry stores the inverse operation; back-references regenerate
//! through the access system's own integrity maintenance when the inverse
//! is applied, so sibling subtransactions' work is untouched.

use prima_access::{AccessError, AccessSystem, Atom};
use prima_mad::value::{AtomId, Value};

/// One logical undo entry.
#[derive(Debug, Clone)]
pub enum UndoOp {
    /// Inverse of insert: delete the atom.
    UndoInsert { id: AtomId },
    /// Inverse of modify: restore the old attribute values.
    UndoModify { id: AtomId, old: Vec<(usize, Value)> },
    /// Inverse of delete: restore the atom with its old values (and
    /// thereby its outgoing references; back-references follow).
    UndoDelete { atom: Atom },
}

impl UndoOp {
    /// Applies the inverse operation.
    pub fn apply(&self, sys: &AccessSystem) -> Result<(), AccessError> {
        match self {
            UndoOp::UndoInsert { id } => {
                if sys.exists(*id) {
                    sys.delete_atom(*id)?;
                }
                Ok(())
            }
            UndoOp::UndoModify { id, old } => {
                if sys.exists(*id) {
                    sys.modify_atom(*id, old)?;
                }
                Ok(())
            }
            UndoOp::UndoDelete { atom } => {
                // Drop references to atoms that no longer exist (they may
                // have been deleted by the same aborting transaction and
                // restored later in the reverse replay — in that case the
                // later restore re-adds the back-reference symmetrically).
                let mut values = atom.values.clone();
                for v in values.iter_mut() {
                    match v {
                        Value::Ref(Some(t)) if !sys.exists(*t) => *v = Value::Ref(None),
                        Value::RefSet(ids) => ids.retain(|t| sys.exists(*t)),
                        _ => {}
                    }
                }
                sys.restore_atom(Atom::new(atom.id, values))?;
                Ok(())
            }
        }
    }
}
