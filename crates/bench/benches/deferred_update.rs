//! E-DEF — Section 3.2: deferred update. "During an update operation only
//! one physical record is modified whereas all others are modified
//! later." Immediate vs deferred maintenance under r redundant copies:
//! update latency should stay flat under deferral and grow with r under
//! immediate maintenance.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use prima::{Prima, UpdatePolicy, Value};
use prima_bench::report;
use std::sync::atomic::Ordering;

const DDL: &str = "
CREATE ATOM_TYPE item
  ( id : IDENTIFIER, item_no : INTEGER, a : INTEGER, b : INTEGER,
    c : CHAR_VAR )
KEYS_ARE (item_no);
";

/// Builds a database whose items carry `r` redundant copies (r sort
/// orders — each holds a full atom copy).
fn build(r: usize) -> Prima {
    let db = Prima::builder().buffer_bytes(32 << 20).build_with_ddl(DDL).unwrap();
    for i in 0..2000i64 {
        db.insert(
            "item",
            &[
                ("item_no", Value::Int(i)),
                ("a", Value::Int(i % 97)),
                ("b", Value::Int(i % 31)),
                ("c", Value::Str(format!("payload {i}"))),
            ],
        )
        .unwrap();
    }
    for k in 0..r {
        // Alternate key attributes to make the sort orders distinct.
        let attr = if k % 2 == 0 { "a" } else { "b" };
        db.ldl(&format!("CREATE SORT ORDER so{k} ON item ({attr})")).unwrap();
    }
    db
}

fn records_touched_report() {
    for r in [1usize, 2, 4, 8] {
        for policy in [UpdatePolicy::Immediate, UpdatePolicy::Deferred] {
            let db = build(r);
            db.set_update_policy(policy);
            let t = db.schema().type_id("item").unwrap();
            let ids = db.access().all_ids(t).unwrap();
            db.access().stats().reset();
            for (i, id) in ids.iter().take(200).enumerate() {
                db.modify(*id, &[("c", Value::Str(format!("updated {i}")))]).unwrap();
            }
            let written = db.access().stats().records_written.load(Ordering::Relaxed);
            let pending = db.access().deferred_queue().len();
            let series = format!("r={r} {policy:?}");
            report("DEF", &series, "records_written_sync", written);
            report("DEF", &series, "deferred_pending", pending);
        }
    }
}

fn bench_deferred(c: &mut Criterion) {
    records_touched_report();
    let mut g = c.benchmark_group("deferred_update");
    g.sample_size(10);
    for r in [1usize, 4, 8] {
        for policy in [UpdatePolicy::Immediate, UpdatePolicy::Deferred] {
            let db = build(r);
            db.set_update_policy(policy);
            let t = db.schema().type_id("item").unwrap();
            let ids = db.access().all_ids(t).unwrap();
            let label = format!("{policy:?}");
            let mut i = 0usize;
            g.bench_with_input(BenchmarkId::new(label, r), &r, |b, _| {
                b.iter(|| {
                    let id = ids[i % ids.len()];
                    i += 1;
                    db.modify(id, &[("c", Value::Str(format!("u{i}")))]).unwrap();
                })
            });
        }
    }
    // The read penalty after deferral: a sort scan over stale copies must
    // fall back to primary records until RECONCILE.
    let db = build(4);
    db.set_update_policy(UpdatePolicy::Deferred);
    let t = db.schema().type_id("item").unwrap();
    for id in db.access().all_ids(t).unwrap().iter().take(500) {
        db.modify(*id, &[("c", Value::Str("stale".into()))]).unwrap();
    }
    g.bench_function("sort_scan_with_stale_copies", |b| {
        use prima_access::scan::{Scan, SortScan};
        use std::ops::Bound;
        b.iter(|| {
            let mut s = SortScan::open(
                db.access(),
                t,
                &[2],
                prima_access::Ssa::True,
                Bound::Unbounded,
                Bound::Unbounded,
            )
            .unwrap();
            s.collect_remaining().unwrap()
        })
    });
    db.reconcile().unwrap();
    g.bench_function("sort_scan_after_reconcile", |b| {
        use prima_access::scan::{Scan, SortScan};
        use std::ops::Bound;
        b.iter(|| {
            let mut s = SortScan::open(
                db.access(),
                t,
                &[2],
                prima_access::Ssa::True,
                Bound::Unbounded,
                Bound::Unbounded,
            )
            .unwrap();
            s.collect_remaining().unwrap()
        })
    });
    g.finish();
}

criterion_group!(benches, bench_deferred);
criterion_main!(benches);
