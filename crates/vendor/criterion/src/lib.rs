//! Minimal stand-in for the `criterion` crate. The build environment has
//! no crates.io access, so this shim provides the macro/API shape the
//! bench harnesses use (`criterion_group!`, `criterion_main!`, benchmark
//! groups, `Bencher::iter`) with a simple wall-clock measurement loop:
//! warm-up iteration, then up to `sample_size` timed iterations bounded by
//! a per-benchmark time budget. Results are printed as
//! `bench: <group>/<id> ... <mean> ns/iter` lines; the experiment *shapes*
//! (who wins, by what factor) remain comparable even though confidence
//! intervals are not computed.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Per-benchmark wall-clock budget after warm-up.
const TIME_BUDGET: Duration = Duration::from_secs(3);

/// Identifier of one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId { name: format!("{}/{}", function_name.into(), parameter) }
    }

    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId { name: parameter.to_string() }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { name: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { name: s }
    }
}

/// Measurement driver handed to the bench closure.
pub struct Bencher {
    samples: usize,
    /// Mean ns/iter of the most recent `iter` call.
    last_mean_ns: f64,
}

impl Bencher {
    /// Runs `f` once to warm up, then samples it under the time budget and
    /// records the mean iteration time.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        black_box(f());
        let started = Instant::now();
        let mut timed = Duration::ZERO;
        let mut iters = 0u64;
        while iters < self.samples as u64 && started.elapsed() < TIME_BUDGET {
            let t0 = Instant::now();
            black_box(f());
            timed += t0.elapsed();
            iters += 1;
        }
        self.last_mean_ns = timed.as_nanos() as f64 / iters.max(1) as f64;
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut b = Bencher { samples: self.sample_size, last_mean_ns: 0.0 };
        f(&mut b);
        self.criterion.record(&self.name, &id.name, b.last_mean_ns);
        self
    }

    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher { samples: self.sample_size, last_mean_ns: 0.0 };
        f(&mut b, input);
        self.criterion.record(&self.name, &id.name, b.last_mean_ns);
        self
    }

    pub fn finish(self) {}
}

/// The harness entry object.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { criterion: self, name: name.into(), sample_size: 20 }
    }

    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher { samples: 20, last_mean_ns: 0.0 };
        f(&mut b);
        self.record("bench", name, b.last_mean_ns);
        self
    }

    fn record(&self, group: &str, id: &str, mean_ns: f64) {
        let pretty = if mean_ns >= 1e9 {
            format!("{:.3} s", mean_ns / 1e9)
        } else if mean_ns >= 1e6 {
            format!("{:.3} ms", mean_ns / 1e6)
        } else if mean_ns >= 1e3 {
            format!("{:.3} µs", mean_ns / 1e3)
        } else {
            format!("{mean_ns:.0} ns")
        };
        println!("bench: {group}/{id:<50} {pretty}/iter ({mean_ns:.0} ns)");
    }
}

/// Identity function opaque to the optimizer.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_and_records() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("shim");
        g.sample_size(3);
        let mut runs = 0;
        g.bench_function("counting", |b| {
            b.iter(|| {
                runs += 1;
            })
        });
        g.finish();
        assert!(runs >= 2, "warm-up + at least one sample, got {runs}");
    }

    #[test]
    fn benchmark_ids_format() {
        assert_eq!(BenchmarkId::new("fwd", 10).name, "fwd/10");
        assert_eq!(BenchmarkId::from_parameter("x").name, "x");
    }
}
