//! # prima-storage — the Storage System of the PRIMA kernel
//!
//! This crate implements the lowest layer of the PRIMA architecture
//! (Fig. 3.1 of the paper): the *storage system*, which maps **segments**,
//! **pages** and **page sequences** onto **files** and **blocks** of a
//! (simulated) disk.
//!
//! Key properties taken from Section 3.3 of the paper:
//!
//! * Segments are divided into pages of equal size, but — in contrast to
//!   conventional systems — the page size of each segment can be chosen
//!   among **1/2, 1, 2, 4 or 8 KByte** ([`PageSize`]). These are exactly the
//!   block sizes the underlying file manager supports, so the page↔block
//!   mapping is trivial.
//! * A single database **buffer** holds pages of *different* sizes. The
//!   well-known LRU algorithm is altered so that one pool can handle mixed
//!   page sizes ([`buffer::BufferManager`]); a statically partitioned pool
//!   ([`buffer::PartitionedBuffer`]) is provided as the baseline the paper
//!   argues against.
//! * **Page sequences** treat an arbitrary number of pages as a whole: one
//!   header page plus component pages, supported by a cluster mechanism of
//!   the file manager enabling optimal (chained) I/O ([`page_seq`]).
//!
//! The disk can be simulated ([`disk::SimDisk`]) or real
//! ([`file_disk::FileDisk`]): the paper ran on 1987 hardware via the INCAS
//! file manager \[Ne87\]; what its performance claims depend on are *I/O
//! counts, block sizes and contiguity*, all of which both backends measure
//! faithfully (see `DESIGN.md`, substitution table).
//!
//! ## Durability: where WAL and checkpoint sit in Fig. 3.1
//!
//! The paper's Fig. 3.1 layering ends at "files and blocks of the
//! (INCAS) file manager" and defers crash recovery to a later report.
//! The durability subsystem slots into that picture without moving any
//! interface:
//!
//! ```text
//!   access system            physical records          (prima-access)
//!   ─────────────────────── pages / page sequences ───────────────────
//!   storage system           segments · buffer · WAL   (this crate)
//!       │  fix/unfix          │ update-unfix appends a page image
//!       │  flush/evict        │ force-before-store (WAL-before-data)
//!       │  checkpoint()       │ flush + catalog snapshot + log truncate
//!   ─────────────────────── blocks · log area · meta blob ────────────
//!   file manager             [`BlockDevice`]: SimDisk | FileDisk
//! ```
//!
//! * The **log** ([`wal::Wal`]) is an append-only companion to the block
//!   files: LSN-stamped records (page after-images for physical redo,
//!   transaction brackets and logical-undo payloads from the layer
//!   above), group-appended and forced on commit. [`Wal::commit`] is the
//!   commit durability point and implements **cross-session group
//!   commit**: a committer appends its `TxnCommit` record and either
//!   *leads* — performs one device force covering every in-flight
//!   committer's records, lingering up to
//!   [`GroupCommitConfig::max_wait`] for commits already en route
//!   (capped at [`GroupCommitConfig::max_batch`]) — or *follows*, parked
//!   on a condvar until the published `flushed_lsn` covers its commit
//!   LSN. Either way `commit` returns `Ok` only after a device append
//!   covering the caller's record returned `Ok`, so N concurrent
//!   committers share one fsync instead of paying N; a lone committer
//!   never lingers and pays exactly one force. The device append itself
//!   happens *outside* the group-buffer mutex (a dedicated I/O lock
//!   keeps file order = LSN order), so sessions keep appending while a
//!   force is in flight. A failed force poisons the log — every later
//!   append and force fails fast until a checkpoint truncation heals it
//!   — because appending past a possibly-durable torn fragment would
//!   put records where replay can never see them.
//! * The **buffer** keeps a `recovery_lsn` per frame and enforces
//!   write-ahead on every flush and eviction (steal policy, no-force:
//!   commit forces only the log, never data pages).
//! * **Checkpoint** ([`segment::StorageSystem::checkpoint`]) flushes all
//!   dirty pages, snapshots the segment directory plus the caller's
//!   catalog into the device's metadata blob, and truncates the log —
//!   bounding restart work to the log tail.
//! * **Restart** is orchestrated one layer up (`Prima::open`): restore
//!   the directory from the snapshot, redo the log tail's page images,
//!   rebuild access-layer state by scanning, then roll back losers with
//!   the logged undo payloads.
//!
//! ## Fault model: acknowledged vs persisted image
//!
//! The durability claims above are *tested*, not asserted, against
//! [`fault_disk::FaultDisk`] — a [`BlockDevice`] wrapper around either
//! backend that distinguishes
//!
//! * the **acknowledged image** (what the kernel wrote and reads back
//!   while running: block writes sit in a modelled drive cache) from
//! * the **persisted image** (what survives a crash). Only a completed
//!   `sync` drains the cached block writes to the inner device;
//!   `wal_append` and `write_meta` are synchronous in the real backends
//!   and persist *their own payload* on return, nothing else.
//!
//! A seed-replayable [`fault_disk::FaultSchedule`] picks the crash point
//! (op count, Nth WAL force, Nth fsync) and the damage: at the crash,
//! each cached block independently survives or vanishes, the in-flight
//! operation persists a *prefix* (torn-write granularity: whole blocks
//! of a chained transfer, leading bytes of a single block merged over
//! the old contents, leading bytes of a WAL group append), and the torn
//! log fragment may additionally suffer bit rot (the replay-CRC path).
//! Completed barriers are honest — a lying fsync is unrecoverable for
//! any WAL scheme and is out of scope. The crash-consistency harness
//! (`tests/crash_consistency.rs`, `prima_workloads::crash`) drives
//! randomized transaction workloads over this wrapper and checks the
//! recovered database against a committed-prefix oracle.

pub mod buffer;
pub mod bytes;
pub mod disk;
pub mod error;
pub mod fault_disk;
pub mod file_disk;
pub mod page;
pub mod page_seq;
pub mod probe;
pub mod segment;
pub mod stats;
pub mod wal;

pub use buffer::{
    BufferManager, BufferStats, BufferStatsSnapshot, PageGuard, PartitionedBuffer,
    ReplacementPolicy,
};
pub use disk::{BlockAddr, BlockDevice, CostModel, SimDisk};
pub use error::{StorageError, StorageResult};
pub use fault_disk::{CrashPoint, FaultDisk, FaultSchedule};
pub use file_disk::FileDisk;
pub use page::{Page, PageId, PageSize, PageType, PAGE_HEADER_LEN};
pub use page_seq::{PageSeqHandle, PageSequence};
pub use segment::{Segment, SegmentId, SegmentMeta, StorageSystem};
pub use stats::{IoSnapshot, IoStats, StatsSnapshot};
pub use wal::{GroupCommitConfig, Lsn, Wal, WalPayload, WalRecord};
