//! The session-centric kernel API: prepared statements (parse/plan once,
//! bind + execute many), streaming molecule cursors (piecewise delivery),
//! and transactional sessions with explicit commit/rollback.

use prima::datasys::RootAccess;
use prima_workloads::exec;
use prima::{AssemblyMode, Prima, PrimaError, QueryOptions, Value};
use prima_workloads::brep::{self, BrepConfig};

fn brep_db(n: usize) -> Prima {
    let db = brep::open_db(16 << 20).expect("open");
    brep::populate(&db, &BrepConfig::with_solids(n)).expect("populate");
    db
}

// ---------------------------------------------------------------------
// Prepared statements
// ---------------------------------------------------------------------

#[test]
fn prepared_reexecution_matches_one_shot_query() {
    let db = brep_db(4);
    let session = db.session();
    let mut stmt = session
        .prepare("SELECT ALL FROM brep-face-edge-point WHERE brep_no = ?")
        .unwrap();
    for n in 1..=4i64 {
        stmt.bind(&[Value::Int(n)]).unwrap();
        let prepared = stmt.query(&QueryOptions::new().traced()).unwrap();
        let one_shot = exec::query(&db, &format!("SELECT ALL FROM brep-face-edge-point WHERE brep_no = {n}"))
            .unwrap();
        assert_eq!(prepared.set.molecules, one_shot.molecules, "brep_no = {n}");
        // Binding must not demote the plan: brep_no is KEYS_ARE, so the
        // bound comparison still routes to the direct key lookup.
        assert!(
            matches!(
                prepared.trace.as_ref().unwrap().root_access,
                RootAccess::KeyLookup { .. }
            ),
            "expected key lookup, got {:?}",
            prepared.trace.unwrap().root_access
        );
    }
}

#[test]
fn prepared_skips_parse_and_plan_on_reexecution() {
    let db = brep_db(3);
    let session = db.session();
    let before = db.api_stats().snapshot();
    let mut stmt = session
        .prepare("SELECT ALL FROM brep-face WHERE brep_no = ?")
        .unwrap();
    let after_prepare = db.api_stats().snapshot();
    assert_eq!(after_prepare.statements_parsed, before.statements_parsed + 1);
    assert_eq!(after_prepare.plans_built, before.plans_built + 1);

    stmt.bind(&[Value::Int(1)]).unwrap();
    for n in 1..=5i64 {
        stmt.bind(&[Value::Int(n % 3 + 1)]).unwrap();
        stmt.execute().unwrap();
    }
    let after_runs = db.api_stats().snapshot();
    assert_eq!(
        after_runs.statements_parsed,
        after_prepare.statements_parsed,
        "re-execution must not re-parse"
    );
    assert_eq!(
        after_runs.plans_built, after_prepare.plans_built,
        "re-execution must not re-plan"
    );
    assert_eq!(after_runs.plan_reuses, after_prepare.plan_reuses + 5);
}

#[test]
fn binding_arity_and_type_mismatches_error_cleanly() {
    let db = brep_db(2);
    let session = db.session();
    let mut stmt = session
        .prepare("SELECT ALL FROM brep-face WHERE brep_no = ? AND face.square_dim > ?")
        .unwrap();
    // Too few / too many values.
    assert!(matches!(
        stmt.bind(&[Value::Int(1)]),
        Err(PrimaError::BadStatement(_))
    ));
    assert!(matches!(
        stmt.bind(&[Value::Int(1), Value::Real(1.0), Value::Int(9)]),
        Err(PrimaError::BadStatement(_))
    ));
    // Wrong type for an INTEGER attribute.
    let err = stmt.bind(&[Value::Str("box".into()), Value::Real(1.0)]).err().unwrap();
    assert!(
        matches!(err, PrimaError::ParamTypeMismatch { slot: 0, .. }),
        "got {err:?}"
    );
    // Executing without a successful bind reports the unbound slot.
    assert!(matches!(
        stmt.execute(),
        Err(PrimaError::UnboundParameter { .. })
    ));
    // A correct binding then works.
    stmt.bind(&[Value::Int(1), Value::Real(0.0)]).unwrap();
    assert!(stmt.execute().is_ok());
}

#[test]
fn named_parameters_bind_by_name() {
    let db = brep_db(3);
    let session = db.session();
    let mut stmt = session
        .prepare("SELECT ALL FROM brep WHERE brep_no >= :lo AND brep_no <= :hi")
        .unwrap();
    assert_eq!(stmt.params().len(), 2);
    stmt.bind_named(&[("hi", Value::Int(2)), ("lo", Value::Int(1))]).unwrap();
    let r = stmt.query(&QueryOptions::default()).unwrap();
    assert_eq!(r.set.len(), 2);
    // Unknown names are rejected.
    assert!(matches!(
        stmt.bind_named(&[("nope", Value::Int(1)), ("hi", Value::Int(2))]),
        Err(PrimaError::BadStatement(_))
    ));
    // Missing names are reported as unbound.
    assert!(matches!(
        stmt.bind_named(&[("lo", Value::Int(1))]),
        Err(PrimaError::UnboundParameter { .. })
    ));
}

#[test]
fn prepared_dml_insert_with_parameters() {
    let db = brep_db(1);
    let session = db.session();
    let mut ins = session
        .prepare("INSERT solid (solid_no: ?, description: :d)")
        .unwrap();
    for (n, d) in [(9001i64, "first"), (9002, "second")] {
        ins.bind(&[Value::Int(n), Value::Str(d.into())]).unwrap();
        ins.execute().unwrap().dml().unwrap();
    }
    session.commit().unwrap();
    assert_eq!(exec::query(&db, "SELECT ALL FROM solid WHERE solid_no >= 9001").unwrap().len(), 2);
    // Type checking covers DML assignment positions too.
    assert!(matches!(
        ins.bind(&[Value::Str("oops".into()), Value::Str("d".into())]),
        Err(PrimaError::ParamTypeMismatch { slot: 0, .. })
    ));
}

#[test]
fn prepared_modify_binds_params_inside_connect_subqueries() {
    let db = brep_db(1);
    let session = db.session();
    exec::execute(&db, "INSERT solid (solid_no: 500, description: 'parent')").unwrap();
    exec::execute(&db, "INSERT solid (solid_no: 501, description: 'child')").unwrap();
    let mut conn = session
        .prepare(
            "MODIFY solid SET sub = CONNECT (SELECT ALL FROM solid WHERE solid_no = ?)
             WHERE solid_no = :t",
        )
        .unwrap();
    conn.bind_named(&[("?1", Value::Int(501)), ("t", Value::Int(500))]).unwrap();
    conn.execute().unwrap().dml().unwrap();
    session.commit().unwrap();
    let set = exec::query(&db, "SELECT ALL FROM solid.sub-solid WHERE solid_no = 500").unwrap();
    assert_eq!(
        set.molecules[0].atom_count(),
        2,
        "the CONNECT sub-query parameter must be substituted, actually connecting 501"
    );
}

#[test]
fn prepared_options_collapse_the_query_variants() {
    let db = brep_db(4);
    let session = db.session();
    let mut stmt =
        session.prepare("SELECT ALL FROM brep-face-edge WHERE brep_no >= ?").unwrap();
    stmt.bind(&[Value::Int(1)]).unwrap();
    let serial = stmt.query(&QueryOptions::default()).unwrap();
    let per_atom = stmt
        .query(&QueryOptions::new().assembly(AssemblyMode::PerAtom).traced())
        .unwrap();
    let parallel = stmt.query(&QueryOptions::new().threads(4)).unwrap();
    assert_eq!(serial.set.molecules, per_atom.set.molecules);
    assert_eq!(serial.set.molecules, parallel.set.molecules);
    assert!(per_atom.trace.is_some() && serial.trace.is_none());
    // threads: 0 is invalid everywhere, prepared included — and the
    // per-atom baseline cannot be combined with parallel DUs (which
    // always batch): rejected rather than silently running batched.
    assert!(matches!(
        stmt.query(&QueryOptions::new().threads(0)),
        Err(PrimaError::BadStatement(_))
    ));
    assert!(matches!(
        stmt.query(&QueryOptions::new().assembly(AssemblyMode::PerAtom).threads(4)),
        Err(PrimaError::BadStatement(_))
    ));
}

// ---------------------------------------------------------------------
// Sessions & transactions
// ---------------------------------------------------------------------

#[test]
fn session_rollback_undoes_dml() {
    let db = brep_db(2);
    let session = db.session();
    session.execute("INSERT solid (solid_no: 7777, description: 'doomed')").unwrap();
    // Read-your-own-writes before commit — through the writing session
    // itself (a different session would now rightly hit a lock conflict).
    assert_eq!(
        session
            .query("SELECT ALL FROM solid WHERE solid_no = 7777", &QueryOptions::default())
            .unwrap()
            .set
            .len(),
        1
    );
    session.rollback().unwrap();
    assert!(exec::query(&db, "SELECT ALL FROM solid WHERE solid_no = 7777").unwrap().is_empty());

    // Rollback also restores modified and deleted atoms.
    exec::execute(&db, "INSERT solid (solid_no: 8888, description: 'keeper')").unwrap();
    session.execute("MODIFY solid SET description = 'scribbled' WHERE solid_no = 8888").unwrap();
    session.execute("DELETE FROM solid WHERE solid_no = 8888").unwrap();
    assert!(session
        .query("SELECT ALL FROM solid WHERE solid_no = 8888", &QueryOptions::default())
        .unwrap()
        .set
        .is_empty());
    session.rollback().unwrap();
    let survived = exec::query(&db, "SELECT ALL FROM solid WHERE solid_no = 8888").unwrap();
    assert_eq!(survived.len(), 1);
    assert_eq!(
        survived.molecules[0].root.atom.values[2],
        Value::Str("keeper".into()),
        "modification rolled back alongside the delete"
    );
}

#[test]
fn session_commit_chains_transactions() {
    let db = brep_db(1);
    let session = db.session();
    session.execute("INSERT solid (solid_no: 100, description: 'a')").unwrap();
    session.commit().unwrap();
    // A fresh transaction begins lazily; rolling it back must not touch
    // the committed work.
    session.execute("INSERT solid (solid_no: 101, description: 'b')").unwrap();
    session.rollback().unwrap();
    assert_eq!(exec::query(&db, "SELECT ALL FROM solid WHERE solid_no = 100").unwrap().len(), 1);
    assert!(exec::query(&db, "SELECT ALL FROM solid WHERE solid_no = 101").unwrap().is_empty());
    assert_eq!(db.txn_manager().active_count(), 0, "commit/rollback leave nothing behind");
}

#[test]
fn dropping_an_uncommitted_session_rolls_back() {
    let db = brep_db(1);
    {
        let session = db.session();
        session.execute("INSERT solid (solid_no: 4242, description: 'ghost')").unwrap();
    } // dropped without commit
    assert!(exec::query(&db, "SELECT ALL FROM solid WHERE solid_no = 4242").unwrap().is_empty());
    assert_eq!(db.txn_manager().active_count(), 0);
}

// ---------------------------------------------------------------------
// Streaming molecule cursors
// ---------------------------------------------------------------------

const STREAM_DDL: &str = "
CREATE ATOM_TYPE pt
  ( id : IDENTIFIER, n : INTEGER,
    owner : SET_OF (REF_TO (part.pts)) );
CREATE ATOM_TYPE part
  ( id : IDENTIFIER, n : INTEGER,
    pts : SET_OF (REF_TO (pt.owner)),
    parent : SET_OF (REF_TO (assembly.comps)) );
CREATE ATOM_TYPE assembly
  ( id : IDENTIFIER, n : INTEGER,
    comps : SET_OF (REF_TO (part.parent)) );
";

/// `roots` three-level molecules: assembly -> 2 parts -> 2 points each.
fn stream_db(roots: usize) -> Prima {
    let db = Prima::builder().buffer_bytes(4 << 20).build_with_ddl(STREAM_DDL).unwrap();
    let mut n = 0i64;
    for a in 0..roots {
        let mut comps = Vec::new();
        for _ in 0..2 {
            n += 1;
            let pts: Vec<prima::AtomId> = (0..2)
                .map(|k| db.insert("pt", &[("n", Value::Int(n * 10 + k))]).unwrap())
                .collect();
            comps.push(
                db.insert("part", &[("n", Value::Int(n)), ("pts", Value::ref_set(pts))])
                    .unwrap(),
            );
        }
        db.insert(
            "assembly",
            &[("n", Value::Int(a as i64)), ("comps", Value::ref_set(comps))],
        )
        .unwrap();
    }
    db
}

const STREAM_Q: &str = "SELECT ALL FROM assembly-part-pt WHERE n >= 0";

#[test]
fn cursor_streams_piecewise_and_matches_materialized_query() {
    let db = stream_db(1000);
    let materialized = exec::query(&db, STREAM_Q).unwrap();
    assert_eq!(materialized.len(), 1000);

    let mut cursor = db.query_cursor(STREAM_Q).unwrap();
    assert_eq!(cursor.remaining_roots(), 1000, "roots located up front");
    assert_eq!(cursor.nodes().len(), 3);
    let mut streamed = Vec::new();
    loop {
        let chunk = cursor.fetch(64).unwrap();
        if chunk.is_empty() {
            break;
        }
        assert!(chunk.len() <= 64, "fetch(n) holds at most one chunk");
        streamed.extend(chunk);
    }
    assert_eq!(streamed, materialized.molecules, "stream ≡ materialized set");
    assert_eq!(cursor.trace().molecules, 1000);
}

#[test]
fn cursor_assembles_lazily_and_drop_releases_the_tail() {
    let db = stream_db(1000);
    let stats = db.storage().buffer_stats();

    // Cost of full materialisation (warm buffer).
    let _ = exec::query(&db, STREAM_Q).unwrap();
    stats.reset();
    let _ = exec::query(&db, STREAM_Q).unwrap();
    let full_fixes = stats.detail().fix_calls;

    // One chunk of 64 out of 1000 roots: component assembly for the
    // unread tail must not have happened.
    stats.reset();
    let mut cursor = db.query_cursor(STREAM_Q).unwrap();
    let chunk = cursor.fetch(64).unwrap();
    assert_eq!(chunk.len(), 64);
    let chunk_fixes = stats.detail().fix_calls;
    assert!(
        chunk_fixes * 2 < full_fixes,
        "one chunk must fix far fewer pages than materialising all \
         ({chunk_fixes} vs {full_fixes})"
    );

    // Dropping mid-stream abandons the remaining roots without touching
    // the buffer again...
    drop(cursor);
    assert_eq!(stats.detail().fix_calls, chunk_fixes, "drop fixes nothing further");
    // ...and leaves no page fixed: a full query over the same data still
    // succeeds against the small buffer.
    let again = exec::query(&db, STREAM_Q).unwrap();
    assert_eq!(again.len(), 1000);
}

#[test]
fn prepared_cursor_streams_per_binding() {
    let db = stream_db(20);
    let session = db.session();
    let mut stmt = session.prepare("SELECT ALL FROM assembly-part-pt WHERE n < ?").unwrap();
    for limit in [5i64, 10] {
        stmt.bind(&[Value::Int(limit)]).unwrap();
        let mut cursor = stmt.cursor(&QueryOptions::default()).unwrap();
        let set = cursor.fetch_all().unwrap();
        assert_eq!(set.len(), limit as usize);
    }
    // Cursors are serial by construction.
    assert!(matches!(
        stmt.cursor(&QueryOptions::new().threads(4)),
        Err(PrimaError::BadStatement(_))
    ));
}

#[test]
fn cursor_iterator_interface() {
    let db = stream_db(10);
    let cursor = db.query_cursor(STREAM_Q).unwrap();
    let molecules: Result<Vec<_>, _> = cursor.collect();
    assert_eq!(molecules.unwrap().len(), 10);
}

#[test]
fn cursor_drop_mid_iteration_leaks_no_buffer_fixes() {
    let db = stream_db(200);
    let buffer = db.storage().buffer();
    let mut cursor = db.query_cursor(STREAM_Q).unwrap();
    let chunk = cursor.fetch(10).unwrap();
    assert_eq!(chunk.len(), 10);
    // Between fetches the cursor holds materialised atoms, never guards.
    assert_eq!(buffer.fixed_frames(), 0, "no page stays fixed between fetches");
    drop(cursor);
    assert_eq!(buffer.fixed_frames(), 0, "dropping mid-stream releases everything");
    // The whole pool is still evictable: nothing is pinned behind our back.
    db.storage().drop_cache().unwrap();
    assert_eq!(db.storage().buffer().resident(), 0);
}

#[test]
fn cursor_fetch_after_rollback_delivers_no_stale_molecules() {
    // Roots are located at open time; if the inserting transaction rolls
    // back before the cursor is drained, the stream must not resurrect
    // the rolled-back atoms.
    let db = stream_db(5);
    let session = db.session();
    for n in 0..4 {
        session
            .execute(&format!("INSERT assembly (n: {})", 1000 + n))
            .unwrap();
    }
    let q = "SELECT ALL FROM assembly WHERE n >= 0";
    let mut cursor = session.query_cursor(q, &QueryOptions::default()).unwrap();
    assert_eq!(
        cursor.remaining_roots(),
        9,
        "read-your-own-writes: uncommitted roots are located"
    );
    // Consume a little, then roll the inserting transaction back.
    let first = cursor.fetch(2).unwrap();
    assert_eq!(first.len(), 2);
    session.rollback().unwrap();
    // The unread tail still lists the stale roots, but fetching them must
    // skip every atom the rollback removed.
    let rest = cursor.fetch_all().unwrap();
    for m in &rest.molecules {
        let n = match &m.root.atom.values[1] {
            Value::Int(n) => *n,
            other => panic!("n should be Int, got {other:?}"),
        };
        assert!(n < 1000, "rolled-back assembly {n} must not stream out");
    }
    assert_eq!(
        first.len() + rest.len(),
        5,
        "exactly the five committed assemblies stream out (2 before, 3 after rollback)"
    );
    assert_eq!(db.storage().buffer().fixed_frames(), 0, "no fixes leaked");
}

#[test]
fn cursor_fetch_reflects_modifications_since_open() {
    // The piecewise stream reads current atom state: a root modified
    // after open streams with its new values, one that no longer
    // qualifies is skipped.
    let db = stream_db(6);
    let session = db.session();
    // In-transaction cursor: fetches read current state under locks. (A
    // cursor opened outside a transaction pins a snapshot instead and
    // would *not* reflect these modifications — tests/snapshot.rs.)
    session.begin().unwrap();
    let q = "SELECT ALL FROM assembly WHERE n < 100";
    let mut cursor = session.query_cursor(q, &QueryOptions::default()).unwrap();
    assert_eq!(cursor.remaining_roots(), 6);
    session.execute("MODIFY assembly SET n = 500 WHERE n = 3").unwrap();
    session.execute("MODIFY assembly SET n = 7 WHERE n = 4").unwrap();
    session.commit().unwrap();
    let all = cursor.fetch_all().unwrap();
    let ns: Vec<i64> = all
        .molecules
        .iter()
        .map(|m| match &m.root.atom.values[1] {
            Value::Int(n) => *n,
            other => panic!("n should be Int, got {other:?}"),
        })
        .collect();
    assert!(!ns.contains(&500), "disqualified root must be skipped");
    assert!(ns.contains(&7), "modified-but-qualifying root streams fresh values");
    assert_eq!(ns.len(), 5);
}

#[test]
fn cursor_respects_residual_qualification() {
    // A residual (non-root) predicate filters during streaming exactly
    // like in materialised execution.
    let db = stream_db(30);
    let q = "SELECT ALL FROM assembly-part-pt WHERE part.n > 40";
    let materialized = exec::query(&db, q).unwrap();
    let mut cursor = db.query_cursor(q).unwrap();
    let streamed = cursor.fetch_all().unwrap();
    assert_eq!(streamed.molecules, materialized.molecules);
    assert!(streamed.len() < 30, "some molecules filtered");
}
