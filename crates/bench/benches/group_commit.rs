//! BENCH-6 — cross-session group commit: one force for many committers.
//!
//! N session threads each run single-INSERT transactions (commit after
//! every statement — the worst case for a force-per-commit log) against
//! one durable kernel on a [`FileDisk`] (a *real* write + fsync per
//! force: the batching window group commit amortizes is the leader's
//! in-flight device force, which a simulated disk completes in
//! wall-clock zero), in two WAL configurations:
//!
//! * `force_each` — [`GroupCommitConfig::force_each`]: grouping off,
//!   every commit pays its own device force (the pre-group-commit
//!   behaviour, and still the exact cost model for a lone session);
//! * `grouped` — [`GroupCommitConfig::default`]: committers park on the
//!   group coordinator, a leader lingers up to `max_wait` for the
//!   commits already en route, and one force covers every waiter whose
//!   commit LSN it reaches.
//!
//! Reported alongside wall-clock: ops/sec, WAL forces per commit (the
//! headline — `< 1.0` means forces are genuinely shared), and the
//! group-commit counters (batches, commits per force). The bench
//! *asserts* forces/commit < 1.0 for the grouped series at ≥ 4 sessions,
//! so the CI perf-trajectory leg fails if batching ever regresses to
//! force-per-commit.

use criterion::{criterion_group, criterion_main, Criterion};
use prima::{GroupCommitConfig, Prima, PrimaBuilder};
use prima_bench::{report, report_metrics};
use prima_storage::{BlockDevice, FileDisk};
use std::sync::atomic::{AtomicI64, Ordering};
use std::sync::Arc;
use std::time::Instant;

// No KEYS_ARE: inserts carry no uniqueness check, so concurrent
// committers never conflict and the timings isolate the commit path.
const DDL: &str = "
    CREATE ATOM_TYPE rec (
        rec_id : IDENTIFIER,
        n      : INTEGER,
        body   : CHAR_VAR );
";

const OPS_PER_SESSION: usize = 50;

fn durable_db(tag: &str, config: GroupCommitConfig) -> (Prima, Arc<dyn BlockDevice>) {
    let dir = std::env::temp_dir()
        .join(format!("prima-bench-group-commit-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let disk: Arc<dyn BlockDevice> = Arc::new(FileDisk::create(&dir).expect("tmpdir FileDisk"));
    let db = PrimaBuilder::default()
        .buffer_bytes(16 << 20)
        .device(Arc::clone(&disk))
        .durable()
        .group_commit(config)
        .build_with_ddl(DDL)
        .unwrap();
    (db, disk)
}

/// One round: `sessions` threads each commit `OPS_PER_SESSION`
/// single-INSERT transactions. Returns the number of commits.
fn run_round(db: &Prima, sessions: usize, next: &AtomicI64) -> u64 {
    std::thread::scope(|s| {
        let handles: Vec<_> = (0..sessions)
            .map(|_| {
                let db = &db;
                s.spawn(move || {
                    let session = db.session();
                    for _ in 0..OPS_PER_SESSION {
                        let n = next.fetch_add(1, Ordering::Relaxed);
                        session
                            .execute(&format!("INSERT rec (n: {n}, body: 'g{n}')"))
                            .unwrap();
                        session.commit().unwrap();
                    }
                    OPS_PER_SESSION as u64
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("committer panicked")).sum()
    })
}

fn run_series(c: &mut Criterion, series: &str, config: GroupCommitConfig, sessions: usize) {
    let (db, disk) = durable_db(&format!("{series}-{sessions}"), config);
    let next = AtomicI64::new(0);

    let mut g = c.benchmark_group("group_commit");
    g.sample_size(10);
    g.bench_function(format!("{series}_{sessions}_sessions"), |b| {
        b.iter(|| run_round(&db, sessions, &next))
    });
    g.finish();

    // Dedicated timed window outside the Criterion sampling, so the
    // device counters match the committed ops exactly.
    const ROUNDS: u64 = 5;
    let before = disk.stats().snapshot();
    let t0 = Instant::now();
    let mut commits = 0u64;
    for _ in 0..ROUNDS {
        commits += run_round(&db, sessions, &next);
    }
    let secs = t0.elapsed().as_secs_f64();
    let d = disk.stats().snapshot().since(&before);
    let ops_per_sec = commits as f64 / secs;
    let forces_per_commit = d.wal_forces as f64 / commits.max(1) as f64;
    let commits_per_force =
        d.group_commit_commits as f64 / d.group_commit_batches.max(1) as f64;

    report(
        "BENCH-6",
        &format!("{series}/{sessions}_sessions/ops_per_sec"),
        "ops/s",
        format!("{ops_per_sec:.0}"),
    );
    report(
        "BENCH-6",
        &format!("{series}/{sessions}_sessions/forces_per_commit"),
        "ratio",
        format!("{forces_per_commit:.3}"),
    );
    report(
        "BENCH-6",
        &format!("{series}/{sessions}_sessions/commits_per_force"),
        "ratio",
        format!("{commits_per_force:.2}"),
    );
    println!(
        "BENCHJSON {{\"bench\":\"group_commit\",\"series\":\"{series}\",\
\"sessions\":{sessions},\"commits\":{commits},\"ops_per_sec\":{ops_per_sec:.0},\
\"wal_forces\":{},\"forces_per_commit\":{forces_per_commit:.3},\
\"group_commit_batches\":{},\"group_commit_commits\":{},\
\"commits_per_force\":{commits_per_force:.2}}}",
        d.wal_forces, d.group_commit_batches, d.group_commit_commits,
    );
    report_metrics(&format!("group_commit/{series}_{sessions}"), &db);

    // The CI perf gate: with ≥ 4 concurrently committing sessions the
    // coordinator must genuinely share forces across commits.
    if config.max_batch > 1 && sessions >= 4 {
        assert!(
            forces_per_commit < 1.0,
            "group commit regressed to force-per-commit: {forces_per_commit:.3} \
             forces/commit at {sessions} sessions ({} forces, {commits} commits)",
            d.wal_forces
        );
    }
}

fn bench_group_commit(c: &mut Criterion) {
    for sessions in [1usize, 4, 8] {
        run_series(c, "force_each", GroupCommitConfig::force_each(), sessions);
        run_series(c, "grouped", GroupCommitConfig::default(), sessions);
    }
}

criterion_group!(benches, bench_group_commit);
criterion_main!(benches);
