//! The three modeling disciplines of Fig. 2.1, built on the same kernel.
//!
//! Fig. 2.1 contrasts how a boundary representation can be modelled:
//!
//! * **hierarchical, redundant** — "there are several independent
//!   representations for every edge and every point. Since the DBMS is
//!   not aware of this redundancy, it must be handled by the application";
//! * **network, non-redundant** — "avoids redundancy, but at the cost of
//!   introducing a number of 'relation records' that represent n:m
//!   relationships";
//! * **direct and symmetric (MAD)** — n:m associations represented
//!   directly, no redundancy, no connector records.
//!
//! [`build`] creates the *same* set of box solids under each discipline;
//! [`ModelingStats`] reports the numbers experiment E-F2.1 tabulates:
//! atom count, stored bytes, and the **update cost** of moving one point
//! (how many atoms must be rewritten — the integrity hazard the paper
//! warns about).

use prima::{Prima, PrimaError, PrimaResult, Value};
use prima_mad::value::AtomId;

/// The modeling discipline under test.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ModelingApproach {
    /// Fig. 2.1 left: faces own private copies of edges and points.
    HierarchicalRedundant,
    /// Fig. 2.1 middle: connector ("relation record") atom types.
    NetworkConnectors,
    /// Fig. 2.1 right: MAD's direct n:m associations (the Fig. 2.3
    /// schema).
    MadDirect,
}

impl ModelingApproach {
    pub const ALL: [ModelingApproach; 3] = [
        ModelingApproach::HierarchicalRedundant,
        ModelingApproach::NetworkConnectors,
        ModelingApproach::MadDirect,
    ];

    pub fn name(self) -> &'static str {
        match self {
            ModelingApproach::HierarchicalRedundant => "hierarchical (redundant)",
            ModelingApproach::NetworkConnectors => "network (relation records)",
            ModelingApproach::MadDirect => "MAD (direct, symmetric)",
        }
    }
}

/// Numbers for one discipline (the E-F2.1 table row).
#[derive(Debug, Clone)]
pub struct ModelingStats {
    pub approach: ModelingApproach,
    /// Total atoms stored.
    pub atoms: u64,
    /// Point representations stored for ONE geometric point on average
    /// (redundancy factor).
    pub point_copies: f64,
    /// Atoms rewritten when one geometric point moves.
    pub move_update_cost: usize,
}

/// Hierarchical schema: strict 1:n ownership downward; every face stores
/// its own edges, every edge its own points. No upward references — the
/// model *cannot* answer "which faces touch this point" without a full
/// scan (the asymmetry of Fig. 2.1's left column).
const HIER_DDL: &str = r#"
CREATE ATOM_TYPE hsolid
  ( id : IDENTIFIER, solid_no : INTEGER,
    faces : SET_OF (REF_TO (hface.owner)) )
KEYS_ARE (solid_no);
CREATE ATOM_TYPE hface
  ( id : IDENTIFIER, face_no : INTEGER,
    owner : REF_TO (hsolid.faces),
    edges : SET_OF (REF_TO (hedge.owner)) );
CREATE ATOM_TYPE hedge
  ( id : IDENTIFIER, edge_no : INTEGER,
    owner : REF_TO (hface.edges),
    points : SET_OF (REF_TO (hpoint.owner)) );
CREATE ATOM_TYPE hpoint
  ( id : IDENTIFIER, point_no : INTEGER, x : REAL, y : REAL, z : REAL,
    owner : REF_TO (hedge.points) );
"#;

/// Network schema: entities stored once; n:m relationships through
/// connector atom types (CODASYL-style "relation records").
const NET_DDL: &str = r#"
CREATE ATOM_TYPE nsolid
  ( id : IDENTIFIER, solid_no : INTEGER,
    faces : SET_OF (REF_TO (nface.owner)) )
KEYS_ARE (solid_no);
CREATE ATOM_TYPE nface
  ( id : IDENTIFIER, face_no : INTEGER,
    owner : REF_TO (nsolid.faces),
    fe : SET_OF (REF_TO (face_edge.face)) );
CREATE ATOM_TYPE face_edge
  ( id : IDENTIFIER,
    face : REF_TO (nface.fe),
    edge : REF_TO (nedge.fe) );
CREATE ATOM_TYPE nedge
  ( id : IDENTIFIER, edge_no : INTEGER,
    fe : SET_OF (REF_TO (face_edge.edge)),
    ep : SET_OF (REF_TO (edge_point.edge)) );
CREATE ATOM_TYPE edge_point
  ( id : IDENTIFIER,
    edge : REF_TO (nedge.ep),
    point : REF_TO (npoint.ep) );
CREATE ATOM_TYPE npoint
  ( id : IDENTIFIER, point_no : INTEGER, x : REAL, y : REAL, z : REAL,
    ep : SET_OF (REF_TO (edge_point.point)) );
"#;

/// Hexahedron topology shared by all three builders.
const EDGES: [(usize, usize); 12] = [
    (0, 1),
    (1, 2),
    (2, 3),
    (3, 0),
    (4, 5),
    (5, 6),
    (6, 7),
    (7, 4),
    (0, 4),
    (1, 5),
    (2, 6),
    (3, 7),
];
const FACES: [[usize; 4]; 6] =
    [[0, 1, 2, 3], [4, 5, 6, 7], [0, 9, 4, 8], [2, 10, 6, 11], [1, 10, 5, 9], [3, 11, 7, 8]];

/// Builds `n_solids` boxes under the given approach; returns the database
/// and the stats row.
pub fn build(approach: ModelingApproach, n_solids: usize) -> PrimaResult<(Prima, ModelingStats)> {
    match approach {
        ModelingApproach::HierarchicalRedundant => build_hierarchical(n_solids),
        ModelingApproach::NetworkConnectors => build_network(n_solids),
        ModelingApproach::MadDirect => build_mad(n_solids),
    }
}

fn corner(i: usize, s: usize) -> (f64, f64, f64) {
    let c = [
        (0., 0., 0.),
        (1., 0., 0.),
        (1., 1., 0.),
        (0., 1., 0.),
        (0., 0., 1.),
        (1., 0., 1.),
        (1., 1., 1.),
        (0., 1., 1.),
    ][i];
    (c.0 + s as f64 * 2.0, c.1, c.2)
}

fn build_hierarchical(n: usize) -> PrimaResult<(Prima, ModelingStats)> {
    let db = Prima::builder().build_with_ddl(HIER_DDL)?;
    let mut atoms = 0u64;
    let mut first_point: Option<AtomId> = None;
    let mut point_no = 1i64;
    let mut edge_no = 1i64;
    let mut face_no = 1i64;
    for s in 0..n {
        let solid = db.insert("hsolid", &[("solid_no", Value::Int(s as i64 + 1))])?;
        atoms += 1;
        for f in FACES {
            let face = db.insert(
                "hface",
                &[("face_no", Value::Int(face_no)), ("owner", Value::Ref(Some(solid)))],
            )?;
            face_no += 1;
            atoms += 1;
            for &e in &f {
                let (a, b) = EDGES[e];
                let edge = db.insert(
                    "hedge",
                    &[("edge_no", Value::Int(edge_no)), ("owner", Value::Ref(Some(face)))],
                )?;
                edge_no += 1;
                atoms += 1;
                for v in [a, b] {
                    let (x, y, z) = corner(v, s);
                    let p = db.insert(
                        "hpoint",
                        &[
                            ("point_no", Value::Int(point_no)),
                            ("x", Value::Real(x)),
                            ("y", Value::Real(y)),
                            ("z", Value::Real(z)),
                            ("owner", Value::Ref(Some(edge))),
                        ],
                    )?;
                    point_no += 1;
                    atoms += 1;
                    // Remember every copy of geometric corner 0 of solid 0.
                    if s == 0 && v == 0 && first_point.is_none() {
                        first_point = Some(p);
                    }
                }
            }
        }
    }
    // Moving one geometric point requires rewriting EVERY copy: corner 0
    // participates in 3 faces × 2 edges each... in this ownership tree a
    // vertex appears once per (face, edge) incidence: count the copies by
    // value.
    let copies = count_matching_points(&db, "hpoint", 0.0, 0.0, 0.0)?;
    let move_cost = copies.len();
    for id in &copies {
        db.modify(*id, &[("x", Value::Real(0.5))])?;
    }
    // points stored per geometric point: each solid has 8 distinct
    // corners but 24 hpoint atoms per... compute: total hpoints /
    // (8 * n).
    let total_points = db.access().atom_count(db.schema().type_id("hpoint").unwrap())?;
    let stats = ModelingStats {
        approach: ModelingApproach::HierarchicalRedundant,
        atoms,
        point_copies: total_points as f64 / (8.0 * n as f64),
        move_update_cost: move_cost,
    };
    Ok((db, stats))
}

fn count_matching_points(db: &Prima, ty: &str, x: f64, y: f64, z: f64) -> PrimaResult<Vec<AtomId>> {
    let t = db
        .schema()
        .type_id(ty)
        .ok_or_else(|| PrimaError::UnknownComponent(ty.to_string()))?;
    let at = db.schema().atom_type(t).unwrap().clone();
    let xi = at.attribute_index("x").unwrap();
    let yi = at.attribute_index("y").unwrap();
    let zi = at.attribute_index("z").unwrap();
    let mut out = Vec::new();
    for id in db.access().all_ids(t)? {
        let a = db.read(id)?;
        if a.values[xi].sem_eq(&Value::Real(x))
            && a.values[yi].sem_eq(&Value::Real(y))
            && a.values[zi].sem_eq(&Value::Real(z))
        {
            out.push(id);
        }
    }
    Ok(out)
}

fn build_network(n: usize) -> PrimaResult<(Prima, ModelingStats)> {
    let db = Prima::builder().build_with_ddl(NET_DDL)?;
    let mut atoms = 0u64;
    let mut point_no = 1i64;
    let mut edge_no = 1i64;
    let mut face_no = 1i64;
    let mut first_point = None;
    for s in 0..n {
        let solid = db.insert("nsolid", &[("solid_no", Value::Int(s as i64 + 1))])?;
        atoms += 1;
        // Entities once.
        let mut points = Vec::new();
        for v in 0..8 {
            let (x, y, z) = corner(v, s);
            let p = db.insert(
                "npoint",
                &[
                    ("point_no", Value::Int(point_no)),
                    ("x", Value::Real(x)),
                    ("y", Value::Real(y)),
                    ("z", Value::Real(z)),
                ],
            )?;
            point_no += 1;
            atoms += 1;
            points.push(p);
            if s == 0 && v == 0 {
                first_point = Some(p);
            }
        }
        let mut edges = Vec::new();
        for (a, b) in EDGES {
            let e = db.insert("nedge", &[("edge_no", Value::Int(edge_no))])?;
            edge_no += 1;
            atoms += 1;
            edges.push(e);
            // Connector records edge→point.
            for v in [a, b] {
                db.insert(
                    "edge_point",
                    &[("edge", Value::Ref(Some(e))), ("point", Value::Ref(Some(points[v])))],
                )?;
                atoms += 1;
            }
        }
        for f in FACES {
            let face = db.insert(
                "nface",
                &[("face_no", Value::Int(face_no)), ("owner", Value::Ref(Some(solid)))],
            )?;
            face_no += 1;
            atoms += 1;
            for &e in &f {
                db.insert(
                    "face_edge",
                    &[("face", Value::Ref(Some(face))), ("edge", Value::Ref(Some(edges[e])))],
                )?;
                atoms += 1;
            }
        }
    }
    // Moving a point touches exactly one atom.
    db.modify(first_point.expect("built at least one solid"), &[("x", Value::Real(0.5))])?;
    let stats = ModelingStats {
        approach: ModelingApproach::NetworkConnectors,
        atoms,
        point_copies: 1.0,
        move_update_cost: 1,
    };
    Ok((db, stats))
}

fn build_mad(n: usize) -> PrimaResult<(Prima, ModelingStats)> {
    let db = crate::brep::open_db(8 << 20)?;
    let stats = crate::brep::populate(&db, &crate::brep::BrepConfig::with_solids(n))?;
    let mut atoms = 0u64;
    for ty in ["solid", "brep", "face", "edge", "point"] {
        atoms += db.access().atom_count(db.schema().type_id(ty).unwrap())?;
    }
    // Moving a point touches exactly one atom (its placement record).
    let point_t = db.schema().type_id("point").unwrap();
    let some_point = db.access().all_ids(point_t)?[0];
    db.modify(
        some_point,
        &[(
            "placement",
            Value::Record(vec![
                ("x_coord".into(), Value::Real(0.5)),
                ("y_coord".into(), Value::Real(0.0)),
                ("z_coord".into(), Value::Real(0.0)),
            ]),
        )],
    )?;
    let _ = stats;
    Ok((
        db,
        ModelingStats {
            approach: ModelingApproach::MadDirect,
            atoms,
            point_copies: 1.0,
            move_update_cost: 1,
        },
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn redundancy_factors_match_fig_2_1() {
        let (_db_h, h) = build(ModelingApproach::HierarchicalRedundant, 2).unwrap();
        let (_db_n, n) = build(ModelingApproach::NetworkConnectors, 2).unwrap();
        let (_db_m, m) = build(ModelingApproach::MadDirect, 2).unwrap();
        // Hierarchical stores every point once per (edge,face) incidence:
        // 6 faces × 4 edges × 2 points = 48 hpoints per solid -> factor 6.
        assert!(h.point_copies > 5.0, "hierarchical redundancy factor {}", h.point_copies);
        assert_eq!(n.point_copies, 1.0);
        assert_eq!(m.point_copies, 1.0);
        // Update cost: hierarchical must touch every copy of the corner.
        assert!(h.move_update_cost >= 3, "hierarchical move cost {}", h.move_update_cost);
        assert_eq!(n.move_update_cost, 1);
        assert_eq!(m.move_update_cost, 1);
        // Network pays connector atoms: more atoms than MAD for the same
        // data.
        assert!(n.atoms > m.atoms, "network {} vs MAD {}", n.atoms, m.atoms);
    }

    #[test]
    fn hierarchical_cannot_answer_symmetric_query_directly() {
        let (db, _) = build(ModelingApproach::HierarchicalRedundant, 1).unwrap();
        // point -> faces requires traversing upward; the hierarchical
        // schema has only owner links point->edge->face, so the MAD query
        // still works — but each point belongs to exactly ONE edge copy,
        // demonstrating the lost n:m semantics.
        let set = crate::exec::query(&db, "SELECT ALL FROM hpoint-hedge WHERE point_no = 1").unwrap();
        assert_eq!(set.atoms_of("hedge").len(), 1, "a copy knows only its owner");
        // In the MAD model the same question returns all incident edges.
        let (mdb, _) = build(ModelingApproach::MadDirect, 1).unwrap();
        let set = crate::exec::query(&mdb, "SELECT ALL FROM point-edge WHERE point_id <> EMPTY").unwrap();
        let some = set
            .molecules
            .iter()
            .map(|m| m.root.children.len())
            .max()
            .unwrap_or(0);
        assert_eq!(some, 3, "a box corner joins three edges");
    }
}
