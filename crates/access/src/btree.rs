//! B*-tree access paths.
//!
//! "A main usage of scans is on access paths where start and stop
//! conditions conveniently provide access to value ranges and where value
//! orders may be exploited for free. … Linear orders based on B*-trees
//! only allow sequential NEXT/PRIOR traversal." (Section 3.2.)
//!
//! This is a page-based B+/B*-tree over one segment of the storage
//! system:
//!
//! * keys are **memcomparable byte strings** produced by
//!   [`prima_mad::codec::encode_key`] /
//!   [`prima_mad::codec::encode_composite_key`], so one tree serves any
//!   key attribute combination;
//! * leaves map keys to lists of [`AtomId`]s (non-unique indexes); heavy
//!   duplicate keys overflow into sibling entries with the same key;
//! * leaves are doubly linked for NEXT **and** PRIOR traversal;
//! * deletion is lazy (entries shrink and empty entries disappear, nodes
//!   are not merged) — the classical prototype trade-off; a `rebuild`
//!   compacts when needed.

use crate::error::{AccessError, AccessResult};
use parking_lot::{rank, Mutex};
use prima_mad::value::AtomId;
use prima_storage::bytes::{le_u16, le_u32, le_u64};
use prima_storage::{PageId, PageSize, PageType, SegmentId, StorageSystem};
use std::ops::Bound;
use std::sync::Arc;

const NONE_PAGE: u32 = u32::MAX;
/// Cap on ids per leaf entry before duplicates overflow into a fresh
/// entry with the same key.
const MAX_IDS_PER_ENTRY: usize = 96;

/// In-memory image of one node page.
#[derive(Debug, Clone, PartialEq)]
enum Node {
    Leaf {
        prev: u32,
        next: u32,
        /// Sorted by key; equal keys may repeat (duplicate overflow).
        entries: Vec<(Vec<u8>, Vec<AtomId>)>,
    },
    Internal {
        /// Child for keys below the first separator.
        child0: u32,
        /// `(separator, child)`: child holds keys >= separator.
        entries: Vec<(Vec<u8>, u32)>,
    },
}

impl Node {
    fn serialized_len(&self) -> usize {
        match self {
            Node::Leaf { entries, .. } => {
                11 + entries
                    .iter()
                    .map(|(k, ids)| 2 + k.len() + 2 + ids.len() * 10)
                    .sum::<usize>()
            }
            Node::Internal { entries, .. } => {
                7 + entries.iter().map(|(k, _)| 2 + k.len() + 4).sum::<usize>()
            }
        }
    }

    fn serialize(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.serialized_len());
        match self {
            Node::Leaf { prev, next, entries } => {
                out.push(1);
                out.extend_from_slice(&(entries.len() as u16).to_le_bytes());
                out.extend_from_slice(&next.to_le_bytes());
                out.extend_from_slice(&prev.to_le_bytes());
                for (k, ids) in entries {
                    out.extend_from_slice(&(k.len() as u16).to_le_bytes());
                    out.extend_from_slice(k);
                    out.extend_from_slice(&(ids.len() as u16).to_le_bytes());
                    for id in ids {
                        out.extend_from_slice(&id.atom_type.to_le_bytes());
                        out.extend_from_slice(&id.seq.to_le_bytes());
                    }
                }
            }
            Node::Internal { child0, entries } => {
                out.push(0);
                out.extend_from_slice(&(entries.len() as u16).to_le_bytes());
                out.extend_from_slice(&child0.to_le_bytes());
                for (k, c) in entries {
                    out.extend_from_slice(&(k.len() as u16).to_le_bytes());
                    out.extend_from_slice(k);
                    out.extend_from_slice(&c.to_le_bytes());
                }
            }
        }
        out
    }

    fn deserialize(buf: &[u8]) -> AccessResult<Node> {
        let err = || AccessError::Codec(prima_mad::codec::CodecError::Truncated);
        let is_leaf = *buf.first().ok_or_else(err)? == 1;
        let n = u16::from_le_bytes([buf[1], buf[2]]) as usize;
        let mut pos;
        if is_leaf {
            let next = le_u32(&buf[3..7]);
            let prev = le_u32(&buf[7..11]);
            pos = 11;
            let mut entries = Vec::with_capacity(n);
            for _ in 0..n {
                let klen =
                    le_u16(buf.get(pos..pos + 2).ok_or_else(err)?)
                        as usize;
                pos += 2;
                let key = buf.get(pos..pos + klen).ok_or_else(err)?.to_vec();
                pos += klen;
                let cnt =
                    le_u16(buf.get(pos..pos + 2).ok_or_else(err)?)
                        as usize;
                pos += 2;
                let mut ids = Vec::with_capacity(cnt);
                for _ in 0..cnt {
                    let t = le_u16(buf.get(pos..pos + 2).ok_or_else(err)?);
                    let s = le_u64(buf.get(pos + 2..pos + 10).ok_or_else(err)?);
                    ids.push(AtomId::new(t, s));
                    pos += 10;
                }
                entries.push((key, ids));
            }
            Ok(Node::Leaf { prev, next, entries })
        } else {
            let child0 = le_u32(&buf[3..7]);
            pos = 7;
            let mut entries = Vec::with_capacity(n);
            for _ in 0..n {
                let klen =
                    le_u16(buf.get(pos..pos + 2).ok_or_else(err)?)
                        as usize;
                pos += 2;
                let key = buf.get(pos..pos + klen).ok_or_else(err)?.to_vec();
                pos += klen;
                let c =
                    le_u32(buf.get(pos..pos + 4).ok_or_else(err)?);
                pos += 4;
                entries.push((key, c));
            }
            Ok(Node::Internal { child0, entries })
        }
    }
}

/// A page-based B*-tree mapping encoded keys to atom-id lists.
pub struct BTree {
    storage: Arc<StorageSystem>,
    segment: SegmentId,
    // lockrank: access.2 — root page number; held across splits that grow
    // a new root (which fix buffer pages: access < buffer).
    root: Mutex<u32>,
    payload_cap: usize,
}

impl BTree {
    /// Creates an empty tree in a fresh segment (4K pages: the classical
    /// index page size).
    pub fn create(storage: Arc<StorageSystem>) -> AccessResult<BTree> {
        let segment = storage.create_segment_with(PageSize::K4, false)?;
        let payload_cap = PageSize::K4.payload();
        let root_id = storage.allocate_page(segment)?;
        let tree = BTree { storage, segment, root: Mutex::new_ranked(root_id.page, rank::ACCESS + 2), payload_cap };
        tree.write_node(
            root_id.page,
            &Node::Leaf { prev: NONE_PAGE, next: NONE_PAGE, entries: Vec::new() },
        )?;
        Ok(tree)
    }

    pub fn segment(&self) -> SegmentId {
        self.segment
    }

    fn read_node(&self, page: u32) -> AccessResult<Node> {
        let g = self.storage.fix(PageId::new(self.segment, page))?;
        Node::deserialize(g.payload())
    }

    fn write_node(&self, page: u32, node: &Node) -> AccessResult<()> {
        let bytes = node.serialize();
        let mut g = self.storage.fix_mut(PageId::new(self.segment, page))?;
        if g.page_type() != PageType::AccessPath {
            g.set_page_type(PageType::AccessPath);
        }
        g.write_payload(&bytes)?;
        Ok(())
    }

    /// Inserts `(key, id)`. Duplicate keys accumulate ids; the same
    /// `(key, id)` pair is stored once.
    pub fn insert(&self, key: &[u8], id: AtomId) -> AccessResult<()> {
        let root = *self.root.lock();
        match self.insert_rec(root, key, id)? {
            None => Ok(()),
            Some((sep, right)) => {
                // Root split: new internal root.
                let new_root = self.storage.allocate_page(self.segment)?;
                self.write_node(
                    new_root.page,
                    &Node::Internal { child0: root, entries: vec![(sep, right)] },
                )?;
                *self.root.lock() = new_root.page;
                Ok(())
            }
        }
    }

    /// Recursive insert; returns `Some((separator, new_right_page))` when
    /// the child split.
    fn insert_rec(
        &self,
        page: u32,
        key: &[u8],
        id: AtomId,
    ) -> AccessResult<Option<(Vec<u8>, u32)>> {
        let mut node = self.read_node(page)?;
        match &mut node {
            Node::Leaf { entries, .. } => {
                // Find insertion point among possibly duplicated keys: the
                // LAST entry with this key (so overflow entries fill up in
                // order).
                let lb = entries.partition_point(|(k, _)| k.as_slice() < key);
                let ub = entries.partition_point(|(k, _)| k.as_slice() <= key);
                let mut placed = false;
                for e in &mut entries[lb..ub] {
                    if e.1.contains(&id) {
                        placed = true;
                        break;
                    }
                    if e.1.len() < MAX_IDS_PER_ENTRY {
                        e.1.push(id);
                        placed = true;
                        break;
                    }
                }
                if !placed {
                    entries.insert(ub, (key.to_vec(), vec![id]));
                }
                self.finish_write(page, node)
            }
            Node::Internal { child0, entries } => {
                let idx = entries.partition_point(|(k, _)| k.as_slice() <= key);
                let child = if idx == 0 { *child0 } else { entries[idx - 1].1 };
                if let Some((sep, right)) = self.insert_rec(child, key, id)? {
                    let pos = entries.partition_point(|(k, _)| k.as_slice() <= sep.as_slice());
                    entries.insert(pos, (sep, right));
                    return self.finish_write(page, node);
                }
                Ok(None)
            }
        }
    }

    /// Writes the node back, splitting first if it no longer fits.
    fn finish_write(&self, page: u32, node: Node) -> AccessResult<Option<(Vec<u8>, u32)>> {
        if node.serialized_len() <= self.payload_cap {
            self.write_node(page, &node)?;
            return Ok(None);
        }
        // Split.
        match node {
            Node::Leaf { prev, next, mut entries } => {
                let mid = entries.len() / 2;
                let right_entries = entries.split_off(mid.max(1));
                if right_entries.is_empty() {
                    // A single entry larger than the page: cannot split.
                    return Err(AccessError::RecordTooLarge {
                        len: 11 + entries[0].0.len() + entries[0].1.len() * 10,
                        max: self.payload_cap,
                    });
                }
                let sep = right_entries[0].0.clone();
                let right_page = self.storage.allocate_page(self.segment)?.page;
                // link: page <-> right_page <-> old next
                let right = Node::Leaf { prev: page, next, entries: right_entries };
                self.write_node(right_page, &right)?;
                if next != NONE_PAGE {
                    if let Node::Leaf { prev: _, next: nn, entries: ne } = self.read_node(next)? {
                        self.write_node(
                            next,
                            &Node::Leaf { prev: right_page, next: nn, entries: ne },
                        )?;
                    }
                }
                self.write_node(page, &Node::Leaf { prev, next: right_page, entries })?;
                Ok(Some((sep, right_page)))
            }
            Node::Internal { child0, mut entries } => {
                let mid = entries.len() / 2;
                let mut right_entries = entries.split_off(mid.max(1));
                let (sep, right_child0) = right_entries.remove(0);
                let right_page = self.storage.allocate_page(self.segment)?.page;
                self.write_node(
                    right_page,
                    &Node::Internal { child0: right_child0, entries: right_entries },
                )?;
                self.write_node(page, &Node::Internal { child0, entries })?;
                Ok(Some((sep, right_page)))
            }
        }
    }

    /// Removes `(key, id)`. Returns whether the pair existed. Duplicate-
    /// key chains may span several leaves; the search starts at the
    /// leftmost possible leaf and walks right while the key matches.
    pub fn remove(&self, key: &[u8], id: AtomId) -> AccessResult<bool> {
        let mut page = self.leaf_for(Some(key))?;
        loop {
            let Node::Leaf { prev, next, mut entries } = self.read_node(page)? else {
                unreachable!("leaf_for returns leaves");
            };
            let lb = entries.partition_point(|(k, _)| k.as_slice() < key);
            let ub = entries.partition_point(|(k, _)| k.as_slice() <= key);
            let mut removed = false;
            for entry in &mut entries[lb..ub] {
                if let Some(p) = entry.1.iter().position(|x| *x == id) {
                    entry.1.remove(p);
                    removed = true;
                    break;
                }
            }
            if removed {
                entries.retain(|(_, ids)| !ids.is_empty());
                self.write_node(page, &Node::Leaf { prev, next, entries })?;
                return Ok(true);
            }
            // The chain can only continue rightward if this leaf ends at
            // (or before) the key.
            if ub == entries.len() && next != NONE_PAGE {
                page = next;
                continue;
            }
            return Ok(false);
        }
    }

    /// All ids stored under exactly `key`.
    pub fn lookup(&self, key: &[u8]) -> AccessResult<Vec<AtomId>> {
        let mut out = Vec::new();
        self.scan_range(Bound::Included(key), Bound::Included(key), false, |_, ids| {
            out.extend_from_slice(ids);
            true
        })?;
        Ok(out)
    }

    /// Walks entries with keys in the given bounds, in order (or reverse).
    /// The visitor returns `false` to stop early.
    pub fn scan_range(
        &self,
        start: Bound<&[u8]>,
        end: Bound<&[u8]>,
        reverse: bool,
        mut visit: impl FnMut(&[u8], &[AtomId]) -> bool,
    ) -> AccessResult<()> {
        let in_lower = |k: &[u8]| match start {
            Bound::Unbounded => true,
            Bound::Included(s) => k >= s,
            Bound::Excluded(s) => k > s,
        };
        let in_upper = |k: &[u8]| match end {
            Bound::Unbounded => true,
            Bound::Included(e) => k <= e,
            Bound::Excluded(e) => k < e,
        };
        if !reverse {
            // Descend to the leaf containing the lower bound.
            let mut page = self.leaf_for(match start {
                Bound::Unbounded => None,
                Bound::Included(s) | Bound::Excluded(s) => Some(s),
            })?;
            loop {
                let Node::Leaf { next, entries, .. } = self.read_node(page)? else {
                    unreachable!("leaf_for returns leaves");
                };
                for (k, ids) in &entries {
                    if !in_lower(k) {
                        continue;
                    }
                    if !in_upper(k) {
                        return Ok(());
                    }
                    if !visit(k, ids) {
                        return Ok(());
                    }
                }
                if next == NONE_PAGE {
                    return Ok(());
                }
                page = next;
            }
        } else {
            // Find the rightmost leaf that can hold keys within the upper
            // bound: descend toward the bound, then keep advancing while
            // the next leaf still starts within the bound (duplicate-key
            // chains can span many leaves).
            let mut page = match end {
                Bound::Unbounded => self.rightmost_leaf()?,
                Bound::Included(e) | Bound::Excluded(e) => {
                    let mut p = self.leaf_for_upper(e)?;
                    loop {
                        let Node::Leaf { next, .. } = self.read_node(p)? else {
                            unreachable!("leaves only");
                        };
                        if next == NONE_PAGE {
                            break;
                        }
                        let Node::Leaf { entries: ne, .. } = self.read_node(next)? else {
                            unreachable!("leaves only");
                        };
                        match ne.first() {
                            Some((k, _)) if in_upper(k) => p = next,
                            _ => break,
                        }
                    }
                    p
                }
            };
            loop {
                let Node::Leaf { prev, entries, .. } = self.read_node(page)? else {
                    unreachable!("leaves only");
                };
                for (k, ids) in entries.iter().rev() {
                    if !in_upper(k) {
                        continue;
                    }
                    if !in_lower(k) {
                        return Ok(());
                    }
                    if !visit(k, ids) {
                        return Ok(());
                    }
                }
                if prev == NONE_PAGE {
                    return Ok(());
                }
                page = prev;
            }
        }
    }

    /// The *leftmost* leaf page that can contain `key` (or the smallest
    /// key, if None). Because a leaf split can place entries equal to the
    /// separator on the left side, equality routes left here.
    fn leaf_for(&self, key: Option<&[u8]>) -> AccessResult<u32> {
        let mut page = *self.root.lock();
        loop {
            match self.read_node(page)? {
                Node::Leaf { .. } => return Ok(page),
                Node::Internal { child0, entries } => {
                    page = match key {
                        None => child0,
                        Some(k) => {
                            let idx = entries.partition_point(|(s, _)| s.as_slice() < k);
                            if idx == 0 {
                                child0
                            } else {
                                entries[idx - 1].1
                            }
                        }
                    };
                }
            }
        }
    }

    /// The *rightmost* leaf whose key range can start at or before `key`
    /// (equality routes right) — the reverse-scan entry point.
    fn leaf_for_upper(&self, key: &[u8]) -> AccessResult<u32> {
        let mut page = *self.root.lock();
        loop {
            match self.read_node(page)? {
                Node::Leaf { .. } => return Ok(page),
                Node::Internal { child0, entries } => {
                    let idx = entries.partition_point(|(s, _)| s.as_slice() <= key);
                    page = if idx == 0 { child0 } else { entries[idx - 1].1 };
                }
            }
        }
    }

    fn rightmost_leaf(&self) -> AccessResult<u32> {
        let mut page = *self.root.lock();
        loop {
            match self.read_node(page)? {
                Node::Leaf { .. } => return Ok(page),
                Node::Internal { child0, entries } => {
                    page = entries.last().map_or(child0, |(_, c)| *c);
                }
            }
        }
    }

    /// Total number of `(key, id)` pairs (full scan).
    pub fn len(&self) -> AccessResult<usize> {
        let mut n = 0;
        self.scan_range(Bound::Unbounded, Bound::Unbounded, false, |_, ids| {
            n += ids.len();
            true
        })?;
        Ok(n)
    }

    pub fn is_empty(&self) -> AccessResult<bool> {
        Ok(self.len()? == 0)
    }

    /// Tree height (1 = just a root leaf). Diagnostic.
    pub fn height(&self) -> AccessResult<usize> {
        let mut h = 1;
        let mut page = *self.root.lock();
        loop {
            match self.read_node(page)? {
                Node::Leaf { .. } => return Ok(h),
                Node::Internal { child0, .. } => {
                    h += 1;
                    page = child0;
                }
            }
        }
    }

    /// Verifies structural invariants (key order inside and across leaves,
    /// separator consistency). Used by tests and property checks.
    pub fn check_invariants(&self) -> AccessResult<()> {
        // Walk all leaves via links and check global key order.
        let mut page = self.leaf_for(None)?;
        let mut last: Option<Vec<u8>> = None;
        loop {
            let Node::Leaf { next, entries, .. } = self.read_node(page)? else {
                unreachable!();
            };
            for (k, ids) in &entries {
                if let Some(prev) = &last {
                    assert!(
                        prev.as_slice() <= k.as_slice(),
                        "keys out of order across leaves"
                    );
                }
                assert!(!ids.is_empty(), "empty id list must have been removed");
                last = Some(k.clone());
            }
            if next == NONE_PAGE {
                break;
            }
            page = next;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prima_mad::codec::encode_composite_key;
    use prima_mad::value::Value;

    fn tree() -> BTree {
        let storage = Arc::new(StorageSystem::in_memory(4 << 20));
        BTree::create(storage).unwrap()
    }

    fn k(i: i64) -> Vec<u8> {
        encode_composite_key(&[Value::Int(i)])
    }

    fn id(n: u64) -> AtomId {
        AtomId::new(1, n)
    }

    #[test]
    fn insert_lookup_small() {
        let t = tree();
        t.insert(&k(5), id(50)).unwrap();
        t.insert(&k(3), id(30)).unwrap();
        t.insert(&k(8), id(80)).unwrap();
        assert_eq!(t.lookup(&k(3)).unwrap(), vec![id(30)]);
        assert_eq!(t.lookup(&k(9)).unwrap(), Vec::<AtomId>::new());
        assert_eq!(t.len().unwrap(), 3);
    }

    #[test]
    fn duplicate_pair_stored_once() {
        let t = tree();
        t.insert(&k(1), id(1)).unwrap();
        t.insert(&k(1), id(1)).unwrap();
        assert_eq!(t.lookup(&k(1)).unwrap(), vec![id(1)]);
    }

    #[test]
    fn non_unique_keys_accumulate() {
        let t = tree();
        for n in 0..10 {
            t.insert(&k(7), id(n)).unwrap();
        }
        let mut got = t.lookup(&k(7)).unwrap();
        got.sort();
        assert_eq!(got, (0..10).map(id).collect::<Vec<_>>());
    }

    #[test]
    fn thousands_of_keys_split_correctly() {
        let t = tree();
        let n = 5000i64;
        // Insert in a shuffled-ish order (multiplicative stride).
        for i in 0..n {
            let key = (i * 2654435761 % n + n) % n;
            t.insert(&k(key), id(key as u64)).unwrap();
        }
        assert!(t.height().unwrap() > 1, "tree must have split");
        t.check_invariants().unwrap();
        assert_eq!(t.len().unwrap(), n as usize);
        for probe in [0, 1, n / 2, n - 1] {
            assert_eq!(t.lookup(&k(probe)).unwrap(), vec![id(probe as u64)], "probe {probe}");
        }
    }

    #[test]
    fn range_scan_forward_and_reverse() {
        let t = tree();
        for i in 0..100 {
            t.insert(&k(i), id(i as u64)).unwrap();
        }
        let mut keys = Vec::new();
        t.scan_range(Bound::Included(&k(10)), Bound::Excluded(&k(20)), false, |key, _| {
            keys.push(key.to_vec());
            true
        })
        .unwrap();
        assert_eq!(keys.len(), 10);
        assert_eq!(keys[0], k(10));
        assert_eq!(keys[9], k(19));

        let mut rev = Vec::new();
        t.scan_range(Bound::Included(&k(10)), Bound::Excluded(&k(20)), true, |key, _| {
            rev.push(key.to_vec());
            true
        })
        .unwrap();
        keys.reverse();
        assert_eq!(rev, keys, "reverse scan mirrors forward scan");
    }

    #[test]
    fn reverse_scan_unbounded() {
        let t = tree();
        for i in 0..1000 {
            t.insert(&k(i), id(i as u64)).unwrap();
        }
        let mut seen = Vec::new();
        t.scan_range(Bound::Unbounded, Bound::Unbounded, true, |key, _| {
            seen.push(key.to_vec());
            true
        })
        .unwrap();
        assert_eq!(seen.len(), 1000);
        assert_eq!(seen[0], k(999));
        assert_eq!(seen[999], k(0));
    }

    #[test]
    fn early_stop_via_visitor() {
        let t = tree();
        for i in 0..100 {
            t.insert(&k(i), id(i as u64)).unwrap();
        }
        let mut n = 0;
        t.scan_range(Bound::Unbounded, Bound::Unbounded, false, |_, _| {
            n += 1;
            n < 5
        })
        .unwrap();
        assert_eq!(n, 5);
    }

    #[test]
    fn remove_and_lazy_cleanup() {
        let t = tree();
        for i in 0..500 {
            t.insert(&k(i), id(i as u64)).unwrap();
        }
        for i in (0..500).step_by(2) {
            assert!(t.remove(&k(i), id(i as u64)).unwrap());
        }
        assert!(!t.remove(&k(0), id(0)).unwrap(), "already gone");
        assert_eq!(t.len().unwrap(), 250);
        assert_eq!(t.lookup(&k(2)).unwrap(), Vec::<AtomId>::new());
        assert_eq!(t.lookup(&k(3)).unwrap(), vec![id(3)]);
        t.check_invariants().unwrap();
    }

    #[test]
    fn heavy_duplicates_overflow_entries() {
        let t = tree();
        // Far beyond MAX_IDS_PER_ENTRY to force same-key entry chains and
        // splits.
        for n in 0..1000u64 {
            t.insert(&k(42), id(n)).unwrap();
        }
        let mut ids = t.lookup(&k(42)).unwrap();
        ids.sort();
        assert_eq!(ids.len(), 1000);
        assert_eq!(ids[999], id(999));
        t.check_invariants().unwrap();
        // Remove them all again.
        for n in 0..1000u64 {
            assert!(t.remove(&k(42), id(n)).unwrap(), "removing {n}");
        }
        assert_eq!(t.len().unwrap(), 0);
    }

    #[test]
    fn string_keys_work() {
        let t = tree();
        let key = |s: &str| encode_composite_key(&[Value::Str(s.into())]);
        for s in ["delta", "alpha", "charlie", "bravo"] {
            t.insert(&key(s), id(s.len() as u64)).unwrap();
        }
        let mut order = Vec::new();
        t.scan_range(Bound::Unbounded, Bound::Unbounded, false, |k, _| {
            order.push(k.to_vec());
            true
        })
        .unwrap();
        assert_eq!(order, vec![key("alpha"), key("bravo"), key("charlie"), key("delta")]);
    }
}
