//! E-F2.2 — Fig. 2.2: association types are symmetric.
//!
//! "An association is symmetric in that the referenced record must
//! contain a back-reference that can be used in exactly the same way."
//! For 1:n and n:m association types at several fan-outs, forward
//! derivation (A→B) and backward derivation (B→A) must have the same
//! cost shape — unlike hierarchical models where the inverse direction
//! needs a scan.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use prima_workloads::exec;
use prima::{Prima, Value};
use prima_bench::report;

const DDL: &str = "
CREATE ATOM_TYPE a
  ( id : IDENTIFIER, a_no : INTEGER,
    bs : SET_OF (REF_TO (b.as_)) )
KEYS_ARE (a_no);
CREATE ATOM_TYPE b
  ( id : IDENTIFIER, b_no : INTEGER,
    as_ : SET_OF (REF_TO (a.bs)) )
KEYS_ARE (b_no);
";

/// n:m graph: `n_a` A-atoms, each referencing `fanout` B-atoms; B-atoms
/// shared round-robin so each B is referenced by ~`fanout` A's too.
fn build(n_a: usize, fanout: usize) -> Prima {
    let db = Prima::builder().buffer_bytes(64 << 20).build_with_ddl(DDL).unwrap();
    let n_b = n_a; // symmetric population
    let mut bs = Vec::new();
    for i in 0..n_b {
        bs.push(db.insert("b", &[("b_no", Value::Int(i as i64 + 1))]).unwrap());
    }
    for i in 0..n_a {
        let targets: Vec<_> = (0..fanout).map(|k| bs[(i + k * 7) % n_b]).collect();
        db.insert(
            "a",
            &[("a_no", Value::Int(i as i64 + 1)), ("bs", Value::ref_set(targets))],
        )
        .unwrap();
    }
    db
}

fn bench_symmetry(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig2_2_symmetry");
    g.sample_size(20);
    for fanout in [1usize, 4, 16] {
        let db = build(256, fanout);
        let fwd_q = "SELECT ALL FROM a-b WHERE a_no = 17";
        let bwd_q = "SELECT ALL FROM b-a WHERE b_no = 17";
        // Shape: derived set sizes are comparable in both directions.
        let fwd = exec::query(&db, fwd_q).unwrap();
        let bwd = exec::query(&db, bwd_q).unwrap();
        report(
            "F2.2",
            &format!("fanout={fanout} forward a->b"),
            "derived_atoms",
            fwd.atoms_of("b").len(),
        );
        report(
            "F2.2",
            &format!("fanout={fanout} backward b->a"),
            "derived_atoms",
            bwd.atoms_of("a").len(),
        );
        g.bench_with_input(BenchmarkId::new("forward", fanout), &fanout, |bch, _| {
            bch.iter(|| exec::query(&db, fwd_q).unwrap())
        });
        g.bench_with_input(BenchmarkId::new("backward", fanout), &fanout, |bch, _| {
            bch.iter(|| exec::query(&db, bwd_q).unwrap())
        });
    }
    g.finish();
}

criterion_group!(benches, bench_symmetry);
criterion_main!(benches);
