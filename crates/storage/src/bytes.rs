//! Panic-free little-endian field decoding for on-disk formats.
//!
//! `le_uN(b)` reads the first `N/8` bytes of `b`, zero-padding a short
//! slice instead of panicking. Callers pass exactly-sized subslices whose
//! bounds are enforced by their own framing checks; the helpers exist so
//! decode paths need no `try_into().unwrap()` (see the `error-hygiene`
//! rule in `prima-lint`).

#[inline]
pub fn le_u16(b: &[u8]) -> u16 {
    let mut a = [0u8; 2];
    for (d, s) in a.iter_mut().zip(b) {
        *d = *s;
    }
    u16::from_le_bytes(a)
}

#[inline]
pub fn le_u32(b: &[u8]) -> u32 {
    let mut a = [0u8; 4];
    for (d, s) in a.iter_mut().zip(b) {
        *d = *s;
    }
    u32::from_le_bytes(a)
}

#[inline]
pub fn le_u64(b: &[u8]) -> u64 {
    let mut a = [0u8; 8];
    for (d, s) in a.iter_mut().zip(b) {
        *d = *s;
    }
    u64::from_le_bytes(a)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips() {
        assert_eq!(le_u16(&0xBEEFu16.to_le_bytes()), 0xBEEF);
        assert_eq!(le_u32(&0xDEAD_BEEFu32.to_le_bytes()), 0xDEAD_BEEF);
        assert_eq!(le_u64(&0x0123_4567_89AB_CDEFu64.to_le_bytes()), 0x0123_4567_89AB_CDEF);
    }

    #[test]
    fn short_input_zero_pads() {
        assert_eq!(le_u32(&[0x01, 0x02]), 0x0201);
        assert_eq!(le_u64(&[]), 0);
    }

    #[test]
    fn long_input_reads_prefix() {
        assert_eq!(le_u16(&[0x01, 0x02, 0xFF, 0xFF]), 0x0201);
    }
}
