//! BREP solid-modeling workload (Fig. 2.1 / Fig. 2.3 of the paper).
//!
//! Generates a database over the *verbatim* Fig. 2.3 schema: solids with
//! an assembly hierarchy (`sub`/`super`, recursive n:m), each solid
//! optionally carrying a boundary representation (brep → faces → edges →
//! points with full symmetric associations). Geometry is a hexahedron
//! (box): 6 faces, 12 edges, 8 points per brep — Euler-consistent
//! (V − E + F = 2).

use prima::{Prima, PrimaResult, Value};
use prima_mad::ddl::FIG_2_3_DDL;
use prima_mad::value::AtomId;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Workload parameters.
#[derive(Debug, Clone)]
pub struct BrepConfig {
    /// Number of *base* solids with boundary representations.
    pub solids: usize,
    /// Assembly hierarchy depth (0 = no hierarchy). Composite solids are
    /// created on top of base solids.
    pub assembly_depth: usize,
    /// Children per composite solid.
    pub assembly_fanout: usize,
    /// RNG seed (generation is deterministic given the config).
    pub seed: u64,
}

impl Default for BrepConfig {
    fn default() -> Self {
        BrepConfig { solids: 10, assembly_depth: 0, assembly_fanout: 2, seed: 42 }
    }
}

impl BrepConfig {
    pub fn with_solids(n: usize) -> Self {
        BrepConfig { solids: n, ..Default::default() }
    }

    pub fn with_assembly(n: usize, depth: usize, fanout: usize) -> Self {
        BrepConfig { solids: n, assembly_depth: depth, assembly_fanout: fanout, seed: 42 }
    }
}

/// What the generator produced.
#[derive(Debug, Clone, Default)]
pub struct BrepStats {
    pub solid_ids: Vec<AtomId>,
    pub brep_ids: Vec<AtomId>,
    /// solid_no of each base solid (brep_no equals it).
    pub base_solid_nos: Vec<i64>,
    /// solid_no of the assembly roots (empty without hierarchy).
    pub root_solid_nos: Vec<i64>,
    pub faces: usize,
    pub edges: usize,
    pub points: usize,
}

/// The schema used (Fig. 2.3, verbatim).
pub fn schema_ddl() -> &'static str {
    FIG_2_3_DDL
}

/// Builds a PRIMA instance with the Fig. 2.3 schema.
pub fn open_db(buffer_bytes: usize) -> PrimaResult<Prima> {
    Prima::builder().buffer_bytes(buffer_bytes).build_with_ddl(FIG_2_3_DDL)
}

/// Populates `db` with the configured workload.
pub fn populate(db: &Prima, cfg: &BrepConfig) -> PrimaResult<BrepStats> {
    let mut rng = SmallRng::seed_from_u64(cfg.seed);
    let mut stats = BrepStats::default();
    let mut next_no: i64 = 1;
    // Base solids with boxes.
    for _ in 0..cfg.solids {
        let no = next_no;
        next_no += 1;
        let solid = db.insert(
            "solid",
            &[
                ("solid_no", Value::Int(no)),
                ("description", Value::Str(format!("base solid {no}"))),
            ],
        )?;
        let brep = insert_box(db, solid, no, &mut rng)?;
        stats.solid_ids.push(solid);
        stats.brep_ids.push(brep);
        stats.base_solid_nos.push(no);
        stats.faces += 6;
        stats.edges += 12;
        stats.points += 8;
    }
    // Assembly hierarchy: level by level, composites reference previously
    // created solids via sub/super ("solids are 'constructed' using
    // previously defined solids").
    let mut current_level: Vec<AtomId> = stats.solid_ids.clone();
    for _depth in 0..cfg.assembly_depth {
        if current_level.len() <= 1 {
            break;
        }
        let mut next_level = Vec::new();
        for chunk in current_level.chunks(cfg.assembly_fanout.max(1)) {
            let no = next_no;
            next_no += 1;
            let composite = db.insert(
                "solid",
                &[
                    ("solid_no", Value::Int(no)),
                    ("description", Value::Str(format!("assembly {no}"))),
                    ("sub", Value::ref_set(chunk.to_vec())),
                ],
            )?;
            stats.solid_ids.push(composite);
            next_level.push(composite);
        }
        current_level = next_level;
    }
    stats.root_solid_nos = if cfg.assembly_depth > 0 {
        // Roots are the last level created.
        let set: Vec<i64> = current_level
            .iter()
            .map(|id| {
                let a = db.read(*id).expect("exists");
                a.values[1].as_int().expect("solid_no set")
            })
            .collect();
        set
    } else {
        Vec::new()
    };
    Ok(stats)
}

/// Inserts one hexahedral boundary representation for `solid` and wires
/// every association of the Fig. 2.3 schema symmetrically.
/// Returns the brep's id.
pub fn insert_box(
    db: &Prima,
    solid: AtomId,
    brep_no: i64,
    rng: &mut SmallRng,
) -> PrimaResult<AtomId> {
    // Box corner coordinates with a random origin and extents.
    let ox: f64 = rng.gen_range(-100.0..100.0);
    let oy: f64 = rng.gen_range(-100.0..100.0);
    let oz: f64 = rng.gen_range(-100.0..100.0);
    let dx: f64 = rng.gen_range(1.0..10.0);
    let dy: f64 = rng.gen_range(1.0..10.0);
    let dz: f64 = rng.gen_range(1.0..10.0);

    let brep = db.insert(
        "brep",
        &[
            ("brep_no", Value::Int(brep_no)),
            (
                "hull",
                Value::Array(vec![Value::Real(dx), Value::Real(dy), Value::Real(dz)]),
            ),
            ("solid", Value::Ref(Some(solid))),
        ],
    )?;

    // 8 vertices of the box.
    let corners = [
        (0., 0., 0.),
        (1., 0., 0.),
        (1., 1., 0.),
        (0., 1., 0.),
        (0., 0., 1.),
        (1., 0., 1.),
        (1., 1., 1.),
        (0., 1., 1.),
    ];
    let mut points = Vec::with_capacity(8);
    for (cx, cy, cz) in corners {
        let p = db.insert(
            "point",
            &[
                (
                    "placement",
                    Value::Record(vec![
                        ("x_coord".into(), Value::Real(ox + cx * dx)),
                        ("y_coord".into(), Value::Real(oy + cy * dy)),
                        ("z_coord".into(), Value::Real(oz + cz * dz)),
                    ]),
                ),
                ("brep", Value::Ref(Some(brep))),
            ],
        )?;
        points.push(p);
    }

    // 12 edges (vertex index pairs of a hexahedron).
    const EDGES: [(usize, usize); 12] = [
        (0, 1),
        (1, 2),
        (2, 3),
        (3, 0),
        (4, 5),
        (5, 6),
        (6, 7),
        (7, 4),
        (0, 4),
        (1, 5),
        (2, 6),
        (3, 7),
    ];
    let corner = |i: usize| -> (f64, f64, f64) {
        let (cx, cy, cz) = corners[i];
        (ox + cx * dx, oy + cy * dy, oz + cz * dz)
    };
    let mut edges = Vec::with_capacity(12);
    for (a, b) in EDGES {
        let (x1, y1, z1) = corner(a);
        let (x2, y2, z2) = corner(b);
        let length = ((x2 - x1).powi(2) + (y2 - y1).powi(2) + (z2 - z1).powi(2)).sqrt();
        let e = db.insert(
            "edge",
            &[
                ("length", Value::Real(length)),
                ("boundary", Value::ref_set(vec![points[a], points[b]])),
                ("brep", Value::Ref(Some(brep))),
            ],
        )?;
        edges.push(e);
    }

    // 6 faces (edge index quadruples and their corner points).
    const FACES: [([usize; 4], [usize; 4]); 6] = [
        ([0, 1, 2, 3], [0, 1, 2, 3]),     // bottom
        ([4, 5, 6, 7], [4, 5, 6, 7]),     // top
        ([0, 9, 4, 8], [0, 1, 5, 4]),     // front
        ([2, 10, 6, 11], [2, 3, 7, 6]),   // back
        ([1, 10, 5, 9], [1, 2, 6, 5]),    // right
        ([3, 11, 7, 8], [3, 0, 4, 7]),    // left
    ];
    for (i, (edge_idx, point_idx)) in FACES.iter().enumerate() {
        let area = match i {
            0 | 1 => dx * dy,
            2 | 3 => dx * dz,
            _ => dy * dz,
        };
        db.insert(
            "face",
            &[
                ("square_dim", Value::Real(area)),
                ("border", Value::ref_set(edge_idx.iter().map(|&e| edges[e]).collect())),
                (
                    "crosspoint",
                    Value::ref_set(point_idx.iter().map(|&p| points[p]).collect()),
                ),
                ("brep", Value::Ref(Some(brep))),
            ],
        )?;
    }
    Ok(brep)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn populate_builds_consistent_boxes() {
        let db = open_db(8 << 20).unwrap();
        let stats = populate(&db, &BrepConfig::with_solids(3)).unwrap();
        assert_eq!(stats.solid_ids.len(), 3);
        assert_eq!(stats.faces, 18);
        assert_eq!(stats.edges, 36);
        assert_eq!(stats.points, 24);
        // Back-references materialised: brep sees its 6 faces.
        let brep = db.read(stats.brep_ids[0]).unwrap();
        let schema = db.schema();
        let bt = schema.type_by_name("brep").unwrap();
        let faces = &brep.values[bt.attribute_index("faces").unwrap()];
        assert_eq!(faces.referenced_ids().len(), 6);
        assert_eq!(
            brep.values[bt.attribute_index("edges").unwrap()].referenced_ids().len(),
            12
        );
        assert_eq!(
            brep.values[bt.attribute_index("points").unwrap()].referenced_ids().len(),
            8
        );
    }

    #[test]
    fn vertical_access_retrieves_whole_molecule() {
        let db = open_db(8 << 20).unwrap();
        populate(&db, &BrepConfig::with_solids(2)).unwrap();
        let set = crate::exec::query(&db, "SELECT ALL FROM brep-face-edge-point WHERE brep_no = 1")
            .unwrap();
        assert_eq!(set.len(), 1);
        assert_eq!(set.atoms_of("face").len(), 6);
        // Each face lists 4 border edges; edges shared between faces
        // appear under each (24 edge slots, 12 distinct edges).
        assert_eq!(set.atoms_of("edge").len(), 24);
    }

    #[test]
    fn assembly_hierarchy_is_recursive() {
        let db = open_db(8 << 20).unwrap();
        let stats = populate(&db, &BrepConfig::with_assembly(4, 2, 2)).unwrap();
        assert_eq!(stats.root_solid_nos.len(), 1);
        let root_no = stats.root_solid_nos[0];
        let set = crate::exec::query(&db, &format!(
                "SELECT ALL FROM piece_list WHERE piece_list (0).solid_no = {root_no}"
            ))
            .unwrap();
        assert_eq!(set.len(), 1);
        // Root + 2 mid assemblies + 4 base solids.
        assert_eq!(set.molecules[0].atom_count(), 7);
        assert_eq!(set.molecules[0].depth(), 2);
    }

    #[test]
    fn determinism() {
        let db1 = open_db(4 << 20).unwrap();
        let db2 = open_db(4 << 20).unwrap();
        let s1 = populate(&db1, &BrepConfig::default()).unwrap();
        let s2 = populate(&db2, &BrepConfig::default()).unwrap();
        assert_eq!(s1.base_solid_nos, s2.base_solid_nos);
        let a1 = db1.read(s1.brep_ids[0]).unwrap();
        let a2 = db2.read(s2.brep_ids[0]).unwrap();
        assert_eq!(a1.values, a2.values);
    }
}
