//! Atom-granularity lock table with Moss's nested-transaction rules.

use super::{TxnError, TxnId};
use parking_lot::Mutex;
use prima_mad::value::AtomId;
use std::collections::HashMap;

/// Lock modes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LockMode {
    Shared,
    Exclusive,
}

#[derive(Debug, Default)]
struct Entry {
    /// `(holder, mode)` pairs; multiple Shared holders possible, one
    /// Exclusive holder (plus the same holder may also appear Shared).
    holders: Vec<(TxnId, LockMode)>,
}

/// The lock table.
#[derive(Debug, Default)]
pub struct LockTable {
    entries: Mutex<HashMap<AtomId, Entry>>,
}

impl LockTable {
    pub fn new() -> Self {
        Self::default()
    }

    /// Acquires `mode` on `atom` for `t`. `ancestors` must contain `t`
    /// itself plus all its ancestors; a conflicting holder is tolerated
    /// iff it is in that set (Moss's rule: "all holders are ancestors").
    pub fn acquire(
        &self,
        t: TxnId,
        ancestors: &[TxnId],
        atom: AtomId,
        mode: LockMode,
    ) -> Result<(), TxnError> {
        let mut entries = self.entries.lock();
        let e = entries.entry(atom).or_default();
        for (holder, hmode) in &e.holders {
            let conflicting = matches!(
                (hmode, mode),
                (LockMode::Exclusive, _) | (_, LockMode::Exclusive)
            );
            if conflicting && !ancestors.contains(holder) {
                return Err(TxnError::LockConflict { atom, holder: *holder });
            }
        }
        // Upgrade / record.
        match e.holders.iter_mut().find(|(h, _)| *h == t) {
            Some(slot) => {
                if mode == LockMode::Exclusive {
                    slot.1 = LockMode::Exclusive;
                }
            }
            None => e.holders.push((t, mode)),
        }
        Ok(())
    }

    /// Transfers all of `from`'s locks to `to` (subtransaction commit —
    /// "anti-inheritance").
    pub fn transfer(&self, from: TxnId, to: TxnId) {
        let mut entries = self.entries.lock();
        for e in entries.values_mut() {
            let mut inherited: Option<LockMode> = None;
            e.holders.retain(|(h, m)| {
                if *h == from {
                    inherited = Some(match (inherited, *m) {
                        (Some(LockMode::Exclusive), _) | (_, LockMode::Exclusive) => {
                            LockMode::Exclusive
                        }
                        _ => LockMode::Shared,
                    });
                    false
                } else {
                    true
                }
            });
            if let Some(m) = inherited {
                match e.holders.iter_mut().find(|(h, _)| *h == to) {
                    Some(slot) => {
                        if m == LockMode::Exclusive {
                            slot.1 = LockMode::Exclusive;
                        }
                    }
                    None => e.holders.push((to, m)),
                }
            }
        }
    }

    /// Releases all locks of `t` (top-level commit or abort).
    pub fn release_all(&self, t: TxnId) {
        let mut entries = self.entries.lock();
        entries.retain(|_, e| {
            e.holders.retain(|(h, _)| *h != t);
            !e.holders.is_empty()
        });
    }

    /// Number of atoms with at least one lock (diagnostics).
    pub fn locked_atoms(&self) -> usize {
        self.entries.lock().len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn id(n: u64) -> AtomId {
        AtomId::new(0, n)
    }

    #[test]
    fn shared_locks_coexist() {
        let lt = LockTable::new();
        lt.acquire(TxnId(1), &[TxnId(1)], id(1), LockMode::Shared).unwrap();
        lt.acquire(TxnId(2), &[TxnId(2)], id(1), LockMode::Shared).unwrap();
        assert_eq!(lt.locked_atoms(), 1);
    }

    #[test]
    fn exclusive_conflicts_with_stranger() {
        let lt = LockTable::new();
        lt.acquire(TxnId(1), &[TxnId(1)], id(1), LockMode::Exclusive).unwrap();
        let err = lt.acquire(TxnId(2), &[TxnId(2)], id(1), LockMode::Shared).unwrap_err();
        assert!(matches!(err, TxnError::LockConflict { holder: TxnId(1), .. }));
        let err = lt.acquire(TxnId(2), &[TxnId(2)], id(1), LockMode::Exclusive).unwrap_err();
        assert!(matches!(err, TxnError::LockConflict { .. }));
    }

    #[test]
    fn ancestor_holding_lock_is_not_a_conflict() {
        let lt = LockTable::new();
        // parent 1 holds X; child 2 (ancestors [2,1]) may acquire.
        lt.acquire(TxnId(1), &[TxnId(1)], id(1), LockMode::Exclusive).unwrap();
        lt.acquire(TxnId(2), &[TxnId(2), TxnId(1)], id(1), LockMode::Exclusive).unwrap();
        // sibling 3 (ancestors [3,1]) conflicts with 2's X.
        let err = lt.acquire(TxnId(3), &[TxnId(3), TxnId(1)], id(1), LockMode::Shared);
        assert!(err.is_err());
    }

    #[test]
    fn transfer_on_subcommit() {
        let lt = LockTable::new();
        lt.acquire(TxnId(2), &[TxnId(2), TxnId(1)], id(1), LockMode::Exclusive).unwrap();
        lt.transfer(TxnId(2), TxnId(1));
        // A stranger still conflicts — now with txn 1.
        let err = lt.acquire(TxnId(9), &[TxnId(9)], id(1), LockMode::Shared).unwrap_err();
        assert!(matches!(err, TxnError::LockConflict { holder: TxnId(1), .. }));
        // Another child of 1 may acquire (holder is its ancestor).
        lt.acquire(TxnId(3), &[TxnId(3), TxnId(1)], id(1), LockMode::Shared).unwrap();
    }

    #[test]
    fn release_all_clears() {
        let lt = LockTable::new();
        lt.acquire(TxnId(1), &[TxnId(1)], id(1), LockMode::Exclusive).unwrap();
        lt.acquire(TxnId(1), &[TxnId(1)], id(2), LockMode::Shared).unwrap();
        lt.release_all(TxnId(1));
        assert_eq!(lt.locked_atoms(), 0);
        lt.acquire(TxnId(2), &[TxnId(2)], id(1), LockMode::Exclusive).unwrap();
    }

    #[test]
    fn shared_then_upgrade_by_same_txn() {
        let lt = LockTable::new();
        lt.acquire(TxnId(1), &[TxnId(1)], id(1), LockMode::Shared).unwrap();
        lt.acquire(TxnId(1), &[TxnId(1)], id(1), LockMode::Exclusive).unwrap();
        let err = lt.acquire(TxnId(2), &[TxnId(2)], id(1), LockMode::Shared);
        assert!(err.is_err());
    }
}
