#!/usr/bin/env bash
# Runs the perf-trajectory benches and collects their BENCHJSON lines
# into one JSON array:
#   * batched_assembly — per (fanout, buffer regime, assembly mode)
#     records with atoms/sec and fix_calls / pages_loaded counters;
#   * prepared_exec — prepared-vs-reparse timings and plan-reuse proof;
#   * wal_commit — commit latency no-WAL vs WAL-force vs group-sized
#     batches, with WAL forces/bytes and simulated device time per
#     statement;
#   * multi_session — throughput of concurrent session threads,
#     conflict-heavy vs disjoint key placement, with the lock manager's
#     wait/timeout/deadlock counters per series;
#   * snapshot_read (BENCH-5, selected explicitly:
#     `perf_trajectory.sh BENCH_5.json snapshot_read`) — reader
#     throughput against one long-hold writer, locked reads vs MVCC
#     snapshot reads, with lock-acquisition and version-store counters;
#   * group_commit (BENCH-6, selected explicitly:
#     `perf_trajectory.sh BENCH_6.json group_commit`) — N committing
#     sessions on a FileDisk, force-per-commit vs cross-session group
#     commit, with ops/sec and the wal_forces / commits-per-force
#     counters; asserts forces/commit < 1.0 for the grouped series at
#     >= 4 sessions;
#   * every criterion-shim benchmark additionally emits a
#     {"bench":"criterion", ...} record carrying mean/stddev/min/max so
#     small (<10%) deltas can be judged against run-to-run noise;
#   * each perf bench also emits {"bench":"metrics","source":...,
#     "render":...} records embedding the kernel's full metrics
#     exposition (MetricsSnapshot::render_text: buffer/io/access/lock/
#     version/api counters + per-statement-kind latency quantiles) for
#     the database the timings were measured on.
#
# Sanity leg (`perf_trajectory.sh --sanity BENCH_4.json`): re-runs the
# release `multi_session` bench — rank tracking compiled out, since
# release builds without the `lockrank` feature stub `new_ranked` to
# `new` — and asserts per-series ops/sec shows no regression vs the
# reference record (>= TOLERANCE x, default 0.6 to absorb CI noise on
# the conflict-heavy series).
set -euo pipefail
cd "$(dirname "$0")/.."

if [ "${1:-}" = "--sanity" ]; then
    ref="${2:?usage: perf_trajectory.sh --sanity <reference BENCH_4.json>}"
    tol="${PRIMA_SANITY_TOLERANCE:-0.6}"
    log="$(mktemp)"
    trap 'rm -f "$log"' EXIT
    cargo bench --bench multi_session 2>&1 | tee "$log"
    grep '^BENCHJSON ' "$log" | sed 's/^BENCHJSON //' > "$log.fresh"
    python3 - "$ref" "$log.fresh" "$tol" <<'EOF'
import json, sys

ref_path, fresh_path, tol = sys.argv[1], sys.argv[2], float(sys.argv[3])
with open(ref_path) as f:
    ref = {r["series"]: r["ops_per_sec"] for r in json.load(f)
           if r.get("bench") == "multi_session"}
fresh = {}
with open(fresh_path) as f:
    for line in f:
        r = json.loads(line)
        if r.get("bench") == "multi_session":
            fresh[r["series"]] = r["ops_per_sec"]

if not ref:
    sys.exit(f"no multi_session records in reference {ref_path}")
failed = False
for series, want in sorted(ref.items()):
    got = fresh.get(series)
    if got is None:
        print(f"SANITY FAIL {series}: missing from fresh run")
        failed = True
        continue
    ratio = got / want if want else float("inf")
    verdict = "ok" if ratio >= tol else "REGRESSION"
    print(f"sanity {series}: ref {want:.0f} ops/s, fresh {got:.0f} ops/s "
          f"({ratio:.2f}x, floor {tol:.2f}x) {verdict}")
    failed |= ratio < tol
sys.exit(1 if failed else 0)
EOF
    rm -f "$log.fresh"
    echo "sanity leg passed: release multi_session shows no regression vs $ref"
    exit 0
fi

out="${1:-BENCH_4.json}"
shift || true
benches=("${@:-}")
if [ -z "${benches[0]:-}" ]; then
    benches=(batched_assembly prepared_exec wal_commit multi_session)
fi

log="$(mktemp)"
trap 'rm -f "$log"' EXIT

for b in "${benches[@]}"; do
    cargo bench --bench "$b" 2>&1 | tee -a "$log"
done

grep '^BENCHJSON ' "$log" | sed 's/^BENCHJSON //' | awk '
    { lines[NR] = $0 }
    END {
        print "["
        for (i = 1; i <= NR; i++) printf "  %s%s\n", lines[i], (i < NR ? "," : "")
        print "]"
    }' > "$out"

echo "wrote $out ($(grep -c '^BENCHJSON ' "$log") records)"
