//! Randomized crash-consistency workload and committed-prefix oracle.
//!
//! One *crash schedule* = one seed. The seed derives a
//! [`FaultSchedule`] (when the simulated medium dies and how much of the
//! acknowledged-but-unpersisted state survives — see
//! `prima_storage::fault_disk`) **and** drives the Session workload that
//! runs against it: a random interleaving of INSERT / MODIFY / DELETE,
//! commits, rollbacks, buffer flushes (steal) and checkpoints, mirrored
//! step by step in an in-memory model.
//!
//! When the crash fires (or [`run_crash_schedule`] pulls the plug at the
//! end of the script), the kernel is discarded, the database is reopened
//! from the **persisted image** with `Prima::open`-style restart
//! recovery, and the recovered state is checked against the oracle:
//!
//! * **committed prefix** — the recovered database equals the model at
//!   the last *acknowledged* commit. The only admissible alternative is
//!   the model at the commit that was *in flight* when the crash hit its
//!   WAL force (the force may have fully persisted before the medium
//!   died — the classic "commit returned an error but actually became
//!   durable" outcome); the recovered state must be exactly one of the
//!   two, never a frankenstate in between.
//! * **losers are gone** — uncommitted and rolled-back work is absent.
//! * **surrogates are never reused** — atoms carry the exact ids the
//!   model recorded for them, and a post-recovery insert allocates an id
//!   above everything the durable state ever contained.
//!
//! Any violation panics with a one-line reproducer (`seed`, step count
//! and the command to replay it); the whole run is deterministic from
//! the seed.

use prima::datasys::DmlResult;
use prima::txn::TxnError;
use prima::{LockConfig, Prima, PrimaError, QueryOptions, RetryPolicy, Value};
use prima_storage::{BlockDevice, FaultDisk, FaultSchedule};
use rand::{rngs::SmallRng, Rng, SeedableRng};
use std::collections::BTreeMap;
use std::sync::Arc;
use std::time::Duration;

/// Schema of the crash workload: one keyed atom type, like the recovery
/// kill-point suite — the oracle is about durability, not molecule
/// semantics.
pub const CRASH_DDL: &str = "
    CREATE ATOM_TYPE part (
        part_id : IDENTIFIER,
        part_no : INTEGER,
        name    : CHAR_VAR )
    KEYS_ARE (part_no);
";

/// `part_no → (name, surrogate seq)` — one model state.
type ModelState = BTreeMap<i64, (String, u64)>;

/// What one executed schedule did (for harness-level reporting).
#[derive(Debug, Clone)]
pub struct CrashReport {
    pub seed: u64,
    /// Statements issued before the crash stopped the workload.
    pub steps_run: usize,
    /// Commits acknowledged (`commit()` returned `Ok`).
    pub acked_commits: usize,
    /// Whether the crash hit while `build_with_ddl` was still running
    /// (no workload; recovery may legitimately find no database).
    pub bootstrap_crash: bool,
    /// Whether the matched state was the in-flight commit rather than
    /// the last acknowledged one.
    pub in_flight_won: bool,
}

fn repro(seed: u64, steps: usize, what: &str, detail: String) -> String {
    format!(
        "crash-consistency violation: {what}\n\
         PRIMA_FUZZ_REPRO: PRIMA_FUZZ_SEED_BASE={seed} PRIMA_FUZZ_SEEDS=1 \
         PRIMA_FUZZ_OPS={steps} cargo test --test crash_consistency -- --nocapture\n\
         {detail}"
    )
}

/// Cross-family metric invariants must hold on a quiesced kernel; a
/// violation here means a counter was dropped or double-bumped somewhere
/// on the recovery or post-recovery path.
fn check_metrics_coherence(db: &Prima, seed: u64, steps: usize, when: &str) {
    if let Err(violations) = db.metrics().check_coherence() {
        panic!(
            "{}",
            repro(seed, steps, "metrics coherence violated", format!("{when}: {violations:?}"))
        );
    }
}

/// Reads the full `part` extension as a model state.
fn observe(db: &Prima) -> ModelState {
    let set = db
        .session()
        .query("SELECT ALL FROM part", &QueryOptions::default())
        .expect("post-recovery query must work")
        .set;
    set.molecules
        .iter()
        .map(|m| {
            let v = &m.root.atom.values;
            let seq = match &v[0] {
                Value::Id(id) => id.seq,
                other => panic!("part_id should be an identifier, got {other:?}"),
            };
            let no = match &v[1] {
                Value::Int(n) => *n,
                other => panic!("part_no should be Int, got {other:?}"),
            };
            let name = match &v[2] {
                Value::Str(s) => s.clone(),
                other => panic!("name should be Str, got {other:?}"),
            };
            (no, (name, seq))
        })
        .collect()
}

/// Runs one seed-determined fault schedule over `inner` (a fresh
/// `SimDisk` or `FileDisk`), crashes, recovers from the persisted image
/// and checks the oracle. Panics with a seed-carrying reproducer on any
/// violation; returns what happened otherwise.
pub fn run_crash_schedule(inner: Arc<dyn BlockDevice>, seed: u64, steps: usize) -> CrashReport {
    let schedule = FaultSchedule::from_seed(seed);
    let fault = FaultDisk::new(inner, schedule);
    let device: Arc<dyn BlockDevice> = Arc::clone(&fault) as Arc<dyn BlockDevice>;

    // A small buffer keeps eviction (steal) in play: the workload's
    // record pages outgrow it, so dirty pages of open transactions get
    // stolen to the device mid-flight.
    let built = Prima::builder()
        .buffer_bytes(16 << 10)
        .device(device)
        .durable()
        .build_with_ddl(CRASH_DDL);
    let db = match built {
        Ok(db) => db,
        Err(e) => {
            if !fault.has_crashed() {
                panic!("{}", repro(seed, steps, "build failed without a crash", e.to_string()));
            }
            // Crash during bootstrap: either no durable database exists
            // yet (open fails cleanly — it never came into existence) or
            // the initial checkpoint made it and the database must come
            // back empty.
            if let Ok(db) = Prima::open_device(fault.persisted_device()) {
                let state = observe(&db);
                if !state.is_empty() {
                    panic!(
                        "{}",
                        repro(
                            seed,
                            steps,
                            "bootstrap crash recovered non-empty state",
                            format!("{state:?}"),
                        )
                    );
                }
            }
            return CrashReport {
                seed,
                steps_run: 0,
                acked_commits: 0,
                bootstrap_crash: true,
                in_flight_won: false,
            };
        }
    };

    let mut rng = SmallRng::seed_from_u64(seed ^ 0x3a3a_c0de_2026_0001);
    let session = db.session();

    // The model: committed snapshots (index = acknowledged commit count)
    // plus the pending state of the open transaction.
    let mut snapshots: Vec<ModelState> = vec![ModelState::new()];
    let mut pending = ModelState::new();
    // Set when a commit's force was in flight at the crash: the batch
    // may have fully persisted, so this state is also admissible.
    let mut in_flight: Option<ModelState> = None;
    let mut version = 0u64;
    let mut steps_run = 0usize;

    'workload: for _ in 0..steps {
        if fault.has_crashed() {
            break;
        }
        steps_run += 1;
        let roll = rng.gen_range(0u32..100);
        if roll < 35 {
            // A burst of INSERTs (duplicate keys possible; the model
            // predicts them). Fat values spread the extension over many
            // pages, keeping replacement (and therefore steal) in play.
            for _ in 0..rng.gen_range(1usize..4) {
                let no = rng.gen_range(0i64..300);
                let name = format!("v{version}-{:0>400}", version);
                version += 1;
                match session.execute(&format!("INSERT part (part_no: {no}, name: '{name}')")) {
                    Ok(DmlResult::Inserted(id)) => {
                        let prev = pending.insert(no, (name, id.seq));
                        if prev.is_some() {
                            panic!(
                                "{}",
                                repro(seed, steps, "duplicate key accepted", format!("no={no}"))
                            );
                        }
                    }
                    Ok(other) => {
                        panic!("{}", repro(seed, steps, "INSERT wrong result", format!("{other:?}")))
                    }
                    Err(_) if fault.has_crashed() => break 'workload,
                    // The key-uniqueness rejection surfaces through the
                    // txn layer as a stringly Access error; anything else
                    // on an existing key is a real failure, not the
                    // predicted duplicate.
                    Err(e)
                        if pending.contains_key(&no)
                            && e.to_string().contains("duplicate key") => {}
                    Err(e) => {
                        panic!(
                            "{}",
                            repro(seed, steps, "unexpected INSERT error", e.to_string())
                        );
                    }
                }
            }
        } else if roll < 55 {
            // A burst of MODIFYs on scattered keys: re-dirties cold
            // pages, so the following misses can steal them while their
            // images are still unforced.
            for _ in 0..rng.gen_range(1usize..4) {
                let Some(&no) = pick_key(&pending, &mut rng) else { break };
                let name = format!("m{version}-{:0>400}", version);
                version += 1;
                match session
                    .execute(&format!("MODIFY part SET name = '{name}' WHERE part_no = {no}"))
                {
                    Ok(_) => pending.get_mut(&no).expect("picked from pending").0 = name,
                    Err(_) if fault.has_crashed() => break 'workload,
                    Err(e) => {
                        panic!("{}", repro(seed, steps, "unexpected MODIFY error", e.to_string()))
                    }
                }
            }
        } else if roll < 65 {
            // DELETE an existing key.
            let Some(&no) = pick_key(&pending, &mut rng) else { continue };
            match session.execute(&format!("DELETE FROM part WHERE part_no = {no}")) {
                Ok(_) => {
                    pending.remove(&no);
                }
                Err(_) if fault.has_crashed() => break 'workload,
                Err(e) => {
                    panic!("{}", repro(seed, steps, "unexpected DELETE error", e.to_string()))
                }
            }
        } else if roll < 75 {
            // Point query on a random key: buffer misses that evict —
            // stealing dirty pages of the open transaction.
            let no = rng.gen_range(0i64..300);
            match session
                .query(&format!("SELECT ALL FROM part WHERE part_no = {no}"), &QueryOptions::default())
            {
                Ok(r) => {
                    let got = r.set.molecules.first().map(|m| match &m.root.atom.values[2] {
                        Value::Str(s) => s.clone(),
                        other => panic!("name should be Str, got {other:?}"),
                    });
                    let want = pending.get(&no).map(|(name, _)| name.clone());
                    if got != want {
                        panic!(
                            "{}",
                            repro(
                                seed,
                                steps,
                                "read-your-own-writes violated mid-workload",
                                format!("key {no}: kernel {got:?} vs model {want:?}"),
                            )
                        );
                    }
                }
                Err(_) if fault.has_crashed() => break 'workload,
                Err(e) => {
                    panic!("{}", repro(seed, steps, "unexpected query error", e.to_string()))
                }
            }
        } else if roll < 84 {
            if !commit(&session, &fault, &mut snapshots, &mut pending, &mut in_flight, seed, steps)
            {
                break 'workload;
            }
        } else if roll < 89 {
            // ROLLBACK: the open transaction's work vanishes.
            match session.rollback() {
                Ok(()) => pending = snapshots.last().expect("initial snapshot").clone(),
                Err(_) if fault.has_crashed() => break 'workload,
                Err(e) => {
                    panic!("{}", repro(seed, steps, "unexpected rollback error", e.to_string()))
                }
            }
        } else if roll < 94 {
            // Buffer flush: exercises steal / WAL-before-data mid-txn.
            if db.storage().flush().is_err() {
                if fault.has_crashed() {
                    break 'workload;
                }
                panic!("{}", repro(seed, steps, "unexpected flush error", String::new()));
            }
        } else {
            // CHECKPOINT (commit first: the gate wants a quiesced kernel).
            if !commit(&session, &fault, &mut snapshots, &mut pending, &mut in_flight, seed, steps)
            {
                break 'workload;
            }
            match db.checkpoint() {
                Ok(()) => {}
                Err(_) if fault.has_crashed() => break 'workload,
                Err(e) => {
                    panic!("{}", repro(seed, steps, "unexpected checkpoint error", e.to_string()))
                }
            }
        }
    }

    // Pull the plug if the schedule never did: whatever is acknowledged
    // but unpersisted drains partially, exactly like a real power cut.
    fault.crash_now();

    // The device refuses everything now, so running the destructors is
    // equivalent to a process kill as far as the persisted image goes —
    // and it releases file handles, which `mem::forget` would leak
    // across hundreds of schedules.
    drop(session);
    drop(db);

    // Restart recovery from the persisted image.
    let db = match Prima::open_device(fault.persisted_device()) {
        Ok(db) => db,
        Err(e) => panic!("{}", repro(seed, steps, "recovery failed", e.to_string())),
    };
    let recovered = observe(&db);

    let acked = snapshots.len() - 1;
    let expected = snapshots.last().expect("initial snapshot");
    let in_flight_won = match (&recovered == expected, &in_flight) {
        (true, _) => false,
        (false, Some(alt)) if &recovered == alt => true,
        _ => panic!(
            "{}",
            repro(
                seed,
                steps,
                "recovered state matches neither the last acknowledged commit \
                 nor the in-flight one",
                format!(
                    "acked commits: {acked}\nexpected: {expected:?}\n\
                     in-flight: {in_flight:?}\nrecovered: {recovered:?}"
                ),
            )
        ),
    };
    // Surrogates are never reused: a fresh insert allocates above every
    // id the durable *history* ever contained — including atoms that
    // were inserted and later deleted across acknowledged commits (every
    // acked commit's records are forced, so recovery can always see
    // those ids in the WAL tail or the checkpointed counters).
    let max_seq = snapshots
        .iter()
        .chain(in_flight_won.then(|| in_flight.as_ref().expect("matched state exists")))
        .flat_map(|state| state.values().map(|(_, seq)| *seq))
        .max()
        .unwrap_or(0);
    let s = db.session();
    let post = s
        .execute("INSERT part (part_no: 100000, name: 'post-recovery')")
        .unwrap_or_else(|e| {
            panic!("{}", repro(seed, steps, "post-recovery insert failed", e.to_string()))
        });
    s.commit().unwrap_or_else(|e| {
        panic!("{}", repro(seed, steps, "post-recovery commit failed", e.to_string()))
    });
    if let DmlResult::Inserted(id) = post {
        if id.seq <= max_seq {
            panic!(
                "{}",
                repro(
                    seed,
                    steps,
                    "surrogate id reused after recovery",
                    format!("new seq {} <= durable max {max_seq}", id.seq),
                )
            );
        }
    }
    drop(s);
    check_metrics_coherence(&db, seed, steps, "after recovery + post-recovery insert");

    CrashReport { seed, steps_run, acked_commits: acked, bootstrap_crash: false, in_flight_won }
}

/// Runs one seed-determined fault schedule with **multiple sessions** on
/// the kernel: one writer (random INSERT / MODIFY / DELETE bursts,
/// commits, rollbacks, flushes) interleaved with 1–2 reader sessions.
/// The readers are the isolation oracle, the recovery pass at the end is
/// the durability oracle:
///
/// The readers run **in explicit transactions** (`Session::begin`) so
/// their queries take the locking read path — an auto-commit read would
/// snapshot-read past the writer without conflicting, which
/// [`run_multi_session_schedule_mvcc`] covers with its own oracle.
///
/// * whenever the writer has uncommitted manipulation in flight, a
///   reader's query **must** fail with a lock conflict (the writer holds
///   the extension `IntentExclusive`); it must *never* deliver the
///   uncommitted state;
/// * whenever the writer is clean, a reader's query **must** succeed and
///   equal the last acknowledged commit exactly — uncommitted and
///   rolled-back atoms are never observable, committed ones never
///   missing;
/// * readers randomly hold their shared locks across steps (strict 2PL:
///   released only at their commit); while they do, writer DML must fail
///   with a lock conflict and leave no trace in the recovered state;
/// * after the crash, the recovered database must satisfy the same
///   committed-prefix oracle as [`run_crash_schedule`].
///
/// The workload interleaves the sessions on one thread, so the lock
/// table runs in [`LockConfig::no_wait`] (a parked request could never
/// be woken) and the sessions' transparent retry is off — the oracle
/// asserts on the conflicts themselves. [`run_multi_session_schedule_waits`]
/// is the bounded-wait/deadlock variant.
///
/// Panics with a seed-carrying reproducer on any violation.
pub fn run_multi_session_schedule(
    inner: Arc<dyn BlockDevice>,
    seed: u64,
    steps: usize,
) -> CrashReport {
    run_multi_session(inner, seed, steps, false, false)
}

/// Like [`run_multi_session_schedule`], but the lock table runs in
/// bounded-wait mode (15 ms timeout, short queues), so every conflict in
/// the interleaved workload exercises the park/timeout path instead of
/// failing fast — [`PrimaError::is_lock_conflict`] covers both, the
/// oracles are unchanged. On top, a slice of the schedule runs
/// *contention episodes*: two genuinely concurrent contender sessions
/// race the same extension with the classic S→IX upgrade-deadlock shape
/// (SELECT, then INSERT in the same transaction). The episode oracle:
/// at most one contender is victimized ([`TxnError::Deadlock`]), every
/// contender error is retryable, and — because contenders always roll
/// back — the committed-prefix oracle at the end is untouched.
pub fn run_multi_session_schedule_waits(
    inner: Arc<dyn BlockDevice>,
    seed: u64,
    steps: usize,
) -> CrashReport {
    run_multi_session(inner, seed, steps, true, false)
}

/// Like [`run_multi_session_schedule`], but the readers stay outside any
/// transaction, so every query takes the MVCC **snapshot read path**.
/// The isolation oracle inverts accordingly:
///
/// * a reader's query must **succeed even while the writer is dirty**,
///   and what it sees must equal the last acknowledged commit exactly —
///   the snapshot hides uncommitted manipulation instead of conflicting
///   with it;
/// * a reader must never touch the lock table at all: any lock-conflict
///   error, and any [`prima::LockStatsSnapshot::acquisitions`] delta
///   across a reader query, is a violation (the workload is interleaved
///   on one thread, so the delta is attributable);
/// * the committed-prefix oracle after crash + recovery is unchanged —
///   versions are volatile and must leave no trace in durable state.
pub fn run_multi_session_schedule_mvcc(
    inner: Arc<dyn BlockDevice>,
    seed: u64,
    steps: usize,
) -> CrashReport {
    run_multi_session(inner, seed, steps, false, true)
}

fn run_multi_session(
    inner: Arc<dyn BlockDevice>,
    seed: u64,
    steps: usize,
    waits: bool,
    snapshot_readers: bool,
) -> CrashReport {
    let schedule = FaultSchedule::from_seed(seed);
    let fault = FaultDisk::new(inner, schedule);
    let device: Arc<dyn BlockDevice> = Arc::clone(&fault) as Arc<dyn BlockDevice>;

    let lock_config = if waits {
        LockConfig::bounded(Duration::from_millis(15), 4)
    } else {
        LockConfig::no_wait()
    };
    let built = Prima::builder()
        .buffer_bytes(16 << 10)
        .lock_config(lock_config)
        .device(device)
        .durable()
        .build_with_ddl(CRASH_DDL);
    let db = match built {
        Ok(db) => db,
        Err(e) => {
            if !fault.has_crashed() {
                panic!("{}", repro(seed, steps, "build failed without a crash", e.to_string()));
            }
            if let Ok(db) = Prima::open_device(fault.persisted_device()) {
                let state = observe(&db);
                if !state.is_empty() {
                    panic!(
                        "{}",
                        repro(
                            seed,
                            steps,
                            "bootstrap crash recovered non-empty state",
                            format!("{state:?}"),
                        )
                    );
                }
            }
            return CrashReport {
                seed,
                steps_run: 0,
                acked_commits: 0,
                bootstrap_crash: true,
                in_flight_won: false,
            };
        }
    };

    let mut rng = SmallRng::seed_from_u64(seed ^ 0x3a3a_c0de_2026_0005);
    // The oracle asserts on the conflict errors themselves, so the
    // sessions' transparent retry must not absorb them.
    let mut writer = db.session();
    writer.set_retry_policy(RetryPolicy::off());
    let readers: Vec<prima::Session> = (0..rng.gen_range(1usize..3))
        .map(|_| {
            let mut r = db.session();
            r.set_retry_policy(RetryPolicy::off());
            r
        })
        .collect();
    // Whether reader i currently holds shared locks (query succeeded and
    // it has not committed since).
    let mut reader_holds: Vec<bool> = vec![false; readers.len()];

    let mut snapshots: Vec<ModelState> = vec![ModelState::new()];
    let mut pending = ModelState::new();
    let mut in_flight: Option<ModelState> = None;
    // Whether the writer's open transaction has uncommitted manipulation
    // (and therefore extension intent locks).
    let mut writer_dirty = false;
    let mut version = 0u64;
    let mut steps_run = 0usize;

    'workload: for _ in 0..steps {
        if fault.has_crashed() {
            break;
        }
        steps_run += 1;
        let roll = rng.gen_range(0u32..100);
        if roll < 40 {
            // Writer DML: one single-victim statement (conflicts happen
            // before any mutation, so the model never needs to track a
            // half-applied statement).
            enum Op {
                Insert(i64, String),
                Modify(i64, String),
                Delete(i64),
            }
            let op = match rng.gen_range(0u32..3) {
                0 => {
                    let name = format!("v{version}-{:0>400}", version);
                    version += 1;
                    Op::Insert(rng.gen_range(0i64..300), name)
                }
                1 => {
                    let Some(&no) = pick_key(&pending, &mut rng) else { continue };
                    let name = format!("m{version}-{:0>400}", version);
                    version += 1;
                    Op::Modify(no, name)
                }
                _ => {
                    let Some(&no) = pick_key(&pending, &mut rng) else { continue };
                    Op::Delete(no)
                }
            };
            let stmt = match &op {
                Op::Insert(no, name) => format!("INSERT part (part_no: {no}, name: '{name}')"),
                Op::Modify(no, name) => {
                    format!("MODIFY part SET name = '{name}' WHERE part_no = {no}")
                }
                Op::Delete(no) => format!("DELETE FROM part WHERE part_no = {no}"),
            };
            match writer.execute(&stmt) {
                Ok(result) => {
                    if reader_holds.iter().any(|h| *h) {
                        panic!(
                            "{}",
                            repro(
                                seed,
                                steps,
                                "writer DML succeeded while a reader held shared locks",
                                stmt,
                            )
                        );
                    }
                    writer_dirty = true;
                    match (op, result) {
                        (Op::Insert(no, name), DmlResult::Inserted(id)) => {
                            if pending.insert(no, (name, id.seq)).is_some() {
                                panic!(
                                    "{}",
                                    repro(seed, steps, "duplicate key accepted", format!("no={no}"))
                                );
                            }
                        }
                        (Op::Modify(no, name), DmlResult::Modified(_)) => {
                            pending.get_mut(&no).expect("picked from pending").0 = name;
                        }
                        (Op::Delete(no), DmlResult::Deleted(_)) => {
                            pending.remove(&no);
                        }
                        (_, other) => panic!(
                            "{}",
                            repro(seed, steps, "DML wrong result", format!("{other:?}"))
                        ),
                    }
                }
                Err(_) if fault.has_crashed() => break 'workload,
                Err(e) if e.is_lock_conflict() => {
                    // Only a lock-holding reader can push the writer off.
                    if !reader_holds.iter().any(|h| *h) {
                        panic!(
                            "{}",
                            repro(
                                seed,
                                steps,
                                "writer hit a lock conflict with no reader holding locks",
                                e.to_string(),
                            )
                        );
                    }
                }
                Err(e)
                    if matches!(op, Op::Insert(no, _) if pending.contains_key(&no))
                        && e.to_string().contains("duplicate key") =>
                {
                    // Predicted duplicate-key rejection. Key uniqueness is
                    // checked after the extension intent lock, so the
                    // writer's transaction now carries it: count as dirty.
                    writer_dirty = true;
                }
                Err(e) => {
                    panic!("{}", repro(seed, steps, "unexpected writer DML error", e.to_string()))
                }
            }
        } else if roll < 70 {
            // A reader queries: point lookup or full scan, sometimes via
            // a streaming cursor.
            let r = rng.gen_range(0usize..readers.len());
            let reader = &readers[r];
            if !snapshot_readers {
                // Locking oracle: the query must run inside a
                // transaction — an auto-commit read would take the
                // snapshot path and never conflict.
                match reader.begin() {
                    Ok(()) => {}
                    Err(_) if fault.has_crashed() => break 'workload,
                    Err(e) => {
                        panic!("{}", repro(seed, steps, "reader begin failed", e.to_string()))
                    }
                }
            }
            let locks_before = snapshot_readers.then(|| db.lock_stats());
            let use_cursor = rng.gen_range(0u32..4) == 0;
            let committed = snapshots.last().expect("initial snapshot");
            let point = rng.gen_range(0u32..2) == 0;
            let outcome: Result<ModelState, prima::PrimaError> = if point {
                // Point lookup: graft the committed rest around the one
                // observed key so the comparison below stays uniform.
                let no = rng.gen_range(0i64..300);
                reader
                    .query(
                        &format!("SELECT ALL FROM part WHERE part_no = {no}"),
                        &QueryOptions::default(),
                    )
                    .map(|res| {
                        let mut merged = committed.clone();
                        merged.remove(&no);
                        merged.extend(state_of(&res.set));
                        merged
                    })
            } else if use_cursor {
                reader
                    .query_cursor("SELECT ALL FROM part", &QueryOptions::default())
                    .and_then(|mut c| c.fetch_all())
                    .map(|set| state_of(&set))
            } else {
                reader
                    .query("SELECT ALL FROM part", &QueryOptions::default())
                    .map(|res| state_of(&res.set))
            };
            match outcome {
                Ok(seen) => {
                    if writer_dirty && !snapshot_readers {
                        panic!(
                            "{}",
                            repro(
                                seed,
                                steps,
                                "reader query succeeded despite uncommitted writer DML",
                                format!("saw {} atoms", seen.len()),
                            )
                        );
                    }
                    // Snapshot readers must see exactly the last
                    // acknowledged commit even while the writer is dirty
                    // — the version store hides in-flight manipulation.
                    if &seen != committed {
                        panic!(
                            "{}",
                            repro(
                                seed,
                                steps,
                                "reader observed a state != last acknowledged commit",
                                format!(
                                    "writer dirty: {writer_dirty}\n\
                                     saw: {seen:?}\ncommitted: {committed:?}"
                                ),
                            )
                        );
                    }
                    if let Some(before) = &locks_before {
                        let d = db.lock_stats().since(before);
                        if d.acquisitions != 0 {
                            panic!(
                                "{}",
                                repro(
                                    seed,
                                    steps,
                                    "snapshot reader generated lock-table traffic",
                                    format!("{} acquisitions", d.acquisitions),
                                )
                            );
                        }
                    }
                    // Strict 2PL: sometimes keep the shared locks across
                    // later steps, otherwise release immediately.
                    // (Snapshot readers hold nothing to keep.)
                    if !snapshot_readers && rng.gen_range(0u32..3) == 0 {
                        reader_holds[r] = true;
                    } else {
                        match reader.commit() {
                            Ok(()) => reader_holds[r] = false,
                            Err(_) if fault.has_crashed() => break 'workload,
                            Err(e) => panic!(
                                "{}",
                                repro(seed, steps, "reader commit failed", e.to_string())
                            ),
                        }
                    }
                }
                Err(_) if fault.has_crashed() => break 'workload,
                Err(e) if e.is_lock_conflict() => {
                    if snapshot_readers {
                        panic!(
                            "{}",
                            repro(
                                seed,
                                steps,
                                "snapshot reader hit a lock conflict",
                                e.to_string(),
                            )
                        );
                    }
                    if !writer_dirty {
                        panic!(
                            "{}",
                            repro(
                                seed,
                                steps,
                                "reader hit a lock conflict with no uncommitted writer",
                                e.to_string(),
                            )
                        );
                    }
                    // Immediate-conflict policy: roll the reader back so
                    // its partial locks cannot wedge the workload.
                    match reader.rollback() {
                        Ok(()) => reader_holds[r] = false,
                        Err(_) if fault.has_crashed() => break 'workload,
                        Err(e) => panic!(
                            "{}",
                            repro(seed, steps, "reader rollback failed", e.to_string())
                        ),
                    }
                }
                Err(e) => {
                    panic!("{}", repro(seed, steps, "unexpected reader error", e.to_string()))
                }
            }
        } else if roll < 76 {
            // A lock-holding reader lets go.
            if let Some(r) = reader_holds.iter().position(|h| *h) {
                match readers[r].commit() {
                    Ok(()) => reader_holds[r] = false,
                    Err(_) if fault.has_crashed() => break 'workload,
                    Err(e) => {
                        panic!("{}", repro(seed, steps, "reader commit failed", e.to_string()))
                    }
                }
            }
        } else if roll < 86 {
            if !commit(&writer, &fault, &mut snapshots, &mut pending, &mut in_flight, seed, steps)
            {
                break 'workload;
            }
            writer_dirty = false;
        } else if roll < 92 {
            match writer.rollback() {
                Ok(()) => {
                    pending = snapshots.last().expect("initial snapshot").clone();
                    writer_dirty = false;
                }
                Err(_) if fault.has_crashed() => break 'workload,
                Err(e) => {
                    panic!("{}", repro(seed, steps, "unexpected rollback error", e.to_string()))
                }
            }
        } else if waits && roll >= 96 {
            // Genuine concurrency: two contender threads race an
            // upgrade-deadlock shape against the bounded-wait table.
            contention_episode(&db, &fault, seed, steps, steps_run as u64);
        } else {
            // Buffer flush: steal under concurrency.
            if db.storage().flush().is_err() {
                if fault.has_crashed() {
                    break 'workload;
                }
                panic!("{}", repro(seed, steps, "unexpected flush error", String::new()));
            }
        }
    }

    fault.crash_now();
    drop(readers);
    drop(writer);
    drop(db);

    // Restart recovery: same committed-prefix oracle as the single-
    // session leg (reader transactions never mutate durable state).
    let db = match Prima::open_device(fault.persisted_device()) {
        Ok(db) => db,
        Err(e) => panic!("{}", repro(seed, steps, "recovery failed", e.to_string())),
    };
    let recovered = observe(&db);
    let acked = snapshots.len() - 1;
    let expected = snapshots.last().expect("initial snapshot");
    let in_flight_won = match (&recovered == expected, &in_flight) {
        (true, _) => false,
        (false, Some(alt)) if &recovered == alt => true,
        _ => panic!(
            "{}",
            repro(
                seed,
                steps,
                "recovered state matches neither the last acknowledged commit \
                 nor the in-flight one",
                format!(
                    "acked commits: {acked}\nexpected: {expected:?}\n\
                     in-flight: {in_flight:?}\nrecovered: {recovered:?}"
                ),
            )
        ),
    };
    check_metrics_coherence(&db, seed, steps, "after multi-session recovery");
    CrashReport { seed, steps_run, acked_commits: acked, bootstrap_crash: false, in_flight_won }
}

/// Per-committer outcome of the group-commit schedule (one per worker
/// thread, each owning a disjoint key range).
struct CommitterOutcome {
    /// The thread's key-range base (`range = base .. base + 1000`).
    base: i64,
    /// Model at the last acknowledged commit, restricted to the range.
    last_acked: ModelState,
    /// Model at the commit whose force was in flight at the crash, if
    /// any — admissible exactly like the single-session leg's.
    in_flight: Option<ModelState>,
    acked: usize,
    steps_run: usize,
}

/// Runs one seed-determined fault schedule with **concurrently
/// committing sessions** — the cross-session group-commit leg. 2–4
/// worker threads (seed-chosen) each own a disjoint `part_no` range and
/// commit every 1–2 statements, so their `TxnCommit` records genuinely
/// overlap inside the WAL's group coordinator and one leader's force
/// routinely carries several sessions' commits. The schedule then tears
/// that *shared* batch (torn prefix, bit rot, partial fsync — the whole
/// [`FaultSchedule`] menu), which is exactly the new failure surface
/// group commit introduces: an ack must imply the covering force
/// completed, for *every* session it covered.
///
/// Oracle, per thread over its own key range (ranges are disjoint, so
/// the committed-prefix argument applies to each range independently):
/// the recovered rows in thread t's range equal t's last acknowledged
/// commit — or its in-flight one (the torn batch may have fully
/// persisted, or its durable prefix may happen to include t's commit
/// record while the force still errored). Any other state — a later
/// unacked commit surviving, an acked one missing, a frankenstate — is
/// a violation. Cross-family metric invariants (including the
/// group-commit counters) are checked after recovery.
///
/// Thread interleaving is genuinely concurrent, so unlike the
/// single-session legs a seed pins the fault schedule but not the exact
/// interleaving; the oracle holds for every interleaving by
/// construction (disjoint ranges, per-thread models).
pub fn run_group_commit_schedule(
    inner: Arc<dyn BlockDevice>,
    seed: u64,
    steps: usize,
) -> CrashReport {
    let schedule = FaultSchedule::from_seed(seed);
    let fault = FaultDisk::new(inner, schedule);
    let device: Arc<dyn BlockDevice> = Arc::clone(&fault) as Arc<dyn BlockDevice>;

    // Default builder config: group commit ON (the default path is the
    // one under test); small buffer keeps steal in play.
    let built = Prima::builder()
        .buffer_bytes(16 << 10)
        .device(device)
        .durable()
        .build_with_ddl(CRASH_DDL);
    let db = match built {
        Ok(db) => db,
        Err(e) => {
            if !fault.has_crashed() {
                panic!("{}", repro(seed, steps, "build failed without a crash", e.to_string()));
            }
            if let Ok(db) = Prima::open_device(fault.persisted_device()) {
                let state = observe(&db);
                if !state.is_empty() {
                    panic!(
                        "{}",
                        repro(
                            seed,
                            steps,
                            "bootstrap crash recovered non-empty state",
                            format!("{state:?}"),
                        )
                    );
                }
            }
            return CrashReport {
                seed,
                steps_run: 0,
                acked_commits: 0,
                bootstrap_crash: true,
                in_flight_won: false,
            };
        }
    };

    let threads = 2 + (seed % 3) as usize; // 2..=4 committers
    let outcomes: Vec<CommitterOutcome> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                let db = &db;
                let fault = &fault;
                scope.spawn(move || {
                    let session = db.session();
                    let base = 1_000 * t as i64;
                    let mut rng =
                        SmallRng::seed_from_u64(seed ^ (0x3a3a_c0de_2026_0009 + t as u64));
                    let mut last_acked = ModelState::new();
                    let mut pending = ModelState::new();
                    let mut in_flight: Option<ModelState> = None;
                    let mut acked = 0usize;
                    let mut steps_run = 0usize;
                    let mut next_key = 0i64;

                    'workload: while steps_run < steps {
                        if fault.has_crashed() {
                            break;
                        }
                        // 1–2 statements, then commit: commits from the
                        // worker threads genuinely overlap inside the
                        // group coordinator.
                        for _ in 0..rng.gen_range(1usize..3) {
                            steps_run += 1;
                            let roll = rng.gen_range(0u32..100);
                            if roll < 60 || pending.is_empty() {
                                // Monotone in-range key: inserts never
                                // collide, within or across threads.
                                let no = base + (next_key % 900);
                                next_key += 1;
                                let name = format!("t{t}-v{steps_run}-{:0>200}", steps_run);
                                match session.execute(&format!(
                                    "INSERT part (part_no: {no}, name: '{name}')"
                                )) {
                                    Ok(DmlResult::Inserted(id)) => {
                                        pending.insert(no, (name, id.seq));
                                    }
                                    Ok(other) => panic!(
                                        "{}",
                                        repro(
                                            seed,
                                            steps,
                                            "group INSERT wrong result",
                                            format!("{other:?}"),
                                        )
                                    ),
                                    Err(_) if fault.has_crashed() => break 'workload,
                                    Err(e)
                                        if pending.contains_key(&no)
                                            && e.to_string().contains("duplicate key") =>
                                    {
                                        // Key wrapped past 900 onto a
                                        // still-live row; the model
                                        // predicted the rejection.
                                    }
                                    Err(e) if retryable_abort(&e) => {
                                        // Deadlock victim / lock conflict:
                                        // the transaction is gone, re-sync
                                        // the model to the last ack.
                                        let _ = session.rollback();
                                        pending = last_acked.clone();
                                        continue 'workload;
                                    }
                                    Err(e) => panic!(
                                        "{}",
                                        repro(
                                            seed,
                                            steps,
                                            "unexpected group INSERT error",
                                            e.to_string(),
                                        )
                                    ),
                                }
                            } else if roll < 85 {
                                let Some(&no) = pick_key(&pending, &mut rng) else { continue };
                                let name = format!("t{t}-m{steps_run}-{:0>200}", steps_run);
                                match session.execute(&format!(
                                    "MODIFY part SET name = '{name}' WHERE part_no = {no}"
                                )) {
                                    Ok(_) => {
                                        pending.get_mut(&no).expect("picked from pending").0 =
                                            name;
                                    }
                                    Err(_) if fault.has_crashed() => break 'workload,
                                    Err(e) if retryable_abort(&e) => {
                                        let _ = session.rollback();
                                        pending = last_acked.clone();
                                        continue 'workload;
                                    }
                                    Err(e) => panic!(
                                        "{}",
                                        repro(
                                            seed,
                                            steps,
                                            "unexpected group MODIFY error",
                                            e.to_string(),
                                        )
                                    ),
                                }
                            } else {
                                let Some(&no) = pick_key(&pending, &mut rng) else { continue };
                                match session
                                    .execute(&format!("DELETE FROM part WHERE part_no = {no}"))
                                {
                                    Ok(_) => {
                                        pending.remove(&no);
                                    }
                                    Err(_) if fault.has_crashed() => break 'workload,
                                    Err(e) if retryable_abort(&e) => {
                                        let _ = session.rollback();
                                        pending = last_acked.clone();
                                        continue 'workload;
                                    }
                                    Err(e) => panic!(
                                        "{}",
                                        repro(
                                            seed,
                                            steps,
                                            "unexpected group DELETE error",
                                            e.to_string(),
                                        )
                                    ),
                                }
                            }
                        }
                        match session.commit() {
                            Ok(()) => {
                                last_acked = pending.clone();
                                acked += 1;
                            }
                            Err(_) if fault.has_crashed() => {
                                // The force carrying this commit was in
                                // flight (or its shared batch was torn
                                // with our record possibly inside the
                                // durable prefix): admissible.
                                in_flight = Some(pending.clone());
                                break 'workload;
                            }
                            Err(e) => panic!(
                                "{}",
                                repro(seed, steps, "unexpected group commit error", e.to_string())
                            ),
                        }
                        // Occasional buffer flush: a flush-path force
                        // racing the commit leaders.
                        if rng.gen_range(0u32..10) == 0 && db.storage().flush().is_err() {
                            if fault.has_crashed() {
                                break 'workload;
                            }
                            panic!(
                                "{}",
                                repro(seed, steps, "unexpected group flush error", String::new())
                            );
                        }
                    }
                    // An open (uncommitted) transaction at the crash is a
                    // loser; recovery must roll it back to last_acked.
                    drop(session);
                    CommitterOutcome { base, last_acked, in_flight, acked, steps_run }
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("committer thread panicked")).collect()
    });

    fault.crash_now();
    drop(db);

    let db = match Prima::open_device(fault.persisted_device()) {
        Ok(db) => db,
        Err(e) => panic!("{}", repro(seed, steps, "group recovery failed", e.to_string())),
    };
    let recovered = observe(&db);

    let mut in_flight_won = false;
    for o in &outcomes {
        let range_state: ModelState = recovered
            .range(o.base..o.base + 1_000)
            .map(|(k, v)| (*k, v.clone()))
            .collect();
        if range_state == o.last_acked {
            continue;
        }
        match &o.in_flight {
            Some(alt) if &range_state == alt => in_flight_won = true,
            _ => panic!(
                "{}",
                repro(
                    seed,
                    steps,
                    "group-commit range matches neither the last acknowledged \
                     commit nor the in-flight one",
                    format!(
                        "range base {}: acked commits {}\nexpected: {:?}\n\
                         in-flight: {:?}\nrecovered: {range_state:?}",
                        o.base, o.acked, o.last_acked, o.in_flight
                    ),
                )
            ),
        }
    }
    // Nothing outside the threads' ranges may exist.
    if let Some((stray, _)) = recovered.iter().find(|(k, _)| **k >= 1_000 * threads as i64) {
        panic!(
            "{}",
            repro(seed, steps, "recovered key outside every committer's range", stray.to_string())
        );
    }
    check_metrics_coherence(&db, seed, steps, "after group-commit recovery");

    CrashReport {
        seed,
        steps_run: outcomes.iter().map(|o| o.steps_run).sum(),
        acked_commits: outcomes.iter().map(|o| o.acked).sum(),
        bootstrap_crash: false,
        in_flight_won,
    }
}

/// One contention episode of the waits-mode schedule: two contender
/// sessions on their own threads each SELECT a key (extension `Shared`)
/// and then INSERT under it (extension `IntentExclusive`) in the same
/// transaction — when their lock requests interleave, that is an S→IX
/// upgrade deadlock the table must resolve by victimizing one of them.
/// Contenders always roll back (keys far outside the workload's range),
/// so the model and the committed-prefix oracle are untouched; the main
/// writer and the readers never wait here, so they can never be picked
/// as victims.
///
/// Episode oracle (skipped once the crash has fired — the contenders'
/// errors are then the device's, not the lock manager's): every
/// contender error is retryable, and at most one of the two is a
/// [`TxnError::Deadlock`] victim.
fn contention_episode(db: &Prima, fault: &FaultDisk, seed: u64, steps: usize, tag: u64) {
    let outcomes: Vec<Vec<PrimaError>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..2u64)
            .map(|i| {
                scope.spawn(move || {
                    // Explicit transaction: the SELECT must take the
                    // extension Shared so the INSERT is the S→IX upgrade
                    // (an auto-commit SELECT would snapshot-read without
                    // locking and no deadlock shape would form).
                    // In-transaction statements are never retried, so
                    // every error surfaces to the oracle below.
                    let session = db.session();
                    let key = 90_000 + (tag % 1_000) * 2 + i;
                    let mut errors = Vec::new();
                    let selected = session.begin().and_then(|()| {
                        session.query(
                            &format!("SELECT ALL FROM part WHERE part_no = {key}"),
                            &QueryOptions::default(),
                        )
                    });
                    match selected {
                        Ok(_) => {
                            if let Err(e) = session
                                .execute(&format!("INSERT part (part_no: {key}, name: 'c')"))
                            {
                                errors.push(e);
                            }
                        }
                        Err(e) => errors.push(e),
                    }
                    // Always back out — durable state must not change.
                    let _ = session.rollback();
                    errors
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("contender thread panicked")).collect()
    });
    if fault.has_crashed() {
        return;
    }
    let mut victims = 0usize;
    for errors in &outcomes {
        for e in errors {
            if matches!(e, PrimaError::Txn(TxnError::Deadlock { .. })) {
                victims += 1;
            } else if !e.is_retryable() {
                panic!(
                    "{}",
                    repro(seed, steps, "contender hit a non-retryable error", e.to_string())
                );
            }
        }
    }
    if victims > 1 {
        panic!(
            "{}",
            repro(
                seed,
                steps,
                "both contenders were chosen as deadlock victims",
                format!("{victims} victims in one two-party episode"),
            )
        );
    }
}

/// Projects a molecule set onto the model representation.
fn state_of(set: &prima::MoleculeSet) -> ModelState {
    set.molecules
        .iter()
        .map(|m| {
            let v = &m.root.atom.values;
            let seq = match &v[0] {
                Value::Id(id) => id.seq,
                other => panic!("part_id should be an identifier, got {other:?}"),
            };
            let no = match &v[1] {
                Value::Int(n) => *n,
                other => panic!("part_no should be Int, got {other:?}"),
            };
            let name = match &v[2] {
                Value::Str(s) => s.clone(),
                other => panic!("name should be Str, got {other:?}"),
            };
            (no, (name, seq))
        })
        .collect()
}

/// One commit step against kernel and model. Returns `false` when the
/// crash stopped the workload.
fn commit(
    session: &prima::Session,
    fault: &FaultDisk,
    snapshots: &mut Vec<ModelState>,
    pending: &mut ModelState,
    in_flight: &mut Option<ModelState>,
    seed: u64,
    steps: usize,
) -> bool {
    match session.commit() {
        Ok(()) => {
            snapshots.push(pending.clone());
            true
        }
        Err(_) if fault.has_crashed() => {
            // The force carrying this commit was in flight: it may have
            // fully persisted even though the call errored.
            *in_flight = Some(pending.clone());
            false
        }
        Err(e) => panic!("{}", repro(seed, steps, "unexpected commit error", e.to_string())),
    }
}

/// Whether a DML error means "the transaction was aborted, try again" —
/// a deadlock victimization or any other retryable contention outcome.
/// The group-commit leg's committers all touch the shared extension
/// (upgrade-deadlock shape), so victim aborts are expected traffic, not
/// oracle violations.
fn retryable_abort(e: &PrimaError) -> bool {
    matches!(e, PrimaError::Txn(TxnError::Deadlock { .. })) || e.is_retryable()
}

fn pick_key<'m>(model: &'m ModelState, rng: &mut SmallRng) -> Option<&'m i64> {
    if model.is_empty() {
        return None;
    }
    let idx = rng.gen_range(0usize..model.len());
    model.keys().nth(idx)
}
