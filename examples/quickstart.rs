//! Quickstart: the paper's running example, end to end.
//!
//! Loads the verbatim Fig. 2.3 schema, populates a small solid-modeling
//! database, and runs the four queries of Table 2.1.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use prima::PrimaResult;
use prima_workloads::brep::{self, BrepConfig};

fn main() -> PrimaResult<()> {
    // 1. Open a kernel with the Fig. 2.3 schema (MAD-DDL, verbatim).
    let db = brep::open_db(8 << 20)?;
    println!("schema loaded: {} atom types", db.schema().atom_types().len());

    // 2. Populate: 5 base solids with boundary representations plus a
    //    two-level assembly hierarchy.
    let stats = brep::populate(&db, &BrepConfig::with_assembly(4, 2, 2))?;
    println!(
        "populated: {} solids, {} faces, {} edges, {} points",
        stats.solid_ids.len(),
        stats.faces,
        stats.edges,
        stats.points
    );

    // 3. Table 2.1a — vertical access to a network molecule.
    let set = db.query(
        "SELECT ALL
         FROM brep-face-edge-point
         WHERE brep_no = 1 (* qualification *)",
    )?;
    println!("\nTable 2.1a (vertical access): {} molecule(s)", set.len());
    println!(
        "  brep 1 molecule: {} faces, {} edge occurrences, {} point occurrences",
        set.atoms_of("face").len(),
        set.atoms_of("edge").len(),
        set.atoms_of("point").len()
    );

    // 4. Table 2.1b — vertical access to a recursive molecule.
    let root = stats.root_solid_nos[0];
    let set = db.query(&format!(
        "SELECT ALL
         FROM piece_list (* pre-defined molecule type *)
         WHERE piece_list (0).solid_no = {root} (* seed qualification *)"
    ))?;
    println!("\nTable 2.1b (recursive piece list of solid {root}):");
    println!("  {} atoms, {} levels deep", set.molecules[0].atom_count(), set.molecules[0].depth());

    // 5. Table 2.1c — horizontal access with unqualified projection.
    let set = db.query(
        "SELECT solid_no, description (* unqualified projection *)
         FROM solid
         WHERE sub = EMPTY",
    )?;
    println!("\nTable 2.1c (primitive solids): {} found", set.len());
    for m in set.molecules.iter().take(3) {
        println!("  {} {}", m.root.atom.values[1], m.root.atom.values[2]);
    }

    // 6. Table 2.1d — tree molecule, quantifier, qualified projection.
    let set = db.query(
        "SELECT edge, (point, (* unqualified projection p1 *)
                face := SELECT face_id, square_dim
                FROM face (* qualified projection q3, p2 *)
                WHERE square_dim > 10.0)
         FROM brep-edge (face, point)
         WHERE brep_no = 1 (* qualification q1 *)
         AND EXISTS_AT_LEAST (2) edge: edge.length > 1.0
         (* quantified restriction q2 *)",
    )?;
    println!("\nTable 2.1d (misc query): {} molecule(s)", set.len());
    if let Some(m) = set.molecules.first() {
        println!(
            "  edges: {}, faces surviving qualified projection: {}",
            set.atoms_of("edge").len(),
            m.atoms_of_node(set.node_id("face").expect("face node")).len()
        );
    }

    // 7. MQL manipulation.
    db.execute("INSERT solid (solid_no: 999, description: 'adhoc part')")?;
    let found = db.query("SELECT ALL FROM solid WHERE solid_no = 999")?;
    println!("\ninserted solid 999 via MQL, retrieved {} molecule(s)", found.len());
    db.execute("MODIFY solid SET description = 'renamed part' WHERE solid_no = 999")?;
    db.execute("DELETE FROM solid WHERE solid_no = 999")?;
    println!("modified and deleted it again");

    Ok(())
}
