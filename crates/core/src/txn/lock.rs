//! Granular lock table with Moss's nested-transaction rules and bounded
//! waiting.
//!
//! Two granules exist (Gray-style hierarchical locking, cut down to what
//! the kernel needs):
//!
//! * **atoms** — the unit DML and molecule assembly operate on;
//! * **type extensions** — "all atoms of one atom type", the granule a
//!   root scan reads. A query's root access takes `Shared` on the root
//!   type's extension; every manipulation takes `IntentExclusive` on the
//!   extension of each atom it writes. `Shared`/`IntentExclusive` are
//!   incompatible, so an uncommitted INSERT / DELETE / MODIFY is never
//!   silently missed (or seen) by a concurrent scan, while writers of
//!   *different* atoms coexist (`IntentExclusive` is compatible with
//!   itself).
//!
//! A transaction may hold several modes on the same target (scan then
//! insert ⇒ `Shared` + `IntentExclusive`, the classic SIX combination);
//! holders therefore carry a mode *set*, and a request conflicts when it
//! is incompatible with any mode a non-ancestor holds.
//!
//! # Waiting, timeouts, deadlocks
//!
//! A conflicting request no longer fails fast by default. It joins the
//! target's FIFO wait queue and parks on a condvar until it becomes
//! grantable, its bounded wait expires ([`TxnError::LockTimeout`]), or it
//! is chosen as a deadlock victim ([`TxnError::Deadlock`]). The policy:
//!
//! * **FIFO fairness** — a new request that conflicts with *any queued
//!   waiter* queues behind it even if it is compatible with the current
//!   holders, so a stream of readers cannot starve a waiting writer.
//!   Compatible co-waiters (S behind S) are granted together.
//! * **Upgrades** — a transaction that already holds modes on the target
//!   (S→X, S→SIX) never queues behind strangers' requests: only the
//!   current holders can block it, and if it must wait it is queued ahead
//!   of plain waiters. Two upgraders on the same target form a cycle and
//!   are resolved by victim selection, not by starvation.
//! * **Deadlock detection** — run at enqueue time (a new cycle needs a new
//!   wait-for edge, and edges only appear when someone enqueues). The
//!   wait-for graph is computed on demand under the table mutex: a waiter
//!   points at every conflicting non-ancestor holder and every
//!   incompatible non-ancestor waiter queued ahead of it. On a cycle the
//!   victim is the member holding the fewest locks (cheapest to roll
//!   back), ties broken youngest-first; the victim's `acquire` returns
//!   `Deadlock`, its caller aborts through the normal undo path, and
//!   `release_all` wakes the survivors.
//! * **Overload cap** — when a target's queue is at
//!   [`LockConfig::max_waiters_per_target`], further conflicting requests
//!   degrade to an immediate [`TxnError::LockConflict`] instead of
//!   growing the queue without bound.
//! * **No-wait mode** — [`LockConfig::no_wait`] restores the original
//!   fail-fast behavior exactly (queues stay empty, conflicts return
//!   `LockConflict`); single-threaded interleaving tests and fuzz
//!   schedules rely on it.
//!
//! Moss interaction: ancestors are never conflicts, as holders *or* as
//! waiters — a child never waits on (or deadlocks with) its own ancestor,
//! and `transfer` at subcommit re-checks waiters because merging a
//! child's modes into the parent can change who is grantable.
//!
//! Bookkeeping is indexed per transaction: `transfer` (subtransaction
//! commit) and `release_all` (top-level commit/abort) walk only the
//! transaction's own lock list — O(own locks), not O(table) — and entries
//! with no holders and no waiters are removed from the table, so the map
//! does not grow with every atom ever locked. [`LockTable::maintenance_visits`]
//! counts the entries those walks touch; a regression test pins the
//! O(own locks) behavior with it. [`LockStats`] counts waits, wait time,
//! timeouts, deadlocks and victims.

use super::{TxnError, TxnId};
use parking_lot::{rank, Condvar, Mutex};
use prima_mad::value::{AtomId, AtomTypeId};
use std::collections::{HashMap, HashSet, VecDeque};
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering::Relaxed};
use std::time::{Duration, Instant};

/// Lock modes. `IntentExclusive` exists only on type extensions (writers
/// announce "I change some atoms of this type"); atoms are locked
/// `Shared`/`Exclusive`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LockMode {
    Shared,
    IntentExclusive,
    Exclusive,
}

/// What a lock protects.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LockTarget {
    /// One atom.
    Atom(AtomId),
    /// The extension (current + future membership) of one atom type.
    Extension(AtomTypeId),
}

impl fmt::Display for LockTarget {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LockTarget::Atom(id) => write!(f, "{id}"),
            LockTarget::Extension(t) => write!(f, "extension(type{t})"),
        }
    }
}

/// Bit set of held modes (one transaction can hold Shared *and*
/// IntentExclusive on the same extension — SIX).
type ModeSet = u8;

const S: ModeSet = 1;
const IX: ModeSet = 2;
const X: ModeSet = 4;

fn bit(m: LockMode) -> ModeSet {
    match m {
        LockMode::Shared => S,
        LockMode::IntentExclusive => IX,
        LockMode::Exclusive => X,
    }
}

/// Standard compatibility: S+S and IX+IX coexist, everything else
/// conflicts (S vs IX included — that is the whole point of the intent
/// mode here: a scan must not overlap an uncommitted writer of the same
/// type).
fn compatible(held: ModeSet, req: LockMode) -> bool {
    match req {
        LockMode::Shared => held & (IX | X) == 0,
        LockMode::IntentExclusive => held & (S | X) == 0,
        LockMode::Exclusive => false,
    }
}

/// Whether two *requested* modes conflict (used for waiter-vs-waiter
/// ordering in the queue).
fn modes_conflict(a: LockMode, b: LockMode) -> bool {
    !compatible(bit(a), b)
}

// ---------------------------------------------------------------------------
// Configuration
// ---------------------------------------------------------------------------

/// Wait-queue policy knobs, set once per [`LockTable`] (plumbed through
/// `Prima::builder().lock_config(..)`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LockConfig {
    /// How long a conflicting request may wait before failing with
    /// [`TxnError::LockTimeout`]. `Duration::ZERO` means fail fast with
    /// [`TxnError::LockConflict`] and never enqueue (the pre-wait-queue
    /// behavior).
    pub wait_timeout: Duration,
    /// Per-target queue cap: a conflicting request arriving at a full
    /// queue fails fast with [`TxnError::LockConflict`] instead of
    /// growing the queue (graceful degradation under overload).
    pub max_waiters_per_target: usize,
}

impl Default for LockConfig {
    fn default() -> Self {
        LockConfig { wait_timeout: Duration::from_millis(200), max_waiters_per_target: 64 }
    }
}

impl LockConfig {
    /// Fail-fast configuration: conflicts return [`TxnError::LockConflict`]
    /// immediately, no request ever parks.
    pub fn no_wait() -> Self {
        LockConfig { wait_timeout: Duration::ZERO, max_waiters_per_target: 0 }
    }

    /// Bounded wait with an explicit queue cap.
    pub fn bounded(wait_timeout: Duration, max_waiters_per_target: usize) -> Self {
        LockConfig { wait_timeout, max_waiters_per_target }
    }
}

// ---------------------------------------------------------------------------
// Statistics
// ---------------------------------------------------------------------------

/// Contention counters, updated with relaxed atomics on the lock path
/// (mirrors `BufferStats` / `ApiStats`).
#[derive(Debug, Default)]
pub struct LockStats {
    /// Every [`LockTable::acquire`] call, granted or not — the total
    /// lock-table traffic. A pure snapshot reader must leave this at
    /// zero: the counter is what lets tests *prove* the lock-free claim
    /// rather than merely observe the absence of conflicts.
    pub acquisitions: AtomicU64,
    /// Requests that parked at least once.
    pub waits: AtomicU64,
    /// Total microseconds spent parked by requests that were eventually
    /// granted, timed out, or died as victims.
    pub wait_us_total: AtomicU64,
    /// Longest single park, microseconds.
    pub wait_us_max: AtomicU64,
    /// Waits that expired into [`TxnError::LockTimeout`].
    pub timeouts: AtomicU64,
    /// Cycles found by the enqueue-time wait-for-graph check.
    pub deadlocks_detected: AtomicU64,
    /// Victims chosen to break those cycles (one per cycle).
    pub victims: AtomicU64,
    /// Conflicting requests bounced by the per-target queue cap.
    pub overflow_fastfails: AtomicU64,
    /// Requests currently parked (gauge).
    pub waiting_now: AtomicU64,
    /// Deepest per-target queue ever observed.
    pub max_queue_depth: AtomicU64,
}

impl LockStats {
    pub fn snapshot(&self) -> LockStatsSnapshot {
        LockStatsSnapshot {
            acquisitions: self.acquisitions.load(Relaxed),
            waits: self.waits.load(Relaxed),
            wait_us_total: self.wait_us_total.load(Relaxed),
            wait_us_max: self.wait_us_max.load(Relaxed),
            timeouts: self.timeouts.load(Relaxed),
            deadlocks_detected: self.deadlocks_detected.load(Relaxed),
            victims: self.victims.load(Relaxed),
            overflow_fastfails: self.overflow_fastfails.load(Relaxed),
            waiting_now: self.waiting_now.load(Relaxed),
            max_queue_depth: self.max_queue_depth.load(Relaxed),
        }
    }

    fn record_parked(&self, waited: Duration) {
        let us = waited.as_micros() as u64;
        self.wait_us_total.fetch_add(us, Relaxed);
        self.wait_us_max.fetch_max(us, Relaxed);
        self.waiting_now.fetch_sub(1, Relaxed);
        // The waiter parks on the statement's own thread, so the time
        // shows up in that statement's profile (no-op unprofiled).
        crate::obs::event(crate::obs::SpanKind::LockWait, waited.as_nanos() as u64, 0);
    }
}

/// Point-in-time copy of every [`LockStats`] counter.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LockStatsSnapshot {
    pub acquisitions: u64,
    pub waits: u64,
    pub wait_us_total: u64,
    pub wait_us_max: u64,
    pub timeouts: u64,
    pub deadlocks_detected: u64,
    pub victims: u64,
    pub overflow_fastfails: u64,
    pub waiting_now: u64,
    pub max_queue_depth: u64,
}

impl LockStatsSnapshot {
    /// Counter deltas since `earlier`.
    pub fn since(&self, earlier: &LockStatsSnapshot) -> LockStatsSnapshot {
        LockStatsSnapshot {
            acquisitions: self.acquisitions - earlier.acquisitions,
            waits: self.waits - earlier.waits,
            wait_us_total: self.wait_us_total - earlier.wait_us_total,
            wait_us_max: self.wait_us_max.max(earlier.wait_us_max),
            timeouts: self.timeouts - earlier.timeouts,
            deadlocks_detected: self.deadlocks_detected - earlier.deadlocks_detected,
            victims: self.victims - earlier.victims,
            overflow_fastfails: self.overflow_fastfails - earlier.overflow_fastfails,
            waiting_now: self.waiting_now,
            max_queue_depth: self.max_queue_depth.max(earlier.max_queue_depth),
        }
    }

    /// Multi-line human-readable dump (same idiom as `BufferStats`).
    pub fn detail(&self) -> String {
        format!(
            "lock acquisitions:  {}\n\
             lock waits:         {} (total {} µs, max {} µs)\n\
             lock timeouts:      {}\n\
             deadlocks detected: {} ({} victims)\n\
             queue overflows:    {}\n\
             waiting now:        {} (deepest queue seen: {})",
            self.acquisitions,
            self.waits,
            self.wait_us_total,
            self.wait_us_max,
            self.timeouts,
            self.deadlocks_detected,
            self.victims,
            self.overflow_fastfails,
            self.waiting_now,
            self.max_queue_depth,
        )
    }
}

impl prima_storage::StatsSnapshot for LockStatsSnapshot {
    const FAMILY: &'static str = "lock";

    fn delta(&self, earlier: &Self) -> Self {
        self.since(earlier)
    }

    fn fields(&self) -> Vec<(&'static str, u64)> {
        vec![
            ("acquisitions", self.acquisitions),
            ("waits", self.waits),
            ("wait_us_total", self.wait_us_total),
            ("wait_us_max", self.wait_us_max),
            ("timeouts", self.timeouts),
            ("deadlocks_detected", self.deadlocks_detected),
            ("victims", self.victims),
            ("overflow_fastfails", self.overflow_fastfails),
            ("waiting_now", self.waiting_now),
            ("max_queue_depth", self.max_queue_depth),
        ]
    }
}

// ---------------------------------------------------------------------------
// Table state
// ---------------------------------------------------------------------------

#[derive(Debug)]
struct Waiter {
    txn: TxnId,
    mode: LockMode,
    /// The waiter's ancestor set (includes itself), captured at enqueue —
    /// used for conflict and wait-for-edge computation while parked.
    ancestors: Vec<TxnId>,
    /// Set when this waiter was chosen as a deadlock victim; it wakes,
    /// dequeues itself and returns [`TxnError::Deadlock`].
    doomed: bool,
    enqueued: Instant,
}

#[derive(Debug, Default)]
struct Entry {
    /// `(holder, modes)` — one slot per holding transaction.
    holders: Vec<(TxnId, ModeSet)>,
    /// FIFO wait queue (upgraders are inserted ahead of plain waiters).
    waiters: VecDeque<Waiter>,
}

impl Entry {
    fn holds(&self, t: TxnId) -> bool {
        self.holders.iter().any(|(h, _)| *h == t)
    }

    /// First holder whose mode set conflicts with `mode` and who is not in
    /// `ancestors` (Moss's rule: "all conflicting holders are ancestors").
    fn conflicting_holder(&self, ancestors: &[TxnId], mode: LockMode) -> Option<TxnId> {
        self.holders
            .iter()
            .find(|(h, held)| !compatible(*held, mode) && !ancestors.contains(h))
            .map(|(h, _)| *h)
    }

    /// Whether a request by `t` may be granted now. `queue_pos` is the
    /// requester's position if it is already queued (None for a fresh
    /// request, which must respect the whole queue). Holders always
    /// constrain; queued strangers only constrain non-upgraders — a
    /// transaction already holding modes on the target never queues
    /// behind strangers (cycles between upgraders are broken by victim
    /// selection instead).
    fn grantable(&self, t: TxnId, ancestors: &[TxnId], mode: LockMode, queue_pos: Option<usize>) -> bool {
        if self.conflicting_holder(ancestors, mode).is_some() {
            return false;
        }
        if self.holds(t) {
            return true;
        }
        let ahead = queue_pos.unwrap_or(self.waiters.len());
        !self.waiters.iter().take(ahead).any(|w| {
            !w.doomed && !ancestors.contains(&w.txn) && modes_conflict(w.mode, mode)
        })
    }

    /// First queued stranger whose requested mode conflicts with `mode`
    /// (reported as the `holder` of a fast-fail conflict when nobody
    /// *holds* a conflicting mode but the queue blocks the request).
    fn blocking_waiter(&self, ancestors: &[TxnId], mode: LockMode) -> Option<TxnId> {
        self.waiters
            .iter()
            .find(|w| !w.doomed && !ancestors.contains(&w.txn) && modes_conflict(w.mode, mode))
            .map(|w| w.txn)
    }
}

#[derive(Debug, Default)]
struct Inner {
    entries: HashMap<LockTarget, Entry>,
    /// Per-transaction list of targets the transaction holds locks on —
    /// the index `transfer`/`release_all` walk instead of the whole
    /// table. A target appears at most once per transaction (guarded by
    /// the holder-slot check in `acquire`).
    by_txn: HashMap<TxnId, Vec<LockTarget>>,
    /// Entries visited by `transfer` + `release_all` since construction
    /// (diagnostics; pins the O(own locks) maintenance cost).
    maintenance_visits: u64,
}

impl Inner {
    fn grant(&mut self, t: TxnId, target: LockTarget, mode: LockMode) {
        let e = self.entries.entry(target).or_default();
        match e.holders.iter_mut().find(|(h, _)| *h == t) {
            Some(slot) => slot.1 |= bit(mode),
            None => {
                e.holders.push((t, bit(mode)));
                self.by_txn.entry(t).or_default().push(target);
            }
        }
    }

    /// Removes `t`'s waiter from `target`'s queue, returning it.
    #[allow(clippy::unwrap_used, clippy::expect_used)]
    fn dequeue(&mut self, target: LockTarget, t: TxnId) -> Waiter {
        // lint: allow(error-hygiene, dequeue is only called for a txn whose waiter is queued and waiters pin their entry)
        let e = self.entries.get_mut(&target).expect("waiter keeps its entry alive");
        // lint: allow(error-hygiene, dequeue is only called for a txn whose waiter is queued)
        let pos = e.waiters.iter().position(|w| w.txn == t).expect("waiter is queued");
        // lint: allow(error-hygiene, position returned by the search on the previous line)
        let w = e.waiters.remove(pos).expect("position just found");
        if e.holders.is_empty() && e.waiters.is_empty() {
            self.entries.remove(&target);
        }
        w
    }

    /// Wait-for edges of the waiter at `pos` in `target`'s queue: every
    /// conflicting non-ancestor holder, plus (for non-upgraders) every
    /// incompatible non-ancestor, non-doomed waiter queued ahead.
    fn blockers(&self, target: LockTarget, pos: usize) -> Vec<TxnId> {
        let e = &self.entries[&target];
        let w = &e.waiters[pos];
        let mut out: Vec<TxnId> = e
            .holders
            .iter()
            .filter(|(h, held)| !compatible(*held, w.mode) && !w.ancestors.contains(h))
            .map(|(h, _)| *h)
            .collect();
        if !e.holds(w.txn) {
            out.extend(
                e.waiters
                    .iter()
                    .take(pos)
                    .filter(|a| {
                        !a.doomed && !w.ancestors.contains(&a.txn) && modes_conflict(a.mode, w.mode)
                    })
                    .map(|a| a.txn),
            );
        }
        out
    }

    /// `txn -> (target, queue position)` for every live (non-doomed)
    /// waiter. A transaction waits on at most one target at a time (it is
    /// inside one blocked `acquire`).
    fn waiting_map(&self) -> HashMap<TxnId, (LockTarget, usize)> {
        let mut m = HashMap::new();
        for (target, e) in &self.entries {
            for (i, w) in e.waiters.iter().enumerate() {
                if !w.doomed {
                    m.insert(w.txn, (*target, i));
                }
            }
        }
        m
    }

    /// Finds one wait-for cycle through `start` (which must be queued), as
    /// the list of transactions on the cycle. Only waiting transactions
    /// can be cycle members — a blocker that is not itself waiting has no
    /// outgoing edges.
    fn find_cycle(&self, start: TxnId) -> Option<Vec<TxnId>> {
        let waiting = self.waiting_map();
        let mut path = vec![start];
        let mut visited: HashSet<TxnId> = [start].into();
        if self.dfs(&waiting, start, start, &mut path, &mut visited) {
            Some(path)
        } else {
            None
        }
    }

    fn dfs(
        &self,
        waiting: &HashMap<TxnId, (LockTarget, usize)>,
        node: TxnId,
        start: TxnId,
        path: &mut Vec<TxnId>,
        visited: &mut HashSet<TxnId>,
    ) -> bool {
        let Some(&(target, pos)) = waiting.get(&node) else { return false };
        for b in self.blockers(target, pos) {
            if b == start {
                return true;
            }
            if visited.insert(b) {
                path.push(b);
                if self.dfs(waiting, b, start, path, visited) {
                    return true;
                }
                path.pop();
            }
        }
        false
    }

    /// Victim = cycle member holding the fewest locks (cheapest rollback),
    /// ties broken youngest-first (largest TxnId — least work lost).
    #[allow(clippy::unwrap_used, clippy::expect_used)]
    fn pick_victim(&self, cycle: &[TxnId]) -> TxnId {
        *cycle
            .iter()
            .min_by_key(|t| (self.by_txn.get(*t).map_or(0, Vec::len), std::cmp::Reverse(t.0)))
            // lint: allow(error-hygiene, a detected deadlock cycle has at least one participant)
            .expect("cycle is non-empty")
    }

    /// Marks `victim`'s waiter doomed wherever it is queued.
    fn doom(&mut self, victim: TxnId) {
        for e in self.entries.values_mut() {
            for w in &mut e.waiters {
                if w.txn == victim {
                    w.doomed = true;
                    return;
                }
            }
        }
    }
}

/// The lock table.
#[derive(Debug)]
pub struct LockTable {
    // lockrank: locktable.0 — entry map + wait queues; held across grant
    // bookkeeping and condvar parks, never across I/O or access descent.
    inner: Mutex<Inner>,
    /// Single condvar for all waiters: releases/transfers/grants are rare
    /// relative to parked time and wake everyone to re-check eligibility.
    cv: Condvar,
    config: LockConfig,
    stats: LockStats,
}

impl Default for LockTable {
    fn default() -> Self {
        LockTable {
            inner: Mutex::new_ranked(Inner::default(), rank::LOCKTABLE),
            cv: Condvar::new(),
            config: LockConfig::default(),
            stats: LockStats::default(),
        }
    }
}

impl LockTable {
    /// Table with the default bounded-wait configuration.
    pub fn new() -> Self {
        Self::default()
    }

    pub fn with_config(config: LockConfig) -> Self {
        LockTable { config, ..Self::default() }
    }

    pub fn config(&self) -> LockConfig {
        self.config
    }

    pub fn stats(&self) -> &LockStats {
        &self.stats
    }

    /// Acquires `mode` on `target` for `t`. `ancestors` must contain `t`
    /// itself plus all its ancestors; a conflicting holder is tolerated
    /// iff it is in that set (Moss's rule: "all holders are ancestors").
    ///
    /// A conflicting request waits (bounded by
    /// [`LockConfig::wait_timeout`]) in the target's FIFO queue; it fails
    /// with [`TxnError::LockConflict`] when waiting is disabled or the
    /// queue is full, [`TxnError::LockTimeout`] when the wait expires, and
    /// [`TxnError::Deadlock`] when it is chosen to break a wait-for cycle.
    #[allow(clippy::unwrap_used, clippy::expect_used)]
    pub fn acquire(
        &self,
        t: TxnId,
        ancestors: &[TxnId],
        target: LockTarget,
        mode: LockMode,
    ) -> Result<(), TxnError> {
        self.stats.acquisitions.fetch_add(1, Relaxed);
        let mut inner = self.inner.lock();
        let can = match inner.entries.get(&target) {
            None => true,
            Some(e) => e.grantable(t, ancestors, mode, None),
        };
        if can {
            inner.grant(t, target, mode);
            return Ok(());
        }

        // Conflict. Identify a blocker for error reporting: a conflicting
        // holder if one exists, else the queued stranger we would wait on.
        let e = &inner.entries[&target];
        let holder = e
            .conflicting_holder(ancestors, mode)
            .or_else(|| e.blocking_waiter(ancestors, mode))
            // lint: allow(error-hygiene, a non-grantable request always has a holder or queued stranger blocking it)
            .expect("not grantable implies a blocker");
        if self.config.wait_timeout.is_zero() {
            return Err(TxnError::LockConflict { target, holder });
        }
        if e.waiters.len() >= self.config.max_waiters_per_target {
            self.stats.overflow_fastfails.fetch_add(1, Relaxed);
            return Err(TxnError::LockConflict { target, holder });
        }

        // Enqueue: upgraders go ahead of plain waiters (but behind other
        // queued upgraders) so holders block them but strangers do not.
        // lint: allow(error-hygiene, a conflict was just observed on this entry under the same lock acquisition)
        let e = inner.entries.get_mut(&target).expect("conflict implies entry");
        let pos = if e.holds(t) {
            let held: Vec<TxnId> = e.holders.iter().map(|(h, _)| *h).collect();
            let mut i = 0;
            while i < e.waiters.len() && held.contains(&e.waiters[i].txn) {
                i += 1;
            }
            i
        } else {
            e.waiters.len()
        };
        e.waiters.insert(
            pos,
            Waiter {
                txn: t,
                mode,
                ancestors: ancestors.to_vec(),
                doomed: false,
                enqueued: Instant::now(),
            },
        );
        let depth = e.waiters.len() as u64;
        self.stats.waits.fetch_add(1, Relaxed);
        self.stats.waiting_now.fetch_add(1, Relaxed);
        self.stats.max_queue_depth.fetch_max(depth, Relaxed);

        // Deadlock check: enqueuing added the only new wait-for edges, so
        // any new cycle runs through `t`. Doom victims until no cycle
        // through `t` remains (each doomed waiter loses its edges).
        let mut doomed_any = false;
        while let Some(cycle) = inner.find_cycle(t) {
            self.stats.deadlocks_detected.fetch_add(1, Relaxed);
            self.stats.victims.fetch_add(1, Relaxed);
            let victim = inner.pick_victim(&cycle);
            if victim == t {
                let w = inner.dequeue(target, t);
                self.stats.record_parked(w.enqueued.elapsed());
                if doomed_any {
                    self.cv.notify_all();
                }
                return Err(TxnError::Deadlock { victim, target });
            }
            inner.doom(victim);
            doomed_any = true;
        }
        if doomed_any {
            self.cv.notify_all();
        }

        // Park until grantable, doomed, or timed out.
        let deadline = Instant::now() + self.config.wait_timeout;
        loop {
            let e = &inner.entries[&target];
            // lint: allow(error-hygiene, the timed-out waiter was enqueued by this same call and nobody else removes it)
            let pos = e.waiters.iter().position(|w| w.txn == t).expect("still queued");
            if e.waiters[pos].doomed {
                let w = inner.dequeue(target, t);
                self.stats.record_parked(w.enqueued.elapsed());
                // Our removal may unblock waiters queued behind us.
                self.cv.notify_all();
                return Err(TxnError::Deadlock { victim: t, target });
            }
            if e.grantable(t, &e.waiters[pos].ancestors, mode, Some(pos)) {
                let w = inner.dequeue(target, t);
                self.stats.record_parked(w.enqueued.elapsed());
                inner.grant(t, target, mode);
                self.cv.notify_all();
                return Ok(());
            }
            let now = Instant::now();
            if now >= deadline {
                let w = inner.dequeue(target, t);
                self.stats.record_parked(w.enqueued.elapsed());
                self.stats.timeouts.fetch_add(1, Relaxed);
                self.cv.notify_all();
                return Err(TxnError::LockTimeout { target, waited: self.config.wait_timeout });
            }
            self.cv.wait_for(&mut inner, deadline - now);
        }
    }

    /// Transfers all of `from`'s locks to `to` (subtransaction commit —
    /// "anti-inheritance"). Walks only `from`'s own lock list. Waiters on
    /// the touched targets are woken: merging modes into the parent can
    /// change who is grantable (e.g. the parent was the only other
    /// conflicting holder).
    pub fn transfer(&self, from: TxnId, to: TxnId) {
        let mut inner = self.inner.lock();
        let Some(targets) = inner.by_txn.remove(&from) else { return };
        let mut woke = false;
        for target in targets {
            inner.maintenance_visits += 1;
            let Some(e) = inner.entries.get_mut(&target) else { continue };
            let Some(pos) = e.holders.iter().position(|(h, _)| *h == from) else { continue };
            let (_, modes) = e.holders.swap_remove(pos);
            let new_holder = match e.holders.iter_mut().find(|(h, _)| *h == to) {
                Some(slot) => {
                    slot.1 |= modes;
                    false
                }
                None => {
                    e.holders.push((to, modes));
                    true
                }
            };
            woke |= !e.waiters.is_empty();
            if new_holder {
                inner.by_txn.entry(to).or_default().push(target);
            }
        }
        if woke {
            self.cv.notify_all();
        }
    }

    /// Releases all locks of `t` (top-level commit or abort), reaping
    /// entries with no holders and no waiters, and waking waiters on every
    /// target that still has some. Walks only `t`'s own lock list.
    pub fn release_all(&self, t: TxnId) {
        let mut inner = self.inner.lock();
        let Some(targets) = inner.by_txn.remove(&t) else { return };
        let mut woke = false;
        for target in targets {
            inner.maintenance_visits += 1;
            let Some(e) = inner.entries.get_mut(&target) else { continue };
            e.holders.retain(|(h, _)| *h != t);
            woke |= !e.waiters.is_empty();
            if e.holders.is_empty() && e.waiters.is_empty() {
                inner.entries.remove(&target);
            }
        }
        if woke {
            self.cv.notify_all();
        }
    }

    /// Number of targets with at least one lock or waiter (diagnostics).
    /// Returns to zero once every transaction has committed or aborted —
    /// drained entries are reaped, the table does not grow monotonically.
    pub fn locked_targets(&self) -> usize {
        self.inner.lock().entries.len()
    }

    /// Number of locks `t` currently holds (diagnostics).
    pub fn held_by(&self, t: TxnId) -> usize {
        self.inner.lock().by_txn.get(&t).map_or(0, std::vec::Vec::len)
    }

    /// Targets that currently have waiters, with their queue depths
    /// (diagnostics; the live complement of the [`LockStats`] counters).
    pub fn queue_depths(&self) -> Vec<(LockTarget, usize)> {
        self.inner
            .lock()
            .entries
            .iter()
            .filter(|(_, e)| !e.waiters.is_empty())
            .map(|(t, e)| (*t, e.waiters.len()))
            .collect()
    }

    /// Entries visited by `transfer`/`release_all` so far — the
    /// maintenance cost, which must scale with the finishing
    /// transaction's own lock count, never with the table size.
    pub fn maintenance_visits(&self) -> u64 {
        self.inner.lock().maintenance_visits
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::sync::mpsc;
    use std::thread;

    fn atom(n: u64) -> LockTarget {
        LockTarget::Atom(AtomId::new(0, n))
    }

    fn ext(t: AtomTypeId) -> LockTarget {
        LockTarget::Extension(t)
    }

    /// Fail-fast table: the single-threaded conflict tests below pin the
    /// original no-wait semantics.
    fn no_wait() -> LockTable {
        LockTable::with_config(LockConfig::no_wait())
    }

    #[test]
    fn shared_locks_coexist() {
        let lt = no_wait();
        lt.acquire(TxnId(1), &[TxnId(1)], atom(1), LockMode::Shared).unwrap();
        lt.acquire(TxnId(2), &[TxnId(2)], atom(1), LockMode::Shared).unwrap();
        assert_eq!(lt.locked_targets(), 1);
    }

    #[test]
    fn exclusive_conflicts_with_stranger() {
        let lt = no_wait();
        lt.acquire(TxnId(1), &[TxnId(1)], atom(1), LockMode::Exclusive).unwrap();
        let err = lt.acquire(TxnId(2), &[TxnId(2)], atom(1), LockMode::Shared).unwrap_err();
        assert!(matches!(err, TxnError::LockConflict { holder: TxnId(1), .. }));
        let err = lt.acquire(TxnId(2), &[TxnId(2)], atom(1), LockMode::Exclusive).unwrap_err();
        assert!(matches!(err, TxnError::LockConflict { .. }));
    }

    #[test]
    fn intent_exclusive_coexists_with_itself_but_not_shared() {
        let lt = no_wait();
        // Two writers of different atoms announce intent on the same type.
        lt.acquire(TxnId(1), &[TxnId(1)], ext(7), LockMode::IntentExclusive).unwrap();
        lt.acquire(TxnId(2), &[TxnId(2)], ext(7), LockMode::IntentExclusive).unwrap();
        // A scanning reader conflicts with both.
        let err = lt.acquire(TxnId(3), &[TxnId(3)], ext(7), LockMode::Shared);
        assert!(err.is_err());
        // And a reader-held extension blocks a new writer.
        lt.acquire(TxnId(3), &[TxnId(3)], ext(8), LockMode::Shared).unwrap();
        let err = lt.acquire(TxnId(1), &[TxnId(1)], ext(8), LockMode::IntentExclusive);
        assert!(err.is_err());
    }

    #[test]
    fn scan_then_write_combines_modes_six_style() {
        let lt = no_wait();
        // One transaction scans (S) then inserts (IX) into the same type.
        lt.acquire(TxnId(1), &[TxnId(1)], ext(7), LockMode::Shared).unwrap();
        lt.acquire(TxnId(1), &[TxnId(1)], ext(7), LockMode::IntentExclusive).unwrap();
        // The combined hold blocks both readers and writers.
        assert!(lt.acquire(TxnId(2), &[TxnId(2)], ext(7), LockMode::Shared).is_err());
        assert!(lt
            .acquire(TxnId(2), &[TxnId(2)], ext(7), LockMode::IntentExclusive)
            .is_err());
        // Exactly one index entry despite two modes.
        assert_eq!(lt.held_by(TxnId(1)), 1);
    }

    #[test]
    fn ancestor_holding_lock_is_not_a_conflict() {
        let lt = no_wait();
        // parent 1 holds X; child 2 (ancestors [2,1]) may acquire.
        lt.acquire(TxnId(1), &[TxnId(1)], atom(1), LockMode::Exclusive).unwrap();
        lt.acquire(TxnId(2), &[TxnId(2), TxnId(1)], atom(1), LockMode::Exclusive).unwrap();
        // sibling 3 (ancestors [3,1]) conflicts with 2's X.
        let err = lt.acquire(TxnId(3), &[TxnId(3), TxnId(1)], atom(1), LockMode::Shared);
        assert!(err.is_err());
    }

    #[test]
    fn transfer_on_subcommit() {
        let lt = no_wait();
        lt.acquire(TxnId(2), &[TxnId(2), TxnId(1)], atom(1), LockMode::Exclusive).unwrap();
        lt.transfer(TxnId(2), TxnId(1));
        // A stranger still conflicts — now with txn 1.
        let err = lt.acquire(TxnId(9), &[TxnId(9)], atom(1), LockMode::Shared).unwrap_err();
        assert!(matches!(err, TxnError::LockConflict { holder: TxnId(1), .. }));
        // Another child of 1 may acquire (holder is its ancestor).
        lt.acquire(TxnId(3), &[TxnId(3), TxnId(1)], atom(1), LockMode::Shared).unwrap();
        // The transferred lock is indexed under the parent now.
        assert_eq!(lt.held_by(TxnId(2)), 0);
        assert_eq!(lt.held_by(TxnId(1)), 1);
    }

    #[test]
    fn release_all_clears_and_reaps_entries() {
        let lt = no_wait();
        lt.acquire(TxnId(1), &[TxnId(1)], atom(1), LockMode::Exclusive).unwrap();
        lt.acquire(TxnId(1), &[TxnId(1)], atom(2), LockMode::Shared).unwrap();
        lt.acquire(TxnId(1), &[TxnId(1)], ext(0), LockMode::IntentExclusive).unwrap();
        lt.release_all(TxnId(1));
        assert_eq!(lt.locked_targets(), 0, "empty entries must be reaped");
        lt.acquire(TxnId(2), &[TxnId(2)], atom(1), LockMode::Exclusive).unwrap();
    }

    #[test]
    fn table_does_not_grow_with_every_atom_ever_locked() {
        let lt = no_wait();
        for round in 0..50u64 {
            let t = TxnId(round + 1);
            for n in 0..100 {
                lt.acquire(t, &[t], atom(round * 100 + n), LockMode::Exclusive).unwrap();
            }
            lt.release_all(t);
            assert_eq!(lt.locked_targets(), 0, "round {round} left entries behind");
        }
    }

    #[test]
    fn maintenance_walks_own_locks_not_the_table() {
        let lt = no_wait();
        // A long-lived transaction holds 1000 locks.
        for n in 0..1000 {
            lt.acquire(TxnId(1), &[TxnId(1)], atom(n), LockMode::Shared).unwrap();
        }
        // A small transaction holds 2.
        lt.acquire(TxnId(2), &[TxnId(2)], atom(5000), LockMode::Exclusive).unwrap();
        lt.acquire(TxnId(2), &[TxnId(2)], atom(5001), LockMode::Exclusive).unwrap();
        let before = lt.maintenance_visits();
        lt.release_all(TxnId(2));
        assert_eq!(
            lt.maintenance_visits() - before,
            2,
            "releasing a 2-lock txn must visit 2 entries, not the 1000-entry table"
        );
        // Same for subtransaction transfer.
        lt.acquire(TxnId(3), &[TxnId(3), TxnId(1)], atom(6000), LockMode::Exclusive).unwrap();
        let before = lt.maintenance_visits();
        lt.transfer(TxnId(3), TxnId(1));
        assert_eq!(lt.maintenance_visits() - before, 1);
    }

    #[test]
    fn shared_then_upgrade_by_same_txn() {
        let lt = no_wait();
        lt.acquire(TxnId(1), &[TxnId(1)], atom(1), LockMode::Shared).unwrap();
        lt.acquire(TxnId(1), &[TxnId(1)], atom(1), LockMode::Exclusive).unwrap();
        let err = lt.acquire(TxnId(2), &[TxnId(2)], atom(1), LockMode::Shared);
        assert!(err.is_err());
    }

    // --- wait-queue behavior ------------------------------------------------

    /// Bounded-wait table with a generous timeout for blocking tests.
    fn waiting(ms: u64) -> Arc<LockTable> {
        Arc::new(LockTable::with_config(LockConfig::bounded(Duration::from_millis(ms), 16)))
    }

    #[test]
    fn waiter_is_granted_after_release() {
        let lt = waiting(5000);
        lt.acquire(TxnId(1), &[TxnId(1)], atom(1), LockMode::Exclusive).unwrap();
        let lt2 = Arc::clone(&lt);
        let h = thread::spawn(move || {
            lt2.acquire(TxnId(2), &[TxnId(2)], atom(1), LockMode::Exclusive)
        });
        // Give the waiter time to park, then release.
        while lt.queue_depths().is_empty() {
            thread::yield_now();
        }
        lt.release_all(TxnId(1));
        h.join().unwrap().expect("waiter granted after release");
        let s = lt.stats().snapshot();
        assert_eq!(s.waits, 1);
        assert_eq!(s.timeouts, 0);
        assert_eq!(s.waiting_now, 0);
        assert!(s.max_queue_depth >= 1);
    }

    #[test]
    fn bounded_wait_times_out() {
        let lt = waiting(30);
        lt.acquire(TxnId(1), &[TxnId(1)], atom(1), LockMode::Exclusive).unwrap();
        let err = lt.acquire(TxnId(2), &[TxnId(2)], atom(1), LockMode::Shared).unwrap_err();
        assert!(matches!(err, TxnError::LockTimeout { .. }));
        let s = lt.stats().snapshot();
        assert_eq!(s.timeouts, 1);
        assert!(s.wait_us_total > 0, "timed-out wait must be accounted");
        // The queue drained; the entry still has its holder.
        assert!(lt.queue_depths().is_empty());
    }

    #[test]
    fn queue_cap_degrades_to_fast_fail() {
        let lt = Arc::new(LockTable::with_config(LockConfig::bounded(
            Duration::from_millis(5000),
            1,
        )));
        lt.acquire(TxnId(1), &[TxnId(1)], atom(1), LockMode::Exclusive).unwrap();
        let lt2 = Arc::clone(&lt);
        let h = thread::spawn(move || {
            lt2.acquire(TxnId(2), &[TxnId(2)], atom(1), LockMode::Exclusive)
        });
        while lt.queue_depths().is_empty() {
            thread::yield_now();
        }
        // Queue is at the cap: the third request bounces immediately.
        let err = lt.acquire(TxnId(3), &[TxnId(3)], atom(1), LockMode::Shared).unwrap_err();
        assert!(matches!(err, TxnError::LockConflict { .. }));
        assert_eq!(lt.stats().snapshot().overflow_fastfails, 1);
        lt.release_all(TxnId(1));
        h.join().unwrap().unwrap();
    }

    #[test]
    fn two_txn_deadlock_picks_exactly_one_victim() {
        let lt = waiting(5000);
        lt.acquire(TxnId(1), &[TxnId(1)], atom(1), LockMode::Exclusive).unwrap();
        lt.acquire(TxnId(2), &[TxnId(2)], atom(2), LockMode::Exclusive).unwrap();
        let lt2 = Arc::clone(&lt);
        let h = thread::spawn(move || {
            // 1 waits for 2's atom.
            lt2.acquire(TxnId(1), &[TxnId(1)], atom(2), LockMode::Exclusive)
        });
        while lt.queue_depths().is_empty() {
            thread::yield_now();
        }
        // 2 requests 1's atom: cycle {1, 2}. Both hold the same number of
        // locks, so the younger (2, the requester) dies immediately.
        let err = lt.acquire(TxnId(2), &[TxnId(2)], atom(1), LockMode::Exclusive).unwrap_err();
        assert!(matches!(err, TxnError::Deadlock { victim: TxnId(2), .. }));
        // The survivor is granted once the victim rolls back.
        lt.release_all(TxnId(2));
        h.join().unwrap().expect("survivor granted after victim released");
        let s = lt.stats().snapshot();
        assert_eq!(s.deadlocks_detected, 1);
        assert_eq!(s.victims, 1);
    }

    #[test]
    fn victim_with_fewest_locks_is_preferred() {
        let lt = waiting(5000);
        // 1 holds two locks, 2 holds one: 2 is the cheaper victim even
        // though 1 is the requester closing the cycle.
        lt.acquire(TxnId(1), &[TxnId(1)], atom(1), LockMode::Exclusive).unwrap();
        lt.acquire(TxnId(1), &[TxnId(1)], atom(3), LockMode::Exclusive).unwrap();
        lt.acquire(TxnId(2), &[TxnId(2)], atom(2), LockMode::Exclusive).unwrap();
        let lt2 = Arc::clone(&lt);
        let h = thread::spawn(move || {
            let r = lt2.acquire(TxnId(2), &[TxnId(2)], atom(1), LockMode::Exclusive);
            if r.is_err() {
                // The victim's caller aborts, releasing its locks.
                lt2.release_all(TxnId(2));
            }
            r
        });
        while lt.queue_depths().is_empty() {
            thread::yield_now();
        }
        // 1 requests 2's atom, closing the cycle; parked 2 is doomed.
        let err = lt.acquire(TxnId(1), &[TxnId(1)], atom(2), LockMode::Exclusive);
        let parked = h.join().unwrap();
        assert!(
            matches!(parked, Err(TxnError::Deadlock { victim: TxnId(2), .. })),
            "parked txn 2 (fewest locks) must be the victim, got {parked:?}"
        );
        err.expect("requester granted once the victim aborts");
        lt.release_all(TxnId(1));
    }

    #[test]
    fn fifo_reader_does_not_overtake_queued_writer() {
        let lt = waiting(5000);
        lt.acquire(TxnId(1), &[TxnId(1)], atom(1), LockMode::Shared).unwrap();
        let lt2 = Arc::clone(&lt);
        let (tx, rx) = mpsc::channel();
        let writer = thread::spawn(move || {
            let r = lt2.acquire(TxnId(2), &[TxnId(2)], atom(1), LockMode::Exclusive);
            tx.send(()).unwrap();
            r
        });
        while lt.queue_depths().is_empty() {
            thread::yield_now();
        }
        // A fresh reader is compatible with the S holder but must queue
        // behind the waiting writer.
        let lt3 = Arc::clone(&lt);
        let reader = thread::spawn(move || {
            lt3.acquire(TxnId(3), &[TxnId(3)], atom(1), LockMode::Shared)
        });
        while lt.queue_depths().first().map_or(0, |(_, d)| *d) < 2 {
            thread::yield_now();
        }
        assert!(
            rx.try_recv().is_err(),
            "writer must still be parked while the first reader holds S"
        );
        // Release the original reader: the writer must be granted first.
        lt.release_all(TxnId(1));
        writer.join().unwrap().expect("writer granted in FIFO order");
        // The late reader is granted only after the writer releases.
        lt.release_all(TxnId(2));
        reader.join().unwrap().expect("reader granted after writer");
        lt.release_all(TxnId(3));
        assert_eq!(lt.locked_targets(), 0);
    }

    #[test]
    fn upgrade_waits_for_other_reader_not_for_queued_strangers() {
        let lt = waiting(5000);
        // 1 and 2 both hold S; 1 wants X (upgrade), blocked only by 2.
        lt.acquire(TxnId(1), &[TxnId(1)], atom(1), LockMode::Shared).unwrap();
        lt.acquire(TxnId(2), &[TxnId(2)], atom(1), LockMode::Shared).unwrap();
        let lt2 = Arc::clone(&lt);
        let h = thread::spawn(move || {
            lt2.acquire(TxnId(1), &[TxnId(1)], atom(1), LockMode::Exclusive)
        });
        while lt.queue_depths().is_empty() {
            thread::yield_now();
        }
        // 2 releases: the upgrade proceeds without self-blocking on 1's
        // own S hold.
        lt.release_all(TxnId(2));
        h.join().unwrap().expect("upgrade granted after the other reader left");
        lt.release_all(TxnId(1));
    }

    #[test]
    fn upgrade_deadlock_between_two_readers_dooms_one() {
        let lt = waiting(5000);
        lt.acquire(TxnId(1), &[TxnId(1)], atom(1), LockMode::Shared).unwrap();
        lt.acquire(TxnId(2), &[TxnId(2)], atom(1), LockMode::Shared).unwrap();
        let lt2 = Arc::clone(&lt);
        let h = thread::spawn(move || {
            let r = lt2.acquire(TxnId(1), &[TxnId(1)], atom(1), LockMode::Exclusive);
            if r.is_err() {
                lt2.release_all(TxnId(1));
            }
            r
        });
        while lt.queue_depths().is_empty() {
            thread::yield_now();
        }
        // 2 also upgrades: each waits for the other's S — a cycle no
        // release will ever break. Exactly one dies.
        let r2 = lt.acquire(TxnId(2), &[TxnId(2)], atom(1), LockMode::Exclusive);
        if r2.is_err() {
            lt.release_all(TxnId(2));
        }
        let r1 = h.join().unwrap();
        let deadlocks = [&r1, &r2]
            .iter()
            .filter(|r| matches!(r, Err(TxnError::Deadlock { .. })))
            .count();
        assert_eq!(deadlocks, 1, "exactly one upgrader dies: r1={r1:?} r2={r2:?}");
        assert_eq!(lt.stats().snapshot().victims, 1);
    }

    #[test]
    fn no_wait_config_keeps_queues_empty() {
        let lt = no_wait();
        lt.acquire(TxnId(1), &[TxnId(1)], atom(1), LockMode::Exclusive).unwrap();
        for _ in 0..10 {
            assert!(lt.acquire(TxnId(2), &[TxnId(2)], atom(1), LockMode::Shared).is_err());
        }
        let s = lt.stats().snapshot();
        assert_eq!(s.waits, 0);
        assert_eq!(s.max_queue_depth, 0);
        assert!(lt.queue_depths().is_empty());
    }

    #[test]
    fn stats_detail_mentions_every_counter() {
        let lt = waiting(10);
        lt.acquire(TxnId(1), &[TxnId(1)], atom(1), LockMode::Exclusive).unwrap();
        let _ = lt.acquire(TxnId(2), &[TxnId(2)], atom(1), LockMode::Shared);
        let d = lt.stats().snapshot().detail();
        for key in ["lock waits", "lock timeouts", "deadlocks detected", "queue overflows", "waiting now"] {
            assert!(d.contains(key), "detail() missing {key:?}:\n{d}");
        }
    }
}
