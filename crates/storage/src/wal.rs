//! Write-ahead log.
//!
//! The paper defers media and crash recovery to a later report; this
//! module supplies the piece every kernel since the systems of the 1970s
//! has carried between Fig. 3.1's storage system and the devices: an
//! append-only, LSN-stamped log with
//!
//! * **physical redo** — full page images captured when an updater unfixes
//!   a dirty page ([`crate::buffer::BufferManager`] stamps the frame's
//!   `recovery_lsn`);
//! * **logical undo** — opaque payloads the transaction layer serialises
//!   (inverse atom operations), tagged with their top-level transaction;
//! * **transaction brackets** — begin / commit / abort records; commit
//!   *forces* the log, which is what makes `Session::commit` durable;
//! * **group append** — records accumulate in an in-process buffer and
//!   reach the device only on [`Wal::force`], one sequential
//!   [`BlockDevice::wal_append`] per force. Everything not yet forced is
//!   lost in a crash — exactly the contract recovery assumes.
//!
//! The write-ahead invariant is enforced at the buffer: no dirty page
//! reaches the device while its `recovery_lsn` exceeds
//! [`Wal::flushed_lsn`]. The transaction layer keeps the companion
//! invariant that a statement's undo record is appended *before* any of
//! its page images, so a forced prefix never contains a redo without the
//! matching undo.
//!
//! On-device format: a sequence of `[u32 body_len][u32 crc][body]`
//! records; `body = [u8 kind][u64 lsn][fields]`. Replay stops at the
//! first truncated or corrupt record — the torn tail of a crash.

use crate::disk::BlockDevice;
use crate::error::{StorageError, StorageResult};
use crate::page::PageId;
use parking_lot::Mutex;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

/// Log sequence number. `0` means "none"; real records start at 1.
pub type Lsn = u64;

const KIND_PAGE_IMAGE: u8 = 1;
const KIND_TXN_BEGIN: u8 = 2;
const KIND_TXN_COMMIT: u8 = 3;
const KIND_TXN_ABORT: u8 = 4;
const KIND_UNDO: u8 = 5;
const KIND_CHECKPOINT: u8 = 6;

/// A record as appended (borrowed payloads; the LSN is assigned by
/// [`Wal::append`]).
#[derive(Debug)]
pub enum WalPayload<'a> {
    /// Full after-image of one page (physical redo).
    PageImage { page: PageId, bytes: &'a [u8] },
    /// Top-level transaction started.
    TxnBegin { txn: u64 },
    /// Top-level transaction committed (the append is followed by a
    /// force).
    TxnCommit { txn: u64 },
    /// Top-level transaction rolled back in-process (its undo has been
    /// applied; recovery must not undo it again *if* this record made it
    /// to the device).
    TxnAbort { txn: u64 },
    /// Logical undo payload, opaque to the storage layer.
    Undo { txn: u64, payload: &'a [u8] },
    /// Checkpoint marker (diagnostic; the log is truncated right after).
    Checkpoint,
}

/// A decoded record from replay.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WalRecord {
    PageImage { lsn: Lsn, page: PageId, bytes: Vec<u8> },
    TxnBegin { lsn: Lsn, txn: u64 },
    TxnCommit { lsn: Lsn, txn: u64 },
    TxnAbort { lsn: Lsn, txn: u64 },
    Undo { lsn: Lsn, txn: u64, payload: Vec<u8> },
    Checkpoint { lsn: Lsn },
}

impl WalRecord {
    /// The record's LSN.
    pub fn lsn(&self) -> Lsn {
        match self {
            WalRecord::PageImage { lsn, .. }
            | WalRecord::TxnBegin { lsn, .. }
            | WalRecord::TxnCommit { lsn, .. }
            | WalRecord::TxnAbort { lsn, .. }
            | WalRecord::Undo { lsn, .. }
            | WalRecord::Checkpoint { lsn } => *lsn,
        }
    }
}

struct WalBuf {
    /// Encoded records not yet forced to the device.
    pending: Vec<u8>,
    /// LSN of the newest buffered record.
    buffered: Lsn,
}

/// The write-ahead log over a device's log area. See module docs.
pub struct Wal {
    device: Arc<dyn BlockDevice>,
    inner: Mutex<WalBuf>,
    next_lsn: AtomicU64,
    flushed: AtomicU64,
    /// Set when a device append failed mid-batch: the log may carry a
    /// durable torn fragment, and appending *past* it would put records
    /// where replay (which stops at the first corrupt record) can never
    /// see them — later commits would return Ok yet be unrecoverable.
    /// A poisoned log refuses all further forces (commits fail loudly);
    /// truncation — reopening the database, or a successful checkpoint
    /// reset — clears the condition.
    poisoned: AtomicBool,
}

impl std::fmt::Debug for Wal {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Wal")
            .field("flushed", &self.flushed.load(Ordering::Relaxed))
            .field("next_lsn", &self.next_lsn.load(Ordering::Relaxed))
            .finish()
    }
}

/// CRC-32 (IEEE 802.3 polynomial, reflected) — a real CRC, not a hash:
/// torn tails are exactly the burst errors CRCs guarantee to detect.
fn crc32(bytes: &[u8]) -> u32 {
    let mut crc: u32 = !0;
    for &b in bytes {
        crc ^= b as u32;
        for _ in 0..8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (0xedb8_8320 & mask);
        }
    }
    !crc
}

impl Wal {
    /// A log whose first record gets LSN 1 (fresh database).
    pub fn new(device: Arc<dyn BlockDevice>) -> Arc<Wal> {
        Self::starting_at(device, 1)
    }

    /// A log resuming after replay: `first_lsn` must exceed every LSN
    /// already on the device so recovery-time appends stay monotone.
    pub fn starting_at(device: Arc<dyn BlockDevice>, first_lsn: Lsn) -> Arc<Wal> {
        Arc::new(Wal {
            device,
            inner: Mutex::new(WalBuf { pending: Vec::new(), buffered: first_lsn - 1 }),
            next_lsn: AtomicU64::new(first_lsn),
            flushed: AtomicU64::new(first_lsn - 1),
            poisoned: AtomicBool::new(false),
        })
    }

    fn check_poison(&self) -> StorageResult<()> {
        if self.poisoned.load(Ordering::Relaxed) {
            return Err(StorageError::DeviceError(
                "wal: a previous append failed mid-batch; the log tail is suspect — \
                 reopen the database to recover"
                    .into(),
            ));
        }
        Ok(())
    }

    /// Appends one record to the in-process group buffer and returns its
    /// LSN. Not durable until [`Wal::force`].
    pub fn append(&self, payload: WalPayload<'_>) -> Lsn {
        let probe_t = crate::probe::timer();
        let mut inner = self.inner.lock();
        // LSN assignment under the buffer lock: file order == LSN order.
        let lsn = self.next_lsn.fetch_add(1, Ordering::Relaxed);
        let mut body = Vec::with_capacity(16);
        match payload {
            WalPayload::PageImage { page, bytes } => {
                body.push(KIND_PAGE_IMAGE);
                body.extend_from_slice(&lsn.to_le_bytes());
                body.extend_from_slice(&page.segment.to_le_bytes());
                body.extend_from_slice(&page.page.to_le_bytes());
                body.extend_from_slice(&(bytes.len() as u32).to_le_bytes());
                body.extend_from_slice(bytes);
            }
            WalPayload::TxnBegin { txn } => {
                body.push(KIND_TXN_BEGIN);
                body.extend_from_slice(&lsn.to_le_bytes());
                body.extend_from_slice(&txn.to_le_bytes());
            }
            WalPayload::TxnCommit { txn } => {
                body.push(KIND_TXN_COMMIT);
                body.extend_from_slice(&lsn.to_le_bytes());
                body.extend_from_slice(&txn.to_le_bytes());
            }
            WalPayload::TxnAbort { txn } => {
                body.push(KIND_TXN_ABORT);
                body.extend_from_slice(&lsn.to_le_bytes());
                body.extend_from_slice(&txn.to_le_bytes());
            }
            WalPayload::Undo { txn, payload } => {
                body.push(KIND_UNDO);
                body.extend_from_slice(&lsn.to_le_bytes());
                body.extend_from_slice(&txn.to_le_bytes());
                body.extend_from_slice(&(payload.len() as u32).to_le_bytes());
                body.extend_from_slice(payload);
            }
            WalPayload::Checkpoint => {
                body.push(KIND_CHECKPOINT);
                body.extend_from_slice(&lsn.to_le_bytes());
            }
        }
        inner.pending.extend_from_slice(&(body.len() as u32).to_le_bytes());
        inner.pending.extend_from_slice(&crc32(&body).to_le_bytes());
        inner.pending.extend_from_slice(&body);
        inner.buffered = lsn;
        crate::probe::emit_elapsed(probe_t, crate::probe::ProbeEvent::WalAppend, (body.len() + 8) as u64);
        lsn
    }

    /// Forces every buffered record to the device in one sequential
    /// append (group commit). Returns the newest durable LSN.
    pub fn force(&self) -> StorageResult<Lsn> {
        let probe_t = crate::probe::timer();
        let mut inner = self.inner.lock();
        self.check_poison()?;
        if inner.pending.is_empty() {
            return Ok(self.flushed.load(Ordering::Relaxed));
        }
        let batch_len = inner.pending.len() as u64;
        if let Err(e) = self.device.wal_append(&inner.pending) {
            // The device may hold a torn fragment of this batch; see the
            // `poisoned` field docs.
            self.poisoned.store(true, Ordering::Relaxed);
            return Err(e);
        }
        inner.pending.clear();
        let lsn = inner.buffered;
        self.flushed.store(lsn, Ordering::Relaxed);
        crate::probe::emit_elapsed(probe_t, crate::probe::ProbeEvent::WalForce, batch_len);
        Ok(lsn)
    }

    /// Newest LSN durably on the device.
    pub fn flushed_lsn(&self) -> Lsn {
        self.flushed.load(Ordering::Relaxed)
    }

    /// Newest LSN appended (durable or buffered).
    pub fn buffered_lsn(&self) -> Lsn {
        self.inner.lock().buffered
    }

    /// Truncates the device's log area (checkpoint: everything
    /// redo-relevant up to the force that preceded the flush is now in
    /// the flushed pages and metadata snapshot). Records still *pending*
    /// in the group buffer — e.g. page images of non-transactional
    /// writers racing the checkpoint — are not discarded: they are
    /// appended to the fresh log immediately, so `flushed == buffered`
    /// stays truthful. The LSN counter keeps increasing.
    pub fn reset(&self) -> StorageResult<()> {
        let mut inner = self.inner.lock();
        self.device.wal_reset()?;
        // Truncation discards any torn fragment, so the log is clean
        // again.
        self.poisoned.store(false, Ordering::Relaxed);
        if !inner.pending.is_empty() {
            if let Err(e) = self.device.wal_append(&inner.pending) {
                self.poisoned.store(true, Ordering::Relaxed);
                return Err(e);
            }
            inner.pending.clear();
        }
        self.flushed.store(inner.buffered, Ordering::Relaxed);
        Ok(())
    }

    /// Decodes the device's entire log area. Replay stops silently at the
    /// first truncated or checksum-failing record (a crash's torn tail);
    /// corruption *before* valid records is reported as an error.
    pub fn replay(device: &Arc<dyn BlockDevice>) -> StorageResult<Vec<WalRecord>> {
        let bytes = device.wal_contents()?;
        let mut out = Vec::new();
        let mut pos = 0usize;
        while pos + 8 <= bytes.len() {
            let len = u32::from_le_bytes(bytes[pos..pos + 4].try_into().unwrap()) as usize;
            let crc = u32::from_le_bytes(bytes[pos + 4..pos + 8].try_into().unwrap());
            let body_start = pos + 8;
            if body_start + len > bytes.len() {
                break; // torn tail
            }
            let body = &bytes[body_start..body_start + len];
            if crc32(body) != crc {
                break; // torn tail (partial overwrite)
            }
            match Self::decode_body(body) {
                Some(rec) => out.push(rec),
                None => {
                    return Err(StorageError::DeviceError(format!(
                        "wal: undecodable record at byte {pos}"
                    )))
                }
            }
            pos = body_start + len;
        }
        Ok(out)
    }

    fn decode_body(body: &[u8]) -> Option<WalRecord> {
        if body.len() < 9 {
            return None;
        }
        let kind = body[0];
        let lsn = u64::from_le_bytes(body[1..9].try_into().unwrap());
        let rest = &body[9..];
        Some(match kind {
            KIND_PAGE_IMAGE => {
                if rest.len() < 12 {
                    return None;
                }
                let segment = u32::from_le_bytes(rest[0..4].try_into().unwrap());
                let page = u32::from_le_bytes(rest[4..8].try_into().unwrap());
                let n = u32::from_le_bytes(rest[8..12].try_into().unwrap()) as usize;
                if rest.len() < 12 + n {
                    return None;
                }
                WalRecord::PageImage {
                    lsn,
                    page: PageId::new(segment, page),
                    bytes: rest[12..12 + n].to_vec(),
                }
            }
            KIND_TXN_BEGIN | KIND_TXN_COMMIT | KIND_TXN_ABORT => {
                if rest.len() < 8 {
                    return None;
                }
                let txn = u64::from_le_bytes(rest[0..8].try_into().unwrap());
                match kind {
                    KIND_TXN_BEGIN => WalRecord::TxnBegin { lsn, txn },
                    KIND_TXN_COMMIT => WalRecord::TxnCommit { lsn, txn },
                    _ => WalRecord::TxnAbort { lsn, txn },
                }
            }
            KIND_UNDO => {
                if rest.len() < 12 {
                    return None;
                }
                let txn = u64::from_le_bytes(rest[0..8].try_into().unwrap());
                let n = u32::from_le_bytes(rest[8..12].try_into().unwrap()) as usize;
                if rest.len() < 12 + n {
                    return None;
                }
                WalRecord::Undo { lsn, txn, payload: rest[12..12 + n].to_vec() }
            }
            KIND_CHECKPOINT => WalRecord::Checkpoint { lsn },
            _ => return None,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::disk::SimDisk;

    fn device() -> Arc<dyn BlockDevice> {
        Arc::new(SimDisk::new())
    }

    #[test]
    fn append_force_replay_round_trip() {
        let dev = device();
        let wal = Wal::new(Arc::clone(&dev));
        let l1 = wal.append(WalPayload::TxnBegin { txn: 7 });
        let l2 = wal.append(WalPayload::Undo { txn: 7, payload: b"undo-bytes" });
        let l3 = wal.append(WalPayload::PageImage {
            page: PageId::new(2, 9),
            bytes: &[1, 2, 3, 4],
        });
        let l4 = wal.append(WalPayload::TxnCommit { txn: 7 });
        assert_eq!((l1, l2, l3, l4), (1, 2, 3, 4));
        assert_eq!(wal.flushed_lsn(), 0, "nothing durable before force");
        assert_eq!(wal.force().unwrap(), 4);
        assert_eq!(wal.flushed_lsn(), 4);
        let recs = Wal::replay(&dev).unwrap();
        assert_eq!(recs.len(), 4);
        assert_eq!(recs[0], WalRecord::TxnBegin { lsn: 1, txn: 7 });
        assert_eq!(
            recs[1],
            WalRecord::Undo { lsn: 2, txn: 7, payload: b"undo-bytes".to_vec() }
        );
        assert_eq!(
            recs[2],
            WalRecord::PageImage { lsn: 3, page: PageId::new(2, 9), bytes: vec![1, 2, 3, 4] }
        );
        assert_eq!(recs[3], WalRecord::TxnCommit { lsn: 4, txn: 7 });
    }

    #[test]
    fn unforced_tail_is_lost() {
        let dev = device();
        let wal = Wal::new(Arc::clone(&dev));
        wal.append(WalPayload::TxnBegin { txn: 1 });
        wal.force().unwrap();
        wal.append(WalPayload::TxnCommit { txn: 1 }); // never forced
        drop(wal);
        let recs = Wal::replay(&dev).unwrap();
        assert_eq!(recs.len(), 1, "only the forced prefix survives");
    }

    #[test]
    fn torn_tail_stops_replay() {
        let dev = device();
        let wal = Wal::new(Arc::clone(&dev));
        wal.append(WalPayload::TxnBegin { txn: 1 });
        wal.force().unwrap();
        // Simulate a torn append: half a record at the end.
        dev.wal_append(&[13, 0, 0, 0, 99, 99]).unwrap();
        let recs = Wal::replay(&dev).unwrap();
        assert_eq!(recs.len(), 1);
    }

    #[test]
    fn reset_truncates_device_log() {
        let dev = device();
        let wal = Wal::new(Arc::clone(&dev));
        wal.append(WalPayload::Checkpoint);
        wal.force().unwrap();
        wal.reset().unwrap();
        assert!(Wal::replay(&dev).unwrap().is_empty());
        // LSNs keep increasing after a reset.
        let lsn = wal.append(WalPayload::TxnBegin { txn: 2 });
        assert_eq!(lsn, 2);
    }

    #[test]
    fn group_append_is_one_device_transfer() {
        let dev = Arc::new(SimDisk::new());
        let wal = Wal::new(Arc::clone(&dev) as Arc<dyn BlockDevice>);
        for i in 0..10 {
            wal.append(WalPayload::TxnBegin { txn: i });
        }
        wal.force().unwrap();
        let s = dev.stats().snapshot();
        assert_eq!(s.wal_forces, 1, "ten records, one sequential append");
        assert!(s.wal_bytes > 0);
    }
}
