//! # PRIMA — a DBMS kernel prototype implementing the MAD model
//!
//! Reproduction of *Härder, Meyer-Wegener, Mitschang, Sikeler: "PRIMA — a
//! DBMS Prototype Supporting Engineering Applications", VLDB 1987.*
//!
//! PRIMA is a three-layer DBMS kernel (Fig. 3.1 of the paper):
//!
//! ```text
//!   application layer          (examples/ in this repository)
//!   ───────────────────────── MAD interface: molecule sets ───────
//!   data system                crate prima       [`datasys`]
//!   ───────────────────────── atoms ──────────────────────────────
//!   access system              crate prima-access
//!   ───────────────────────── physical records / pages ───────────
//!   storage system             crate prima-storage
//!   ───────────────────────── blocks ─────────────────────────────
//!   (simulated) external devices
//! ```
//!
//! The entry point is [`Prima`]: open an in-memory kernel, load a schema
//! with MAD-DDL, tune it with LDL, and run MQL:
//!
//! ```
//! use prima::Prima;
//!
//! let db = Prima::builder().build_with_ddl("
//!     CREATE ATOM_TYPE solid (
//!         solid_id : IDENTIFIER,
//!         solid_no : INTEGER,
//!         sub      : SET_OF (REF_TO (solid.super)),
//!         super    : SET_OF (REF_TO (solid.sub)) )
//!     KEYS_ARE (solid_no);
//! ").unwrap();
//! db.execute("INSERT solid (solid_no: 4711)").unwrap();
//! let result = db.query("SELECT ALL FROM solid WHERE solid_no = 4711").unwrap();
//! assert_eq!(result.molecules.len(), 1);
//! ```
//!
//! Beyond the query path, the crate provides the PRIMA processing model:
//! nested transactions ([`txn`], refining \[Mo81\] as announced in Section
//! 4) and *semantic parallelism* — decomposition of single user
//! operations into concurrently executable units of work ([`parallel`]).

pub mod db;
pub mod datasys;
pub mod error;
pub mod ldl_exec;
pub mod parallel;
pub mod txn;

pub use db::{Prima, PrimaBuilder};
pub use datasys::molecule::{MolAtom, Molecule, MoleculeSet};
pub use datasys::AssemblyMode;
pub use error::{PrimaError, PrimaResult};
pub use prima_access::{AccessSystem, Atom, UpdatePolicy};
pub use prima_mad::{AtomId, AtomTypeId, Schema, Value};
