//! Cross-crate scan behaviour at the access-system interface: the five
//! scans of Section 3.2 driven through a populated kernel, including
//! position keeping under NEXT/PRIOR and multi-dimensional selection
//! paths.

use prima::Value;
use prima_access::multidim::DimRange;
use prima_access::scan::{
    AccessPathScan, AtomClusterScan, AtomClusterTypeScan, AtomTypeScan, MultidimScan, Scan,
    SortScan,
};
use prima_access::{CmpOp, Ssa};
use prima_workloads::map::{self, MapConfig};
use std::ops::Bound;

fn db() -> prima::Prima {
    let db = map::open_db(32 << 20).unwrap();
    map::populate(&db, &MapConfig { sheets: 1, grid: 6, seed: 21 }).unwrap();
    db
}

#[test]
fn atom_type_scan_with_ssa_and_position() {
    let db = db();
    let t = db.schema().type_id("region").unwrap();
    let ssa = Ssa::Cmp { attr: 2, op: CmpOp::Eq, value: Value::Str("water".into()) };
    let mut scan = AtomTypeScan::open(db.access(), t, ssa, None).unwrap();
    let first = scan.next().unwrap().unwrap();
    let second = scan.next().unwrap().unwrap();
    assert_ne!(first.id, second.id);
    assert_eq!(scan.prior().unwrap().unwrap().id, first.id);
    let again = scan.next().unwrap().unwrap();
    assert_eq!(again.id, second.id);
    let rest = scan.collect_remaining().unwrap();
    // 36 regions; land_use cycles by (i+j) % 4 -> 10 water cells in a 6x6
    // grid; 2 already consumed.
    assert_eq!(rest.len() + 2, 10);
}

#[test]
fn sort_scan_strategies_agree() {
    let db = db();
    let t = db.schema().type_id("node").unwrap();
    let at = db.schema().atom_type(t).unwrap();
    let x = at.attribute_index("x").unwrap();
    let collect = |db: &prima::Prima| -> Vec<i64> {
        let mut s = SortScan::open(
            db.access(),
            t,
            &[x],
            Ssa::True,
            Bound::Unbounded,
            Bound::Unbounded,
        )
        .unwrap();
        s.collect_remaining()
            .unwrap()
            .iter()
            .map(|a| a.values[1].as_int().unwrap())
            .collect()
    };
    let explicit = collect(&db);
    db.ldl("CREATE ACCESS PATH apx ON node (x)").unwrap();
    let via_path = collect(&db);
    db.ldl("CREATE SORT ORDER sox ON node (x)").unwrap();
    let via_order = collect(&db);
    assert_eq!(explicit, via_path, "access path delivers the same order");
    assert_eq!(explicit, via_order, "sort order delivers the same order");
}

#[test]
fn access_path_scan_start_stop_directions() {
    let db = db();
    db.ldl("CREATE ACCESS PATH ap_no ON border (border_no)").unwrap();
    let ix = db.access().btree_index("ap_no").unwrap();
    let mut fwd = AccessPathScan::open(
        db.access(),
        &ix,
        Ssa::True,
        Bound::Included(vec![Value::Int(10)]),
        Bound::Included(vec![Value::Int(20)]),
        false,
    )
    .unwrap();
    let nos: Vec<i64> = fwd
        .collect_remaining()
        .unwrap()
        .iter()
        .map(|a| a.values[1].as_int().unwrap())
        .collect();
    assert_eq!(nos, (10..=20).collect::<Vec<_>>());
    let mut bwd = AccessPathScan::open(
        db.access(),
        &ix,
        Ssa::True,
        Bound::Included(vec![Value::Int(10)]),
        Bound::Included(vec![Value::Int(20)]),
        true,
    )
    .unwrap();
    let rev: Vec<i64> = bwd
        .collect_remaining()
        .unwrap()
        .iter()
        .map(|a| a.values[1].as_int().unwrap())
        .collect();
    assert_eq!(rev, (10..=20).rev().collect::<Vec<_>>());
}

#[test]
fn multidim_scan_selection_path() {
    let db = db();
    db.ldl("CREATE MULTIDIM ACCESS PATH g_xy ON node (x, y)").unwrap();
    let gx = db.access().grid_index("g_xy").unwrap();
    let key = |v: f64| {
        let mut k = Vec::new();
        prima_mad::codec::encode_key(&Value::Real(v), &mut k);
        k
    };
    // x below 25 (jitter can push column 0 slightly negative), y
    // unrestricted descending.
    let ranges = vec![
        DimRange { start: Bound::Included(key(-1.0)), stop: Bound::Excluded(key(25.0)), descending: false },
        DimRange::all().descending(),
    ];
    let mut scan = MultidimScan::open(db.access(), &gx, Ssa::True, &ranges).unwrap();
    let atoms = scan.collect_remaining().unwrap();
    // Nodes at grid x ∈ {0,10,20} (±0.4 jitter): 3 columns × 7 rows.
    assert_eq!(atoms.len(), 21);
    let t = db.schema().type_id("node").unwrap();
    let at = db.schema().atom_type(t).unwrap();
    let xi = at.attribute_index("x").unwrap();
    for a in &atoms {
        let x = a.values[xi].as_real().unwrap();
        assert!((-1.0..25.0).contains(&x));
    }
}

#[test]
fn cluster_scans_cover_vertical_access() {
    let db = db();
    db.ldl("CREATE ATOM_CLUSTER cl_sheet ON sheet (regions) PAGESIZE 1K").unwrap();
    let ct = db.access().cluster_type("cl_sheet").unwrap();
    // Atom-cluster-type scan: characteristic atoms in system order.
    let mut scan = AtomClusterTypeScan::open(db.access(), ct.clone(), Ssa::True).unwrap();
    let mut chars = 0;
    let mut members_total = 0;
    while let Some(_ch) = scan.next().unwrap() {
        chars += 1;
        members_total += scan.current_cluster_atoms().unwrap().len();
    }
    assert_eq!(chars, 1);
    assert_eq!(members_total, 36, "all regions of the sheet");
    // Atom-cluster scan: one type within one cluster with an SSA.
    let ch = ct.characteristic_atoms()[0];
    let region_t = db.schema().type_id("region").unwrap();
    let ssa = Ssa::Cmp { attr: 2, op: CmpOp::Eq, value: Value::Str("urban".into()) };
    let mut cscan = AtomClusterScan::open(&ct, ch, region_t, ssa).unwrap();
    let urban = cscan.collect_remaining().unwrap();
    assert_eq!(urban.len(), 9);
}

#[test]
fn scans_see_projections() {
    let db = db();
    let t = db.schema().type_id("region").unwrap();
    let mut scan = AtomTypeScan::open(db.access(), t, Ssa::True, Some(vec![0, 1])).unwrap();
    let a = scan.next().unwrap().unwrap();
    assert!(matches!(a.values[1], Value::Int(_)), "region_no selected");
    assert!(matches!(a.values[2], Value::Null), "land_use projected away");
}
