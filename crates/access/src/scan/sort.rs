//! The sort scan.
//!
//! "Unlike the atom-type scan, the sort scan serves to read all atoms of
//! one atom type in a 'user'-defined order according to a specified sort
//! criterion. In this case, the result set can be restricted by a simple
//! search argument as well as a start/stop condition. […] the sort scan
//! may be supported by a redundant storage structure, the sort order. […]
//! But the sort scan also works without such a sort order. It may engage
//! an access path if available, or has to perform the sort explicitly
//! creating a (temporary) sort order." (Section 3.2.)
//!
//! [`SortScan::open`] implements exactly that three-way strategy choice
//! and reports it via [`SortScan::source`], which experiment `E-SORT`
//! compares.

use super::Scan;
use crate::access_system::AccessSystem;
use crate::atom::Atom;
use crate::error::AccessResult;
use crate::record_file::RecordPtr;
use crate::ssa::Ssa;
use prima_mad::codec::encode_composite_key;
use prima_mad::value::{AtomId, AtomTypeId, Value};
use std::ops::Bound;

/// How the sort scan is being served.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SortSource {
    /// A redundant sort order materialises the atoms in key order.
    SortOrder,
    /// A B*-tree access path provides the key order; atoms are fetched by
    /// logical address.
    AccessPath,
    /// No supporting structure: explicit (temporary) sort of the
    /// qualifying atoms.
    Explicit,
}

enum Row {
    /// Key order entry backed by a sort-order copy.
    Copy { id: AtomId, ptr: RecordPtr, structure: u32 },
    /// Key order entry to be fetched via logical address.
    ById(AtomId),
    /// Atom already materialised (explicit sort).
    Ready(Box<Atom>),
}

/// Cursor over one atom type in key order.
pub struct SortScan<'a> {
    sys: &'a AccessSystem,
    source: SortSource,
    ssa: Ssa,
    rows: Vec<Row>,
    /// Last returned position; -1 = before first.
    pos: isize,
}

impl<'a> SortScan<'a> {
    /// Opens a sort scan over `key_attrs` of `atom_type` with optional
    /// start/stop conditions on the (composite) key values.
    pub fn open(
        sys: &'a AccessSystem,
        atom_type: AtomTypeId,
        key_attrs: &[usize],
        ssa: Ssa,
        start: Bound<Vec<Value>>,
        stop: Bound<Vec<Value>>,
    ) -> AccessResult<Self> {
        let enc = |b: &Bound<Vec<Value>>| match b {
            Bound::Unbounded => Bound::Unbounded,
            Bound::Included(vs) => Bound::Included(encode_composite_key(vs)),
            Bound::Excluded(vs) => Bound::Excluded(encode_composite_key(vs)),
        };
        let start_k = enc(&start);
        let stop_k = enc(&stop);

        // Strategy 1: a sort order over exactly these key attributes.
        if let Some(so) =
            sys.sort_orders_of(atom_type).into_iter().find(|so| so.key_attrs == key_attrs)
        {
            let mut rows = Vec::new();
            so.scan_keys(start_k.clone(), stop_k.clone(), false, |_, id, ptr| {
                rows.push(Row::Copy { id, ptr, structure: so.id });
                true
            })?;
            return Ok(SortScan { sys, source: SortSource::SortOrder, ssa, rows, pos: -1 });
        }

        // Strategy 2: a B*-tree access path whose key prefix matches.
        if let Some(ix) = sys
            .btrees_of(atom_type)
            .into_iter()
            .find(|ix| ix.key_attrs.len() >= key_attrs.len() && ix.key_attrs[..key_attrs.len()] == *key_attrs)
        {
            let exact = ix.key_attrs.len() == key_attrs.len();
            let mut rows = Vec::new();
            // With a longer index key, bounds on the prefix still hold
            // (memcomparable prefix property), except an Included upper
            // bound must be widened; simplest correct handling: scan
            // unbounded above and stop via key check when exact, or
            // filter after fetch when prefix-only.
            let (lo, hi) = if exact {
                (start_k.clone(), stop_k.clone())
            } else {
                (
                    match &start_k {
                        Bound::Unbounded => Bound::Unbounded,
                        Bound::Included(k) | Bound::Excluded(k) => Bound::Included(k.clone()),
                    },
                    Bound::Unbounded,
                )
            };
            fn as_ref(b: &Bound<Vec<u8>>) -> Bound<&[u8]> {
                match b {
                    Bound::Unbounded => Bound::Unbounded,
                    Bound::Included(k) => Bound::Included(k.as_slice()),
                    Bound::Excluded(k) => Bound::Excluded(k.as_slice()),
                }
            }
            ix.tree.scan_range(as_ref(&lo), as_ref(&hi), false, |_, ids| {
                for id in ids {
                    rows.push(Row::ById(*id));
                }
                true
            })?;
            if !exact {
                // Re-filter on the actual key bounds after fetch.
                let mut filtered = Vec::new();
                for row in rows {
                    let Row::ById(id) = row else { unreachable!() };
                    let atom = sys.read_atom(id, None)?;
                    let kv: Vec<Value> = key_attrs
                        .iter()
                        .map(|&i| atom.values.get(i).cloned().unwrap_or(Value::Null))
                        .collect();
                    let k = encode_composite_key(&kv);
                    if bound_contains(&start_k, &stop_k, &k) {
                        filtered.push(Row::Ready(Box::new(atom)));
                    }
                }
                // The index prefix order equals the key order, so rows are
                // already sorted.
                return Ok(SortScan {
                    sys,
                    source: SortSource::AccessPath,
                    ssa,
                    rows: filtered,
                    pos: -1,
                });
            }
            return Ok(SortScan { sys, source: SortSource::AccessPath, ssa, rows, pos: -1 });
        }

        // Strategy 3: explicit temporary sort.
        let mut atoms: Vec<(Vec<u8>, Atom)> = Vec::new();
        let ids = sys.all_ids(atom_type)?;
        for id in ids {
            let atom = sys.read_atom(id, None)?;
            let kv: Vec<Value> = key_attrs
                .iter()
                .map(|&i| atom.values.get(i).cloned().unwrap_or(Value::Null))
                .collect();
            let k = encode_composite_key(&kv);
            if bound_contains(&start_k, &stop_k, &k) {
                atoms.push((k, atom));
            }
        }
        atoms.sort_by(|a, b| a.0.cmp(&b.0));
        let rows = atoms.into_iter().map(|(_, a)| Row::Ready(Box::new(a))).collect();
        Ok(SortScan { sys, source: SortSource::Explicit, ssa, rows, pos: -1 })
    }

    /// Which strategy serves this scan.
    pub fn source(&self) -> SortSource {
        self.source
    }

    #[allow(clippy::unwrap_used, clippy::expect_used)]
    fn fetch(&self, row: &Row) -> AccessResult<Atom> {
        match row {
            Row::Ready(a) => Ok((**a).clone()),
            Row::ById(id) => self.sys.read_atom(*id, None),
            Row::Copy { id, ptr, structure } => {
                // Deferred update: a stale copy must be bypassed in favour
                // of the primary record.
                let stale = self
                    .sys
                    .deferred_stale(*id, *structure);
                if stale {
                    self.sys.read_atom(*id, None)
                } else {
                    let so = self
                        .sys
                        .sort_order_by_id(*structure)
                        // lint: allow(error-hygiene, the scan holds the structure read lock so the sort order cannot be dropped mid-scan)
                        .expect("sort order still registered");
                    so.read_copy(*ptr)
                }
            }
        }
    }
}

fn bound_contains(start: &Bound<Vec<u8>>, stop: &Bound<Vec<u8>>, k: &[u8]) -> bool {
    let lo = match start {
        Bound::Unbounded => true,
        Bound::Included(s) => k >= s.as_slice(),
        Bound::Excluded(s) => k > s.as_slice(),
    };
    let hi = match stop {
        Bound::Unbounded => true,
        Bound::Included(e) => k <= e.as_slice(),
        Bound::Excluded(e) => k < e.as_slice(),
    };
    lo && hi
}

impl Scan for SortScan<'_> {
    fn next(&mut self) -> AccessResult<Option<Atom>> {
        loop {
            let next = (self.pos + 1) as usize;
            if next >= self.rows.len() {
                return Ok(None);
            }
            self.pos += 1;
            let atom = self.fetch(&self.rows[next])?;
            if self.ssa.eval(&atom) {
                return Ok(Some(atom));
            }
        }
    }

    fn prior(&mut self) -> AccessResult<Option<Atom>> {
        loop {
            if self.pos < 0 {
                return Ok(None);
            }
            // When past the end, step onto the last row; otherwise step
            // back one.
            let cur = if self.pos as usize >= self.rows.len() {
                self.rows.len() - 1
            } else if self.pos == 0 {
                self.pos = -1;
                return Ok(None);
            } else {
                (self.pos - 1) as usize
            };
            self.pos = cur as isize;
            let atom = self.fetch(&self.rows[cur])?;
            if self.ssa.eval(&atom) {
                return Ok(Some(atom));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ssa::CmpOp;
    use prima_mad::schema::{AtomType, Attribute, AttrType, Schema};
    use prima_storage::StorageSystem;
    use std::sync::Arc;

    fn system(n: i64) -> AccessSystem {
        let mut schema = Schema::new();
        schema
            .add_atom_type(AtomType::build(
                "item",
                vec![
                    Attribute::new("id", AttrType::Identifier),
                    Attribute::new("n", AttrType::Integer),
                    Attribute::new("name", AttrType::CharVar),
                ],
                vec![],
            ))
            .unwrap();
        let storage = Arc::new(StorageSystem::in_memory(16 << 20));
        let sys = AccessSystem::new(storage, schema).unwrap();
        // Insert in reverse order so physical order != key order.
        for i in (0..n).rev() {
            sys.insert_atom(0, vec![Value::Null, Value::Int(i), Value::Str(format!("i{i}"))])
                .unwrap();
        }
        sys
    }

    fn collect_ns(scan: &mut SortScan<'_>) -> Vec<i64> {
        scan.collect_remaining()
            .unwrap()
            .iter()
            .map(|a| a.values[1].as_int().unwrap())
            .collect()
    }

    #[test]
    fn explicit_sort_when_no_structure() {
        let sys = system(50);
        let mut scan =
            SortScan::open(&sys, 0, &[1], Ssa::True, Bound::Unbounded, Bound::Unbounded).unwrap();
        assert_eq!(scan.source(), SortSource::Explicit);
        assert_eq!(collect_ns(&mut scan), (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn sort_order_is_preferred() {
        let sys = system(50);
        sys.create_sort_order("by_n", 0, vec![1]).unwrap();
        let mut scan =
            SortScan::open(&sys, 0, &[1], Ssa::True, Bound::Unbounded, Bound::Unbounded).unwrap();
        assert_eq!(scan.source(), SortSource::SortOrder);
        assert_eq!(collect_ns(&mut scan), (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn access_path_used_when_no_sort_order() {
        let sys = system(50);
        sys.create_btree_index("ix_n", 0, vec![1]).unwrap();
        let mut scan =
            SortScan::open(&sys, 0, &[1], Ssa::True, Bound::Unbounded, Bound::Unbounded).unwrap();
        assert_eq!(scan.source(), SortSource::AccessPath);
        assert_eq!(collect_ns(&mut scan), (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn start_stop_conditions_apply() {
        let sys = system(100);
        sys.create_sort_order("by_n", 0, vec![1]).unwrap();
        let mut scan = SortScan::open(
            &sys,
            0,
            &[1],
            Ssa::True,
            Bound::Included(vec![Value::Int(20)]),
            Bound::Excluded(vec![Value::Int(30)]),
        )
        .unwrap();
        assert_eq!(collect_ns(&mut scan), (20..30).collect::<Vec<_>>());
    }

    #[test]
    fn ssa_composes_with_key_range() {
        let sys = system(100);
        let ssa = Ssa::Cmp { attr: 1, op: CmpOp::Ne, value: Value::Int(25) };
        let mut scan = SortScan::open(
            &sys,
            0,
            &[1],
            ssa,
            Bound::Included(vec![Value::Int(20)]),
            Bound::Included(vec![Value::Int(29)]),
        )
        .unwrap();
        let ns = collect_ns(&mut scan);
        assert_eq!(ns.len(), 9);
        assert!(!ns.contains(&25));
    }

    #[test]
    fn prior_walks_back() {
        let sys = system(10);
        sys.create_sort_order("by_n", 0, vec![1]).unwrap();
        let mut scan =
            SortScan::open(&sys, 0, &[1], Ssa::True, Bound::Unbounded, Bound::Unbounded).unwrap();
        let a = scan.next().unwrap().unwrap();
        let b = scan.next().unwrap().unwrap();
        assert!(a.values[1].as_int() < b.values[1].as_int());
        let back = scan.prior().unwrap().unwrap();
        assert_eq!(back.id, a.id);
    }

    #[test]
    fn stale_copies_fall_back_to_primary() {
        let sys = system(10);
        sys.create_sort_order("by_n", 0, vec![1]).unwrap();
        sys.set_update_policy(crate::access_system::UpdatePolicy::Deferred);
        // Modify a non-key attribute: the copy goes stale but stays in
        // place.
        let victim = sys.all_ids(0).unwrap()[0];
        sys.modify_atom_named(victim, &[("name", Value::Str("fresh".into()))]).unwrap();
        let mut scan =
            SortScan::open(&sys, 0, &[1], Ssa::True, Bound::Unbounded, Bound::Unbounded).unwrap();
        let all = scan.collect_remaining().unwrap();
        let updated = all.iter().find(|a| a.id == victim).unwrap();
        assert_eq!(
            updated.values[2],
            Value::Str("fresh".into()),
            "stale sort-order copy must be bypassed"
        );
    }
}
