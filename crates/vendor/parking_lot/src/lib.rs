//! Minimal API-compatible stand-in for the `parking_lot` crate, backed by
//! `std::sync`. The build environment has no crates.io access, so the
//! workspace vendors the narrow surface the kernel uses:
//!
//! * [`Mutex`] / [`RwLock`] with panic-free (`lock()`/`read()`/`write()`)
//!   guards — poisoning is swallowed, matching parking_lot semantics;
//! * owning (`'static`) guards via [`RwLock::read_arc`]/[`RwLock::write_arc`],
//!   used by the buffer manager to hand out page guards detached from the
//!   pool borrow;
//! * [`Condvar`] with parking_lot's in-place `wait`/`wait_for` signatures
//!   (the guard is re-acquired into the same `&mut` binding), used by the
//!   lock manager to park waiters;
//! * the [`lock_api`] guard type names the kernel imports.
//!
//! Performance is whatever `std::sync` provides; semantics are what the
//! callers rely on.

use std::sync::Arc;

/// Raw lock marker type (type-level compatibility only).
pub struct RawRwLock {
    _private: (),
}

/// Raw mutex marker type (type-level compatibility only).
pub struct RawMutex {
    _private: (),
}

// ---------------------------------------------------------------------------
// Mutex
// ---------------------------------------------------------------------------

pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    pub const fn new(t: T) -> Self {
        Mutex { inner: std::sync::Mutex::new(t) }
    }

    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(t) => t,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the mutex, ignoring poison (parking_lot has no poisoning).
    pub fn lock(&self) -> MutexGuard<'_, T> {
        match self.inner.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(t) => t,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: ?Sized + std::fmt::Debug> std::fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.try_lock() {
            Some(g) => f.debug_struct("Mutex").field("data", &&*g).finish(),
            None => f.debug_struct("Mutex").field("data", &"<locked>").finish(),
        }
    }
}

// ---------------------------------------------------------------------------
// Condvar
// ---------------------------------------------------------------------------

/// Result of a timed wait, mirroring `parking_lot::WaitTimeoutResult`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WaitTimeoutResult {
    timed_out: bool,
}

impl WaitTimeoutResult {
    pub fn timed_out(&self) -> bool {
        self.timed_out
    }
}

/// Condition variable with parking_lot's guard-in-place API: `wait*` take
/// `&mut MutexGuard` and re-acquire into the same binding instead of
/// consuming/returning the guard as `std` does.
///
/// As with `std::sync::Condvar`, every guard passed to one `Condvar` must
/// come from the same `Mutex`.
#[derive(Debug, Default)]
pub struct Condvar {
    inner: std::sync::Condvar,
}

impl Condvar {
    pub const fn new() -> Self {
        Condvar { inner: std::sync::Condvar::new() }
    }

    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    pub fn notify_all(&self) {
        self.inner.notify_all();
    }

    /// Blocks until notified, releasing the mutex while parked.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        self.replace_guard(guard, |g| match self.inner.wait(g) {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        });
    }

    /// Blocks until notified or `timeout` elapses.
    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: std::time::Duration,
    ) -> WaitTimeoutResult {
        let mut timed_out = false;
        self.replace_guard(guard, |g| {
            let (g, res) = match self.inner.wait_timeout(g, timeout) {
                Ok(pair) => pair,
                Err(p) => p.into_inner(),
            };
            timed_out = res.timed_out();
            g
        });
        WaitTimeoutResult { timed_out }
    }

    /// Moves the guard out of `*slot`, runs `f` (which consumes it and
    /// returns the re-acquired guard), and moves the result back in.
    fn replace_guard<'a, T>(
        &self,
        slot: &mut MutexGuard<'a, T>,
        f: impl FnOnce(MutexGuard<'a, T>) -> MutexGuard<'a, T>,
    ) {
        // SAFETY: `ptr::read` duplicates the guard; `f` consumes that
        // duplicate (std's wait drops it while parked and hands back a
        // fresh one), and `ptr::write` installs the replacement without
        // dropping the moved-out original. `f` must not panic between the
        // read and the write — std's wait only panics when the guard
        // belongs to a different mutex, which this shim's callers never do.
        unsafe {
            let g = std::ptr::read(slot);
            let g = f(g);
            std::ptr::write(slot, g);
        }
    }
}

// ---------------------------------------------------------------------------
// RwLock
// ---------------------------------------------------------------------------

/// RwLock whose state lives behind an `Arc` so owning (`'static`) guards can
/// be produced without unsafe self-references in callers.
pub struct RwLock<T> {
    inner: Arc<std::sync::RwLock<T>>,
}

pub type RwLockReadGuard<'a, T> = std::sync::RwLockReadGuard<'a, T>;
pub type RwLockWriteGuard<'a, T> = std::sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    pub fn new(t: T) -> Self {
        RwLock { inner: Arc::new(std::sync::RwLock::new(t)) }
    }

    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        match self.inner.read() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        match self.inner.write() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }

    /// Shared guard that owns a reference to the lock (usable beyond the
    /// borrow of `self`, as parking_lot's `arc_lock` feature provides).
    pub fn read_arc(&self) -> lock_api::ArcRwLockReadGuard<RawRwLock, T>
    where
        T: 'static,
    {
        lock_api::ArcRwLockReadGuard::new(Arc::clone(&self.inner))
    }

    /// Exclusive owning guard; see [`RwLock::read_arc`].
    pub fn write_arc(&self) -> lock_api::ArcRwLockWriteGuard<RawRwLock, T>
    where
        T: 'static,
    {
        lock_api::ArcRwLockWriteGuard::new(Arc::clone(&self.inner))
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> Self {
        RwLock::new(T::default())
    }
}

impl<T: std::fmt::Debug> std::fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.inner.try_read() {
            Ok(g) => f.debug_struct("RwLock").field("data", &&*g).finish(),
            Err(_) => f.debug_struct("RwLock").field("data", &"<locked>").finish(),
        }
    }
}

pub mod lock_api {
    //! Owning guard types compatible with `lock_api`'s `Arc*Guard` names.

    use std::marker::PhantomData;
    use std::ops::{Deref, DerefMut};
    use std::sync::Arc;

    /// Shared guard owning its lock. The `'static` guard borrows data that
    /// lives on the `Arc` heap allocation it also owns; the guard field is
    /// declared before the Arc so it drops first.
    pub struct ArcRwLockReadGuard<R, T: 'static> {
        // SAFETY invariant: `guard` borrows from the RwLock inside `_lock`;
        // declaration order guarantees the guard is released before the Arc.
        guard: Option<std::sync::RwLockReadGuard<'static, T>>,
        _lock: Arc<std::sync::RwLock<T>>,
        _raw: PhantomData<R>,
    }

    impl<R, T: 'static> ArcRwLockReadGuard<R, T> {
        pub(crate) fn new(lock: Arc<std::sync::RwLock<T>>) -> Self {
            let g = match lock.read() {
                Ok(g) => g,
                Err(p) => p.into_inner(),
            };
            // SAFETY: the referent lives on the Arc's heap allocation, which
            // this struct keeps alive for at least as long as the guard; the
            // guard never leaves the struct.
            let g: std::sync::RwLockReadGuard<'static, T> =
                unsafe { std::mem::transmute(g) };
            ArcRwLockReadGuard { guard: Some(g), _lock: lock, _raw: PhantomData }
        }
    }

    impl<R, T: 'static> Deref for ArcRwLockReadGuard<R, T> {
        type Target = T;
        fn deref(&self) -> &T {
            self.guard.as_ref().expect("guard alive")
        }
    }

    impl<R, T: 'static> Drop for ArcRwLockReadGuard<R, T> {
        fn drop(&mut self) {
            self.guard.take();
        }
    }

    /// Exclusive guard owning its lock; see [`ArcRwLockReadGuard`].
    pub struct ArcRwLockWriteGuard<R, T: 'static> {
        guard: Option<std::sync::RwLockWriteGuard<'static, T>>,
        _lock: Arc<std::sync::RwLock<T>>,
        _raw: PhantomData<R>,
    }

    impl<R, T: 'static> ArcRwLockWriteGuard<R, T> {
        pub(crate) fn new(lock: Arc<std::sync::RwLock<T>>) -> Self {
            let g = match lock.write() {
                Ok(g) => g,
                Err(p) => p.into_inner(),
            };
            // SAFETY: as for ArcRwLockReadGuard.
            let g: std::sync::RwLockWriteGuard<'static, T> =
                unsafe { std::mem::transmute(g) };
            ArcRwLockWriteGuard { guard: Some(g), _lock: lock, _raw: PhantomData }
        }
    }

    impl<R, T: 'static> Deref for ArcRwLockWriteGuard<R, T> {
        type Target = T;
        fn deref(&self) -> &T {
            self.guard.as_ref().expect("guard alive")
        }
    }

    impl<R, T: 'static> DerefMut for ArcRwLockWriteGuard<R, T> {
        fn deref_mut(&mut self) -> &mut T {
            self.guard.as_mut().expect("guard alive")
        }
    }

    impl<R, T: 'static> Drop for ArcRwLockWriteGuard<R, T> {
        fn drop(&mut self) {
            self.guard.take();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_round_trip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
    }

    #[test]
    fn condvar_wait_for_times_out_and_wakes() {
        use std::time::Duration;

        let m = Mutex::new(false);
        let cv = Condvar::new();
        // Timeout path: nobody notifies.
        let mut g = m.lock();
        let res = cv.wait_for(&mut g, Duration::from_millis(5));
        assert!(res.timed_out());
        assert!(!*g);
        drop(g);

        // Wakeup path: a thread flips the flag and notifies.
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = Arc::clone(&pair);
        let h = std::thread::spawn(move || {
            let (m, cv) = &*p2;
            *m.lock() = true;
            cv.notify_all();
        });
        let (m, cv) = &*pair;
        let mut g = m.lock();
        while !*g {
            let res = cv.wait_for(&mut g, Duration::from_secs(5));
            assert!(!res.timed_out(), "missed wakeup");
        }
        h.join().unwrap();
    }

    #[test]
    fn rwlock_shared_and_exclusive() {
        let l = RwLock::new(vec![1, 2]);
        assert_eq!(l.read().len(), 2);
        l.write().push(3);
        assert_eq!(l.read().len(), 3);
    }

    #[test]
    fn arc_guards_outlive_borrow() {
        let l = Arc::new(RwLock::new(5));
        let g = {
            let borrowed = Arc::clone(&l);
            borrowed.read_arc()
        };
        assert_eq!(*g, 5);
        drop(g);
        *l.write_arc() = 6;
        assert_eq!(*l.read(), 6);
    }

    #[test]
    fn write_arc_releases_on_drop() {
        let l = RwLock::new(0u32);
        {
            let mut g = l.write_arc();
            *g = 9;
        }
        assert_eq!(*l.read(), 9);
    }
}
