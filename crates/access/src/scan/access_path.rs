//! Access-path scans: B*-tree and multi-dimensional.
//!
//! "A main usage of scans is on access paths where start and stop
//! conditions conveniently provide access to value ranges and where value
//! orders may be exploited for free (access-path scan). […] With n keys,
//! navigation has much more degrees of freedom. Therefore, start/stop
//! conditions and directions may be specified individually for every key
//! involved in the scan." (Section 3.2.)
//!
//! [`AccessPathScan`] drives a [`crate::access_system::BTreeIndex`];
//! [`MultidimScan`] drives a [`crate::access_system::GridIndex`] with one
//! [`DimRange`] per key.

use super::Scan;
use crate::access_system::{AccessSystem, BTreeIndex, GridIndex};
use crate::atom::Atom;
use crate::error::AccessResult;
use crate::multidim::DimRange;
use crate::ssa::Ssa;
use prima_mad::codec::encode_composite_key;
use prima_mad::value::{AtomId, Value};
use std::ops::Bound;
use std::sync::Arc;

/// Cursor over a B*-tree access path with start/stop conditions and a
/// direction.
pub struct AccessPathScan<'a> {
    sys: &'a AccessSystem,
    ssa: Ssa,
    ids: Vec<AtomId>,
    pos: isize,
}

impl<'a> AccessPathScan<'a> {
    /// Opens the scan. `start`/`stop` are bounds over the index's key
    /// attribute values; `descending` reverses delivery order.
    pub fn open(
        sys: &'a AccessSystem,
        index: &Arc<BTreeIndex>,
        ssa: Ssa,
        start: Bound<Vec<Value>>,
        stop: Bound<Vec<Value>>,
        descending: bool,
    ) -> AccessResult<Self> {
        let enc = |b: &Bound<Vec<Value>>| match b {
            Bound::Unbounded => Bound::Unbounded,
            Bound::Included(vs) => Bound::Included(encode_composite_key(vs)),
            Bound::Excluded(vs) => Bound::Excluded(encode_composite_key(vs)),
        };
        let lo = enc(&start);
        let hi = enc(&stop);
        fn as_ref(b: &Bound<Vec<u8>>) -> Bound<&[u8]> {
            match b {
                Bound::Unbounded => Bound::Unbounded,
                Bound::Included(k) => Bound::Included(k.as_slice()),
                Bound::Excluded(k) => Bound::Excluded(k.as_slice()),
            }
        }
        let mut ids = Vec::new();
        index.tree.scan_range(as_ref(&lo), as_ref(&hi), descending, |_, entry_ids| {
            ids.extend_from_slice(entry_ids);
            true
        })?;
        Ok(AccessPathScan { sys, ssa, ids, pos: -1 })
    }

    /// Number of index entries in range (before SSA filtering).
    pub fn candidate_count(&self) -> usize {
        self.ids.len()
    }
}

impl Scan for AccessPathScan<'_> {
    fn next(&mut self) -> AccessResult<Option<Atom>> {
        loop {
            let next = (self.pos + 1) as usize;
            if next >= self.ids.len() {
                return Ok(None);
            }
            self.pos += 1;
            let atom = self.sys.read_atom(self.ids[next], None)?;
            if self.ssa.eval(&atom) {
                return Ok(Some(atom));
            }
        }
    }

    fn prior(&mut self) -> AccessResult<Option<Atom>> {
        loop {
            if self.pos <= 0 {
                self.pos = -1;
                return Ok(None);
            }
            let cur = if self.pos as usize >= self.ids.len() {
                self.ids.len() - 1
            } else {
                (self.pos - 1) as usize
            };
            self.pos = cur as isize;
            let atom = self.sys.read_atom(self.ids[cur], None)?;
            if self.ssa.eval(&atom) {
                return Ok(Some(atom));
            }
        }
    }
}

/// Cursor over a grid-file access path: one range + direction per key.
pub struct MultidimScan<'a> {
    sys: &'a AccessSystem,
    ssa: Ssa,
    ids: Vec<AtomId>,
    pos: isize,
}

impl<'a> MultidimScan<'a> {
    /// Opens the scan with per-dimension conditions (the n-dimensional
    /// "selection path").
    pub fn open(
        sys: &'a AccessSystem,
        index: &Arc<GridIndex>,
        ssa: Ssa,
        ranges: &[DimRange],
    ) -> AccessResult<Self> {
        let entries = index.grid.read().search(ranges)?;
        let ids = entries.into_iter().map(|e| e.id).collect();
        Ok(MultidimScan { sys, ssa, ids, pos: -1 })
    }

    pub fn candidate_count(&self) -> usize {
        self.ids.len()
    }
}

impl Scan for MultidimScan<'_> {
    fn next(&mut self) -> AccessResult<Option<Atom>> {
        loop {
            let next = (self.pos + 1) as usize;
            if next >= self.ids.len() {
                return Ok(None);
            }
            self.pos += 1;
            let atom = self.sys.read_atom(self.ids[next], None)?;
            if self.ssa.eval(&atom) {
                return Ok(Some(atom));
            }
        }
    }

    fn prior(&mut self) -> AccessResult<Option<Atom>> {
        loop {
            if self.pos <= 0 {
                self.pos = -1;
                return Ok(None);
            }
            let cur = if self.pos as usize >= self.ids.len() {
                self.ids.len() - 1
            } else {
                (self.pos - 1) as usize
            };
            self.pos = cur as isize;
            let atom = self.sys.read_atom(self.ids[cur], None)?;
            if self.ssa.eval(&atom) {
                return Ok(Some(atom));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prima_mad::schema::{AtomType, Attribute, AttrType, Schema};
    use prima_storage::StorageSystem;
    use std::sync::Arc as StdArc;

    fn system(n: i64) -> AccessSystem {
        let mut schema = Schema::new();
        schema
            .add_atom_type(AtomType::build(
                "pt",
                vec![
                    Attribute::new("id", AttrType::Identifier),
                    Attribute::new("x", AttrType::Integer),
                    Attribute::new("y", AttrType::Integer),
                ],
                vec![],
            ))
            .unwrap();
        let storage = StdArc::new(StorageSystem::in_memory(16 << 20));
        let sys = AccessSystem::new(storage, schema).unwrap();
        for i in 0..n {
            sys.insert_atom(0, vec![Value::Null, Value::Int(i % 10), Value::Int(i / 10)])
                .unwrap();
        }
        sys
    }

    #[test]
    fn btree_scan_range_and_direction() {
        let sys = system(100);
        sys.create_btree_index("ix_x", 0, vec![1]).unwrap();
        let ix = sys.btree_index("ix_x").unwrap();
        let mut scan = AccessPathScan::open(
            &sys,
            &ix,
            Ssa::True,
            Bound::Included(vec![Value::Int(3)]),
            Bound::Included(vec![Value::Int(4)]),
            false,
        )
        .unwrap();
        let atoms = scan.collect_remaining().unwrap();
        assert_eq!(atoms.len(), 20, "x in {{3,4}}, 10 each");
        let xs: Vec<i64> = atoms.iter().map(|a| a.values[1].as_int().unwrap()).collect();
        assert!(xs.windows(2).all(|w| w[0] <= w[1]), "ascending order");

        let mut rev = AccessPathScan::open(
            &sys,
            &ix,
            Ssa::True,
            Bound::Included(vec![Value::Int(3)]),
            Bound::Included(vec![Value::Int(4)]),
            true,
        )
        .unwrap();
        let atoms = rev.collect_remaining().unwrap();
        let xs: Vec<i64> = atoms.iter().map(|a| a.values[1].as_int().unwrap()).collect();
        assert!(xs.windows(2).all(|w| w[0] >= w[1]), "descending order");
    }

    #[test]
    fn btree_scan_next_prior() {
        let sys = system(30);
        sys.create_btree_index("ix_x", 0, vec![1]).unwrap();
        let ix = sys.btree_index("ix_x").unwrap();
        let mut scan =
            AccessPathScan::open(&sys, &ix, Ssa::True, Bound::Unbounded, Bound::Unbounded, false)
                .unwrap();
        let a = scan.next().unwrap().unwrap();
        let b = scan.next().unwrap().unwrap();
        let back = scan.prior().unwrap().unwrap();
        assert_eq!(back.id, a.id);
        let fwd = scan.next().unwrap().unwrap();
        assert_eq!(fwd.id, b.id);
    }

    #[test]
    fn grid_scan_per_dimension_conditions() {
        let sys = system(100);
        sys.create_grid_index("g_xy", 0, vec![1, 2]).unwrap();
        let gx = sys.grid_index("g_xy").unwrap();
        let enc = |i: i64| {
            let mut k = Vec::new();
            prima_mad::codec::encode_key(&Value::Int(i), &mut k);
            k
        };
        let ranges = vec![
            DimRange {
                start: Bound::Included(enc(2)),
                stop: Bound::Included(enc(4)),
                descending: false,
            },
            DimRange::exact(enc(5)),
        ];
        let mut scan = MultidimScan::open(&sys, &gx, Ssa::True, &ranges).unwrap();
        let atoms = scan.collect_remaining().unwrap();
        assert_eq!(atoms.len(), 3, "x in 2..=4, y = 5");
        for a in &atoms {
            let x = a.values[1].as_int().unwrap();
            let y = a.values[2].as_int().unwrap();
            assert!((2..=4).contains(&x) && y == 5);
        }
    }

    #[test]
    fn ssa_filters_candidates() {
        let sys = system(100);
        sys.create_btree_index("ix_x", 0, vec![1]).unwrap();
        let ix = sys.btree_index("ix_x").unwrap();
        let ssa = Ssa::eq(2, Value::Int(0)); // y == 0
        let mut scan = AccessPathScan::open(
            &sys,
            &ix,
            ssa,
            Bound::Included(vec![Value::Int(5)]),
            Bound::Included(vec![Value::Int(5)]),
            false,
        )
        .unwrap();
        assert_eq!(scan.candidate_count(), 10);
        let atoms = scan.collect_remaining().unwrap();
        assert_eq!(atoms.len(), 1, "only y==0 among the ten x==5 atoms");
    }
}
