//! Semantic parallelism: decomposed units of work (DUs).
//!
//! "Engineering applications with their 'sizable' operations on complex
//! objects incorporate substantial portions of inherent parallelism
//! \[HHM86\] which may not be exploited when such operations are
//! synchronously invoked and serially executed. […] we have defined the
//! concept of semantic decomposition: units of work decomposed from a
//! single user operation are said to allow for inherent semantic
//! parallelism when they do not conflict with each other at the level of
//! decomposition. Such decomposed units of work (DU's) may be scheduled
//! and executed concurrently by the DBMS." (Section 4.)
//!
//! Two pieces live here:
//!
//! * a generic decomposition/scheduling facility: [`DecomposedUnit`]s
//!   declare read/write sets; [`conflict_free_batches`] partitions them
//!   into batches whose members can run concurrently, and
//!   [`run_batches`] executes the batches with a thread pool;
//! * the query-path specialisation [`execute_parallel`]: one DU per
//!   qualifying root atom (molecule construction is read-only, so every
//!   DU is compatible — the maximally parallel case the paper targets
//!   for vertical access).
//!
//! The multi-processor PRIMA of the paper maps onto threads here (see the
//! substitution table in DESIGN.md): the claim under test is about
//! decomposability and speed-up shape, not about a particular
//! interconnect.
//!
//! DU workers are isolation-agnostic: the [`ReadGuard`] they share is
//! `Copy`, so each worker carries the caller's guard across its thread —
//! a locking guard re-enters the lock table under the owning
//! transaction, a snapshot guard ([`ReadGuard::snapshot`]) resolves
//! version visibility with no locking at all, which keeps the maximally
//! parallel case genuinely wait-free.

use crate::datasys::exec::{find_roots, node_infos, process_root, AssemblyCtx};
use crate::datasys::molecule::MoleculeSet;
use crate::datasys::plan::{ExecutionTrace, ResolvedQuery};
use crate::error::PrimaResult;
use crate::txn::ReadGuard;
use prima_access::AccessSystem;
use prima_mad::value::AtomId;
use parking_lot::rank;
use std::collections::HashSet;

/// A unit of work with declared read and write sets (atom granularity —
/// matching the lock granularity of [`crate::txn`]).
pub struct DecomposedUnit<T> {
    pub reads: Vec<AtomId>,
    pub writes: Vec<AtomId>,
    pub task: T,
}

impl<T> DecomposedUnit<T> {
    /// A read-only DU.
    pub fn read_only(reads: Vec<AtomId>, task: T) -> Self {
        DecomposedUnit { reads, writes: Vec::new(), task }
    }

    /// Conflict test: write/write or read/write overlap.
    pub fn conflicts_with<U>(&self, other: &DecomposedUnit<U>) -> bool {
        let overlap = |a: &[AtomId], b: &[AtomId]| {
            if a.len() > 16 || b.len() > 16 {
                let set: HashSet<&AtomId> = a.iter().collect();
                b.iter().any(|x| set.contains(x))
            } else {
                a.iter().any(|x| b.contains(x))
            }
        };
        overlap(&self.writes, &other.writes)
            || overlap(&self.writes, &other.reads)
            || overlap(&self.reads, &other.writes)
    }
}

/// Partitions DUs into batches such that the members of each batch are
/// mutually conflict-free ("they do not conflict with each other at the
/// level of decomposition"). Greedy first-fit; order within the input is
/// preserved across batches.
pub fn conflict_free_batches<T>(units: Vec<DecomposedUnit<T>>) -> Vec<Vec<DecomposedUnit<T>>> {
    let mut batches: Vec<Vec<DecomposedUnit<T>>> = Vec::new();
    for u in units {
        match batches
            .iter_mut()
            .find(|b| b.iter().all(|m| !m.conflicts_with(&u)))
        {
            Some(b) => b.push(u),
            None => batches.push(vec![u]),
        }
    }
    batches
}

/// Executes every batch in order; within a batch, DU tasks run
/// concurrently on up to `threads` workers. Results are returned in the
/// original DU order within each batch, flattened.
pub fn run_batches<T, R>(
    batches: Vec<Vec<DecomposedUnit<T>>>,
    threads: usize,
    f: impl Fn(T) -> PrimaResult<R> + Sync,
) -> PrimaResult<Vec<R>>
where
    T: Send,
    R: Send,
{
    let mut out = Vec::new();
    for batch in batches {
        let results = run_parallel(
            batch.into_iter().map(|u| u.task).collect(),
            threads,
            &f,
        )?;
        out.extend(results);
    }
    Ok(out)
}

/// Runs `tasks` on up to `threads` scoped workers, preserving input
/// order in the result.
pub fn run_parallel<T, R>(
    tasks: Vec<T>,
    threads: usize,
    f: impl Fn(T) -> PrimaResult<R> + Sync,
) -> PrimaResult<Vec<R>>
where
    T: Send,
    R: Send,
{
    let threads = threads.max(1);
    if threads == 1 || tasks.len() <= 1 {
        return tasks.into_iter().map(f).collect();
    }
    // lockrank: obs.1 — work queue; popped transiently, never held while
    // a task runs.
    let queue: parking_lot::Mutex<Vec<(usize, T)>> =
        parking_lot::Mutex::new_ranked(tasks.into_iter().enumerate().rev().collect(), rank::OBS + 1);
    // lockrank: obs.2 — result collection; pushed transiently after the
    // task completes.
    let results: parking_lot::Mutex<Vec<(usize, PrimaResult<R>)>> =
        parking_lot::Mutex::new_ranked(Vec::new(), rank::OBS + 2);
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                let next = queue.lock().pop();
                match next {
                    Some((i, task)) => {
                        let r = f(task);
                        results.lock().push((i, r));
                    }
                    None => break,
                }
            });
        }
    });
    let mut collected = results.into_inner();
    collected.sort_by_key(|(i, _)| *i);
    collected.into_iter().map(|(_, r)| r).collect()
}

/// Parallel molecule-set construction: one read-only DU per qualifying
/// root atom, scheduled over `threads` workers. All DUs share the
/// caller's transaction: the [`ReadGuard`] charges every worker's shared
/// locks to the same owner, so lock coverage is identical to serial
/// execution (the lock table is thread-safe and `Shared` self-compatible).
pub fn execute_parallel(
    sys: &AccessSystem,
    q: &ResolvedQuery,
    threads: usize,
    locks: Option<ReadGuard<'_>>,
) -> PrimaResult<(MoleculeSet, ExecutionTrace)> {
    let mut trace = ExecutionTrace::default();
    let roots = find_roots(sys, q, &mut trace, locks)?;
    trace.roots_inspected = roots.len();
    let clusters = sys.cluster_types_of(q.nodes[0].atom_type);
    // Assembly scratch is recycled across DUs through a small pool, so the
    // parallel path amortises per-molecule allocations like the serial one.
    // lockrank: obs.3 — assembly-scratch recycling pool; popped/pushed
    // transiently around each DU.
    let ctx_pool: parking_lot::Mutex<Vec<AssemblyCtx>> =
        parking_lot::Mutex::new_ranked(Vec::new(), rank::OBS + 3);
    let results = run_parallel(roots, threads, |root| {
        let mut ctx = ctx_pool.lock().pop().unwrap_or_else(|| AssemblyCtx::new(q));
        let r = process_root(sys, q, root, &clusters, &mut ctx, locks);
        ctx_pool.lock().push(ctx);
        r
    })?;
    let molecules: Vec<_> = results.into_iter().flatten().collect();
    trace.molecules = molecules.len();
    Ok((MoleculeSet { nodes: node_infos(q), molecules }, trace))
}

/// Convenience used by update-style operations: run DUs transactionally —
/// each DU in its own subtransaction, retrying once serially on lock
/// conflicts (conflicting DUs should not share a batch, so retries are
/// rare).
pub fn run_units_transactional<T, R>(
    units: Vec<DecomposedUnit<T>>,
    threads: usize,
    f: impl Fn(T) -> PrimaResult<R> + Sync,
) -> PrimaResult<Vec<R>>
where
    T: Send,
    R: Send,
{
    let batches = conflict_free_batches(units);
    run_batches(batches, threads, f)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error::PrimaError;

    fn id(n: u64) -> AtomId {
        AtomId::new(0, n)
    }

    #[test]
    fn conflict_detection() {
        let a = DecomposedUnit { reads: vec![id(1)], writes: vec![id(2)], task: () };
        let b = DecomposedUnit { reads: vec![id(2)], writes: vec![], task: () };
        let c = DecomposedUnit { reads: vec![id(1)], writes: vec![], task: () };
        assert!(a.conflicts_with(&b), "read/write overlap");
        assert!(!b.conflicts_with(&c), "read/read is no conflict");
        assert!(a.conflicts_with(&a), "write/write overlap");
    }

    #[test]
    fn batching_separates_conflicts() {
        let units = vec![
            DecomposedUnit { reads: vec![], writes: vec![id(1)], task: 1 },
            DecomposedUnit { reads: vec![], writes: vec![id(2)], task: 2 },
            DecomposedUnit { reads: vec![id(1)], writes: vec![], task: 3 },
        ];
        let batches = conflict_free_batches(units);
        assert_eq!(batches.len(), 2);
        assert_eq!(batches[0].len(), 2, "units 1 and 2 are compatible");
        assert_eq!(batches[1][0].task, 3);
    }

    #[test]
    fn read_only_units_form_one_batch() {
        let units: Vec<DecomposedUnit<usize>> =
            (0..20).map(|i| DecomposedUnit::read_only(vec![id(i)], i as usize)).collect();
        let batches = conflict_free_batches(units);
        assert_eq!(batches.len(), 1);
        assert_eq!(batches[0].len(), 20);
    }

    #[test]
    fn run_parallel_preserves_order() {
        let tasks: Vec<u64> = (0..100).collect();
        let out = run_parallel(tasks, 8, |x| Ok(x * 2)).unwrap();
        assert_eq!(out, (0..100).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn run_parallel_single_thread_fallback() {
        let out = run_parallel(vec![1, 2, 3], 1, |x| Ok(x + 1)).unwrap();
        assert_eq!(out, vec![2, 3, 4]);
    }

    #[test]
    fn run_parallel_propagates_errors() {
        let r: PrimaResult<Vec<u32>> = run_parallel(vec![1u32, 2, 3], 4, |x| {
            if x == 2 {
                Err(PrimaError::BadStatement("boom".into()))
            } else {
                Ok(x)
            }
        });
        assert!(r.is_err());
    }
}
