//! Logical addressing: the n:m mapping between atoms and physical records.
//!
//! "Depending on the storage structure, a physical record corresponds to
//! either a part of an atom (a partition), an entire atom (in a sort
//! order) or an atom cluster. This establishes an n:m relationship between
//! atoms and physical records, whereas the usual mapping of conceptual to
//! internal schema is built on a 1:1 relationship. A sophisticated
//! addressing structure is required to manage such n:m relationships
//! \[Si87\]." (Section 3.2.)
//!
//! [`AddressTable`] is that structure: for every atom it records the
//! *primary* record (in the atom type's base file) and every *redundant
//! placement* in a tuning structure, tagged with the owning structure and
//! a staleness bit used by deferred update: a stale copy must not be used
//! until reconciled.

use crate::record_file::RecordPtr;
use parking_lot::{rank, RwLock};
use prima_mad::value::AtomId;
use std::collections::HashMap;

/// Identifier of a tuning structure instance (partition, sort order,
/// cluster …), assigned by the access system.
pub type StructureId = u32;

/// One redundant placement of an atom.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Placement {
    pub structure: StructureId,
    pub ptr: RecordPtr,
    /// Set while a deferred update is pending on this copy.
    pub stale: bool,
}

/// All physical locations of one atom.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct AtomAddresses {
    /// Primary record in the atom type's base record file.
    pub primary: Option<RecordPtr>,
    /// Redundant copies in tuning structures.
    pub redundant: Vec<Placement>,
}

/// The addressing structure. Interior-mutable; shared by the access
/// system's components.
#[derive(Debug)]
pub struct AddressTable {
    // lockrank: buffer.1 — atom → location map. Transient holds only, but
    // callers update it from inside `RecordFile::for_each` page-guard
    // callbacks (frame → this), so it sits just above the buffer peer
    // group and below the WAL ranks.
    map: RwLock<HashMap<AtomId, AtomAddresses>>,
}

impl Default for AddressTable {
    fn default() -> Self {
        AddressTable { map: RwLock::new_ranked(HashMap::new(), rank::BUFFER + 1) }
    }
}

impl AddressTable {
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a freshly inserted atom's primary record.
    pub fn set_primary(&self, id: AtomId, ptr: RecordPtr) {
        self.map.write().entry(id).or_default().primary = Some(ptr);
    }

    /// Primary record pointer, if the atom exists.
    pub fn primary(&self, id: AtomId) -> Option<RecordPtr> {
        self.map.read().get(&id).and_then(|a| a.primary)
    }

    /// True if the atom is known.
    pub fn exists(&self, id: AtomId) -> bool {
        self.map.read().get(&id).is_some_and(|a| a.primary.is_some())
    }

    /// Adds (or replaces) the placement of `id` in `structure`.
    pub fn set_placement(&self, id: AtomId, structure: StructureId, ptr: RecordPtr) {
        let mut map = self.map.write();
        let entry = map.entry(id).or_default();
        if let Some(p) = entry.redundant.iter_mut().find(|p| p.structure == structure) {
            p.ptr = ptr;
            p.stale = false;
        } else {
            entry.redundant.push(Placement { structure, ptr, stale: false });
        }
    }

    /// Removes the placement of `id` in `structure`, returning it.
    pub fn remove_placement(&self, id: AtomId, structure: StructureId) -> Option<Placement> {
        let mut map = self.map.write();
        let entry = map.get_mut(&id)?;
        let idx = entry.redundant.iter().position(|p| p.structure == structure)?;
        Some(entry.redundant.remove(idx))
    }

    /// Marks the copy in `structure` stale (deferred update pending).
    /// Returns true if such a placement exists.
    pub fn mark_stale(&self, id: AtomId, structure: StructureId) -> bool {
        let mut map = self.map.write();
        if let Some(p) = map
            .get_mut(&id)
            .and_then(|e| e.redundant.iter_mut().find(|p| p.structure == structure))
        {
            p.stale = true;
            true
        } else {
            false
        }
    }

    /// The placement of `id` in `structure`, if any.
    pub fn placement(&self, id: AtomId, structure: StructureId) -> Option<Placement> {
        self.map
            .read()
            .get(&id)
            .and_then(|e| e.redundant.iter().find(|p| p.structure == structure).copied())
    }

    /// All placements of an atom (primary excluded).
    pub fn placements(&self, id: AtomId) -> Vec<Placement> {
        self.map.read().get(&id).map(|e| e.redundant.clone()).unwrap_or_default()
    }

    /// Number of *fresh* (non-stale) redundant copies — the candidates the
    /// paper says any read may pick from ("any physical record can be
    /// used. The one with minimum access cost should be selected").
    pub fn fresh_copies(&self, id: AtomId) -> usize {
        self.map
            .read()
            .get(&id)
            .map_or(0, |e| e.redundant.iter().filter(|p| !p.stale).count())
    }

    /// Drops the atom entirely (on delete), returning what was recorded.
    pub fn remove_atom(&self, id: AtomId) -> Option<AtomAddresses> {
        self.map.write().remove(&id)
    }

    /// Removes every placement belonging to `structure` (structure drop),
    /// returning the affected atoms.
    pub fn drop_structure(&self, structure: StructureId) -> Vec<AtomId> {
        let mut out = Vec::new();
        let mut map = self.map.write();
        for (id, e) in map.iter_mut() {
            let before = e.redundant.len();
            e.redundant.retain(|p| p.structure != structure);
            if e.redundant.len() != before {
                out.push(*id);
            }
        }
        out
    }

    /// Number of atoms registered.
    pub fn len(&self) -> usize {
        self.map.read().len()
    }

    pub fn is_empty(&self) -> bool {
        self.map.read().is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ptr(p: u32, s: u16) -> RecordPtr {
        RecordPtr { page: p, slot: s }
    }

    #[test]
    fn primary_lifecycle() {
        let t = AddressTable::new();
        let id = AtomId::new(1, 1);
        assert!(!t.exists(id));
        t.set_primary(id, ptr(0, 0));
        assert!(t.exists(id));
        assert_eq!(t.primary(id), Some(ptr(0, 0)));
        t.remove_atom(id);
        assert!(!t.exists(id));
    }

    #[test]
    fn n_to_m_placements() {
        let t = AddressTable::new();
        let id = AtomId::new(1, 1);
        t.set_primary(id, ptr(0, 0));
        t.set_placement(id, 10, ptr(5, 1));
        t.set_placement(id, 11, ptr(9, 2));
        assert_eq!(t.placements(id).len(), 2);
        assert_eq!(t.fresh_copies(id), 2);
        // Replacing a placement keeps one entry per structure.
        t.set_placement(id, 10, ptr(6, 0));
        assert_eq!(t.placements(id).len(), 2);
        assert_eq!(t.placement(id, 10).unwrap().ptr, ptr(6, 0));
    }

    #[test]
    fn staleness_tracking() {
        let t = AddressTable::new();
        let id = AtomId::new(1, 1);
        t.set_primary(id, ptr(0, 0));
        t.set_placement(id, 10, ptr(5, 1));
        assert!(t.mark_stale(id, 10));
        assert_eq!(t.fresh_copies(id), 0);
        assert!(t.placement(id, 10).unwrap().stale);
        // Re-placing clears staleness (the deferred update completed).
        t.set_placement(id, 10, ptr(5, 1));
        assert_eq!(t.fresh_copies(id), 1);
        assert!(!t.mark_stale(id, 99), "unknown structure");
    }

    #[test]
    fn drop_structure_removes_all_its_placements() {
        let t = AddressTable::new();
        for i in 0..5 {
            let id = AtomId::new(1, i);
            t.set_primary(id, ptr(i as u32, 0));
            t.set_placement(id, 7, ptr(100 + i as u32, 0));
        }
        let affected = t.drop_structure(7);
        assert_eq!(affected.len(), 5);
        for i in 0..5 {
            assert!(t.placements(AtomId::new(1, i)).is_empty());
            assert!(t.exists(AtomId::new(1, i)), "primary untouched");
        }
    }
}
