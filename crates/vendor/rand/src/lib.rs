//! Minimal stand-in for the `rand` crate (0.8 API subset). The build
//! environment has no crates.io access; the workload generators and
//! benches only need seedable deterministic generation of uniform values,
//! so this shim provides `SmallRng::seed_from_u64` + `Rng::gen_range` over
//! integer and float ranges, backed by splitmix64/xoshiro256**.

use std::ops::Range;

/// Core of every generator: a source of uniform 64-bit words.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seedable construction (only the `seed_from_u64` entry point is used).
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

pub mod rngs {
    use super::{splitmix64, RngCore, SeedableRng};

    /// xoshiro256** — the same family the real `SmallRng` uses on 64-bit
    /// targets; deterministic for a given seed.
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let mut s = [0u64; 4];
            for w in &mut s {
                *w = splitmix64(&mut sm);
            }
            SmallRng { s }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let r = self.s[1]
                .wrapping_mul(5)
                .rotate_left(7)
                .wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            r
        }
    }

    /// `StdRng` aliases the same generator; only determinism-per-seed is
    /// promised here.
    pub type StdRng = SmallRng;
}

/// Types that can be drawn uniformly from a half-open range.
pub trait SampleUniform: Sized + Copy {
    fn sample(rng: &mut dyn RngCore, lo: Self, hi: Self) -> Self;
}

macro_rules! impl_sample_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample(rng: &mut dyn RngCore, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128) as u128;
                // Modulo bias is irrelevant for synthetic workloads.
                let draw = ((rng.next_u64() as u128) % span) as i128;
                (lo as i128 + draw) as $t
            }
        }
    )*};
}

impl_sample_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleUniform for f64 {
    fn sample(rng: &mut dyn RngCore, lo: Self, hi: Self) -> Self {
        assert!(lo < hi, "gen_range: empty range");
        // 53 uniform mantissa bits in [0, 1).
        let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        lo + unit * (hi - lo)
    }
}

impl SampleUniform for f32 {
    fn sample(rng: &mut dyn RngCore, lo: Self, hi: Self) -> Self {
        f64::sample(rng, lo as f64, hi as f64) as f32
    }
}

/// User-facing convenience methods (blanket over any [`RngCore`]).
pub trait Rng: RngCore {
    fn gen_range<T: SampleUniform>(&mut self, range: Range<T>) -> T
    where
        Self: Sized,
    {
        T::sample(self, range.start, range.end)
    }

    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        f64::sample(self, 0.0, 1.0) < p
    }
}

impl<R: RngCore> Rng for R {}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0u64..1000), b.gen_range(0u64..1000));
        }
    }

    #[test]
    fn ranges_respected() {
        let mut r = SmallRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = r.gen_range(-100.0..100.0);
            assert!((-100.0..100.0).contains(&v));
            let i = r.gen_range(3usize..9);
            assert!((3..9).contains(&i));
            let n = r.gen_range(-50i64..-10);
            assert!((-50..-10).contains(&n));
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SmallRng::seed_from_u64(1);
        let mut b = SmallRng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.gen_range(0u64..u64::MAX) == b.gen_range(0u64..u64::MAX)).count();
        assert!(same < 4);
    }
}
