//! Sort orders: redundant sorted record lists.
//!
//! "Since sorting an entire atom type is expensive and time consuming, the
//! sort scan may be supported by a redundant storage structure, the sort
//! order. It consists of a sorted list of physical records, one for each
//! atom of the resp. type." (Section 3.2.)
//!
//! A [`SortOrder`] materialises a full copy of every atom of its type in
//! its own record file, plus a sorted directory keyed by the
//! memcomparable encoding of the sort attributes. Scanning in key order
//! reads the *copies* (dense, sequential pages); with deferred update a
//! stale copy is bypassed in favour of the primary record (the caller
//! resolves via the address table's staleness bit).
//!
//! The sorted directory is memory-resident and rebuilt on load — the
//! whole reproduction runs on a simulated device without restart
//! durability (DESIGN.md, non-goals), so the directory never needs
//! persisting.

use crate::addressing::StructureId;
use crate::atom::Atom;
use crate::error::AccessResult;
use crate::record_file::{RecordFile, RecordPtr};
use parking_lot::{rank, RwLock};
use prima_mad::codec::encode_composite_key;
use prima_mad::value::{AtomId, AtomTypeId, Value};
use prima_storage::{PageSize, StorageSystem};
use std::collections::BTreeMap;
use std::ops::Bound;
use std::sync::Arc;

/// A redundant sort order over one atom type.
pub struct SortOrder {
    pub id: StructureId,
    pub name: String,
    pub atom_type: AtomTypeId,
    /// Attribute indices forming the sort criterion (major first).
    pub key_attrs: Vec<usize>,
    file: RecordFile,
    /// (encoded key, atom id) -> record of the atom's copy.
    // lockrank: access.1 — registry peer; transient holds.
    index: RwLock<BTreeMap<(Vec<u8>, AtomId), RecordPtr>>,
}

impl SortOrder {
    /// Creates an empty sort order over a fresh segment.
    pub fn create(
        storage: Arc<StorageSystem>,
        id: StructureId,
        name: impl Into<String>,
        atom_type: AtomTypeId,
        key_attrs: Vec<usize>,
    ) -> AccessResult<SortOrder> {
        Ok(SortOrder {
            id,
            name: name.into(),
            atom_type,
            key_attrs,
            file: RecordFile::create_with(storage, PageSize::K4, false)?,
            index: RwLock::new_ranked(BTreeMap::new(), rank::ACCESS + 1),
        })
    }

    /// The sort key of an atom under this order.
    pub fn key_of(&self, atom: &Atom) -> Vec<u8> {
        let vals: Vec<Value> =
            self.key_attrs.iter().map(|&i| atom.values.get(i).cloned().unwrap_or(Value::Null)).collect();
        encode_composite_key(&vals)
    }

    /// Materialises the atom's copy; returns the record pointer.
    pub fn insert(&self, atom: &Atom) -> AccessResult<RecordPtr> {
        let key = self.key_of(atom);
        let ptr = self.file.insert(&atom.encode())?;
        self.index.write().insert((key, atom.id), ptr);
        Ok(ptr)
    }

    /// Replaces the copy after an atom modification. `old_key` is the key
    /// the atom had when last materialised here.
    pub fn update(&self, old_key: &[u8], atom: &Atom) -> AccessResult<RecordPtr> {
        let mut idx = self.index.write();
        let old_ptr = idx.remove(&(old_key.to_vec(), atom.id));
        let new_key = self.key_of(atom);
        let new_ptr = match old_ptr {
            Some(p) => self.file.update(p, &atom.encode())?,
            None => self.file.insert(&atom.encode())?,
        };
        idx.insert((new_key, atom.id), new_ptr);
        Ok(new_ptr)
    }

    /// Removes the copy of `id` whose key was `key`.
    pub fn remove(&self, key: &[u8], id: AtomId) -> AccessResult<bool> {
        let ptr = self.index.write().remove(&(key.to_vec(), id));
        match ptr {
            Some(p) => {
                self.file.delete(p)?;
                Ok(true)
            }
            None => Ok(false),
        }
    }

    /// Number of materialised copies.
    pub fn len(&self) -> usize {
        self.index.read().len()
    }

    pub fn is_empty(&self) -> bool {
        self.index.read().len() == 0
    }

    /// Pages occupied by the copies.
    pub fn page_count(&self) -> usize {
        self.file.page_count()
    }

    /// Walks atoms in key order within `[start, stop]` bounds over the
    /// *encoded* key, optionally reversed. The visitor gets
    /// `(key, atom id, record ptr)`; it returns `false` to stop.
    /// Reading the record is left to the caller so that stale copies can
    /// be bypassed (deferred update).
    pub fn scan_keys(
        &self,
        start: Bound<Vec<u8>>,
        stop: Bound<Vec<u8>>,
        reverse: bool,
        mut visit: impl FnMut(&[u8], AtomId, RecordPtr) -> bool,
    ) -> AccessResult<()> {
        let idx = self.index.read();
        // Bounds on the composite (key, id) space.
        let lo = match &start {
            Bound::Unbounded => Bound::Unbounded,
            Bound::Included(k) => Bound::Included((k.clone(), AtomId::new(0, 0))),
            Bound::Excluded(k) => {
                Bound::Included((exclusive_successor(k), AtomId::new(0, 0)))
            }
        };
        let hi = match &stop {
            Bound::Unbounded => Bound::Unbounded,
            Bound::Included(k) => {
                Bound::Included((k.clone(), AtomId::new(u16::MAX, u64::MAX)))
            }
            Bound::Excluded(k) => Bound::Excluded((k.clone(), AtomId::new(0, 0))),
        };
        let range = idx.range((lo, hi));
        if reverse {
            for ((k, id), ptr) in range.rev() {
                if !visit(k, *id, *ptr) {
                    break;
                }
            }
        } else {
            for ((k, id), ptr) in range {
                if !visit(k, *id, *ptr) {
                    break;
                }
            }
        }
        Ok(())
    }

    /// Reads the materialised copy at `ptr`.
    pub fn read_copy(&self, ptr: RecordPtr) -> AccessResult<Atom> {
        Atom::decode(&self.file.read(ptr)?)
    }
}

/// Smallest byte string strictly greater than every string with prefix
/// `k` of the same length: append 0 — keys are compared bytewise, and
/// `k ++ [0] > k`.
fn exclusive_successor(k: &[u8]) -> Vec<u8> {
    let mut v = k.to_vec();
    v.push(0);
    v
}

#[cfg(test)]
mod tests {
    use super::*;

    fn atom(seq: u64, no: i64, name: &str) -> Atom {
        Atom::new(
            AtomId::new(0, seq),
            vec![Value::Id(AtomId::new(0, seq)), Value::Int(no), Value::Str(name.into())],
        )
    }

    fn order(attrs: Vec<usize>) -> SortOrder {
        let storage = Arc::new(StorageSystem::in_memory(4 << 20));
        SortOrder::create(storage, 3, "by_no", 0, attrs).unwrap()
    }

    #[test]
    fn scan_in_key_order() {
        let so = order(vec![1]);
        for (seq, no) in [(1u64, 30i64), (2, 10), (3, 20)] {
            so.insert(&atom(seq, no, "n")).unwrap();
        }
        let mut nos = Vec::new();
        so.scan_keys(Bound::Unbounded, Bound::Unbounded, false, |_, id, ptr| {
            let a = so.read_copy(ptr).unwrap();
            assert_eq!(a.id, id);
            nos.push(a.values[1].as_int().unwrap());
            true
        })
        .unwrap();
        assert_eq!(nos, vec![10, 20, 30]);
    }

    #[test]
    fn reverse_scan() {
        let so = order(vec![1]);
        for no in 0..50 {
            so.insert(&atom(no as u64, no, "x")).unwrap();
        }
        let mut nos = Vec::new();
        so.scan_keys(Bound::Unbounded, Bound::Unbounded, true, |_, _, ptr| {
            nos.push(so.read_copy(ptr).unwrap().values[1].as_int().unwrap());
            true
        })
        .unwrap();
        assert_eq!(nos[0], 49);
        assert_eq!(nos[49], 0);
    }

    #[test]
    fn start_stop_conditions() {
        let so = order(vec![1]);
        for no in 0..100 {
            so.insert(&atom(no as u64, no, "x")).unwrap();
        }
        let lo = encode_composite_key(&[Value::Int(10)]);
        let hi = encode_composite_key(&[Value::Int(20)]);
        let mut nos = Vec::new();
        so.scan_keys(Bound::Included(lo), Bound::Excluded(hi), false, |_, _, ptr| {
            nos.push(so.read_copy(ptr).unwrap().values[1].as_int().unwrap());
            true
        })
        .unwrap();
        assert_eq!(nos, (10..20).collect::<Vec<i64>>());
    }

    #[test]
    fn update_moves_key() {
        let so = order(vec![1]);
        let mut a = atom(1, 5, "x");
        so.insert(&a).unwrap();
        let old_key = so.key_of(&a);
        a.values[1] = Value::Int(500);
        so.update(&old_key, &a).unwrap();
        let mut nos = Vec::new();
        so.scan_keys(Bound::Unbounded, Bound::Unbounded, false, |_, _, ptr| {
            nos.push(so.read_copy(ptr).unwrap().values[1].as_int().unwrap());
            true
        })
        .unwrap();
        assert_eq!(nos, vec![500]);
        assert_eq!(so.len(), 1);
    }

    #[test]
    fn remove_copy() {
        let so = order(vec![1]);
        let a = atom(1, 5, "x");
        so.insert(&a).unwrap();
        let key = so.key_of(&a);
        assert!(so.remove(&key, a.id).unwrap());
        assert!(!so.remove(&key, a.id).unwrap());
        assert_eq!(so.len(), 0);
    }

    #[test]
    fn composite_key_major_minor() {
        let so = order(vec![2, 1]); // sort by name, then no
        so.insert(&atom(1, 2, "beta")).unwrap();
        so.insert(&atom(2, 1, "alpha")).unwrap();
        so.insert(&atom(3, 1, "beta")).unwrap();
        let mut seqs = Vec::new();
        so.scan_keys(Bound::Unbounded, Bound::Unbounded, false, |_, id, _| {
            seqs.push(id.seq);
            true
        })
        .unwrap();
        assert_eq!(seqs, vec![2, 3, 1], "alpha first, then beta/1, beta/2");
    }

    #[test]
    fn duplicate_keys_coexist() {
        let so = order(vec![1]);
        for seq in 0..10u64 {
            so.insert(&atom(seq, 7, "same")).unwrap();
        }
        assert_eq!(so.len(), 10);
        let k = encode_composite_key(&[Value::Int(7)]);
        let mut n = 0;
        so.scan_keys(Bound::Included(k.clone()), Bound::Included(k), false, |_, _, _| {
            n += 1;
            true
        })
        .unwrap();
        assert_eq!(n, 10);
    }
}
