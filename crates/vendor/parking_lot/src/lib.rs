//! Minimal API-compatible stand-in for the `parking_lot` crate, backed by
//! `std::sync`. The build environment has no crates.io access, so the
//! workspace vendors the narrow surface the kernel uses:
//!
//! * [`Mutex`] / [`RwLock`] with panic-free (`lock()`/`read()`/`write()`)
//!   guards — poisoning is swallowed, matching parking_lot semantics;
//! * owning (`'static`) guards via [`RwLock::read_arc`]/[`RwLock::write_arc`],
//!   used by the buffer manager to hand out page guards detached from the
//!   pool borrow;
//! * the [`lock_api`] guard type names the kernel imports.
//!
//! Performance is whatever `std::sync` provides; semantics are what the
//! callers rely on.

use std::sync::Arc;

/// Raw lock marker type (type-level compatibility only).
pub struct RawRwLock {
    _private: (),
}

/// Raw mutex marker type (type-level compatibility only).
pub struct RawMutex {
    _private: (),
}

// ---------------------------------------------------------------------------
// Mutex
// ---------------------------------------------------------------------------

pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    pub const fn new(t: T) -> Self {
        Mutex { inner: std::sync::Mutex::new(t) }
    }

    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(t) => t,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the mutex, ignoring poison (parking_lot has no poisoning).
    pub fn lock(&self) -> MutexGuard<'_, T> {
        match self.inner.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(t) => t,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: ?Sized + std::fmt::Debug> std::fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.try_lock() {
            Some(g) => f.debug_struct("Mutex").field("data", &&*g).finish(),
            None => f.debug_struct("Mutex").field("data", &"<locked>").finish(),
        }
    }
}

// ---------------------------------------------------------------------------
// RwLock
// ---------------------------------------------------------------------------

/// RwLock whose state lives behind an `Arc` so owning (`'static`) guards can
/// be produced without unsafe self-references in callers.
pub struct RwLock<T> {
    inner: Arc<std::sync::RwLock<T>>,
}

pub type RwLockReadGuard<'a, T> = std::sync::RwLockReadGuard<'a, T>;
pub type RwLockWriteGuard<'a, T> = std::sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    pub fn new(t: T) -> Self {
        RwLock { inner: Arc::new(std::sync::RwLock::new(t)) }
    }

    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        match self.inner.read() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        match self.inner.write() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }

    /// Shared guard that owns a reference to the lock (usable beyond the
    /// borrow of `self`, as parking_lot's `arc_lock` feature provides).
    pub fn read_arc(&self) -> lock_api::ArcRwLockReadGuard<RawRwLock, T>
    where
        T: 'static,
    {
        lock_api::ArcRwLockReadGuard::new(Arc::clone(&self.inner))
    }

    /// Exclusive owning guard; see [`RwLock::read_arc`].
    pub fn write_arc(&self) -> lock_api::ArcRwLockWriteGuard<RawRwLock, T>
    where
        T: 'static,
    {
        lock_api::ArcRwLockWriteGuard::new(Arc::clone(&self.inner))
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> Self {
        RwLock::new(T::default())
    }
}

impl<T: std::fmt::Debug> std::fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.inner.try_read() {
            Ok(g) => f.debug_struct("RwLock").field("data", &&*g).finish(),
            Err(_) => f.debug_struct("RwLock").field("data", &"<locked>").finish(),
        }
    }
}

pub mod lock_api {
    //! Owning guard types compatible with `lock_api`'s `Arc*Guard` names.

    use std::marker::PhantomData;
    use std::ops::{Deref, DerefMut};
    use std::sync::Arc;

    /// Shared guard owning its lock. The `'static` guard borrows data that
    /// lives on the `Arc` heap allocation it also owns; the guard field is
    /// declared before the Arc so it drops first.
    pub struct ArcRwLockReadGuard<R, T: 'static> {
        // SAFETY invariant: `guard` borrows from the RwLock inside `_lock`;
        // declaration order guarantees the guard is released before the Arc.
        guard: Option<std::sync::RwLockReadGuard<'static, T>>,
        _lock: Arc<std::sync::RwLock<T>>,
        _raw: PhantomData<R>,
    }

    impl<R, T: 'static> ArcRwLockReadGuard<R, T> {
        pub(crate) fn new(lock: Arc<std::sync::RwLock<T>>) -> Self {
            let g = match lock.read() {
                Ok(g) => g,
                Err(p) => p.into_inner(),
            };
            // SAFETY: the referent lives on the Arc's heap allocation, which
            // this struct keeps alive for at least as long as the guard; the
            // guard never leaves the struct.
            let g: std::sync::RwLockReadGuard<'static, T> =
                unsafe { std::mem::transmute(g) };
            ArcRwLockReadGuard { guard: Some(g), _lock: lock, _raw: PhantomData }
        }
    }

    impl<R, T: 'static> Deref for ArcRwLockReadGuard<R, T> {
        type Target = T;
        fn deref(&self) -> &T {
            self.guard.as_ref().expect("guard alive")
        }
    }

    impl<R, T: 'static> Drop for ArcRwLockReadGuard<R, T> {
        fn drop(&mut self) {
            self.guard.take();
        }
    }

    /// Exclusive guard owning its lock; see [`ArcRwLockReadGuard`].
    pub struct ArcRwLockWriteGuard<R, T: 'static> {
        guard: Option<std::sync::RwLockWriteGuard<'static, T>>,
        _lock: Arc<std::sync::RwLock<T>>,
        _raw: PhantomData<R>,
    }

    impl<R, T: 'static> ArcRwLockWriteGuard<R, T> {
        pub(crate) fn new(lock: Arc<std::sync::RwLock<T>>) -> Self {
            let g = match lock.write() {
                Ok(g) => g,
                Err(p) => p.into_inner(),
            };
            // SAFETY: as for ArcRwLockReadGuard.
            let g: std::sync::RwLockWriteGuard<'static, T> =
                unsafe { std::mem::transmute(g) };
            ArcRwLockWriteGuard { guard: Some(g), _lock: lock, _raw: PhantomData }
        }
    }

    impl<R, T: 'static> Deref for ArcRwLockWriteGuard<R, T> {
        type Target = T;
        fn deref(&self) -> &T {
            self.guard.as_ref().expect("guard alive")
        }
    }

    impl<R, T: 'static> DerefMut for ArcRwLockWriteGuard<R, T> {
        fn deref_mut(&mut self) -> &mut T {
            self.guard.as_mut().expect("guard alive")
        }
    }

    impl<R, T: 'static> Drop for ArcRwLockWriteGuard<R, T> {
        fn drop(&mut self) {
            self.guard.take();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_round_trip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
    }

    #[test]
    fn rwlock_shared_and_exclusive() {
        let l = RwLock::new(vec![1, 2]);
        assert_eq!(l.read().len(), 2);
        l.write().push(3);
        assert_eq!(l.read().len(), 3);
    }

    #[test]
    fn arc_guards_outlive_borrow() {
        let l = Arc::new(RwLock::new(5));
        let g = {
            let borrowed = Arc::clone(&l);
            borrowed.read_arc()
        };
        assert_eq!(*g, 5);
        drop(g);
        *l.write_arc() = 6;
        assert_eq!(*l.read(), 6);
    }

    #[test]
    fn write_arc_releases_on_drop() {
        let l = RwLock::new(0u32);
        {
            let mut g = l.write_arc();
            *g = 9;
        }
        assert_eq!(*l.read(), 9);
    }
}
