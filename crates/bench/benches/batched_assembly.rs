//! BENCH-1 — batched vertical assembly.
//!
//! Compares `AssemblyMode::PerAtom` (one buffer fix per component atom,
//! the historical path) against `AssemblyMode::Batched` (level-by-level
//! frontier expansion, one page-grouped batch read per level) across
//! molecule fan-outs of 1, 10 and 100 components per level and two
//! buffer-pressure regimes (warm: everything resident; pressured: the
//! buffer holds a fraction of the database, so assembly competes with
//! eviction).
//!
//! Reported per configuration, machine-grepable:
//! * `atoms_per_sec` — assembled component atoms per second of query time;
//! * `fix_calls`, `pages_loaded` — from `BufferStats::detail`, proving
//!   the batched path's guard-churn reduction (fix calls collapse towards
//!   the page count while device loads stay identical).
//!
//! `scripts/perf_trajectory.sh` collects the `BENCHJSON` lines emitted on
//! stderr into `BENCH_1.json`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use prima_workloads::exec;
use prima::{AssemblyMode, Prima, Value};
use prima_bench::{report, report_metrics};
use prima_mad::value::AtomId;
use std::time::Instant;

const DDL: &str = "
CREATE ATOM_TYPE pt
  ( id : IDENTIFIER, n : INTEGER,
    owner : SET_OF (REF_TO (part.pts)) );
CREATE ATOM_TYPE part
  ( id : IDENTIFIER, n : INTEGER, name : CHAR_VAR,
    pts : SET_OF (REF_TO (pt.owner)),
    parent : SET_OF (REF_TO (assembly.comps)) );
CREATE ATOM_TYPE assembly
  ( id : IDENTIFIER, n : INTEGER,
    comps : SET_OF (REF_TO (part.parent)) );
";

/// Builds `roots` three-level molecules: assembly -> `fanout` parts -> 2
/// points each.
fn build_db(roots: usize, fanout: usize, buffer_bytes: usize) -> Prima {
    let db = Prima::builder().buffer_bytes(buffer_bytes).build_with_ddl(DDL).unwrap();
    let mut n = 0i64;
    for a in 0..roots {
        let mut comps = Vec::with_capacity(fanout);
        for _ in 0..fanout {
            n += 1;
            let pts: Vec<AtomId> = (0..2)
                .map(|k| db.insert("pt", &[("n", Value::Int(n * 10 + k))]).unwrap())
                .collect();
            comps.push(
                db.insert(
                    "part",
                    &[
                        ("n", Value::Int(n)),
                        ("name", Value::Str(format!("part {n} of assembly {a}"))),
                        ("pts", Value::ref_set(pts)),
                    ],
                )
                .unwrap(),
            );
        }
        db.insert("assembly", &[("n", Value::Int(a as i64)), ("comps", Value::ref_set(comps))])
            .unwrap();
    }
    db
}

struct Measured {
    atoms: usize,
    elapsed_ns: u128,
    fix_calls: u64,
    pages_loaded: u64,
}

/// One counted query run (buffer warmed by a prior run of the same mode).
fn measure(db: &Prima, q: &str, mode: AssemblyMode) -> Measured {
    let _ = exec::query_with_assembly(db, q, mode).unwrap();
    db.storage().buffer_stats().reset();
    let t0 = Instant::now();
    let (set, _) = exec::query_with_assembly(db, q, mode).unwrap();
    let elapsed_ns = t0.elapsed().as_nanos();
    let d = db.storage().buffer_stats().detail();
    Measured {
        atoms: set.atom_count(),
        elapsed_ns,
        fix_calls: d.fix_calls,
        pages_loaded: d.pages_loaded,
    }
}

fn mode_name(mode: AssemblyMode) -> &'static str {
    match mode {
        AssemblyMode::PerAtom => "per_atom",
        AssemblyMode::Batched => "batched",
    }
}

fn bench_batched_assembly(c: &mut Criterion) {
    let mut g = c.benchmark_group("batched_assembly");
    g.sample_size(10);
    // (fanout, molecule roots): roughly constant total atom volume.
    for &(fanout, roots) in &[(1usize, 200usize), (10, 40), (100, 8)] {
        // Warm regime: the whole database fits; pressured regime: the
        // buffer holds only a slice of it, so each level competes with
        // the modified-LRU eviction walk.
        for (regime, buffer_bytes) in [("warm", 64 << 20), ("pressured", 192 * 1024)] {
            let db = build_db(roots, fanout, buffer_bytes);
            let q = "SELECT ALL FROM assembly-part-pt";
            for mode in [AssemblyMode::PerAtom, AssemblyMode::Batched] {
                let m = measure(&db, q, mode);
                let atoms_per_sec = m.atoms as f64 / (m.elapsed_ns.max(1) as f64 / 1e9);
                let label = format!("f{fanout}/{regime}/{}", mode_name(mode));
                report("BENCH-1", &label, "atoms_per_sec", format!("{atoms_per_sec:.0}"));
                report("BENCH-1", &label, "fix_calls", m.fix_calls);
                report("BENCH-1", &label, "pages_loaded", m.pages_loaded);
                eprintln!(
                    "BENCHJSON {{\"bench\":\"batched_assembly\",\"fanout\":{fanout},\
\"regime\":\"{regime}\",\"mode\":\"{}\",\"atoms\":{},\"elapsed_ns\":{},\
\"atoms_per_sec\":{atoms_per_sec:.0},\"fix_calls\":{},\"pages_loaded\":{}}}",
                    mode_name(mode),
                    m.atoms,
                    m.elapsed_ns,
                    m.fix_calls,
                    m.pages_loaded,
                );
                g.bench_with_input(
                    BenchmarkId::new(format!("f{fanout}/{regime}"), mode_name(mode)),
                    &mode,
                    |b, &mode| b.iter(|| exec::query_with_assembly(&db, q, mode).unwrap()),
                );
            }
            report_metrics(&format!("batched_assembly/f{fanout}/{regime}"), &db);
        }
    }
    g.finish();
}

criterion_group!(benches, bench_batched_assembly);
criterion_main!(benches);
