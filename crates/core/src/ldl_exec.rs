//! LDL execution: applying DBA tuning hints to the access system.
//!
//! "Such measures only serve to improve performance — they are controlled
//! by the access system and are not visible to the application
//! referencing the MAD interface" (Section 2.3): executing an LDL script
//! changes *which* storage structures exist, never query results.

use crate::error::{PrimaError, PrimaResult};
use prima_access::{AccessSystem, UpdatePolicy};
use prima_mad::ldl::{parse_ldl_script, LdlPageSize, LdlStatement};
use prima_mad::value::AtomTypeId;
use prima_storage::PageSize;

/// Executes an LDL script against an access system. Returns the number of
/// statements applied.
pub fn execute_ldl(sys: &AccessSystem, src: &str) -> PrimaResult<usize> {
    let stmts = parse_ldl_script(src)?;
    let n = stmts.len();
    for s in stmts {
        apply(sys, &s)?;
    }
    Ok(n)
}

/// Applies one LDL statement.
pub fn apply(sys: &AccessSystem, stmt: &LdlStatement) -> PrimaResult<()> {
    match stmt {
        LdlStatement::CreateAccessPath { name, atom_type, attrs } => {
            let (t, idxs) = resolve(sys, atom_type, attrs)?;
            sys.create_btree_index(name, t, idxs)?;
        }
        LdlStatement::CreateMultidimAccessPath { name, atom_type, attrs } => {
            let (t, idxs) = resolve(sys, atom_type, attrs)?;
            sys.create_grid_index(name, t, idxs)?;
        }
        LdlStatement::CreateSortOrder { name, atom_type, attrs } => {
            let (t, idxs) = resolve(sys, atom_type, attrs)?;
            sys.create_sort_order(name, t, idxs)?;
        }
        LdlStatement::CreatePartition { name, atom_type, attrs } => {
            let (t, idxs) = resolve(sys, atom_type, attrs)?;
            sys.create_partition(name, t, idxs)?;
        }
        LdlStatement::CreateAtomCluster { name, char_type, member_attrs, page_size } => {
            let (t, idxs) = resolve(sys, char_type, member_attrs)?;
            sys.create_cluster_type(name, t, idxs, convert_page_size(*page_size))?;
        }
        LdlStatement::DropStructure { name } => {
            sys.drop_structure(name)?;
        }
        LdlStatement::SetUpdatePolicy { deferred } => {
            sys.set_update_policy(if *deferred {
                UpdatePolicy::Deferred
            } else {
                UpdatePolicy::Immediate
            });
        }
        LdlStatement::Reconcile => {
            sys.reconcile()?;
        }
    }
    Ok(())
}

fn resolve(
    sys: &AccessSystem,
    type_name: &str,
    attrs: &[String],
) -> PrimaResult<(AtomTypeId, Vec<usize>)> {
    let at = sys
        .schema()
        .type_by_name(type_name)
        .ok_or_else(|| PrimaError::UnknownComponent(type_name.to_string()))?;
    let mut idxs = Vec::with_capacity(attrs.len());
    for a in attrs {
        idxs.push(at.attribute_index(a).ok_or_else(|| PrimaError::UnresolvedReference {
            reference: format!("{type_name}.{a}"),
            detail: "no such attribute".into(),
        })?);
    }
    Ok((at.id, idxs))
}

fn convert_page_size(p: Option<LdlPageSize>) -> PageSize {
    match p {
        None | Some(LdlPageSize::K1) => PageSize::K1,
        Some(LdlPageSize::Half) => PageSize::Half,
        Some(LdlPageSize::K2) => PageSize::K2,
        Some(LdlPageSize::K4) => PageSize::K4,
        Some(LdlPageSize::K8) => PageSize::K8,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prima_mad::Schema;
    use prima_storage::{SimDisk, StorageSystem};
    use std::sync::Arc;

    fn sys() -> AccessSystem {
        let mut schema = Schema::new();
        prima_mad::ddl::load_script(
            &mut schema,
            "CREATE ATOM_TYPE t (id: IDENTIFIER, a: INTEGER, b: REAL,
                kids: SET_OF (REF_TO (k.parent)));
             CREATE ATOM_TYPE k (id: IDENTIFIER, parent: REF_TO (t.kids));",
        )
        .unwrap();
        let storage = Arc::new(StorageSystem::new(Arc::new(SimDisk::new()), 4 << 20));
        AccessSystem::new(storage, schema).unwrap()
    }

    #[test]
    fn all_statement_kinds_apply() {
        let s = sys();
        let n = execute_ldl(
            &s,
            "CREATE ACCESS PATH ap ON t (a);
             CREATE MULTIDIM ACCESS PATH g ON t (a, b);
             CREATE SORT ORDER so ON t (b);
             CREATE PARTITION p ON t (a);
             CREATE ATOM_CLUSTER c ON t (kids) PAGESIZE 4K;
             SET UPDATE POLICY IMMEDIATE;
             RECONCILE;
             DROP STRUCTURE ap",
        )
        .unwrap();
        assert_eq!(n, 8);
        assert!(s.btree_index("ap").is_none(), "dropped");
        assert!(s.grid_index("g").is_some());
        assert!(s.sort_order("so").is_some());
        assert!(s.partition("p").is_some());
        assert!(s.cluster_type("c").is_some());
        assert_eq!(s.update_policy(), UpdatePolicy::Immediate);
    }

    #[test]
    fn unknown_names_are_reported() {
        let s = sys();
        assert!(matches!(
            execute_ldl(&s, "CREATE ACCESS PATH x ON nosuch (a)"),
            Err(PrimaError::UnknownComponent(_))
        ));
        assert!(matches!(
            execute_ldl(&s, "CREATE ACCESS PATH x ON t (nosuch)"),
            Err(PrimaError::UnresolvedReference { .. })
        ));
        assert!(execute_ldl(&s, "CREATE ATOM_CLUSTER c ON t (a)").is_err(),
            "cluster member attrs must be references");
    }
}
