//! Partitions: vertical splits of atom types.
//!
//! "The projection of frequently used attributes may be supported by means
//! of partitions, i.e. separate storage of attribute combinations. This is
//! one of the tuning mechanisms triggered by the LDL." (Section 3.2.)
//! A partition is a redundant storage structure: each atom of the type
//! contributes one physical record holding only the selected attributes
//! ("partitions collect the results of projections"). Reads that touch
//! only partition attributes can be satisfied from the (smaller, denser)
//! partition file instead of the base file.

use crate::addressing::StructureId;
use crate::atom::Atom;
use crate::error::AccessResult;
use crate::record_file::{RecordFile, RecordPtr};
use prima_mad::value::AtomTypeId;
use prima_storage::{PageSize, StorageSystem};
use std::sync::Arc;

/// A vertical partition of one atom type.
pub struct Partition {
    pub id: StructureId,
    pub name: String,
    pub atom_type: AtomTypeId,
    /// Attribute indices stored in this partition (the IDENTIFIER
    /// attribute is always included so records are self-identifying).
    pub attrs: Vec<usize>,
    file: RecordFile,
}

impl Partition {
    /// Creates an empty partition over a fresh segment. Small page size:
    /// partition records are narrow, and dense packing is their point.
    pub fn create(
        storage: Arc<StorageSystem>,
        id: StructureId,
        name: impl Into<String>,
        atom_type: AtomTypeId,
        mut attrs: Vec<usize>,
        identifier_idx: usize,
    ) -> AccessResult<Partition> {
        if !attrs.contains(&identifier_idx) {
            attrs.push(identifier_idx);
        }
        attrs.sort_unstable();
        attrs.dedup();
        Ok(Partition {
            id,
            name: name.into(),
            atom_type,
            attrs,
            file: RecordFile::create_with(storage, PageSize::K1, false)?,
        })
    }

    /// True if every attribute in `needed` is stored here — then a read
    /// with that projection (or an SSA over those attributes) can be
    /// routed to the partition.
    pub fn covers(&self, needed: &[usize]) -> bool {
        needed.iter().all(|a| self.attrs.contains(a))
    }

    /// Stores the projection of `atom`, returning the record pointer for
    /// the address table.
    pub fn store(&self, atom: &Atom) -> AccessResult<RecordPtr> {
        let projected = atom.project(&self.attrs);
        self.file.insert(&projected.encode())
    }

    /// Replaces a stored projection (deferred or immediate maintenance).
    pub fn update(&self, ptr: RecordPtr, atom: &Atom) -> AccessResult<RecordPtr> {
        let projected = atom.project(&self.attrs);
        self.file.update(ptr, &projected.encode())
    }

    /// Removes a stored projection.
    pub fn remove(&self, ptr: RecordPtr) -> AccessResult<()> {
        self.file.delete(ptr)
    }

    /// Reads the projected atom stored at `ptr`.
    pub fn read(&self, ptr: RecordPtr) -> AccessResult<Atom> {
        Atom::decode(&self.file.read(ptr)?)
    }

    /// Sequential scan over the partition (physical order).
    pub fn for_each(&self, mut f: impl FnMut(RecordPtr, Atom) -> AccessResult<()>) -> AccessResult<()> {
        self.file.for_each(|ptr, bytes| f(ptr, Atom::decode(bytes)?))
    }

    /// Pages occupied — the density advantage measured by experiment
    /// E-T2.1c.
    pub fn page_count(&self) -> usize {
        self.file.page_count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prima_mad::value::{AtomId, Value};

    fn wide_atom(seq: u64) -> Atom {
        Atom::new(
            AtomId::new(0, seq),
            vec![
                Value::Id(AtomId::new(0, seq)),
                Value::Int(seq as i64),
                Value::Str("x".repeat(100)), // wide payload outside partition
                Value::Real(0.5),
            ],
        )
    }

    fn part() -> Partition {
        let storage = Arc::new(StorageSystem::in_memory(1 << 20));
        // Store attrs {1}; identifier (0) is added automatically.
        Partition::create(storage, 7, "p_no", 0, vec![1], 0).unwrap()
    }

    #[test]
    fn store_and_read_projection() {
        let p = part();
        let a = wide_atom(1);
        let ptr = p.store(&a).unwrap();
        let back = p.read(ptr).unwrap();
        assert_eq!(back.id, a.id);
        assert_eq!(back.values[1], Value::Int(1));
        assert_eq!(back.values[2], Value::Null, "unselected attribute is nulled");
    }

    #[test]
    fn covers_routing() {
        let p = part();
        assert!(p.covers(&[0]));
        assert!(p.covers(&[1]));
        assert!(p.covers(&[0, 1]));
        assert!(!p.covers(&[2]));
        assert!(!p.covers(&[1, 3]));
    }

    #[test]
    fn partition_is_denser_than_base() {
        let storage = Arc::new(StorageSystem::in_memory(4 << 20));
        let base = RecordFile::create(Arc::clone(&storage), PageSize::K1).unwrap();
        let p = Partition::create(Arc::clone(&storage), 1, "narrow", 0, vec![1], 0).unwrap();
        for i in 0..500 {
            let a = wide_atom(i);
            base.insert(&a.encode()).unwrap();
            p.store(&a).unwrap();
        }
        assert!(
            p.page_count() * 2 < base.page_count(),
            "partition {} pages vs base {} pages",
            p.page_count(),
            base.page_count()
        );
    }

    #[test]
    fn update_and_remove() {
        let p = part();
        let mut a = wide_atom(1);
        let ptr = p.store(&a).unwrap();
        a.values[1] = Value::Int(99);
        let ptr2 = p.update(ptr, &a).unwrap();
        assert_eq!(p.read(ptr2).unwrap().values[1], Value::Int(99));
        p.remove(ptr2).unwrap();
        assert!(p.read(ptr2).is_err());
    }

    #[test]
    fn scan_visits_all() {
        let p = part();
        for i in 0..40 {
            p.store(&wide_atom(i)).unwrap();
        }
        let mut n = 0;
        p.for_each(|_, atom| {
            assert_eq!(atom.values[2], Value::Null);
            n += 1;
            Ok(())
        })
        .unwrap();
        assert_eq!(n, 40);
    }
}
