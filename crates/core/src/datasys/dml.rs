//! Data manipulation: molecule insertion, deletion and modification.
//!
//! "Analogously to retrieval capabilities, insert, delete, and modify
//! operations allow for dealing with an integral molecule as well as its
//! components. Modification especially supports connection and
//! disconnection of molecule components. The delete statement reflects
//! removal of single components as well as of whole component sets,
//! thereby automatically disconnecting these parts from the specified
//! surrounding molecules. […] Common to all manipulation operations is
//! the system-enforced support for structural integrity" (Section 2.2) —
//! the disconnection itself happens in the access system's back-reference
//! maintenance; this module translates statement semantics into atom
//! operations.
//!
//! DML runs on the *locking* read path even now that auto-commit queries
//! snapshot ([`crate::txn::mvcc`]): qualification sub-reads here must see
//! the transaction's own uncommitted writes and must lock what they will
//! mutate, so every guard below comes from `Transaction::read_guard`
//! (locking mode) — never from [`ReadGuard::snapshot`].

use super::exec::execute;
use super::validate::{resolve_ref, validate};
use crate::error::{PrimaError, PrimaResult};
use crate::txn::{ReadGuard, Transaction};
use prima_access::AccessSystem;
use prima_mad::mql::{Delete, Insert, Modify, Query, SelectList, SetExpr, Statement, ValueExpr};
use prima_mad::value::{AtomId, AtomTypeId, Value};
use prima_mad::AttrType;

/// Result of a manipulation statement.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DmlResult {
    /// The inserted atom's logical address.
    Inserted(AtomId),
    /// Number of atoms deleted.
    Deleted(usize),
    /// Number of atoms modified.
    Modified(usize),
}

/// Write-side of the DML path: statement semantics (qualification,
/// connect/disconnect, ONLY-component selection) are translated into atom
/// operations on a [`Transaction`] — undo-logged, lock-protected, rolled
/// back by [`crate::session::Session::rollback`]. There is deliberately
/// no direct-to-access-system writer any more: every manipulation path,
/// including the facade's atom-level convenience calls, is bracketed by
/// the transaction layer (the recovery subsystem assumes exactly that).
pub trait AtomWriter {
    fn write_insert(&self, t: AtomTypeId, values: Vec<Value>) -> PrimaResult<AtomId>;
    fn write_modify(&self, id: AtomId, updates: &[(usize, Value)]) -> PrimaResult<()>;
    fn write_delete(&self, id: AtomId) -> PrimaResult<()>;
}

impl AtomWriter for Transaction {
    fn write_insert(&self, t: AtomTypeId, values: Vec<Value>) -> PrimaResult<AtomId> {
        Ok(self.insert_atom(t, values)?)
    }

    fn write_modify(&self, id: AtomId, updates: &[(usize, Value)]) -> PrimaResult<()> {
        Ok(self.modify_atom(id, updates)?)
    }

    fn write_delete(&self, id: AtomId) -> PrimaResult<()> {
        Ok(self.delete_atom(id)?)
    }
}

/// Executes a non-SELECT statement, routing all writes through `w`.
/// `locks` covers the statement's *reads* (qualification sub-queries,
/// current-value reads for CONNECT/DISCONNECT) with `Shared` locks under
/// the same transaction, completing the two-phase bracket.
pub fn execute_statement_with(
    sys: &AccessSystem,
    w: &dyn AtomWriter,
    stmt: &Statement,
    locks: Option<ReadGuard<'_>>,
) -> PrimaResult<DmlResult> {
    match stmt {
        Statement::Select(_) => Err(PrimaError::BadStatement(
            "SELECT must go through the query interface".into(),
        )),
        Statement::Insert(i) => insert(sys, w, i),
        Statement::Delete(d) => delete(sys, w, d, locks),
        Statement::Modify(m) => modify(sys, w, m, locks),
    }
}

/// Concrete value of a DML value expression; placeholders must have been
/// substituted by the prepared-statement layer before execution.
fn lit(ve: &ValueExpr) -> PrimaResult<&Value> {
    match ve {
        ValueExpr::Lit(v) => Ok(v),
        ValueExpr::Param(slot) => Err(PrimaError::UnboundParameter {
            slot: *slot,
            detail: "prepare the statement and bind values before executing".into(),
        }),
    }
}

fn insert(sys: &AccessSystem, w: &dyn AtomWriter, stmt: &Insert) -> PrimaResult<DmlResult> {
    let pairs: Vec<(&str, Value)> = stmt
        .assignments
        .iter()
        .map(|(n, ve)| Ok((n.as_str(), lit(ve)?.clone())))
        .collect::<PrimaResult<_>>()?;
    let (t, values) = sys.resolve_named_values(&stmt.atom_type, &pairs)?;
    let id = w.write_insert(t, values)?;
    Ok(DmlResult::Inserted(id))
}

fn delete(
    sys: &AccessSystem,
    w: &dyn AtomWriter,
    stmt: &Delete,
    locks: Option<ReadGuard<'_>>,
) -> PrimaResult<DmlResult> {
    // Find the qualifying molecules with a SELECT ALL over the same FROM.
    let query = Query {
        select: SelectList::All,
        from: stmt.from.clone(),
        predicate: stmt.predicate.clone(),
    };
    let resolved = validate(sys.schema(), &query)?;
    let (set, _) = execute(sys, &resolved, locks)?;
    // Which structure nodes are deleted?
    let victim_nodes: Vec<usize> = match &stmt.only_components {
        None => (0..resolved.nodes.len()).collect(),
        Some(names) => {
            let mut out = Vec::new();
            for n in names {
                out.push(resolved.node_by_label(n).ok_or_else(|| {
                    PrimaError::UnresolvedReference {
                        reference: n.clone(),
                        detail: "DELETE ONLY names unknown component".into(),
                    }
                })?);
            }
            out
        }
    };
    let mut deleted = 0usize;
    for m in &set.molecules {
        for &node in &victim_nodes {
            for atom in m.atoms_of_node(node) {
                // Molecules may overlap (non-disjoint); an atom can
                // already be gone.
                if sys.exists(atom.id) {
                    w.write_delete(atom.id)?;
                    deleted += 1;
                }
            }
        }
    }
    Ok(DmlResult::Deleted(deleted))
}

#[allow(clippy::unwrap_used, clippy::expect_used)]
fn modify(
    sys: &AccessSystem,
    w: &dyn AtomWriter,
    stmt: &Modify,
    locks: Option<ReadGuard<'_>>,
) -> PrimaResult<DmlResult> {
    let query = Query {
        select: SelectList::All,
        from: stmt.from.clone(),
        predicate: stmt.predicate.clone(),
    };
    let resolved = validate(sys.schema(), &query)?;
    let (set, _) = execute(sys, &resolved, locks)?;
    let mut modified = 0usize;
    for m in &set.molecules {
        for (target, expr) in &stmt.assignments {
            let (node, attr) = resolve_ref(&resolved, target, sys.schema())?;
            // lint: allow(error-hygiene, plan node type ids were resolved against this same frozen schema during validation)
            let at = sys.schema().atom_type(resolved.nodes[node].atom_type).expect("resolved");
            let is_set = matches!(at.attributes[attr].ty, AttrType::RefSet(..));
            let is_single_ref = matches!(at.attributes[attr].ty, AttrType::Ref(_));
            let atom_ids: Vec<AtomId> =
                m.atoms_of_node(node).iter().map(|a| a.id).collect();
            for id in atom_ids {
                if !sys.exists(id) {
                    continue;
                }
                match expr {
                    SetExpr::Value(v) => {
                        w.write_modify(id, &[(attr, lit(v)?.clone())])?;
                        modified += 1;
                    }
                    SetExpr::Connect(sub) => {
                        let targets = root_ids(sys, sub, locks)?;
                        let current = sys.read_atom(id, None)?;
                        let new_value = if is_set {
                            let mut ids = current.values[attr].referenced_ids();
                            ids.extend(targets.iter().copied());
                            Value::ref_set(ids)
                        } else if is_single_ref {
                            Value::Ref(targets.first().copied())
                        } else {
                            return Err(PrimaError::BadStatement(format!(
                                "CONNECT target '{}' is not a reference attribute",
                                at.attributes[attr].name
                            )));
                        };
                        w.write_modify(id, &[(attr, new_value)])?;
                        modified += 1;
                    }
                    SetExpr::Disconnect(sub) => {
                        let targets = root_ids(sys, sub, locks)?;
                        let current = sys.read_atom(id, None)?;
                        let new_value = if is_set {
                            let ids: Vec<AtomId> = current.values[attr]
                                .referenced_ids()
                                .into_iter()
                                .filter(|t| !targets.contains(t))
                                .collect();
                            Value::ref_set(ids)
                        } else if is_single_ref {
                            match current.values[attr] {
                                Value::Ref(Some(t)) if targets.contains(&t) => Value::Ref(None),
                                ref other => other.clone(),
                            }
                        } else {
                            return Err(PrimaError::BadStatement(format!(
                                "DISCONNECT target '{}' is not a reference attribute",
                                at.attributes[attr].name
                            )));
                        };
                        w.write_modify(id, &[(attr, new_value)])?;
                        modified += 1;
                    }
                }
            }
        }
    }
    Ok(DmlResult::Modified(modified))
}

/// Runs a sub-query and returns its molecules' root atom ids (the atoms a
/// CONNECT/DISCONNECT refers to).
fn root_ids(
    sys: &AccessSystem,
    q: &Query,
    locks: Option<ReadGuard<'_>>,
) -> PrimaResult<Vec<AtomId>> {
    let resolved = validate(sys.schema(), q)?;
    let (set, _) = execute(sys, &resolved, locks)?;
    Ok(set.molecules.iter().map(|m| m.root.atom.id).collect())
}
