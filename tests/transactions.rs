//! Nested transactions (Section 4): Moss-style locking, commit
//! inheritance, selective in-transaction recovery.

use prima::{LockConfig, Prima, Value};

const DDL: &str = "
CREATE ATOM_TYPE part
  ( id : IDENTIFIER, part_no : INTEGER, name : CHAR_VAR,
    sub : SET_OF (REF_TO (part.super)),
    super : SET_OF (REF_TO (part.sub)) )
KEYS_ARE (part_no);
";

// These tests interleave conflicting transactions on a single thread, so
// a blocked acquire could never be woken — run the lock table in no-wait
// mode, which fails conflicting requests immediately (the pre-queue
// behaviour). Blocking/queueing itself is covered by tests/contention.rs.
fn db() -> Prima {
    Prima::builder().lock_config(LockConfig::no_wait()).build_with_ddl(DDL).unwrap()
}

#[test]
fn top_level_commit_makes_work_durable() {
    let db = db();
    let t = db.begin().unwrap();
    let id = t.insert_atom(0, vec![Value::Null, Value::Int(1), Value::Str("axle".into())]).unwrap();
    t.commit().unwrap();
    assert!(db.access().exists(id));
    assert_eq!(db.read(id).unwrap().values[2], Value::Str("axle".into()));
}

#[test]
fn top_level_abort_undoes_everything() {
    let db = db();
    let t = db.begin().unwrap();
    let a = t.insert_atom(0, vec![Value::Null, Value::Int(1)]).unwrap();
    let b = t.insert_atom(0, vec![Value::Null, Value::Int(2)]).unwrap();
    t.modify_atom(a, &[(2, Value::Str("renamed".into()))]).unwrap();
    t.abort().unwrap();
    assert!(!db.access().exists(a));
    assert!(!db.access().exists(b));
}

#[test]
fn subtransaction_abort_is_selective() {
    let db = db();
    let t = db.begin().unwrap();
    let keep = t.insert_atom(0, vec![Value::Null, Value::Int(1)]).unwrap();
    // Child does work and fails.
    let c = t.begin_child().unwrap();
    let gone = c.insert_atom(0, vec![Value::Null, Value::Int(2)]).unwrap();
    c.abort().unwrap();
    assert!(!db.access().exists(gone), "child's work rolled back");
    assert!(db.access().exists(keep), "parent's work untouched");
    t.commit().unwrap();
    assert!(db.access().exists(keep));
}

#[test]
fn child_commit_inherits_into_parent_abort() {
    let db = db();
    let t = db.begin().unwrap();
    let c = t.begin_child().unwrap();
    let id = c.insert_atom(0, vec![Value::Null, Value::Int(7)]).unwrap();
    c.commit().unwrap();
    assert!(db.access().exists(id), "visible after subcommit");
    // Parent aborts: the inherited work must disappear too.
    t.abort().unwrap();
    assert!(!db.access().exists(id), "subcommitted work dies with the parent");
}

#[test]
fn delete_rollback_restores_references() {
    let db = db();
    // committed base data: parent part with one sub part.
    let child = db.insert("part", &[("part_no", Value::Int(2))]).unwrap();
    let parent = db
        .insert("part", &[("part_no", Value::Int(1)), ("sub", Value::ref_set(vec![child]))])
        .unwrap();
    // Transactionally delete the child, then abort.
    let t = db.begin().unwrap();
    t.delete_atom(child).unwrap();
    // Back-reference maintenance removed child from parent.sub. (Lock-free
    // access-layer read: `db.read` would rightly conflict with t's
    // exclusive lock — this inspects t's own uncommitted state.)
    let p = db.access().read_atom(parent, None).unwrap();
    assert!(p.values[3].referenced_ids().is_empty());
    t.abort().unwrap();
    // Restored, including the association (both directions).
    assert!(db.access().exists(child));
    let p = db.read(parent).unwrap();
    assert_eq!(p.values[3].referenced_ids(), vec![child]);
    let c = db.read(child).unwrap();
    assert_eq!(c.values[4].referenced_ids(), vec![parent]);
}

#[test]
fn lock_conflicts_between_top_level_transactions() {
    let db = db();
    let id = db.insert("part", &[("part_no", Value::Int(1))]).unwrap();
    let t1 = db.begin().unwrap();
    let t2 = db.begin().unwrap();
    t1.modify_atom(id, &[(2, Value::Str("t1".into()))]).unwrap();
    let err = t2.modify_atom(id, &[(2, Value::Str("t2".into()))]).unwrap_err();
    assert!(err.to_string().contains("lock conflict"), "{err}");
    // Readers conflict with the exclusive lock too.
    assert!(t2.read_atom(id).is_err());
    t1.commit().unwrap();
    // After commit the lock is gone.
    t2.modify_atom(id, &[(2, Value::Str("t2".into()))]).unwrap();
    t2.commit().unwrap();
    assert_eq!(db.read(id).unwrap().values[2], Value::Str("t2".into()));
}

#[test]
fn siblings_conflict_but_parent_child_do_not() {
    let db = db();
    let id = db.insert("part", &[("part_no", Value::Int(1))]).unwrap();
    let t = db.begin().unwrap();
    t.modify_atom(id, &[(2, Value::Str("parent".into()))]).unwrap();
    // Child may touch what the parent holds.
    let c1 = t.begin_child().unwrap();
    c1.modify_atom(id, &[(2, Value::Str("child".into()))]).unwrap();
    // A sibling conflicts with c1's lock.
    let c2 = t.begin_child().unwrap();
    let err = c2.modify_atom(id, &[(2, Value::Str("sibling".into()))]);
    assert!(err.is_err());
    // After c1 commits (locks pass to parent), the sibling may proceed.
    c1.commit().unwrap();
    c2.modify_atom(id, &[(2, Value::Str("sibling".into()))]).unwrap();
    c2.commit().unwrap();
    t.commit().unwrap();
    assert_eq!(db.read(id).unwrap().values[2], Value::Str("sibling".into()));
}

#[test]
fn parent_cannot_commit_with_open_children() {
    let db = db();
    let t = db.begin().unwrap();
    let _c = t.begin_child().unwrap();
    // Cannot consume t while a child handle is live; use the manager API
    // directly by trying to commit: the Transaction::commit consumes, so
    // structure the test around the error.
    let result = t.commit();
    assert!(result.is_err(), "parent with active child must not commit");
}

#[test]
fn drop_without_commit_aborts() {
    let db = db();
    let id;
    {
        let t = db.begin().unwrap();
        id = t.insert_atom(0, vec![Value::Null, Value::Int(9)]).unwrap();
        // dropped here
    }
    assert!(!db.access().exists(id), "dropped transaction aborted");
}

#[test]
fn nested_rollback_with_modify_chain() {
    let db = db();
    let id = db.insert("part", &[("part_no", Value::Int(1)), ("name", Value::Str("v0".into()))]).unwrap();
    let t = db.begin().unwrap();
    t.modify_atom(id, &[(2, Value::Str("v1".into()))]).unwrap();
    let c = t.begin_child().unwrap();
    c.modify_atom(id, &[(2, Value::Str("v2".into()))]).unwrap();
    c.commit().unwrap();
    let c2 = t.begin_child().unwrap();
    c2.modify_atom(id, &[(2, Value::Str("v3".into()))]).unwrap();
    c2.abort().unwrap();
    // Lock-free inspection: t still holds the atom exclusively.
    let mid = db.access().read_atom(id, None).unwrap();
    assert_eq!(mid.values[2], Value::Str("v2".into()), "c2 undone only");
    t.abort().unwrap();
    assert_eq!(db.read(id).unwrap().values[2], Value::Str("v0".into()), "all undone");
}
