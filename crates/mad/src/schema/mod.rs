//! Schema objects of the MAD model: attribute types, atom types,
//! associations and molecule types.
//!
//! The schema level holds what the paper's DDL declares (Fig. 2.3):
//! atom types with their attribute types and key constraints, and named
//! molecule types. **Associations** are not separate schema objects —
//! exactly as in the paper they are *pairs of reference attributes* that
//! designate each other as back-references (Fig. 2.2); [`Schema::validate`]
//! checks that every reference attribute has a matching, symmetric
//! counterpart.

mod atom_type;
mod molecule_type;
mod types;

pub use atom_type::{AtomType, Attribute};
pub use molecule_type::{MoleculeGraph, MoleculeNode, MoleculeType};
pub use types::{AttrType, Cardinality, RefTarget};

use crate::value::{AtomTypeId, Value};
use std::collections::HashMap;
use std::fmt;

/// A fully resolved association endpoint: which attribute of which atom
/// type.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct AttrRef {
    pub atom_type: AtomTypeId,
    pub attr: usize,
}

/// One direction of an association: following `from`'s reference attribute
/// leads to atoms of `to.atom_type`, whose attribute `to.attr` holds the
/// back-references.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Association {
    pub from: AttrRef,
    pub to: AttrRef,
}

/// Errors raised while building or validating a schema.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SchemaError {
    DuplicateAtomType(String),
    DuplicateAttribute { atom_type: String, attr: String },
    UnknownAtomType(String),
    UnknownAttribute { atom_type: String, attr: String },
    /// The type must declare exactly one IDENTIFIER attribute.
    IdentifierCount { atom_type: String, found: usize },
    /// `REF_TO (B.y)` exists in A.x but B.y does not reference A.x back.
    AsymmetricAssociation { from: String, to: String },
    /// A reference attribute targets a non-reference attribute.
    NotAReference { atom_type: String, attr: String },
    KeyAttributeUnknown { atom_type: String, attr: String },
    DuplicateMoleculeType(String),
    UnknownMoleculeComponent { molecule: String, component: String },
    /// The edge between two molecule nodes is ambiguous or missing.
    NoAssociation { from: String, to: String },
    /// A value did not match the declared attribute type.
    TypeMismatch { atom_type: String, attr: String, detail: String },
    /// Cardinality restriction violated, e.g. a SET declared (2,2) holding
    /// three elements.
    CardinalityViolation { atom_type: String, attr: String, len: usize, card: Cardinality },
}

impl fmt::Display for SchemaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SchemaError::DuplicateAtomType(n) => write!(f, "duplicate atom type '{n}'"),
            SchemaError::DuplicateAttribute { atom_type, attr } => {
                write!(f, "duplicate attribute '{attr}' in atom type '{atom_type}'")
            }
            SchemaError::UnknownAtomType(n) => write!(f, "unknown atom type '{n}'"),
            SchemaError::UnknownAttribute { atom_type, attr } => {
                write!(f, "unknown attribute '{atom_type}.{attr}'")
            }
            SchemaError::IdentifierCount { atom_type, found } => write!(
                f,
                "atom type '{atom_type}' must declare exactly one IDENTIFIER attribute, found {found}"
            ),
            SchemaError::AsymmetricAssociation { from, to } => {
                write!(f, "association {from} -> {to} has no matching back-reference")
            }
            SchemaError::NotAReference { atom_type, attr } => {
                write!(f, "'{atom_type}.{attr}' is referenced as an association endpoint but is not a REFERENCE attribute")
            }
            SchemaError::KeyAttributeUnknown { atom_type, attr } => {
                write!(f, "KEYS_ARE names unknown attribute '{atom_type}.{attr}'")
            }
            SchemaError::DuplicateMoleculeType(n) => write!(f, "duplicate molecule type '{n}'"),
            SchemaError::UnknownMoleculeComponent { molecule, component } => {
                write!(f, "molecule type '{molecule}' uses unknown component '{component}'")
            }
            SchemaError::NoAssociation { from, to } => {
                write!(f, "no association between '{from}' and '{to}'")
            }
            SchemaError::TypeMismatch { atom_type, attr, detail } => {
                write!(f, "type mismatch for '{atom_type}.{attr}': {detail}")
            }
            SchemaError::CardinalityViolation { atom_type, attr, len, card } => write!(
                f,
                "cardinality violation for '{atom_type}.{attr}': {len} elements, declared {card}"
            ),
        }
    }
}

impl std::error::Error for SchemaError {}

/// The MAD schema: atom types, their associations, and named molecule
/// types.
#[derive(Debug, Default, Clone)]
pub struct Schema {
    types: Vec<AtomType>,
    by_name: HashMap<String, AtomTypeId>,
    molecule_types: HashMap<String, MoleculeType>,
}

impl Schema {
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds an atom type; its id is its position. Reference targets are
    /// *not* checked here (types may be declared in any order) — call
    /// [`Schema::validate`] once all types are in.
    pub fn add_atom_type(&mut self, mut at: AtomType) -> Result<AtomTypeId, SchemaError> {
        if self.by_name.contains_key(&at.name) {
            return Err(SchemaError::DuplicateAtomType(at.name.clone()));
        }
        // exactly one IDENTIFIER
        let id_count = at
            .attributes
            .iter()
            .filter(|a| matches!(a.ty, AttrType::Identifier))
            .count();
        if id_count != 1 {
            return Err(SchemaError::IdentifierCount { atom_type: at.name.clone(), found: id_count });
        }
        // unique attribute names
        for (i, a) in at.attributes.iter().enumerate() {
            if at.attributes[..i].iter().any(|b| b.name == a.name) {
                return Err(SchemaError::DuplicateAttribute {
                    atom_type: at.name.clone(),
                    attr: a.name.clone(),
                });
            }
        }
        // keys must exist
        for k in &at.keys {
            if !at.attributes.iter().any(|a| &a.name == k) {
                return Err(SchemaError::KeyAttributeUnknown {
                    atom_type: at.name.clone(),
                    attr: k.clone(),
                });
            }
        }
        let id = self.types.len() as AtomTypeId;
        at.id = id;
        self.by_name.insert(at.name.clone(), id);
        self.types.push(at);
        Ok(id)
    }

    /// Checks that every reference attribute's target exists and that the
    /// target references back — the symmetry invariant of Fig. 2.2.
    pub fn validate(&self) -> Result<(), SchemaError> {
        for at in &self.types {
            for attr in &at.attributes {
                let Some(target) = attr.ty.ref_target() else { continue };
                let to_type = self
                    .type_by_name(&target.type_name)
                    .ok_or_else(|| SchemaError::UnknownAtomType(target.type_name.clone()))?;
                let to_attr = to_type
                    .attribute(&target.attr_name)
                    .ok_or_else(|| SchemaError::UnknownAttribute {
                        atom_type: target.type_name.clone(),
                        attr: target.attr_name.clone(),
                    })?;
                let Some(back) = to_attr.ty.ref_target() else {
                    return Err(SchemaError::NotAReference {
                        atom_type: target.type_name.clone(),
                        attr: target.attr_name.clone(),
                    });
                };
                if back.type_name != at.name || back.attr_name != attr.name {
                    return Err(SchemaError::AsymmetricAssociation {
                        from: format!("{}.{}", at.name, attr.name),
                        to: format!("{}.{}", target.type_name, target.attr_name),
                    });
                }
            }
        }
        Ok(())
    }

    pub fn atom_type(&self, id: AtomTypeId) -> Option<&AtomType> {
        self.types.get(id as usize)
    }

    pub fn type_by_name(&self, name: &str) -> Option<&AtomType> {
        self.by_name.get(name).map(|&id| &self.types[id as usize])
    }

    pub fn type_id(&self, name: &str) -> Option<AtomTypeId> {
        self.by_name.get(name).copied()
    }

    pub fn atom_types(&self) -> &[AtomType] {
        &self.types
    }

    /// The association leaving `from.attr`, fully resolved, if that
    /// attribute is a reference. Requires a validated schema.
    pub fn association_of(&self, from_type: AtomTypeId, attr: usize) -> Option<Association> {
        let at = self.atom_type(from_type)?;
        let a = at.attributes.get(attr)?;
        let target = a.ty.ref_target()?;
        let to_type = self.type_by_name(&target.type_name)?;
        let to_attr = to_type.attribute_index(&target.attr_name)?;
        Some(Association {
            from: AttrRef { atom_type: from_type, attr },
            to: AttrRef { atom_type: to_type.id, attr: to_attr },
        })
    }

    /// All associations in the schema (each direction listed once).
    pub fn associations(&self) -> Vec<Association> {
        let mut out = Vec::new();
        for at in &self.types {
            for (i, _) in at.attributes.iter().enumerate() {
                if let Some(assoc) = self.association_of(at.id, i) {
                    out.push(assoc);
                }
            }
        }
        out
    }

    /// Finds the association connecting two atom types, optionally
    /// disambiguated by the attribute name on the `from` side (the
    /// `solid.sub - solid` notation of Fig. 2.3c).
    #[allow(clippy::unwrap_used, clippy::expect_used)]
    pub fn association_between(
        &self,
        from: AtomTypeId,
        to: AtomTypeId,
        via_attr: Option<&str>,
    ) -> Result<Association, SchemaError> {
        let from_type = self.atom_type(from).ok_or_else(|| {
            SchemaError::UnknownAtomType(format!("#{from}"))
        })?;
        let mut candidates = Vec::new();
        for (i, a) in from_type.attributes.iter().enumerate() {
            if let Some(t) = a.ty.ref_target() {
                if self.type_id(&t.type_name) == Some(to)
                    && via_attr.is_none_or(|v| v == a.name)
                {
                    // lint: allow(error-hygiene, association ids come from the association table iterated here)
                    candidates.push(self.association_of(from, i).expect("validated"));
                }
            }
        }
        match candidates.len() {
            1 => Ok(candidates[0]),
            _ => Err(SchemaError::NoAssociation {
                from: from_type.name.clone(),
                to: self
                    .atom_type(to).map_or_else(|| format!("#{to}"), |t| t.name.clone()),
            }),
        }
    }

    /// Registers a named molecule type (Fig. 2.3c). Structure resolution
    /// against atom types happens in the data system's query validation.
    pub fn define_molecule_type(&mut self, mt: MoleculeType) -> Result<(), SchemaError> {
        if self.molecule_types.contains_key(&mt.name) {
            return Err(SchemaError::DuplicateMoleculeType(mt.name.clone()));
        }
        self.molecule_types.insert(mt.name.clone(), mt);
        Ok(())
    }

    pub fn molecule_type(&self, name: &str) -> Option<&MoleculeType> {
        self.molecule_types.get(name)
    }

    pub fn molecule_types(&self) -> impl Iterator<Item = &MoleculeType> {
        self.molecule_types.values()
    }

    /// Type-checks a full attribute assignment for an atom of `type_id`.
    /// `values` must be positionally aligned with the declared attributes;
    /// `Null` is accepted everywhere except the IDENTIFIER slot.
    pub fn check_atom_values(
        &self,
        type_id: AtomTypeId,
        values: &[Value],
    ) -> Result<(), SchemaError> {
        let at = self
            .atom_type(type_id)
            .ok_or_else(|| SchemaError::UnknownAtomType(format!("#{type_id}")))?;
        if values.len() != at.attributes.len() {
            return Err(SchemaError::TypeMismatch {
                atom_type: at.name.clone(),
                attr: "<arity>".into(),
                detail: format!(
                    "expected {} attribute values, got {}",
                    at.attributes.len(),
                    values.len()
                ),
            });
        }
        for (attr, v) in at.attributes.iter().zip(values) {
            attr.ty.check_value(v).map_err(|detail| SchemaError::TypeMismatch {
                atom_type: at.name.clone(),
                attr: attr.name.clone(),
                detail,
            })?;
            // Max-cardinality is enforced eagerly; min-cardinality is a
            // completeness condition checked by integrity validation
            // (atoms are built up incrementally).
            if let Some((card, len)) = attr.ty.cardinality_of(v) {
                if let Some(max) = card.max {
                    if len > max as usize {
                        return Err(SchemaError::CardinalityViolation {
                            atom_type: at.name.clone(),
                            attr: attr.name.clone(),
                            len,
                            card,
                        });
                    }
                }
            }
        }
        Ok(())
    }

    /// Checks *min*-cardinalities of one atom's values: the completeness
    /// side of the paper's "refined structural integrity".
    pub fn check_min_cardinalities(
        &self,
        type_id: AtomTypeId,
        values: &[Value],
    ) -> Result<(), SchemaError> {
        let at = self
            .atom_type(type_id)
            .ok_or_else(|| SchemaError::UnknownAtomType(format!("#{type_id}")))?;
        for (attr, v) in at.attributes.iter().zip(values) {
            if let Some((card, len)) = attr.ty.cardinality_of(v) {
                if len < card.min as usize {
                    return Err(SchemaError::CardinalityViolation {
                        atom_type: at.name.clone(),
                        attr: attr.name.clone(),
                        len,
                        card,
                    });
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_type_schema() -> Schema {
        // ATi (1:n) ATj exactly as in Fig. 2.2's declaration example.
        let mut s = Schema::new();
        s.add_atom_type(AtomType::build(
            "ati",
            vec![
                Attribute::new("idi", AttrType::Identifier),
                Attribute::new(
                    "ati_atj",
                    AttrType::ref_set("atj", "atj_ati", Cardinality::var(0)),
                ),
            ],
            vec![],
        ))
        .unwrap();
        s.add_atom_type(AtomType::build(
            "atj",
            vec![
                Attribute::new("idj", AttrType::Identifier),
                Attribute::new("atj_ati", AttrType::reference("ati", "ati_atj")),
            ],
            vec![],
        ))
        .unwrap();
        s
    }

    #[test]
    fn fig2_2_one_to_n_association_validates() {
        let s = two_type_schema();
        s.validate().unwrap();
        let assocs = s.associations();
        assert_eq!(assocs.len(), 2, "both directions listed");
        let a = s.association_between(0, 1, None).unwrap();
        assert_eq!(a.to.atom_type, 1);
    }

    #[test]
    fn asymmetric_association_rejected() {
        let mut s = Schema::new();
        s.add_atom_type(AtomType::build(
            "a",
            vec![
                Attribute::new("id", AttrType::Identifier),
                Attribute::new("b_ref", AttrType::reference("b", "a_ref")),
            ],
            vec![],
        ))
        .unwrap();
        // b.a_ref points at the WRONG attribute of a.
        s.add_atom_type(AtomType::build(
            "b",
            vec![
                Attribute::new("id", AttrType::Identifier),
                Attribute::new("a_ref", AttrType::reference("a", "id")),
            ],
            vec![],
        ))
        .unwrap();
        assert!(matches!(
            s.validate(),
            Err(SchemaError::NotAReference { .. }) | Err(SchemaError::AsymmetricAssociation { .. })
        ));
    }

    #[test]
    fn missing_identifier_rejected() {
        let mut s = Schema::new();
        let err = s
            .add_atom_type(AtomType::build(
                "x",
                vec![Attribute::new("n", AttrType::Integer)],
                vec![],
            ))
            .unwrap_err();
        assert!(matches!(err, SchemaError::IdentifierCount { found: 0, .. }));
    }

    #[test]
    fn duplicate_type_and_attribute_rejected() {
        let mut s = two_type_schema();
        let err = s
            .add_atom_type(AtomType::build(
                "ati",
                vec![Attribute::new("id", AttrType::Identifier)],
                vec![],
            ))
            .unwrap_err();
        assert!(matches!(err, SchemaError::DuplicateAtomType(_)));
        let err = s
            .add_atom_type(AtomType::build(
                "dup",
                vec![
                    Attribute::new("id", AttrType::Identifier),
                    Attribute::new("x", AttrType::Integer),
                    Attribute::new("x", AttrType::Real),
                ],
                vec![],
            ))
            .unwrap_err();
        assert!(matches!(err, SchemaError::DuplicateAttribute { .. }));
    }

    #[test]
    fn unknown_key_attribute_rejected() {
        let mut s = Schema::new();
        let err = s
            .add_atom_type(AtomType::build(
                "x",
                vec![Attribute::new("id", AttrType::Identifier)],
                vec!["nope".into()],
            ))
            .unwrap_err();
        assert!(matches!(err, SchemaError::KeyAttributeUnknown { .. }));
    }

    #[test]
    fn value_checking() {
        let s = two_type_schema();
        use crate::value::AtomId;
        // Correct values.
        s.check_atom_values(
            0,
            &[Value::Id(AtomId::new(0, 1)), Value::ref_set(vec![AtomId::new(1, 1)])],
        )
        .unwrap();
        // Wrong arity.
        assert!(s.check_atom_values(0, &[Value::Null]).is_err());
        // Wrong kind: integer where a ref set is declared.
        assert!(s
            .check_atom_values(0, &[Value::Id(AtomId::new(0, 1)), Value::Int(3)])
            .is_err());
    }

    #[test]
    fn cardinality_enforced() {
        let mut s = Schema::new();
        s.add_atom_type(AtomType::build(
            "edge",
            vec![
                Attribute::new("id", AttrType::Identifier),
                Attribute::new(
                    "boundary",
                    AttrType::ref_set("point", "line", Cardinality::exact(2)),
                ),
            ],
            vec![],
        ))
        .unwrap();
        s.add_atom_type(AtomType::build(
            "point",
            vec![
                Attribute::new("id", AttrType::Identifier),
                Attribute::new("line", AttrType::ref_set("edge", "boundary", Cardinality::var(1))),
            ],
            vec![],
        ))
        .unwrap();
        use crate::value::AtomId;
        let three = Value::ref_set(vec![AtomId::new(1, 1), AtomId::new(1, 2), AtomId::new(1, 3)]);
        let err = s
            .check_atom_values(0, &[Value::Id(AtomId::new(0, 1)), three])
            .unwrap_err();
        assert!(matches!(err, SchemaError::CardinalityViolation { len: 3, .. }));
        // Min-cardinality: one boundary point is incomplete for an edge.
        let one = Value::ref_set(vec![AtomId::new(1, 1)]);
        s.check_atom_values(0, &[Value::Id(AtomId::new(0, 1)), one.clone()]).unwrap();
        assert!(s
            .check_min_cardinalities(0, &[Value::Id(AtomId::new(0, 1)), one])
            .is_err());
    }

    #[test]
    fn molecule_type_registry() {
        let mut s = two_type_schema();
        let mt = MoleculeType::linear("pair", &["ati", "atj"]);
        s.define_molecule_type(mt.clone()).unwrap();
        assert!(s.molecule_type("pair").is_some());
        assert!(matches!(
            s.define_molecule_type(mt),
            Err(SchemaError::DuplicateMoleculeType(_))
        ));
    }
}
