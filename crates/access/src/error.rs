//! Error type of the access system.

use prima_mad::codec::CodecError;
use prima_mad::value::AtomId;
use prima_mad::SchemaError;
use prima_storage::StorageError;
use std::fmt;

pub type AccessResult<T> = Result<T, AccessError>;

/// Errors raised at the atom-oriented interface.
#[derive(Debug, Clone, PartialEq)]
pub enum AccessError {
    /// Propagated storage-system failure.
    Storage(StorageError),
    /// Schema/type violation.
    Schema(SchemaError),
    /// A physical record could not be decoded.
    Codec(CodecError),
    /// The atom id is not (or no longer) allocated.
    NoSuchAtom(AtomId),
    /// Restore attempted for an atom id that is still live.
    AtomAlreadyExists(AtomId),
    /// The atom type id is unknown to this access system.
    NoSuchAtomType(u16),
    /// A `KEYS_ARE` uniqueness constraint would be violated.
    DuplicateKey { atom_type: String, attr: String, value: String },
    /// A referenced atom does not exist (dangling reference on insert or
    /// modify).
    DanglingReference { from: AtomId, to: AtomId },
    /// The reference targets an atom of the wrong type for the
    /// association.
    ReferenceTypeMismatch { attr: String, expected: u16, got: AtomId },
    /// A record exceeds the maximum single-page payload; only atom
    /// clusters (page sequences) may exceed it.
    RecordTooLarge { len: usize, max: usize },
    /// A named tuning structure does not exist.
    NoSuchStructure(String),
    /// A tuning structure with this name already exists.
    DuplicateStructure(String),
    /// Structure exists but does not fit the operation (e.g. sort scan on
    /// an access path over different attributes).
    StructureMismatch { name: String, detail: String },
    /// Attribute index out of range for the atom type.
    BadAttribute { atom_type: u16, attr: usize },
    /// Attempt to modify the IDENTIFIER attribute (Section 3.2 forbids
    /// it: "excluding the logical address").
    IdentifierImmutable(AtomId),
    /// Scan has been exhausted or was used after close.
    ScanClosed,
    /// The characteristic atom type of a cluster operation is wrong.
    NotACharacteristicAtom(AtomId),
    /// Restart recovery found persistent state inconsistent with the
    /// checkpoint snapshot (e.g. schema/segment count drift).
    RecoveryMismatch(String),
}

impl fmt::Display for AccessError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AccessError::Storage(e) => write!(f, "storage: {e}"),
            AccessError::Schema(e) => write!(f, "schema: {e}"),
            AccessError::Codec(e) => write!(f, "codec: {e}"),
            AccessError::NoSuchAtom(id) => write!(f, "no such atom {id}"),
            AccessError::AtomAlreadyExists(id) => write!(f, "atom {id} already exists"),
            AccessError::NoSuchAtomType(t) => write!(f, "no such atom type #{t}"),
            AccessError::DuplicateKey { atom_type, attr, value } => {
                write!(f, "duplicate key {atom_type}.{attr} = {value}")
            }
            AccessError::DanglingReference { from, to } => {
                write!(f, "dangling reference from {from} to {to}")
            }
            AccessError::ReferenceTypeMismatch { attr, expected, got } => {
                write!(f, "reference in '{attr}' must target type #{expected}, got {got}")
            }
            AccessError::RecordTooLarge { len, max } => {
                write!(f, "record of {len} bytes exceeds max {max}")
            }
            AccessError::NoSuchStructure(n) => write!(f, "no such tuning structure '{n}'"),
            AccessError::DuplicateStructure(n) => {
                write!(f, "tuning structure '{n}' already exists")
            }
            AccessError::StructureMismatch { name, detail } => {
                write!(f, "structure '{name}' unusable: {detail}")
            }
            AccessError::BadAttribute { atom_type, attr } => {
                write!(f, "attribute index {attr} out of range for type #{atom_type}")
            }
            AccessError::IdentifierImmutable(id) => {
                write!(f, "the IDENTIFIER of {id} cannot be modified")
            }
            AccessError::ScanClosed => write!(f, "scan is closed or exhausted"),
            AccessError::NotACharacteristicAtom(id) => {
                write!(f, "{id} is not a characteristic atom of a cluster type")
            }
            AccessError::RecoveryMismatch(detail) => {
                write!(f, "restart recovery mismatch: {detail}")
            }
        }
    }
}

impl std::error::Error for AccessError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            AccessError::Storage(e) => Some(e),
            AccessError::Schema(e) => Some(e),
            AccessError::Codec(e) => Some(e),
            _ => None,
        }
    }
}

impl From<StorageError> for AccessError {
    fn from(e: StorageError) -> Self {
        AccessError::Storage(e)
    }
}

impl From<SchemaError> for AccessError {
    fn from(e: SchemaError) -> Self {
        AccessError::Schema(e)
    }
}

impl From<CodecError> for AccessError {
    fn from(e: CodecError) -> Self {
        AccessError::Codec(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_and_display() {
        let e: AccessError = StorageError::UnknownSegment(3).into();
        assert!(e.to_string().contains("storage"));
        let e = AccessError::NoSuchAtom(AtomId::new(2, 9));
        assert_eq!(e.to_string(), "no such atom @2:9");
        let e = AccessError::DuplicateKey {
            atom_type: "solid".into(),
            attr: "solid_no".into(),
            value: "4711".into(),
        };
        assert!(e.to_string().contains("solid_no"));
    }
}
