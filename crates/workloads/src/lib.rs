//! # prima-workloads — synthetic engineering workloads for PRIMA
//!
//! The paper motivates PRIMA with three application areas investigated
//! through sizable prototypes (Section 1): **VLSI circuit design**,
//! **construction of solids in 3D modeling**, and **map handling in
//! geographic information systems** \[HHLM87\]. The real CAD systems and
//! data are not available; these generators produce synthetic databases
//! with the same structural properties the paper calls out:
//!
//! * "a considerable share of meshed (non-hierarchical) structures due to
//!   extensive occurrence of n:m relationships" — shared faces between
//!   adjacent solids, nets touching many cells, map edges between two
//!   faces;
//! * recursion — assembly hierarchies of solids (`sub`/`super`);
//! * non-uniform reference locality — queries touch subobjects
//!   selectively.
//!
//! [`modeling`] additionally builds the *same* boundary-representation
//! data under the three modeling disciplines of Fig. 2.1 (hierarchical
//! with redundancy, network with relation records, direct/symmetric MAD)
//! so experiment E-F2.1 can compare them.

pub mod brep;
pub mod crash;
pub mod exec;
pub mod map;
pub mod modeling;
pub mod vlsi;

pub use brep::{BrepConfig, BrepStats};
pub use modeling::{ModelingApproach, ModelingStats};
