//! MVCC version store: snapshot reads that never take a lock.
//!
//! PRIMA's workload is checkout/analyze/checkin — read-dominated. Under
//! strict 2PL (PR 5/6) every reader of an atom type serialises behind
//! any uncommitted writer of that type via the extension lock. The
//! version store removes readers from the lock table entirely:
//!
//! * **Writers** install a *version entry* — the before-image of every
//!   atom they touch (the same image the logical undo log carries) —
//!   **before** the base storage is mutated, chained under the writer's
//!   transaction. Writers keep strict 2PL against each other; nothing
//!   about write-write conflicts changes.
//! * **Readers** register a [`Snapshot`] at statement start: a single
//!   `u64` position in commit order ([`Inner::commit_seq`]). Every base
//!   read is then *resolved* through the store — if a chain says the
//!   atom changed after the snapshot (or is dirty right now), the
//!   reader gets the before-image instead of the base value; if the
//!   chain says the atom did not yet exist, the reader skips it. No
//!   lock is acquired anywhere on the path.
//!
//! # Version entries and visibility
//!
//! A chain holds entries **oldest-first**. Each entry
//! `{owner, end, image}` records "`image` was the atom's committed
//! value until commit `end`" — `end == None` means the overwrite is
//! still uncommitted (+∞), `image == None` means the atom did not
//! exist at that point (it was inserted by `owner`). The value visible
//! to snapshot `S` is the image of the **oldest entry with
//! `end > S`**; if no entry qualifies, the base value is visible
//! unchanged.
//!
//! Commit stamps a writer's entries with the next commit position
//! (keeping only the *deepest* entry per atom — intermediate images of
//! a multi-update transaction were never committed state). Abort also
//! stamps (with a bumped position) rather than deleting: a reader that
//! caught the dirty base value just before rollback restored it must
//! still resolve to the before-image — stamped entries age out through
//! the same GC as committed ones.
//!
//! # The race discipline
//!
//! Correctness under concurrent readers rests on two orderings, the
//! read-path mirror of "log the undo before the page image":
//!
//! 1. writers install the version entry **before** mutating base
//!    storage;
//! 2. readers read base **first**, then resolve through the store.
//!
//! Whatever the interleaving, a reader that saw a dirty/new base value
//! finds the entry that corrects it, and a reader whose resolve came
//! up empty is guaranteed its base read predated the mutation.
//!
//! # Garbage collection
//!
//! Stamped entries are queued per commit position; the reclaim
//! watermark is the **oldest active snapshot** (or the current commit
//! position when none is open). A group whose position is at or below
//! the watermark can no longer be seen by any present or future
//! snapshot and is dropped — with no readers open, versions die at the
//! commit that obsoleted them. [`VersionStats`] counts installs,
//! reclaims, snapshot reads and chain shape for observability
//! (`Prima::version_stats`).
//!
//! The store is volatile by design: restart recovery rebuilds the
//! kernel with an empty store (`Prima::open`), because the WAL undo
//! path already erases every uncommitted version from base storage —
//! crash semantics need no MVCC persistence.

use super::TxnId;
use parking_lot::{rank, Mutex};
use prima_access::Atom;
use prima_mad::value::{AtomId, AtomTypeId};
use std::collections::{BTreeMap, HashMap, HashSet, VecDeque};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

/// One link in an atom's version chain (see module docs for the
/// visibility rule).
struct VersionEntry {
    /// Transaction whose overwrite this before-image belongs to.
    owner: TxnId,
    /// Commit position at which the overwrite became permanent;
    /// `None` while the owner is active (+∞ for visibility).
    end: Option<u64>,
    /// The atom's value before the overwrite; `None` if it did not
    /// exist (the owner inserted it).
    image: Option<Atom>,
}

struct Inner {
    /// Version chains, oldest entry first.
    chains: HashMap<AtomId, Vec<VersionEntry>>,
    /// Atoms with entries owned by each active transaction.
    by_txn: HashMap<TxnId, Vec<AtomId>>,
    /// All atoms with live chains, per type — the "extras" index that
    /// lets a snapshot scan find atoms a dirty base scan cannot show it
    /// (deleted in base, or filtered out by a pushed-down predicate on
    /// the dirty value).
    by_type: HashMap<AtomTypeId, HashSet<AtomId>>,
    /// Position in commit order; bumped by every stamping commit or
    /// abort. A snapshot is just a sampled value of this counter.
    commit_seq: u64,
    /// Active snapshots: position → number of registered readers.
    snapshots: BTreeMap<u64, usize>,
    /// Stamped entry groups awaiting reclaim, in commit order.
    reclaim: VecDeque<(u64, Vec<AtomId>)>,
}

/// Monotone counters for the version store (lock-free increments; the
/// shape gauges live in [`VersionStatsSnapshot`], sampled under the
/// store mutex).
#[derive(Default)]
pub struct VersionStats {
    versions_installed: AtomicU64,
    versions_reclaimed: AtomicU64,
    snapshots_opened: AtomicU64,
    snapshot_reads: AtomicU64,
    max_chain_len: AtomicU64,
}

/// Point-in-time view of [`VersionStats`] plus store-shape gauges.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct VersionStatsSnapshot {
    /// Version entries installed by writers (before-images chained).
    pub versions_installed: u64,
    /// Entries dropped by GC (including intermediate images deduped at
    /// commit stamping).
    pub versions_reclaimed: u64,
    /// Snapshots registered by readers.
    pub snapshots_opened: u64,
    /// Base reads resolved through the store on the snapshot path.
    pub snapshot_reads: u64,
    /// Longest chain ever observed at install time.
    pub max_chain_len: u64,
    /// Entries currently live across all chains.
    pub live_versions: u64,
    /// Atoms currently carrying a chain.
    pub live_chains: u64,
    /// Commit positions between the oldest active snapshot and now
    /// (0 when no snapshot is open) — how much history GC must retain.
    pub oldest_snapshot_lag: u64,
}

impl VersionStatsSnapshot {
    /// Counter deltas since `before`; gauges keep their current values.
    pub fn since(&self, before: &VersionStatsSnapshot) -> VersionStatsSnapshot {
        VersionStatsSnapshot {
            versions_installed: self.versions_installed - before.versions_installed,
            versions_reclaimed: self.versions_reclaimed - before.versions_reclaimed,
            snapshots_opened: self.snapshots_opened - before.snapshots_opened,
            snapshot_reads: self.snapshot_reads - before.snapshot_reads,
            max_chain_len: self.max_chain_len,
            live_versions: self.live_versions,
            live_chains: self.live_chains,
            oldest_snapshot_lag: self.oldest_snapshot_lag,
        }
    }

    /// One-line human-readable summary.
    pub fn detail(&self) -> String {
        format!(
            "versions: {} installed, {} reclaimed, {} live in {} chains (max len {}); \
             snapshots: {} opened, {} reads resolved, lag {}",
            self.versions_installed,
            self.versions_reclaimed,
            self.live_versions,
            self.live_chains,
            self.max_chain_len,
            self.snapshots_opened,
            self.snapshot_reads,
            self.oldest_snapshot_lag,
        )
    }
}

impl prima_storage::StatsSnapshot for VersionStatsSnapshot {
    const FAMILY: &'static str = "version";

    fn delta(&self, earlier: &Self) -> Self {
        self.since(earlier)
    }

    fn fields(&self) -> Vec<(&'static str, u64)> {
        vec![
            ("versions_installed", self.versions_installed),
            ("versions_reclaimed", self.versions_reclaimed),
            ("snapshots_opened", self.snapshots_opened),
            ("snapshot_reads", self.snapshot_reads),
            ("max_chain_len", self.max_chain_len),
            ("live_versions", self.live_versions),
            ("live_chains", self.live_chains),
            ("oldest_snapshot_lag", self.oldest_snapshot_lag),
        ]
    }
}

/// Outcome of resolving one base read against a snapshot.
pub enum Resolution {
    /// No chain says otherwise: the base value (or base absence) is
    /// what the snapshot sees.
    Unchanged,
    /// The snapshot sees this before-image instead of the base value.
    Image(Atom),
    /// The atom did not exist at the snapshot: skip it even if base
    /// has it.
    Invisible,
}

/// The version store. One per kernel, shared by the transaction
/// manager (writer hooks) and every snapshot reader.
pub struct VersionStore {
    // lockrank: mvcc.0 — chain table + snapshot registry; every hold is
    // transient (no I/O, no nested locks).
    inner: Mutex<Inner>,
    stats: VersionStats,
    /// Lock-free fast path: number of live chains. While 0, resolves
    /// return [`Resolution::Unchanged`] without touching the mutex —
    /// the single-writer-free case pays nothing per read. Release/
    /// Acquire pairing with the base-page synchronisation makes the
    /// shortcut sound (see the race discipline in the module docs).
    live_chains: AtomicUsize,
}

impl VersionStore {
    pub fn new() -> Arc<VersionStore> {
        Arc::new(VersionStore {
            inner: Mutex::new_ranked(Inner {
                chains: HashMap::new(),
                by_txn: HashMap::new(),
                by_type: HashMap::new(),
                commit_seq: 0,
                snapshots: BTreeMap::new(),
                reclaim: VecDeque::new(),
            }, rank::MVCC),
            stats: VersionStats::default(),
            live_chains: AtomicUsize::new(0),
        })
    }

    /// Registers a reader at the current commit position. The snapshot
    /// holds back GC until dropped.
    pub fn begin_snapshot(self: &Arc<Self>) -> Snapshot {
        let mut inner = self.inner.lock();
        let seq = inner.commit_seq;
        *inner.snapshots.entry(seq).or_insert(0) += 1;
        drop(inner);
        self.stats.snapshots_opened.fetch_add(1, Ordering::Relaxed);
        Snapshot { store: Arc::clone(self), seq }
    }

    /// Chains `image` (the atom's value before `txn`'s overwrite;
    /// `None` for an insert) under `txn`. Must run **before** the base
    /// mutation it shadows.
    pub fn install(&self, txn: TxnId, id: AtomId, image: Option<Atom>) {
        let mut inner = self.inner.lock();
        let chain = inner.chains.entry(id).or_default();
        let fresh = chain.is_empty();
        chain.push(VersionEntry { owner: txn, end: None, image });
        let len = chain.len() as u64;
        if fresh {
            inner.by_type.entry(id.atom_type).or_default().insert(id);
            self.live_chains.fetch_add(1, Ordering::Release);
        }
        inner.by_txn.entry(txn).or_default().push(id);
        drop(inner);
        self.stats.versions_installed.fetch_add(1, Ordering::Relaxed);
        self.stats.max_chain_len.fetch_max(len, Ordering::Relaxed);
    }

    /// Moss subcommit: the child's entries are inherited by the parent
    /// (they become permanent — or vanish — with the top level).
    pub fn transfer(&self, from: TxnId, to: TxnId) {
        let mut inner = self.inner.lock();
        let Some(ids) = inner.by_txn.remove(&from) else { return };
        for id in &ids {
            if let Some(chain) = inner.chains.get_mut(id) {
                for e in chain.iter_mut().filter(|e| e.owner == from) {
                    e.owner = to;
                }
            }
        }
        inner.by_txn.entry(to).or_default().extend(ids);
    }

    /// Stamps `txn`'s entries at the next commit position. Only the
    /// deepest entry per atom survives — it carries the value from
    /// before the transaction's *first* touch; intermediate images were
    /// never committed state and are reclaimed on the spot.
    pub fn commit_stamp(&self, txn: TxnId) {
        let mut inner = self.inner.lock();
        let Some(ids) = inner.by_txn.remove(&txn) else { return };
        let c = inner.commit_seq + 1;
        inner.commit_seq = c;
        let mut stamped: Vec<AtomId> = Vec::with_capacity(ids.len());
        let mut dropped = 0u64;
        for id in ids {
            if stamped.contains(&id) {
                continue;
            }
            let Some(chain) = inner.chains.get_mut(&id) else { continue };
            let mut kept = false;
            chain.retain_mut(|e| {
                if e.owner != txn {
                    return true;
                }
                if kept {
                    dropped += 1;
                    return false;
                }
                kept = true;
                e.end = Some(c);
                true
            });
            if kept {
                stamped.push(id);
            }
        }
        if !stamped.is_empty() {
            inner.reclaim.push_back((c, stamped));
        }
        self.gc_locked(&mut inner, dropped);
    }

    /// Drops `txn`'s version bookkeeping on rollback. Entries are
    /// *stamped* (at a bumped position), not deleted: a reader whose
    /// base read caught the dirty value resolves to the before-image
    /// until every snapshot from before the abort has closed; after
    /// that the image equals the restored base value and GC drops it.
    pub fn rollback(&self, txn: TxnId) {
        let mut inner = self.inner.lock();
        let Some(ids) = inner.by_txn.remove(&txn) else { return };
        let c = inner.commit_seq + 1;
        inner.commit_seq = c;
        let mut stamped: Vec<AtomId> = Vec::with_capacity(ids.len());
        for id in ids {
            if stamped.contains(&id) {
                continue;
            }
            let Some(chain) = inner.chains.get_mut(&id) else { continue };
            let mut any = false;
            for e in chain.iter_mut().filter(|e| e.owner == txn) {
                e.end = Some(c);
                any = true;
            }
            if any {
                stamped.push(id);
            }
        }
        if !stamped.is_empty() {
            inner.reclaim.push_back((c, stamped));
        }
        self.gc_locked(&mut inner, 0);
    }

    /// Resolves one base read for snapshot `seq` (module docs:
    /// oldest entry with `end > seq`, else base).
    pub fn resolve(&self, seq: u64, id: AtomId) -> Resolution {
        self.stats.snapshot_reads.fetch_add(1, Ordering::Relaxed);
        if self.live_chains.load(Ordering::Acquire) == 0 {
            return Resolution::Unchanged;
        }
        let inner = self.inner.lock();
        Self::resolve_locked(&inner, seq, id)
    }

    fn resolve_locked(inner: &Inner, seq: u64, id: AtomId) -> Resolution {
        let Some(chain) = inner.chains.get(&id) else { return Resolution::Unchanged };
        for e in chain {
            if e.end.is_none_or(|end| end > seq) {
                return match &e.image {
                    Some(atom) => Resolution::Image(atom.clone()),
                    None => Resolution::Invisible,
                };
            }
        }
        Resolution::Unchanged
    }

    /// Atoms of `ty` that a base scan may have missed (deleted from
    /// base, or carrying a dirty value the scan's pushed-down predicate
    /// filtered out): every chained atom of the type not in `seen`
    /// whose visible version exists. The caller re-qualifies the
    /// returned images against the full root predicate.
    pub fn visible_extras(&self, seq: u64, ty: AtomTypeId, seen: &HashSet<AtomId>) -> Vec<Atom> {
        if self.live_chains.load(Ordering::Acquire) == 0 {
            return Vec::new();
        }
        let inner = self.inner.lock();
        let Some(ids) = inner.by_type.get(&ty) else { return Vec::new() };
        let mut out = Vec::new();
        for id in ids {
            if seen.contains(id) {
                continue;
            }
            if let Resolution::Image(atom) = Self::resolve_locked(&inner, seq, *id) {
                out.push(atom);
            }
        }
        out
    }

    fn end_snapshot(&self, seq: u64) {
        let mut inner = self.inner.lock();
        if let Some(n) = inner.snapshots.get_mut(&seq) {
            *n -= 1;
            if *n == 0 {
                inner.snapshots.remove(&seq);
            }
        }
        self.gc_locked(&mut inner, 0);
    }

    /// Reclaims every stamped group at or below the watermark (oldest
    /// active snapshot, else the current commit position): no present
    /// or future snapshot can resolve to those entries any more.
    fn gc_locked(&self, inner: &mut Inner, mut reclaimed: u64) {
        let watermark =
            inner.snapshots.keys().next().copied().unwrap_or(inner.commit_seq);
        while let Some((c, ids)) = inner.reclaim.pop_front() {
            if c > watermark {
                // Not yet reclaimable: put it back and stop (the deque is
                // ordered by commit position).
                inner.reclaim.push_front((c, ids));
                break;
            }
            for id in ids {
                let Some(chain) = inner.chains.get_mut(&id) else { continue };
                let before = chain.len();
                chain.retain(|e| e.end != Some(c));
                reclaimed += (before - chain.len()) as u64;
                if chain.is_empty() {
                    inner.chains.remove(&id);
                    if let Some(set) = inner.by_type.get_mut(&id.atom_type) {
                        set.remove(&id);
                        if set.is_empty() {
                            inner.by_type.remove(&id.atom_type);
                        }
                    }
                    self.live_chains.fetch_sub(1, Ordering::Release);
                }
            }
        }
        if reclaimed > 0 {
            self.stats.versions_reclaimed.fetch_add(reclaimed, Ordering::Relaxed);
        }
    }

    /// Counters plus current store shape.
    pub fn stats(&self) -> VersionStatsSnapshot {
        let inner = self.inner.lock();
        let live_versions = inner.chains.values().map(|c| c.len() as u64).sum();
        let oldest_snapshot_lag = inner
            .snapshots
            .keys()
            .next()
            .map_or(0, |oldest| inner.commit_seq - oldest);
        VersionStatsSnapshot {
            versions_installed: self.stats.versions_installed.load(Ordering::Relaxed),
            versions_reclaimed: self.stats.versions_reclaimed.load(Ordering::Relaxed),
            snapshots_opened: self.stats.snapshots_opened.load(Ordering::Relaxed),
            snapshot_reads: self.stats.snapshot_reads.load(Ordering::Relaxed),
            max_chain_len: self.stats.max_chain_len.load(Ordering::Relaxed),
            live_versions,
            live_chains: inner.chains.len() as u64,
            oldest_snapshot_lag,
        }
    }
}

/// A registered read position in commit order. Everything resolved
/// through one snapshot sees the database exactly as of its
/// registration, however long it lives and whatever commits in the
/// meantime; dropping it releases its hold on GC.
pub struct Snapshot {
    store: Arc<VersionStore>,
    seq: u64,
}

impl Snapshot {
    /// The version of `id` this snapshot sees, given the base read
    /// outcome (`None` = not in base). `None` means the atom is not
    /// visible at all.
    pub fn visible(&self, id: AtomId, base: Option<Atom>) -> Option<Atom> {
        match self.store.resolve(self.seq, id) {
            Resolution::Unchanged => base,
            Resolution::Image(atom) => Some(atom),
            Resolution::Invisible => None,
        }
    }

    /// Visible atoms of `ty` a base scan cannot have delivered (see
    /// [`VersionStore::visible_extras`]).
    pub fn extras(&self, ty: AtomTypeId, seen: &HashSet<AtomId>) -> Vec<Atom> {
        self.store.visible_extras(self.seq, ty, seen)
    }
}

impl Drop for Snapshot {
    fn drop(&mut self) {
        self.store.end_snapshot(self.seq);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prima_mad::value::Value;

    fn atom(id: AtomId, n: i64) -> Atom {
        Atom::new(id, vec![Value::Id(id), Value::Int(n)])
    }

    #[test]
    fn uncommitted_overwrite_resolves_to_before_image() {
        let store = VersionStore::new();
        let id = AtomId::new(1, 1);
        let snap = store.begin_snapshot();
        store.install(TxnId(7), id, Some(atom(id, 1)));
        // Base now (conceptually) holds the dirty value 2.
        let seen = snap.visible(id, Some(atom(id, 2))).unwrap();
        assert_eq!(seen.values[1], Value::Int(1));
    }

    #[test]
    fn commit_stamp_splits_visibility_at_the_snapshot() {
        let store = VersionStore::new();
        let id = AtomId::new(1, 1);
        let before = store.begin_snapshot();
        store.install(TxnId(7), id, Some(atom(id, 1)));
        store.commit_stamp(TxnId(7));
        let after = store.begin_snapshot();
        assert_eq!(before.visible(id, Some(atom(id, 2))).unwrap().values[1], Value::Int(1));
        assert_eq!(after.visible(id, Some(atom(id, 2))).unwrap().values[1], Value::Int(2));
    }

    #[test]
    fn uncommitted_insert_is_invisible_and_deleted_atom_resurfaces() {
        let store = VersionStore::new();
        let inserted = AtomId::new(1, 1);
        let deleted = AtomId::new(1, 2);
        let snap = store.begin_snapshot();
        store.install(TxnId(7), inserted, None);
        store.install(TxnId(7), deleted, Some(atom(deleted, 5)));
        // Inserted atom present in base but invisible to the snapshot.
        assert!(snap.visible(inserted, Some(atom(inserted, 9))).is_none());
        // Deleted atom gone from base but visible via its image.
        assert_eq!(snap.visible(deleted, None).unwrap().values[1], Value::Int(5));
        // The extras index surfaces both; only the visible one returns.
        let extras = snap.extras(1, &HashSet::new());
        assert_eq!(extras.len(), 1);
        assert_eq!(extras[0].id, deleted);
    }

    #[test]
    fn intermediate_images_dedupe_to_the_deepest_at_commit() {
        let store = VersionStore::new();
        let id = AtomId::new(1, 1);
        let snap = store.begin_snapshot();
        store.install(TxnId(7), id, Some(atom(id, 1)));
        store.install(TxnId(7), id, Some(atom(id, 2)));
        store.commit_stamp(TxnId(7));
        // The pre-transaction value, not the intermediate one.
        assert_eq!(snap.visible(id, Some(atom(id, 3))).unwrap().values[1], Value::Int(1));
        assert_eq!(store.stats().live_versions, 1);
    }

    #[test]
    fn rollback_keeps_the_image_alive_for_open_snapshots() {
        let store = VersionStore::new();
        let id = AtomId::new(1, 1);
        let snap = store.begin_snapshot();
        store.install(TxnId(7), id, Some(atom(id, 1)));
        store.rollback(TxnId(7));
        // Even if this reader's base read caught the dirty value, the
        // stamped entry corrects it.
        assert_eq!(snap.visible(id, Some(atom(id, 99))).unwrap().values[1], Value::Int(1));
        drop(snap);
        assert_eq!(store.stats().live_versions, 0);
    }

    #[test]
    fn gc_waits_for_the_oldest_snapshot() {
        let store = VersionStore::new();
        let id = AtomId::new(1, 1);
        let old = store.begin_snapshot();
        store.install(TxnId(7), id, Some(atom(id, 1)));
        store.commit_stamp(TxnId(7));
        // A later commit on another atom advances the watermark only as
        // far as the open snapshot allows.
        assert_eq!(store.stats().live_versions, 1);
        assert!(store.stats().oldest_snapshot_lag >= 1);
        assert_eq!(old.visible(id, Some(atom(id, 2))).unwrap().values[1], Value::Int(1));
        drop(old);
        assert_eq!(store.stats().live_versions, 0);
        assert_eq!(store.stats().oldest_snapshot_lag, 0);
    }

    #[test]
    fn child_entries_transfer_to_the_parent() {
        let store = VersionStore::new();
        let id = AtomId::new(1, 1);
        let snap = store.begin_snapshot();
        store.install(TxnId(1), id, Some(atom(id, 1)));
        store.install(TxnId(2), id, Some(atom(id, 5))); // child's image: dirty
        store.transfer(TxnId(2), TxnId(1));
        store.commit_stamp(TxnId(1));
        // Deepest entry wins: the pre-transaction value.
        assert_eq!(snap.visible(id, Some(atom(id, 9))).unwrap().values[1], Value::Int(1));
    }

    #[test]
    fn no_open_snapshot_means_versions_die_at_commit() {
        let store = VersionStore::new();
        let id = AtomId::new(1, 1);
        store.install(TxnId(7), id, Some(atom(id, 1)));
        store.commit_stamp(TxnId(7));
        let s = store.stats();
        assert_eq!(s.live_versions, 0);
        assert_eq!(s.live_chains, 0);
        assert_eq!(s.versions_installed, s.versions_reclaimed);
    }
}
