//! I/O accounting.
//!
//! The PRIMA paper's storage-system arguments (page sizes, page sequences,
//! chained I/O, clustering) are all arguments about *how many* and *which*
//! block transfers a given operation causes. [`IoStats`] is the measuring
//! instrument: a cheap, thread-safe set of counters threaded through the
//! simulated device, and surfaced per experiment in `EXPERIMENTS.md`.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// The one shape every layer's counter snapshot shares, so a kernel-wide
/// metrics view can compose them uniformly instead of knowing each
/// struct's ad-hoc `since()` / `detail()` methods.
///
/// Implementors are plain point-in-time copies of an atomic counter
/// struct ([`IoSnapshot`], the buffer / lock / version / access / API
/// snapshots in their home crates). [`StatsSnapshot::delta`] is the
/// component-wise difference for monotone counters; gauges and
/// running maxima keep their current value, exactly as the pre-existing
/// `since()` methods did. [`StatsSnapshot::fields`] names every counter
/// in declaration order — the single source the Prometheus-style text
/// rendering walks.
pub trait StatsSnapshot: Sized + Clone {
    /// Metric family name; rendered as the `prima_<family>_<field>`
    /// prefix.
    const FAMILY: &'static str;

    /// Component-wise counter delta `self - earlier` (gauges keep their
    /// current value).
    fn delta(&self, earlier: &Self) -> Self;

    /// `(counter name, value)` pairs in declaration order.
    fn fields(&self) -> Vec<(&'static str, u64)>;

    /// Appends this family's counters to a Prometheus-style text body.
    fn render_into(&self, out: &mut String) {
        use std::fmt::Write;
        for (name, value) in self.fields() {
            let _ = writeln!(out, "prima_{}_{} {}", Self::FAMILY, name, value);
        }
    }
}

/// Thread-safe I/O counters, shared between the device and its observers.
///
/// All counters use relaxed ordering: they are statistics, not
/// synchronization points.
#[derive(Debug, Default)]
pub struct IoStats {
    /// Number of single-block read transfers.
    pub block_reads: AtomicU64,
    /// Number of single-block write transfers.
    pub block_writes: AtomicU64,
    /// Total bytes read from the device.
    pub bytes_read: AtomicU64,
    /// Total bytes written to the device.
    pub bytes_written: AtomicU64,
    /// Number of *seeks*: transfers whose block address was not contiguous
    /// with the previous transfer on the same device arm.
    pub seeks: AtomicU64,
    /// Number of chained-I/O runs (a page-sequence read satisfied by one
    /// multi-block transfer).
    pub chained_runs: AtomicU64,
    /// Blocks moved inside chained runs (also counted in `block_reads`).
    pub chained_blocks: AtomicU64,
    /// Write-ahead-log forces: each is one sequential append transfer to
    /// the log area (the device-level unit of group commit).
    pub wal_forces: AtomicU64,
    /// Bytes appended to the write-ahead log.
    pub wal_bytes: AtomicU64,
    /// WAL forces whose batch carried at least one `TxnCommit` record —
    /// the device-level unit of cross-session group commit.
    pub group_commit_batches: AtomicU64,
    /// `TxnCommit` records made durable across all group-commit batches;
    /// `group_commit_commits / group_commit_batches` is the commits-per-
    /// force amortisation the group coordinator buys.
    pub group_commit_commits: AtomicU64,
    /// Accumulated simulated service time in nanoseconds (cost model).
    pub sim_time_ns: AtomicU64,
}

impl IoStats {
    /// Creates a fresh, zeroed counter set behind an [`Arc`].
    pub fn new_shared() -> Arc<Self> {
        Arc::new(Self::default())
    }

    /// Zeroes every counter. Used between benchmark phases.
    pub fn reset(&self) {
        self.block_reads.store(0, Ordering::Relaxed);
        self.block_writes.store(0, Ordering::Relaxed);
        self.bytes_read.store(0, Ordering::Relaxed);
        self.bytes_written.store(0, Ordering::Relaxed);
        self.seeks.store(0, Ordering::Relaxed);
        self.chained_runs.store(0, Ordering::Relaxed);
        self.chained_blocks.store(0, Ordering::Relaxed);
        self.wal_forces.store(0, Ordering::Relaxed);
        self.wal_bytes.store(0, Ordering::Relaxed);
        self.group_commit_batches.store(0, Ordering::Relaxed);
        self.group_commit_commits.store(0, Ordering::Relaxed);
        self.sim_time_ns.store(0, Ordering::Relaxed);
    }

    /// An owned point-in-time copy, convenient for diffing around an
    /// operation under measurement.
    pub fn snapshot(&self) -> IoSnapshot {
        IoSnapshot {
            block_reads: self.block_reads.load(Ordering::Relaxed),
            block_writes: self.block_writes.load(Ordering::Relaxed),
            bytes_read: self.bytes_read.load(Ordering::Relaxed),
            bytes_written: self.bytes_written.load(Ordering::Relaxed),
            seeks: self.seeks.load(Ordering::Relaxed),
            chained_runs: self.chained_runs.load(Ordering::Relaxed),
            chained_blocks: self.chained_blocks.load(Ordering::Relaxed),
            wal_forces: self.wal_forces.load(Ordering::Relaxed),
            wal_bytes: self.wal_bytes.load(Ordering::Relaxed),
            group_commit_batches: self.group_commit_batches.load(Ordering::Relaxed),
            group_commit_commits: self.group_commit_commits.load(Ordering::Relaxed),
            sim_time_ns: self.sim_time_ns.load(Ordering::Relaxed),
        }
    }

    pub(crate) fn add(&self, field: &AtomicU64, n: u64) {
        field.fetch_add(n, Ordering::Relaxed);
    }
}

/// An immutable copy of [`IoStats`] at one instant.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IoSnapshot {
    pub block_reads: u64,
    pub block_writes: u64,
    pub bytes_read: u64,
    pub bytes_written: u64,
    pub seeks: u64,
    pub chained_runs: u64,
    pub chained_blocks: u64,
    pub wal_forces: u64,
    pub wal_bytes: u64,
    pub group_commit_batches: u64,
    pub group_commit_commits: u64,
    pub sim_time_ns: u64,
}

impl IoSnapshot {
    /// Component-wise difference `self - earlier`; saturates at zero so a
    /// reset between snapshots cannot produce nonsense.
    pub fn since(&self, earlier: &IoSnapshot) -> IoSnapshot {
        IoSnapshot {
            block_reads: self.block_reads.saturating_sub(earlier.block_reads),
            block_writes: self.block_writes.saturating_sub(earlier.block_writes),
            bytes_read: self.bytes_read.saturating_sub(earlier.bytes_read),
            bytes_written: self.bytes_written.saturating_sub(earlier.bytes_written),
            seeks: self.seeks.saturating_sub(earlier.seeks),
            chained_runs: self.chained_runs.saturating_sub(earlier.chained_runs),
            chained_blocks: self.chained_blocks.saturating_sub(earlier.chained_blocks),
            wal_forces: self.wal_forces.saturating_sub(earlier.wal_forces),
            wal_bytes: self.wal_bytes.saturating_sub(earlier.wal_bytes),
            group_commit_batches: self
                .group_commit_batches
                .saturating_sub(earlier.group_commit_batches),
            group_commit_commits: self
                .group_commit_commits
                .saturating_sub(earlier.group_commit_commits),
            sim_time_ns: self.sim_time_ns.saturating_sub(earlier.sim_time_ns),
        }
    }

    /// Total transfers (reads + writes).
    pub fn transfers(&self) -> u64 {
        self.block_reads + self.block_writes
    }
}

impl StatsSnapshot for IoSnapshot {
    const FAMILY: &'static str = "io";

    fn delta(&self, earlier: &Self) -> Self {
        self.since(earlier)
    }

    fn fields(&self) -> Vec<(&'static str, u64)> {
        vec![
            ("block_reads", self.block_reads),
            ("block_writes", self.block_writes),
            ("bytes_read", self.bytes_read),
            ("bytes_written", self.bytes_written),
            ("seeks", self.seeks),
            ("chained_runs", self.chained_runs),
            ("chained_blocks", self.chained_blocks),
            ("wal_forces", self.wal_forces),
            ("wal_bytes", self.wal_bytes),
            ("group_commit_batches", self.group_commit_batches),
            ("group_commit_commits", self.group_commit_commits),
            ("sim_time_ns", self.sim_time_ns),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_diff() {
        let s = IoStats::default();
        s.add(&s.block_reads, 5);
        s.add(&s.bytes_read, 5 * 4096);
        let a = s.snapshot();
        s.add(&s.block_reads, 3);
        s.add(&s.seeks, 1);
        let b = s.snapshot();
        let d = b.since(&a);
        assert_eq!(d.block_reads, 3);
        assert_eq!(d.seeks, 1);
        assert_eq!(d.bytes_read, 0);
        assert_eq!(b.transfers(), 8);
    }

    #[test]
    fn reset_zeroes_everything() {
        let s = IoStats::default();
        s.add(&s.block_writes, 7);
        s.add(&s.chained_runs, 2);
        s.reset();
        assert_eq!(s.snapshot(), IoSnapshot::default());
    }

    #[test]
    fn since_saturates() {
        let a = IoSnapshot { block_reads: 10, ..Default::default() };
        let b = IoSnapshot { block_reads: 4, ..Default::default() };
        assert_eq!(b.since(&a).block_reads, 0);
    }
}
