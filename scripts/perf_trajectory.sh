#!/usr/bin/env bash
# Runs the perf-trajectory benches and collects their BENCHJSON lines
# into one JSON array:
#   * batched_assembly — per (fanout, buffer regime, assembly mode)
#     records with atoms/sec and fix_calls / pages_loaded counters;
#   * prepared_exec — prepared-vs-reparse timings and plan-reuse proof;
#   * wal_commit — commit latency no-WAL vs WAL-force vs group-sized
#     batches, with WAL forces/bytes and simulated device time per
#     statement;
#   * multi_session — throughput of concurrent session threads,
#     conflict-heavy vs disjoint key placement, with the lock manager's
#     wait/timeout/deadlock counters per series;
#   * snapshot_read (BENCH-5, selected explicitly:
#     `perf_trajectory.sh BENCH_5.json snapshot_read`) — reader
#     throughput against one long-hold writer, locked reads vs MVCC
#     snapshot reads, with lock-acquisition and version-store counters;
#   * group_commit (BENCH-6, selected explicitly:
#     `perf_trajectory.sh BENCH_6.json group_commit`) — N committing
#     sessions on a FileDisk, force-per-commit vs cross-session group
#     commit, with ops/sec and the wal_forces / commits-per-force
#     counters; asserts forces/commit < 1.0 for the grouped series at
#     >= 4 sessions;
#   * every criterion-shim benchmark additionally emits a
#     {"bench":"criterion", ...} record carrying mean/stddev/min/max so
#     small (<10%) deltas can be judged against run-to-run noise;
#   * each perf bench also emits {"bench":"metrics","source":...,
#     "render":...} records embedding the kernel's full metrics
#     exposition (MetricsSnapshot::render_text: buffer/io/access/lock/
#     version/api counters + per-statement-kind latency quantiles) for
#     the database the timings were measured on.
set -euo pipefail
cd "$(dirname "$0")/.."

out="${1:-BENCH_4.json}"
shift || true
benches=("${@:-}")
if [ -z "${benches[0]:-}" ]; then
    benches=(batched_assembly prepared_exec wal_commit multi_session)
fi

log="$(mktemp)"
trap 'rm -f "$log"' EXIT

for b in "${benches[@]}"; do
    cargo bench --bench "$b" 2>&1 | tee -a "$log"
done

grep '^BENCHJSON ' "$log" | sed 's/^BENCHJSON //' | awk '
    { lines[NR] = $0 }
    END {
        print "["
        for (i = 1; i <= NR; i++) printf "  %s%s\n", lines[i], (i < NR ? "," : "")
        print "]"
    }' > "$out"

echo "wrote $out ($(grep -c '^BENCHJSON ' "$log") records)"
