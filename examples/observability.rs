//! Observability: profile a Table 2.1 query end to end.
//!
//! Builds the Fig. 2.3 BREP database with a slow-statement threshold of
//! zero (every statement keeps its profile), drops the buffer cache so
//! the query pays real device reads, and runs the Table 2.1a vertical
//! molecule query profiled. The resulting span tree must be well-formed
//! and cover every layer the statement crosses — parse, plan, root
//! access, per-level assembly, buffer fixes and page loads — and the
//! kernel-wide metrics snapshot must satisfy its cross-family coherence
//! invariants. Exits non-zero on any violation (this is a CI leg).
//!
//! ```sh
//! cargo run --release --example observability
//! ```

use prima::{Prima, QueryOptions, SpanKind};
use prima_workloads::brep::{self, BrepConfig};
use std::time::Duration;

fn main() {
    if let Err(e) = run() {
        eprintln!("observability example failed: {e}");
        std::process::exit(1);
    }
}

fn run() -> Result<(), String> {
    let db = Prima::builder()
        .buffer_bytes(4 << 20)
        .slow_statement_threshold(Duration::ZERO)
        .build_with_ddl(brep::schema_ddl())
        .map_err(|e| format!("build: {e}"))?;
    brep::populate(&db, &BrepConfig::with_assembly(4, 2, 2)).map_err(|e| format!("populate: {e}"))?;

    // Cold buffer: the profiled query must fetch its pages from the
    // device, so the I/O leaf spans appear in the tree.
    db.storage().drop_cache().map_err(|e| format!("drop_cache: {e}"))?;

    let session = db.session();
    session.set_profiling(true);
    let result = session
        .query("SELECT ALL FROM brep-face-edge-point WHERE brep_no = 2", &QueryOptions::default())
        .map_err(|e| format!("query: {e}"))?;
    if result.set.len() != 1 {
        return Err(format!("expected one molecule, got {}", result.set.len()));
    }

    let profile = session.last_profile().ok_or("profiled statement left no profile")?;
    profile.validate()?;
    for kind in [
        SpanKind::Parse,
        SpanKind::Plan,
        SpanKind::RootAccess,
        SpanKind::AssemblyLevel(0),
        SpanKind::BufferFix,
        SpanKind::PageLoad,
    ] {
        if profile.root.find(kind).is_none() {
            return Err(format!("span tree misses {}:\n{}", kind.label(), profile.render()));
        }
    }
    println!("{}", profile.render());

    // Threshold zero ⇒ the slow log captured the statement too.
    if db.slow_statements().is_empty() {
        return Err("slow-statement log empty despite zero threshold".into());
    }

    drop(session);
    let metrics = db.metrics();
    metrics.check_coherence().map_err(|v| format!("coherence violations: {v:?}"))?;
    println!("{}", metrics.render_text());
    Ok(())
}
