//! Atom clusters: physical contiguity for frequently used molecules.
//!
//! "In order to speed up construction of frequently used molecules, we
//! introduce the concept of atom clusters. They serve to allocate in
//! physical contiguity all atoms of the 'main lanes' to be traversed
//! during molecule derivation. […] An atom-cluster type is declared by
//! naming the atom types whose atoms are to be clustered. Such an atom
//! cluster corresponds mostly to a heterogeneous […] atom set defined by a
//! so-called characteristic atom. This characteristic atom simply
//! contains references to all atoms, grouped by atom types, belonging to
//! the atom cluster (Fig. 3.2a). Inserting a characteristic atom generates
//! a new atom cluster […] Modifying a characteristic atom adds new atoms
//! […] whereas deleting a characteristic atom deletes a whole atom
//! cluster." (Section 3.2.)
//!
//! The mapping follows Fig. 3.2 exactly: the whole cluster is **one
//! physical record** (b) stored in a **page sequence** (c); an auxiliary
//! directory at the head of the record gives *relative addressing* so a
//! single member atom can be fetched without reading the whole sequence.

use crate::addressing::StructureId;
use crate::atom::Atom;
use crate::error::{AccessError, AccessResult};
use parking_lot::{rank, RwLock};
use prima_mad::value::{AtomId, AtomTypeId};
use prima_storage::bytes::{le_u16, le_u32, le_u64};
use prima_storage::{PageSeqHandle, PageSequence, PageSize, SegmentId, StorageSystem};
use std::collections::HashMap;
use std::sync::Arc;

/// Directory entry size: atom type (2) + seq (8) + offset (4) + len (4).
const DIR_ENTRY: usize = 18;

/// An atom-cluster type: the redundant structure materialising one page
/// sequence per characteristic atom.
pub struct AtomClusterType {
    pub id: StructureId,
    pub name: String,
    /// The characteristic atom type whose reference attributes define the
    /// cluster membership.
    pub char_type: AtomTypeId,
    /// Reference attributes of `char_type` whose targets are clustered
    /// (in declaration order — the "grouped by atom types" of the paper).
    pub member_attrs: Vec<usize>,
    storage: Arc<StorageSystem>,
    segment: SegmentId,
    // lockrank: access.1 — registry peer; transient holds.
    clusters: RwLock<HashMap<AtomId, PageSeqHandle>>,
}

impl AtomClusterType {
    /// Declares a cluster type; its page sequences live in a fresh
    /// segment.
    pub fn create(
        storage: Arc<StorageSystem>,
        id: StructureId,
        name: impl Into<String>,
        char_type: AtomTypeId,
        member_attrs: Vec<usize>,
        page_size: PageSize,
    ) -> AccessResult<AtomClusterType> {
        let segment = storage.create_segment_with(page_size, false)?;
        Ok(AtomClusterType {
            id,
            name: name.into(),
            char_type,
            member_attrs,
            storage,
            segment,
            clusters: RwLock::new_ranked(HashMap::new(), rank::ACCESS + 1),
        })
    }

    /// Serialises members into the cluster record: directory first, atom
    /// images after (offsets relative to the start of the record).
    fn encode_cluster(atoms: &[Atom]) -> Vec<u8> {
        let images: Vec<Vec<u8>> = atoms.iter().map(super::atom::Atom::encode).collect();
        let dir_len = 4 + atoms.len() * DIR_ENTRY;
        let total: usize = dir_len + images.iter().map(std::vec::Vec::len).sum::<usize>();
        let mut out = Vec::with_capacity(total);
        out.extend_from_slice(&(atoms.len() as u32).to_le_bytes());
        let mut offset = dir_len;
        for (a, img) in atoms.iter().zip(&images) {
            out.extend_from_slice(&a.id.atom_type.to_le_bytes());
            out.extend_from_slice(&a.id.seq.to_le_bytes());
            out.extend_from_slice(&(offset as u32).to_le_bytes());
            out.extend_from_slice(&(img.len() as u32).to_le_bytes());
            offset += img.len();
        }
        for img in &images {
            out.extend_from_slice(img);
        }
        out
    }

    fn decode_directory(dir: &[u8]) -> Vec<(AtomId, u32, u32)> {
        let n = le_u32(&dir[0..4]) as usize;
        let mut out = Vec::with_capacity(n);
        for i in 0..n {
            let base = 4 + i * DIR_ENTRY;
            let t = le_u16(&dir[base..base + 2]);
            let s = le_u64(&dir[base + 2..base + 10]);
            let off = le_u32(&dir[base + 10..base + 14]);
            let len = le_u32(&dir[base + 14..base + 18]);
            out.push((AtomId::new(t, s), off, len));
        }
        out
    }

    /// Builds (or rebuilds) the cluster for `characteristic` from the
    /// already-fetched member atoms. The access system passes the members
    /// it resolved through the characteristic atom's references.
    pub fn materialize(&self, characteristic: AtomId, members: &[Atom]) -> AccessResult<()> {
        let blob = Self::encode_cluster(members);
        let mut clusters = self.clusters.write();
        match clusters.get(&characteristic) {
            Some(&handle) => {
                PageSequence::overwrite(&self.storage, handle, &blob)?;
            }
            None => {
                let handle = PageSequence::create(&self.storage, self.segment, &blob)?;
                clusters.insert(characteristic, handle);
            }
        }
        Ok(())
    }

    /// Deletes the cluster of `characteristic` (the characteristic atom
    /// was deleted).
    pub fn drop_cluster(&self, characteristic: AtomId) -> AccessResult<bool> {
        let handle = self.clusters.write().remove(&characteristic);
        match handle {
            Some(h) => {
                PageSequence::delete(&self.storage, h)?;
                Ok(true)
            }
            None => Ok(false),
        }
    }

    /// True if a cluster is materialised for this characteristic atom.
    pub fn contains(&self, characteristic: AtomId) -> bool {
        self.clusters.read().contains_key(&characteristic)
    }

    /// All characteristic atoms with materialised clusters, in id order
    /// (the "system-defined order" of the atom-cluster-type scan).
    pub fn characteristic_atoms(&self) -> Vec<AtomId> {
        let mut v: Vec<AtomId> = self.clusters.read().keys().copied().collect();
        v.sort_unstable();
        v
    }

    /// Reads the entire cluster — one chained I/O run when contiguous
    /// (Fig. 3.2c) — and decodes all member atoms.
    pub fn read_all(&self, characteristic: AtomId) -> AccessResult<Vec<Atom>> {
        let handle = self.handle(characteristic)?;
        let blob = PageSequence::read_all(&self.storage, handle)?;
        let dir = Self::decode_directory(&blob);
        let mut out = Vec::with_capacity(dir.len());
        for (_, off, len) in dir {
            out.push(Atom::decode(&blob[off as usize..(off + len) as usize])?);
        }
        Ok(out)
    }

    /// Member ids in cluster order, read from the directory only (header
    /// pages, no member transfer).
    pub fn members(&self, characteristic: AtomId) -> AccessResult<Vec<AtomId>> {
        let handle = self.handle(characteristic)?;
        let dir = self.read_directory(handle)?;
        Ok(dir.into_iter().map(|(id, _, _)| id).collect())
    }

    /// Direct access to a single member atom via relative addressing:
    /// only the directory and the pages covering the atom are read.
    pub fn read_one(&self, characteristic: AtomId, member: AtomId) -> AccessResult<Option<Atom>> {
        let handle = self.handle(characteristic)?;
        let dir = self.read_directory(handle)?;
        let Some(&(_, off, len)) = dir.iter().find(|(id, _, _)| *id == member) else {
            return Ok(None);
        };
        let bytes = PageSequence::read_relative(&self.storage, handle, off as usize, len as usize)?;
        Ok(Some(Atom::decode(&bytes)?))
    }

    /// All member atoms of one atom type within one cluster (the
    /// atom-cluster scan's source, Section 3.2).
    pub fn read_type(&self, characteristic: AtomId, t: AtomTypeId) -> AccessResult<Vec<Atom>> {
        let handle = self.handle(characteristic)?;
        let dir = self.read_directory(handle)?;
        let mut out = Vec::new();
        for (id, off, len) in dir {
            if id.atom_type == t {
                let bytes =
                    PageSequence::read_relative(&self.storage, handle, off as usize, len as usize)?;
                out.push(Atom::decode(&bytes)?);
            }
        }
        Ok(out)
    }

    /// Number of materialised clusters.
    pub fn cluster_count(&self) -> usize {
        self.clusters.read().len()
    }

    fn handle(&self, characteristic: AtomId) -> AccessResult<PageSeqHandle> {
        self.clusters
            .read()
            .get(&characteristic)
            .copied()
            .ok_or(AccessError::NotACharacteristicAtom(characteristic))
    }

    fn read_directory(&self, handle: PageSeqHandle) -> AccessResult<Vec<(AtomId, u32, u32)>> {
        let head = PageSequence::read_relative(&self.storage, handle, 0, 4)?;
        if head.len() < 4 {
            return Ok(Vec::new());
        }
        let n = le_u32(&head[0..4]) as usize;
        let dir = PageSequence::read_relative(&self.storage, handle, 0, 4 + n * DIR_ENTRY)?;
        Ok(Self::decode_directory(&dir))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prima_mad::value::Value;

    fn member(t: AtomTypeId, seq: u64, payload: usize) -> Atom {
        Atom::new(
            AtomId::new(t, seq),
            vec![Value::Id(AtomId::new(t, seq)), Value::Str("m".repeat(payload))],
        )
    }

    fn cluster_type(storage: &Arc<StorageSystem>) -> AtomClusterType {
        AtomClusterType::create(
            Arc::clone(storage),
            11,
            "brep_cluster",
            9,
            vec![1, 2, 3],
            PageSize::K1,
        )
        .unwrap()
    }

    #[test]
    fn materialize_and_read_all() {
        let storage = Arc::new(StorageSystem::in_memory(4 << 20));
        let ct = cluster_type(&storage);
        let ch = AtomId::new(9, 1);
        let members: Vec<Atom> =
            (0..20).map(|i| member(1 + (i % 3) as u16, i, 50)).collect();
        ct.materialize(ch, &members).unwrap();
        assert!(ct.contains(ch));
        let back = ct.read_all(ch).unwrap();
        assert_eq!(back, members);
    }

    #[test]
    fn whole_cluster_read_is_chained() {
        let storage = Arc::new(StorageSystem::in_memory(4 << 20));
        let ct = cluster_type(&storage);
        let ch = AtomId::new(9, 1);
        let members: Vec<Atom> = (0..100).map(|i| member(1, i, 100)).collect();
        ct.materialize(ch, &members).unwrap();
        storage.flush().unwrap();
        storage.io_stats().reset();
        let _ = ct.read_all(ch).unwrap();
        let io = storage.io_stats().snapshot();
        assert_eq!(io.chained_runs, 1, "cluster read must use chained I/O");
    }

    #[test]
    fn single_member_access_reads_few_pages() {
        let storage = Arc::new(StorageSystem::in_memory(4 << 20));
        let ct = cluster_type(&storage);
        let ch = AtomId::new(9, 1);
        let members: Vec<Atom> = (0..200).map(|i| member(1, i, 100)).collect();
        ct.materialize(ch, &members).unwrap();
        storage.flush().unwrap();
        storage.io_stats().reset();
        let got = ct.read_one(ch, AtomId::new(1, 150)).unwrap().unwrap();
        assert_eq!(got.id.seq, 150);
        let io = storage.io_stats().snapshot();
        let total_pages = 200 * 120 / PageSize::K1.payload() + 1;
        assert!(
            (io.block_reads as usize) < total_pages / 2,
            "relative addressing must beat a full read: {} blocks",
            io.block_reads
        );
    }

    #[test]
    fn read_type_filters_members() {
        let storage = Arc::new(StorageSystem::in_memory(4 << 20));
        let ct = cluster_type(&storage);
        let ch = AtomId::new(9, 1);
        let members: Vec<Atom> = (0..30).map(|i| member(1 + (i % 3) as u16, i, 10)).collect();
        ct.materialize(ch, &members).unwrap();
        let t2 = ct.read_type(ch, 2).unwrap();
        assert_eq!(t2.len(), 10);
        assert!(t2.iter().all(|a| a.id.atom_type == 2));
    }

    #[test]
    fn modify_rematerialises() {
        let storage = Arc::new(StorageSystem::in_memory(4 << 20));
        let ct = cluster_type(&storage);
        let ch = AtomId::new(9, 1);
        ct.materialize(ch, &[member(1, 1, 10)]).unwrap();
        // Grow the cluster.
        let bigger: Vec<Atom> = (0..50).map(|i| member(1, i, 40)).collect();
        ct.materialize(ch, &bigger).unwrap();
        assert_eq!(ct.read_all(ch).unwrap().len(), 50);
        // Shrink again.
        ct.materialize(ch, &[member(1, 7, 10)]).unwrap();
        let back = ct.read_all(ch).unwrap();
        assert_eq!(back.len(), 1);
        assert_eq!(back[0].id.seq, 7);
        assert_eq!(ct.cluster_count(), 1);
    }

    #[test]
    fn drop_cluster_frees_and_forgets() {
        let storage = Arc::new(StorageSystem::in_memory(4 << 20));
        let ct = cluster_type(&storage);
        let ch = AtomId::new(9, 1);
        ct.materialize(ch, &[member(1, 1, 10)]).unwrap();
        assert!(ct.drop_cluster(ch).unwrap());
        assert!(!ct.drop_cluster(ch).unwrap());
        assert!(!ct.contains(ch));
        assert!(matches!(
            ct.read_all(ch),
            Err(AccessError::NotACharacteristicAtom(_))
        ));
    }

    #[test]
    fn characteristic_atoms_in_order() {
        let storage = Arc::new(StorageSystem::in_memory(4 << 20));
        let ct = cluster_type(&storage);
        for seq in [5u64, 1, 3] {
            ct.materialize(AtomId::new(9, seq), &[member(1, seq, 5)]).unwrap();
        }
        let chars = ct.characteristic_atoms();
        assert_eq!(
            chars,
            vec![AtomId::new(9, 1), AtomId::new(9, 3), AtomId::new(9, 5)]
        );
    }

    #[test]
    fn members_reads_directory_only() {
        let storage = Arc::new(StorageSystem::in_memory(4 << 20));
        let ct = cluster_type(&storage);
        let ch = AtomId::new(9, 1);
        let members: Vec<Atom> = (0..100).map(|i| member(1, i, 200)).collect();
        ct.materialize(ch, &members).unwrap();
        storage.flush().unwrap();
        storage.io_stats().reset();
        let ids = ct.members(ch).unwrap();
        assert_eq!(ids.len(), 100);
        let io = storage.io_stats().snapshot();
        assert!(io.block_reads < 10, "directory read touched {} blocks", io.block_reads);
    }

    #[test]
    fn empty_cluster_round_trips() {
        let storage = Arc::new(StorageSystem::in_memory(4 << 20));
        let ct = cluster_type(&storage);
        let ch = AtomId::new(9, 1);
        ct.materialize(ch, &[]).unwrap();
        assert_eq!(ct.read_all(ch).unwrap(), Vec::<Atom>::new());
        assert_eq!(ct.members(ch).unwrap(), Vec::<AtomId>::new());
    }
}
