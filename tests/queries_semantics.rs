//! MQL semantics beyond Table 2.1: boolean structure, quantifiers,
//! reference-to-reference comparisons, molecule overlap (non-disjoint
//! molecules), and error reporting.

use prima::{Prima, Value};
use prima_workloads::exec;

const DDL: &str = "
CREATE ATOM_TYPE team
  ( id : IDENTIFIER, team_no : INTEGER, city : CHAR_VAR,
    members : SET_OF (REF_TO (person.teams)) )
KEYS_ARE (team_no);
CREATE ATOM_TYPE person
  ( id : IDENTIFIER, p_no : INTEGER, age : INTEGER, name : CHAR_VAR,
    teams : SET_OF (REF_TO (team.members)) )
KEYS_ARE (p_no);
";

fn setup() -> Prima {
    let db = Prima::builder().build_with_ddl(DDL).unwrap();
    let mut people = Vec::new();
    for p in 0..12i64 {
        people.push(
            db.insert(
                "person",
                &[
                    ("p_no", Value::Int(p)),
                    ("age", Value::Int(20 + p * 3)),
                    ("name", Value::Str(format!("person {p}"))),
                ],
            )
            .unwrap(),
        );
    }
    for t in 0..4i64 {
        // Overlapping membership: person p joins team t iff p % 4 == t or
        // p % 3 == t (non-disjoint molecules: people shared by teams).
        let members: Vec<_> = (0..12)
            .filter(|p| p % 4 == t || p % 3 == t)
            .map(|p| people[p as usize])
            .collect();
        db.insert(
            "team",
            &[
                ("team_no", Value::Int(t)),
                ("city", Value::Str(["kaiserslautern", "brighton"][t as usize % 2].into())),
                ("members", Value::ref_set(members)),
            ],
        )
        .unwrap();
    }
    db
}

#[test]
fn or_and_not_in_where() {
    let db = setup();
    let set = exec::query(&db, "SELECT ALL FROM team WHERE team_no = 0 OR team_no = 3")
        .unwrap();
    assert_eq!(set.len(), 2);
    let set = exec::query(&db, "SELECT ALL FROM team WHERE NOT city = 'brighton'")
        .unwrap();
    assert_eq!(set.len(), 2);
    let set = exec::query(&db, "SELECT ALL FROM team WHERE city = 'brighton' AND NOT team_no = 1")
        .unwrap();
    assert_eq!(set.len(), 1);
    assert_eq!(set.molecules[0].root.atom.values[1], Value::Int(3));
}

#[test]
fn non_root_comparison_is_existential() {
    let db = setup();
    // Teams having at least one member older than 45.
    let set = exec::query(&db, "SELECT ALL FROM team-person WHERE person.age > 45").unwrap();
    let expected: usize = exec::query(&db, "SELECT ALL FROM team-person WHERE team_no >= 0")
        .unwrap()
        .molecules
        .iter()
        .filter(|m| {
            m.atoms_of_node(1).iter().any(|a| a.values[2].as_int().unwrap() > 45)
        })
        .count();
    assert_eq!(set.len(), expected);
}

#[test]
fn for_all_quantifier_semantics() {
    let db = setup();
    // ALL members at least 20 — true everywhere.
    let set = exec::query(&db, "SELECT ALL FROM team-person WHERE ALL person: person.age >= 20")
        .unwrap();
    assert_eq!(set.len(), 4);
    // ALL members younger than 40 — only teams whose member set avoids
    // the older people.
    let set = exec::query(&db, "SELECT ALL FROM team-person WHERE ALL person: person.age < 40")
        .unwrap();
    for m in &set.molecules {
        for p in m.atoms_of_node(1) {
            assert!(p.values[2].as_int().unwrap() < 40);
        }
    }
}

#[test]
fn exists_at_least_counts_members() {
    let db = setup();
    let set = exec::query(&db, "SELECT ALL FROM team-person WHERE EXISTS_AT_LEAST (4) person: person.age >= 20")
        .unwrap();
    // Teams with >= 4 members (all ages >= 20).
    let all = exec::query(&db, "SELECT ALL FROM team-person WHERE team_no >= 0").unwrap();
    let expected =
        all.molecules.iter().filter(|m| m.atoms_of_node(1).len() >= 4).count();
    assert_eq!(set.len(), expected);
}

#[test]
fn ref_to_ref_comparison() {
    let db = setup();
    // Teams where some member's age equals 3*p_no + 20 of another… keep
    // it simple: person.age > person.p_no always holds (age = 20 + 3p).
    let set = exec::query(&db, "SELECT ALL FROM team-person WHERE person.age > person.p_no")
        .unwrap();
    assert_eq!(set.len(), 4);
}

#[test]
fn overlapping_molecules_share_atoms() {
    let db = setup();
    let set = exec::query(&db, "SELECT ALL FROM team-person WHERE team_no >= 0").unwrap();
    let mut seen = std::collections::HashMap::new();
    for m in &set.molecules {
        for a in m.atoms_of_node(1) {
            *seen.entry(a.id).or_insert(0usize) += 1;
        }
    }
    assert!(
        seen.values().any(|&n| n > 1),
        "non-disjoint molecules must share person atoms"
    );
    // Shared atoms are genuinely the same logical atom (same values).
    let shared = seen.iter().find(|(_, &n)| n > 1).map(|(id, _)| *id).unwrap();
    let copies: Vec<_> = set
        .molecules
        .iter()
        .flat_map(|m| m.atoms_of_node(1))
        .filter(|a| a.id == shared)
        .collect();
    assert!(copies.windows(2).all(|w| w[0] == w[1]));
}

#[test]
fn projection_of_component_attribute() {
    let db = setup();
    let set = exec::query(&db, "SELECT team_no, person.name FROM team-person WHERE team_no = 1")
        .unwrap();
    let m = &set.molecules[0];
    assert!(matches!(m.root.atom.values[1], Value::Int(1)));
    assert!(matches!(m.root.atom.values[2], Value::Null), "city projected away");
    for p in m.atoms_of_node(1) {
        assert!(matches!(p.values[3], Value::Str(_)), "name kept");
        assert!(matches!(p.values[2], Value::Null), "age projected away");
    }
}

#[test]
fn empty_results_are_not_errors() {
    let db = setup();
    let set = exec::query(&db, "SELECT ALL FROM team WHERE team_no = 999").unwrap();
    assert!(set.is_empty());
    let set = exec::query(&db, "SELECT ALL FROM team-person WHERE EXISTS_AT_LEAST (99) person: person.age > 0")
        .unwrap();
    assert!(set.is_empty());
}

#[test]
fn helpful_validation_errors() {
    let db = setup();
    let err = exec::query(&db, "SELECT ALL FROM team-widget").unwrap_err();
    assert!(err.to_string().contains("widget"), "{err}");
    let err = exec::query(&db, "SELECT ALL FROM team WHERE colour = 1").unwrap_err();
    assert!(err.to_string().contains("colour"), "{err}");
    let err = exec::query(&db, "SELECT ALL FROM team-person WHERE EXISTS_AT_LEAST (1) nosuch: nosuch.age > 1")
        .unwrap_err();
    assert!(err.to_string().contains("nosuch"), "{err}");
}

#[test]
fn seed_level_addressing_beyond_zero() {
    // Levels above 0 in predicates address deeper recursion levels.
    let db = Prima::builder()
        .build_with_ddl(
            "CREATE ATOM_TYPE n (id: IDENTIFIER, v: INTEGER,
                kids: SET_OF (REF_TO (n.parent)),
                parent: SET_OF (REF_TO (n.kids)))
             KEYS_ARE (v);
             DEFINE MOLECULE TYPE tree FROM n.kids - n (recursive);",
        )
        .unwrap();
    let leaf = db.insert("n", &[("v", Value::Int(3))]).unwrap();
    let mid = db
        .insert("n", &[("v", Value::Int(2)), ("kids", Value::ref_set(vec![leaf]))])
        .unwrap();
    let _root = db
        .insert("n", &[("v", Value::Int(1)), ("kids", Value::ref_set(vec![mid]))])
        .unwrap();
    let set = exec::query(&db, "SELECT ALL FROM tree WHERE tree (0).v = 1").unwrap();
    assert_eq!(set.molecules[0].depth(), 2);
    // Residual on level 2: only molecules whose level-2 set contains v=3.
    let set = exec::query(&db, "SELECT ALL FROM tree WHERE tree (0).v = 1 AND tree (2).v = 3")
        .unwrap();
    assert_eq!(set.len(), 1);
    let set = exec::query(&db, "SELECT ALL FROM tree WHERE tree (0).v = 1 AND tree (2).v = 99")
        .unwrap();
    assert!(set.is_empty());
}
