//! Fault-injecting block device for crash-consistency testing.
//!
//! [`FaultDisk`] wraps any inner [`BlockDevice`] (a [`crate::SimDisk`] or
//! a [`crate::FileDisk`]) and models what a real storage medium does to a
//! process that dies at the wrong moment. The central idea is the split
//! between two images of the device:
//!
//! * the **acknowledged image** — everything the kernel has successfully
//!   written and will read back while it keeps running; block writes land
//!   in an in-memory overlay (the "drive cache") and are served from
//!   there;
//! * the **persisted image** — what actually survives a crash. Only a
//!   completed barrier moves data from the overlay to the inner device:
//!   [`BlockDevice::sync`] flushes every cached block,
//!   [`BlockDevice::wal_append`] and [`BlockDevice::write_meta`] are
//!   synchronous in the real backends and therefore persist on return.
//!
//! A deterministic, seed-replayable [`FaultSchedule`] decides *when* the
//! crash happens and *how much* of the in-flight and cached state makes
//! it to the persisted image:
//!
//! * **crash points** — after the Nth mutating device operation, during
//!   the Nth WAL force, during the Nth fsync, or manually
//!   ([`FaultDisk::crash_now`]);
//! * **torn writes** — the in-flight operation persists a *prefix*: the
//!   first blocks of a chained transfer, the first bytes of a single
//!   block (merged over the old contents, like a partial sector write),
//!   or the first bytes of a WAL group append (the classic torn log
//!   tail);
//! * **partial fsync** — at the crash, each cached-but-unsynced block
//!   independently survives or vanishes (the cache drained in arbitrary
//!   order), and one cached block may itself be torn;
//! * **log bit-rot** — optional bit flips inside the torn WAL fragment,
//!   exercising the replay CRC path without touching acknowledged
//!   records.
//!
//! Once the crash fires, every subsequent call errors (the medium is
//! gone); the harness reopens the database from
//! [`FaultDisk::persisted_device`], which is exactly the inner device —
//! holding exactly what a real medium would after the kill.
//!
//! Every random decision is drawn from one splitmix64 stream seeded by
//! [`FaultSchedule::seed`], so a failing schedule replays bit-identically
//! from its seed alone.

use crate::disk::{BlockAddr, BlockDevice};
use crate::error::{StorageError, StorageResult};
use crate::stats::IoStats;
use parking_lot::{rank, Condvar, Mutex};
use std::collections::BTreeMap;
use std::sync::Arc;

/// When the scheduled crash fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CrashPoint {
    /// During the Nth mutating device operation (1-based; write, sync,
    /// meta, WAL append/reset all count).
    AfterOps(u64),
    /// During the Nth WAL group append — "during the 3rd WAL force".
    OnWalForce(u32),
    /// During the Nth fsync barrier.
    OnSync(u32),
    /// Never fires on its own; the harness calls [`FaultDisk::crash_now`]
    /// when the workload is done.
    Manual,
}

/// One deterministic fault scenario. See the module docs for the model.
#[derive(Debug, Clone)]
pub struct FaultSchedule {
    /// Seed of the decision stream; a schedule is fully reproducible
    /// from it (plus the workload's own determinism).
    pub seed: u64,
    /// When the crash fires.
    pub crash: CrashPoint,
    /// Percent chance (0–100) that each cached-but-unsynced block
    /// survives the crash.
    pub persist_pct: u8,
    /// Whether the in-flight operation persists a torn prefix instead of
    /// nothing.
    pub torn_in_flight: bool,
    /// Whether bits inside the torn WAL fragment are flipped (CRC path).
    pub rot_torn_tail: bool,
}

fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

impl FaultSchedule {
    /// Derives a randomized schedule from a seed: crash-point kind and
    /// position, cache-survival probability and tearing/bit-rot options
    /// all come from the seed's splitmix64 stream.
    pub fn from_seed(seed: u64) -> FaultSchedule {
        let mut s = seed ^ 0x5eed_5eed_5eed_5eed;
        let crash = match splitmix(&mut s) % 10 {
            // Most schedules crash on an op count: that lands on every
            // kind of device operation with workload-dependent timing.
            0..=5 => CrashPoint::AfterOps(1 + splitmix(&mut s) % 90),
            6..=7 => CrashPoint::OnWalForce(1 + (splitmix(&mut s) % 16) as u32),
            8 => CrashPoint::OnSync(1 + (splitmix(&mut s) % 5) as u32),
            _ => CrashPoint::Manual,
        };
        FaultSchedule {
            seed,
            crash,
            persist_pct: (splitmix(&mut s) % 101) as u8,
            torn_in_flight: !splitmix(&mut s).is_multiple_of(4),
            rot_torn_tail: splitmix(&mut s).is_multiple_of(3),
        }
    }

    /// A schedule that never crashes by itself ([`CrashPoint::Manual`]);
    /// the harness decides when to pull the plug.
    pub fn manual(seed: u64) -> FaultSchedule {
        FaultSchedule {
            seed,
            crash: CrashPoint::Manual,
            persist_pct: 50,
            torn_in_flight: true,
            rot_torn_tail: false,
        }
    }
}

/// What kind of mutating operation is in flight (crash-point matching).
#[derive(Clone, Copy, PartialEq, Eq)]
enum OpKind {
    Write,
    Sync,
    Meta,
    WalAppend,
    WalReset,
}

struct FaultState {
    rng: u64,
    ops: u64,
    forces: u32,
    syncs: u32,
    crashed: bool,
    /// Crash point armed after construction ([`FaultDisk::arm`]);
    /// overrides the schedule's.
    armed: Option<CrashPoint>,
    /// Remaining WAL appends to fail with a *transient* error (no
    /// crash) — an ENOSPC-style hiccup the medium survives.
    fail_appends: u32,
    /// The drive cache: acknowledged block writes that no completed
    /// barrier has persisted yet. BTreeMap for deterministic drain order.
    cache: BTreeMap<BlockAddr, Vec<u8>>,
}

/// Controls for parking callers *inside* [`BlockDevice::wal_append`] —
/// a slow-device model for tests that need to observe what the rest of
/// the kernel does while a log force is in flight.
struct StallGate {
    hold: bool,
    stalled: usize,
}

impl FaultState {
    fn roll(&mut self) -> u64 {
        splitmix(&mut self.rng)
    }

    fn pct(&mut self, pct: u8) -> bool {
        self.roll() % 100 < pct as u64
    }
}

/// Fault-injection wrapper around an inner [`BlockDevice`]. See module
/// docs for the fault model and [`FaultSchedule`] for the knobs.
pub struct FaultDisk {
    inner: Arc<dyn BlockDevice>,
    schedule: FaultSchedule,
    // lockrank: device.0 — fault-injection state (schedule, persisted
    // images); outermost of the wrapper's locks.
    state: Mutex<FaultState>,
    // lockrank: device.1 — stall gate parking I/O threads.
    gate: Mutex<StallGate>,
    gate_cv: Condvar,
}

impl std::fmt::Debug for FaultDisk {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FaultDisk").field("schedule", &self.schedule).finish_non_exhaustive()
    }
}

fn crashed_err() -> StorageError {
    StorageError::DeviceError("fault-disk: device crashed (scheduled fault)".into())
}

impl FaultDisk {
    /// Wraps `inner` under `schedule`. The inner device must be empty or
    /// freshly created: the wrapper assumes every block it has not cached
    /// is already persisted.
    pub fn new(inner: Arc<dyn BlockDevice>, schedule: FaultSchedule) -> Arc<FaultDisk> {
        let rng = schedule.seed ^ 0xfau64.rotate_left(32);
        Arc::new(FaultDisk {
            inner,
            schedule,
            state: Mutex::new_ranked(FaultState {
                rng,
                ops: 0,
                forces: 0,
                syncs: 0,
                crashed: false,
                armed: None,
                fail_appends: 0,
                cache: BTreeMap::new(),
            }, rank::DEVICE),
            gate: Mutex::new_ranked(StallGate { hold: false, stalled: 0 }, rank::DEVICE + 1),
            gate_cv: Condvar::new(),
        })
    }

    /// Parks every subsequent [`BlockDevice::wal_append`] caller at the
    /// top of the call (before any fault bookkeeping) until
    /// [`FaultDisk::release_wal_appends`] — a stalled fsync. Counters
    /// and [`FaultDisk::crash_now`] stay reachable while callers park.
    pub fn hold_wal_appends(&self) {
        self.gate.lock().hold = true;
    }

    /// Releases callers parked by [`FaultDisk::hold_wal_appends`].
    pub fn release_wal_appends(&self) {
        self.gate.lock().hold = false;
        self.gate_cv.notify_all();
    }

    /// How many threads are currently parked inside `wal_append` —
    /// lets a test wait until a force is provably in flight.
    pub fn stalled_wal_appends(&self) -> usize {
        self.gate.lock().stalled
    }

    /// Fails the next `n` WAL appends with a transient device error
    /// *without* crashing the medium — exercises the WAL's poison path
    /// (the log tail is suspect, later truncation heals it) in a world
    /// where the device keeps living.
    pub fn fail_wal_appends(&self, n: u32) {
        self.state.lock().fail_appends = n;
    }

    /// The schedule this device runs.
    pub fn schedule(&self) -> &FaultSchedule {
        &self.schedule
    }

    /// Whether the scheduled crash has fired.
    pub fn has_crashed(&self) -> bool {
        self.state.lock().crashed
    }

    /// Mutating device operations counted so far.
    pub fn ops(&self) -> u64 {
        self.state.lock().ops
    }

    /// WAL group appends (device-level forces) counted so far.
    pub fn wal_forces(&self) -> u32 {
        self.state.lock().forces
    }

    /// Re-arms the crash point mid-run, overriding the schedule — for
    /// targeted tests that let a setup phase complete undisturbed and
    /// then crash a *specific* later operation ("the next WAL force is
    /// the one carrying this commit").
    pub fn arm(&self, crash: CrashPoint) {
        self.state.lock().armed = Some(crash);
    }

    /// The persisted image: the inner device, which after the crash holds
    /// exactly what a real medium would. Reopen the database from this.
    pub fn persisted_device(&self) -> Arc<dyn BlockDevice> {
        Arc::clone(&self.inner)
    }

    /// Pulls the plug now (no in-flight operation): the cache drains
    /// partially per the schedule and every later call errors. Idempotent.
    pub fn crash_now(&self) {
        let mut st = self.state.lock();
        if !st.crashed {
            self.apply_crash(&mut st);
        }
    }

    /// Counts one mutating op and decides whether the scheduled crash
    /// fires *during* it. Returns `Err` if the device is already dead.
    fn note_op(&self, st: &mut FaultState, kind: OpKind) -> StorageResult<bool> {
        if st.crashed {
            return Err(crashed_err());
        }
        st.ops += 1;
        if kind == OpKind::WalAppend {
            st.forces += 1;
        }
        if kind == OpKind::Sync {
            st.syncs += 1;
        }
        Ok(match st.armed.unwrap_or(self.schedule.crash) {
            CrashPoint::AfterOps(n) => st.ops == n,
            CrashPoint::OnWalForce(n) => kind == OpKind::WalAppend && st.forces == n,
            CrashPoint::OnSync(n) => kind == OpKind::Sync && st.syncs == n,
            CrashPoint::Manual => false,
        })
    }

    /// The crash itself: each cached block survives with `persist_pct`
    /// probability (one surviving block may additionally be torn), the
    /// rest is lost, and the device is dead from here on.
    fn apply_crash(&self, st: &mut FaultState) {
        st.crashed = true;
        let cache = std::mem::take(&mut st.cache);
        let mut tear_budget = if self.schedule.torn_in_flight { 1usize } else { 0 };
        for (addr, bytes) in cache {
            if !st.pct(self.schedule.persist_pct) {
                continue; // this block never left the drive cache
            }
            if tear_budget > 0 && st.pct(25) {
                tear_budget -= 1;
                let cut = (st.roll() as usize) % (bytes.len() + 1);
                self.persist_torn_block(addr, &bytes, cut);
            } else {
                let _ = self.inner.write_block(addr, &bytes);
            }
        }
    }

    /// Persists `new[..cut]` merged over the block's old persisted
    /// contents — a partial sector write.
    fn persist_torn_block(&self, addr: BlockAddr, new: &[u8], cut: usize) {
        let mut merged = vec![0u8; new.len()];
        // Old persisted content as the base; a never-written block reads
        // zero, which is exactly what the medium would hold.
        if self.inner.read_block(addr, &mut merged).is_err() {
            merged.fill(0);
        }
        merged[..cut].copy_from_slice(&new[..cut]);
        let _ = self.inner.write_block(addr, &merged);
    }

    /// Crash during a single-block write: optionally persist a torn
    /// prefix of the in-flight block, then drain the cache partially.
    fn crash_during_write(&self, st: &mut FaultState, addr: BlockAddr, buf: &[u8]) {
        // The in-flight write supersedes any cached version of the block.
        st.cache.remove(&addr);
        if self.schedule.torn_in_flight {
            let cut = (st.roll() as usize) % (buf.len() + 1);
            self.persist_torn_block(addr, buf, cut);
        }
        self.apply_crash(st);
    }
}

impl BlockDevice for FaultDisk {
    fn create_file(&self, file: u32, block_len: usize) -> StorageResult<()> {
        let mut st = self.state.lock();
        if st.crashed {
            return Err(crashed_err());
        }
        // File creation passes straight through: the bootstrap checkpoint
        // syncs it before any workload runs, and modelling a lost create
        // would only ever produce "segment file missing" noise.
        st.cache.retain(|a, _| a.file != file);
        self.inner.create_file(file, block_len)
    }

    fn block_len(&self, file: u32) -> StorageResult<usize> {
        if self.state.lock().crashed {
            return Err(crashed_err());
        }
        self.inner.block_len(file)
    }

    fn read_block(&self, addr: BlockAddr, buf: &mut [u8]) -> StorageResult<()> {
        let st = self.state.lock();
        if st.crashed {
            return Err(crashed_err());
        }
        // The acknowledged image: cache first, then the persisted image.
        if let Some(bytes) = st.cache.get(&addr) {
            buf.copy_from_slice(bytes);
            return Ok(());
        }
        self.inner.read_block(addr, buf)
    }

    fn write_block(&self, addr: BlockAddr, buf: &[u8]) -> StorageResult<()> {
        let mut st = self.state.lock();
        if self.note_op(&mut st, OpKind::Write)? {
            self.crash_during_write(&mut st, addr, buf);
            return Err(crashed_err());
        }
        st.cache.insert(addr, buf.to_vec());
        Ok(())
    }

    fn read_chained(&self, addr: BlockAddr, count: u32, buf: &mut [u8]) -> StorageResult<()> {
        let st = self.state.lock();
        if st.crashed {
            return Err(crashed_err());
        }
        self.inner.read_chained(addr, count, buf)?;
        // Patch acknowledged-but-unsynced blocks over the persisted run.
        let block_len = buf.len() / count as usize;
        for i in 0..count {
            let a = BlockAddr::new(addr.file, addr.block + i);
            if let Some(bytes) = st.cache.get(&a) {
                buf[i as usize * block_len..(i as usize + 1) * block_len]
                    .copy_from_slice(bytes);
            }
        }
        Ok(())
    }

    fn write_chained(&self, addr: BlockAddr, count: u32, buf: &[u8]) -> StorageResult<()> {
        let mut st = self.state.lock();
        let block_len = buf.len() / count as usize;
        if self.note_op(&mut st, OpKind::Write)? {
            // Torn chained transfer: a prefix of whole blocks persists,
            // the block after the prefix may itself be torn.
            for i in 0..count {
                st.cache.remove(&BlockAddr::new(addr.file, addr.block + i));
            }
            if self.schedule.torn_in_flight {
                let keep = (st.roll() % (count as u64 + 1)) as u32;
                for i in 0..keep {
                    let a = BlockAddr::new(addr.file, addr.block + i);
                    let b = &buf[i as usize * block_len..(i as usize + 1) * block_len];
                    let _ = self.inner.write_block(a, b);
                }
                if keep < count {
                    let a = BlockAddr::new(addr.file, addr.block + keep);
                    let b = &buf
                        [keep as usize * block_len..(keep as usize + 1) * block_len];
                    let cut = (st.roll() as usize) % (block_len + 1);
                    self.persist_torn_block(a, b, cut);
                }
            }
            self.apply_crash(&mut st);
            return Err(crashed_err());
        }
        for i in 0..count {
            let a = BlockAddr::new(addr.file, addr.block + i);
            st.cache
                .insert(a, buf[i as usize * block_len..(i as usize + 1) * block_len].to_vec());
        }
        Ok(())
    }

    fn stats(&self) -> Arc<IoStats> {
        self.inner.stats()
    }

    fn sync(&self) -> StorageResult<()> {
        let mut st = self.state.lock();
        if self.note_op(&mut st, OpKind::Sync)? {
            // Crash mid-fsync: the cache drained only partially.
            self.apply_crash(&mut st);
            return Err(crashed_err());
        }
        // A completed fsync is honest: everything acknowledged is now
        // persisted. Each block leaves the cache only after its inner
        // write succeeded — a genuine inner-device error (the FileDisk
        // leg hitting ENOSPC, say) must not silently drop the rest of
        // the acknowledged image.
        while let Some((&addr, bytes)) = st.cache.iter().next() {
            let bytes = bytes.clone();
            self.inner.write_block(addr, &bytes)?;
            st.cache.remove(&addr);
        }
        self.inner.sync()
    }

    fn write_meta(&self, bytes: &[u8]) -> StorageResult<()> {
        let mut st = self.state.lock();
        if self.note_op(&mut st, OpKind::Meta)? {
            // The meta blob is replaced atomically (write-temp + rename):
            // at a crash either the old or the complete new blob survives.
            if st.pct(50) {
                let _ = self.inner.write_meta(bytes);
            }
            self.apply_crash(&mut st);
            return Err(crashed_err());
        }
        self.inner.write_meta(bytes)
    }

    fn read_meta(&self) -> StorageResult<Option<Vec<u8>>> {
        if self.state.lock().crashed {
            return Err(crashed_err());
        }
        self.inner.read_meta()
    }

    fn wal_append(&self, bytes: &[u8]) -> StorageResult<()> {
        // Stall gate first, *before* the state lock, so a parked caller
        // models a slow device without blocking crash_now / arm / the
        // counters other threads read.
        {
            let mut g = self.gate.lock();
            if g.hold {
                g.stalled += 1;
                while g.hold {
                    self.gate_cv.wait(&mut g);
                }
                g.stalled -= 1;
            }
        }
        let mut st = self.state.lock();
        if st.crashed {
            return Err(crashed_err());
        }
        if st.fail_appends > 0 {
            st.fail_appends -= 1;
            st.ops += 1;
            st.forces += 1; // an attempted force, like note_op counts
            return Err(StorageError::DeviceError(
                "fault-disk: injected transient wal_append failure".into(),
            ));
        }
        if self.note_op(&mut st, OpKind::WalAppend)? {
            // Torn group append: a prefix of the batch reaches the log
            // area, optionally with bit rot inside the fragment. Replay
            // must stop at the damage — everything in this batch belongs
            // to work that was never acknowledged.
            if self.schedule.torn_in_flight && !bytes.is_empty() {
                let cut = (st.roll() as usize) % (bytes.len() + 1);
                let mut frag = bytes[..cut].to_vec();
                if self.schedule.rot_torn_tail && !frag.is_empty() {
                    let flips = 1 + (st.roll() as usize) % 4;
                    for _ in 0..flips {
                        let pos = (st.roll() as usize) % frag.len();
                        let bit = (st.roll() % 8) as u32;
                        frag[pos] ^= 1u8 << bit;
                    }
                }
                if !frag.is_empty() {
                    let _ = self.inner.wal_append(&frag);
                }
            }
            self.apply_crash(&mut st);
            return Err(crashed_err());
        }
        // A completed append is durable: the real backends fsync inside.
        self.inner.wal_append(bytes)
    }

    fn wal_contents(&self) -> StorageResult<Vec<u8>> {
        if self.state.lock().crashed {
            return Err(crashed_err());
        }
        self.inner.wal_contents()
    }

    fn wal_reset(&self) -> StorageResult<()> {
        let mut st = self.state.lock();
        if self.note_op(&mut st, OpKind::WalReset)? {
            // Truncation either happened or it did not.
            if st.pct(50) {
                let _ = self.inner.wal_reset();
            }
            self.apply_crash(&mut st);
            return Err(crashed_err());
        }
        self.inner.wal_reset()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::disk::SimDisk;

    fn inner() -> Arc<dyn BlockDevice> {
        let d = Arc::new(SimDisk::new());
        d.create_file(0, 512).unwrap();
        d
    }

    #[test]
    fn acknowledged_writes_are_readable_but_not_persisted_until_sync() {
        let dev = inner();
        let fault = FaultDisk::new(Arc::clone(&dev), FaultSchedule::manual(1));
        fault.write_block(BlockAddr::new(0, 0), &[7u8; 512]).unwrap();
        // Acknowledged image sees the write...
        let mut buf = [0u8; 512];
        fault.read_block(BlockAddr::new(0, 0), &mut buf).unwrap();
        assert_eq!(buf, [7u8; 512]);
        // ...the persisted image does not.
        dev.read_block(BlockAddr::new(0, 0), &mut buf).unwrap();
        assert_eq!(buf, [0u8; 512]);
        // A completed fsync persists it.
        fault.sync().unwrap();
        dev.read_block(BlockAddr::new(0, 0), &mut buf).unwrap();
        assert_eq!(buf, [7u8; 512]);
    }

    #[test]
    fn crash_loses_unsynced_cache_and_kills_the_device() {
        let dev = inner();
        let mut sched = FaultSchedule::manual(2);
        sched.persist_pct = 0;
        let fault = FaultDisk::new(Arc::clone(&dev), sched);
        fault.write_block(BlockAddr::new(0, 3), &[9u8; 512]).unwrap();
        fault.crash_now();
        assert!(fault.has_crashed());
        let mut buf = [1u8; 512];
        assert!(fault.read_block(BlockAddr::new(0, 3), &mut buf).is_err());
        assert!(fault.write_block(BlockAddr::new(0, 3), &[2u8; 512]).is_err());
        dev.read_block(BlockAddr::new(0, 3), &mut buf).unwrap();
        assert!(buf.iter().all(|&b| b == 0), "unsynced write must vanish");
    }

    #[test]
    fn crash_point_counts_wal_forces_and_tears_the_batch() {
        let dev = inner();
        let sched = FaultSchedule {
            seed: 3,
            crash: CrashPoint::OnWalForce(2),
            persist_pct: 100,
            torn_in_flight: true,
            rot_torn_tail: false,
        };
        let fault = FaultDisk::new(Arc::clone(&dev), sched);
        fault.wal_append(&[1u8; 64]).unwrap();
        let err = fault.wal_append(&[2u8; 64]);
        assert!(err.is_err(), "second force is the crash point");
        assert!(fault.has_crashed());
        let log = dev.wal_contents().unwrap();
        assert!(log.len() >= 64, "first append fully persisted");
        assert!(log.len() < 128, "second append at most a torn prefix");
        assert!(log[..64].iter().all(|&b| b == 1));
    }

    #[test]
    fn schedules_are_reproducible_from_their_seed() {
        for seed in [0u64, 1, 42, 0xdead_beef] {
            let a = FaultSchedule::from_seed(seed);
            let b = FaultSchedule::from_seed(seed);
            assert_eq!(a.crash, b.crash);
            assert_eq!(a.persist_pct, b.persist_pct);
            assert_eq!(a.torn_in_flight, b.torn_in_flight);
            assert_eq!(a.rot_torn_tail, b.rot_torn_tail);
        }
    }

    #[test]
    fn partial_fsync_drains_a_seed_chosen_subset() {
        let dev = inner();
        let sched = FaultSchedule {
            seed: 77,
            crash: CrashPoint::OnSync(1),
            persist_pct: 50,
            torn_in_flight: false,
            rot_torn_tail: false,
        };
        let fault = FaultDisk::new(Arc::clone(&dev), sched);
        for b in 0..32u32 {
            fault.write_block(BlockAddr::new(0, b), &[b as u8 + 1; 512]).unwrap();
        }
        assert!(fault.sync().is_err(), "first sync is the crash point");
        let mut survived = 0;
        let mut buf = [0u8; 512];
        for b in 0..32u32 {
            dev.read_block(BlockAddr::new(0, b), &mut buf).unwrap();
            if buf.iter().any(|&x| x != 0) {
                survived += 1;
            }
        }
        assert!(
            survived > 0 && survived < 32,
            "a strict subset should persist, got {survived}/32"
        );
    }
}
