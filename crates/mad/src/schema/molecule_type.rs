//! Molecule types: dynamically superimposed structures over atoms.
//!
//! "Molecules are defined — in the query language, not in the schema — by
//! naming the atom types and their associations" (Section 2.1). A molecule
//! type is a rooted structure whose nodes are atom types (or previously
//! named molecule types, later inlined) and whose edges are associations;
//! Fig. 2.3c names four examples, including the *recursive*
//! `piece_list FROM solid.sub - solid (recursive)` and Table 2.1d shows a
//! tree-structured `brep-edge (face, point)` with brace expressions.

use std::fmt;

/// A node in a molecule structure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MoleculeNode {
    /// Atom-type name — or the name of a previously defined molecule type,
    /// which query validation inlines ("resolution of predefined molecule
    /// types", Section 3.1).
    pub component: String,
    /// Reference attribute on the *parent* used to reach this node, when
    /// disambiguation is needed (the `solid.sub - solid` notation); `None`
    /// lets the (unique) association be inferred.
    pub via_attr: Option<String>,
    /// Child components (brace expression `a (b, c)` produces two
    /// children).
    pub children: Vec<MoleculeNode>,
    /// Marks a recursive edge: the node re-expands through the same
    /// association level by level (`(recursive)` in Fig. 2.3c).
    pub recursive: bool,
}

impl MoleculeNode {
    pub fn leaf(component: impl Into<String>) -> Self {
        MoleculeNode {
            component: component.into(),
            via_attr: None,
            children: Vec::new(),
            recursive: false,
        }
    }

    pub fn with_children(component: impl Into<String>, children: Vec<MoleculeNode>) -> Self {
        MoleculeNode { component: component.into(), via_attr: None, children, recursive: false }
    }

    /// Builder: set the disambiguating parent attribute.
    pub fn via(mut self, attr: impl Into<String>) -> Self {
        self.via_attr = Some(attr.into());
        self
    }

    /// Builder: mark recursive.
    pub fn recursive(mut self) -> Self {
        self.recursive = true;
        self
    }

    /// All component names in pre-order.
    pub fn component_names(&self) -> Vec<&str> {
        let mut out = vec![self.component.as_str()];
        for c in &self.children {
            out.extend(c.component_names());
        }
        out
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        1 + self.children.iter().map(MoleculeNode::node_count).sum::<usize>()
    }

    /// Depth of the structure (a single node has depth 1).
    pub fn depth(&self) -> usize {
        1 + self.children.iter().map(MoleculeNode::depth).max().unwrap_or(0)
    }
}

/// A molecule structure: a rooted tree of components. (Meshed — i.e.
/// non-hierarchical — molecule structures are resolved by the data system
/// "into an equivalent hierarchical one which is easier to cope with",
/// Section 3.1, so the stored form is always a tree.)
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MoleculeGraph {
    pub root: MoleculeNode,
}

impl MoleculeGraph {
    pub fn new(root: MoleculeNode) -> Self {
        MoleculeGraph { root }
    }

    /// A linear chain `a-b-c-…` (the Table 2.1a notation).
    #[allow(clippy::unwrap_used, clippy::expect_used)]
    pub fn linear(components: &[&str]) -> Self {
        let mut iter = components.iter().rev();
        // lint: allow(error-hygiene, component list was checked non-empty on registration)
        let last = iter.next().expect("at least one component");
        let mut node = MoleculeNode::leaf(*last);
        for c in iter {
            node = MoleculeNode::with_children(*c, vec![node]);
        }
        MoleculeGraph { root: node }
    }

    pub fn component_names(&self) -> Vec<&str> {
        self.root.component_names()
    }

    /// True if any edge is recursive.
    pub fn is_recursive(&self) -> bool {
        fn rec(n: &MoleculeNode) -> bool {
            n.recursive || n.children.iter().any(rec)
        }
        rec(&self.root)
    }
}

impl fmt::Display for MoleculeNode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if let Some(v) = &self.via_attr {
            // parent.attr - child form is printed by the parent; here we
            // only annotate.
            write!(f, ".{v}-")?;
        }
        write!(f, "{}", self.component)?;
        if self.recursive {
            write!(f, " (RECURSIVE)")?;
        }
        match self.children.len() {
            0 => Ok(()),
            1 => write!(f, "-{}", self.children[0]),
            _ => {
                write!(f, " (")?;
                for (i, c) in self.children.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{c}")?;
                }
                write!(f, ")")
            }
        }
    }
}

impl fmt::Display for MoleculeGraph {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.root)
    }
}

/// A named molecule type (`DEFINE MOLECULE TYPE name FROM structure`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MoleculeType {
    pub name: String,
    pub graph: MoleculeGraph,
}

impl MoleculeType {
    pub fn new(name: impl Into<String>, graph: MoleculeGraph) -> Self {
        MoleculeType { name: name.into(), graph }
    }

    /// Convenience: a linear chain.
    pub fn linear(name: impl Into<String>, components: &[&str]) -> Self {
        MoleculeType { name: name.into(), graph: MoleculeGraph::linear(components) }
    }
}

impl fmt::Display for MoleculeType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "DEFINE MOLECULE TYPE {} FROM {}", self.name, self.graph)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linear_chain_structure() {
        let g = MoleculeGraph::linear(&["brep", "face", "edge", "point"]);
        assert_eq!(g.component_names(), vec!["brep", "face", "edge", "point"]);
        assert_eq!(g.root.node_count(), 4);
        assert_eq!(g.root.depth(), 4);
        assert!(!g.is_recursive());
        assert_eq!(g.to_string(), "brep-face-edge-point");
    }

    #[test]
    fn branching_structure_table_2_1d() {
        // brep-edge (face, point)
        let g = MoleculeGraph::new(MoleculeNode::with_children(
            "brep",
            vec![MoleculeNode::with_children(
                "edge",
                vec![MoleculeNode::leaf("face"), MoleculeNode::leaf("point")],
            )],
        ));
        assert_eq!(g.root.node_count(), 4);
        assert_eq!(g.root.depth(), 3);
        assert_eq!(g.to_string(), "brep-edge (face, point)");
    }

    #[test]
    fn recursive_piece_list() {
        // DEFINE MOLECULE TYPE piece_list FROM solid.sub - solid (recursive)
        let g = MoleculeGraph::new(MoleculeNode {
            component: "solid".into(),
            via_attr: None,
            children: vec![MoleculeNode::leaf("solid").via("sub").recursive()],
            recursive: false,
        });
        assert!(g.is_recursive());
        let mt = MoleculeType::new("piece_list", g);
        assert!(mt.to_string().contains("RECURSIVE"));
    }

    #[test]
    fn single_component_molecule() {
        let g = MoleculeGraph::linear(&["solid"]);
        assert_eq!(g.root.node_count(), 1);
        assert_eq!(g.to_string(), "solid");
    }
}
