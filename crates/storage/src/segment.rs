//! Segments and the storage-system facade.
//!
//! "As in conventional systems the objects, i.e. containers, offered by the
//! storage system are segments divided into pages of equal size"
//! (Section 3.3). Each segment chooses one of the five page sizes; the
//! mapping between its pages and the blocks of the underlying file is the
//! identity (that is *why* the paper restricts page sizes to the file
//! manager's block sizes).
//!
//! [`StorageSystem`] bundles a block device, the segment directory and the
//! buffer manager into the interface the access system programs against:
//! allocate/free pages, fix/unfix them through the buffer, create and read
//! page sequences, and observe I/O.

use crate::buffer::{BufferManager, BufferStats, PageGuard, PageGuardMut, PageStore};
use crate::disk::{BlockAddr, BlockDevice};
use crate::error::{StorageError, StorageResult};
use crate::page::{Page, PageId, PageSize, PageType};
use crate::stats::IoStats;
use parking_lot::RwLock;
use std::collections::HashMap;
use std::sync::Arc;

/// Identifier of a segment (also the file number on the device).
pub type SegmentId = u32;

/// Per-segment allocation state. Allocation metadata is kept in memory:
/// the paper defers media recovery to a later paper, and the reproduction
/// follows it (DESIGN.md, non-goals).
#[derive(Debug)]
pub struct Segment {
    pub id: SegmentId,
    pub page_size: PageSize,
    next_page: u32,
    free: Vec<u32>,
    allocated: u64,
}

impl Segment {
    fn new(id: SegmentId, page_size: PageSize) -> Self {
        Segment { id, page_size, next_page: 0, free: Vec::new(), allocated: 0 }
    }

    /// Number of currently allocated pages.
    pub fn allocated_pages(&self) -> u64 {
        self.allocated
    }

    /// High-water mark: pages ever handed out.
    pub fn extent(&self) -> u32 {
        self.next_page
    }
}

/// Shared state implementing [`PageStore`] for the buffer: the device plus
/// the segment directory (for page-size lookup).
pub(crate) struct DiskStore {
    pub device: Arc<dyn BlockDevice>,
    pub segments: RwLock<HashMap<SegmentId, Segment>>,
}

impl PageStore for DiskStore {
    fn load(&self, id: PageId) -> StorageResult<Page> {
        let size = self.page_size_of(id.segment)?;
        let mut buf = vec![0u8; size.bytes()];
        self.device.read_block(BlockAddr::new(id.segment, id.page), &mut buf)?;
        Page::from_bytes(id, size, &buf)
    }

    fn store(&self, page: &mut Page) -> StorageResult<()> {
        page.update_checksum();
        let id = page.id();
        self.device.write_block(BlockAddr::new(id.segment, id.page), page.as_bytes())
    }

    fn page_size_of(&self, segment: u32) -> StorageResult<PageSize> {
        self.segments
            .read()
            .get(&segment)
            .map(|s| s.page_size)
            .ok_or(StorageError::UnknownSegment(segment))
    }
}

/// The storage system: segments, buffered pages, page sequences.
pub struct StorageSystem {
    store: Arc<DiskStore>,
    buffer: BufferManager,
    next_segment: RwLock<SegmentId>,
}

impl StorageSystem {
    /// Builds a storage system over `device` with a buffer of
    /// `buffer_bytes`.
    pub fn new(device: Arc<dyn BlockDevice>, buffer_bytes: usize) -> Self {
        let store =
            Arc::new(DiskStore { device, segments: RwLock::new(HashMap::new()) });
        // Latch-shard the pool for parallel DUs; semantics per shard are
        // the paper's modified LRU.
        let shards = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(4).min(16);
        let buffer = BufferManager::with_shards(
            Arc::clone(&store) as Arc<dyn PageStore>,
            buffer_bytes,
            shards,
        );
        StorageSystem { store, buffer, next_segment: RwLock::new(0) }
    }

    /// Convenience: storage system over a fresh simulated disk.
    pub fn in_memory(buffer_bytes: usize) -> Self {
        Self::new(Arc::new(crate::disk::SimDisk::new()), buffer_bytes)
    }

    /// Creates a segment with the chosen page size; its file is created on
    /// the device with the matching block length.
    pub fn create_segment(&self, page_size: PageSize) -> SegmentId {
        let mut next = self.next_segment.write();
        let id = *next;
        *next += 1;
        self.store.device.create_file(id, page_size.bytes());
        self.store.segments.write().insert(id, Segment::new(id, page_size));
        id
    }

    /// Page size of a segment.
    pub fn page_size(&self, segment: SegmentId) -> StorageResult<PageSize> {
        self.store.page_size_of(segment)
    }

    /// Allocates one page in the segment. Freed pages are reused first.
    pub fn allocate_page(&self, segment: SegmentId) -> StorageResult<PageId> {
        let mut segs = self.store.segments.write();
        let seg = segs.get_mut(&segment).ok_or(StorageError::UnknownSegment(segment))?;
        let page = match seg.free.pop() {
            Some(p) => p,
            None => {
                let p = seg.next_page;
                seg.next_page += 1;
                p
            }
        };
        seg.allocated += 1;
        Ok(PageId::new(segment, page))
    }

    /// Allocates `count` *contiguous* pages (for a page sequence) and
    /// returns the first id. Contiguity is what enables chained I/O.
    pub fn allocate_run(&self, segment: SegmentId, count: u32) -> StorageResult<PageId> {
        let mut segs = self.store.segments.write();
        let seg = segs.get_mut(&segment).ok_or(StorageError::UnknownSegment(segment))?;
        let first = seg.next_page;
        seg.next_page += count;
        seg.allocated += count as u64;
        Ok(PageId::new(segment, first))
    }

    /// Frees one page: it leaves the buffer (no write-back) and becomes
    /// reusable.
    pub fn free_page(&self, id: PageId) -> StorageResult<()> {
        self.buffer.discard(id)?;
        let mut segs = self.store.segments.write();
        let seg = segs.get_mut(&id.segment).ok_or(StorageError::UnknownSegment(id.segment))?;
        if id.page >= seg.next_page {
            return Err(StorageError::PageOutOfRange { segment: id.segment, page: id.page });
        }
        seg.free.push(id.page);
        seg.allocated = seg.allocated.saturating_sub(1);
        Ok(())
    }

    /// Fixes a page for reading (through the buffer).
    pub fn fix(&self, id: PageId) -> StorageResult<PageGuard> {
        self.buffer.fix(id)
    }

    /// Fixes a page for update.
    pub fn fix_mut(&self, id: PageId) -> StorageResult<PageGuardMut> {
        self.buffer.fix_mut(id)
    }

    /// Installs a freshly allocated page, fixed for update, without device
    /// read.
    pub fn fix_new(&self, id: PageId, ptype: PageType) -> StorageResult<PageGuardMut> {
        self.buffer.fix_new(id, ptype)
    }

    /// Checkpoint: write all dirty pages back.
    pub fn flush(&self) -> StorageResult<()> {
        self.buffer.flush_all()
    }

    /// Reads `count` contiguous pages starting at `first` in one chained
    /// run, bypassing the buffer (the page-sequence fast path; the caller
    /// gets owned page images). Pages currently dirty in the buffer are
    /// flushed first so the device image is current.
    pub fn read_run_chained(&self, first: PageId, count: u32) -> StorageResult<Vec<Page>> {
        let size = self.page_size(first.segment)?;
        // Make sure the device sees current contents for this run.
        self.buffer.flush_all()?;
        let mut buf = vec![0u8; count as usize * size.bytes()];
        self.store.device.read_chained(BlockAddr::new(first.segment, first.page), count, &mut buf)?;
        let mut pages = Vec::with_capacity(count as usize);
        for i in 0..count {
            let id = PageId::new(first.segment, first.page + i);
            let bytes = &buf[i as usize * size.bytes()..(i as usize + 1) * size.bytes()];
            pages.push(Page::from_bytes(id, size, bytes)?);
        }
        Ok(pages)
    }

    /// Drops the buffer cache (flushing dirty pages first): subsequent
    /// reads hit the device. For cold-read experiments.
    pub fn drop_cache(&self) -> StorageResult<()> {
        self.buffer.evict_all()
    }

    /// Device-level I/O statistics.
    pub fn io_stats(&self) -> Arc<IoStats> {
        self.store.device.stats()
    }

    /// Buffer statistics.
    pub fn buffer_stats(&self) -> Arc<BufferStats> {
        self.buffer.stats()
    }

    /// Access to the buffer (used by page sequences and tests).
    pub fn buffer(&self) -> &BufferManager {
        &self.buffer
    }

    /// Runs `f` with the segment's metadata, if it exists.
    pub fn with_segment<R>(&self, id: SegmentId, f: impl FnOnce(&Segment) -> R) -> StorageResult<R> {
        let segs = self.store.segments.read();
        let seg = segs.get(&id).ok_or(StorageError::UnknownSegment(id))?;
        Ok(f(seg))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sys() -> StorageSystem {
        StorageSystem::in_memory(64 * 1024)
    }

    #[test]
    fn create_segments_with_all_page_sizes() {
        let s = sys();
        for size in PageSize::ALL {
            let seg = s.create_segment(size);
            assert_eq!(s.page_size(seg).unwrap(), size);
        }
    }

    #[test]
    fn allocate_write_read() {
        let s = sys();
        let seg = s.create_segment(PageSize::K1);
        let id = s.allocate_page(seg).unwrap();
        {
            let mut g = s.fix_new(id, PageType::Data).unwrap();
            g.write_payload(b"molecule data").unwrap();
        }
        s.flush().unwrap();
        let g = s.fix(id).unwrap();
        assert_eq!(g.payload(), b"molecule data");
    }

    #[test]
    fn freed_pages_are_reused() {
        let s = sys();
        let seg = s.create_segment(PageSize::Half);
        let a = s.allocate_page(seg).unwrap();
        let b = s.allocate_page(seg).unwrap();
        assert_ne!(a, b);
        s.free_page(a).unwrap();
        let c = s.allocate_page(seg).unwrap();
        assert_eq!(c, a, "free list should be reused first");
        s.with_segment(seg, |m| assert_eq!(m.allocated_pages(), 2)).unwrap();
    }

    #[test]
    fn allocate_run_is_contiguous() {
        let s = sys();
        let seg = s.create_segment(PageSize::Half);
        let _ = s.allocate_page(seg).unwrap();
        let first = s.allocate_run(seg, 5).unwrap();
        for i in 0..5 {
            // All five ids are consecutive.
            let id = PageId::new(seg, first.page + i);
            let _ = s.fix_new(id, PageType::Data).unwrap();
        }
        let next = s.allocate_page(seg).unwrap();
        assert_eq!(next.page, first.page + 5);
    }

    #[test]
    fn chained_run_read_returns_current_contents() {
        let s = sys();
        let seg = s.create_segment(PageSize::Half);
        let first = s.allocate_run(seg, 3).unwrap();
        for i in 0..3u32 {
            let id = PageId::new(seg, first.page + i);
            let mut g = s.fix_new(id, PageType::Data).unwrap();
            g.write_payload(format!("component {i}").as_bytes()).unwrap();
        }
        let pages = s.read_run_chained(first, 3).unwrap();
        assert_eq!(pages.len(), 3);
        assert_eq!(pages[2].payload(), b"component 2");
        let io = s.io_stats().snapshot();
        assert_eq!(io.chained_runs, 1);
        assert_eq!(io.chained_blocks, 3);
    }

    #[test]
    fn unknown_segment_errors() {
        let s = sys();
        assert!(matches!(s.allocate_page(42), Err(StorageError::UnknownSegment(42))));
        assert!(s.page_size(42).is_err());
    }

    #[test]
    fn free_page_out_of_range_errors() {
        let s = sys();
        let seg = s.create_segment(PageSize::Half);
        assert!(matches!(
            s.free_page(PageId::new(seg, 10)),
            Err(StorageError::PageOutOfRange { .. })
        ));
    }
}
