//! E-LDL — Section 2.3/3.2: every LDL tuning mechanism, before/after, on
//! the same query. "The underlying idea is to make storage redundancy
//! available to speed up molecule processing."

use criterion::{criterion_group, criterion_main, Criterion};
use prima_workloads::exec;
use prima_bench::{brep_db, report};

fn bench_ablation(c: &mut Criterion) {
    let mut g = c.benchmark_group("ldl_ablation");
    g.sample_size(10);

    // Access path: range qualification on a non-key attribute.
    {
        let db = brep_db(500);
        let q = "SELECT ALL FROM face WHERE square_dim > 80.0";
        let (set, t0) = exec::query_traced(&db, q).unwrap();
        g.bench_function("range_query/no_access_path", |b| b.iter(|| exec::query(&db, q).unwrap()));
        db.ldl("CREATE ACCESS PATH ap_sq ON face (square_dim)").unwrap();
        let (set2, t1) = exec::query_traced(&db, q).unwrap();
        assert_eq!(set.len(), set2.len());
        report("LDL", "range query before", "access", format!("{:?}", t0.root_access));
        report("LDL", "range query after CREATE ACCESS PATH", "access", format!("{:?}", t1.root_access));
        report("LDL", "range query", "hits", set.len());
        g.bench_function("range_query/with_access_path", |b| b.iter(|| exec::query(&db, q).unwrap()));
    }

    // Partition: projection-only horizontal access.
    {
        let db = brep_db(500);
        let q = "SELECT solid_no, description FROM solid WHERE sub = EMPTY";
        g.bench_function("projection/no_partition", |b| b.iter(|| exec::query(&db, q).unwrap()));
        db.ldl("CREATE PARTITION p ON solid (solid_no, description, sub)").unwrap();
        let (_, t) = exec::query_traced(&db, q).unwrap();
        report("LDL", "projection after CREATE PARTITION", "access", format!("{:?}", t.root_access));
        g.bench_function("projection/with_partition", |b| b.iter(|| exec::query(&db, q).unwrap()));
    }

    // Cluster: molecule materialisation.
    {
        let db = brep_db(200);
        let q = "SELECT ALL FROM brep-face-edge-point WHERE brep_no = 100";
        g.bench_function("molecule/no_cluster", |b| {
            b.iter(|| {
                db.storage().drop_cache().unwrap();
                exec::query(&db, q).unwrap()
            })
        });
        db.ldl("CREATE ATOM_CLUSTER cl ON brep (faces, edges, points) PAGESIZE 1K").unwrap();
        let (_, t) = exec::query_traced(&db, q).unwrap();
        report("LDL", "molecule after CREATE ATOM_CLUSTER", "cluster", format!("{:?}", t.cluster_used));
        g.bench_function("molecule/with_cluster", |b| {
            b.iter(|| {
                db.storage().drop_cache().unwrap();
                exec::query(&db, q).unwrap()
            })
        });
    }

    // Controlled redundancy: the SAME atom type under two sort orders —
    // both scans come out pre-sorted.
    {
        use prima_access::scan::{Scan, SortScan, SortSource};
        use std::ops::Bound;
        let db = brep_db(300);
        let t = db.schema().type_id("edge").unwrap();
        let at = db.schema().atom_type(t).unwrap();
        let len_attr = at.attribute_index("length").unwrap();
        db.ldl("CREATE SORT ORDER so_len ON edge (length)").unwrap();
        let mut scan = SortScan::open(
            db.access(),
            t,
            &[len_attr],
            prima_access::Ssa::True,
            Bound::Unbounded,
            Bound::Unbounded,
        )
        .unwrap();
        assert_eq!(scan.source(), SortSource::SortOrder);
        let n = scan.collect_remaining().unwrap().len();
        report("LDL", "two sort orders (controlled redundancy)", "edges", n);
        g.bench_function("sorted_scan/with_sort_order", |b| {
            b.iter(|| {
                let mut s = SortScan::open(
                    db.access(),
                    t,
                    &[len_attr],
                    prima_access::Ssa::True,
                    Bound::Unbounded,
                    Bound::Unbounded,
                )
                .unwrap();
                s.collect_remaining().unwrap()
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_ablation);
criterion_main!(benches);
