//! # PRIMA — a DBMS kernel prototype implementing the MAD model
//!
//! Reproduction of *Härder, Meyer-Wegener, Mitschang, Sikeler: "PRIMA — a
//! DBMS Prototype Supporting Engineering Applications", VLDB 1987.*
//!
//! PRIMA is a three-layer DBMS kernel (Fig. 3.1 of the paper):
//!
//! ```text
//!   application layer          (examples/ in this repository)
//!   ───────────────────────── MAD interface: molecule sets ───────
//!   data system                crate prima       [`datasys`]
//!   ───────────────────────── atoms ──────────────────────────────
//!   access system              crate prima-access
//!   ───────────────────────── physical records / pages ───────────
//!   storage system             crate prima-storage
//!   ───────────────────────── blocks ─────────────────────────────
//!   (simulated) external devices
//! ```
//!
//! The entry point is [`Prima`]: open an in-memory kernel, load a schema
//! with MAD-DDL, tune it with LDL, and talk MQL through a [`Session`] —
//! one-shot, prepared (parse/plan once, bind + execute many), or
//! streaming through a [`MoleculeCursor`]:
//!
//! ```
//! use prima::{Prima, QueryOptions, Value};
//!
//! let db = Prima::builder().build_with_ddl("
//!     CREATE ATOM_TYPE solid (
//!         solid_id : IDENTIFIER,
//!         solid_no : INTEGER,
//!         sub      : SET_OF (REF_TO (solid.super)),
//!         super    : SET_OF (REF_TO (solid.sub)) )
//!     KEYS_ARE (solid_no);
//! ").unwrap();
//!
//! let session = db.session();
//! session.execute("INSERT solid (solid_no: 4711)").unwrap();
//! session.commit().unwrap();
//!
//! // Prepared: the plan is built once, each execution only binds values.
//! let mut stmt = session.prepare("SELECT ALL FROM solid WHERE solid_no = ?").unwrap();
//! stmt.bind(&[Value::Int(4711)]).unwrap();
//! let result = stmt.query(&QueryOptions::default()).unwrap();
//! assert_eq!(result.set.molecules.len(), 1);
//! ```
//!
//! Beyond the query path, the crate provides the PRIMA processing model:
//! nested transactions ([`txn`], refining \[Mo81\] as announced in Section
//! 4) and *semantic parallelism* — decomposition of single user
//! operations into concurrently executable units of work ([`parallel`]),
//! selected per query via [`QueryOptions::threads`].
//!
//! # Observability
//!
//! The [`obs`] module is the kernel's unified instrumentation layer —
//! one vocabulary across all three Fig. 3.1 layers:
//!
//! * **Statement profiler** — [`Session::set_profiling`] turns on a
//!   thread-local span recorder; every statement then yields a
//!   [`StatementProfile`] ([`Session::last_profile`]): a tree of timed
//!   spans (parse → plan → lock acquisition → snapshot pin → per-level
//!   molecule assembly → buffer fixes / page loads / WAL appends &
//!   forces) plus the per-layer counter deltas the statement caused.
//!   `StatementProfile::render` prints it EXPLAIN-ANALYZE style. When
//!   profiling is off every probe is a single thread-local flag check —
//!   no clock reads, no allocation.
//! * **Metrics registry** — [`Prima::metrics`] returns a
//!   [`MetricsSnapshot`] unifying the five kernel stats families
//!   (buffer, I/O, access, lock, version) with the API counters and
//!   log-bucketed latency histograms per statement kind
//!   (select/insert/modify/delete/commit, p50/p95/p99/max).
//!   [`MetricsSnapshot::render_text`] emits a Prometheus-style text
//!   exposition; [`MetricsSnapshot::check_coherence`] asserts the
//!   cross-family invariants on a quiesced kernel.
//! * **Slow-statement log** — [`PrimaBuilder::slow_statement_threshold`]
//!   retains full profiles of statements over a latency threshold in a
//!   bounded ring ([`Prima::slow_statements`]); threshold zero captures
//!   every statement.
//!
//! # Concurrency invariants
//!
//! Every lock in the kernel carries a **rank** from the canonical
//! hierarchy in `crates/lint/src/ranks.rs`; a thread may acquire a lock
//! only while every lock it already holds ranks **≤** the new one
//! (equal ranks are peer groups whose mutual safety is argued at the
//! declaration site). The legal order is the Fig. 3.1 layer order, top
//! of the kernel first:
//!
//! | rank domain | base | Fig. 3.1 layer        | guards |
//! |-------------|------|-----------------------|--------|
//! | `api`       |  10  | MAD interface         | session txn slot, last-profile slot |
//! | `txn`       |  20  | data system           | checkpoint gate, active-txn table |
//! | `locktable` |  30  | data system           | granular lock table + wait queues |
//! | `mvcc`      |  40  | data system           | version store |
//! | `access`    |  50  | access system         | structure directory, registries, tree roots, grid files |
//! | `buffer`    |  60  | storage system        | shard latches, frame locks, record-file maps |
//! | `walgroup`  |  70  | storage system (WAL)  | group-commit coordinator |
//! | `walio`     |  80  | storage system (WAL)  | device-append serialisation, append buffer |
//! | `storage`   |  90  | storage system        | segment-id allocator, segment catalog |
//! | `obs`       | 100  | (cross-cutting)       | slow log, parallel work queues |
//! | `device`    | 110  | devices               | block-device internals |
//!
//! Two enforcers keep the table honest:
//!
//! * **Static** — `cargo run -p prima-lint` (a required CI gate) walks
//!   the kernel sources and checks five rules:
//!   1. *lock-rank* — every `Mutex`/`RwLock` declaration carries a
//!      `// lockrank: <domain>.<n>` annotation resolving against the
//!      table, and no function's nested acquisitions violate the order;
//!   2. *lock-across-io* — no guard (below the `device` domain) is live
//!      across a `BlockDevice` call, `fsync`, or WAL force;
//!   3. *error-hygiene* — no `unwrap`/`expect`/`panic!` in non-test
//!      kernel code;
//!   4. *ignored-result* — no `StorageResult`/`TxnResult`-returning
//!      call used as a bare statement;
//!   5. *allow-without-reason* — every
//!      `// lint: allow(<rule>, <reason>)` escape hatch must state a
//!      non-empty reason.
//! * **Dynamic** — the vendored `parking_lot` shim's
//!   `Mutex::new_ranked`/`RwLock::new_ranked` maintain a thread-local
//!   acquisition stack under `debug_assertions` (or the root `lockrank`
//!   feature, which the contention and crash-fuzz CI jobs enable in
//!   release) and panic on rank inversion, so every randomized fault
//!   schedule doubles as a lock-order model check. Release builds
//!   without the feature compile the tracking out to nothing — verified
//!   by the `scripts/perf_trajectory.sh --sanity` leg.
//!
//! # Durability
//!
//! A kernel built with `PrimaBuilder::durable()` (plus a device) runs
//! write-ahead logging with steal/no-force buffering; `Prima::open` /
//! `Prima::open_device` replay the log after a crash (redo → rescan →
//! loser rollback). `Session::commit` is acknowledged only once a
//! device append covering the transaction's `TxnCommit` record has
//! completed. Under **cross-session group commit** (on by default, see
//! [`GroupCommitConfig`]) concurrently committing sessions share that
//! device force: one committer leads and forces a batch covering every
//! waiter's records, the rest park until the flushed LSN reaches their
//! commit — N committers, one fsync. [`PrimaBuilder::group_commit`]
//! tunes the leader's linger (`max_wait`, default 500 µs) and batch cap
//! (`max_batch`, default 64), or disables grouping entirely with
//! [`GroupCommitConfig::force_each`] for minimum single-commit latency.
//! A lone committer never waits either way, so grouping costs nothing
//! when there is no concurrency to amortize.

pub mod db;
pub mod datasys;
pub mod error;
pub mod ldl_exec;
pub mod obs;
pub mod parallel;
pub mod recovery;
pub mod session;
pub mod txn;

pub use db::{Prima, PrimaBuilder};
pub use obs::{
    HistogramSnapshot, LayerCounters, MetricsSnapshot, Span, SpanKind, StatementKind,
    StatementProfile, StatsSnapshot,
};
pub use recovery::KernelMeta;
pub use datasys::molecule::{MolAtom, Molecule, MoleculeSet};
pub use datasys::AssemblyMode;
pub use error::{PrimaError, PrimaResult};
pub use session::{
    ApiStats, ApiStatsSnapshot, MoleculeCursor, ParamSlot, Prepared, QueryOptions, QueryResult,
    RetryPolicy, Session, StatementOutcome,
};
pub use txn::{LockConfig, LockStatsSnapshot, VersionStatsSnapshot};
pub use prima_access::{AccessSystem, Atom, UpdatePolicy};
pub use prima_storage::GroupCommitConfig;
pub use prima_mad::{AtomId, AtomTypeId, Schema, Value};
