//! E-F3.1 — Fig. 3.1: the implementation model. One molecule query is
//! traced through all layers: molecule sets (data system) → atoms
//! (access system) → pages (buffer) → blocks (device), and the per-layer
//! counters are reported. Criterion times the query cold (all layers) and
//! warm (upper layers only).

use criterion::{criterion_group, criterion_main, Criterion};
use prima_workloads::exec;
use prima_bench::{brep_db, report};
use std::sync::atomic::Ordering;

fn layer_trace() {
    let db = brep_db(50);
    db.storage().drop_cache().unwrap();
    db.storage().io_stats().reset();
    db.storage().buffer_stats().reset();
    db.access().stats().reset();
    let (set, trace) =
        exec::query_traced(&db, "SELECT ALL FROM brep-face-edge-point WHERE brep_no = 25").unwrap();
    report("F3.1", "data system   (molecule sets)", "molecules", set.len());
    report("F3.1", "data system   (atoms in molecule)", "atoms", set.molecules[0].atom_count());
    report("F3.1", "data system   (root access)", "path", format!("{:?}", trace.root_access));
    report(
        "F3.1",
        "access system (primary record reads)",
        "reads",
        db.access().stats().primary_reads.load(Ordering::Relaxed),
    );
    let (hits, misses, _, _) = db.storage().buffer_stats().snapshot();
    report("F3.1", "storage system (buffer fixes)", "hits", hits);
    report("F3.1", "storage system (buffer fixes)", "misses", misses);
    let io = db.storage().io_stats().snapshot();
    report("F3.1", "device        (blocks)", "block_reads", io.block_reads);
    report("F3.1", "device        (bytes)", "bytes_read", io.bytes_read);
    report("F3.1", "device        (simulated time)", "ms", io.sim_time_ns / 1_000_000);
}

fn bench_layers(c: &mut Criterion) {
    layer_trace();
    let db = brep_db(50);
    let q = "SELECT ALL FROM brep-face-edge-point WHERE brep_no = 25";
    let mut g = c.benchmark_group("fig3_1_layers");
    g.sample_size(10);
    g.bench_function("cold_all_layers", |b| {
        b.iter(|| {
            db.storage().drop_cache().unwrap();
            exec::query(&db, q).unwrap()
        })
    });
    let _ = exec::query(&db, q).unwrap(); // warm the buffer
    g.bench_function("warm_upper_layers", |b| b.iter(|| exec::query(&db, q).unwrap()));
    g.finish();
}

criterion_group!(benches, bench_layers);
criterion_main!(benches);
