//! The PRIMA facade: "the conceptually simplest system structure […]
//! using PRIMA without additional components as a 'complete' DBMS. The
//! services at the MAD interface are directly made available to its
//! users." (Section 4.)
//!
//! # The session-centric surface
//!
//! Applications talk to the kernel through three objects (module
//! [`crate::session`]):
//!
//! ```text
//!   Prima ──session()──▶ Session ──prepare()──▶ Prepared
//!     │                    │  │                   │ bind(&[Value])
//!     │                    │  └─ execute(DML)     │ execute()/query()
//!     │                    │     commit/rollback  │ cursor()
//!     │                    └─ query(mql, &QueryOptions)
//!     │                       query_cursor(…) ──▶ MoleculeCursor (streaming)
//!     └─ direct atom interface (insert/read/modify/delete)
//! ```
//!
//! * [`Session`] owns the transaction context: manipulation statements
//!   run under one [`Transaction`] with explicit [`Session::commit`] /
//!   [`Session::rollback`] (dropping the session rolls back).
//! * [`crate::session::Prepared`] parses and plans once; `?` / `:name` placeholders are
//!   bound per execution with type-checked values — the classic
//!   parse-once / execute-many server shape.
//! * [`MoleculeCursor`] streams result molecules piecewise instead of
//!   materialising the whole set, assembling each chunk lazily through
//!   the level-batched read path.
//! * [`QueryOptions`] selects assembly strategy, semantic parallelism
//!   (`threads ≥ 1`; `0` is rejected, not clamped) and tracing for any
//!   of these entry points.
//!
//! # Legacy one-shot methods (deprecation path)
//!
//! [`Prima::query`], [`Prima::query_traced`], [`Prima::query_with_assembly`],
//! [`Prima::query_parallel`] and [`Prima::execute`] predate the session
//! API. They remain as thin auto-commit wrappers — each is exactly
//! "open a session, run with the equivalent [`QueryOptions`], commit" —
//! and new code should use [`Prima::session`] directly. See ROADMAP.md
//! for the removal schedule.

use crate::datasys::{self, DmlResult, ExecutionTrace, MoleculeSet};
use crate::error::{PrimaError, PrimaResult};
use crate::ldl_exec;
use crate::session::{ApiStats, MoleculeCursor, QueryOptions, Session};
use crate::txn::{Transaction, TxnManager};
use prima_access::{AccessSystem, Atom, UpdatePolicy};
use prima_mad::ddl;
use prima_mad::value::{AtomId, Value};
use prima_mad::Schema;
use prima_storage::{CostModel, SimDisk, StorageSystem};
use std::sync::Arc;

/// Configuration for a PRIMA instance.
pub struct PrimaBuilder {
    buffer_bytes: usize,
    cost_model: CostModel,
}

impl Default for PrimaBuilder {
    fn default() -> Self {
        PrimaBuilder { buffer_bytes: 8 << 20, cost_model: CostModel::default() }
    }
}

impl PrimaBuilder {
    /// Database buffer size in bytes (default 8 MiB).
    pub fn buffer_bytes(mut self, bytes: usize) -> Self {
        self.buffer_bytes = bytes;
        self
    }

    /// Cost model of the simulated device.
    pub fn cost_model(mut self, m: CostModel) -> Self {
        self.cost_model = m;
        self
    }

    /// Builds a kernel over an already-constructed schema.
    pub fn build_with_schema(self, schema: Schema) -> PrimaResult<Prima> {
        let storage = Arc::new(StorageSystem::new(
            Arc::new(SimDisk::with_cost(self.cost_model)),
            self.buffer_bytes,
        ));
        let access = Arc::new(AccessSystem::new(Arc::clone(&storage), schema)?);
        let txn = TxnManager::new(Arc::clone(&access));
        Ok(Prima { storage, access, txn, stats: Arc::new(ApiStats::default()) })
    }

    /// Builds a kernel from a MAD-DDL script.
    pub fn build_with_ddl(self, ddl_src: &str) -> PrimaResult<Prima> {
        let mut schema = Schema::new();
        ddl::load_script(&mut schema, ddl_src).map_err(|e| match e {
            ddl::DdlError::Parse(p) => PrimaError::Parse(p),
            ddl::DdlError::Schema(s) => PrimaError::Schema(s),
        })?;
        self.build_with_schema(schema)
    }
}

/// An open PRIMA kernel instance.
pub struct Prima {
    storage: Arc<StorageSystem>,
    access: Arc<AccessSystem>,
    txn: Arc<TxnManager>,
    stats: Arc<ApiStats>,
}

impl Prima {
    /// Starts configuring a new instance.
    pub fn builder() -> PrimaBuilder {
        PrimaBuilder::default()
    }

    /// The underlying access system (atom-oriented interface).
    pub fn access(&self) -> &Arc<AccessSystem> {
        &self.access
    }

    /// The underlying storage system (for I/O statistics).
    pub fn storage(&self) -> &Arc<StorageSystem> {
        &self.storage
    }

    /// The schema.
    pub fn schema(&self) -> &Schema {
        self.access.schema()
    }

    /// Parse / plan / plan-reuse counters — the instrument proving that
    /// prepared statements skip re-parse and re-plan on re-execution.
    pub fn api_stats(&self) -> &Arc<ApiStats> {
        &self.stats
    }

    // -----------------------------------------------------------------
    // Sessions (the primary interface)
    // -----------------------------------------------------------------

    /// Opens a session: the transaction-owning conversation through
    /// which queries, prepared statements and manipulation run.
    pub fn session(&self) -> Session {
        Session::new(Arc::clone(&self.access), Arc::clone(&self.txn), Arc::clone(&self.stats))
    }

    // -----------------------------------------------------------------
    // Legacy one-shot MQL wrappers (auto-commit; prefer `session()`)
    // -----------------------------------------------------------------

    /// Runs an MQL `SELECT`, returning the materialised molecule set.
    /// Thin wrapper: `session().query(mql, &QueryOptions::default())`.
    pub fn query(&self, mql: &str) -> PrimaResult<MoleculeSet> {
        Ok(self.session().query(mql, &QueryOptions::default())?.set)
    }

    /// Runs a `SELECT` and also returns the execution trace. Thin
    /// wrapper over [`QueryOptions::traced`].
    pub fn query_traced(&self, mql: &str) -> PrimaResult<(MoleculeSet, ExecutionTrace)> {
        let r = self.session().query(mql, &QueryOptions::new().traced())?;
        Ok((r.set, r.trace.expect("trace requested")))
    }

    /// Runs a `SELECT` with an explicit vertical-assembly strategy
    /// (benchmark/equivalence use). Thin wrapper over
    /// [`QueryOptions::assembly`].
    pub fn query_with_assembly(
        &self,
        mql: &str,
        mode: datasys::AssemblyMode,
    ) -> PrimaResult<(MoleculeSet, ExecutionTrace)> {
        let r = self.session().query(mql, &QueryOptions::new().assembly(mode).traced())?;
        Ok((r.set, r.trace.expect("trace requested")))
    }

    /// Runs a `SELECT` with molecule construction decomposed into DUs on
    /// `threads` workers (semantic parallelism, Section 4). Thin wrapper
    /// over [`QueryOptions::threads`]; `threads == 0` is rejected at the
    /// boundary (it was historically clamped to 1 deep in the pool).
    pub fn query_parallel(&self, mql: &str, threads: usize) -> PrimaResult<MoleculeSet> {
        Ok(self.session().query(mql, &QueryOptions::new().threads(threads))?.set)
    }

    /// Opens a streaming [`MoleculeCursor`] over a `SELECT` without an
    /// explicit session.
    pub fn query_cursor(&self, mql: &str) -> PrimaResult<MoleculeCursor> {
        self.session().query_cursor(mql, &QueryOptions::default())
    }

    /// Executes an MQL manipulation statement (`INSERT`/`DELETE`/
    /// `MODIFY`) in its own immediately-committed transaction. Thin
    /// wrapper: `session().execute(mql)` + commit.
    pub fn execute(&self, mql: &str) -> PrimaResult<DmlResult> {
        let s = self.session();
        let r = s.execute(mql)?;
        s.commit()?;
        Ok(r)
    }

    // -----------------------------------------------------------------
    // LDL
    // -----------------------------------------------------------------

    /// Executes an LDL script (tuning structures; transparent to MQL).
    pub fn ldl(&self, src: &str) -> PrimaResult<usize> {
        ldl_exec::execute_ldl(&self.access, src)
    }

    /// Applies all pending deferred maintenance.
    pub fn reconcile(&self) -> PrimaResult<usize> {
        Ok(self.access.reconcile()?)
    }

    /// Sets the redundancy maintenance policy.
    pub fn set_update_policy(&self, p: UpdatePolicy) {
        self.access.set_update_policy(p);
    }

    // -----------------------------------------------------------------
    // Direct atom interface (application-layer style access)
    // -----------------------------------------------------------------

    /// Inserts an atom by type name with named attribute values, returning
    /// its logical address. (The programmatic path applications use to
    /// load data; reference values connect components directly.)
    pub fn insert(&self, type_name: &str, attrs: &[(&str, Value)]) -> PrimaResult<AtomId> {
        Ok(self.access.insert_atom_named(type_name, attrs)?)
    }

    /// Reads one atom.
    pub fn read(&self, id: AtomId) -> PrimaResult<Atom> {
        Ok(self.access.read_atom(id, None)?)
    }

    /// Modifies named attributes of an atom.
    pub fn modify(&self, id: AtomId, attrs: &[(&str, Value)]) -> PrimaResult<()> {
        Ok(self.access.modify_atom_named(id, attrs)?)
    }

    /// Deletes an atom (disconnecting it everywhere).
    pub fn delete(&self, id: AtomId) -> PrimaResult<()> {
        Ok(self.access.delete_atom(id)?)
    }

    // -----------------------------------------------------------------
    // Transactions
    // -----------------------------------------------------------------

    /// Begins a top-level transaction (atom-level interface; MQL-level
    /// work units are better served by [`Prima::session`]).
    pub fn begin(&self) -> PrimaResult<Transaction> {
        Ok(self.txn.begin(None)?)
    }

    /// The transaction manager (for advanced nesting scenarios).
    pub fn txn_manager(&self) -> &Arc<TxnManager> {
        &self.txn
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::datasys::DmlResult;

    const DDL: &str = "
        CREATE ATOM_TYPE thing (id: IDENTIFIER, n: INTEGER, s: CHAR_VAR)
        KEYS_ARE (n);
    ";

    fn db() -> Prima {
        Prima::builder().buffer_bytes(1 << 20).build_with_ddl(DDL).unwrap()
    }

    #[test]
    fn build_rejects_bad_ddl() {
        assert!(matches!(
            Prima::builder().build_with_ddl("CREATE NONSENSE"),
            Err(PrimaError::Parse(_))
        ));
        assert!(matches!(
            Prima::builder().build_with_ddl(
                "CREATE ATOM_TYPE a (id: IDENTIFIER, r: REF_TO (missing.x));"
            ),
            Err(PrimaError::Schema(_))
        ));
    }

    #[test]
    fn query_vs_execute_routing() {
        let d = db();
        assert!(matches!(
            d.execute("SELECT ALL FROM thing"),
            Err(PrimaError::BadStatement(_))
        ));
        let r = d.execute("INSERT thing (n: 1, s: 'one')").unwrap();
        assert!(matches!(r, DmlResult::Inserted(_)));
        assert_eq!(d.query("SELECT ALL FROM thing").unwrap().len(), 1);
    }

    #[test]
    fn direct_atom_interface_round_trip() {
        let d = db();
        let id = d.insert("thing", &[("n", Value::Int(7)), ("s", Value::Str("x".into()))]).unwrap();
        assert_eq!(d.read(id).unwrap().values[1], Value::Int(7));
        d.modify(id, &[("s", Value::Str("y".into()))]).unwrap();
        assert_eq!(d.read(id).unwrap().values[2], Value::Str("y".into()));
        d.delete(id).unwrap();
        assert!(d.read(id).is_err());
    }

    #[test]
    fn parse_errors_carry_position() {
        let d = db();
        let err = d.query("SELECT FROM").unwrap_err();
        assert!(matches!(err, PrimaError::Parse(_)));
    }

    #[test]
    fn zero_threads_rejected_at_the_boundary() {
        let d = db();
        assert!(matches!(
            d.query_parallel("SELECT ALL FROM thing", 0),
            Err(PrimaError::BadStatement(_))
        ));
        // 1 = serial is valid.
        assert!(d.query_parallel("SELECT ALL FROM thing", 1).is_ok());
    }

    #[test]
    fn one_shot_rejects_parameter_placeholders() {
        let d = db();
        assert!(matches!(
            d.query("SELECT ALL FROM thing WHERE n = ?"),
            Err(PrimaError::UnboundParameter { .. })
        ));
        assert!(matches!(
            d.execute("INSERT thing (n: :v)"),
            Err(PrimaError::UnboundParameter { .. })
        ));
    }

    #[test]
    fn ldl_round_trip_and_reconcile() {
        let d = db();
        for i in 0..20 {
            d.insert("thing", &[("n", Value::Int(i)), ("s", Value::Str("v".into()))]).unwrap();
        }
        assert_eq!(d.ldl("CREATE SORT ORDER so ON thing (n); RECONCILE").unwrap(), 2);
        d.set_update_policy(UpdatePolicy::Deferred);
        let t = d.schema().type_id("thing").unwrap();
        let id = d.access().all_ids(t).unwrap()[0];
        d.modify(id, &[("s", Value::Str("w".into()))]).unwrap();
        assert!(!d.access().deferred_queue().is_empty());
        assert_eq!(d.reconcile().unwrap(), 1);
    }
}
