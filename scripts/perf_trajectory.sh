#!/usr/bin/env bash
# Runs the batched-assembly bench and collects its BENCHJSON lines into
# BENCH_1.json — one record per (fanout, buffer regime, assembly mode)
# with atoms/sec and the fix_calls / pages_loaded counters that prove the
# batched read path's guard-churn reduction.
set -euo pipefail
cd "$(dirname "$0")/.."

out="${1:-BENCH_1.json}"
log="$(mktemp)"
trap 'rm -f "$log"' EXIT

cargo bench --bench batched_assembly 2>&1 | tee "$log"

grep '^BENCHJSON ' "$log" | sed 's/^BENCHJSON //' | awk '
    { lines[NR] = $0 }
    END {
        print "["
        for (i = 1; i <= NR; i++) printf "  %s%s\n", lines[i], (i < NR ? "," : "")
        print "]"
    }' > "$out"

echo "wrote $out ($(grep -c '^BENCHJSON ' "$log") records)"
