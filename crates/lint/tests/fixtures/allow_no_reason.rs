//! Fixture: exactly one `allow-without-reason` finding — the allow
//! suppresses its unwrap but is itself flagged for the missing reason.

pub fn hushed(v: Option<u32>) -> u32 {
    // lint: allow(error-hygiene, )
    v.unwrap()
}
