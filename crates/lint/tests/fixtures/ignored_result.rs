//! Fixture: exactly one `ignored-result` finding — a bare statement
//! discarding a kernel Result. The handled calls below must NOT fire.

pub fn might_fail() -> StorageResult<()> {
    Ok(())
}

pub fn bad() {
    might_fail();
}

pub fn good() -> StorageResult<()> {
    might_fail()?;
    let _ = might_fail();
    might_fail()
}
