//! Property-based tests of the storage and index substrates: page
//! sequences hold arbitrary data, the B*-tree stays consistent with a
//! model under arbitrary operation sequences, and the buffer preserves
//! page contents under arbitrary access patterns.

use prima_storage::{PageSequence, PageSize, StorageSystem};
use proptest::prelude::*;
use std::collections::BTreeMap;
use std::ops::Bound;
use std::sync::Arc;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn page_sequence_round_trips_any_data(
        data in prop::collection::vec(any::<u8>(), 0..20_000),
        size_idx in 0usize..5,
    ) {
        let storage = StorageSystem::in_memory(1 << 20);
        let seg = storage.create_segment(PageSize::ALL[size_idx]).unwrap();
        let h = PageSequence::create(&storage, seg, &data).unwrap();
        prop_assert_eq!(PageSequence::read_all(&storage, h).unwrap(), data.clone());
        // Relative reads agree with slices.
        if !data.is_empty() {
            let mid = data.len() / 2;
            let len = (data.len() - mid).min(300);
            let got = PageSequence::read_relative(&storage, h, mid, len).unwrap();
            prop_assert_eq!(&got[..], &data[mid..mid + len]);
        }
    }

    #[test]
    fn page_sequence_overwrite_sequences(
        contents in prop::collection::vec(prop::collection::vec(any::<u8>(), 0..4000), 1..6)
    ) {
        let storage = StorageSystem::in_memory(1 << 20);
        let seg = storage.create_segment(PageSize::Half).unwrap();
        let h = PageSequence::create(&storage, seg, &contents[0]).unwrap();
        for c in &contents[1..] {
            PageSequence::overwrite(&storage, h, c).unwrap();
            prop_assert_eq!(&PageSequence::read_all(&storage, h).unwrap(), c);
        }
    }

    #[test]
    fn btree_matches_model(ops in prop::collection::vec(
        (any::<bool>(), 0u16..40, 0u64..200), 1..200))
    {
        use prima_access::btree::BTree;
        use prima_mad::codec::encode_composite_key;
        use prima_mad::value::{AtomId, Value};
        let storage = Arc::new(StorageSystem::in_memory(16 << 20));
        let tree = BTree::create(storage).unwrap();
        let mut model: BTreeMap<Vec<u8>, Vec<AtomId>> = BTreeMap::new();
        for (insert, k, s) in ops {
            let key = encode_composite_key(&[Value::Int(k as i64)]);
            let id = AtomId::new(0, s);
            if insert {
                tree.insert(&key, id).unwrap();
                let e = model.entry(key).or_default();
                if !e.contains(&id) {
                    e.push(id);
                }
            } else {
                let removed = tree.remove(&key, id).unwrap();
                let model_removed = match model.get_mut(&key) {
                    Some(e) => {
                        let had = e.contains(&id);
                        e.retain(|x| *x != id);
                        if e.is_empty() {
                            model.remove(&key);
                        }
                        had
                    }
                    None => false,
                };
                prop_assert_eq!(removed, model_removed);
            }
        }
        // Compare full scans.
        let mut got: Vec<(Vec<u8>, Vec<AtomId>)> = Vec::new();
        tree.scan_range(Bound::Unbounded, Bound::Unbounded, false, |k, ids| {
            got.push((k.to_vec(), ids.to_vec()));
            true
        })
        .unwrap();
        // Merge duplicate-key overflow entries before comparing.
        let mut merged: BTreeMap<Vec<u8>, Vec<AtomId>> = BTreeMap::new();
        for (k, ids) in got {
            merged.entry(k).or_default().extend(ids);
        }
        prop_assert_eq!(merged.len(), model.len());
        for (k, ids) in &model {
            let mut got_ids = merged.get(k).cloned().unwrap_or_default();
            let mut want = ids.clone();
            got_ids.sort();
            want.sort();
            prop_assert_eq!(got_ids, want);
        }
        tree.check_invariants().unwrap();
    }

    #[test]
    fn buffer_preserves_contents_under_pressure(
        writes in prop::collection::vec((0u32..40, any::<u8>()), 1..120),
        capacity_pages in 2usize..8,
    ) {
        use prima_storage::PageType;
        let storage = StorageSystem::in_memory(capacity_pages * 512);
        let seg = storage.create_segment(PageSize::Half).unwrap();
        let mut model: BTreeMap<u32, u8> = BTreeMap::new();
        for (page, byte) in writes {
            let id = prima_storage::PageId::new(seg, page);
            if model.contains_key(&page) {
                let mut g = storage.fix_mut(id).unwrap();
                g.write_payload(&[byte; 16]).unwrap();
            } else {
                // Ensure allocation high-water mark covers the page no.
                while storage.with_segment(seg, |s| s.extent()).unwrap() <= page {
                    storage.allocate_page(seg).unwrap();
                }
                let mut g = storage.fix_new(id, PageType::Data).unwrap();
                g.write_payload(&[byte; 16]).unwrap();
            }
            model.insert(page, byte);
        }
        for (page, byte) in model {
            let g = storage.fix(prima_storage::PageId::new(seg, page)).unwrap();
            prop_assert_eq!(g.payload(), &[byte; 16][..]);
        }
    }
}
