//! Error type shared by all storage-system components.

use std::fmt;

/// Result alias used throughout the storage system.
pub type StorageResult<T> = Result<T, StorageError>;

/// Errors raised by the storage system.
///
/// The storage system is the lowest layer of PRIMA; higher layers wrap this
/// in their own error types rather than exposing page-level detail at the
/// MAD interface.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StorageError {
    /// A segment id was used that has not been created.
    UnknownSegment(u32),
    /// A page number lies outside the allocated extent of its segment.
    PageOutOfRange { segment: u32, page: u32 },
    /// The page was freed (or never allocated) in its segment.
    PageNotAllocated { segment: u32, page: u32 },
    /// The buffer pool is too small to hold the requested page together
    /// with all currently fixed pages.
    BufferExhausted { needed: usize, unfixable: usize },
    /// A page was requested with a fix already outstanding in a conflicting
    /// mode (the single-user kernel never upgrades in place).
    FixConflict(PageRefDesc),
    /// A page's stored checksum does not match its contents — the simulated
    /// disk never corrupts data, so this indicates a bug in page handling.
    ChecksumMismatch(PageRefDesc),
    /// The page header's type tag differs from what the caller expected.
    WrongPageType { expected: &'static str, found: u8 },
    /// A page-sequence operation referenced a page that is not part of the
    /// sequence.
    NotInSequence { header: PageRefDesc, page: u32 },
    /// A page sequence grew beyond what its header page can index.
    SequenceFull { header: PageRefDesc, capacity: usize },
    /// Data longer than the page payload was written to a single page.
    PayloadTooLarge { len: usize, max: usize },
    /// Block-device level failure (simulated device is infallible in normal
    /// operation; this fires on address arithmetic bugs or fault injection).
    DeviceError(String),
}

/// A plain (segment, page) pair for error reporting, avoiding a dependency
/// cycle with the `page` module.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PageRefDesc {
    pub segment: u32,
    pub page: u32,
}

impl fmt::Display for PageRefDesc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.segment, self.page)
    }
}

impl fmt::Display for StorageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StorageError::UnknownSegment(s) => write!(f, "unknown segment {s}"),
            StorageError::PageOutOfRange { segment, page } => {
                write!(f, "page {segment}:{page} out of range")
            }
            StorageError::PageNotAllocated { segment, page } => {
                write!(f, "page {segment}:{page} not allocated")
            }
            StorageError::BufferExhausted { needed, unfixable } => write!(
                f,
                "buffer exhausted: need {needed} bytes but only {unfixable} bytes evictable"
            ),
            StorageError::FixConflict(p) => write!(f, "conflicting fix on page {p}"),
            StorageError::ChecksumMismatch(p) => write!(f, "checksum mismatch on page {p}"),
            StorageError::WrongPageType { expected, found } => {
                write!(f, "wrong page type: expected {expected}, found tag {found}")
            }
            StorageError::NotInSequence { header, page } => {
                write!(f, "page {page} is not part of sequence headed by {header}")
            }
            StorageError::SequenceFull { header, capacity } => {
                write!(f, "page sequence {header} full (capacity {capacity} pages)")
            }
            StorageError::PayloadTooLarge { len, max } => {
                write!(f, "payload of {len} bytes exceeds page capacity {max}")
            }
            StorageError::DeviceError(msg) => write!(f, "device error: {msg}"),
        }
    }
}

impl std::error::Error for StorageError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats_are_informative() {
        let e = StorageError::PageOutOfRange { segment: 3, page: 9 };
        assert_eq!(e.to_string(), "page 3:9 out of range");
        let e = StorageError::BufferExhausted { needed: 8192, unfixable: 512 };
        assert!(e.to_string().contains("8192"));
        assert!(e.to_string().contains("512"));
        let e = StorageError::NotInSequence {
            header: PageRefDesc { segment: 1, page: 2 },
            page: 7,
        };
        assert_eq!(e.to_string(), "page 7 is not part of sequence headed by 1:2");
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<StorageError>();
    }
}
