//! Segments and the storage-system facade.
//!
//! "As in conventional systems the objects, i.e. containers, offered by the
//! storage system are segments divided into pages of equal size"
//! (Section 3.3). Each segment chooses one of the five page sizes; the
//! mapping between its pages and the blocks of the underlying file is the
//! identity (that is *why* the paper restricts page sizes to the file
//! manager's block sizes).
//!
//! [`StorageSystem`] bundles a block device, the segment directory and the
//! buffer manager into the interface the access system programs against:
//! allocate/free pages, fix/unfix them through the buffer, create and read
//! page sequences, and observe I/O.

use crate::buffer::{BufferManager, BufferStats, PageGuard, PageGuardMut, PageStore};
use crate::disk::{BlockAddr, BlockDevice};
use crate::error::{StorageError, StorageResult};
use crate::page::{Page, PageId, PageSize, PageType};
use crate::stats::IoStats;
use crate::wal::Wal;
use parking_lot::{rank, RwLock};
use std::collections::HashMap;
use std::sync::Arc;

/// Identifier of a segment (also the file number on the device).
pub type SegmentId = u32;

/// Per-segment allocation state. Kept in memory during operation and
/// snapshotted into the device's metadata blob at checkpoint
/// ([`StorageSystem::segments_snapshot`]), so a durable kernel can
/// restore the directory on restart.
#[derive(Debug)]
pub struct Segment {
    pub id: SegmentId,
    pub page_size: PageSize,
    next_page: u32,
    free: Vec<u32>,
    allocated: u64,
    /// Whether updates to this segment's pages are WAL-logged. Transient
    /// tuning structures opt out: they are regenerated, not recovered.
    logged: bool,
}

impl Segment {
    fn new(id: SegmentId, page_size: PageSize, logged: bool) -> Self {
        Segment { id, page_size, next_page: 0, free: Vec::new(), allocated: 0, logged }
    }

    /// Number of currently allocated pages.
    pub fn allocated_pages(&self) -> u64 {
        self.allocated
    }

    /// High-water mark: pages ever handed out.
    pub fn extent(&self) -> u32 {
        self.next_page
    }

    /// Whether this segment participates in WAL logging.
    pub fn is_logged(&self) -> bool {
        self.logged
    }
}

/// Point-in-time copy of one segment directory entry — the unit of the
/// checkpoint's catalog snapshot.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SegmentMeta {
    pub id: SegmentId,
    pub page_size: PageSize,
    pub next_page: u32,
    pub free: Vec<u32>,
    pub logged: bool,
}

/// Shared state implementing [`PageStore`] for the buffer: the device plus
/// the segment directory (for page-size lookup).
pub(crate) struct DiskStore {
    pub device: Arc<dyn BlockDevice>,
    // lockrank: storage.1 — segment catalog; read transiently on every
    // load/store, write-held only by segment creation.
    pub segments: RwLock<HashMap<SegmentId, Segment>>,
}

impl PageStore for DiskStore {
    fn load(&self, id: PageId) -> StorageResult<Page> {
        let size = self.page_size_of(id.segment)?;
        let mut buf = vec![0u8; size.bytes()];
        self.device.read_block(BlockAddr::new(id.segment, id.page), &mut buf)?;
        Page::from_bytes(id, size, &buf)
    }

    fn store(&self, page: &mut Page) -> StorageResult<()> {
        page.update_checksum();
        let id = page.id();
        self.device.write_block(BlockAddr::new(id.segment, id.page), page.as_bytes())
    }

    fn page_size_of(&self, segment: u32) -> StorageResult<PageSize> {
        self.segments
            .read()
            .get(&segment)
            .map(|s| s.page_size)
            .ok_or(StorageError::UnknownSegment(segment))
    }

    fn wal_logged(&self, segment: u32) -> bool {
        self.segments.read().get(&segment).is_none_or(|s| s.logged)
    }
}

/// The storage system: segments, buffered pages, page sequences.
pub struct StorageSystem {
    store: Arc<DiskStore>,
    buffer: BufferManager,
    // lockrank: storage.0 — segment-id allocator; taken before the catalog
    // write lock by segment creation.
    next_segment: RwLock<SegmentId>,
    wal: Option<Arc<Wal>>,
}

impl StorageSystem {
    /// Builds a storage system over `device` with a buffer of
    /// `buffer_bytes` (volatile: no write-ahead log).
    pub fn new(device: Arc<dyn BlockDevice>, buffer_bytes: usize) -> Self {
        Self::build(device, buffer_bytes, None)
    }

    /// Builds a *durable* storage system: page updates are logged to
    /// `wal`, and flush/eviction enforce write-ahead.
    pub fn with_wal(device: Arc<dyn BlockDevice>, buffer_bytes: usize, wal: Arc<Wal>) -> Self {
        Self::build(device, buffer_bytes, Some(wal))
    }

    fn build(device: Arc<dyn BlockDevice>, buffer_bytes: usize, wal: Option<Arc<Wal>>) -> Self {
        let store =
            Arc::new(DiskStore { device, segments: RwLock::new_ranked(HashMap::new(), rank::STORAGE + 1) });
        // Latch-shard the pool for parallel DUs; semantics per shard are
        // the paper's modified LRU.
        let shards = std::thread::available_parallelism().map_or(4, std::num::NonZero::get).min(16);
        let mut buffer = BufferManager::with_shards(
            Arc::clone(&store) as Arc<dyn PageStore>,
            buffer_bytes,
            shards,
        );
        if let Some(wal) = &wal {
            buffer = buffer.attach_wal(Arc::clone(wal));
        }
        StorageSystem { store, buffer, next_segment: RwLock::new_ranked(0, rank::STORAGE), wal }
    }

    /// Convenience: storage system over a fresh simulated disk.
    pub fn in_memory(buffer_bytes: usize) -> Self {
        Self::new(Arc::new(crate::disk::SimDisk::new()), buffer_bytes)
    }

    /// Creates a segment with the chosen page size; its file is created on
    /// the device with the matching block length.
    pub fn create_segment(&self, page_size: PageSize) -> StorageResult<SegmentId> {
        self.create_segment_with(page_size, true)
    }

    /// Creates a segment, choosing whether its page updates are
    /// WAL-logged. Transient structures (partitions, sort orders,
    /// clusters, access paths) pass `logged = false`: they are redundant
    /// by definition and are regenerated after restart, so logging their
    /// pages would only bloat the log.
    pub fn create_segment_with(
        &self,
        page_size: PageSize,
        logged: bool,
    ) -> StorageResult<SegmentId> {
        let mut next = self.next_segment.write();
        let id = *next;
        *next += 1;
        // lint: allow(lock-across-io, allocator lock must cover file creation or a racing checkpoint could snapshot an id whose file does not exist yet)
        self.store.device.create_file(id, page_size.bytes())?;
        self.store.segments.write().insert(id, Segment::new(id, page_size, logged));
        Ok(id)
    }

    /// Page size of a segment.
    pub fn page_size(&self, segment: SegmentId) -> StorageResult<PageSize> {
        self.store.page_size_of(segment)
    }

    /// Allocates one page in the segment. Freed pages are reused first.
    pub fn allocate_page(&self, segment: SegmentId) -> StorageResult<PageId> {
        let mut segs = self.store.segments.write();
        let seg = segs.get_mut(&segment).ok_or(StorageError::UnknownSegment(segment))?;
        let page = match seg.free.pop() {
            Some(p) => p,
            None => {
                let p = seg.next_page;
                seg.next_page += 1;
                p
            }
        };
        seg.allocated += 1;
        Ok(PageId::new(segment, page))
    }

    /// Allocates `count` *contiguous* pages (for a page sequence) and
    /// returns the first id. Contiguity is what enables chained I/O.
    pub fn allocate_run(&self, segment: SegmentId, count: u32) -> StorageResult<PageId> {
        let mut segs = self.store.segments.write();
        let seg = segs.get_mut(&segment).ok_or(StorageError::UnknownSegment(segment))?;
        let first = seg.next_page;
        seg.next_page += count;
        seg.allocated += count as u64;
        Ok(PageId::new(segment, first))
    }

    /// Frees one page: it leaves the buffer (no write-back) and becomes
    /// reusable.
    pub fn free_page(&self, id: PageId) -> StorageResult<()> {
        self.buffer.discard(id)?;
        let mut segs = self.store.segments.write();
        let seg = segs.get_mut(&id.segment).ok_or(StorageError::UnknownSegment(id.segment))?;
        if id.page >= seg.next_page {
            return Err(StorageError::PageOutOfRange { segment: id.segment, page: id.page });
        }
        seg.free.push(id.page);
        seg.allocated = seg.allocated.saturating_sub(1);
        Ok(())
    }

    /// Fixes a page for reading (through the buffer).
    pub fn fix(&self, id: PageId) -> StorageResult<PageGuard> {
        self.buffer.fix(id)
    }

    /// Fixes a page for update.
    pub fn fix_mut(&self, id: PageId) -> StorageResult<PageGuardMut> {
        self.buffer.fix_mut(id)
    }

    /// Installs a freshly allocated page, fixed for update, without device
    /// read.
    pub fn fix_new(&self, id: PageId, ptype: PageType) -> StorageResult<PageGuardMut> {
        self.buffer.fix_new(id, ptype)
    }

    /// Checkpoint: write all dirty pages back.
    pub fn flush(&self) -> StorageResult<()> {
        self.buffer.flush_all()
    }

    // -----------------------------------------------------------------
    // Durability: checkpoint, restart, redo
    // -----------------------------------------------------------------

    /// The write-ahead log, when this system is durable.
    pub fn wal(&self) -> Option<&Arc<Wal>> {
        self.wal.as_ref()
    }

    /// The underlying block device.
    pub fn device(&self) -> &Arc<dyn BlockDevice> {
        &self.store.device
    }

    /// Storage-level checkpoint: flushes every dirty page (forcing the
    /// WAL first — write-ahead), makes the device state durable, replaces
    /// the device's metadata blob with `meta` (the caller's catalog
    /// snapshot, which should embed [`StorageSystem::segments_snapshot`])
    /// and truncates the log. After this, restart recovery starts from
    /// `meta` with an empty log tail.
    pub fn checkpoint(&self, meta: &[u8]) -> StorageResult<()> {
        self.buffer.flush_all()?;
        self.store.device.sync()?;
        self.store.device.write_meta(meta)?;
        if let Some(wal) = &self.wal {
            // The marker rides through reset (which re-appends pending
            // records), so the fresh log starts with a checkpoint record
            // naming its recovery base — diagnostic only; replay treats
            // it as a no-op. A poisoned log refuses the append; the
            // reset below truncates away the torn fragment and clears
            // the poison, so on that path the marker is appended — and
            // forced — onto the fresh log afterwards instead (the
            // checkpoint still heals a poisoned kernel).
            let marker = wal.append(crate::wal::WalPayload::Checkpoint);
            wal.reset()?;
            if marker.is_err() {
                wal.append(crate::wal::WalPayload::Checkpoint)?;
                wal.force()?;
            }
        }
        self.store.device.sync()
    }

    /// The device's metadata blob (checkpoint snapshot), if any.
    pub fn read_meta(&self) -> StorageResult<Option<Vec<u8>>> {
        self.store.device.read_meta()
    }

    /// Point-in-time copy of the segment directory, for the checkpoint's
    /// catalog snapshot.
    pub fn segments_snapshot(&self) -> (SegmentId, Vec<SegmentMeta>) {
        // Allocator before directory — the lock order of segment creation.
        // The checkpoint gate has quiesced writers, so reading the two
        // under separate holds still yields one consistent snapshot.
        let next = *self.next_segment.read();
        let segs = self.store.segments.read();
        let mut metas: Vec<SegmentMeta> = segs
            .values()
            .map(|s| SegmentMeta {
                id: s.id,
                page_size: s.page_size,
                next_page: s.next_page,
                free: s.free.clone(),
                logged: s.logged,
            })
            .collect();
        metas.sort_by_key(|m| m.id);
        (next, metas)
    }

    /// Restores the segment directory from a checkpoint snapshot. The
    /// device files already exist (they survived with the device); only
    /// the in-memory directory is rebuilt, so this must run on a freshly
    /// constructed system before any allocation.
    pub fn restore_segments(&self, next_segment: SegmentId, metas: &[SegmentMeta]) {
        // Allocator before directory — the lock order of segment creation.
        *self.next_segment.write() = next_segment;
        let mut segs = self.store.segments.write();
        for m in metas {
            let mut seg = Segment::new(m.id, m.page_size, m.logged);
            seg.next_page = m.next_page;
            seg.free = m.free.clone();
            seg.allocated = (m.next_page as u64).saturating_sub(m.free.len() as u64);
            segs.insert(m.id, seg);
        }
    }

    /// Redo: installs a logged page after-image directly on the device
    /// (bypassing the buffer — recovery runs before any page is fixed)
    /// and extends the owning segment's extent to cover pages allocated
    /// after the snapshot was taken. Idempotent.
    pub fn apply_page_image(&self, id: PageId, bytes: &[u8]) -> StorageResult<()> {
        {
            let mut segs = self.store.segments.write();
            let seg =
                segs.get_mut(&id.segment).ok_or(StorageError::UnknownSegment(id.segment))?;
            if bytes.len() != seg.page_size.bytes() {
                return Err(StorageError::DeviceError(format!(
                    "redo image for {id} has {} bytes, segment page size is {}",
                    bytes.len(),
                    seg.page_size.bytes()
                )));
            }
            if id.page >= seg.next_page {
                seg.allocated += (id.page + 1 - seg.next_page) as u64;
                seg.next_page = id.page + 1;
            }
        }
        self.store.device.write_block(BlockAddr::new(id.segment, id.page), bytes)
    }

    /// Reads `count` contiguous pages starting at `first` in one chained
    /// run, bypassing the buffer (the page-sequence fast path; the caller
    /// gets owned page images). Pages currently dirty in the buffer are
    /// flushed first so the device image is current.
    pub fn read_run_chained(&self, first: PageId, count: u32) -> StorageResult<Vec<Page>> {
        let size = self.page_size(first.segment)?;
        // Make sure the device sees current contents for this run.
        self.buffer.flush_all()?;
        let mut buf = vec![0u8; count as usize * size.bytes()];
        self.store.device.read_chained(BlockAddr::new(first.segment, first.page), count, &mut buf)?;
        let mut pages = Vec::with_capacity(count as usize);
        for i in 0..count {
            let id = PageId::new(first.segment, first.page + i);
            let bytes = &buf[i as usize * size.bytes()..(i as usize + 1) * size.bytes()];
            pages.push(Page::from_bytes(id, size, bytes)?);
        }
        Ok(pages)
    }

    /// Drops the buffer cache (flushing dirty pages first): subsequent
    /// reads hit the device. For cold-read experiments.
    pub fn drop_cache(&self) -> StorageResult<()> {
        self.buffer.evict_all()
    }

    /// Device-level I/O statistics.
    pub fn io_stats(&self) -> Arc<IoStats> {
        self.store.device.stats()
    }

    /// Buffer statistics.
    pub fn buffer_stats(&self) -> Arc<BufferStats> {
        self.buffer.stats()
    }

    /// Access to the buffer (used by page sequences and tests).
    pub fn buffer(&self) -> &BufferManager {
        &self.buffer
    }

    /// Runs `f` with the segment's metadata, if it exists.
    pub fn with_segment<R>(&self, id: SegmentId, f: impl FnOnce(&Segment) -> R) -> StorageResult<R> {
        let segs = self.store.segments.read();
        let seg = segs.get(&id).ok_or(StorageError::UnknownSegment(id))?;
        Ok(f(seg))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sys() -> StorageSystem {
        StorageSystem::in_memory(64 * 1024)
    }

    #[test]
    fn create_segments_with_all_page_sizes() {
        let s = sys();
        for size in PageSize::ALL {
            let seg = s.create_segment(size).unwrap();
            assert_eq!(s.page_size(seg).unwrap(), size);
        }
    }

    #[test]
    fn allocate_write_read() {
        let s = sys();
        let seg = s.create_segment(PageSize::K1).unwrap();
        let id = s.allocate_page(seg).unwrap();
        {
            let mut g = s.fix_new(id, PageType::Data).unwrap();
            g.write_payload(b"molecule data").unwrap();
        }
        s.flush().unwrap();
        let g = s.fix(id).unwrap();
        assert_eq!(g.payload(), b"molecule data");
    }

    #[test]
    fn freed_pages_are_reused() {
        let s = sys();
        let seg = s.create_segment(PageSize::Half).unwrap();
        let a = s.allocate_page(seg).unwrap();
        let b = s.allocate_page(seg).unwrap();
        assert_ne!(a, b);
        s.free_page(a).unwrap();
        let c = s.allocate_page(seg).unwrap();
        assert_eq!(c, a, "free list should be reused first");
        s.with_segment(seg, |m| assert_eq!(m.allocated_pages(), 2)).unwrap();
    }

    #[test]
    fn allocate_run_is_contiguous() {
        let s = sys();
        let seg = s.create_segment(PageSize::Half).unwrap();
        let _ = s.allocate_page(seg).unwrap();
        let first = s.allocate_run(seg, 5).unwrap();
        for i in 0..5 {
            // All five ids are consecutive.
            let id = PageId::new(seg, first.page + i);
            let _ = s.fix_new(id, PageType::Data).unwrap();
        }
        let next = s.allocate_page(seg).unwrap();
        assert_eq!(next.page, first.page + 5);
    }

    #[test]
    fn chained_run_read_returns_current_contents() {
        let s = sys();
        let seg = s.create_segment(PageSize::Half).unwrap();
        let first = s.allocate_run(seg, 3).unwrap();
        for i in 0..3u32 {
            let id = PageId::new(seg, first.page + i);
            let mut g = s.fix_new(id, PageType::Data).unwrap();
            g.write_payload(format!("component {i}").as_bytes()).unwrap();
        }
        let pages = s.read_run_chained(first, 3).unwrap();
        assert_eq!(pages.len(), 3);
        assert_eq!(pages[2].payload(), b"component 2");
        let io = s.io_stats().snapshot();
        assert_eq!(io.chained_runs, 1);
        assert_eq!(io.chained_blocks, 3);
    }

    #[test]
    fn unknown_segment_errors() {
        let s = sys();
        assert!(matches!(s.allocate_page(42), Err(StorageError::UnknownSegment(42))));
        assert!(s.page_size(42).is_err());
    }

    #[test]
    fn free_page_out_of_range_errors() {
        let s = sys();
        let seg = s.create_segment(PageSize::Half).unwrap();
        assert!(matches!(
            s.free_page(PageId::new(seg, 10)),
            Err(StorageError::PageOutOfRange { .. })
        ));
    }
}
